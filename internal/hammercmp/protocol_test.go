package hammercmp

import (
	"testing"

	"tokencmp/internal/cpu"
	"tokencmp/internal/network"
	"tokencmp/internal/sim"
	"tokencmp/internal/topo"
	"tokencmp/internal/workload"
)

// build wires a small HammerCMP system with tiny caches so evictions
// and writeback races actually occur.
func build(t *testing.T, g topo.Geometry) *System {
	t.Helper()
	eng := sim.NewEngine()
	cfg := DefaultConfig(g)
	cfg.L1Size = 4 << 10
	cfg.L2BankSize = 16 << 10
	return NewSystem(eng, cfg, network.Default())
}

// runProgs drives one program per processor to completion.
func runProgs(t *testing.T, s *System, progs []cpu.Program) {
	t.Helper()
	procs := make([]*cpu.Processor, len(progs))
	for i := range progs {
		d, in := s.Ports(i)
		procs[i] = &cpu.Processor{ID: i, Eng: s.Eng, Data: d, Inst: in, Prog: progs[i]}
		procs[i].Start()
	}
	ok := s.Eng.RunUntil(func() bool {
		for _, p := range procs {
			if !p.Finished() {
				return false
			}
		}
		return true
	}, 50_000_000)
	if !ok {
		t.Fatalf("system did not finish: events=%d pending=%d now=%v",
			s.Eng.Executed, s.Eng.Pending(), s.Eng.Now())
	}
}

func TestLockingMutualExclusion(t *testing.T) {
	g := topo.NewGeometry(2, 2, 1)
	s := build(t, g)
	lc := workload.DefaultLocking(4)
	lc.Acquires = 16
	progs, mon := workload.LockingPrograms(lc, g.TotalProcs(), 1)
	runProgs(t, s, progs)
	if len(mon.Violations) > 0 {
		t.Fatalf("mutual exclusion violated: %v", mon.Violations[0])
	}
	if got, want := mon.Acquires, uint64(4*16); got != want {
		t.Errorf("acquires = %d, want %d", got, want)
	}
}

// TestQuiescence asserts every message has drained (writeback chains
// included) once programs finish and the engine runs dry.
func TestQuiescence(t *testing.T) {
	g := topo.NewGeometry(2, 2, 1)
	s := build(t, g)
	lc := workload.DefaultLocking(2)
	lc.Acquires = 8
	progs, _ := workload.LockingPrograms(lc, g.TotalProcs(), 3)
	runProgs(t, s, progs)
	s.Eng.Run(10_000_000) // drain in-flight writebacks
	if s.Net.InFlight != 0 {
		t.Errorf("network not quiescent: %d messages in flight", s.Net.InFlight)
	}
	for _, m := range s.Mems {
		for b, q := range m.queue {
			if len(q) > 0 {
				t.Errorf("home %v left %d queued messages for %v", m.id, len(q), b)
			}
		}
		if len(m.busy) != 0 {
			t.Errorf("home %v left busy blocks: %v", m.id, m.busy)
		}
	}
}

// TestBroadcastFanIn asserts every miss pays the Hammer fan-in: one
// response per cache plus the memory response, visible as probe
// traffic proportional to misses.
func TestBroadcastFanIn(t *testing.T) {
	g := topo.NewGeometry(2, 2, 1)
	s := build(t, g)
	lc := workload.DefaultLocking(8)
	lc.Acquires = 8
	progs, _ := workload.LockingPrograms(lc, g.TotalProcs(), 1)
	runProgs(t, s, progs)

	var probes uint64
	for _, m := range s.Mems {
		probes += m.Stats.ProbesSent
	}
	var gets uint64
	for _, m := range s.Mems {
		gets += m.Stats.GetS + m.Stats.GetM
	}
	wantPerMiss := uint64(len(s.caches) - 1)
	if probes != gets*wantPerMiss {
		t.Errorf("probes = %d, want %d (%d requests × %d peers)",
			probes, gets*wantPerMiss, gets, wantPerMiss)
	}
}

// TestDeterminism asserts two identical runs take identical simulated
// time.
func TestDeterminism(t *testing.T) {
	run := func() sim.Time {
		g := topo.NewGeometry(2, 2, 2)
		s := build(t, g)
		lc := workload.DefaultLocking(4)
		lc.Acquires = 10
		progs, _ := workload.LockingPrograms(lc, g.TotalProcs(), 7)
		runProgs(t, s, progs)
		return s.Eng.Now()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("non-deterministic runtimes: %v vs %v", a, b)
	}
}

// TestSingleCMP exercises the degenerate one-chip geometry (all probes
// stay on one CMP except the memory hop).
func TestSingleCMP(t *testing.T) {
	g := topo.NewGeometry(1, 4, 2)
	s := build(t, g)
	lc := workload.DefaultLocking(2)
	lc.Acquires = 8
	progs, mon := workload.LockingPrograms(lc, g.TotalProcs(), 1)
	runProgs(t, s, progs)
	if len(mon.Violations) > 0 {
		t.Fatalf("mutual exclusion violated: %v", mon.Violations[0])
	}
}
