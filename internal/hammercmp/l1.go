package hammercmp

import (
	"fmt"

	"tokencmp/internal/cache"
	"tokencmp/internal/cpu"
	"tokencmp/internal/mem"
	"tokencmp/internal/network"
	"tokencmp/internal/sim"
	"tokencmp/internal/stats"
	"tokencmp/internal/topo"
)

// lineState is the MOESI stable state of a cache line. The zero value
// hI doubles as the placeholder state of a line reserved by an
// outstanding transaction: probes treat it as absent.
type lineState int

const (
	hI lineState = iota
	hS
	hE
	hM
	hO
)

func (s lineState) String() string { return [...]string{"I", "S", "E", "M", "O"}[s] }

// owner reports whether the state obliges the holder to answer probes
// with data.
func (s lineState) owner() bool { return s == hE || s == hM || s == hO }

// l1Line is an L1 cache line.
type l1Line struct {
	st        lineState
	data      uint64
	dirty     bool
	pinned    bool     // line reserved by the outstanding transaction
	holdUntil sim.Time // response-delay mechanism
}

// l1Txn is the single outstanding miss transaction: the broadcast
// collection state. The transaction completes when every other cache
// has responded (got == peers) and the speculative memory response has
// arrived.
type l1Txn struct {
	kind  cpu.AccessKind
	store uint64
	done  func(uint64)

	got       int // cache responses collected (acks and data)
	memGot    bool
	dataGot   bool
	data      uint64
	dataDirty bool
	migr      bool
	shared    bool
	memData   uint64
}

// wbEntry buffers a three-phase writeback awaiting its grant. Entries
// for one block form a FIFO: a line can be re-acquired and re-evicted
// before the first writeback's grant arrives, and per-link delivery
// order guarantees grants consume entries front-first. At most the
// newest entry is valid.
type wbEntry struct {
	data  uint64
	dirty bool
	excl  bool // the evicted line was M (not O)
	valid bool // cleared if a probe consumed the copy
}

// validWb returns the valid entry of a writeback FIFO, if any.
func validWb(q []*wbEntry) *wbEntry {
	for _, w := range q {
		if w.valid {
			return w
		}
	}
	return nil
}

// popWbAndReply pops the front entry of the granted block's writeback
// FIFO in wb and answers the grantor (gm.Src) with WbData — or
// WbCancel, if a probe consumed the buffered copy — on behalf of src.
// Both L1s (writing back to their L2 bank) and L2 banks (spilling to
// the home) share this third phase.
func popWbAndReply(sys *System, src topo.NodeID, wb map[mem.Block][]*wbEntry, gm *network.Message) {
	b := gm.Block
	q := wb[b]
	if len(q) == 0 {
		panic(fmt.Sprintf("hammercmp: %v WbGrant without Put for %v", src, b))
	}
	w := q[0]
	if len(q) == 1 {
		delete(wb, b)
	} else {
		wb[b] = q[1:]
	}
	if !w.valid {
		sys.ctr.wbRace.Inc()
		sys.Net.SendNew(network.Message{
			Src:   src,
			Dst:   gm.Src,
			Block: b,
			Kind:  kWbCancel,
			Class: stats.WritebackControl,
		})
		return
	}
	aux := 0
	if w.excl {
		aux = auxExcl
	}
	sys.Net.SendNew(network.Message{
		Src:     src,
		Dst:     gm.Src,
		Block:   b,
		Kind:    kWbData,
		Class:   stats.WritebackData,
		HasData: true,
		Data:    w.data,
		Dirty:   w.dirty,
		Aux:     aux,
	})
}

// L1Stats counts per-L1 events.
type L1Stats struct {
	Hits, Misses uint64
	Writebacks   uint64
	ProbesServed uint64
	Migratory    uint64
	GrantsE      uint64
}

// L1Ctrl is a HammerCMP L1 cache controller: a MOESI cache that
// requests through the home memory controller and collects the
// broadcast's fan-in of per-cache responses.
type L1Ctrl struct {
	id        topo.NodeID
	sys       *System
	isInstr   bool
	cmp, proc int
	peers     int // caches other than this one = expected probe responses

	cache *cache.Array[l1Line]
	txns  map[mem.Block]*l1Txn
	wb    map[mem.Block][]*wbEntry

	pend cpu.PendingAccess // access parked across the tag-access delay

	Stats L1Stats
}

// l1AttemptCall is the closure-free ScheduleCall target for the
// tag-access delay.
func l1AttemptCall(ctx, _ any) {
	c := ctx.(*L1Ctrl)
	c.attempt(c.pend.Take())
}

func newL1(sys *System, id topo.NodeID, cmp, proc int, instr bool) *L1Ctrl {
	cfg := sys.Cfg
	return &L1Ctrl{
		id:      id,
		sys:     sys,
		isInstr: instr,
		cmp:     cmp,
		proc:    proc,
		peers:   len(sys.caches) - 1,
		cache:   cache.New[l1Line](cache.Params{SizeBytes: cfg.L1Size, Ways: cfg.L1Ways, BlockSize: mem.BlockSize}),
		txns:    make(map[mem.Block]*l1Txn),
		wb:      make(map[mem.Block][]*wbEntry),
	}
}

// bank returns this CMP's L2 bank serving block b (the writeback
// target).
func (c *L1Ctrl) bank(b mem.Block) topo.NodeID {
	return c.sys.Geom.L2BankFor(c.cmp, b)
}

// home returns block b's home memory controller (the broadcast
// serialization point).
func (c *L1Ctrl) home(b mem.Block) topo.NodeID { return c.sys.Geom.HomeMem(b) }

// Access implements cpu.MemPort.
func (c *L1Ctrl) Access(kind cpu.AccessKind, addr mem.Addr, store uint64, done func(uint64)) {
	if c.isInstr && kind != cpu.IFetch {
		panic("hammercmp: data access routed to L1I")
	}
	b := mem.BlockOf(addr)
	if _, busy := c.txns[b]; busy {
		panic(fmt.Sprintf("hammercmp: L1 %v already busy on %v", c.id, b))
	}
	c.pend.Park("hammercmp: L1", kind, b, store, done)
	c.sys.Eng.ScheduleCall(c.sys.Cfg.L1Latency, l1AttemptCall, c, nil)
}

func (c *L1Ctrl) attempt(kind cpu.AccessKind, b mem.Block, store uint64, done func(uint64)) {
	if l := c.cache.Lookup(b); l != nil && l.State.st != hI {
		s := &l.State
		switch kind {
		case cpu.Load, cpu.IFetch:
			c.Stats.Hits++
			c.sys.ctr.l1Hit.Inc()
			c.cache.TouchLine(l)
			done(s.data)
			return
		default: // Store, Atomic
			if s.st == hM || s.st == hE {
				c.Stats.Hits++
				c.sys.ctr.l1Hit.Inc()
				c.cache.TouchLine(l)
				s.st = hM // silent E→M upgrade
				old := s.data
				s.data = store
				s.dirty = true
				s.holdUntil = c.sys.Eng.Now() + c.sys.Cfg.ResponseDelay
				if kind == cpu.Atomic {
					done(old)
				} else {
					done(0)
				}
				return
			}
			// S or O: write permission requires a broadcast upgrade.
		}
	}
	// Miss (or upgrade). Reserve the line now so the victim's writeback
	// overlaps the broadcast.
	c.Stats.Misses++
	c.sys.ctr.l1Miss.Inc()
	line, ok := c.reserve(b)
	if !ok {
		// All ways pinned (cannot happen with one outstanding txn, but
		// be safe): retry shortly.
		c.sys.Eng.Schedule(c.sys.Cfg.L1Latency, func() { c.attempt(kind, b, store, done) })
		return
	}
	line.pinned = true
	c.txns[b] = &l1Txn{kind: kind, store: store, done: done}
	req := kGetS
	if kind == cpu.Store || kind == cpu.Atomic {
		req = kGetM
	}
	c.sys.Net.SendNew(network.Message{
		Src:       c.id,
		Dst:       c.home(b),
		Block:     b,
		Kind:      req,
		Class:     stats.Request,
		Requestor: c.id,
	})
}

// reserve installs a line for b, writing back any displaced owner
// line. It preserves existing state if b is already resident (an S or
// O line upgrading keeps its data).
func (c *L1Ctrl) reserve(b mem.Block) (*l1Line, bool) {
	if l := c.cache.Lookup(b); l != nil {
		return &l.State, true
	}
	line, victim, vstate, wasEvicted, ok := c.cache.InstallAvoiding(b, func(st *l1Line) bool { return st.pinned })
	if !ok {
		return nil, false
	}
	if wasEvicted {
		c.evict(victim, vstate)
	}
	return &line.State, true
}

// evict handles a displaced line: M and O lines start a three-phase
// writeback to the local L2 bank; E and S lines drop silently (E is
// clean — a silent store would have made it M — and a dropped copy
// simply acks not-present to future probes).
func (c *L1Ctrl) evict(b mem.Block, st l1Line) {
	if st.st != hM && st.st != hO {
		return
	}
	c.Stats.Writebacks++
	c.sys.ctr.l1Writeback.Inc()
	c.wb[b] = append(c.wb[b], &wbEntry{data: st.data, dirty: st.dirty, excl: st.st == hM, valid: true})
	c.sys.Net.SendNew(network.Message{
		Src:   c.id,
		Dst:   c.bank(b),
		Block: b,
		Kind:  kPut,
		Class: stats.WritebackControl,
	})
}

// hammerL1Handle is the closure-free deferred-handling thunk: the L1
// holds a pooled copy of the message across its tag-access delay (and
// any response-delay hold) and frees it when handling completes.
func hammerL1Handle(ctx, arg any) {
	c, m := ctx.(*L1Ctrl), arg.(*network.Message)
	if c.handle(m) {
		c.sys.Net.Free(m)
	}
}

// Recv implements network.Endpoint.
func (c *L1Ctrl) Recv(m *network.Message) {
	c.sys.Eng.ScheduleCall(c.sys.Cfg.L1Latency, hammerL1Handle, c, c.sys.Net.CopyOf(m))
}

// handle reports whether it is done with m — false means a
// response-delay hold re-deferred the probe, keeping ownership.
func (c *L1Ctrl) handle(m *network.Message) bool {
	switch m.Kind {
	case kAck, kData:
		c.handleResponse(m)
	case kMemData:
		c.handleMemData(m)
	case kProbeS, kProbeM:
		return c.handleProbe(m)
	case kWbGrant:
		c.handleWbGrant(m)
	default:
		panic(fmt.Sprintf("hammercmp: L1 %v cannot handle %s", c.id, kindName(m.Kind)))
	}
	return true
}

// handleResponse folds one probe response into the broadcast
// collection.
func (c *L1Ctrl) handleResponse(m *network.Message) {
	txn := c.txns[m.Block]
	if txn == nil {
		panic(fmt.Sprintf("hammercmp: L1 %v stray %s for %v", c.id, kindName(m.Kind), m.Block))
	}
	txn.got++
	if m.Kind == kData {
		txn.dataGot = true
		txn.data = m.Data
		txn.dataDirty = m.Dirty
		if m.Aux&auxMigr != 0 {
			txn.migr = true
		}
		txn.shared = true
	} else if m.Aux&auxShared != 0 {
		txn.shared = true
	}
	c.maybeComplete(m.Block, txn)
}

func (c *L1Ctrl) handleMemData(m *network.Message) {
	txn := c.txns[m.Block]
	if txn == nil {
		panic(fmt.Sprintf("hammercmp: L1 %v stray MemData for %v", c.id, m.Block))
	}
	txn.memGot = true
	txn.memData = m.Data
	c.maybeComplete(m.Block, txn)
}

// maybeComplete finishes the transaction once every cache and the
// memory have answered. Data preference: a cache data response (the
// current owner), then our own surviving copy (an upgrade whose line
// was not invalidated), then our own pending writeback (the line left
// the cache but its data never left this controller), and only then
// the speculative — possibly stale — memory data.
func (c *L1Ctrl) maybeComplete(b mem.Block, txn *l1Txn) {
	if txn.got < c.peers || !txn.memGot {
		return
	}
	delete(c.txns, b)
	l := c.cache.Lookup(b)
	if l == nil {
		panic(fmt.Sprintf("hammercmp: L1 %v completion without reserved line for %v", c.id, b))
	}
	s := &l.State

	var val uint64
	var dirty, fromWb bool
	switch {
	case txn.dataGot:
		val, dirty = txn.data, txn.dataDirty
	case s.st != hI:
		val, dirty = s.data, s.dirty
	default:
		if w := validWb(c.wb[b]); w != nil {
			// We still own the block: the eviction's data never left.
			// Consume the buffered copy (its Put will be cancelled) so
			// ownership is not duplicated at the writeback target.
			val, dirty, fromWb = w.data, true, true
			w.valid = false
		} else {
			val, dirty = txn.memData, false
		}
	}

	switch txn.kind {
	case cpu.Load, cpu.IFetch:
		switch {
		case txn.migr:
			// Migratory handoff: the modified owner invalidated itself
			// and passed write permission with the data.
			c.Stats.Migratory++
			c.sys.ctr.migratory.Inc()
			s.st = hM
			s.dirty = true
		case fromWb:
			// Still the owner of the dirty data, but not exclusive: a
			// ProbeS may have handed shared copies out of the departure
			// buffer while it sat valid.
			s.st = hO
			s.dirty = true
		case txn.dataGot || txn.shared || s.st != hI:
			s.st = hS
			s.dirty = dirty
		default:
			// Nobody holds a copy: exclusive-clean from memory.
			c.Stats.GrantsE++
			s.st = hE
			s.dirty = false
		}
		s.data = val
	case cpu.Store, cpu.Atomic:
		s.st = hM
		s.data = txn.store
		s.dirty = true
		s.holdUntil = c.sys.Eng.Now() + c.sys.Cfg.ResponseDelay
	}
	s.pinned = false
	c.cache.TouchLine(l)

	// Release the home's per-block serialization.
	c.sys.Net.SendNew(network.Message{
		Src:   c.id,
		Dst:   c.home(b),
		Block: b,
		Kind:  kDone,
		Class: stats.Unblock,
	})
	switch txn.kind {
	case cpu.Atomic:
		txn.done(val)
	case cpu.Store:
		txn.done(0)
	default:
		txn.done(val)
	}
}

// handleProbe answers a broadcast probe: data if we own the block (in
// the cache or in a pending writeback), an acknowledgment otherwise.
func (c *L1Ctrl) handleProbe(m *network.Message) bool {
	b := m.Block
	if l := c.cache.Lookup(b); l != nil && l.State.st != hI {
		s := &l.State
		if s.holdUntil > c.sys.Eng.Now() {
			c.sys.Eng.ScheduleCallAt(s.holdUntil, hammerL1Handle, c, m)
			return false
		}
		c.Stats.ProbesServed++
		if m.Kind == kProbeS {
			switch s.st {
			case hM:
				// Migratory sharing: invalidate and pass write
				// permission with the dirty data.
				c.Stats.Migratory++
				c.respondData(m, s.data, true, auxMigr)
				c.invalidate(b, l)
			case hO:
				c.respondData(m, s.data, s.dirty, 0)
			case hE:
				c.respondData(m, s.data, false, 0)
				s.st = hS
			default: // hS
				c.respondAck(m, auxShared)
			}
			return true
		}
		// ProbeM: surrender the copy; owners supply the data.
		if s.st.owner() {
			c.respondData(m, s.data, s.dirty, 0)
		} else {
			c.respondAck(m, auxShared)
		}
		c.invalidate(b, l)
		return true
	}
	// The copy may live in a pending writeback.
	if w := validWb(c.wb[b]); w != nil {
		c.Stats.ProbesServed++
		c.respondData(m, w.data, w.dirty, 0)
		if m.Kind == kProbeM {
			w.valid = false // consumed; the Put will be cancelled
		} else {
			// A shared copy now exists: the buffered line must install
			// downstream as O, not M.
			w.excl = false
		}
		return true
	}
	c.respondAck(m, 0)
	return true
}

// invalidate drops our copy, preserving a pinned placeholder when a
// transaction is outstanding on the block.
func (c *L1Ctrl) invalidate(b mem.Block, l *cache.Line[l1Line]) {
	if l.State.pinned {
		l.State.st = hI
		l.State.dirty = false
		return
	}
	c.cache.Invalidate(b)
}

func (c *L1Ctrl) respondData(m *network.Message, data uint64, dirty bool, aux int) {
	c.sys.ctr.probeData.Inc()
	c.sys.Net.SendNew(network.Message{
		Src:     c.id,
		Dst:     m.Requestor,
		Block:   m.Block,
		Kind:    kData,
		Class:   stats.ResponseData,
		HasData: true,
		Data:    data,
		Dirty:   dirty,
		Aux:     aux | auxShared,
	})
}

func (c *L1Ctrl) respondAck(m *network.Message, aux int) {
	c.sys.ctr.probeAck.Inc()
	c.sys.Net.SendNew(network.Message{
		Src:   c.id,
		Dst:   m.Requestor,
		Block: m.Block,
		Kind:  kAck,
		Class: stats.InvFwdAckTokens,
		Aux:   aux,
	})
}

// handleWbGrant completes (or cancels) the front entry of the block's
// three-phase writeback FIFO.
func (c *L1Ctrl) handleWbGrant(m *network.Message) {
	popWbAndReply(c.sys, c.id, c.wb, m)
}
