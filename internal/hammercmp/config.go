package hammercmp

import (
	"tokencmp/internal/sim"
	"tokencmp/internal/topo"
)

// Config holds HammerCMP's structural and timing parameters. There is
// deliberately no directory-lookup latency: the home broadcasts probes
// as soon as its controller decision completes, which is the protocol's
// whole latency advantage over DirectoryCMP.
type Config struct {
	Geom topo.Geometry

	L1Latency   sim.Time
	L2Latency   sim.Time
	MemLatency  sim.Time // memory controller decision latency
	DRAMLatency sim.Time // DRAM array access for the speculative read

	// ResponseDelay is the bounded permission hold after a store (the
	// paper applies the delay mechanism to all protocols).
	ResponseDelay sim.Time

	L1Size, L1Ways     int
	L2BankSize, L2Ways int
}

// DefaultConfig returns the Table 3 parameters (shared with the other
// protocols) minus any directory state or lookup latency.
func DefaultConfig(g topo.Geometry) Config {
	return Config{
		Geom:          g,
		L1Latency:     sim.NS(2),
		L2Latency:     sim.NS(7),
		MemLatency:    sim.NS(6),
		DRAMLatency:   sim.NS(80),
		ResponseDelay: sim.NS(30),
		L1Size:        128 << 10,
		L1Ways:        4,
		L2BankSize:    (8 << 20) / 4,
		L2Ways:        4,
	}
}

// Name reports the protocol name for reports.
func (c Config) Name() string { return "HammerCMP" }
