package hammercmp

import (
	"fmt"

	"tokencmp/internal/mem"
	"tokencmp/internal/network"
	"tokencmp/internal/stats"
	"tokencmp/internal/topo"
)

// memTxn is the home's per-block serialization token: a broadcast in
// flight (closed by the requester's Done) or a writeback in its data
// window.
type memTxn struct {
	kind int // kGetS, kGetM, or kPut
}

// MemStats counts per-home events.
type MemStats struct {
	GetS, GetM uint64
	ProbesSent uint64
	MemReads   uint64
	MemWrites  uint64
	Puts       uint64
	Queued     uint64
}

// MemCtrl is a HammerCMP home memory controller. It holds no directory
// state at all — only the backing memory image — and serializes
// transactions per block: a request broadcasts probes to every cache
// except the requester and speculatively reads DRAM; the block stays
// busy until the requester's source-done. Writebacks use the same
// per-block busy state, so probes can never race a writeback's data
// transfer into memory.
type MemCtrl struct {
	id  topo.NodeID
	sys *System
	cmp int

	mem   map[mem.Block]uint64
	busy  map[mem.Block]*memTxn
	queue map[mem.Block][]network.Message // deferred requests, copied per the ownership contract

	Stats MemStats
}

func newMem(sys *System, id topo.NodeID, cmp int) *MemCtrl {
	return &MemCtrl{
		id:    id,
		sys:   sys,
		cmp:   cmp,
		mem:   make(map[mem.Block]uint64),
		busy:  make(map[mem.Block]*memTxn),
		queue: make(map[mem.Block][]network.Message),
	}
}

// MemValue exposes the memory image for audits.
func (c *MemCtrl) MemValue(b mem.Block) (uint64, bool) {
	v, ok := c.mem[b]
	return v, ok
}

// hammerMemHandle is the closure-free deferred-handling thunk: the
// home holds a pooled copy of the message across its controller delay
// and frees it afterwards (deferred requests are copied into the queue
// by value).
func hammerMemHandle(ctx, arg any) {
	c, m := ctx.(*MemCtrl), arg.(*network.Message)
	c.handle(m)
	c.sys.Net.Free(m)
}

// Recv implements network.Endpoint.
func (c *MemCtrl) Recv(m *network.Message) {
	c.sys.Eng.ScheduleCall(c.sys.Cfg.MemLatency, hammerMemHandle, c, c.sys.Net.CopyOf(m))
}

func (c *MemCtrl) handle(m *network.Message) {
	switch m.Kind {
	case kGetS, kGetM, kPut:
		c.admit(m)
	case kDone:
		c.close(m, kGetS, kGetM)
	case kWbData:
		c.Stats.MemWrites++
		c.sys.ctr.memWrite.Inc()
		c.mem[m.Block] = m.Data
		c.close(m, kPut)
	case kWbCancel:
		c.close(m, kPut)
	default:
		panic(fmt.Sprintf("hammercmp: home %v cannot handle %s", c.id, kindName(m.Kind)))
	}
}

func (c *MemCtrl) admit(m *network.Message) {
	b := m.Block
	if c.busy[b] != nil {
		c.Stats.Queued++
		c.queue[b] = append(c.queue[b], *m)
		return
	}
	c.busy[b] = &memTxn{kind: m.Kind}
	if m.Kind == kPut {
		c.Stats.Puts++
		c.sys.Net.SendNew(network.Message{
			Src:   c.id,
			Dst:   m.Src,
			Block: b,
			Kind:  kWbGrant,
			Class: stats.WritebackControl,
		})
		return
	}
	c.startBroadcast(m)
}

// startBroadcast probes every cache except the requester and
// speculatively reads DRAM for the requester.
func (c *MemCtrl) startBroadcast(m *network.Message) {
	b := m.Block
	probe := kProbeS
	if m.Kind == kGetM {
		c.Stats.GetM++
		probe = kProbeM
	} else {
		c.Stats.GetS++
	}
	for _, id := range c.sys.caches {
		if id == m.Requestor {
			continue
		}
		c.Stats.ProbesSent++
		c.sys.ctr.probeSent.Inc()
		c.sys.Net.SendNew(network.Message{
			Src:       c.id,
			Dst:       id,
			Block:     b,
			Kind:      probe,
			Class:     stats.Request,
			Requestor: m.Requestor,
		})
	}
	// The speculative DRAM read: the value cannot change while the
	// block is busy (writebacks serialize behind this transaction), so
	// reading it after the array latency is exact.
	c.Stats.MemReads++
	c.sys.ctr.memRead.Inc()
	requestor := m.Requestor
	c.sys.Eng.Schedule(c.sys.Cfg.DRAMLatency, func() {
		c.sys.Net.SendNew(network.Message{
			Src:     c.id,
			Dst:     requestor,
			Block:   b,
			Kind:    kMemData,
			Class:   stats.ResponseData,
			HasData: true,
			Data:    c.mem[b],
		})
	})
}

// close ends the block's current transaction (whose kind must be one
// of wants) and admits the next queued message.
func (c *MemCtrl) close(m *network.Message, wants ...int) {
	b := m.Block
	txn := c.busy[b]
	ok := false
	for _, w := range wants {
		if txn != nil && txn.kind == w {
			ok = true
		}
	}
	if !ok {
		panic(fmt.Sprintf("hammercmp: home %v stray %s for %v", c.id, kindName(m.Kind), b))
	}
	delete(c.busy, b)
	c.drain(b)
}

func (c *MemCtrl) drain(b mem.Block) {
	q := c.queue[b]
	if len(q) == 0 {
		delete(c.queue, b)
		return
	}
	m := c.sys.Net.NewMessage()
	*m = q[0]
	if len(q) == 1 {
		delete(c.queue, b)
	} else {
		c.queue[b] = q[1:]
	}
	// The controller decision latency was already paid at arrival;
	// re-admit on the next event (through a pooled copy the admit thunk
	// frees, mirroring the arrival path).
	c.sys.Eng.ScheduleCall(0, hammerMemAdmit, c, m)
}

// hammerMemAdmit re-admits a drained request; admit copies it if it
// must queue again, so the pooled message is always freed here.
func hammerMemAdmit(ctx, arg any) {
	c, m := ctx.(*MemCtrl), arg.(*network.Message)
	c.admit(m)
	c.sys.Net.Free(m)
}
