package hammercmp

import (
	"tokencmp/internal/counters"
	"tokencmp/internal/cpu"
	"tokencmp/internal/network"
	"tokencmp/internal/sim"
	"tokencmp/internal/topo"
)

// System is a complete HammerCMP machine.
type System struct {
	Eng  *sim.Engine
	Net  *network.Network
	Cfg  Config
	Geom topo.Geometry

	Ctrs *counters.Set
	ctr  *ctrs

	L1Ds [][]*L1Ctrl
	L1Is [][]*L1Ctrl
	L2s  [][]*L2Ctrl
	Mems []*MemCtrl

	// caches lists every cache endpoint; a requester expects
	// len(caches)-1 probe responses plus the memory response.
	caches []topo.NodeID
}

// NewSystem wires a HammerCMP machine.
func NewSystem(eng *sim.Engine, cfg Config, netCfg network.Config) *System {
	g := cfg.Geom
	s := &System{
		Eng:    eng,
		Cfg:    cfg,
		Geom:   g,
		Net:    network.New(eng, g, netCfg),
		caches: g.AllCaches(),
		Ctrs:   counters.NewSet(),
	}
	s.ctr = newCtrs(s.Ctrs)
	s.Net.WireCounters(s.Ctrs)
	s.L1Ds = make([][]*L1Ctrl, g.CMPs)
	s.L1Is = make([][]*L1Ctrl, g.CMPs)
	s.L2s = make([][]*L2Ctrl, g.CMPs)
	s.Mems = make([]*MemCtrl, g.CMPs)
	for c := 0; c < g.CMPs; c++ {
		s.L1Ds[c] = make([]*L1Ctrl, g.ProcsPerCMP)
		s.L1Is[c] = make([]*L1Ctrl, g.ProcsPerCMP)
		s.L2s[c] = make([]*L2Ctrl, g.L2Banks)
		for b := 0; b < g.L2Banks; b++ {
			l2 := newL2(s, g.L2Node(c, b), c, b)
			s.L2s[c][b] = l2
			s.Net.Attach(l2.id, l2)
		}
		for p := 0; p < g.ProcsPerCMP; p++ {
			d := newL1(s, g.L1DNode(c, p), c, p, false)
			i := newL1(s, g.L1INode(c, p), c, p, true)
			s.L1Ds[c][p] = d
			s.L1Is[c][p] = i
			s.Net.Attach(d.id, d)
			s.Net.Attach(i.id, i)
		}
		m := newMem(s, g.MemNode(c), c)
		s.Mems[c] = m
		s.Net.Attach(m.id, m)
	}
	return s
}

// Ports returns the data and instruction ports of a global processor.
func (s *System) Ports(globalProc int) (data, inst cpu.MemPort) {
	c, p := s.Geom.ProcOf(globalProc)
	return s.L1Ds[c][p], s.L1Is[c][p]
}

// Name reports the protocol name.
func (s *System) Name() string { return s.Cfg.Name() }

// Counters exposes the machine-wide uniform event-counter registry.
func (s *System) Counters() *counters.Set { return s.Ctrs }

// Misses totals L1 misses.
func (s *System) Misses() uint64 {
	var n uint64
	for c := range s.L1Ds {
		for p := range s.L1Ds[c] {
			n += s.L1Ds[c][p].Stats.Misses + s.L1Is[c][p].Stats.Misses
		}
	}
	return n
}
