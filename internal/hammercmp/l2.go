package hammercmp

import (
	"fmt"

	"tokencmp/internal/cache"
	"tokencmp/internal/mem"
	"tokencmp/internal/network"
	"tokencmp/internal/stats"
	"tokencmp/internal/topo"
)

// l2Line is an L2 bank line. HammerCMP's L2 is a victim cache: lines
// arrive only through L1 owner writebacks, so they are always hM or
// hO.
type l2Line struct {
	st    lineState
	data  uint64
	dirty bool
}

// L2Stats counts per-bank events.
type L2Stats struct {
	PutsIn       uint64
	ProbesServed uint64
	Writebacks   uint64
	Deferred     uint64
}

// L2Ctrl is a HammerCMP L2 bank: an on-chip victim cache that answers
// broadcast probes like any other cache and spills its own victims to
// the home memory controller.
//
// The bank is the ordering point for its L1s' writebacks: from the
// moment a Put arrives until its WbData or WbCancel lands, probes for
// that block are deferred. Without the deferral a probe could find the
// data nowhere — already granted away from the L1's buffer but not yet
// installed here — and the requester would complete with stale memory
// data.
type L2Ctrl struct {
	id        topo.NodeID
	sys       *System
	cmp, bank int

	cache    *cache.Array[l2Line]
	wb       map[mem.Block][]*wbEntry        // our writebacks to home
	busy     map[mem.Block]bool              // an L1 Put is in its data window
	deferred map[mem.Block][]network.Message // deferred behind busy, copied per the ownership contract

	Stats L2Stats
}

func newL2(sys *System, id topo.NodeID, cmp, bank int) *L2Ctrl {
	cfg := sys.Cfg
	return &L2Ctrl{
		id:       id,
		sys:      sys,
		cmp:      cmp,
		bank:     bank,
		cache:    cache.New[l2Line](cache.Params{SizeBytes: cfg.L2BankSize, Ways: cfg.L2Ways, BlockSize: mem.BlockSize}),
		wb:       make(map[mem.Block][]*wbEntry),
		busy:     make(map[mem.Block]bool),
		deferred: make(map[mem.Block][]network.Message),
	}
}

func (c *L2Ctrl) home(b mem.Block) topo.NodeID { return c.sys.Geom.HomeMem(b) }

// hammerL2Handle is the closure-free deferred-handling thunk: the bank
// holds a pooled copy of the message across its tag-access delay and
// frees it afterwards (messages deferred behind a writeback window are
// copied into the deferred queue by value).
func hammerL2Handle(ctx, arg any) {
	c, m := ctx.(*L2Ctrl), arg.(*network.Message)
	c.handle(m)
	c.sys.Net.Free(m)
}

// Recv implements network.Endpoint.
func (c *L2Ctrl) Recv(m *network.Message) {
	c.sys.Eng.ScheduleCall(c.sys.Cfg.L2Latency, hammerL2Handle, c, c.sys.Net.CopyOf(m))
}

func (c *L2Ctrl) handle(m *network.Message) {
	switch m.Kind {
	case kProbeS, kProbeM:
		if c.busy[m.Block] {
			c.Stats.Deferred++
			c.deferred[m.Block] = append(c.deferred[m.Block], *m)
			return
		}
		c.handleProbe(m)
	case kPut:
		if c.busy[m.Block] {
			c.Stats.Deferred++
			c.deferred[m.Block] = append(c.deferred[m.Block], *m)
			return
		}
		c.handlePut(m)
	case kWbData, kWbCancel:
		c.handleWbData(m)
	case kWbGrant:
		c.handleWbGrant(m)
	default:
		panic(fmt.Sprintf("hammercmp: L2 %v cannot handle %s", c.id, kindName(m.Kind)))
	}
}

// handleProbe answers a broadcast probe from the bank's line or its
// pending writeback to home.
func (c *L2Ctrl) handleProbe(m *network.Message) {
	b := m.Block
	if l := c.cache.Lookup(b); l != nil {
		s := &l.State
		c.Stats.ProbesServed++
		c.respondData(m, s.data, s.dirty)
		if m.Kind == kProbeM {
			c.cache.Invalidate(b)
		} else if s.st == hM {
			s.st = hO // a reader exists now; no silent upgrades here anyway
		}
		return
	}
	if w := validWb(c.wb[b]); w != nil {
		c.Stats.ProbesServed++
		c.respondData(m, w.data, w.dirty)
		if m.Kind == kProbeM {
			w.valid = false
		} else {
			w.excl = false // a shared copy now exists
		}
		return
	}
	c.respondAck(m)
}

func (c *L2Ctrl) respondData(m *network.Message, data uint64, dirty bool) {
	c.sys.ctr.probeData.Inc()
	c.sys.Net.SendNew(network.Message{
		Src:     c.id,
		Dst:     m.Requestor,
		Block:   m.Block,
		Kind:    kData,
		Class:   stats.ResponseData,
		HasData: true,
		Data:    data,
		Dirty:   dirty,
		Aux:     auxShared,
	})
}

func (c *L2Ctrl) respondAck(m *network.Message) {
	c.sys.ctr.probeAck.Inc()
	c.sys.Net.SendNew(network.Message{
		Src:   c.id,
		Dst:   m.Requestor,
		Block: m.Block,
		Kind:  kAck,
		Class: stats.InvFwdAckTokens,
	})
}

// handlePut opens an L1's writeback window: grant immediately and
// defer probes until the data (or a cancel) arrives.
func (c *L2Ctrl) handlePut(m *network.Message) {
	c.Stats.PutsIn++
	c.busy[m.Block] = true
	c.sys.Net.SendNew(network.Message{
		Src:   c.id,
		Dst:   m.Src,
		Block: m.Block,
		Kind:  kWbGrant,
		Class: stats.WritebackControl,
	})
}

// handleWbData closes an L1's writeback window, installing the line
// (possibly spilling a victim to home) on data, and replays deferred
// messages.
func (c *L2Ctrl) handleWbData(m *network.Message) {
	b := m.Block
	if !c.busy[b] {
		panic(fmt.Sprintf("hammercmp: L2 %v %s without Put window for %v", c.id, kindName(m.Kind), b))
	}
	if m.Kind == kWbData {
		line, victim, vstate, wasEvicted := c.cache.Install(b)
		if wasEvicted {
			c.spill(victim, vstate)
		}
		st := hO
		if m.Aux&auxExcl != 0 {
			st = hM
		}
		line.State = l2Line{st: st, data: m.Data, dirty: m.Dirty}
	}
	delete(c.busy, b)
	c.drain(b)
}

// spill writes an evicted victim back to its home memory controller
// (three-phase, probeable from the buffer while in flight).
func (c *L2Ctrl) spill(v mem.Block, st l2Line) {
	c.Stats.Writebacks++
	c.sys.ctr.l2Writeback.Inc()
	c.wb[v] = append(c.wb[v], &wbEntry{data: st.data, dirty: st.dirty, excl: st.st == hM, valid: true})
	c.sys.Net.SendNew(network.Message{
		Src:   c.id,
		Dst:   c.home(v),
		Block: v,
		Kind:  kPut,
		Class: stats.WritebackControl,
	})
}

// drain replays messages deferred behind a writeback window.
func (c *L2Ctrl) drain(b mem.Block) {
	for !c.busy[b] {
		q := c.deferred[b]
		if len(q) == 0 {
			delete(c.deferred, b)
			return
		}
		m := q[0]
		if len(q) == 1 {
			delete(c.deferred, b)
		} else {
			c.deferred[b] = q[1:]
		}
		c.handle(&m)
	}
}

// handleWbGrant answers the home's grant for our own spill with the
// front entry of the block's writeback FIFO.
func (c *L2Ctrl) handleWbGrant(m *network.Message) {
	popWbAndReply(c.sys, c.id, c.wb, m)
}
