package hammercmp

import "tokencmp/internal/counters"

// ctrs holds the system-wide uniform counter handles (shared by every
// controller of one machine), pre-resolved once at construction so the
// protocol hot paths pay plain word increments.
type ctrs struct {
	l1Hit, l1Miss, l1Writeback *counters.Counter
	l2Writeback                *counters.Counter
	probeSent                  *counters.Counter
	probeData, probeAck        *counters.Counter
	wbRace                     *counters.Counter
	memRead, memWrite          *counters.Counter
	migratory                  *counters.Counter
}

func newCtrs(cs *counters.Set) *ctrs {
	return &ctrs{
		l1Hit:       cs.Counter(counters.L1Hit),
		l1Miss:      cs.Counter(counters.L1Miss),
		l1Writeback: cs.Counter(counters.L1Writeback),
		l2Writeback: cs.Counter(counters.L2Writeback),
		probeSent:   cs.Counter(counters.ProbeSent),
		probeData:   cs.Counter(counters.ProbeData),
		probeAck:    cs.Counter(counters.ProbeAck),
		wbRace:      cs.Counter(counters.WritebackRace),
		memRead:     cs.Counter(counters.MemRead),
		memWrite:    cs.Counter(counters.MemWrite),
		migratory:   cs.Counter(counters.MigratoryGrant),
	}
}
