// Package hammercmp implements HammerCMP: a broadcast-based MOESI
// coherence protocol in the style of AMD's Hammer, added as a third
// real contender next to DirectoryCMP and the TokenCMP variants. It
// keeps no directory state and no tokens: an L1 miss sends its request
// to the block's home memory controller, which serializes requests
// per block and broadcasts a probe to every cache in the system while
// speculatively reading DRAM. Every probed cache answers the requester
// directly — a data response if it owns the block, an acknowledgment
// otherwise — and the requester completes once it has collected one
// response per cache plus the memory response, preferring cache data
// over the (possibly stale) speculative memory data. A final
// source-done message releases the home's per-block serialization.
//
// The protocol trades interconnect bandwidth for latency: it avoids
// DirectoryCMP's inter-CMP directory lookup (80 ns in DRAM) entirely,
// but every miss costs ~2·(caches−1) messages, most of them crossing
// the global interconnect. L2 banks participate as on-chip victim
// caches: an L1 evicting an owned line writes it back to its local L2
// bank (three-phase, so in-flight data is always probeable), and L2
// evictions write back to the home memory controller the same way.
package hammercmp

import "fmt"

// Message kinds.
const (
	// kGetS / kGetM carry an L1's read / write request to the block's
	// home memory controller.
	kGetS = iota
	kGetM
	// kProbeS / kProbeM are the home's broadcast probes to every cache
	// except the requester. Requestor names the original L1.
	kProbeS
	kProbeM
	// kAck answers a probe without data; Aux carries the shared flag.
	kAck
	// kData answers a probe with data; Aux carries the migratory flag.
	kData
	// kMemData is the home's speculative DRAM response to the requester.
	kMemData
	// kDone is the requester's source-done, releasing the home's
	// per-block serialization.
	kDone
	// kPut / kWbGrant / kWbData / kWbCancel implement three-phase
	// writebacks (L1 → local L2 bank, and L2 bank → home memory). Aux
	// on kPut/kWbData carries the exclusive flag (the evicted line was
	// M rather than O).
	kPut
	kWbGrant
	kWbData
	kWbCancel
)

func kindName(k int) string {
	names := []string{"GetS", "GetM", "ProbeS", "ProbeM", "Ack", "Data",
		"MemData", "Done", "Put", "WbGrant", "WbData", "WbCancel"}
	if k >= 0 && k < len(names) {
		return names[k]
	}
	return fmt.Sprintf("kind(%d)", k)
}

// Aux flag bits on probe responses and writeback messages.
const (
	auxShared = 1 << iota // responder held (or holds) a copy
	auxMigr               // migratory handoff: requester takes M even on a read
	auxExcl               // writeback of an M (not O) line
)
