// Package experiments regenerates every table and figure of the paper's
// evaluation (Sections 7 and 8): the Figure 2/3 locking sweeps, the
// Table 4 barrier study, the Figure 6 commercial-workload runtimes, and
// the Figure 7 traffic breakdowns. Each experiment runs the simulated
// M-CMP system with pseudo-randomly perturbed seeds and reports means
// with 95% confidence intervals (Alameldeen & Wood), exactly as the cmd/
// tools and bench_test.go print them.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"

	"tokencmp/internal/counters"
	"tokencmp/internal/cpu"
	"tokencmp/internal/machine"
	"tokencmp/internal/network"
	"tokencmp/internal/runner"
	"tokencmp/internal/sim"
	"tokencmp/internal/stats"
	"tokencmp/internal/topo"
	"tokencmp/internal/workload"
)

// Options configures an experiment run.
type Options struct {
	Geom  topo.Geometry
	Seeds int    // perturbed runs per configuration
	Limit uint64 // event cap per run (0 = default)

	// Jobs bounds how many simulation runs execute concurrently
	// (0 = one per CPU). Every (protocol, configuration, seed) run is
	// independent — it owns its rand.Rand, sim.Engine, and
	// machine.Machine — and results merge in a fixed serial order, so
	// output is byte-identical for any Jobs value.
	Jobs int

	// Context cancels the whole experiment: no further (protocol,
	// configuration, seed) run is dispatched once it is done, and every
	// in-flight simulation engine stops within sim.CancelCheckEvery
	// events. The experiment then returns an error satisfying
	// errors.Is(err, ctx.Err()). Nil means run to completion; an
	// installed-but-uncancelled context leaves every figure
	// byte-identical (pinned by the golden-figures tests).
	Context context.Context

	// Workload scale knobs (smaller = faster benches).
	Acquires    int // locking: acquires per processor
	Barriers    int // barrier: rounds
	TxnsPerProc int // commercial: transactions per processor

	// Check enables the runtime coherence monitors (slower).
	Check bool

	// Faults configures the network's seeded fault injector for every
	// run of the experiment (zero value: reliable network). The fault
	// seed is perturbed per run alongside the workload seed so each
	// seeded repetition sees an independent fault pattern.
	Faults network.FaultConfig

	// Baseline names the protocol every figure and table normalizes
	// to. Empty selects automatically (see resolveBaseline).
	Baseline string

	// Commercial runs use scaled-down caches so the surrogates' working
	// sets exert the same capacity pressure the full-size workloads put
	// on the Table 3 hierarchy (simulation scaling, as in the paper's
	// methodology lineage). Zero means the Table 3 sizes.
	CommercialL1, CommercialL2Bank int

	// effective per-run cache overrides (set by RunCommercial).
	l1Size, l2BankSize int
}

// DefaultOptions returns the paper's target system (four 4-way CMPs)
// with workload sizes suitable for full figure regeneration.
func DefaultOptions() Options {
	return Options{
		Geom:             topo.NewGeometry(4, 4, 4),
		Seeds:            3,
		Acquires:         32,
		Barriers:         10,
		TxnsPerProc:      30,
		CommercialL1:     16 << 10,
		CommercialL2Bank: 64 << 10,
	}
}

// ctx returns the experiment's cancellation context (Background when
// none was set).
func (o *Options) ctx() context.Context {
	if o.Context != nil {
		return o.Context
	}
	return context.Background()
}

// run executes one workload on one protocol with one seed.
func run(proto string, opt Options, seed int64, progs func(m *machine.Machine, s int64) []cpu.Program) (machine.Result, error) {
	faults := opt.Faults
	if faults.Enabled() {
		// Each seeded repetition draws an independent fault pattern, so
		// the cell's confidence interval covers fault-timing variance
		// too, not just workload perturbation.
		faults.Seed += seed
	}
	m, err := machine.New(machine.Config{
		Protocol:         proto,
		Geom:             opt.Geom,
		Seed:             seed,
		CheckConsistency: opt.Check,
		AuditTokens:      opt.Check,
		Faults:           faults,
		L1Size:           opt.l1Size,
		L2BankSize:       opt.l2BankSize,
	})
	if err != nil {
		return machine.Result{}, err
	}
	res, err := m.RunCtx(opt.ctx(), progs(m, seed), opt.Limit)
	if err != nil {
		return res, fmt.Errorf("%s seed %d: %w", proto, seed, err)
	}
	return res, nil
}

// Cell is one measured configuration.
type Cell struct {
	Runtime stats.Sample // nanoseconds
	Traffic stats.Traffic
	Misses  uint64
	Persist uint64
	// Counters accumulates the uniform event-counter snapshots of every
	// seed run in the cell (summed, like Misses).
	Counters map[string]uint64
}

// cellTask describes one (protocol, configuration) cell; runCells runs
// its opt.Seeds perturbed seeds through the shared worker pool.
type cellTask struct {
	proto string
	opt   Options
	progs func(m *machine.Machine, s int64) []cpu.Program
}

// runCells executes every (task, seed) pair through a bounded worker
// pool — the whole experiment fans out at once, not one cell at a time —
// and then merges each task's seed results in ascending seed order into
// index-addressed cells. The merge order is fixed, so the returned
// cells are identical to a serial nested-loop run for any jobs value.
// Cancelling ctx stops dispatching new runs; runs already in flight
// stop within sim.CancelCheckEvery events because every task's machine
// carries the same context.
func runCells(ctx context.Context, tasks []cellTask, jobs int) ([]*Cell, error) {
	offsets := make([]int, len(tasks)+1)
	for i, t := range tasks {
		offsets[i+1] = offsets[i] + t.opt.Seeds
	}
	results := make([]machine.Result, offsets[len(tasks)])
	pool := runner.New(jobs)
	err := pool.RunCtx(ctx, len(results), func(i int) error {
		// ti is the task owning flat slot i: the smallest index with
		// offsets[ti+1] > i.
		ti := sort.SearchInts(offsets[1:], i+1)
		t := tasks[ti]
		res, err := run(t.proto, t.opt, int64(i-offsets[ti]+1), t.progs)
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	cells := make([]*Cell, len(tasks))
	for ti := range tasks {
		c := &Cell{Counters: map[string]uint64{}}
		for s := offsets[ti]; s < offsets[ti+1]; s++ {
			res := &results[s]
			c.Runtime.Add(float64(res.Runtime) / float64(sim.Nanosecond))
			c.Traffic.Merge(&res.Traffic)
			c.Misses += res.Misses
			c.Persist += res.Persistent
			counters.MergeInto(c.Counters, res.Counters)
		}
		cells[ti] = c
	}
	return cells, nil
}

// LockSweep is the Figure 2 / Figure 3 experiment.
type LockSweep struct {
	LockCounts    []int
	Protocols     []string
	BaselineProto string             // resolved normalization protocol
	Cells         map[string][]*Cell // protocol → per lock count
}

// RunLockSweep measures the locking micro-benchmark across lock counts.
// Every (protocol, lock count, seed) run goes through the worker pool.
func RunLockSweep(protocols []string, lockCounts []int, opt Options) (*LockSweep, error) {
	var tasks []cellTask
	for _, proto := range protocols {
		for _, locks := range lockCounts {
			locks := locks
			tasks = append(tasks, cellTask{proto: proto, opt: opt,
				progs: func(m *machine.Machine, seed int64) []cpu.Program {
					lc := workload.DefaultLocking(locks)
					if opt.Acquires > 0 {
						lc.Acquires = opt.Acquires
					}
					progs, _ := workload.LockingPrograms(lc, m.Cfg.Geom.TotalProcs(), seed)
					return progs
				}})
		}
	}
	cells, err := runCells(opt.ctx(), tasks, opt.Jobs)
	if err != nil {
		return nil, err
	}
	out := &LockSweep{LockCounts: lockCounts, Protocols: protocols,
		BaselineProto: resolveBaseline(opt.Baseline, protocols), Cells: map[string][]*Cell{}}
	for pi, proto := range protocols {
		out.Cells[proto] = cells[pi*len(lockCounts) : (pi+1)*len(lockCounts)]
	}
	return out, nil
}

// resolveBaseline picks the protocol every figure and table normalizes
// to. The explicit choice wins when it was actually measured; otherwise
// the first measured entry of a fixed priority order — DirectoryCMP,
// DirectoryCMP-zero, HammerCMP, any non-idealized protocol — and only
// as a last resort the first protocol listed (PerfectL2 included). The
// result is recorded on the experiment at run time, so rendering is
// deterministic for arbitrary protocol subsets (e.g. HammerCMP +
// PerfectL2 normalizes to HammerCMP regardless of list order).
func resolveBaseline(explicit string, protocols []string) string {
	for _, want := range []string{explicit, "DirectoryCMP", "DirectoryCMP-zero", "HammerCMP"} {
		if want == "" {
			continue
		}
		for _, p := range protocols {
			if p == want {
				return p
			}
		}
	}
	for _, p := range protocols {
		if p != "PerfectL2" {
			return p
		}
	}
	return protocols[0]
}

// Baseline returns the normalization denominator: the baseline
// protocol at the largest (least contended) lock count, as in
// Figures 2 and 3.
func (s *LockSweep) Baseline() float64 {
	cells := s.Cells[s.BaselineProto]
	return cells[len(cells)-1].Runtime.Mean()
}

// Render prints the normalized runtime series (one row per lock count).
func (s *LockSweep) Render(w io.Writer, title string) {
	base := s.Baseline()
	fmt.Fprintf(w, "%s (runtime normalized to %s @ %d locks)\n", title, s.BaselineProto, s.LockCounts[len(s.LockCounts)-1])
	fmt.Fprintf(w, "%8s", "locks")
	for _, p := range s.Protocols {
		fmt.Fprintf(w, " %22s", p)
	}
	fmt.Fprintln(w)
	for i, locks := range s.LockCounts {
		fmt.Fprintf(w, "%8d", locks)
		for _, p := range s.Protocols {
			c := s.Cells[p][i]
			fmt.Fprintf(w, " %14.3f ± %5.3f", c.Runtime.Mean()/base, c.Runtime.CI95()/base)
		}
		fmt.Fprintln(w)
	}
}

// BarrierTable is the Table 4 experiment.
type BarrierTable struct {
	Protocols     []string
	BaselineProto string           // resolved normalization protocol
	Fixed         map[string]*Cell // 3000 ns fixed work
	Jittered      map[string]*Cell // 3000 ns ± U(1000)
}

// RunBarrierTable measures the barrier micro-benchmark. Every
// (protocol, jitter, seed) run goes through the worker pool.
func RunBarrierTable(protocols []string, opt Options) (*BarrierTable, error) {
	jitters := []sim.Time{0, sim.NS(1000)}
	var tasks []cellTask
	for _, proto := range protocols {
		for _, jitter := range jitters {
			jitter := jitter
			tasks = append(tasks, cellTask{proto: proto, opt: opt,
				progs: func(m *machine.Machine, seed int64) []cpu.Program {
					bc := workload.DefaultBarrier(m.Cfg.Geom.TotalProcs(), jitter)
					if opt.Barriers > 0 {
						bc.Iterations = opt.Barriers
					}
					progs, _ := workload.BarrierPrograms(bc, seed)
					return progs
				}})
		}
	}
	cells, err := runCells(opt.ctx(), tasks, opt.Jobs)
	if err != nil {
		return nil, err
	}
	out := &BarrierTable{Protocols: protocols, BaselineProto: resolveBaseline(opt.Baseline, protocols),
		Fixed: map[string]*Cell{}, Jittered: map[string]*Cell{}}
	for pi, proto := range protocols {
		out.Fixed[proto] = cells[pi*len(jitters)]
		out.Jittered[proto] = cells[pi*len(jitters)+1]
	}
	return out, nil
}

// Render prints Table 4, normalized to the resolved baseline protocol.
func (t *BarrierTable) Render(w io.Writer) {
	bp := t.BaselineProto
	baseF := t.Fixed[bp].Runtime.Mean()
	baseJ := t.Jittered[bp].Runtime.Mean()
	fmt.Fprintf(w, "Table 4: Barrier micro-benchmark runtime (normalized to %s)\n", bp)
	fmt.Fprintf(w, "%-22s %16s %22s\n", "Protocol", "3000ns fixed", "3000ns + U(-1k,+1k)")
	for _, p := range t.Protocols {
		fmt.Fprintf(w, "%-22s %16.2f %22.2f\n", p,
			t.Fixed[p].Runtime.Mean()/baseF, t.Jittered[p].Runtime.Mean()/baseJ)
	}
}

// Commercial is the Figure 6 + Figure 7 experiment.
type Commercial struct {
	Workloads     []string
	Protocols     []string
	BaselineProto string                      // resolved normalization protocol
	Cells         map[string]map[string]*Cell // workload → protocol → cell
}

// CommercialParamsFor returns the surrogate parameters by name.
func CommercialParamsFor(name string) (workload.CommercialParams, error) {
	switch name {
	case "OLTP":
		return workload.OLTP(), nil
	case "Apache":
		return workload.Apache(), nil
	case "SPECjbb":
		return workload.SPECjbb(), nil
	}
	return workload.CommercialParams{}, fmt.Errorf("unknown workload %q", name)
}

// RunCommercial measures the commercial surrogates on all protocols.
// Every (workload, protocol, seed) run goes through the worker pool.
func RunCommercial(workloads, protocols []string, opt Options) (*Commercial, error) {
	runOpt := opt
	runOpt.l1Size = opt.CommercialL1
	runOpt.l2BankSize = opt.CommercialL2Bank
	var tasks []cellTask
	for _, wl := range workloads {
		params, err := CommercialParamsFor(wl)
		if err != nil {
			return nil, err
		}
		if opt.TxnsPerProc > 0 {
			params.TxnsPerProc = opt.TxnsPerProc
		}
		for _, proto := range protocols {
			tasks = append(tasks, cellTask{proto: proto, opt: runOpt,
				progs: func(m *machine.Machine, seed int64) []cpu.Program {
					progs, _ := workload.CommercialPrograms(params, m.Cfg.Geom.TotalProcs(), seed)
					return progs
				}})
		}
	}
	cells, err := runCells(opt.ctx(), tasks, opt.Jobs)
	if err != nil {
		return nil, err
	}
	out := &Commercial{Workloads: workloads, Protocols: protocols,
		BaselineProto: resolveBaseline(opt.Baseline, protocols), Cells: map[string]map[string]*Cell{}}
	for wi, wl := range workloads {
		out.Cells[wl] = map[string]*Cell{}
		for pi, proto := range protocols {
			out.Cells[wl][proto] = cells[wi*len(protocols)+pi]
		}
	}
	return out, nil
}

// RenderRuntime prints Figure 6 (runtime normalized to the baseline,
// with the speedup the paper quotes: runtime(Dir)/runtime(X) - 1).
func (c *Commercial) RenderRuntime(w io.Writer) {
	bp := c.BaselineProto
	fmt.Fprintf(w, "Figure 6: Commercial workload runtime (normalized to %s)\n", bp)
	fmt.Fprintf(w, "%-22s", "Protocol")
	for _, wl := range c.Workloads {
		fmt.Fprintf(w, " %18s", wl)
	}
	fmt.Fprintln(w)
	for _, p := range c.Protocols {
		fmt.Fprintf(w, "%-22s", p)
		for _, wl := range c.Workloads {
			base := c.Cells[wl][bp].Runtime.Mean()
			cell := c.Cells[wl][p]
			fmt.Fprintf(w, " %10.3f ±%5.3f", cell.Runtime.Mean()/base, cell.Runtime.CI95()/base)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "\nSpeedup vs %s (runtime(%s)/runtime(X) - 1):\n", bp, bp)
	for _, p := range c.Protocols {
		if p == bp {
			continue
		}
		fmt.Fprintf(w, "%-22s", p)
		for _, wl := range c.Workloads {
			base := c.Cells[wl][bp].Runtime.Mean()
			cell := c.Cells[wl][p]
			fmt.Fprintf(w, " %17.1f%%", (base/cell.Runtime.Mean()-1)*100)
		}
		fmt.Fprintln(w)
	}
}

// RenderTraffic prints Figure 7a (inter-CMP) or 7b (intra-CMP): bytes by
// message class, normalized to DirectoryCMP's total at that level.
func (c *Commercial) RenderTraffic(w io.Writer, level stats.Level) {
	name := "Figure 7a: Inter-CMP traffic"
	if level == stats.IntraCMP {
		name = "Figure 7b: Intra-CMP traffic"
	}
	bp := c.BaselineProto
	fmt.Fprintf(w, "%s (bytes by message type, normalized to %s total)\n", name, bp)
	for _, wl := range c.Workloads {
		base := float64(c.Cells[wl][bp].Traffic.TotalBytes(level))
		fmt.Fprintf(w, "\n[%s]\n%-22s %9s", wl, "Protocol", "total")
		for cl := stats.TrafficClass(0); cl < stats.NumTrafficClasses; cl++ {
			fmt.Fprintf(w, " %19s", cl)
		}
		fmt.Fprintln(w)
		for _, p := range c.Protocols {
			tr := c.Cells[wl][p].Traffic
			fmt.Fprintf(w, "%-22s %9.3f", p, float64(tr.TotalBytes(level))/base)
			for cl := stats.TrafficClass(0); cl < stats.NumTrafficClasses; cl++ {
				fmt.Fprintf(w, " %19.3f", float64(tr.Bytes[level][cl])/base)
			}
			fmt.Fprintln(w)
		}
	}
}

// PersistentFraction reports persistent requests as a share of L1 misses
// (the paper: < 0.3% for all macro workloads).
func (c *Commercial) PersistentFraction(wl, proto string) float64 {
	cell := c.Cells[wl][proto]
	if cell.Misses == 0 {
		return 0
	}
	return float64(cell.Persist) / float64(cell.Misses)
}

// SortedProtocols returns the protocols present in m in alphabetical
// order.
func SortedProtocols(m map[string]*Cell) []string {
	var out []string
	for p := range m {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}
