package experiments

import (
	"fmt"
	"io"
	"math"

	"tokencmp/internal/counters"
	"tokencmp/internal/cpu"
	"tokencmp/internal/machine"
	"tokencmp/internal/runner"
	"tokencmp/internal/stats"
)

// This file is the statistical claims harness: it turns the paper's
// prose claims ("HammerCMP generates ~9x the inter-CMP traffic of
// DirectoryCMP", "persistent requests resolve < 0.3% of misses") into
// CI-bounded assertions over the uniform event counters, instead of
// golden strings. A claim compares two protocols run over the SAME
// workload and the SAME perturbed seeds; the per-seed ratio of a
// counter-derived metric folds into a stats.Sample whose 95% interval
// the test then pins (Alameldeen & Wood's paired-measurement style).

// Metric extracts one scalar from a finished run.
type Metric func(res machine.Result) float64

// CounterMetric reads one uniform event counter.
func CounterMetric(name string) Metric {
	return func(res machine.Result) float64 { return float64(res.Counters[name]) }
}

// RunSeeds executes one protocol over seeds 1..opt.Seeds of a workload
// through the shared worker pool and returns the per-seed results in
// seed order (deterministic for any opt.Jobs).
func RunSeeds(proto string, opt Options, progs func(m *machine.Machine, seed int64) []cpu.Program) ([]machine.Result, error) {
	out := make([]machine.Result, opt.Seeds)
	pool := runner.New(opt.Jobs)
	err := pool.Run(opt.Seeds, func(i int) error {
		res, err := run(proto, opt, int64(i+1), progs)
		if err != nil {
			return err
		}
		out[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// PairedRatio runs num and den over the same workload and seeds and
// returns the per-seed sample of metric(num)/metric(den). A seed whose
// denominator metric is zero is an error: a claim ratio over a counter
// that never fired means the metric (or the wiring) is wrong.
func PairedRatio(numProto, denProto string, opt Options, metric Metric, progs func(m *machine.Machine, seed int64) []cpu.Program) (stats.Sample, error) {
	var sample stats.Sample
	numRes, err := RunSeeds(numProto, opt, progs)
	if err != nil {
		return sample, err
	}
	denRes, err := RunSeeds(denProto, opt, progs)
	if err != nil {
		return sample, err
	}
	for i := range numRes {
		den := metric(denRes[i])
		if den == 0 || math.IsNaN(den) {
			return sample, fmt.Errorf("experiments: %s seed %d: zero/NaN denominator metric", denProto, i+1)
		}
		sample.Add(metric(numRes[i]) / den)
	}
	return sample, nil
}

// PairedFraction runs one protocol and returns the per-seed sample of
// num/den where both metrics come from the same run (e.g. persistent
// requests as a fraction of misses).
func PairedFraction(proto string, opt Options, num, den Metric, progs func(m *machine.Machine, seed int64) []cpu.Program) (stats.Sample, error) {
	var sample stats.Sample
	results, err := RunSeeds(proto, opt, progs)
	if err != nil {
		return sample, err
	}
	for i := range results {
		d := den(results[i])
		if d == 0 || math.IsNaN(d) {
			return sample, fmt.Errorf("experiments: %s seed %d: zero/NaN denominator metric", proto, i+1)
		}
		sample.Add(num(results[i]) / d)
	}
	return sample, nil
}

// renderCounterBlocks prints one sorted counter table per protocol, in
// the given order — the rendering behind the cmds' -counters flag.
func renderCounterBlocks(w io.Writer, protocols []string, merged func(proto string) map[string]uint64) {
	fmt.Fprintln(w, "\nEvent counters (summed over all runs of each protocol):")
	for _, p := range protocols {
		fmt.Fprintf(w, "%s:\n", p)
		counters.Fprint(w, merged(p))
	}
}

// RenderCounters prints the per-protocol event-counter totals of the
// sweep, summed over lock counts and seeds.
func (s *LockSweep) RenderCounters(w io.Writer) {
	renderCounterBlocks(w, s.Protocols, func(p string) map[string]uint64 {
		acc := map[string]uint64{}
		for _, c := range s.Cells[p] {
			counters.MergeInto(acc, c.Counters)
		}
		return acc
	})
}

// RenderCounters prints the per-protocol event-counter totals of the
// barrier study, summed over both jitter settings and all seeds.
func (t *BarrierTable) RenderCounters(w io.Writer) {
	renderCounterBlocks(w, t.Protocols, func(p string) map[string]uint64 {
		acc := map[string]uint64{}
		counters.MergeInto(acc, t.Fixed[p].Counters)
		counters.MergeInto(acc, t.Jittered[p].Counters)
		return acc
	})
}

// RenderCounters prints the per-protocol event-counter totals of the
// commercial study, summed over workloads and seeds.
func (c *Commercial) RenderCounters(w io.Writer) {
	renderCounterBlocks(w, c.Protocols, func(p string) map[string]uint64 {
		acc := map[string]uint64{}
		for _, wl := range c.Workloads {
			counters.MergeInto(acc, c.Cells[wl][p].Counters)
		}
		return acc
	})
}
