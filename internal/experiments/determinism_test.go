package experiments

import (
	"strings"
	"testing"

	"tokencmp/internal/stats"
	"tokencmp/internal/topo"
)

// tinyOpts is a deliberately small configuration: these tests compare
// rendered bytes across worker counts, not paper shapes.
func tinyOpts(jobs int) Options {
	opt := DefaultOptions()
	opt.Geom = topo.NewGeometry(2, 2, 2)
	opt.Seeds = 2
	opt.Acquires = 4
	opt.Barriers = 2
	opt.TxnsPerProc = 3
	opt.Jobs = jobs
	return opt
}

// TestLockSweepParallelDeterminism asserts the rendered Figure 2/3 table
// is byte-identical at -jobs 1 and -jobs 8.
func TestLockSweepParallelDeterminism(t *testing.T) {
	render := func(jobs int) string {
		sweep, err := RunLockSweep([]string{"DirectoryCMP", "TokenCMP-dst1"}, []int{2, 8}, tinyOpts(jobs))
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		sweep.Render(&b, "determinism")
		return b.String()
	}
	serial := render(1)
	if parallel := render(8); parallel != serial {
		t.Errorf("lock sweep diverged:\n-- jobs=1 --\n%s\n-- jobs=8 --\n%s", serial, parallel)
	}
}

// TestBarrierParallelDeterminism asserts the rendered Table 4 is
// byte-identical at -jobs 1 and -jobs 8.
func TestBarrierParallelDeterminism(t *testing.T) {
	render := func(jobs int) string {
		table, err := RunBarrierTable([]string{"DirectoryCMP", "TokenCMP-dst1"}, tinyOpts(jobs))
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		table.Render(&b)
		return b.String()
	}
	serial := render(1)
	if parallel := render(8); parallel != serial {
		t.Errorf("barrier table diverged:\n-- jobs=1 --\n%s\n-- jobs=8 --\n%s", serial, parallel)
	}
}

// TestCommercialParallelDeterminism asserts Figures 6, 7a, and 7b are
// byte-identical at -jobs 1 and -jobs 8.
func TestCommercialParallelDeterminism(t *testing.T) {
	render := func(jobs int) string {
		res, err := RunCommercial([]string{"OLTP"}, []string{"DirectoryCMP", "TokenCMP-dst1"}, tinyOpts(jobs))
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		res.RenderRuntime(&b)
		res.RenderTraffic(&b, stats.InterCMP)
		res.RenderTraffic(&b, stats.IntraCMP)
		return b.String()
	}
	serial := render(1)
	if parallel := render(8); parallel != serial {
		t.Errorf("commercial figures diverged:\n-- jobs=1 --\n%s\n-- jobs=8 --\n%s", serial, parallel)
	}
}

// TestRenderWithoutDirectoryCMP asserts every renderer falls back to the
// first measured protocol instead of nil-panicking when DirectoryCMP is
// not in the protocol list.
func TestRenderWithoutDirectoryCMP(t *testing.T) {
	opt := tinyOpts(0)
	opt.Seeds = 1

	sweep, err := RunLockSweep([]string{"TokenCMP-dst1", "TokenCMP-dst0"}, []int{2}, opt)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	sweep.Render(&b, "no-baseline")
	if !strings.Contains(b.String(), "TokenCMP-dst1") {
		t.Errorf("lock sweep did not fall back to the first protocol:\n%s", b.String())
	}

	table, err := RunBarrierTable([]string{"TokenCMP-dst1", "TokenCMP-dst0"}, opt)
	if err != nil {
		t.Fatal(err)
	}
	b.Reset()
	table.Render(&b)
	if !strings.Contains(b.String(), "normalized to TokenCMP-dst1") {
		t.Errorf("barrier table did not fall back to the first protocol:\n%s", b.String())
	}

	res, err := RunCommercial([]string{"OLTP"}, []string{"TokenCMP-dst1", "TokenCMP-dst0"}, opt)
	if err != nil {
		t.Fatal(err)
	}
	b.Reset()
	res.RenderRuntime(&b)
	res.RenderTraffic(&b, stats.InterCMP)
	res.RenderTraffic(&b, stats.IntraCMP)
	if !strings.Contains(b.String(), "normalized to TokenCMP-dst1") {
		t.Errorf("commercial renderers did not fall back to the first protocol:\n%s", b.String())
	}
}
