package experiments

import (
	"testing"

	"tokencmp/internal/stats"
	"tokencmp/internal/topo"
)

// These regression tests assert the paper's qualitative results — who
// wins and in which direction — on scaled-down runs. EXPERIMENTS.md
// records full-size paper-vs-measured numbers.

func quickOpts() Options {
	opt := DefaultOptions()
	opt.Seeds = 1
	opt.Acquires = 16
	opt.Barriers = 6
	opt.TxnsPerProc = 10
	return opt
}

func TestFig2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-geometry sweep")
	}
	sweep, err := RunLockSweep(
		[]string{"TokenCMP-arb0", "DirectoryCMP", "DirectoryCMP-zero", "TokenCMP-dst0"},
		[]int{2, 512}, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	high := func(p string) float64 { return sweep.Cells[p][0].Runtime.Mean() }
	low := func(p string) float64 { return sweep.Cells[p][1].Runtime.Mean() }

	// Paper: under contention the arbiter scheme is clearly worse than
	// DirectoryCMP; distributed activation is comparable or better.
	if high("TokenCMP-arb0") < 1.3*high("DirectoryCMP") {
		t.Errorf("arb0@2locks = %.0f, Dir = %.0f: arbiter should collapse under contention",
			high("TokenCMP-arb0"), high("DirectoryCMP"))
	}
	if high("TokenCMP-dst0") > 1.4*high("DirectoryCMP") {
		t.Errorf("dst0@2locks = %.0f vs Dir %.0f: distributed should stay comparable",
			high("TokenCMP-dst0"), high("DirectoryCMP"))
	}
	// At low contention TokenCMP beats the directory (no indirection).
	if low("TokenCMP-dst0") > low("DirectoryCMP") {
		t.Errorf("dst0@512locks = %.0f vs Dir %.0f: token should win at low contention",
			low("TokenCMP-dst0"), low("DirectoryCMP"))
	}
}

func TestFig3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-geometry sweep")
	}
	sweep, err := RunLockSweep(
		[]string{"DirectoryCMP", "TokenCMP-dst4", "TokenCMP-dst1", "TokenCMP-dst1-pred"},
		[]int{2, 512}, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	low := func(p string) float64 { return sweep.Cells[p][1].Runtime.Mean() }
	// All TokenCMP variants beat DirectoryCMP at low contention.
	for _, p := range []string{"TokenCMP-dst4", "TokenCMP-dst1", "TokenCMP-dst1-pred"} {
		if low(p) > low("DirectoryCMP") {
			t.Errorf("%s@512locks = %.0f vs Dir %.0f: token should win at low contention",
				p, low(p), low("DirectoryCMP"))
		}
	}
	// dst1-pred is the most robust token variant under contention.
	high := func(p string) float64 { return sweep.Cells[p][0].Runtime.Mean() }
	if high("TokenCMP-dst1-pred") > high("TokenCMP-dst1") {
		t.Errorf("dst1-pred@2locks = %.0f vs dst1 %.0f: predictor should help under contention",
			high("TokenCMP-dst1-pred"), high("TokenCMP-dst1"))
	}
}

func TestFig6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-geometry commercial runs")
	}
	res, err := RunCommercial([]string{"OLTP", "SPECjbb"},
		[]string{"DirectoryCMP", "TokenCMP-dst1", "PerfectL2"}, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, wl := range res.Workloads {
		dir := res.Cells[wl]["DirectoryCMP"].Runtime.Mean()
		tok := res.Cells[wl]["TokenCMP-dst1"].Runtime.Mean()
		perf := res.Cells[wl]["PerfectL2"].Runtime.Mean()
		if tok >= dir {
			t.Errorf("%s: TokenCMP (%.0f) should beat DirectoryCMP (%.0f)", wl, tok, dir)
		}
		if perf >= tok {
			t.Errorf("%s: PerfectL2 (%.0f) must lower-bound TokenCMP (%.0f)", wl, perf, tok)
		}
	}
	// The ordering of gains: OLTP benefits more than SPECjbb.
	gain := func(wl string) float64 {
		return res.Cells[wl]["DirectoryCMP"].Runtime.Mean() / res.Cells[wl]["TokenCMP-dst1"].Runtime.Mean()
	}
	if gain("OLTP") < gain("SPECjbb") {
		t.Errorf("OLTP gain (%.2f) should exceed SPECjbb gain (%.2f)", gain("OLTP"), gain("SPECjbb"))
	}
	// Persistent requests must stay rare on macro workloads (paper < 0.3%).
	for _, wl := range res.Workloads {
		if f := res.PersistentFraction(wl, "TokenCMP-dst1"); f > 0.01 {
			t.Errorf("%s persistent fraction = %.3f%%, want < 1%%", wl, 100*f)
		}
	}
}

func TestFig7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-geometry commercial runs")
	}
	res, err := RunCommercial([]string{"OLTP"},
		[]string{"DirectoryCMP", "TokenCMP-dst1", "TokenCMP-dst1-filt"}, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	dir := res.Cells["OLTP"]["DirectoryCMP"].Traffic
	tok := res.Cells["OLTP"]["TokenCMP-dst1"].Traffic
	filt := res.Cells["OLTP"]["TokenCMP-dst1-filt"].Traffic

	// 7a: token inter-CMP traffic is in the same ballpark as (the paper:
	// somewhat less than) DirectoryCMP despite broadcasting.
	rInter := float64(tok.TotalBytes(stats.InterCMP)) / float64(dir.TotalBytes(stats.InterCMP))
	if rInter > 1.4 {
		t.Errorf("inter-CMP token/dir = %.2f, want ~1 or below", rInter)
	}
	// 7b: the filter reduces intra-CMP traffic relative to plain dst1.
	if filt.TotalBytes(stats.IntraCMP) >= tok.TotalBytes(stats.IntraCMP) {
		t.Error("filter did not reduce intra-CMP traffic")
	}
	// DirectoryCMP spends unblock bytes; TokenCMP spends none.
	if dir.Bytes[stats.InterCMP][stats.Unblock] == 0 {
		t.Error("DirectoryCMP shows no unblock traffic")
	}
	if tok.Bytes[stats.InterCMP][stats.Unblock] != 0 {
		t.Error("TokenCMP shows unblock traffic")
	}
}

func TestBarrierTableShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-geometry barrier runs")
	}
	opt := quickOpts()
	table, err := RunBarrierTable([]string{"TokenCMP-arb0", "TokenCMP-dst0", "DirectoryCMP", "TokenCMP-dst1"}, opt)
	if err != nil {
		t.Fatal(err)
	}
	base := table.Fixed["DirectoryCMP"].Runtime.Mean()
	// Paper Table 4: arb0 clearly worse than DirectoryCMP; dst0 and dst1
	// comparable or better.
	if table.Fixed["TokenCMP-arb0"].Runtime.Mean() < 1.05*base {
		t.Errorf("arb0 = %.2f× Dir, expected clearly worse", table.Fixed["TokenCMP-arb0"].Runtime.Mean()/base)
	}
	if table.Fixed["TokenCMP-dst1"].Runtime.Mean() > 1.25*base {
		t.Errorf("dst1 = %.2f× Dir, expected comparable", table.Fixed["TokenCMP-dst1"].Runtime.Mean()/base)
	}
	_ = topo.Geometry{}
}
