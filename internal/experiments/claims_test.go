package experiments

import (
	"sync"
	"testing"

	"tokencmp/internal/counters"
	"tokencmp/internal/cpu"
	"tokencmp/internal/machine"
	"tokencmp/internal/stats"
	"tokencmp/internal/workload"
)

// The claim tests pin the paper's quantitative prose as CI-bounded
// statistical assertions over the uniform event counters: every claim
// runs 5 perturbed seeds of the OLTP surrogate on the full Table 3
// hierarchy and bounds the 95% interval of the per-seed statistic. The
// intervals are deliberately wider than the measured CIs so the tests
// tolerate workload-surrogate tuning, but tight enough that a protocol
// or accounting regression (e.g. broadcast filtering breaking, probe
// replies dropped) trips them.

const (
	claimSeeds = 5
	claimTxns  = 30
)

var (
	claimOnce sync.Once
	claimRes  map[string][]machine.Result
	claimErr  error
)

// claimResults runs (once) the three protocols the claims compare, 5
// seeds each, and caches the per-seed results.
func claimResults(t *testing.T) map[string][]machine.Result {
	t.Helper()
	claimOnce.Do(func() {
		opt := DefaultOptions()
		opt.Seeds = claimSeeds
		params, err := CommercialParamsFor("OLTP")
		if err != nil {
			claimErr = err
			return
		}
		params.TxnsPerProc = claimTxns
		progs := func(m *machine.Machine, seed int64) []cpu.Program {
			p, _ := workload.CommercialPrograms(params, m.Cfg.Geom.TotalProcs(), seed)
			return p
		}
		claimRes = map[string][]machine.Result{}
		for _, proto := range []string{"HammerCMP", "DirectoryCMP", "TokenCMP-dst1"} {
			res, rerr := RunSeeds(proto, opt, progs)
			if rerr != nil {
				claimErr = rerr
				return
			}
			claimRes[proto] = res
		}
	})
	if claimErr != nil {
		t.Fatal(claimErr)
	}
	return claimRes
}

// ratioSample folds the per-seed ratio of one counter across two
// protocols' paired (same-seed) runs into a sample.
func ratioSample(t *testing.T, res map[string][]machine.Result, num, den, counter string) stats.Sample {
	t.Helper()
	var s stats.Sample
	for i := range res[num] {
		d := float64(res[den][i].Counters[counter])
		if d == 0 {
			t.Fatalf("%s seed %d: %s never fired", den, i+1, counter)
		}
		s.Add(float64(res[num][i].Counters[counter]) / d)
	}
	return s
}

func assertInterval(t *testing.T, name string, s stats.Sample, wantLo, wantHi float64) {
	t.Helper()
	lo, hi := s.Interval95()
	if s.N() < claimSeeds {
		t.Fatalf("%s: only %d seeds", name, s.N())
	}
	if lo < wantLo || hi > wantHi {
		t.Errorf("%s: 95%% CI [%.4g, %.4g] (mean %.4g) outside pinned bounds [%.4g, %.4g]",
			name, lo, hi, s.Mean(), wantLo, wantHi)
	}
}

// TestHammerInterCMPTrafficRatio pins the paper's headline traffic
// claim: Hammer-style broadcast generates ~9x the inter-CMP traffic of
// the directory protocol (Figure 7a), because every external miss
// probes all other chips instead of consulting the home directory.
// Measured on the OLTP surrogate: bytes ratio ≈ 9.45, message ratio
// ≈ 28.6 (each dataless ack still crosses the chip boundary).
func TestHammerInterCMPTrafficRatio(t *testing.T) {
	res := claimResults(t)
	bytes := ratioSample(t, res, "HammerCMP", "DirectoryCMP", counters.NetBytesInterCMP)
	assertInterval(t, "inter-CMP bytes hammer/dir", bytes, 8.0, 11.0)
	msgs := ratioSample(t, res, "HammerCMP", "DirectoryCMP", counters.NetMsgInterCMP)
	assertInterval(t, "inter-CMP msgs hammer/dir", msgs, 24.0, 34.0)
}

// TestTokenPersistentRequestFraction pins the paper's starvation-
// avoidance claim: persistent requests resolve well under 1% of cache
// misses on the macro workloads (Section 7; the paper reports < 0.3%
// on the full-size runs, and the scaled surrogate stays the same order
// of magnitude). The lower bound ensures the persistent path actually
// fires — a claim over a dead counter proves nothing.
func TestTokenPersistentRequestFraction(t *testing.T) {
	res := claimResults(t)
	var frac stats.Sample
	for _, r := range res["TokenCMP-dst1"] {
		misses := float64(r.Counters[counters.L1Miss])
		if misses == 0 {
			t.Fatal("TokenCMP-dst1: no L1 misses recorded")
		}
		frac.Add(float64(r.Counters[counters.ReqPersistent]) / misses)
	}
	assertInterval(t, "persistent/miss", frac, 1e-5, 0.01)
}

// TestHammerProbeResponseConservation pins the broadcast protocol
// invariant behind its traffic cost: every probe is answered, with
// data from the owner or a dataless ack from everyone else, so
// (acks + data replies) / probes sent is exactly 1 per run — and data
// replies are a small but nonzero share (only owners send data).
func TestHammerProbeResponseConservation(t *testing.T) {
	res := claimResults(t)
	var resp stats.Sample
	for i, r := range res["HammerCMP"] {
		sent := r.Counters[counters.ProbeSent]
		ack := r.Counters[counters.ProbeAck]
		data := r.Counters[counters.ProbeData]
		if sent == 0 {
			t.Fatal("HammerCMP: no probes sent")
		}
		if data == 0 {
			t.Fatalf("seed %d: no owner data replies", i+1)
		}
		if ack <= data {
			t.Errorf("seed %d: acks (%d) should dominate data replies (%d)", i+1, ack, data)
		}
		resp.Add(float64(ack+data) / float64(sent))
	}
	assertInterval(t, "(ack+data)/probe", resp, 0.999, 1.001)
}
