package experiments

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestGoldenFiguresWithLiveContext asserts the full figure pipeline
// with the cancellation plumbing armed — a real, cancellable context
// installed on every engine — stays byte-identical to the committed
// golden figures at jobs=1 and jobs=8. This is the determinism half of
// the end-to-end cancellation contract: an uncancelled context must be
// invisible in every result.
func TestGoldenFiguresWithLiveContext(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "golden_figures.txt"))
	if err != nil {
		t.Fatalf("missing golden file (run TestGoldenFigures -update-golden): %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for _, jobs := range []int{1, 8} {
		got := renderAllFiguresCtx(t, jobs, ctx)
		if got != string(want) {
			t.Errorf("figures with a live context diverged from golden output at jobs=%d:\n-- got --\n%s", jobs, got)
		}
	}
}

// TestSweepCancelled asserts a cancelled experiment returns promptly
// with an error matching the context, instead of finishing the sweep.
func TestSweepCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opt := tinyOpts(4)
	opt.Context = ctx
	_, err := RunLockSweep([]string{"DirectoryCMP", "TokenCMP-dst1"}, []int{2, 8}, opt)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestSweepDeadline asserts a deadline that expires mid-experiment
// surfaces context.DeadlineExceeded through the whole stack — pool
// dispatch, machine run, experiment merge.
func TestSweepDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	opt := tinyOpts(2)
	opt.Acquires = 512 // enough work that 1ms cannot finish the sweep
	opt.Context = ctx
	_, err := RunLockSweep([]string{"DirectoryCMP", "TokenCMP-dst1"}, []int{2, 8, 32}, opt)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}
