package experiments

import (
	"testing"

	"tokencmp/internal/cpu"
	"tokencmp/internal/machine"
	"tokencmp/internal/mem"
	"tokencmp/internal/sim"
	"tokencmp/internal/topo"
	"tokencmp/internal/workload"
)

// counterProg stores an increasing counter into its own slot block and
// interleaves loads of every other processor's slot, so final slot
// values are protocol-independent (each slot has a single writer)
// while the loads cross-pollinate every cache in the system.
type counterProg struct {
	proc, procs int
	base        mem.Addr
	rounds, k   int
	phase       int
}

func (p *counterProg) slot(i int) mem.Addr { return p.base + mem.Addr(i)*mem.BlockSize }

func (p *counterProg) Next(now sim.Time, last uint64) cpu.Action {
	if p.k >= p.rounds {
		return cpu.Done()
	}
	switch p.phase {
	case 0:
		p.phase = 1
		return cpu.StoreOf(p.slot(p.proc), uint64(p.k+1))
	default:
		p.phase = 0
		other := (p.proc + p.k + 1) % p.procs
		p.k++
		return cpu.LoadOf(p.slot(other))
	}
}

// crossProtos is the consistency-comparison set: the new broadcast
// protocol, the directory baseline, and a token variant.
var crossProtos = []string{"HammerCMP", "DirectoryCMP", "TokenCMP-dst1"}

// TestHammerCrossProtocolLocking runs the same locking program on
// HammerCMP, DirectoryCMP, and TokenCMP-dst1 with every coherence
// monitor enabled and asserts all of them stay clean and agree on the
// work performed.
func TestHammerCrossProtocolLocking(t *testing.T) {
	g := topo.NewGeometry(2, 2, 1)
	for _, proto := range crossProtos {
		proto := proto
		t.Run(proto, func(t *testing.T) {
			m, err := machine.New(machine.Config{
				Protocol:         proto,
				Geom:             g,
				Seed:             1,
				CheckConsistency: true,
				AuditTokens:      true,
				L1Size:           8 << 10,
				L2BankSize:       32 << 10,
			})
			if err != nil {
				t.Fatal(err)
			}
			lc := workload.DefaultLocking(4)
			lc.Acquires = 12
			progs, mon := workload.LockingPrograms(lc, g.TotalProcs(), 1)
			if _, err := m.Run(progs, 50_000_000); err != nil {
				t.Fatalf("%s: %v", proto, err)
			}
			if len(mon.Violations) > 0 {
				t.Fatalf("%s: mutual exclusion violated: %v", proto, mon.Violations[0])
			}
			if got, want := mon.Acquires, uint64(g.TotalProcs())*12; got != want {
				t.Errorf("%s: acquires = %d, want %d", proto, got, want)
			}
		})
	}
}

// TestHammerCrossProtocolFinalValues runs a single-writer-per-slot
// counter program on all three protocols under the serial-view monitor
// and asserts the final memory contents, read back through the real
// ports, agree exactly across protocols.
func TestHammerCrossProtocolFinalValues(t *testing.T) {
	g := topo.NewGeometry(2, 2, 1)
	const base = mem.Addr(0x200000)
	const rounds = 12
	procs := g.TotalProcs()

	finals := make(map[string][]uint64)
	for _, proto := range crossProtos {
		m, err := machine.New(machine.Config{
			Protocol:         proto,
			Geom:             g,
			Seed:             1,
			CheckConsistency: true,
			AuditTokens:      true,
			L1Size:           8 << 10,
			L2BankSize:       32 << 10,
		})
		if err != nil {
			t.Fatal(err)
		}
		progs := make([]cpu.Program, procs)
		for i := range progs {
			progs[i] = &counterProg{proc: i, procs: procs, base: base, rounds: rounds}
		}
		if _, err := m.Run(progs, 50_000_000); err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
		// Read every slot back through processor 0's monitored port: the
		// serial-view checker validates each load against the last store.
		vals := make([]uint64, procs)
		for i := 0; i < procs; i++ {
			addr := base + mem.Addr(i)*mem.BlockSize
			got := false
			m.Procs[0].Data.Access(cpu.Load, addr, 0, func(v uint64) {
				vals[i] = v
				got = true
			})
			m.Eng.Run(10_000_000)
			if !got {
				t.Fatalf("%s: final read of slot %d never completed", proto, i)
			}
		}
		if len(m.Violations) > 0 {
			t.Fatalf("%s: consistency violated on final reads: %v", proto, m.Violations[0])
		}
		finals[proto] = vals
	}

	want := finals[crossProtos[0]]
	for i := range want {
		if want[i] != rounds {
			t.Errorf("%s slot %d = %d, want %d", crossProtos[0], i, want[i], rounds)
		}
	}
	for _, proto := range crossProtos[1:] {
		for i := range want {
			if finals[proto][i] != want[i] {
				t.Errorf("final value mismatch at slot %d: %s=%d vs %s=%d",
					i, crossProtos[0], want[i], proto, finals[proto][i])
			}
		}
	}
}
