package experiments

import (
	"testing"

	"tokencmp/internal/counters"
	"tokencmp/internal/cpu"
	"tokencmp/internal/machine"
	"tokencmp/internal/network"
	"tokencmp/internal/stats"
	"tokencmp/internal/workload"
)

// The loss-sweep claim pins the paper's robustness argument (Section 2,
// Section 7): token coherence needs no ordered or reliable interconnect
// because lost transient requests are repaired by timeout reissue and,
// ultimately, persistent-request escalation. Sweeping the transient
// drop probability from 0 to 20% on the locking micro-benchmark must
// (a) still complete every run with the coherence monitors and token
// audit on, (b) push the persistent-request share of misses up
// monotonically (each drop rate strictly dominates reliable delivery),
// and (c) keep that share bounded — escalation is a recovery path, not
// the common case, even under heavy loss.

// lossSweepDrops is the swept transient-request drop probability.
var lossSweepDrops = []float64{0, 0.01, 0.05, 0.20}

// lossPersistFrac bounds how far escalation may climb at the top of the
// sweep: even dropping one in five transient requests, fewer than 80%
// of misses may need the persistent path on this workload (measured:
// ~65% — lock hand-offs under heavy loss lean hard on escalation, but
// the majority-transient regime must survive).
const lossPersistFrac = 0.80

func lossProgs(opt Options) func(m *machine.Machine, seed int64) []cpu.Program {
	return func(m *machine.Machine, seed int64) []cpu.Program {
		lc := workload.DefaultLocking(4)
		lc.Acquires = opt.Acquires
		progs, _ := workload.LockingPrograms(lc, m.Cfg.Geom.TotalProcs(), seed)
		return progs
	}
}

func TestLossSweepSurvivalClaim(t *testing.T) {
	opt := DefaultOptions()
	opt.Seeds = claimSeeds
	opt.Acquires = 8
	opt.Check = true // coherence monitors + token audit on every run

	fracs := make([]stats.Sample, len(lossSweepDrops))
	for i, drop := range lossSweepDrops {
		opt.Faults = network.UniformFaults(1, drop, 0, 0, 0)
		// PairedFraction fails the test on any non-completing run or
		// token-audit violation, which is the survival half of the claim.
		frac, err := PairedFraction("TokenCMP-dst1", opt,
			CounterMetric(counters.ReqPersistent), CounterMetric(counters.L1Miss),
			lossProgs(opt))
		if err != nil {
			t.Fatalf("drop=%.2f: %v", drop, err)
		}
		fracs[i] = frac

		res, err := RunSeeds("TokenCMP-dst1", opt, lossProgs(opt))
		if err != nil {
			t.Fatalf("drop=%.2f: %v", drop, err)
		}
		for s, r := range res {
			dropped := r.Counters[counters.NetDropped]
			if drop == 0 && dropped != 0 {
				t.Errorf("drop=0 seed %d: %d messages dropped on a reliable network", s+1, dropped)
			}
			if drop > 0 && dropped == 0 {
				t.Errorf("drop=%.2f seed %d: fault injector never fired", drop, s+1)
			}
		}
	}

	// Escalation grows with loss: the mean persistent fraction must be
	// non-decreasing across the sweep (within a small slack absorbing
	// seed noise at adjacent low rates) and strictly higher at 20% drop
	// than on the reliable network.
	const slack = 0.01
	for i := 1; i < len(fracs); i++ {
		if fracs[i].Mean() < fracs[i-1].Mean()-slack {
			t.Errorf("persistent/miss mean fell from %.4f (drop=%.2f) to %.4f (drop=%.2f)",
				fracs[i-1].Mean(), lossSweepDrops[i-1], fracs[i].Mean(), lossSweepDrops[i])
		}
	}
	last := len(fracs) - 1
	if fracs[last].Mean() <= fracs[0].Mean() {
		t.Errorf("persistent/miss mean did not grow under 20%% drop: %.4f vs %.4f at drop=0",
			fracs[last].Mean(), fracs[0].Mean())
	}

	// ...but stays bounded: escalation remains the recovery path.
	lo, hi := fracs[last].Interval95()
	if hi > lossPersistFrac {
		t.Errorf("drop=0.20: persistent/miss 95%% CI [%.4f, %.4f] exceeds bound %.2f",
			lo, hi, lossPersistFrac)
	}
}
