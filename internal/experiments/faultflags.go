package experiments

import (
	"flag"

	"tokencmp/internal/network"
	"tokencmp/internal/sim"
)

// RegisterFaultFlags installs the shared fault-injection flags
// (-drop/-dup/-reorder/-jitter/-faultseed) on fs and returns a resolver
// to call after parsing. All four cmds expose the same knobs, applied
// uniformly to both link classes; zero values leave the network
// perfectly reliable and the run byte-identical to a fault-free build.
func RegisterFaultFlags(fs *flag.FlagSet) func() network.FaultConfig {
	var (
		drop    = fs.Float64("drop", 0, "fault injection: per-message drop probability for droppable classes")
		dup     = fs.Float64("dup", 0, "fault injection: per-message duplication probability")
		reorder = fs.Float64("reorder", 0, "fault injection: probability a droppable message is reordered")
		jitter  = fs.Int64("jitter", 0, "fault injection: per-message latency jitter bound in ns (all classes)")
		seed    = fs.Int64("faultseed", 1, "fault injection: PRNG seed (same seed + knobs = identical run)")
	)
	return func() network.FaultConfig {
		return network.UniformFaults(*seed, *drop, *dup, *reorder, sim.NS(*jitter))
	}
}
