package experiments

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tokencmp/internal/stats"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_figures.txt from the current simulator")

// renderAllFigures regenerates a scaled-down version of every paper
// figure and table across all four protocol stacks (token distributed
// and arbiter activation, directory, hammer broadcast, perfect L2) and
// returns the concatenated rendered bytes.
func renderAllFigures(t *testing.T, jobs int) string {
	t.Helper()
	return renderAllFiguresCtx(t, jobs, nil)
}

// renderAllFiguresCtx is renderAllFigures with a cancellation context
// installed on every run (nil = no context), so the golden tests can
// pin that the cancellation plumbing is invisible when uncancelled.
func renderAllFiguresCtx(t *testing.T, jobs int, ctx context.Context) string {
	t.Helper()
	opt := tinyOpts(jobs)
	opt.Context = ctx
	var b strings.Builder

	sweep, err := RunLockSweep(
		[]string{"DirectoryCMP", "HammerCMP", "TokenCMP-arb0", "TokenCMP-dst1"},
		[]int{2, 8}, opt)
	if err != nil {
		t.Fatal(err)
	}
	sweep.Render(&b, "golden locking sweep")
	b.WriteString("\n")

	table, err := RunBarrierTable([]string{"DirectoryCMP-zero", "TokenCMP-dst0", "TokenCMP-dst1"}, opt)
	if err != nil {
		t.Fatal(err)
	}
	table.Render(&b)
	b.WriteString("\n")

	res, err := RunCommercial([]string{"OLTP"},
		[]string{"DirectoryCMP", "HammerCMP", "TokenCMP-dst1-filt", "PerfectL2"}, opt)
	if err != nil {
		t.Fatal(err)
	}
	res.RenderRuntime(&b)
	res.RenderTraffic(&b, stats.InterCMP)
	res.RenderTraffic(&b, stats.IntraCMP)
	return b.String()
}

// TestGoldenFigures pins the rendered figures and tables byte-for-byte
// against pre-recorded output, at jobs=1 and jobs=8. Any simulator-core
// change that shifts event order, message timing, cache replacement, or
// merge order fails this test. Refresh intentionally with
//
//	go test ./internal/experiments -run TestGoldenFigures -update-golden
func TestGoldenFigures(t *testing.T) {
	path := filepath.Join("testdata", "golden_figures.txt")
	got := renderAllFigures(t, 1)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden): %v", err)
	}
	if got != string(want) {
		t.Errorf("figures diverged from golden output at jobs=1:\n-- got --\n%s\n-- want --\n%s", got, want)
	}
	if par := renderAllFigures(t, 8); par != string(want) {
		t.Errorf("figures diverged from golden output at jobs=8:\n-- got --\n%s\n-- want --\n%s", par, want)
	}
}
