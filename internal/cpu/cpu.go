// Package cpu models the processors that drive the memory system.
//
// The paper simulates dynamically-scheduled SPARC cores under Simics; for
// protocol studies what matters is the memory reference stream, so each
// Processor here executes an explicit Program — a state machine yielding
// think intervals, loads, stores, atomic swaps, and instruction fetches —
// against the simulated hierarchy, blocking on each memory operation.
// Spin loops and lock acquires are therefore real coherence traffic.
package cpu

import (
	"tokencmp/internal/mem"
	"tokencmp/internal/sim"
)

// AccessKind is a memory operation type.
type AccessKind int

// Memory operation kinds.
const (
	Load AccessKind = iota
	Store
	Atomic // atomic swap: write, returning the previous value
	IFetch // instruction fetch (routed to the L1I)
)

func (k AccessKind) String() string {
	switch k {
	case Load:
		return "Load"
	case Store:
		return "Store"
	case Atomic:
		return "Atomic"
	case IFetch:
		return "IFetch"
	}
	return "Access?"
}

// MemPort is the interface the L1 controllers expose to their processor.
// done is invoked when the operation completes; value is the loaded (or,
// for Atomic, the previous) block value.
type MemPort interface {
	Access(kind AccessKind, addr mem.Addr, store uint64, done func(value uint64))
}

// PendingAccess parks the parameters of one processor access across an
// L1 tag-access delay. A processor blocks on each memory operation and
// each L1 serves one processor port, so one slot per controller
// suffices and MemPort implementations need no per-call closure (those
// closures were the simulator's top allocation sites).
type PendingAccess struct {
	kind  AccessKind
	block mem.Block
	store uint64
	done  func(uint64)
}

// Park stores an access, panicking (who names the controller) if one
// is already parked — that would mean a port wiring bug.
func (p *PendingAccess) Park(who string, kind AccessKind, block mem.Block, store uint64, done func(uint64)) {
	if p.done != nil {
		panic(who + ": access parked while one is already pending")
	}
	p.kind, p.block, p.store, p.done = kind, block, store, done
}

// Take returns the parked access and clears the slot.
func (p *PendingAccess) Take() (AccessKind, mem.Block, uint64, func(uint64)) {
	kind, block, store, done := p.kind, p.block, p.store, p.done
	p.done = nil
	return kind, block, store, done
}

// ActionKind tells the processor what to do next.
type ActionKind int

// Program actions.
const (
	ActThink ActionKind = iota
	ActLoad
	ActStore
	ActAtomic
	ActIFetch
	ActDone
)

// Action is one step of a Program.
type Action struct {
	Kind  ActionKind
	Addr  mem.Addr
	Value uint64   // store / swap value
	Dur   sim.Time // think duration
}

// Think builds a think action.
func Think(d sim.Time) Action { return Action{Kind: ActThink, Dur: d} }

// LoadOf builds a load action.
func LoadOf(a mem.Addr) Action { return Action{Kind: ActLoad, Addr: a} }

// StoreOf builds a store action.
func StoreOf(a mem.Addr, v uint64) Action { return Action{Kind: ActStore, Addr: a, Value: v} }

// Swap builds an atomic-swap action.
func Swap(a mem.Addr, v uint64) Action { return Action{Kind: ActAtomic, Addr: a, Value: v} }

// Fetch builds an instruction-fetch action.
func Fetch(a mem.Addr) Action { return Action{Kind: ActIFetch, Addr: a} }

// Done terminates a program.
func Done() Action { return Action{Kind: ActDone} }

// Program drives a processor. Next is called when the previous action
// completes; lastValue is the result of the previous load/atomic (zero
// otherwise).
type Program interface {
	Next(now sim.Time, lastValue uint64) Action
}

// Stats collected per processor.
type Stats struct {
	Loads, Stores, Atomics, IFetches uint64
	Thinks                           uint64
	MemLatency                       sim.Time // summed memory-op latency
	MemOps                           uint64
}

// Processor executes a Program against data and instruction ports.
type Processor struct {
	ID    int // global processor index
	Eng   *sim.Engine
	Data  MemPort
	Inst  MemPort
	Prog  Program
	Stats Stats

	finished bool
	doneAt   sim.Time
	lastVal  uint64
	accStart sim.Time     // issue time of the in-flight memory op
	accDone  func(uint64) // prebound completion callback, built once
}

// procStep is the closure-free ScheduleCall target for program steps:
// binding p.step as a method value would allocate on every think
// interval and access completion.
func procStep(ctx, _ any) { ctx.(*Processor).step() }

// Start begins executing the program.
func (p *Processor) Start() {
	// A processor blocks on each memory operation, so one completion
	// closure (reading the issue time off the processor) serves every
	// access; binding it per access was the simulator's top allocation
	// site.
	p.accDone = func(v uint64) {
		p.Stats.MemOps++
		p.Stats.MemLatency += p.Eng.Now() - p.accStart
		p.lastVal = v
		p.step()
	}
	p.Eng.ScheduleCall(0, procStep, p, nil)
}

// Finished reports whether the program has completed.
func (p *Processor) Finished() bool { return p.finished }

// FinishTime reports when the program completed (valid once Finished).
func (p *Processor) FinishTime() sim.Time { return p.doneAt }

func (p *Processor) step() {
	if p.finished {
		return
	}
	act := p.Prog.Next(p.Eng.Now(), p.lastVal)
	p.lastVal = 0
	switch act.Kind {
	case ActThink:
		p.Stats.Thinks++
		p.Eng.ScheduleCall(act.Dur, procStep, p, nil)
	case ActLoad:
		p.Stats.Loads++
		p.access(p.Data, Load, act)
	case ActStore:
		p.Stats.Stores++
		p.access(p.Data, Store, act)
	case ActAtomic:
		p.Stats.Atomics++
		p.access(p.Data, Atomic, act)
	case ActIFetch:
		p.Stats.IFetches++
		p.access(p.Inst, IFetch, act)
	case ActDone:
		p.finished = true
		p.doneAt = p.Eng.Now()
	}
}

func (p *Processor) access(port MemPort, kind AccessKind, act Action) {
	p.accStart = p.Eng.Now()
	port.Access(kind, act.Addr, act.Value, p.accDone)
}
