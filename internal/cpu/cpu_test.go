package cpu

import (
	"testing"

	"tokencmp/internal/mem"
	"tokencmp/internal/sim"
)

// scriptProg replays a fixed action list.
type scriptProg struct {
	acts []Action
	i    int
	seen []uint64
}

func (p *scriptProg) Next(now sim.Time, last uint64) Action {
	p.seen = append(p.seen, last)
	if p.i >= len(p.acts) {
		return Done()
	}
	a := p.acts[p.i]
	p.i++
	return a
}

// flatPort is an instantly-coherent memory with fixed latency.
type flatPort struct {
	eng    *sim.Engine
	vals   map[mem.Block]uint64
	lat    sim.Time
	counts map[AccessKind]int
}

func (f *flatPort) Access(kind AccessKind, addr mem.Addr, store uint64, done func(uint64)) {
	f.counts[kind]++
	f.eng.Schedule(f.lat, func() {
		b := mem.BlockOf(addr)
		var v uint64
		switch kind {
		case Load, IFetch:
			v = f.vals[b]
		case Store:
			f.vals[b] = store
		case Atomic:
			v = f.vals[b]
			f.vals[b] = store
		}
		done(v)
	})
}

func newFlat(eng *sim.Engine) *flatPort {
	return &flatPort{eng: eng, vals: map[mem.Block]uint64{}, lat: sim.NS(5), counts: map[AccessKind]int{}}
}

func TestProcessorRunsScript(t *testing.T) {
	eng := sim.NewEngine()
	port := newFlat(eng)
	prog := &scriptProg{acts: []Action{
		Think(sim.NS(10)),
		StoreOf(0x100, 7),
		LoadOf(0x100),
		Swap(0x100, 9),
		LoadOf(0x100),
		Fetch(0x200),
	}}
	p := &Processor{ID: 0, Eng: eng, Data: port, Inst: port, Prog: prog}
	p.Start()
	eng.Run(0)
	if !p.Finished() {
		t.Fatal("processor did not finish")
	}
	// seen: [0(start), 0(think), 0(store), 7(load), 7(swap-old), 9(load), 0(ifetch)]
	want := []uint64{0, 0, 0, 7, 7, 9, 0}
	for i, w := range want {
		if prog.seen[i] != w {
			t.Errorf("seen[%d] = %d, want %d (%v)", i, prog.seen[i], w, prog.seen)
		}
	}
	if p.Stats.Loads != 2 || p.Stats.Stores != 1 || p.Stats.Atomics != 1 || p.Stats.IFetches != 1 || p.Stats.Thinks != 1 {
		t.Errorf("stats = %+v", p.Stats)
	}
	if port.counts[IFetch] != 1 {
		t.Error("ifetch not routed to instruction port")
	}
}

func TestProcessorTiming(t *testing.T) {
	eng := sim.NewEngine()
	port := newFlat(eng)
	prog := &scriptProg{acts: []Action{
		Think(sim.NS(100)),
		LoadOf(0x40), // +5ns
	}}
	p := &Processor{Eng: eng, Data: port, Inst: port, Prog: prog}
	p.Start()
	eng.Run(0)
	if p.FinishTime() != sim.NS(105) {
		t.Errorf("finish = %v, want 105ns", p.FinishTime())
	}
	if p.Stats.MemLatency != sim.NS(5) || p.Stats.MemOps != 1 {
		t.Errorf("mem stats = %+v", p.Stats)
	}
}

func TestAccessKindStrings(t *testing.T) {
	for _, k := range []AccessKind{Load, Store, Atomic, IFetch} {
		if k.String() == "Access?" {
			t.Errorf("kind %d has no name", k)
		}
	}
}
