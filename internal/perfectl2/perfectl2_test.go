package perfectl2

import (
	"testing"

	"tokencmp/internal/cpu"
	"tokencmp/internal/sim"
	"tokencmp/internal/topo"
)

func newSys() (*sim.Engine, *System) {
	eng := sim.NewEngine()
	return eng, NewSystem(eng, DefaultConfig(topo.NewGeometry(2, 2, 1)))
}

func TestPerfectCoherence(t *testing.T) {
	eng, sys := newSys()
	p0, _ := sys.Ports(0)
	p3, _ := sys.Ports(3)
	var got uint64
	n := 0
	p0.Access(cpu.Store, 0x100, 55, func(uint64) { n++ })
	eng.RunUntil(func() bool { return n == 1 }, 0)
	p3.Access(cpu.Load, 0x100, 0, func(v uint64) { got = v; n++ })
	eng.RunUntil(func() bool { return n == 2 }, 0)
	if got != 55 {
		t.Errorf("remote load = %d, want 55", got)
	}
}

func TestL1HitTracking(t *testing.T) {
	eng, sys := newSys()
	p0, _ := sys.Ports(0)
	n := 0
	done := func(uint64) { n++ }
	p0.Access(cpu.Load, 0x200, 0, done) // miss to L2
	eng.RunUntil(func() bool { return n == 1 }, 0)
	p0.Access(cpu.Load, 0x200, 0, done) // L1 hit
	eng.RunUntil(func() bool { return n == 2 }, 0)
	if sys.Hits != 1 || sys.MissesToL2 != 1 {
		t.Errorf("hits=%d misses=%d, want 1/1", sys.Hits, sys.MissesToL2)
	}
	// A store by another processor invalidates p0's copy.
	p1, _ := sys.Ports(1)
	p1.Access(cpu.Store, 0x200, 1, done)
	eng.RunUntil(func() bool { return n == 3 }, 0)
	p0.Access(cpu.Load, 0x200, 0, done)
	eng.RunUntil(func() bool { return n == 4 }, 0)
	if sys.MissesToL2 != 3 { // p1's store missed too
		t.Errorf("misses = %d, want 3 (invalidation forced a refetch)", sys.MissesToL2)
	}
}

func TestAtomicSwap(t *testing.T) {
	eng, sys := newSys()
	p0, _ := sys.Ports(0)
	var old uint64
	n := 0
	p0.Access(cpu.Atomic, 0x300, 42, func(v uint64) { old = v; n++ })
	eng.RunUntil(func() bool { return n == 1 }, 0)
	if old != 0 {
		t.Errorf("swap old = %d, want 0", old)
	}
	p0.Access(cpu.Load, 0x300, 0, func(v uint64) { old = v; n++ })
	eng.RunUntil(func() bool { return n == 2 }, 0)
	if old != 42 {
		t.Errorf("load after swap = %d, want 42", old)
	}
}
