// Package perfectl2 implements the paper's unimplementable lower bound:
// every L1 miss hits in an infinite, instantly-coherent L2 cache shared
// across all CMPs (Section 6). No coherence traffic exists; an access
// costs the L1 latency, plus the on-chip round trip and L2 access when it
// leaves the L1.
package perfectl2

import (
	"tokencmp/internal/counters"
	"tokencmp/internal/cpu"
	"tokencmp/internal/mem"
	"tokencmp/internal/sim"
	"tokencmp/internal/topo"
)

// Config holds PerfectL2 timing parameters.
type Config struct {
	Geom      topo.Geometry
	L1Latency sim.Time
	L2Latency sim.Time
	LinkLat   sim.Time // one-way on-chip hop
}

// DefaultConfig mirrors the Table 3 latencies.
func DefaultConfig(g topo.Geometry) Config {
	return Config{Geom: g, L1Latency: sim.NS(2), L2Latency: sim.NS(7), LinkLat: sim.NS(2)}
}

// System is the magic shared-L2 machine.
type System struct {
	Eng *sim.Engine
	Cfg Config

	// values is the globally coherent store.
	values map[mem.Block]uint64
	// l1 models per-processor L1 residency: the last epoch each (proc,
	// block) pair was touched and the block's invalidation epoch.
	touched map[l1Key]uint64
	epoch   map[mem.Block]uint64

	ports      []*port
	Hits       uint64
	MissesToL2 uint64

	Ctrs            *counters.Set
	ctrHit, ctrMiss *counters.Counter
}

type l1Key struct {
	proc  int
	block mem.Block
	instr bool
}

// NewSystem builds a PerfectL2 machine.
func NewSystem(eng *sim.Engine, cfg Config) *System {
	s := &System{
		Eng:     eng,
		Cfg:     cfg,
		values:  make(map[mem.Block]uint64),
		touched: make(map[l1Key]uint64),
		epoch:   make(map[mem.Block]uint64),
		Ctrs:    counters.NewSet(),
	}
	s.ctrHit = s.Ctrs.Counter(counters.L1Hit)
	s.ctrMiss = s.Ctrs.Counter(counters.L1Miss)
	n := cfg.Geom.TotalProcs()
	s.ports = make([]*port, 2*n)
	for p := 0; p < n; p++ {
		s.ports[2*p] = &port{sys: s, proc: p, instr: false}
		s.ports[2*p+1] = &port{sys: s, proc: p, instr: true}
	}
	return s
}

// Ports returns the data and instruction ports of a global processor.
func (s *System) Ports(globalProc int) (data, inst cpu.MemPort) {
	return s.ports[2*globalProc], s.ports[2*globalProc+1]
}

// Name reports the protocol name.
func (s *System) Name() string { return "PerfectL2" }

// Misses reports accesses that left the L1.
func (s *System) Misses() uint64 { return s.MissesToL2 }

// Counters exposes the machine-wide uniform event-counter registry.
func (s *System) Counters() *counters.Set { return s.Ctrs }

type port struct {
	sys   *System
	proc  int
	instr bool
}

// Access implements cpu.MemPort. A block counts as an L1 hit if this
// processor touched it since the last conflicting write by another
// processor; otherwise the access pays the perfect-L2 round trip.
func (p *port) Access(kind cpu.AccessKind, addr mem.Addr, store uint64, done func(uint64)) {
	s := p.sys
	b := mem.BlockOf(addr)
	key := l1Key{proc: p.proc, block: b, instr: p.instr}
	lat := s.Cfg.L1Latency
	if s.touched[key] < s.epoch[b]+1 {
		// Not L1-resident: shared-L2 hit.
		s.MissesToL2++
		s.ctrMiss.Inc()
		lat += 2*s.Cfg.LinkLat + s.Cfg.L2Latency
	} else {
		s.Hits++
		s.ctrHit.Inc()
	}
	s.Eng.Schedule(lat, func() {
		var val uint64
		switch kind {
		case cpu.Load, cpu.IFetch:
			val = s.values[b]
		case cpu.Store:
			s.values[b] = store
			s.epoch[b]++ // invalidate other L1 copies
		case cpu.Atomic:
			val = s.values[b]
			s.values[b] = store
			s.epoch[b]++
		}
		s.touched[key] = s.epoch[b] + 1
		done(val)
	})
}
