package simd

import (
	"context"
	"testing"
	"time"
)

// TestRequestClassification pins the cost split: the default request
// is light, paper-scale sweeps are heavy, and the classification is a
// pure function of the normalized request.
func TestRequestClassification(t *testing.T) {
	light := Request{}
	light.Normalize() // 1 seed x 64 acquires x 16 procs ≈ 1k ops
	if got := light.Class(DefaultHeavyOpsThreshold); got != ClassLight {
		t.Errorf("default request classed %v, want light (ops=%d)", got, light.EstimatedOps())
	}
	heavy := Request{Workload: "locking", Acquires: 5000, Seeds: 8}
	heavy.Normalize()
	if got := heavy.Class(DefaultHeavyOpsThreshold); got != ClassHeavy {
		t.Errorf("8x5000-acquire sweep classed %v, want heavy (ops=%d)", got, heavy.EstimatedOps())
	}
	// Check doubles the estimate: a request just under the line tips over.
	edge := Request{Workload: "locking", Acquires: 4000, Seeds: 1} // 4000*16 = 64k
	edge.Normalize()
	if got := edge.Class(DefaultHeavyOpsThreshold); got != ClassLight {
		t.Errorf("64k-op request classed %v, want light", got)
	}
	edge.Check = true // 128k >= 100k
	if got := edge.Class(DefaultHeavyOpsThreshold); got != ClassHeavy {
		t.Errorf("checked 128k-op request classed %v, want heavy", got)
	}
	if got := edge.Class(0); got != ClassLight {
		t.Errorf("threshold 0 must disable the split, got %v", got)
	}
}

// TestAdmissionPoolsAndReserve pins the borrow semantics: a class
// fills its own slots first, borrows the shared reserve next, and a
// released slot returns to the pool it came from.
func TestAdmissionPoolsAndReserve(t *testing.T) {
	a := newAdmission(1, 1, 1, 0, 0, nil)
	h1, ok := a.tryAcquire(ClassHeavy) // heavy dedicated
	if !ok {
		t.Fatal("heavy slot 1")
	}
	h2, ok := a.tryAcquire(ClassHeavy) // borrows the reserve
	if !ok {
		t.Fatal("heavy slot 2 (reserve)")
	}
	if _, ok := a.tryAcquire(ClassHeavy); ok {
		t.Fatal("third heavy acquire succeeded; nothing left to take")
	}
	// The light dedicated slot is untouchable by heavy load.
	l1, ok := a.tryAcquire(ClassLight)
	if !ok {
		t.Fatal("light dedicated slot unavailable under heavy saturation")
	}
	if _, ok := a.tryAcquire(ClassLight); ok {
		t.Fatal("second light acquire succeeded; reserve should be gone")
	}
	// Releasing the reserve-borrowed token frees the reserve for light.
	a.release(h2)
	l2, ok := a.tryAcquire(ClassLight)
	if !ok {
		t.Fatal("light could not borrow the freed reserve")
	}
	a.release(h1)
	a.release(l1)
	a.release(l2)
}

// TestAdmissionShedsAtClassDepth asserts the per-class queue bound:
// with zero queue depth, an acquire that cannot take a slot sheds
// instead of waiting, and only its own class's counters move.
func TestAdmissionShedsAtClassDepth(t *testing.T) {
	m := &Metrics{}
	a := newAdmission(0, 0, 1, 0, 0, m)
	tok, ok := a.tryAcquire(ClassHeavy)
	if !ok {
		t.Fatal("reserve slot")
	}
	_, shed, err := a.acquire(context.Background(), ClassLight)
	if err != nil || !shed {
		t.Fatalf("acquire with full pools and zero queue: shed=%t err=%v, want shed", shed, err)
	}
	if m.ClassShed[ClassLight].Load() != 1 || m.ClassShed[ClassHeavy].Load() != 0 {
		t.Errorf("ClassShed = light %d heavy %d, want 1/0",
			m.ClassShed[ClassLight].Load(), m.ClassShed[ClassHeavy].Load())
	}
	if m.Shed.Load() != 1 {
		t.Errorf("aggregate Shed = %d, want 1", m.Shed.Load())
	}
	a.release(tok)
}

// TestRetryAfterBounds pins the scaled backoff hint (the satellite
// contract): at least 1s, at most the 300s cap, exactly the base
// budget when nothing is queued, and nondecreasing in queue depth.
func TestRetryAfterBounds(t *testing.T) {
	if got := retryAfterSeconds(30*time.Second, 0, 4); got != 30 {
		t.Errorf("empty queue: %d, want the 30s base budget", got)
	}
	if got := retryAfterSeconds(30*time.Second, 4, 4); got != 60 {
		t.Errorf("one budget's worth queued: %d, want 60", got)
	}
	if got := retryAfterSeconds(time.Millisecond, 0, 1); got != 1 {
		t.Errorf("tiny budget: %d, want the 1s floor", got)
	}
	if got := retryAfterSeconds(10*time.Minute, 1000, 1); got != retryAfterCapSeconds {
		t.Errorf("huge pressure: %d, want the %ds cap", got, retryAfterCapSeconds)
	}
	if got := retryAfterSeconds(30*time.Second, -5, 0); got != 30 {
		t.Errorf("degenerate inputs: %d, want 30 (clamped to sane)", got)
	}
	prev := 0
	for q := int64(0); q <= 64; q += 4 {
		got := retryAfterSeconds(10*time.Second, q, 2)
		if got < prev {
			t.Fatalf("hint decreased with queue depth: %d at q=%d after %d", got, q, prev)
		}
		if got < 1 || got > retryAfterCapSeconds {
			t.Fatalf("hint %d outside [1, %d] at q=%d", got, retryAfterCapSeconds, q)
		}
		prev = got
	}
}

// TestSplitSlots pins the derivation from the aggregate knob: tiny
// totals degenerate to one shared pool, larger ones keep dedicated
// slots for both classes plus a reserve, always summing exactly.
func TestSplitSlots(t *testing.T) {
	for total := 1; total <= 32; total++ {
		light, heavy, reserve := splitSlots(total)
		if light+heavy+reserve != total {
			t.Fatalf("splitSlots(%d) = %d+%d+%d, does not sum", total, light, heavy, reserve)
		}
		if total < 3 {
			if reserve != total {
				t.Errorf("splitSlots(%d): tiny total must be all reserve", total)
			}
			continue
		}
		if light < 1 || heavy < 1 || reserve < 1 {
			t.Errorf("splitSlots(%d) = %d/%d/%d: every pool needs a slot", total, light, heavy, reserve)
		}
		if light < heavy {
			t.Errorf("splitSlots(%d): light %d < heavy %d; the cheap class keeps the remainder", total, light, heavy)
		}
	}
}
