package simd

import (
	"fmt"
	"testing"
	"time"
)

// testBreaker builds a breaker with an injectable clock.
func testBreaker(threshold int, cooldown time.Duration, m *Metrics) (*breaker, *time.Time) {
	b := newBreaker(threshold, cooldown, m)
	clock := time.Unix(1_000_000, 0)
	b.now = func() time.Time { return clock }
	return b, &clock
}

// TestBreakerOpensAfterThreshold pins the core contract: K-1 panics
// still allow runs, the Kth opens the key, and an open key rejects
// with a positive cooldown hint while other keys stay unaffected.
func TestBreakerOpensAfterThreshold(t *testing.T) {
	m := &Metrics{}
	b, _ := testBreaker(3, time.Minute, m)
	for i := 0; i < 2; i++ {
		if ok, _ := b.allow("poison"); !ok {
			t.Fatalf("rejected after %d panics, threshold is 3", i)
		}
		b.onPanic("poison")
	}
	if ok, _ := b.allow("poison"); !ok {
		t.Fatal("rejected after 2 panics, threshold is 3")
	}
	b.onPanic("poison")
	ok, retry := b.allow("poison")
	if ok {
		t.Fatal("allowed after 3 panics")
	}
	if retry < time.Second {
		t.Errorf("retryAfter = %v, want >= 1s", retry)
	}
	if m.BreakerOpen.Load() != 1 {
		t.Errorf("BreakerOpen = %d, want 1", m.BreakerOpen.Load())
	}
	if m.BreakerRejected.Load() != 1 {
		t.Errorf("BreakerRejected = %d, want 1", m.BreakerRejected.Load())
	}
	if ok, _ := b.allow("innocent"); !ok {
		t.Error("an unrelated key was rejected")
	}
}

// TestBreakerHalfOpenProbe advances past the cooldown and asserts
// exactly one probe runs: a concurrent request still rejects, a probe
// panic reopens immediately, and a probe success closes and forgets.
func TestBreakerHalfOpenProbe(t *testing.T) {
	m := &Metrics{}
	b, clock := testBreaker(2, time.Minute, m)
	b.onPanic("k")
	b.onPanic("k") // open
	*clock = clock.Add(61 * time.Second)
	if ok, _ := b.allow("k"); !ok {
		t.Fatal("probe not allowed after cooldown")
	}
	if ok, _ := b.allow("k"); ok {
		t.Fatal("second concurrent probe allowed")
	}
	// Probe panics: reopens at once (saturated count), no new probe
	// until another cooldown.
	b.onPanic("k")
	if ok, _ := b.allow("k"); ok {
		t.Fatal("allowed immediately after a failed probe")
	}
	if m.BreakerOpen.Load() != 2 {
		t.Errorf("BreakerOpen = %d, want 2 (initial + reopen)", m.BreakerOpen.Load())
	}
	// Next cooldown: the probe succeeds and the key is forgotten.
	*clock = clock.Add(61 * time.Second)
	if ok, _ := b.allow("k"); !ok {
		t.Fatal("probe not allowed after second cooldown")
	}
	b.onSuccess("k")
	for i := 0; i < 3; i++ {
		if ok, _ := b.allow("k"); !ok {
			t.Fatal("key still tracked after a successful probe")
		}
	}
	if len(b.entries) != 0 {
		t.Errorf("entries = %d after success, want 0", len(b.entries))
	}
}

// TestBreakerSuccessResetsCount asserts sub-threshold panics are
// forgiven by one success — only consecutive failures open the key.
func TestBreakerSuccessResetsCount(t *testing.T) {
	b, _ := testBreaker(3, time.Minute, &Metrics{})
	b.onPanic("k")
	b.onPanic("k")
	b.onSuccess("k")
	b.onPanic("k")
	b.onPanic("k")
	if ok, _ := b.allow("k"); !ok {
		t.Fatal("opened at 2 consecutive panics after a reset, threshold is 3")
	}
}

// TestBreakerDisabled asserts threshold <= 0 turns the breaker into
// a no-op that tracks nothing.
func TestBreakerDisabled(t *testing.T) {
	b, _ := testBreaker(-1, time.Minute, &Metrics{})
	for i := 0; i < 10; i++ {
		b.onPanic("k")
	}
	if ok, _ := b.allow("k"); !ok {
		t.Fatal("disabled breaker rejected a request")
	}
	if len(b.entries) != 0 {
		t.Errorf("disabled breaker tracked %d keys", len(b.entries))
	}
}

// TestBreakerBoundedMemory floods the breaker with distinct poison
// keys and asserts the tracked set stays at its bound, evicting the
// oldest.
func TestBreakerBoundedMemory(t *testing.T) {
	b, _ := testBreaker(1, time.Minute, &Metrics{})
	for i := 0; i < breakerMaxKeys+100; i++ {
		b.onPanic(fmt.Sprintf("key-%d", i))
	}
	if len(b.entries) != breakerMaxKeys {
		t.Fatalf("entries = %d, want bound %d", len(b.entries), breakerMaxKeys)
	}
	if ok, _ := b.allow("key-0"); !ok {
		t.Error("oldest key still tracked; eviction should have forgotten it")
	}
	if ok, _ := b.allow(fmt.Sprintf("key-%d", breakerMaxKeys+99)); ok {
		t.Error("newest poisoned key not rejected")
	}
}
