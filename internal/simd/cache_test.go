package simd

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestDoCollapsesConcurrent storms one key with many goroutines and
// asserts exactly one underlying computation ran and every caller got
// the same bytes.
func TestDoCollapsesConcurrent(t *testing.T) {
	m := &Metrics{}
	c := NewCache(8, time.Minute, context.Background(), m)
	var calls atomic.Int64
	release := make(chan struct{})
	fn := func(context.Context) ([]byte, error) {
		calls.Add(1)
		<-release
		return []byte("body"), nil
	}
	const n = 32
	var wg sync.WaitGroup
	results := make([][]byte, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = c.Do(context.Background(), "k", fn)
		}(i)
	}
	// Let the callers pile onto the flight, then let it finish.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Fatalf("fn ran %d times for one key, want 1", got)
	}
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if string(results[i]) != "body" {
			t.Fatalf("caller %d got %q", i, results[i])
		}
	}
	if m.Runs.Load() != 1 {
		t.Errorf("Runs = %d, want 1", m.Runs.Load())
	}
	// Every non-lead caller either joined the flight or (if scheduled
	// after it completed) hit the cache; none started a second run.
	hits0 := m.Hits.Load()
	if got := m.Collapsed.Load() + hits0; got != n-1 {
		t.Errorf("Collapsed+Hits = %d, want %d", got, n-1)
	}
	// A later call is a plain cache hit.
	if _, err := c.Do(context.Background(), "k", fn); err != nil {
		t.Fatal(err)
	}
	if m.Hits.Load() != hits0+1 {
		t.Errorf("Hits = %d, want %d", m.Hits.Load(), hits0+1)
	}
}

// TestLRUEviction fills past capacity and asserts the least recently
// used body (not the most recently touched one) is dropped.
func TestLRUEviction(t *testing.T) {
	m := &Metrics{}
	c := NewCache(2, 0, context.Background(), m)
	put := func(key string) {
		t.Helper()
		if _, err := c.Do(context.Background(), key, func(context.Context) ([]byte, error) {
			return []byte(key), nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	put("a")
	put("b")
	if _, ok := c.Lookup("a"); !ok { // refresh a: b becomes the LRU victim
		t.Fatal("a missing before capacity was reached")
	}
	put("c")
	if _, ok := c.Lookup("b"); ok {
		t.Error("b survived eviction despite being least recently used")
	}
	if _, ok := c.Lookup("a"); !ok {
		t.Error("a evicted despite being recently used")
	}
	if _, ok := c.Lookup("c"); !ok {
		t.Error("c missing right after insertion")
	}
	if m.Evicted.Load() != 1 {
		t.Errorf("Evicted = %d, want 1", m.Evicted.Load())
	}
}

// TestTTLExpiry advances an injected clock past the TTL and asserts
// the entry is dropped and recomputed on the next request.
func TestTTLExpiry(t *testing.T) {
	m := &Metrics{}
	c := NewCache(8, time.Minute, context.Background(), m)
	clock := time.Unix(1000, 0)
	c.now = func() time.Time { return clock }
	var calls atomic.Int64
	fn := func(context.Context) ([]byte, error) {
		calls.Add(1)
		return []byte(fmt.Sprintf("gen%d", calls.Load())), nil
	}
	b1, err := c.Do(context.Background(), "k", fn)
	if err != nil {
		t.Fatal(err)
	}
	clock = clock.Add(59 * time.Second)
	if b, ok := c.Lookup("k"); !ok || string(b) != string(b1) {
		t.Fatalf("entry gone before TTL: ok=%t body=%q", ok, b)
	}
	clock = clock.Add(2 * time.Second) // 61s > 60s TTL
	if _, ok := c.Lookup("k"); ok {
		t.Fatal("entry survived past its TTL")
	}
	if m.Expired.Load() != 1 {
		t.Errorf("Expired = %d, want 1", m.Expired.Load())
	}
	b2, err := c.Do(context.Background(), "k", fn)
	if err != nil {
		t.Fatal(err)
	}
	if string(b2) != "gen2" {
		t.Errorf("expired entry not recomputed: got %q", b2)
	}
}

// TestAbandonedFlightCancelled asserts that when every waiter gives
// up, the flight's context is cancelled (the engine-abort path) and a
// later identical request starts a fresh flight.
func TestAbandonedFlightCancelled(t *testing.T) {
	m := &Metrics{}
	c := NewCache(8, time.Minute, context.Background(), m)
	flightCancelled := make(chan struct{})
	fn := func(fctx context.Context) ([]byte, error) {
		<-fctx.Done()
		close(flightCancelled)
		return nil, fctx.Err()
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	if _, err := c.Do(ctx, "k", fn); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	select {
	case <-flightCancelled:
	case <-time.After(time.Second):
		t.Fatal("flight context never cancelled after the last waiter left")
	}
	// The abandoned flight must not have poisoned the key.
	body, err := c.Do(context.Background(), "k", func(context.Context) ([]byte, error) {
		return []byte("fresh"), nil
	})
	if err != nil || string(body) != "fresh" {
		t.Fatalf("fresh flight after abandonment: body=%q err=%v", body, err)
	}
	if m.Runs.Load() != 2 {
		t.Errorf("Runs = %d, want 2 (abandoned + fresh)", m.Runs.Load())
	}
}

// TestPanicIsolated asserts a panicking computation surfaces as
// ErrPanic to every waiter, is counted, is not cached, and leaves the
// cache usable.
func TestPanicIsolated(t *testing.T) {
	m := &Metrics{}
	c := NewCache(8, time.Minute, context.Background(), m)
	_, err := c.Do(context.Background(), "k", func(context.Context) ([]byte, error) {
		panic("boom")
	})
	if !errors.Is(err, ErrPanic) {
		t.Fatalf("err = %v, want ErrPanic", err)
	}
	if m.Panics.Load() != 1 {
		t.Errorf("Panics = %d, want 1", m.Panics.Load())
	}
	body, err := c.Do(context.Background(), "k", func(context.Context) ([]byte, error) {
		return []byte("ok"), nil
	})
	if err != nil || string(body) != "ok" {
		t.Fatalf("cache unusable after panic: body=%q err=%v", body, err)
	}
}

// TestErrorNotCached asserts failures are never served from the cache.
func TestErrorNotCached(t *testing.T) {
	c := NewCache(8, time.Minute, context.Background(), nil)
	boom := errors.New("boom")
	if _, err := c.Do(context.Background(), "k", func(context.Context) ([]byte, error) {
		return nil, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if c.Len() != 0 {
		t.Fatalf("error cached: Len = %d", c.Len())
	}
	body, err := c.Do(context.Background(), "k", func(context.Context) ([]byte, error) {
		return []byte("ok"), nil
	})
	if err != nil || string(body) != "ok" {
		t.Fatalf("retry after error: body=%q err=%v", body, err)
	}
}

// TestLateWaiterAfterDetach pins the race where one waiter times out
// while another keeps the flight alive: the survivor still gets the
// result, and the flight is not cancelled early.
func TestLateWaiterAfterDetach(t *testing.T) {
	c := NewCache(8, time.Minute, context.Background(), nil)
	release := make(chan struct{})
	fn := func(fctx context.Context) ([]byte, error) {
		select {
		case <-release:
			return []byte("done"), nil
		case <-fctx.Done():
			return nil, fctx.Err()
		}
	}
	impatient, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(2)
	var patientBody []byte
	var patientErr error
	go func() {
		defer wg.Done()
		_, _ = c.Do(impatient, "k", fn)
	}()
	time.Sleep(5 * time.Millisecond)
	go func() {
		defer wg.Done()
		patientBody, patientErr = c.Do(context.Background(), "k", fn)
	}()
	time.Sleep(5 * time.Millisecond)
	cancel() // the impatient waiter leaves; the patient one remains
	time.Sleep(5 * time.Millisecond)
	close(release)
	wg.Wait()
	if patientErr != nil || string(patientBody) != "done" {
		t.Fatalf("patient waiter: body=%q err=%v (flight cancelled early?)", patientBody, patientErr)
	}
}
