package simd

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrPanic wraps a recovered worker panic so the serving layer can
// distinguish "this request crashed its worker" from ordinary run
// failures. The panic is confined to the one flight that raised it.
var ErrPanic = errors.New("simd: run panicked")

// Cache is a singleflight result cache with LRU capacity eviction and
// TTL expiry, in the shape of the serving-layer token caches used by
// inference gateways: concurrent requests for the same key collapse
// onto one in-flight computation, completed bodies are reused until
// they age out, and a flight whose waiters have all given up is
// cancelled instead of burning a worker for nobody.
//
// The deterministic simulator makes the cache sound: a key encodes
// every input the result depends on, so serving bytes computed for an
// earlier identical request is indistinguishable from re-running it.
type Cache struct {
	max     int
	ttl     time.Duration // <= 0 means entries never expire
	baseCtx context.Context
	metrics *Metrics
	store   *Store           // durable write-behind mirror; nil = memory-only
	now     func() time.Time // injected by tests; time.Now in production

	mu       sync.Mutex
	entries  map[string]*list.Element
	order    *list.List // front = most recently used
	inflight map[string]*flight
}

type entry struct {
	key     string
	body    []byte
	expires time.Time // zero = never expires
}

// flight is one running computation plus the bookkeeping to collapse
// and abandon it. body and err are written exactly once, before done
// is closed; waiters is guarded by the cache mutex.
type flight struct {
	cancel  context.CancelFunc
	done    chan struct{}
	body    []byte
	err     error
	waiters int
}

// NewCache builds a cache holding at most max bodies (min 1) that
// expire ttl after insertion (ttl <= 0 disables expiry). Flights are
// cancelled when base is — the daemon passes its drain context so
// shutdown aborts orphaned runs. metrics may be nil.
func NewCache(max int, ttl time.Duration, base context.Context, metrics *Metrics) *Cache {
	if max < 1 {
		max = 1
	}
	if base == nil {
		base = context.Background()
	}
	if metrics == nil {
		metrics = &Metrics{}
	}
	return &Cache{
		max:      max,
		ttl:      ttl,
		baseCtx:  base,
		metrics:  metrics,
		now:      time.Now,
		entries:  make(map[string]*list.Element),
		order:    list.New(),
		inflight: make(map[string]*flight),
	}
}

// Len reports the number of cached bodies (not in-flight runs).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Lookup probes the cache without joining or starting a flight: it
// returns a live cached body (refreshing its LRU position) or reports
// a miss. Expired entries are dropped on the way.
func (c *Cache) Lookup(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	e := el.Value.(*entry)
	if e.expired(c.now()) {
		c.removeLocked(el)
		c.metrics.Expired.Add(1)
		return nil, false
	}
	c.order.MoveToFront(el)
	c.metrics.Hits.Add(1)
	return e.body, true
}

// expired reports whether the entry's absolute expiry (possibly
// restored from disk, so not necessarily now+TTL) has passed. A zero
// expiry never expires.
func (e *entry) expired(now time.Time) bool {
	return !e.expires.IsZero() && !now.Before(e.expires)
}

// Do returns the body for key, computing it with fn at most once no
// matter how many callers ask concurrently. ctx bounds only this
// caller's wait: if it expires the caller detaches, and the last
// detaching waiter cancels the flight's own context so the underlying
// engine stops within its documented event bound. fn runs on a fresh
// goroutine with panics recovered into an ErrPanic-wrapped error, so
// one poisoned request cannot take the daemon down. Only successful
// bodies are cached.
func (c *Cache) Do(ctx context.Context, key string, fn func(context.Context) ([]byte, error)) ([]byte, error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*entry)
		if !e.expired(c.now()) {
			c.order.MoveToFront(el)
			c.mu.Unlock()
			c.metrics.Hits.Add(1)
			return e.body, nil
		}
		c.removeLocked(el)
		c.metrics.Expired.Add(1)
	}
	f, ok := c.inflight[key]
	if ok {
		f.waiters++
		c.metrics.Collapsed.Add(1)
	} else {
		fctx, cancel := context.WithCancel(c.baseCtx)
		f = &flight{cancel: cancel, done: make(chan struct{}), waiters: 1}
		c.inflight[key] = f
		c.metrics.Runs.Add(1)
		go c.lead(key, f, fctx, fn)
	}
	c.mu.Unlock()

	select {
	case <-f.done:
		return f.body, f.err
	case <-ctx.Done():
		c.mu.Lock()
		f.waiters--
		if f.waiters == 0 && c.inflight[key] == f {
			// Nobody is waiting for this result anymore: stop the run
			// and forget the flight so a later request starts fresh.
			delete(c.inflight, key)
			f.cancel()
		}
		c.mu.Unlock()
		return nil, ctx.Err()
	}
}

// lead runs fn for a flight, publishes the outcome, and installs
// successful bodies in the LRU — unless the flight was abandoned
// (removed from inflight) while it ran, in which case the result is
// discarded because no request is waiting and the run may have been
// cancelled mid-simulation.
func (c *Cache) lead(key string, f *flight, fctx context.Context, fn func(context.Context) ([]byte, error)) {
	body, err := func() (b []byte, err error) {
		defer func() {
			if r := recover(); r != nil {
				c.metrics.Panics.Add(1)
				err = fmt.Errorf("%w: %v", ErrPanic, r)
			}
		}()
		return fn(fctx)
	}()
	c.mu.Lock()
	f.body, f.err = body, err
	if c.inflight[key] == f {
		delete(c.inflight, key)
		if err == nil {
			c.insertLocked(key, body)
		}
	}
	c.mu.Unlock()
	close(f.done)
	f.cancel()
}

func (c *Cache) insertLocked(key string, body []byte) {
	var exp time.Time
	if c.ttl > 0 {
		exp = c.now().Add(c.ttl)
	}
	c.placeLocked(key, body, exp)
	if c.store != nil {
		c.store.Put(key, body, exp)
	}
}

// placeLocked installs a body with an explicit absolute expiry at the
// front of the LRU, evicting past capacity, without touching the
// durable store — the shared tail of a fresh insert (which persists)
// and a boot-time restore (whose bytes are already on disk).
func (c *Cache) placeLocked(key string, body []byte, exp time.Time) {
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*entry)
		e.body, e.expires = body, exp
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&entry{key: key, body: body, expires: exp})
	for c.order.Len() > c.max {
		c.removeLocked(c.order.Back())
		c.metrics.Evicted.Add(1)
	}
}

// restore repopulates the LRU from entries recovered off disk,
// preserving each entry's original absolute expiry (a result written
// 9 minutes ago keeps 1 minute of life, not a fresh TTL). The slice
// arrives freshest-first from Store.Restore; inserting in reverse
// leaves the freshest at the LRU front.
func (c *Cache) restore(entries []RestoredEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := len(entries) - 1; i >= 0; i-- {
		e := entries[i]
		c.placeLocked(e.Key, e.Body, e.Expires)
	}
}

func (c *Cache) removeLocked(el *list.Element) {
	c.order.Remove(el)
	key := el.Value.(*entry).key
	delete(c.entries, key)
	if c.store != nil {
		c.store.Delete(key)
	}
}
