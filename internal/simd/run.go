package simd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"

	"tokencmp/internal/cpu"
	"tokencmp/internal/experiments"
	"tokencmp/internal/machine"
	"tokencmp/internal/sim"
	"tokencmp/internal/stats"
	"tokencmp/internal/topo"
	"tokencmp/internal/workload"
)

// Response is the JSON body for a completed experiment. It is built
// with a fixed field order and no wall-clock content, so equal cache
// keys produce byte-identical bodies — the property the singleflight
// cache and the CI smoke test rely on.
type Response struct {
	Protocol   string  `json:"protocol"`
	Workload   string  `json:"workload"`
	Runs       int     `json:"runs"`
	RuntimeNS  float64 `json:"runtime_ns"`      // mean over runs
	RuntimeCI  float64 `json:"runtime_ci95_ns"` // 0 for a single run
	Events     uint64  `json:"events"`          // summed over runs
	Misses     uint64  `json:"l1_misses"`
	Persistent uint64  `json:"persistent"`
	Acquires   uint64  `json:"acquires"`
	Violations int     `json:"violations"`
	IntraBytes uint64  `json:"intra_cmp_bytes"`
	IntraMsgs  uint64  `json:"intra_cmp_messages"`
	InterBytes uint64  `json:"inter_cmp_bytes"`
	InterMsgs  uint64  `json:"inter_cmp_messages"`
}

// runRequest executes every seed of a normalized, validated request
// serially under ctx (daemon-level parallelism comes from concurrent
// requests, not from fanning one request out) and renders the
// deterministic response body.
func runRequest(ctx context.Context, req Request) ([]byte, error) {
	switch req.Workload {
	case ChaosPanic:
		panic("simd: chaos panic workload")
	case ChaosHang:
		<-ctx.Done()
		return nil, ctx.Err()
	}

	g := topo.NewGeometry(req.CMPs, req.Procs, req.Banks)
	var (
		runtime    stats.Sample
		traffic    stats.Traffic
		events     uint64
		misses     uint64
		persistent uint64
		acquires   uint64
		violations int
		protoName  string
	)
	for i := 0; i < req.Seeds; i++ {
		seed := req.Seed + int64(i)
		m, err := machine.New(machine.Config{
			Protocol:         req.Protocol,
			Geom:             g,
			Seed:             seed,
			CheckConsistency: req.Check,
			AuditTokens:      req.Check,
		})
		if err != nil {
			return nil, err
		}
		var progs []cpu.Program
		var mon *workload.LockMonitor
		switch req.Workload {
		case "locking":
			lc := workload.DefaultLocking(req.Locks)
			lc.Acquires = req.Acquires
			progs, mon = workload.LockingPrograms(lc, g.TotalProcs(), seed)
		case "barrier":
			bc := workload.DefaultBarrier(g.TotalProcs(), 0)
			bc.Iterations = req.Barriers
			progs, mon = workload.BarrierPrograms(bc, seed)
		default:
			params, err := experiments.CommercialParamsFor(req.Workload)
			if err != nil {
				return nil, err
			}
			params.TxnsPerProc = req.Txns
			progs, mon = workload.CommercialPrograms(params, g.TotalProcs(), seed)
		}
		res, err := m.RunCtx(ctx, progs, 0)
		if err != nil {
			return nil, err
		}
		protoName = m.Proto.Name()
		runtime.Add(float64(res.Runtime) / float64(sim.Nanosecond))
		traffic.Merge(&res.Traffic)
		events += res.Events
		misses += res.Misses
		persistent += res.Persistent
		acquires += mon.Acquires
		violations += len(mon.Violations)
	}

	resp := Response{
		Protocol:   protoName,
		Workload:   req.Workload,
		Runs:       req.Seeds,
		RuntimeNS:  runtime.Mean(),
		Events:     events,
		Misses:     misses,
		Persistent: persistent,
		Acquires:   acquires,
		Violations: violations,
		IntraBytes: traffic.TotalBytes(stats.IntraCMP),
		IntraMsgs:  traffic.TotalMessages(stats.IntraCMP),
		InterBytes: traffic.TotalBytes(stats.InterCMP),
		InterMsgs:  traffic.TotalMessages(stats.InterCMP),
	}
	if req.Seeds > 1 {
		resp.RuntimeCI = runtime.CI95()
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(&resp); err != nil {
		return nil, fmt.Errorf("simd: encode response: %w", err)
	}
	return buf.Bytes(), nil
}
