package simd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// tinyBody is a request small enough that a full run takes a few
// milliseconds: a 2x2x1 machine doing 4 acquires over 2 locks.
func tinyBody(seed int64) string {
	return fmt.Sprintf(`{"protocol":"TokenCMP-dst1","workload":"locking","locks":2,"acquires":4,"cmps":2,"procs":2,"banks":1,"seed":%d}`, seed)
}

func post(t *testing.T, client *http.Client, url, body string) (int, http.Header, string) {
	t.Helper()
	resp, err := client.Post(url+"/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, string(b)
}

// TestServerCollapsesDuplicates fires the same experiment from many
// goroutines at once and asserts exactly one simulation ran and every
// client received byte-identical bodies — the cache-key determinism
// contract.
func TestServerCollapsesDuplicates(t *testing.T) {
	d := New(Config{MaxConcurrent: 4, QueueDepth: 32})
	ts := httptest.NewServer(d.Handler())
	defer ts.Close()
	const n = 12
	bodies := make([]string, n)
	codes := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], _, bodies[i] = post(t, ts.Client(), ts.URL, tinyBody(1))
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("client %d: status %d body %s", i, codes[i], bodies[i])
		}
		if bodies[i] != bodies[0] {
			t.Fatalf("client %d body diverged:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}
	if runs := d.Metrics().Runs.Load(); runs != 1 {
		t.Errorf("underlying runs = %d, want 1 (singleflight collapse)", runs)
	}
	// A follow-up request is a pure cache hit with the same bytes.
	code, hdr, body := post(t, ts.Client(), ts.URL, tinyBody(1))
	if code != http.StatusOK || body != bodies[0] {
		t.Fatalf("cached replay: status %d, body match %t", code, body == bodies[0])
	}
	if hdr.Get("X-Simd-Cache") != "hit" {
		t.Errorf("X-Simd-Cache = %q, want hit", hdr.Get("X-Simd-Cache"))
	}
}

// TestServerShedsAtCapacity saturates one admission slot and a
// depth-1 queue with hanging runs and asserts the next request is
// shed with 429 and a Retry-After hint instead of queueing.
func TestServerShedsAtCapacity(t *testing.T) {
	d := New(Config{MaxConcurrent: 1, QueueDepth: 1, DefaultTimeout: 2 * time.Second, Chaos: true})
	ts := httptest.NewServer(d.Handler())
	defer ts.Close()
	hang := func(seed int64) string {
		return fmt.Sprintf(`{"workload":"__hang","seed":%d,"timeout_ms":1500}`, seed)
	}
	release := make(chan struct{})
	var wg sync.WaitGroup
	for i := int64(1); i <= 2; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			<-release
			post(t, ts.Client(), ts.URL, hang(seed)) // times out with 504 eventually
		}(i)
	}
	close(release)
	// Wait until the slot is held and the queue position is taken.
	deadline := time.Now().Add(2 * time.Second)
	for d.Metrics().InFlight.Load() < 1 || d.Metrics().Queued.Load() < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("saturation never reached: inflight=%d queued=%d",
				d.Metrics().InFlight.Load(), d.Metrics().Queued.Load())
		}
		time.Sleep(2 * time.Millisecond)
	}
	code, hdr, body := post(t, ts.Client(), ts.URL, hang(3))
	if code != http.StatusTooManyRequests {
		t.Fatalf("status = %d body %s, want 429", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("429 carried no Retry-After hint")
	}
	if d.Metrics().Shed.Load() != 1 {
		t.Errorf("Shed = %d, want 1", d.Metrics().Shed.Load())
	}
	wg.Wait()
}

// TestServerDeadlineAbortsEngine gives a genuinely large simulation a
// tiny budget and asserts the request comes back 504 promptly — the
// deadline must reach the event loop, not just the HTTP layer.
func TestServerDeadlineAbortsEngine(t *testing.T) {
	d := New(Config{MaxConcurrent: 2, QueueDepth: 4})
	ts := httptest.NewServer(d.Handler())
	defer ts.Close()
	big := `{"protocol":"TokenCMP-dst1","workload":"locking","acquires":60000,"timeout_ms":50}`
	start := time.Now()
	code, _, body := post(t, ts.Client(), ts.URL, big)
	elapsed := time.Since(start)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d body %s, want 504", code, body)
	}
	if elapsed > 5*time.Second {
		t.Errorf("504 took %v; the engine did not abort on deadline", elapsed)
	}
	if d.Metrics().Timeouts.Load() != 1 {
		t.Errorf("Timeouts = %d, want 1", d.Metrics().Timeouts.Load())
	}
}

// TestServerPanicIsolation asserts a poisoned request yields one 500
// and leaves the daemon fully serviceable.
func TestServerPanicIsolation(t *testing.T) {
	d := New(Config{MaxConcurrent: 2, QueueDepth: 4, Chaos: true})
	ts := httptest.NewServer(d.Handler())
	defer ts.Close()
	code, _, body := post(t, ts.Client(), ts.URL, `{"workload":"__panic"}`)
	if code != http.StatusInternalServerError || !strings.Contains(body, "panicked") {
		t.Fatalf("panic request: status %d body %s", code, body)
	}
	if d.Metrics().Panics.Load() != 1 {
		t.Errorf("Panics = %d, want 1", d.Metrics().Panics.Load())
	}
	code, _, body = post(t, ts.Client(), ts.URL, tinyBody(1))
	if code != http.StatusOK {
		t.Fatalf("daemon unhealthy after panic: status %d body %s", code, body)
	}
}

// TestServerRejectsBadInput covers the 400 paths: malformed JSON,
// unknown fields, unknown protocol, out-of-range values, and chaos
// workloads without the chaos gate.
func TestServerRejectsBadInput(t *testing.T) {
	d := New(Config{})
	ts := httptest.NewServer(d.Handler())
	defer ts.Close()
	for _, body := range []string{
		`{`,
		`{"bogus_field":1}`,
		`{"protocol":"NoSuchCMP"}`,
		`{"workload":"knitting"}`,
		`{"cmps":999}`,
		`{"seeds":-2}`,
		`{"workload":"__panic"}`, // chaos gate off
	} {
		code, _, resp := post(t, ts.Client(), ts.URL, body)
		if code != http.StatusBadRequest {
			t.Errorf("body %s: status %d (%s), want 400", body, code, resp)
		}
	}
	if got := d.Metrics().BadInput.Load(); got != 7 {
		t.Errorf("BadInput = %d, want 7", got)
	}
}

// TestServerResponseShape decodes a body back into Response and spot
// checks the simulation actually happened.
func TestServerResponseShape(t *testing.T) {
	d := New(Config{})
	ts := httptest.NewServer(d.Handler())
	defer ts.Close()
	code, _, body := post(t, ts.Client(), ts.URL, tinyBody(7))
	if code != http.StatusOK {
		t.Fatalf("status %d body %s", code, body)
	}
	var resp Response
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Protocol != "TokenCMP-dst1" || resp.Runs != 1 {
		t.Errorf("resp = %+v", resp)
	}
	if resp.Events == 0 || resp.Acquires != 2*2*4 {
		t.Errorf("no simulation evidence in %+v", resp)
	}
	if resp.Violations != 0 {
		t.Errorf("mutual exclusion violated: %+v", resp)
	}
}

// TestServeDrain runs the real Serve loop, parks a hanging request in
// it, cancels the serve context, and asserts: readiness flips to 503,
// the hanging run is force-cancelled after the drain budget, and
// Serve returns.
func TestServeDrain(t *testing.T) {
	d := New(Config{
		MaxConcurrent: 2, QueueDepth: 4, Chaos: true,
		DefaultTimeout: 30 * time.Second,
		DrainTimeout:   150 * time.Millisecond,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() { serveDone <- d.Serve(ctx, ln) }()
	url := "http://" + ln.Addr().String()

	get := func(path string) int {
		resp, err := http.Get(url + path)
		if err != nil {
			return -1
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	waitFor := func(cond func() bool, what string) {
		t.Helper()
		deadline := time.Now().Add(3 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitFor(func() bool { return get("/readyz") == http.StatusOK }, "readiness")

	// Park a request that will only end when force-cancelled.
	hangDone := make(chan struct {
		code int
		body string
	}, 1)
	go func() {
		resp, err := http.Post(url+"/run", "application/json",
			bytes.NewReader([]byte(`{"workload":"__hang"}`)))
		if err != nil {
			hangDone <- struct {
				code int
				body string
			}{-1, err.Error()}
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		hangDone <- struct {
			code int
			body string
		}{resp.StatusCode, string(b)}
	}()
	waitFor(func() bool { return d.Metrics().InFlight.Load() == 1 }, "the hanging run")

	cancel()
	waitFor(func() bool { return get("/readyz") != http.StatusOK }, "readiness to drop")

	select {
	case err := <-serveDone:
		if err != nil {
			t.Errorf("Serve returned %v, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve never returned after cancellation")
	}
	select {
	case r := <-hangDone:
		// The force-cancel turns the hang into a 504/cancelled response
		// (or a torn connection if the server closed first) — either
		// way the handler goroutine ended.
		t.Logf("hanging request resolved: code=%d body=%s", r.code, r.body)
	case <-time.After(2 * time.Second):
		t.Fatal("hanging request still alive after drain + force-cancel")
	}
}
