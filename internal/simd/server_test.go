package simd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// tinyBody is a request small enough that a full run takes a few
// milliseconds: a 2x2x1 machine doing 4 acquires over 2 locks.
func tinyBody(seed int64) string {
	return fmt.Sprintf(`{"protocol":"TokenCMP-dst1","workload":"locking","locks":2,"acquires":4,"cmps":2,"procs":2,"banks":1,"seed":%d}`, seed)
}

// newTestDaemon builds a daemon and ties its teardown (force-cancel +
// store drain) to the test.
func newTestDaemon(t *testing.T, cfg Config) *Daemon {
	t.Helper()
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d
}

func post(t *testing.T, client *http.Client, url, body string) (int, http.Header, string) {
	t.Helper()
	resp, err := client.Post(url+"/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, string(b)
}

// TestServerCollapsesDuplicates fires the same experiment from many
// goroutines at once and asserts exactly one simulation ran and every
// client received byte-identical bodies — the cache-key determinism
// contract.
func TestServerCollapsesDuplicates(t *testing.T) {
	d := newTestDaemon(t, Config{MaxConcurrent: 4, QueueDepth: 32})
	ts := httptest.NewServer(d.Handler())
	defer ts.Close()
	const n = 12
	bodies := make([]string, n)
	codes := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], _, bodies[i] = post(t, ts.Client(), ts.URL, tinyBody(1))
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("client %d: status %d body %s", i, codes[i], bodies[i])
		}
		if bodies[i] != bodies[0] {
			t.Fatalf("client %d body diverged:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}
	if runs := d.Metrics().Runs.Load(); runs != 1 {
		t.Errorf("underlying runs = %d, want 1 (singleflight collapse)", runs)
	}
	// A follow-up request is a pure cache hit with the same bytes.
	code, hdr, body := post(t, ts.Client(), ts.URL, tinyBody(1))
	if code != http.StatusOK || body != bodies[0] {
		t.Fatalf("cached replay: status %d, body match %t", code, body == bodies[0])
	}
	if hdr.Get("X-Simd-Cache") != "hit" {
		t.Errorf("X-Simd-Cache = %q, want hit", hdr.Get("X-Simd-Cache"))
	}
}

// TestServerShedsAtCapacity saturates one admission slot and a
// depth-1 queue with hanging runs and asserts the next request is
// shed with 429 and a Retry-After hint instead of queueing.
func TestServerShedsAtCapacity(t *testing.T) {
	d := newTestDaemon(t, Config{MaxConcurrent: 1, QueueDepth: 1, DefaultTimeout: 2 * time.Second, Chaos: true})
	ts := httptest.NewServer(d.Handler())
	defer ts.Close()
	hang := func(seed int64) string {
		return fmt.Sprintf(`{"workload":"__hang","seed":%d,"timeout_ms":1500}`, seed)
	}
	release := make(chan struct{})
	var wg sync.WaitGroup
	for i := int64(1); i <= 2; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			<-release
			post(t, ts.Client(), ts.URL, hang(seed)) // times out with 504 eventually
		}(i)
	}
	close(release)
	// Wait until the slot is held and the queue position is taken.
	deadline := time.Now().Add(2 * time.Second)
	for d.Metrics().InFlight.Load() < 1 || d.Metrics().Queued.Load() < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("saturation never reached: inflight=%d queued=%d",
				d.Metrics().InFlight.Load(), d.Metrics().Queued.Load())
		}
		time.Sleep(2 * time.Millisecond)
	}
	code, hdr, body := post(t, ts.Client(), ts.URL, hang(3))
	if code != http.StatusTooManyRequests {
		t.Fatalf("status = %d body %s, want 429", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("429 carried no Retry-After hint")
	}
	if d.Metrics().Shed.Load() != 1 {
		t.Errorf("Shed = %d, want 1", d.Metrics().Shed.Load())
	}
	wg.Wait()
}

// TestServerDeadlineAbortsEngine gives a genuinely large simulation a
// tiny budget and asserts the request comes back 504 promptly — the
// deadline must reach the event loop, not just the HTTP layer.
func TestServerDeadlineAbortsEngine(t *testing.T) {
	d := newTestDaemon(t, Config{MaxConcurrent: 2, QueueDepth: 4})
	ts := httptest.NewServer(d.Handler())
	defer ts.Close()
	big := `{"protocol":"TokenCMP-dst1","workload":"locking","acquires":60000,"timeout_ms":50}`
	start := time.Now()
	code, _, body := post(t, ts.Client(), ts.URL, big)
	elapsed := time.Since(start)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d body %s, want 504", code, body)
	}
	if elapsed > 5*time.Second {
		t.Errorf("504 took %v; the engine did not abort on deadline", elapsed)
	}
	if d.Metrics().Timeouts.Load() != 1 {
		t.Errorf("Timeouts = %d, want 1", d.Metrics().Timeouts.Load())
	}
}

// TestServerPanicIsolation asserts a poisoned request yields one 500
// and leaves the daemon fully serviceable.
func TestServerPanicIsolation(t *testing.T) {
	d := newTestDaemon(t, Config{MaxConcurrent: 2, QueueDepth: 4, Chaos: true})
	ts := httptest.NewServer(d.Handler())
	defer ts.Close()
	code, _, body := post(t, ts.Client(), ts.URL, `{"workload":"__panic"}`)
	if code != http.StatusInternalServerError || !strings.Contains(body, "panicked") {
		t.Fatalf("panic request: status %d body %s", code, body)
	}
	if d.Metrics().Panics.Load() != 1 {
		t.Errorf("Panics = %d, want 1", d.Metrics().Panics.Load())
	}
	code, _, body = post(t, ts.Client(), ts.URL, tinyBody(1))
	if code != http.StatusOK {
		t.Fatalf("daemon unhealthy after panic: status %d body %s", code, body)
	}
}

// TestServerRejectsBadInput covers the 400 paths: malformed JSON,
// unknown fields, unknown protocol, out-of-range values, and chaos
// workloads without the chaos gate.
func TestServerRejectsBadInput(t *testing.T) {
	d := newTestDaemon(t, Config{})
	ts := httptest.NewServer(d.Handler())
	defer ts.Close()
	for _, body := range []string{
		`{`,
		`{"bogus_field":1}`,
		`{"protocol":"NoSuchCMP"}`,
		`{"workload":"knitting"}`,
		`{"cmps":999}`,
		`{"seeds":-2}`,
		`{"workload":"__panic"}`, // chaos gate off
	} {
		code, _, resp := post(t, ts.Client(), ts.URL, body)
		if code != http.StatusBadRequest {
			t.Errorf("body %s: status %d (%s), want 400", body, code, resp)
		}
	}
	if got := d.Metrics().BadInput.Load(); got != 7 {
		t.Errorf("BadInput = %d, want 7", got)
	}
}

// TestServerResponseShape decodes a body back into Response and spot
// checks the simulation actually happened.
func TestServerResponseShape(t *testing.T) {
	d := newTestDaemon(t, Config{})
	ts := httptest.NewServer(d.Handler())
	defer ts.Close()
	code, _, body := post(t, ts.Client(), ts.URL, tinyBody(7))
	if code != http.StatusOK {
		t.Fatalf("status %d body %s", code, body)
	}
	var resp Response
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Protocol != "TokenCMP-dst1" || resp.Runs != 1 {
		t.Errorf("resp = %+v", resp)
	}
	if resp.Events == 0 || resp.Acquires != 2*2*4 {
		t.Errorf("no simulation evidence in %+v", resp)
	}
	if resp.Violations != 0 {
		t.Errorf("mutual exclusion violated: %+v", resp)
	}
}

// TestServeDrain runs the real Serve loop, parks a hanging request in
// it, cancels the serve context, and asserts: readiness flips to 503,
// the hanging run is force-cancelled after the drain budget, and
// Serve returns.
func TestServeDrain(t *testing.T) {
	d := newTestDaemon(t, Config{
		MaxConcurrent: 2, QueueDepth: 4, Chaos: true,
		DefaultTimeout: 30 * time.Second,
		DrainTimeout:   150 * time.Millisecond,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() { serveDone <- d.Serve(ctx, ln) }()
	url := "http://" + ln.Addr().String()

	get := func(path string) int {
		resp, err := http.Get(url + path)
		if err != nil {
			return -1
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	waitFor := func(cond func() bool, what string) {
		t.Helper()
		deadline := time.Now().Add(3 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitFor(func() bool { return get("/readyz") == http.StatusOK }, "readiness")

	// Park a request that will only end when force-cancelled.
	hangDone := make(chan struct {
		code int
		body string
	}, 1)
	go func() {
		resp, err := http.Post(url+"/run", "application/json",
			bytes.NewReader([]byte(`{"workload":"__hang"}`)))
		if err != nil {
			hangDone <- struct {
				code int
				body string
			}{-1, err.Error()}
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		hangDone <- struct {
			code int
			body string
		}{resp.StatusCode, string(b)}
	}()
	waitFor(func() bool { return d.Metrics().InFlight.Load() == 1 }, "the hanging run")

	cancel()
	waitFor(func() bool { return get("/readyz") != http.StatusOK }, "readiness to drop")

	select {
	case err := <-serveDone:
		if err != nil {
			t.Errorf("Serve returned %v, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve never returned after cancellation")
	}
	select {
	case r := <-hangDone:
		// The force-cancel turns the hang into a 504/cancelled response
		// (or a torn connection if the server closed first) — either
		// way the handler goroutine ended.
		t.Logf("hanging request resolved: code=%d body=%s", r.code, r.body)
	case <-time.After(2 * time.Second):
		t.Fatal("hanging request still alive after drain + force-cancel")
	}
}

// TestServerRestartServesFromDisk is the in-process crash-restart
// test: populate a daemon's durable cache, boot a second daemon on
// the same directory (with torn and stale-tmp debris injected, as a
// kill -9 would leave), and assert every fully-written entry is
// served byte-identical from disk with zero re-runs while the debris
// is discarded and counted.
func TestServerRestartServesFromDisk(t *testing.T) {
	dir := t.TempDir()
	d1 := newTestDaemon(t, Config{CacheDir: dir, CacheTTL: time.Hour})
	ts1 := httptest.NewServer(d1.Handler())
	const n = 3
	bodies := make([]string, n)
	for i := 0; i < n; i++ {
		code, _, body := post(t, ts1.Client(), ts1.URL, tinyBody(int64(i+1)))
		if code != http.StatusOK {
			t.Fatalf("seed %d: status %d body %s", i+1, code, body)
		}
		bodies[i] = body
	}
	waitFor(t, func() bool { return d1.Metrics().PersistWritten.Load() >= n }, "write-behind flushes")
	ts1.Close()
	d1.Close()

	// Debris a kill -9 mid-write can leave: a truncated entry and a
	// stale .tmp. The restore pass must discard both, count them, and
	// keep booting.
	frame := encodeFrame("torn-key", []byte("half"), time.Time{})
	writeRaw(t, d1.store.entryPath("torn-key"), frame[:len(frame)-3])
	writeRaw(t, d1.store.entryPath("stale")+tmpExt, []byte("unfinished"))

	d2 := newTestDaemon(t, Config{CacheDir: dir, CacheTTL: time.Hour})
	ts2 := httptest.NewServer(d2.Handler())
	defer ts2.Close()
	if got := d2.Metrics().Restored.Load(); got != n {
		t.Errorf("Restored = %d, want %d", got, n)
	}
	if got := d2.Metrics().RestoreTorn.Load(); got != 2 {
		t.Errorf("RestoreTorn = %d, want 2 (torn entry + stale tmp)", got)
	}
	for i := 0; i < n; i++ {
		code, hdr, body := post(t, ts2.Client(), ts2.URL, tinyBody(int64(i+1)))
		if code != http.StatusOK || body != bodies[i] {
			t.Fatalf("seed %d after restart: status %d, byte-identical %t", i+1, code, body == bodies[i])
		}
		if hdr.Get("X-Simd-Cache") != "hit" {
			t.Errorf("seed %d after restart: X-Simd-Cache = %q, want hit", i+1, hdr.Get("X-Simd-Cache"))
		}
	}
	if runs := d2.Metrics().Runs.Load(); runs != 0 {
		t.Errorf("restart re-ran %d simulations for warm keys, want 0", runs)
	}
}

// TestServerRestartHonorsTTL asserts a restored entry keeps its
// original absolute expiry: a body written with a short TTL is gone
// after a restart that happens past the deadline, and the restore
// pass counts it as expired.
func TestServerRestartHonorsTTL(t *testing.T) {
	dir := t.TempDir()
	d1 := newTestDaemon(t, Config{CacheDir: dir, CacheTTL: 50 * time.Millisecond})
	ts1 := httptest.NewServer(d1.Handler())
	code, _, _ := post(t, ts1.Client(), ts1.URL, tinyBody(1))
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	waitFor(t, func() bool { return d1.Metrics().PersistWritten.Load() >= 1 }, "write-behind flush")
	ts1.Close()
	d1.Close()
	time.Sleep(80 * time.Millisecond) // entry is now past its absolute expiry

	d2 := newTestDaemon(t, Config{CacheDir: dir, CacheTTL: 50 * time.Millisecond})
	if got := d2.Metrics().RestoreExpired.Load(); got != 1 {
		t.Errorf("RestoreExpired = %d, want 1", got)
	}
	if got := d2.Metrics().Restored.Load(); got != 0 {
		t.Errorf("Restored = %d, want 0 (the entry died with its TTL)", got)
	}
}

// TestServerHeavyFloodDoesNotStarveLight is the starvation test: a
// flood of heavy-class hangs saturates the heavy pool, the reserve,
// and the heavy queue — yet cheap requests keep completing out of the
// light pool with bounded admission latency, and the heavy flood
// sheds 429 with a Retry-After scaled by its own queue.
func TestServerHeavyFloodDoesNotStarveLight(t *testing.T) {
	d := newTestDaemon(t, Config{
		LightSlots: 1, HeavySlots: 1, ReserveSlots: 1,
		LightQueue: 4, HeavyQueue: 2,
		DefaultTimeout: 5 * time.Second, Chaos: true,
	})
	ts := httptest.NewServer(d.Handler())
	defer ts.Close()
	// A hang classed heavy: 60000 acquires x 16 procs >= the 100k threshold.
	heavyHang := func(seed int64) string {
		return fmt.Sprintf(`{"workload":"__hang","acquires":60000,"seed":%d,"timeout_ms":2500}`, seed)
	}
	const flood = 8
	codes := make([]int, flood)
	retryAfters := make([]string, flood)
	var wg sync.WaitGroup
	for i := 0; i < flood; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var hdr http.Header
			codes[i], hdr, _ = post(t, ts.Client(), ts.URL, heavyHang(int64(i+1)))
			retryAfters[i] = hdr.Get("Retry-After")
		}(i)
	}
	// Saturation: 2 heavy holding slots (dedicated + reserve), 2 queued.
	waitFor(t, func() bool {
		return d.Metrics().InFlight.Load() >= 2 && d.Metrics().ClassShed[ClassHeavy].Load() >= flood-4
	}, "heavy saturation and shedding")

	// The cheap class still completes, promptly, while the flood holds.
	for seed := int64(1); seed <= 3; seed++ {
		start := time.Now()
		code, hdr, body := post(t, ts.Client(), ts.URL, tinyBody(seed))
		if code != http.StatusOK {
			t.Fatalf("light request under heavy flood: status %d body %s", code, body)
		}
		if hdr.Get("X-Simd-Class") != "light" {
			t.Errorf("X-Simd-Class = %q, want light", hdr.Get("X-Simd-Class"))
		}
		if elapsed := time.Since(start); elapsed > 2*time.Second {
			t.Errorf("light admission latency %v under heavy flood; the light pool is starved", elapsed)
		}
	}
	wg.Wait()

	shed429 := 0
	for i, code := range codes {
		if code != http.StatusTooManyRequests {
			continue
		}
		shed429++
		ra, err := strconv.Atoi(retryAfters[i])
		if err != nil || ra < 1 {
			t.Errorf("shed heavy request %d: Retry-After = %q, want a positive integer", i, retryAfters[i])
		}
		// Scaled hint: base 5s budget x (1 + queued/slots) > plain base.
		if ra < 5 {
			t.Errorf("shed heavy request %d: Retry-After = %d, want >= the 5s base budget", i, ra)
		}
	}
	if shed429 != flood-4 {
		t.Errorf("heavy flood: %d shed with 429, want %d (2 slots + 2 queued survive)", shed429, flood-4)
	}
	if got := d.Metrics().ClassShed[ClassLight].Load(); got != 0 {
		t.Errorf("light class shed %d requests during a heavy flood", got)
	}
	if got := d.Metrics().ClassAdmitted[ClassLight].Load(); got < 3 {
		t.Errorf("ClassAdmitted[light] = %d, want >= 3", got)
	}
}

// TestServerBreaker422 drives the poison-input breaker end to end:
// the same chaos-panic key 500s until the threshold, then answers 422
// with a Retry-After immediately (no engine run), while a different
// key still reaches the engine.
func TestServerBreaker422(t *testing.T) {
	d := newTestDaemon(t, Config{
		MaxConcurrent: 2, QueueDepth: 4, Chaos: true,
		BreakerPanics: 2, BreakerCooldown: time.Hour,
	})
	ts := httptest.NewServer(d.Handler())
	defer ts.Close()
	poison := `{"workload":"__panic","seed":42}`
	for i := 0; i < 2; i++ {
		code, _, body := post(t, ts.Client(), ts.URL, poison)
		if code != http.StatusInternalServerError {
			t.Fatalf("panic %d: status %d body %s", i+1, code, body)
		}
	}
	runsBefore := d.Metrics().Runs.Load()
	code, hdr, body := post(t, ts.Client(), ts.URL, poison)
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("post-threshold status = %d body %s, want 422", code, body)
	}
	if ra, err := strconv.Atoi(hdr.Get("Retry-After")); err != nil || ra < 1 {
		t.Errorf("422 Retry-After = %q, want a positive integer", hdr.Get("Retry-After"))
	}
	if got := d.Metrics().Runs.Load(); got != runsBefore {
		t.Errorf("the breaker let the engine run again: Runs %d -> %d", runsBefore, got)
	}
	if d.Metrics().BreakerOpen.Load() != 1 || d.Metrics().BreakerRejected.Load() != 1 {
		t.Errorf("breaker counters open=%d rejected=%d, want 1/1",
			d.Metrics().BreakerOpen.Load(), d.Metrics().BreakerRejected.Load())
	}
	// A different seed is a different key: still served (and still panics).
	code, _, _ = post(t, ts.Client(), ts.URL, `{"workload":"__panic","seed":43}`)
	if code != http.StatusInternalServerError {
		t.Errorf("unrelated key: status %d, want 500 (breaker must be per-key)", code)
	}
	// An honest request is untouched.
	code, _, _ = post(t, ts.Client(), ts.URL, tinyBody(1))
	if code != http.StatusOK {
		t.Errorf("honest request during open breaker: status %d", code)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
