package simd

import (
	"fmt"
	"io"
	"sync/atomic"
)

// Metrics is the daemon's concurrency-safe counter set. The
// simulator's own internal/counters package is deliberately
// single-threaded (it lives inside the deterministic event loop);
// the serving layer needs atomics because every HTTP handler
// increments them concurrently.
type Metrics struct {
	Requests  atomic.Uint64 // /run requests accepted for decoding
	BadInput  atomic.Uint64 // rejected with 400
	Hits      atomic.Uint64 // served from the result cache
	Collapsed atomic.Uint64 // joined an already-running identical flight
	Runs      atomic.Uint64 // underlying simulation flights started
	Completed atomic.Uint64 // responses served with 200
	Shed      atomic.Uint64 // rejected with 429 at queue capacity (all classes)
	Timeouts  atomic.Uint64 // deadline expired (504)
	Panics    atomic.Uint64 // worker panics isolated to a 500
	Errors    atomic.Uint64 // other run failures (500)
	Evicted   atomic.Uint64 // cache entries dropped by LRU capacity
	Expired   atomic.Uint64 // cache entries dropped by TTL

	// Per-class admission outcomes, indexed by Class.
	ClassAdmitted [numClasses]atomic.Uint64 // took a slot (own pool or reserve)
	ClassShed     [numClasses]atomic.Uint64 // rejected with 429, by class

	// Durable-store counters. The Restore* trio is written once at
	// boot and is the crash-restart smoke test's evidence that the
	// recovery pass both happened and discarded what it had to.
	Restored       atomic.Uint64 // entries recovered into the LRU at boot
	RestoreTorn    atomic.Uint64 // torn/corrupt/stale-tmp files discarded at boot
	RestoreExpired atomic.Uint64 // entries past their TTL discarded at boot
	PersistWritten atomic.Uint64 // entries durably written (tmp+rename complete)
	PersistDeleted atomic.Uint64 // backing files removed (eviction, expiry, trim)
	PersistDropped atomic.Uint64 // write-behind ops dropped (queue full or drain cutoff)
	PersistErrors  atomic.Uint64 // write-behind ops that failed with an I/O error

	// Poison-input circuit breaker.
	BreakerOpen     atomic.Uint64 // closed→open transitions (a key got negatively cached)
	BreakerRejected atomic.Uint64 // requests answered 422 while their key was open

	InFlight atomic.Int64 // requests holding an admission slot
	Queued   atomic.Int64 // requests waiting for an admission slot (all classes)
}

// WritePrometheus renders the counters in Prometheus text
// exposition format, in a fixed order so the output is stable
// for tests and scrapers alike.
func (m *Metrics) WritePrometheus(w io.Writer) {
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP simd_%s %s\n# TYPE simd_%s counter\nsimd_%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP simd_%s %s\n# TYPE simd_%s gauge\nsimd_%s %d\n", name, help, name, name, v)
	}
	classCounter := func(name, help string, vs *[numClasses]atomic.Uint64) {
		fmt.Fprintf(w, "# HELP simd_%s %s\n# TYPE simd_%s counter\n", name, help, name)
		for c := ClassLight; c < numClasses; c++ {
			fmt.Fprintf(w, "simd_%s{class=%q} %d\n", name, c.String(), vs[c].Load())
		}
	}
	counter("requests_total", "run requests received", m.Requests.Load())
	counter("bad_input_total", "requests rejected with 400", m.BadInput.Load())
	counter("cache_hits_total", "responses served from the result cache", m.Hits.Load())
	counter("collapsed_total", "requests that joined an in-flight identical run", m.Collapsed.Load())
	counter("runs_total", "underlying simulation runs started", m.Runs.Load())
	counter("completed_total", "responses served with 200", m.Completed.Load())
	counter("shed_total", "requests shed with 429 at queue capacity", m.Shed.Load())
	counter("timeouts_total", "requests that hit their deadline (504)", m.Timeouts.Load())
	counter("panics_total", "worker panics isolated to a 500", m.Panics.Load())
	counter("errors_total", "run failures other than timeouts and panics", m.Errors.Load())
	counter("cache_evicted_total", "cache entries dropped by LRU capacity", m.Evicted.Load())
	counter("cache_expired_total", "cache entries dropped by TTL", m.Expired.Load())
	classCounter("admitted_total", "requests that took an admission slot, by class", &m.ClassAdmitted)
	classCounter("class_shed_total", "requests shed with 429, by class", &m.ClassShed)
	counter("persist_restored_total", "cache entries recovered from disk at boot", m.Restored.Load())
	counter("persist_torn_discarded_total", "torn or corrupt on-disk entries discarded at boot", m.RestoreTorn.Load())
	counter("persist_expired_discarded_total", "on-disk entries past their TTL discarded at boot", m.RestoreExpired.Load())
	counter("persist_written_total", "cache entries durably written to disk", m.PersistWritten.Load())
	counter("persist_deleted_total", "on-disk cache entries removed", m.PersistDeleted.Load())
	counter("persist_dropped_total", "write-behind operations dropped", m.PersistDropped.Load())
	counter("persist_errors_total", "write-behind operations failed with I/O errors", m.PersistErrors.Load())
	counter("breaker_open_total", "poison-input breaker open transitions", m.BreakerOpen.Load())
	counter("breaker_rejected_total", "requests answered 422 by an open breaker", m.BreakerRejected.Load())
	gauge("in_flight", "requests holding an admission slot", m.InFlight.Load())
	gauge("queued", "requests waiting for an admission slot", m.Queued.Load())
}
