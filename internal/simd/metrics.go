package simd

import (
	"fmt"
	"io"
	"sync/atomic"
)

// Metrics is the daemon's concurrency-safe counter set. The
// simulator's own internal/counters package is deliberately
// single-threaded (it lives inside the deterministic event loop);
// the serving layer needs atomics because every HTTP handler
// increments them concurrently.
type Metrics struct {
	Requests  atomic.Uint64 // /run requests accepted for decoding
	BadInput  atomic.Uint64 // rejected with 400
	Hits      atomic.Uint64 // served from the result cache
	Collapsed atomic.Uint64 // joined an already-running identical flight
	Runs      atomic.Uint64 // underlying simulation flights started
	Completed atomic.Uint64 // responses served with 200
	Shed      atomic.Uint64 // rejected with 429 at queue capacity
	Timeouts  atomic.Uint64 // deadline expired (504)
	Panics    atomic.Uint64 // worker panics isolated to a 500
	Errors    atomic.Uint64 // other run failures (500)
	Evicted   atomic.Uint64 // cache entries dropped by LRU capacity
	Expired   atomic.Uint64 // cache entries dropped by TTL

	InFlight atomic.Int64 // requests holding an admission slot
	Queued   atomic.Int64 // requests waiting for an admission slot
}

// WritePrometheus renders the counters in Prometheus text
// exposition format, in a fixed order so the output is stable
// for tests and scrapers alike.
func (m *Metrics) WritePrometheus(w io.Writer) {
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP simd_%s %s\n# TYPE simd_%s counter\nsimd_%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP simd_%s %s\n# TYPE simd_%s gauge\nsimd_%s %d\n", name, help, name, name, v)
	}
	counter("requests_total", "run requests received", m.Requests.Load())
	counter("bad_input_total", "requests rejected with 400", m.BadInput.Load())
	counter("cache_hits_total", "responses served from the result cache", m.Hits.Load())
	counter("collapsed_total", "requests that joined an in-flight identical run", m.Collapsed.Load())
	counter("runs_total", "underlying simulation runs started", m.Runs.Load())
	counter("completed_total", "responses served with 200", m.Completed.Load())
	counter("shed_total", "requests shed with 429 at queue capacity", m.Shed.Load())
	counter("timeouts_total", "requests that hit their deadline (504)", m.Timeouts.Load())
	counter("panics_total", "worker panics isolated to a 500", m.Panics.Load())
	counter("errors_total", "run failures other than timeouts and panics", m.Errors.Load())
	counter("cache_evicted_total", "cache entries dropped by LRU capacity", m.Evicted.Load())
	counter("cache_expired_total", "cache entries dropped by TTL", m.Expired.Load())
	gauge("in_flight", "requests holding an admission slot", m.InFlight.Load())
	gauge("queued", "requests waiting for an admission slot", m.Queued.Load())
}
