package simd

import (
	"context"
	"sync/atomic"
	"time"
)

// Class buckets a request by its declared cost so one expensive
// family cannot starve the cheap one. Classification is a pure
// function of the request (see Request.Class), so it is stable across
// retries and replicas.
type Class int

const (
	ClassLight Class = iota // small interactive runs
	ClassHeavy              // model-check-scale sweeps and big budgets
	numClasses
)

// String names the class for metrics and headers.
func (c Class) String() string {
	if c == ClassHeavy {
		return "heavy"
	}
	return "light"
}

// admitToken records which pool a slot came from so release returns
// it to the right place.
type admitToken struct {
	pool chan struct{}
}

// admission is the two-tier slot allocator: each class owns dedicated
// slots nobody else can take, and a shared reserve either class may
// borrow when its own pool is full. A flood of heavy requests can at
// worst consume the heavy slots plus the whole reserve; the light
// class always keeps its dedicated slots, which is the starvation
// bound the tests pin. Queues are per-class and bounded, so shedding
// in one class never delays the other.
type admission struct {
	slots   [numClasses]chan struct{}
	reserve chan struct{}
	queue   [numClasses]atomic.Int64
	depth   [numClasses]int
	metrics *Metrics
}

// newAdmission builds pools with the given dedicated widths (entries
// of slots may be 0 — that class then lives off the reserve alone)
// and per-class queue depths. metrics may be nil.
func newAdmission(light, heavy, reserve, lightQueue, heavyQueue int, metrics *Metrics) *admission {
	if metrics == nil {
		metrics = &Metrics{}
	}
	a := &admission{metrics: metrics}
	a.slots[ClassLight] = make(chan struct{}, light)
	a.slots[ClassHeavy] = make(chan struct{}, heavy)
	a.reserve = make(chan struct{}, reserve)
	a.depth[ClassLight] = lightQueue
	a.depth[ClassHeavy] = heavyQueue
	return a
}

// tryAcquire takes a slot without blocking: the class's own pool
// first, then the shared reserve.
func (a *admission) tryAcquire(c Class) (admitToken, bool) {
	select {
	case a.slots[c] <- struct{}{}:
		return admitToken{pool: a.slots[c]}, true
	default:
	}
	select {
	case a.reserve <- struct{}{}:
		return admitToken{pool: a.reserve}, true
	default:
	}
	return admitToken{}, false
}

// acquire takes a slot for class c, queueing (bounded) when both its
// pool and the reserve are full. It returns shed=true when the
// class's queue is already at depth — the caller turns that into a
// 429 whose Retry-After scales with the queue it was shed from.
func (a *admission) acquire(ctx context.Context, c Class) (tok admitToken, shed bool, err error) {
	if tok, ok := a.tryAcquire(c); ok {
		a.metrics.ClassAdmitted[c].Add(1)
		return tok, false, nil
	}
	if a.queue[c].Add(1) > int64(a.depth[c]) {
		a.queue[c].Add(-1)
		a.metrics.Shed.Add(1)
		a.metrics.ClassShed[c].Add(1)
		return admitToken{}, true, nil
	}
	a.metrics.Queued.Add(1)
	defer func() {
		a.queue[c].Add(-1)
		a.metrics.Queued.Add(-1)
	}()
	select {
	case a.slots[c] <- struct{}{}:
		a.metrics.ClassAdmitted[c].Add(1)
		return admitToken{pool: a.slots[c]}, false, nil
	case a.reserve <- struct{}{}:
		a.metrics.ClassAdmitted[c].Add(1)
		return admitToken{pool: a.reserve}, false, nil
	case <-ctx.Done():
		return admitToken{}, false, ctx.Err()
	}
}

// release returns the slot to the pool it was borrowed from.
func (a *admission) release(tok admitToken) {
	<-tok.pool
}

// queued reports the number of class-c requests waiting for a slot.
func (a *admission) queued(c Class) int64 { return a.queue[c].Load() }

// retryAfterSeconds scales a shed client's backoff hint with the
// pressure it was shed under: one default request budget as the base,
// multiplied by how many budgets' worth of work is already queued
// ahead of it (queued waiters over serving slots). Bounds are pinned
// by TestRetryAfterBounds: never below 1s, never above
// retryAfterCapSeconds, and nondecreasing in queue depth.
func retryAfterSeconds(budget time.Duration, queued int64, slots int) int {
	base := float64(budget) / float64(time.Second)
	if base < 1 {
		base = 1
	}
	if slots < 1 {
		slots = 1
	}
	if queued < 0 {
		queued = 0
	}
	s := int(base * (1 + float64(queued)/float64(slots)))
	if s < 1 {
		s = 1
	}
	if s > retryAfterCapSeconds {
		s = retryAfterCapSeconds
	}
	return s
}

// retryAfterCapSeconds caps the backoff hint: past five minutes the
// client learns nothing more from a bigger number.
const retryAfterCapSeconds = 300
