package simd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// Config tunes the daemon's robustness envelope. The zero value is
// usable; Normalize fills production defaults.
type Config struct {
	MaxConcurrent  int           // total admission slots; split across classes unless set explicitly
	QueueDepth     int           // total waiters beyond the slots; split across classes unless set explicitly
	CacheEntries   int           // LRU capacity of the result cache
	CacheTTL       time.Duration // result body lifetime (<= 0: never expires)
	CacheDir       string        // durable cache directory ("" = memory-only, exactly the PR 9 behavior)
	DefaultTimeout time.Duration // per-request deadline when the request names none
	MaxTimeout     time.Duration // ceiling clamped onto requested deadlines
	DrainTimeout   time.Duration // graceful-shutdown budget before force-cancel
	Chaos          bool          // accept the __panic/__hang test workloads

	// Per-class admission. When the three slot fields are all zero,
	// Normalize derives them from MaxConcurrent (see splitSlots);
	// likewise the two queue fields from QueueDepth. Setting any
	// field in a group takes that group as-is.
	LightSlots   int // dedicated slots only light requests may hold
	HeavySlots   int // dedicated slots only heavy requests may hold
	ReserveSlots int // shared overflow either class may borrow
	LightQueue   int // light-class waiters beyond the slots before shedding
	HeavyQueue   int // heavy-class waiters beyond the slots before shedding

	// HeavyOpsThreshold classifies requests: at or above this many
	// estimated operations (Request.EstimatedOps) a request competes
	// in the heavy pool. <= 0 selects the default; to disable the
	// split, give one class all the slots instead.
	HeavyOpsThreshold int64

	// Poison-input circuit breaker: after BreakerPanics consecutive
	// engine panics for one cache key, the key is answered 422 for
	// BreakerCooldown instead of re-running. BreakerPanics < 0
	// disables the breaker; 0 selects the default.
	BreakerPanics   int
	BreakerCooldown time.Duration
}

// DefaultHeavyOpsThreshold splits the classes at 100k estimated
// operations: the default request (1 seed x 64 acquires x 16 procs ≈
// 1k ops) is deeply light, while a paper-scale sweep (8 seeds x a few
// thousand ops per proc) lands heavy.
const DefaultHeavyOpsThreshold = 100_000

// Normalize fills zero fields with production defaults.
func (c *Config) Normalize() {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 256
	}
	if c.CacheTTL == 0 {
		c.CacheTTL = 10 * time.Minute
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.LightSlots == 0 && c.HeavySlots == 0 && c.ReserveSlots == 0 {
		c.LightSlots, c.HeavySlots, c.ReserveSlots = splitSlots(c.MaxConcurrent)
	}
	if c.LightQueue == 0 && c.HeavyQueue == 0 {
		q := c.QueueDepth / 2
		if q < 1 {
			q = 1
		}
		c.LightQueue, c.HeavyQueue = q, q
	}
	if c.HeavyOpsThreshold == 0 {
		c.HeavyOpsThreshold = DefaultHeavyOpsThreshold
	}
	if c.BreakerPanics == 0 {
		c.BreakerPanics = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = time.Minute
	}
}

// splitSlots derives the class pools from an aggregate slot count:
// a quarter (at least one) becomes the shared reserve, the rest is
// split between the classes with light taking the remainder. Tiny
// totals (< 3) go entirely to the reserve — with no room to dedicate,
// the pools degenerate to PR 9's single shared semaphore.
func splitSlots(total int) (light, heavy, reserve int) {
	if total < 3 {
		return 0, 0, total
	}
	reserve = total / 4
	if reserve < 1 {
		reserve = 1
	}
	heavy = (total - reserve) / 2
	light = total - reserve - heavy
	return light, heavy, reserve
}

// Daemon serves simulation experiments over HTTP/JSON. See the
// package comment for the robustness contract.
type Daemon struct {
	cfg        Config
	metrics    *Metrics
	cache      *Cache
	store      *Store // nil in memory-only mode
	admit      *admission
	breaker    *breaker
	baseCtx    context.Context
	baseCancel context.CancelFunc
	draining   atomic.Bool // readiness flips off at the start of a drain
	mux        *http.ServeMux
}

// New builds a daemon from cfg (normalized in place). With a CacheDir
// it opens the durable store and runs the bounded restore pass —
// individual torn, corrupt, or expired files are discarded and
// counted, never fatal; only an unusable directory errors.
func New(cfg Config) (*Daemon, error) {
	cfg.Normalize()
	baseCtx, baseCancel := context.WithCancel(context.Background())
	d := &Daemon{
		cfg:        cfg,
		metrics:    &Metrics{},
		baseCtx:    baseCtx,
		baseCancel: baseCancel,
		mux:        http.NewServeMux(),
	}
	d.admit = newAdmission(cfg.LightSlots, cfg.HeavySlots, cfg.ReserveSlots,
		cfg.LightQueue, cfg.HeavyQueue, d.metrics)
	d.breaker = newBreaker(cfg.BreakerPanics, cfg.BreakerCooldown, d.metrics)
	d.cache = NewCache(cfg.CacheEntries, cfg.CacheTTL, baseCtx, d.metrics)
	if cfg.CacheDir != "" {
		store, err := OpenStore(cfg.CacheDir, d.metrics)
		if err != nil {
			baseCancel()
			return nil, err
		}
		restored, err := store.Restore(cfg.CacheEntries, time.Now())
		if err != nil {
			store.Drain(0)
			baseCancel()
			return nil, err
		}
		d.cache.restore(restored)
		d.cache.store = store
		d.store = store
	}
	d.mux.HandleFunc("/run", d.handleRun)
	d.mux.HandleFunc("/healthz", d.handleHealthz)
	d.mux.HandleFunc("/readyz", d.handleReadyz)
	d.mux.HandleFunc("/metrics", d.handleMetrics)
	return d, nil
}

// Metrics exposes the daemon's counters (for tests and embedding).
func (d *Daemon) Metrics() *Metrics { return d.metrics }

// Handler returns the daemon's HTTP handler (for httptest servers).
func (d *Daemon) Handler() http.Handler { return d.mux }

// Close force-cancels outstanding work and drains the durable store,
// for daemons driven through Handler rather than Serve (tests).
// Serve performs the same teardown itself.
func (d *Daemon) Close() {
	d.baseCancel()
	if d.store != nil {
		d.store.Drain(d.cfg.DrainTimeout)
	}
}

// jsonError writes a fixed-shape JSON error body.
func jsonError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	body, _ := json.Marshal(map[string]string{"error": msg})
	w.Write(append(body, '\n'))
}

func (d *Daemon) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		jsonError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	d.metrics.Requests.Add(1)
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		d.metrics.BadInput.Add(1)
		jsonError(w, http.StatusBadRequest, "decode request: "+err.Error())
		return
	}
	req.Normalize()
	if err := req.Validate(d.cfg.Chaos); err != nil {
		d.metrics.BadInput.Add(1)
		jsonError(w, http.StatusBadRequest, err.Error())
		return
	}
	key := req.Key()

	// Fast path: a cached body needs no admission slot, no deadline,
	// and no breaker consultation (a cached body proves the key runs).
	if body, ok := d.cache.Lookup(key); ok {
		d.metrics.Completed.Add(1)
		writeBody(w, body, "hit")
		return
	}

	// Poison-input breaker: a key that kept panicking the engine is
	// negatively cached — answer 422 now instead of burning a slot on
	// a run that deterministically dies.
	if ok, cooldown := d.breaker.allow(key); !ok {
		w.Header().Set("Retry-After", strconv.Itoa(int((cooldown+time.Second-1)/time.Second)))
		jsonError(w, http.StatusUnprocessableEntity,
			"input poisoned: this exact request repeatedly crashed the engine; retry after the cooldown")
		return
	}

	// Admission: requests compete inside their cost class (plus the
	// shared reserve), so a flood of heavy sweeps sheds 429 while
	// cheap interactive runs keep being served from the light pool.
	// The Retry-After hint scales with the shedding class's queue.
	class := req.Class(d.cfg.HeavyOpsThreshold)
	w.Header().Set("X-Simd-Class", class.String())
	tok, shed, err := d.admit.acquire(r.Context(), class)
	if shed {
		slots := d.classSlots(class)
		w.Header().Set("Retry-After",
			strconv.Itoa(retryAfterSeconds(d.cfg.DefaultTimeout, d.admit.queued(class), slots)))
		jsonError(w, http.StatusTooManyRequests, class.String()+" admission queue full")
		return
	}
	if err != nil {
		d.metrics.Timeouts.Add(1)
		jsonError(w, http.StatusGatewayTimeout, "timed out waiting for an admission slot")
		return
	}
	d.metrics.InFlight.Add(1)
	defer func() {
		d.metrics.InFlight.Add(-1)
		d.admit.release(tok)
	}()

	// Deadline: the request's own budget, clamped to the server
	// ceiling; r.Context() additionally ends on client disconnect and
	// on forced shutdown (it descends from the daemon's base context).
	budget := d.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		budget = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if budget > d.cfg.MaxTimeout {
		budget = d.cfg.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(r.Context(), budget)
	defer cancel()

	body, err := d.cache.Do(ctx, key, func(fctx context.Context) ([]byte, error) {
		return runRequest(fctx, req)
	})
	switch {
	case err == nil:
		d.breaker.onSuccess(key)
		d.metrics.Completed.Add(1)
		writeBody(w, body, "miss")
	case errors.Is(err, ErrPanic):
		// Panics.Add already happened in the cache lead.
		d.breaker.onPanic(key)
		jsonError(w, http.StatusInternalServerError, "internal error: run panicked")
	case errors.Is(err, context.DeadlineExceeded):
		d.metrics.Timeouts.Add(1)
		jsonError(w, http.StatusGatewayTimeout, fmt.Sprintf("deadline %v exceeded", budget))
	case errors.Is(err, context.Canceled):
		d.metrics.Timeouts.Add(1)
		jsonError(w, http.StatusGatewayTimeout, "request cancelled")
	default:
		d.metrics.Errors.Add(1)
		jsonError(w, http.StatusInternalServerError, err.Error())
	}
}

// classSlots counts the slots a class can ever hold: its dedicated
// pool plus the shared reserve.
func (d *Daemon) classSlots(c Class) int {
	if c == ClassHeavy {
		return d.cfg.HeavySlots + d.cfg.ReserveSlots
	}
	return d.cfg.LightSlots + d.cfg.ReserveSlots
}

func writeBody(w http.ResponseWriter, body []byte, cacheState string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Simd-Cache", cacheState)
	w.Write(body)
}

func (d *Daemon) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func (d *Daemon) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if d.draining.Load() || d.baseCtx.Err() != nil {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ready")
}

func (d *Daemon) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	d.metrics.WritePrometheus(w)
}

// Serve runs the daemon on ln until ctx is cancelled, then drains:
// readiness flips to 503 (load balancers stop sending work), in-flight
// requests get DrainTimeout to finish, and whatever is still running
// afterwards is force-cancelled through the base context — the engines
// abort within sim.CancelCheckEvery events, so shutdown is prompt even
// mid-simulation. The durable store is drained last: pending
// write-behind flushes get the same budget to land atomically, and
// anything the budget does not cover is abandoned as a .tmp file,
// never a torn final entry. Returns nil on a clean drain.
func (d *Daemon) Serve(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{
		Handler: d.mux,
		// Request contexts descend from baseCtx, which stays live
		// through the drain window; baseCancel afterwards is the
		// force-kill that unblocks queued and running handlers.
		BaseContext: func(net.Listener) context.Context { return d.baseCtx },
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	d.draining.Store(true)

	sctx, cancel := context.WithTimeout(context.Background(), d.cfg.DrainTimeout)
	defer cancel()
	err := srv.Shutdown(sctx)
	// Force-cancel anything the drain budget did not cover: flights
	// and request contexts descend from baseCtx, so the simulators
	// stop within their event bound and the handlers return.
	d.baseCancel()
	if err != nil {
		// Give the now-cancelled handlers a moment to unwind so the
		// process exits with closed connections rather than a knife.
		fctx, fcancel := context.WithTimeout(context.Background(), time.Second)
		defer fcancel()
		err = srv.Shutdown(fctx)
	}
	if d.store != nil {
		d.store.Drain(d.cfg.DrainTimeout)
	}
	return err
}
