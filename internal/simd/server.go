package simd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// Config tunes the daemon's robustness envelope. The zero value is
// usable; Normalize fills production defaults.
type Config struct {
	MaxConcurrent  int           // admission slots for simultaneously served misses
	QueueDepth     int           // waiters beyond the slots before shedding with 429
	CacheEntries   int           // LRU capacity of the result cache
	CacheTTL       time.Duration // result body lifetime (<= 0: never expires)
	DefaultTimeout time.Duration // per-request deadline when the request names none
	MaxTimeout     time.Duration // ceiling clamped onto requested deadlines
	DrainTimeout   time.Duration // graceful-shutdown budget before force-cancel
	Chaos          bool          // accept the __panic/__hang test workloads
}

// Normalize fills zero fields with production defaults.
func (c *Config) Normalize() {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 256
	}
	if c.CacheTTL == 0 {
		c.CacheTTL = 10 * time.Minute
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
}

// Daemon serves simulation experiments over HTTP/JSON. See the
// package comment for the robustness contract.
type Daemon struct {
	cfg        Config
	metrics    *Metrics
	cache      *Cache
	sem        chan struct{} // admission slots
	baseCtx    context.Context
	baseCancel context.CancelFunc
	draining   atomic.Bool // readiness flips off at the start of a drain
	mux        *http.ServeMux
}

// New builds a daemon from cfg (normalized in place).
func New(cfg Config) *Daemon {
	cfg.Normalize()
	baseCtx, baseCancel := context.WithCancel(context.Background())
	d := &Daemon{
		cfg:        cfg,
		metrics:    &Metrics{},
		sem:        make(chan struct{}, cfg.MaxConcurrent),
		baseCtx:    baseCtx,
		baseCancel: baseCancel,
		mux:        http.NewServeMux(),
	}
	d.cache = NewCache(cfg.CacheEntries, cfg.CacheTTL, baseCtx, d.metrics)
	d.mux.HandleFunc("/run", d.handleRun)
	d.mux.HandleFunc("/healthz", d.handleHealthz)
	d.mux.HandleFunc("/readyz", d.handleReadyz)
	d.mux.HandleFunc("/metrics", d.handleMetrics)
	return d
}

// Metrics exposes the daemon's counters (for tests and embedding).
func (d *Daemon) Metrics() *Metrics { return d.metrics }

// Handler returns the daemon's HTTP handler (for httptest servers).
func (d *Daemon) Handler() http.Handler { return d.mux }

// jsonError writes a fixed-shape JSON error body.
func jsonError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	body, _ := json.Marshal(map[string]string{"error": msg})
	w.Write(append(body, '\n'))
}

func (d *Daemon) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		jsonError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	d.metrics.Requests.Add(1)
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		d.metrics.BadInput.Add(1)
		jsonError(w, http.StatusBadRequest, "decode request: "+err.Error())
		return
	}
	req.Normalize()
	if err := req.Validate(d.cfg.Chaos); err != nil {
		d.metrics.BadInput.Add(1)
		jsonError(w, http.StatusBadRequest, err.Error())
		return
	}
	key := req.Key()

	// Fast path: a cached body needs no admission slot and no deadline.
	if body, ok := d.cache.Lookup(key); ok {
		d.metrics.Completed.Add(1)
		writeBody(w, body, "hit")
		return
	}

	// Admission: take a slot or shed. The queue is bounded so overload
	// turns into fast 429s with a Retry-After hint instead of a pile of
	// goroutines all missing their deadlines.
	select {
	case d.sem <- struct{}{}:
	default:
		if d.metrics.Queued.Add(1) > int64(d.cfg.QueueDepth) {
			d.metrics.Queued.Add(-1)
			d.metrics.Shed.Add(1)
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(d.cfg.DefaultTimeout)))
			jsonError(w, http.StatusTooManyRequests, "admission queue full")
			return
		}
		select {
		case d.sem <- struct{}{}:
			d.metrics.Queued.Add(-1)
		case <-r.Context().Done():
			d.metrics.Queued.Add(-1)
			d.metrics.Timeouts.Add(1)
			jsonError(w, http.StatusGatewayTimeout, "timed out waiting for an admission slot")
			return
		}
	}
	d.metrics.InFlight.Add(1)
	defer func() {
		d.metrics.InFlight.Add(-1)
		<-d.sem
	}()

	// Deadline: the request's own budget, clamped to the server
	// ceiling; r.Context() additionally ends on client disconnect and
	// on forced shutdown (it descends from the daemon's base context).
	budget := d.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		budget = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if budget > d.cfg.MaxTimeout {
		budget = d.cfg.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(r.Context(), budget)
	defer cancel()

	body, err := d.cache.Do(ctx, key, func(fctx context.Context) ([]byte, error) {
		return runRequest(fctx, req)
	})
	switch {
	case err == nil:
		d.metrics.Completed.Add(1)
		writeBody(w, body, "miss")
	case errors.Is(err, ErrPanic):
		// Panics.Add already happened in the cache lead.
		jsonError(w, http.StatusInternalServerError, "internal error: run panicked")
	case errors.Is(err, context.DeadlineExceeded):
		d.metrics.Timeouts.Add(1)
		jsonError(w, http.StatusGatewayTimeout, fmt.Sprintf("deadline %v exceeded", budget))
	case errors.Is(err, context.Canceled):
		d.metrics.Timeouts.Add(1)
		jsonError(w, http.StatusGatewayTimeout, "request cancelled")
	default:
		d.metrics.Errors.Add(1)
		jsonError(w, http.StatusInternalServerError, err.Error())
	}
}

func writeBody(w http.ResponseWriter, body []byte, cacheState string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Simd-Cache", cacheState)
	w.Write(body)
}

// retryAfterSeconds suggests how long a shed client should back off:
// roughly one default request budget, at least a second.
func retryAfterSeconds(d time.Duration) int {
	s := int(d / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}

func (d *Daemon) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func (d *Daemon) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if d.draining.Load() || d.baseCtx.Err() != nil {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ready")
}

func (d *Daemon) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	d.metrics.WritePrometheus(w)
}

// Serve runs the daemon on ln until ctx is cancelled, then drains:
// readiness flips to 503 (load balancers stop sending work), in-flight
// requests get DrainTimeout to finish, and whatever is still running
// afterwards is force-cancelled through the base context — the engines
// abort within sim.CancelCheckEvery events, so shutdown is prompt even
// mid-simulation. Returns nil on a clean drain.
func (d *Daemon) Serve(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{
		Handler: d.mux,
		// Request contexts descend from baseCtx, which stays live
		// through the drain window; baseCancel afterwards is the
		// force-kill that unblocks queued and running handlers.
		BaseContext: func(net.Listener) context.Context { return d.baseCtx },
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	d.draining.Store(true)

	sctx, cancel := context.WithTimeout(context.Background(), d.cfg.DrainTimeout)
	defer cancel()
	err := srv.Shutdown(sctx)
	// Force-cancel anything the drain budget did not cover: flights
	// and request contexts descend from baseCtx, so the simulators
	// stop within their event bound and the handlers return.
	d.baseCancel()
	if err != nil {
		// Give the now-cancelled handlers a moment to unwind so the
		// process exits with closed connections rather than a knife.
		fctx, fcancel := context.WithTimeout(context.Background(), time.Second)
		defer fcancel()
		err = srv.Shutdown(fctx)
	}
	return err
}
