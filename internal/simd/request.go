// Package simd implements the simulation-as-a-service daemon: an
// HTTP/JSON front end over the deterministic simulator in
// internal/machine. Identical requests are collapsed onto one
// underlying run by a singleflight result cache (LRU + TTL), admission
// is bounded so overload sheds with 429 instead of queueing without
// limit, every request carries a wall-clock deadline that aborts the
// engine within sim.CancelCheckEvery events, worker panics are
// isolated to a 500 for the offending request, and shutdown drains
// in-flight runs before cancelling whatever remains.
//
// The serving layer is deliberately outside the deterministic core:
// it may read the wall clock (deadlines, TTLs) precisely because no
// simulation result ever depends on it — a request's response bytes
// are a pure function of its cache key.
package simd

import (
	"fmt"
	"sort"
	"strings"

	"tokencmp/internal/machine"
)

// Chaos workload names, accepted only when Config.Chaos is set. They
// exercise the daemon's failure paths (panic isolation, deadline
// aborts) in tests and CI smoke checks without touching the simulator.
const (
	ChaosPanic = "__panic" // the run panics immediately
	ChaosHang  = "__hang"  // the run blocks until its context is cancelled
)

// Request is one simulation experiment. The zero value of every field
// is replaced by the same default the mcsim command uses, so a request
// body of {"protocol":"TokenCMP-dst1"} is a complete experiment.
//
// TimeoutMS is serving policy, not experiment identity: it is excluded
// from the cache key, so two requests that differ only in their
// deadline share one underlying run and one cached body.
type Request struct {
	Protocol string `json:"protocol"`
	Workload string `json:"workload"` // locking, barrier, OLTP, Apache, SPECjbb
	Locks    int    `json:"locks"`    // locking: number of locks
	Acquires int    `json:"acquires"` // locking: acquires per processor
	Barriers int    `json:"barriers"` // barrier: rounds
	Txns     int    `json:"txns"`     // commercial: transactions per processor
	CMPs     int    `json:"cmps"`
	Procs    int    `json:"procs"`
	Banks    int    `json:"banks"`
	Seed     int64  `json:"seed"`
	Seeds    int    `json:"seeds"`
	Check    bool   `json:"check"` // enable coherence monitors + token audit

	TimeoutMS int `json:"timeout_ms"` // per-request deadline (0 = server default)
}

// Normalize fills defaulted fields in place. Defaults mirror mcsim so
// the daemon and the CLI answer the same question the same way.
func (r *Request) Normalize() {
	if r.Protocol == "" {
		r.Protocol = "TokenCMP-dst1"
	}
	if r.Workload == "" {
		r.Workload = "locking"
	}
	if r.Locks == 0 {
		r.Locks = 32
	}
	if r.Acquires == 0 {
		r.Acquires = 64
	}
	if r.Barriers == 0 {
		r.Barriers = 20
	}
	if r.Txns == 0 {
		r.Txns = 40
	}
	if r.CMPs == 0 {
		r.CMPs = 4
	}
	if r.Procs == 0 {
		r.Procs = 4
	}
	if r.Banks == 0 {
		r.Banks = 4
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.Seeds == 0 {
		r.Seeds = 1
	}
}

// workloads the daemon accepts (chaos names are gated separately).
var workloads = map[string]bool{
	"locking": true, "barrier": true,
	"OLTP": true, "Apache": true, "SPECjbb": true,
}

// Validate rejects requests the simulator cannot run or that would be
// unreasonably large for a shared daemon. chaos admits the synthetic
// failure workloads used by tests.
func (r *Request) Validate(chaos bool) error {
	protoOK := false
	for _, p := range machine.Protocols() {
		if p == r.Protocol {
			protoOK = true
			break
		}
	}
	if !protoOK {
		return fmt.Errorf("unknown protocol %q (known: %s)", r.Protocol, strings.Join(machine.Protocols(), ", "))
	}
	switch {
	case workloads[r.Workload]:
	case (r.Workload == ChaosPanic || r.Workload == ChaosHang) && chaos:
	default:
		names := make([]string, 0, len(workloads))
		for w := range workloads {
			names = append(names, w)
		}
		sort.Strings(names)
		return fmt.Errorf("unknown workload %q (known: %s)", r.Workload, strings.Join(names, ", "))
	}
	bounds := []struct {
		name      string
		v, lo, hi int
	}{
		{"locks", r.Locks, 1, 1 << 12},
		{"acquires", r.Acquires, 1, 1 << 16},
		{"barriers", r.Barriers, 1, 1 << 12},
		{"txns", r.Txns, 1, 1 << 12},
		{"cmps", r.CMPs, 1, 16},
		{"procs", r.Procs, 1, 16},
		{"banks", r.Banks, 1, 16},
		{"seeds", r.Seeds, 1, 64},
		{"timeout_ms", r.TimeoutMS, 0, 1 << 22},
	}
	for _, b := range bounds {
		if b.v < b.lo || b.v > b.hi {
			return fmt.Errorf("%s = %d out of range [%d, %d]", b.name, b.v, b.lo, b.hi)
		}
	}
	return nil
}

// EstimatedOps approximates the work a normalized request will do:
// per-processor operation count for its workload family, times the
// total processors, times the seeds, doubled when the coherence
// monitors and token audit are on. It is a pure function of the
// request, so the admission class it induces is stable across
// retries, restarts, and replicas.
func (r *Request) EstimatedOps() int64 {
	perProc := int64(r.Acquires)
	switch r.Workload {
	case "barrier":
		perProc = int64(r.Barriers)
	case "OLTP", "Apache", "SPECjbb":
		perProc = int64(r.Txns)
	}
	ops := int64(r.Seeds) * perProc * int64(r.CMPs*r.Procs)
	if r.Check {
		ops *= 2
	}
	return ops
}

// Class buckets the request for admission: at or above threshold
// estimated ops it competes in the heavy pool, below it in the light
// one. threshold <= 0 disables the split (everything is light).
func (r *Request) Class(threshold int64) Class {
	if threshold > 0 && r.EstimatedOps() >= threshold {
		return ClassHeavy
	}
	return ClassLight
}

// Key is the cache identity of the experiment: every field that can
// change the simulation result, in a fixed order, and nothing else
// (TimeoutMS steers serving, not simulation). Two requests with equal
// keys are guaranteed byte-identical response bodies because the
// simulator is deterministic in exactly these inputs.
func (r *Request) Key() string {
	return fmt.Sprintf("v1|proto=%s|wl=%s|locks=%d|acq=%d|bar=%d|txns=%d|geom=%dx%dx%d|seed=%d|seeds=%d|check=%t",
		r.Protocol, r.Workload, r.Locks, r.Acquires, r.Barriers, r.Txns,
		r.CMPs, r.Procs, r.Banks, r.Seed, r.Seeds, r.Check)
}
