package simd

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// waitMetric polls until load() reaches want or the deadline passes —
// write-behind persistence is asynchronous by design, so tests
// synchronize on the durability counters exactly as the CI crash
// smoke script does.
func waitMetric(t *testing.T, what string, load func() uint64, want uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for load() < want {
		if time.Now().After(deadline) {
			t.Fatalf("%s = %d, want >= %d", what, load(), want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// dirEntries lists the store directory's file names with the given
// extension.
func dirEntries(t *testing.T, dir, ext string) []string {
	t.Helper()
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, de := range des {
		if filepath.Ext(de.Name()) == ext {
			names = append(names, de.Name())
		}
	}
	return names
}

// TestFrameRoundTrip pins the on-disk entry frame: encode→decode is
// the identity for dated and undated entries, including empty bodies
// and keys with arbitrary bytes.
func TestFrameRoundTrip(t *testing.T) {
	cases := []struct {
		key     string
		body    string
		expires time.Time
	}{
		{"k", "body", time.Unix(1234, 5678)},
		{"k|with|pipes and spaces\x00\xff", "", time.Unix(99, 0)},
		{"undated", "lives forever", time.Time{}},
	}
	for _, c := range cases {
		raw := encodeFrame(c.key, []byte(c.body), c.expires)
		key, body, expires, err := decodeFrame(raw)
		if err != nil {
			t.Fatalf("%q: %v", c.key, err)
		}
		if key != c.key || string(body) != c.body {
			t.Errorf("%q: round-tripped to key=%q body=%q", c.key, key, body)
		}
		if c.expires.IsZero() != expires.IsZero() {
			t.Errorf("%q: expiry zeroness changed", c.key)
		}
		if !c.expires.IsZero() && !expires.Equal(c.expires) {
			t.Errorf("%q: expires %v, want %v", c.key, expires, c.expires)
		}
	}
}

// TestFrameTornDetection truncates a valid frame at every length and
// flips every byte, asserting decode rejects all of it — the property
// that makes a kill -9 mid-write detectable on boot.
func TestFrameTornDetection(t *testing.T) {
	raw := encodeFrame("some-key", []byte(`{"result":42}`), time.Unix(5000, 0))
	for n := 0; n < len(raw); n++ {
		if _, _, _, err := decodeFrame(raw[:n]); err == nil {
			t.Fatalf("truncation to %d/%d bytes decoded cleanly", n, len(raw))
		}
	}
	for i := 0; i < len(raw); i++ {
		mut := append([]byte(nil), raw...)
		mut[i] ^= 0x40
		if key, body, _, err := decodeFrame(mut); err == nil {
			// A flip that survives framing must still fail the checksum.
			t.Fatalf("bit flip at %d decoded cleanly (key=%q body=%q)", i, key, body)
		}
	}
}

// TestStoreWriteRestore persists entries through the write-behind
// queue, then restores from a fresh Store on the same directory:
// bodies and absolute expiries must round-trip, freshest first.
func TestStoreWriteRestore(t *testing.T) {
	dir := t.TempDir()
	m := &Metrics{}
	s, err := OpenStore(dir, m)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Unix(10_000, 0)
	s.Put("old", []byte("old-body"), base.Add(1*time.Minute))
	s.Put("new", []byte("new-body"), base.Add(9*time.Minute))
	s.Put("mid", []byte("mid-body"), base.Add(5*time.Minute))
	waitMetric(t, "PersistWritten", m.PersistWritten.Load, 3)
	s.Drain(time.Second)

	m2 := &Metrics{}
	s2, err := OpenStore(dir, m2)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Drain(time.Second)
	got, err := s2.Restore(10, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("restored %d entries, want 3", len(got))
	}
	wantOrder := []string{"new", "mid", "old"} // freshest (latest expiry) first
	for i, e := range got {
		if e.Key != wantOrder[i] {
			t.Errorf("restore order[%d] = %q, want %q", i, e.Key, wantOrder[i])
		}
		if string(e.Body) != e.Key+"-body" {
			t.Errorf("restored body for %q = %q", e.Key, e.Body)
		}
	}
	if m2.Restored.Load() != 3 || m2.RestoreTorn.Load() != 0 || m2.RestoreExpired.Load() != 0 {
		t.Errorf("restore counters = %d/%d/%d, want 3/0/0",
			m2.Restored.Load(), m2.RestoreTorn.Load(), m2.RestoreExpired.Load())
	}
}

// TestRestoreBounded caps the restore pass at the cache capacity and
// deletes the overflow so the directory stays bounded.
func TestRestoreBounded(t *testing.T) {
	dir := t.TempDir()
	m := &Metrics{}
	s, err := OpenStore(dir, m)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Unix(10_000, 0)
	for i := 0; i < 5; i++ {
		s.Put(strings.Repeat("k", i+1), []byte("body"), base.Add(time.Duration(i+1)*time.Minute))
	}
	waitMetric(t, "PersistWritten", m.PersistWritten.Load, 5)
	s.Drain(time.Second)

	s2, err := OpenStore(dir, &Metrics{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Drain(time.Second)
	got, err := s2.Restore(2, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("restored %d entries, want the 2 freshest", len(got))
	}
	if files := dirEntries(t, dir, entryExt); len(files) != 2 {
		t.Errorf("%d entry files survive a max=2 restore, want 2", len(files))
	}
}

// TestRestoreDiscardsTornExpiredAndStale seeds the directory with the
// full failure zoo — a truncated frame, a bit-flipped frame, a stale
// .tmp from a killed flush, a healthy frame under the wrong filename,
// and an expired entry — and asserts the restore pass deletes and
// counts every one of them without failing, returning only the
// healthy live entry.
func TestRestoreDiscardsTornExpiredAndStale(t *testing.T) {
	dir := t.TempDir()
	m := &Metrics{}
	s, err := OpenStore(dir, m)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Unix(50_000, 0)
	s.Put("live", []byte("live-body"), base.Add(time.Minute))
	s.Put("dead", []byte("dead-body"), base.Add(-time.Minute)) // already expired at restore
	waitMetric(t, "PersistWritten", m.PersistWritten.Load, 2)
	s.Drain(time.Second)

	// Torn: a valid frame truncated mid-body.
	full := encodeFrame("torn", []byte("torn-body"), base.Add(time.Minute))
	writeRaw(t, s.entryPath("torn"), full[:len(full)-6])
	// Corrupt: full length, one byte flipped.
	full = encodeFrame("corrupt", []byte("corrupt-body"), base.Add(time.Minute))
	full[len(full)/2] ^= 1
	writeRaw(t, s.entryPath("corrupt"), full)
	// Stale .tmp from a crashed flush.
	writeRaw(t, s.entryPath("staletmp")+tmpExt, []byte("half a frame"))
	// Healthy frame under a filename that does not match its key.
	writeRaw(t, filepath.Join(dir, strings.Repeat("ab", 32)+entryExt),
		encodeFrame("renamed", []byte("renamed-body"), base.Add(time.Minute)))

	m2 := &Metrics{}
	s2, err := OpenStore(dir, m2)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Drain(time.Second)
	got, err := s2.Restore(10, base)
	if err != nil {
		t.Fatalf("restore must never fail over bad files: %v", err)
	}
	if len(got) != 1 || got[0].Key != "live" || string(got[0].Body) != "live-body" {
		t.Fatalf("restored %+v, want only the live entry", got)
	}
	if m2.RestoreTorn.Load() != 4 {
		t.Errorf("RestoreTorn = %d, want 4 (torn, corrupt, stale tmp, renamed)", m2.RestoreTorn.Load())
	}
	if m2.RestoreExpired.Load() != 1 {
		t.Errorf("RestoreExpired = %d, want 1", m2.RestoreExpired.Load())
	}
	if files := dirEntries(t, dir, entryExt); len(files) != 1 {
		t.Errorf("%d entry files survive, want 1 (bad ones deleted)", len(files))
	}
	if tmps := dirEntries(t, dir, tmpExt); len(tmps) != 0 {
		t.Errorf("stale .tmp files survive restore: %v", tmps)
	}
}

// TestRestoreTTLBoundary pins the expiry comparison at the exact
// boundary: an entry expiring precisely at restore time is dead
// (consistent with Cache.Lookup's !now.Before(expires)), one
// nanosecond later it is alive, and an undated entry always lives.
func TestRestoreTTLBoundary(t *testing.T) {
	dir := t.TempDir()
	m := &Metrics{}
	s, err := OpenStore(dir, m)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Unix(70_000, 0)
	s.Put("at-boundary", []byte("b"), base)
	s.Put("one-nano-late", []byte("b"), base.Add(time.Nanosecond))
	s.Put("undated", []byte("b"), time.Time{})
	waitMetric(t, "PersistWritten", m.PersistWritten.Load, 3)
	s.Drain(time.Second)

	m2 := &Metrics{}
	s2, err := OpenStore(dir, m2)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Drain(time.Second)
	got, err := s2.Restore(10, base)
	if err != nil {
		t.Fatal(err)
	}
	keys := map[string]bool{}
	for _, e := range got {
		keys[e.Key] = true
	}
	if keys["at-boundary"] {
		t.Error("entry expiring exactly at restore time survived")
	}
	if !keys["one-nano-late"] {
		t.Error("entry expiring 1ns after restore time discarded")
	}
	if !keys["undated"] {
		t.Error("undated entry discarded")
	}
	if m2.RestoreExpired.Load() != 1 {
		t.Errorf("RestoreExpired = %d, want 1", m2.RestoreExpired.Load())
	}
}

// TestDrainCompletesPendingWrites asserts a drain with budget lands
// every queued flush atomically: all final files parse, no .tmp
// residue.
func TestDrainCompletesPendingWrites(t *testing.T) {
	dir := t.TempDir()
	m := &Metrics{}
	s, err := OpenStore(dir, m)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		s.Put(strings.Repeat("x", i+1), []byte("body"), time.Time{})
	}
	s.Drain(5 * time.Second)
	if m.PersistWritten.Load() != 20 {
		t.Fatalf("PersistWritten = %d after drain, want 20", m.PersistWritten.Load())
	}
	files := dirEntries(t, dir, entryExt)
	if len(files) != 20 {
		t.Fatalf("%d entry files, want 20", len(files))
	}
	for _, name := range files {
		raw, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if _, _, _, err := decodeFrame(raw); err != nil {
			t.Errorf("%s is torn after a clean drain", name)
		}
	}
	if tmps := dirEntries(t, dir, tmpExt); len(tmps) != 0 {
		t.Errorf(".tmp residue after clean drain: %v", tmps)
	}
}

// TestDrainAbandonsMidFlushCleanly pins the SIGTERM-during-flush
// contract: when the drain budget expires while a write is between
// its .tmp write and the rename, the flush is abandoned — the .tmp is
// removed and no torn final file appears.
func TestDrainAbandonsMidFlushCleanly(t *testing.T) {
	dir := t.TempDir()
	m := &Metrics{}
	s, err := OpenStore(dir, m)
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{})
	release := make(chan struct{})
	s.beforeRename = func() {
		close(entered)
		<-release
	}
	s.Put("stuck", []byte("never lands"), time.Time{})
	<-entered // the flusher sits between tmp write and rename
	go func() {
		time.Sleep(100 * time.Millisecond)
		close(release)
	}()
	s.Drain(10 * time.Millisecond) // expires long before release
	if got := dirEntries(t, dir, entryExt); len(got) != 0 {
		t.Errorf("final entry files after abandoned flush: %v", got)
	}
	if tmps := dirEntries(t, dir, tmpExt); len(tmps) != 0 {
		t.Errorf(".tmp residue after abandoned flush: %v", tmps)
	}
	if m.PersistWritten.Load() != 0 {
		t.Errorf("PersistWritten = %d for an abandoned flush, want 0", m.PersistWritten.Load())
	}
}

// TestCacheEvictionAndExpiryDeleteBackingFiles asserts the disk stays
// a mirror of memory: LRU eviction and TTL expiry both remove the
// entry's file, so a restart cannot resurrect bodies the cache
// already dropped.
func TestCacheEvictionAndExpiryDeleteBackingFiles(t *testing.T) {
	dir := t.TempDir()
	m := &Metrics{}
	s, err := OpenStore(dir, m)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCache(2, time.Minute, context.Background(), m)
	c.store = s
	clock := time.Unix(90_000, 0)
	c.now = func() time.Time { return clock }
	put := func(key string) {
		t.Helper()
		if _, err := c.Do(context.Background(), key, func(context.Context) ([]byte, error) {
			return []byte(key + "-body"), nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	put("a")
	put("b")
	put("c") // evicts a
	waitMetric(t, "PersistDeleted", m.PersistDeleted.Load, 1)
	clock = clock.Add(2 * time.Minute)
	if _, ok := c.Lookup("b"); ok {
		t.Fatal("b survived its TTL")
	}
	waitMetric(t, "PersistDeleted", m.PersistDeleted.Load, 2)
	s.Drain(time.Second)
	files := dirEntries(t, dir, entryExt)
	if len(files) != 1 {
		t.Fatalf("%d backing files, want 1 (only c)", len(files))
	}
	raw, err := os.ReadFile(filepath.Join(dir, files[0]))
	if err != nil {
		t.Fatal(err)
	}
	key, body, _, err := decodeFrame(raw)
	if err != nil || key != "c" || string(body) != "c-body" {
		t.Fatalf("surviving file = key %q body %q err %v, want c", key, body, err)
	}
}

func writeRaw(t *testing.T, path string, raw []byte) {
	t.Helper()
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}
