package simd

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Store is the durable half of the result cache: a write-behind
// one-file-per-entry mirror of the in-memory LRU under a directory the
// operator owns. The contract:
//
//   - Writes are atomic. A flusher goroutine writes each entry to a
//     .tmp file and renames it into place; readers never observe a
//     half-written final file through the rename itself.
//   - Torn writes are detected anyway. A kill -9 can leave a stale
//     .tmp behind, and a crashing filesystem can in principle persist
//     a rename before the data. Every entry therefore carries a
//     length-prefixed, CRC-checksummed frame; Restore discards (and
//     deletes) anything that does not parse, counts it, and never
//     fails boot over it.
//   - TTL survives restarts. The frame stores the absolute expiry
//     time, so an entry written 9 minutes before a crash has 1 minute
//     of life after reboot, not a fresh TTL.
//   - Disk mirrors memory. LRU eviction and TTL expiry delete the
//     backing file; Restore keeps at most the cache capacity and
//     deletes the excess, so the directory stays bounded.
//
// Losing a write-behind flush to a crash is safe by construction: the
// cache key is a pure function of the request, so a missing entry is
// recomputed to byte-identical bytes on the next request.
type Store struct {
	dir     string
	metrics *Metrics

	mu       sync.Mutex
	queue    []persistOp // pending write-behind operations, FIFO
	inflight bool        // the flusher has popped an op it is still applying
	closed   bool
	wake     chan struct{} // buffered(1): nudges the flusher
	done     chan struct{} // closed when the flusher exits
	flushed  chan struct{} // buffered(1): nudges Drain waiters

	// beforeRename, when set by tests, runs between writing an entry's
	// .tmp file and renaming it into place — the window a drain must
	// either finish or cleanly abandon.
	beforeRename func()
}

// persistOp is one queued write-behind action: a body to persist
// (put) or a key to remove (body nil).
type persistOp struct {
	key     string
	body    []byte
	expires time.Time
}

// Frame layout (all integers little-endian):
//
//	offset 0   4      5        9         9+K     17+K    21+K      21+K+B
//	       ┌───┬──────┬────────┬─────────┬───────┬───────┬─────────┐
//	       │magic│ver │ keyLen │ key     │expires│bodyLen│ body    │ crc32
//	       └───┴──────┴────────┴─────────┴───────┴───────┴─────────┘
//
// magic is "SCE0", version is 1, expires is UnixNano (0 = never), and
// the trailing crc32 (IEEE) covers every preceding byte. A file that
// is short, misframed, or checksum-mismatched is a torn write.
const (
	frameMagic   = "SCE0"
	frameVersion = 1
	entryExt     = ".sce"
	tmpExt       = ".tmp"

	// persistQueueMax bounds the write-behind queue; beyond it new
	// puts are dropped (and counted) rather than blocking the serving
	// path — the entry stays in memory and can be recomputed.
	persistQueueMax = 1024
)

// errTorn marks a file that failed frame validation.
var errTorn = errors.New("simd: torn or corrupt cache entry")

// OpenStore prepares dir (creating it if needed), removes stale .tmp
// files from a previous crash, and starts the write-behind flusher.
func OpenStore(dir string, metrics *Metrics) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("simd: cache dir: %w", err)
	}
	if metrics == nil {
		metrics = &Metrics{}
	}
	s := &Store{
		dir:     dir,
		metrics: metrics,
		wake:    make(chan struct{}, 1),
		done:    make(chan struct{}),
		flushed: make(chan struct{}, 1),
	}
	go s.flusher()
	return s, nil
}

// Dir reports the store's directory.
func (s *Store) Dir() string { return s.dir }

// entryPath names the file for a key: a hex SHA-256 of the key, so
// arbitrary key bytes map to a fixed-length portable filename and the
// key itself still travels inside the frame for verification.
func (s *Store) entryPath(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(s.dir, hex.EncodeToString(sum[:])+entryExt)
}

// Put schedules key's body for write-behind persistence. It never
// blocks: if the queue is full the write is dropped and counted —
// the entry remains serveable from memory and recomputable after a
// restart.
func (s *Store) Put(key string, body []byte, expires time.Time) {
	s.enqueue(persistOp{key: key, body: body, expires: expires})
}

// Delete schedules removal of key's backing file (write-behind, same
// ordering as Put: a Delete queued after a Put wins).
func (s *Store) Delete(key string) {
	s.enqueue(persistOp{key: key})
}

func (s *Store) enqueue(op persistOp) {
	s.mu.Lock()
	if s.closed || len(s.queue) >= persistQueueMax {
		dropped := !s.closed
		s.mu.Unlock()
		if dropped {
			s.metrics.PersistDropped.Add(1)
		}
		return
	}
	s.queue = append(s.queue, op)
	s.mu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// flusher drains the queue in order until Close. Each op is applied
// atomically; failures are counted, never fatal.
func (s *Store) flusher() {
	defer close(s.done)
	for {
		s.mu.Lock()
		for len(s.queue) == 0 {
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return
			}
			<-s.wake
			s.mu.Lock()
		}
		op := s.queue[0]
		s.queue = s.queue[1:]
		s.inflight = true
		s.mu.Unlock()
		s.apply(op)
		s.mu.Lock()
		s.inflight = false
		s.mu.Unlock()
		select {
		case s.flushed <- struct{}{}:
		default:
		}
	}
}

func (s *Store) apply(op persistOp) {
	if op.body == nil {
		if err := os.Remove(s.entryPath(op.key)); err == nil {
			s.metrics.PersistDeleted.Add(1)
		}
		return
	}
	if err := s.writeEntry(op); err != nil {
		s.metrics.PersistErrors.Add(1)
		return
	}
	s.metrics.PersistWritten.Add(1)
}

// writeEntry writes the framed entry to a .tmp file and renames it
// into place. On any failure the .tmp is removed — a crash or drain
// abandons cleanly, never leaving a torn final file.
func (s *Store) writeEntry(op persistOp) (err error) {
	final := s.entryPath(op.key)
	tmp := final + tmpExt
	defer func() {
		if err != nil {
			os.Remove(tmp)
		}
	}()
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	frame := encodeFrame(op.key, op.body, op.expires)
	if _, err = f.Write(frame); err != nil {
		f.Close()
		return err
	}
	if err = f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	if s.beforeRename != nil {
		s.beforeRename()
	}
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		// Drain cut us off mid-flush: abandon the tmp file rather
		// than racing the process exit with a rename.
		return errors.New("simd: store closed mid-flush")
	}
	return os.Rename(tmp, final)
}

// encodeFrame renders the on-disk entry frame for key/body.
func encodeFrame(key string, body []byte, expires time.Time) []byte {
	var expNano int64
	if !expires.IsZero() {
		expNano = expires.UnixNano()
	}
	n := len(frameMagic) + 1 + 4 + len(key) + 8 + 4 + len(body) + 4
	buf := make([]byte, 0, n)
	buf = append(buf, frameMagic...)
	buf = append(buf, frameVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(key)))
	buf = append(buf, key...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(expNano))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(body)))
	buf = append(buf, body...)
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// decodeFrame parses an on-disk entry, returning errTorn for any
// framing or checksum violation.
func decodeFrame(raw []byte) (key string, body []byte, expires time.Time, err error) {
	hdr := len(frameMagic) + 1 + 4
	if len(raw) < hdr+8+4+4 || string(raw[:len(frameMagic)]) != frameMagic || raw[len(frameMagic)] != frameVersion {
		return "", nil, time.Time{}, errTorn
	}
	keyLen := int(binary.LittleEndian.Uint32(raw[len(frameMagic)+1:]))
	if keyLen < 0 || len(raw) < hdr+keyLen+8+4+4 {
		return "", nil, time.Time{}, errTorn
	}
	key = string(raw[hdr : hdr+keyLen])
	off := hdr + keyLen
	expNano := int64(binary.LittleEndian.Uint64(raw[off:]))
	off += 8
	bodyLen := int(binary.LittleEndian.Uint32(raw[off:]))
	off += 4
	if bodyLen < 0 || len(raw) != off+bodyLen+4 {
		return "", nil, time.Time{}, errTorn
	}
	body = raw[off : off+bodyLen]
	off += bodyLen
	if binary.LittleEndian.Uint32(raw[off:]) != crc32.ChecksumIEEE(raw[:off]) {
		return "", nil, time.Time{}, errTorn
	}
	if expNano != 0 {
		expires = time.Unix(0, expNano)
	}
	return key, body, expires, nil
}

// RestoredEntry is one cache body recovered from disk by Restore.
type RestoredEntry struct {
	Key     string
	Body    []byte
	Expires time.Time // zero = never expires
}

// Restore scans the directory once at boot: stale .tmp files and torn
// or corrupt entries are deleted and counted, expired entries (by the
// frame's own absolute expiry, evaluated at now) are deleted and
// counted, and at most max healthy entries are returned for LRU
// repopulation — freshest first, by expiry time. Entries beyond max
// are deleted so the directory stays bounded by the cache capacity.
// Restore never fails the boot over individual bad files.
func (s *Store) Restore(max int, now time.Time) ([]RestoredEntry, error) {
	names, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("simd: restore scan: %w", err)
	}
	var live []RestoredEntry
	for _, de := range names {
		name := de.Name()
		path := filepath.Join(s.dir, name)
		switch {
		case filepath.Ext(name) == tmpExt:
			// A flush the previous process never renamed: abandoned by
			// contract, torn by definition.
			os.Remove(path)
			s.metrics.RestoreTorn.Add(1)
			continue
		case filepath.Ext(name) != entryExt:
			continue // not ours; leave it alone
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			s.metrics.RestoreTorn.Add(1)
			os.Remove(path)
			continue
		}
		key, body, expires, err := decodeFrame(raw)
		if err != nil || s.entryPath(key) != path {
			// Torn frame, or a healthy frame under the wrong filename
			// (a renamed/copied entry would serve the wrong key).
			s.metrics.RestoreTorn.Add(1)
			os.Remove(path)
			continue
		}
		if !expires.IsZero() && !now.Before(expires) {
			s.metrics.RestoreExpired.Add(1)
			os.Remove(path)
			continue
		}
		live = append(live, RestoredEntry{Key: key, Body: body, Expires: expires})
	}
	// Freshest first: latest expiry wins a slot. Entries without
	// expiry sort after dated ones in ReadDir's deterministic name
	// order, which only matters when the directory overflows max.
	sort.SliceStable(live, func(i, j int) bool {
		return live[i].Expires.After(live[j].Expires)
	})
	if max >= 0 && len(live) > max {
		for _, e := range live[max:] {
			os.Remove(s.entryPath(e.Key))
			s.metrics.PersistDeleted.Add(1)
		}
		live = live[:max]
	}
	s.metrics.Restored.Add(uint64(len(live)))
	return live, nil
}

// Drain flushes the pending queue, waiting at most the given budget,
// then closes the store. Whatever the budget does not cover is
// abandoned cleanly: queued ops are dropped, and an in-flight entry's
// .tmp file is removed instead of renamed, so the directory never
// holds a torn final file. Drain is idempotent.
func (s *Store) Drain(budget time.Duration) {
	deadline := time.NewTimer(budget)
	defer deadline.Stop()
	for {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			<-s.done
			return
		}
		if len(s.queue) == 0 && !s.inflight {
			s.closed = true
			s.mu.Unlock()
			// Unblock the flusher's wait; it exits on closed+empty.
			select {
			case s.wake <- struct{}{}:
			default:
			}
			<-s.done
			return
		}
		s.mu.Unlock()
		select {
		case <-s.flushed:
		case <-deadline.C:
			s.mu.Lock()
			s.metrics.PersistDropped.Add(uint64(len(s.queue)))
			s.queue = nil
			s.closed = true
			s.mu.Unlock()
			select {
			case s.wake <- struct{}{}:
			default:
			}
			<-s.done
			return
		}
	}
}
