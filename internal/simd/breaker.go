package simd

import (
	"sync"
	"time"
)

// breaker is the poison-input circuit breaker: a request key that
// keeps panicking the engine is negatively cached and answered 422
// immediately instead of being re-run at full cost forever. Because
// the simulator is deterministic in the cache key, a key that panicked
// once will panic every time — the retry budget (threshold) exists
// only to absorb panics with environmental causes (OOM pressure,
// runtime faults) that a deterministic input cannot explain away.
//
// States per key, classic three-state breaker:
//
//	closed    — panics below threshold; requests run normally.
//	open      — threshold consecutive panics; requests are rejected
//	            with 422 until the cooldown passes.
//	half-open — cooldown expired; exactly one probe request runs.
//	            A panic reopens immediately (count stays at
//	            threshold), a success closes and forgets the key.
type breaker struct {
	threshold int           // consecutive panics before opening (<=0: disabled)
	cooldown  time.Duration // how long an open key rejects
	metrics   *Metrics
	now       func() time.Time // injected by tests

	mu      sync.Mutex
	entries map[string]*breakerEntry
	order   []string // insertion order, for bounded eviction
}

type breakerEntry struct {
	panics    int
	openUntil time.Time // zero while closed
	probing   bool      // a half-open probe is in flight
}

// breakerMaxKeys bounds the tracked-key map: a stream of distinct
// poison inputs must not grow daemon memory without limit. Beyond the
// bound the oldest tracked key is forgotten (it re-earns its state if
// it is still poisonous).
const breakerMaxKeys = 4096

func newBreaker(threshold int, cooldown time.Duration, metrics *Metrics) *breaker {
	if metrics == nil {
		metrics = &Metrics{}
	}
	return &breaker{
		threshold: threshold,
		cooldown:  cooldown,
		metrics:   metrics,
		now:       time.Now,
		entries:   make(map[string]*breakerEntry),
	}
}

// allow reports whether a run for key may start. When it returns
// false the key is open and retryAfter is the remaining cooldown
// (floored at one second) for the 422's Retry-After header.
func (b *breaker) allow(key string) (ok bool, retryAfter time.Duration) {
	if b.threshold <= 0 {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	e, tracked := b.entries[key]
	if !tracked || e.openUntil.IsZero() {
		return true, 0
	}
	if remaining := e.openUntil.Sub(b.now()); remaining > 0 {
		b.metrics.BreakerRejected.Add(1)
		if remaining < time.Second {
			remaining = time.Second
		}
		return false, remaining
	}
	// Cooldown passed: half-open. Exactly one probe runs; concurrent
	// requests for the key keep rejecting until the probe resolves.
	if e.probing {
		b.metrics.BreakerRejected.Add(1)
		return false, time.Second
	}
	e.probing = true
	return true, 0
}

// onPanic records an engine panic for key; crossing the threshold
// opens the breaker (or reopens it after a failed half-open probe).
func (b *breaker) onPanic(key string) {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.entries[key]
	if e == nil {
		if len(b.entries) >= breakerMaxKeys {
			oldest := b.order[0]
			b.order = b.order[1:]
			delete(b.entries, oldest)
		}
		e = &breakerEntry{}
		b.entries[key] = e
		b.order = append(b.order, key)
	}
	e.probing = false
	e.panics++
	if e.panics >= b.threshold {
		e.panics = b.threshold // saturate: one more panic after half-open reopens
		if e.openUntil.IsZero() || !b.now().Before(e.openUntil) {
			b.metrics.BreakerOpen.Add(1)
		}
		e.openUntil = b.now().Add(b.cooldown)
	}
}

// onSuccess clears key's record: a completed run proves the input is
// not poison (or no longer meets its environmental trigger).
func (b *breaker) onSuccess(key string) {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, tracked := b.entries[key]; !tracked {
		return
	}
	delete(b.entries, key)
	for i, k := range b.order {
		if k == key {
			b.order = append(b.order[:i], b.order[i+1:]...)
			break
		}
	}
}
