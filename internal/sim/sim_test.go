package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestScheduleOrdersByTime(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(NS(30), func() { got = append(got, 3) })
	e.Schedule(NS(10), func() { got = append(got, 1) })
	e.Schedule(NS(20), func() { got = append(got, 2) })
	e.Run(0)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("order = %v, want [1 2 3]", got)
	}
	if e.Now() != NS(30) {
		t.Errorf("final time = %v, want 30ns", e.Now())
	}
}

func TestTiesFireInScheduleOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(NS(5), func() { got = append(got, i) })
	}
	e.Run(0)
	for i, v := range got {
		if v != i {
			t.Fatalf("tie order broken: %v", got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 100 {
			e.Schedule(NS(1), recurse)
		}
	}
	e.Schedule(0, recurse)
	e.Run(0)
	if depth != 100 {
		t.Errorf("depth = %d, want 100", depth)
	}
	if e.Now() != NS(99) {
		t.Errorf("time = %v, want 99ns", e.Now())
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(NS(10), func() {
		e.Schedule(-NS(5), func() { fired = true })
	})
	e.Run(0)
	if !fired {
		t.Error("negative-delay event did not fire")
	}
	if e.Now() != NS(10) {
		t.Errorf("time = %v, want 10ns (clamped)", e.Now())
	}
}

func TestScheduleAtClampsToNow(t *testing.T) {
	e := NewEngine()
	at := Time(-1)
	e.Schedule(NS(10), func() {
		e.ScheduleAt(NS(3), func() { at = e.Now() })
	})
	e.Run(0)
	if at != NS(10) {
		t.Errorf("past ScheduleAt fired at %v, want 10ns", at)
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	n := 0
	for i := 0; i < 10; i++ {
		e.Schedule(NS(int64(i)), func() { n++ })
	}
	if !e.RunUntil(func() bool { return n == 5 }, 0) {
		t.Fatal("condition not reached")
	}
	if n != 5 {
		t.Errorf("n = %d, want 5", n)
	}
	if e.Pending() != 5 {
		t.Errorf("pending = %d, want 5", e.Pending())
	}
}

func TestRunEventLimit(t *testing.T) {
	e := NewEngine()
	var tick func()
	tick = func() { e.Schedule(NS(1), tick) }
	e.Schedule(0, tick)
	e.Run(1000)
	if e.Executed != 1000 {
		t.Errorf("executed = %d, want 1000", e.Executed)
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	n := 0
	e.Schedule(NS(1), func() { n++; e.Stop() })
	e.Schedule(NS(2), func() { n++ })
	e.Run(0)
	if n != 1 {
		t.Errorf("n = %d, want 1 (stopped)", n)
	}
}

// Property: events always fire in non-decreasing time order regardless of
// insertion order.
func TestPropertyMonotonicTime(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		last := Time(-1)
		ok := true
		for _, d := range delays {
			e.Schedule(Time(d)*Nanosecond, func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
			})
		}
		e.Run(0)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Executed equals the number of scheduled events when all run.
func TestPropertyAllEventsFire(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		for i := 0; i < int(n); i++ {
			e.Schedule(Time(rng.Intn(1000))*Nanosecond, func() {})
		}
		e.Run(0)
		return e.Executed == uint64(n) && e.Pending() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTimeString(t *testing.T) {
	cases := map[Time]string{
		PS(500):          "500ps",
		NS(3):            "3.000ns",
		Microsecond * 2:  "2.000us",
		Millisecond * 10: "10.000ms",
	}
	for in, want := range cases {
		if got := in.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int64(in), got, want)
		}
	}
}
