package sim

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestScheduleOrdersByTime(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(NS(30), func() { got = append(got, 3) })
	e.Schedule(NS(10), func() { got = append(got, 1) })
	e.Schedule(NS(20), func() { got = append(got, 2) })
	e.Run(0)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("order = %v, want [1 2 3]", got)
	}
	if e.Now() != NS(30) {
		t.Errorf("final time = %v, want 30ns", e.Now())
	}
}

func TestTiesFireInScheduleOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(NS(5), func() { got = append(got, i) })
	}
	e.Run(0)
	for i, v := range got {
		if v != i {
			t.Fatalf("tie order broken: %v", got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 100 {
			e.Schedule(NS(1), recurse)
		}
	}
	e.Schedule(0, recurse)
	e.Run(0)
	if depth != 100 {
		t.Errorf("depth = %d, want 100", depth)
	}
	if e.Now() != NS(99) {
		t.Errorf("time = %v, want 99ns", e.Now())
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(NS(10), func() {
		e.Schedule(-NS(5), func() { fired = true })
	})
	e.Run(0)
	if !fired {
		t.Error("negative-delay event did not fire")
	}
	if e.Now() != NS(10) {
		t.Errorf("time = %v, want 10ns (clamped)", e.Now())
	}
}

func TestScheduleAtClampsToNow(t *testing.T) {
	e := NewEngine()
	at := Time(-1)
	e.Schedule(NS(10), func() {
		e.ScheduleAt(NS(3), func() { at = e.Now() })
	})
	e.Run(0)
	if at != NS(10) {
		t.Errorf("past ScheduleAt fired at %v, want 10ns", at)
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	n := 0
	for i := 0; i < 10; i++ {
		e.Schedule(NS(int64(i)), func() { n++ })
	}
	if !e.RunUntil(func() bool { return n == 5 }, 0) {
		t.Fatal("condition not reached")
	}
	if n != 5 {
		t.Errorf("n = %d, want 5", n)
	}
	if e.Pending() != 5 {
		t.Errorf("pending = %d, want 5", e.Pending())
	}
}

func TestRunEventLimit(t *testing.T) {
	e := NewEngine()
	var tick func()
	tick = func() { e.Schedule(NS(1), tick) }
	e.Schedule(0, tick)
	e.Run(1000)
	if e.Executed != 1000 {
		t.Errorf("executed = %d, want 1000", e.Executed)
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	n := 0
	e.Schedule(NS(1), func() { n++; e.Stop() })
	e.Schedule(NS(2), func() { n++ })
	e.Run(0)
	if n != 1 {
		t.Errorf("n = %d, want 1 (stopped)", n)
	}
}

// Property: events always fire in non-decreasing time order regardless of
// insertion order.
func TestPropertyMonotonicTime(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		last := Time(-1)
		ok := true
		for _, d := range delays {
			e.Schedule(Time(d)*Nanosecond, func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
			})
		}
		e.Run(0)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Executed equals the number of scheduled events when all run.
func TestPropertyAllEventsFire(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		for i := 0; i < int(n); i++ {
			e.Schedule(Time(rng.Intn(1000))*Nanosecond, func() {})
		}
		e.Run(0)
		return e.Executed == uint64(n) && e.Pending() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTimeString(t *testing.T) {
	cases := map[Time]string{
		PS(500):          "500ps",
		NS(3):            "3.000ns",
		Microsecond * 2:  "2.000us",
		Millisecond * 10: "10.000ms",
	}
	for in, want := range cases {
		if got := in.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int64(in), got, want)
		}
	}
}

// TestScheduleCallInterleavesWithSchedule asserts the closure-free form
// shares the (time, sequence) order with plain closures.
func TestScheduleCallInterleavesWithSchedule(t *testing.T) {
	e := NewEngine()
	var got []int
	record := func(_, arg any) { got = append(got, *arg.(*int)) }
	one, three := 1, 3
	e.Schedule(NS(5), func() { got = append(got, 0) })
	e.ScheduleCall(NS(5), record, nil, &one)
	e.Schedule(NS(5), func() { got = append(got, 2) })
	e.ScheduleCallAt(NS(5), record, nil, &three)
	e.Run(0)
	if len(got) != 4 || got[0] != 0 || got[1] != 1 || got[2] != 2 || got[3] != 3 {
		t.Errorf("order = %v, want [0 1 2 3]", got)
	}
}

// TestScheduleCallPassesCtxArg asserts ctx and arg arrive untouched.
func TestScheduleCallPassesCtxArg(t *testing.T) {
	e := NewEngine()
	type box struct{ v int }
	ctx, arg := &box{1}, &box{2}
	var gotCtx, gotArg *box
	e.ScheduleCall(NS(1), func(c, a any) { gotCtx, gotArg = c.(*box), a.(*box) }, ctx, arg)
	e.Run(0)
	if gotCtx != ctx || gotArg != arg {
		t.Errorf("ctx/arg = %p/%p, want %p/%p", gotCtx, gotArg, ctx, arg)
	}
}

// TestHeapPopsTotalOrder cross-checks the 4-ary heap against a sorted
// reference over a large pseudo-random schedule.
func TestHeapPopsTotalOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	e := NewEngine()
	const n = 5000
	var fired []Time
	for i := 0; i < n; i++ {
		e.Schedule(Time(rng.Intn(500))*Nanosecond, func() { fired = append(fired, e.Now()) })
	}
	e.Run(0)
	if len(fired) != n {
		t.Fatalf("fired %d events, want %d", len(fired), n)
	}
	for i := 1; i < n; i++ {
		if fired[i] < fired[i-1] {
			t.Fatalf("time went backwards at %d: %v < %v", i, fired[i], fired[i-1])
		}
	}
}

// TestScheduleCallDoesNotAllocate pins the closure-free fast path at
// zero allocations per scheduled+fired event once the queue is warm.
func TestScheduleCallDoesNotAllocate(t *testing.T) {
	e := NewEngine()
	nop := func(_, _ any) {}
	// Warm the queue's backing slice.
	for i := 0; i < 64; i++ {
		e.ScheduleCall(NS(1), nop, e, nil)
	}
	e.Run(0)
	avg := testing.AllocsPerRun(1000, func() {
		e.ScheduleCall(NS(1), nop, e, nil)
		e.Step()
	})
	if avg != 0 {
		t.Errorf("ScheduleCall+Step allocates %.2f per event, want 0", avg)
	}
}

// TestCancelStopsWithinBound pins the documented cancellation bound: a
// run whose context is cancelled mid-flight (here, by an event handler
// itself) fires at most CancelCheckEvery further events.
func TestCancelStopsWithinBound(t *testing.T) {
	e := NewEngine()
	ctx, cancel := context.WithCancel(context.Background())
	e.SetContext(ctx)
	var reschedule func()
	reschedule = func() { e.Schedule(NS(1), reschedule) }
	reschedule()
	const cancelAt = 100
	var cancelled uint64
	e.Schedule(NS(1), func() {
		// Fires as the second event at t=1ns; keep rescheduling until
		// the cancel point, then cancel from inside the run.
		var tick func()
		tick = func() {
			if e.Executed == cancelAt {
				cancelled = e.Executed
				cancel()
				return
			}
			e.Schedule(NS(1), tick)
		}
		tick()
	})
	e.Run(0)
	if cancelled == 0 {
		t.Fatal("cancel point never reached")
	}
	if !e.Interrupted() {
		t.Fatalf("engine not interrupted (executed %d events)", e.Executed)
	}
	if got := e.Executed - cancelled; got > CancelCheckEvery {
		t.Errorf("engine ran %d events past cancellation, documented bound is %d", got, CancelCheckEvery)
	}
	if e.Err() == nil {
		t.Error("Err() = nil after interruption, want context.Canceled")
	}
}

// TestRunUntilCancelDistinguishable asserts RunUntil reports an
// unsatisfied condition on cancellation and that Interrupted
// distinguishes it from an exhausted queue or event limit.
func TestRunUntilCancelDistinguishable(t *testing.T) {
	e := NewEngine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the run even starts
	e.SetContext(ctx)
	var chain func()
	chain = func() { e.Schedule(NS(1), chain) }
	chain()
	ok := e.RunUntil(func() bool { return false }, 0)
	if ok {
		t.Fatal("RunUntil reported cond satisfied on a cancelled run")
	}
	if !e.Interrupted() {
		t.Fatal("Interrupted() = false after pre-cancelled run")
	}
	if e.Executed > CancelCheckEvery {
		t.Errorf("pre-cancelled run fired %d events, bound is %d", e.Executed, CancelCheckEvery)
	}
	// Limit exhaustion must NOT read as interruption.
	e2 := NewEngine()
	e2.SetContext(context.Background())
	var chain2 func()
	chain2 = func() { e2.Schedule(NS(1), chain2) }
	chain2()
	if e2.RunUntil(func() bool { return false }, 10) {
		t.Fatal("RunUntil satisfied an always-false cond")
	}
	if e2.Interrupted() {
		t.Error("limit exhaustion reported as interruption")
	}
}

// TestSetContextBackgroundIsFree asserts a never-cancellable context is
// normalized away: the engine behaves exactly as if no context were
// installed (the zero-overhead, determinism-preserving path).
func TestSetContextBackgroundIsFree(t *testing.T) {
	run := func(ctx context.Context) []Time {
		e := NewEngine()
		e.SetContext(ctx)
		var fired []Time
		for i := 0; i < 3000; i++ {
			d := Time(i%7) * Nanosecond
			e.Schedule(d, func() { fired = append(fired, e.Now()) })
		}
		e.Run(0)
		return fired
	}
	plain := run(nil)
	bg := run(context.Background())
	live, cancel := context.WithCancel(context.Background())
	defer cancel()
	withLive := run(live)
	if len(plain) != len(bg) || len(plain) != len(withLive) {
		t.Fatalf("event counts diverged: nil=%d background=%d live=%d", len(plain), len(bg), len(withLive))
	}
	for i := range plain {
		if plain[i] != bg[i] || plain[i] != withLive[i] {
			t.Fatalf("event %d fired at %v/%v/%v across context variants", i, plain[i], bg[i], withLive[i])
		}
	}
}
