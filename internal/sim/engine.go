package sim

import "container/heap"

// event is a scheduled closure.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

// eventHeap orders events by (time, sequence).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is a deterministic discrete-event scheduler.
// The zero value is ready to use.
type Engine struct {
	pq      eventHeap
	now     Time
	seq     uint64
	stopped bool
	// Executed counts events that have fired; useful as a progress and
	// live-lock guard in tests.
	Executed uint64
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now reports the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Schedule runs fn after delay d (>= 0). Events scheduled for the same
// instant fire in the order they were scheduled.
func (e *Engine) Schedule(d Time, fn func()) {
	if d < 0 {
		d = 0
	}
	e.seq++
	heap.Push(&e.pq, event{at: e.now + d, seq: e.seq, fn: fn})
}

// ScheduleAt runs fn at absolute time t (clamped to now).
func (e *Engine) ScheduleAt(t Time, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.Schedule(t-e.now, fn)
}

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return len(e.pq) }

// Stop makes the currently executing Run return once the current event
// handler completes.
func (e *Engine) Stop() { e.stopped = true }

// Step fires the next event, if any, and reports whether one fired.
func (e *Engine) Step() bool {
	if len(e.pq) == 0 {
		return false
	}
	ev := heap.Pop(&e.pq).(event)
	e.now = ev.at
	e.Executed++
	ev.fn()
	return true
}

// Run fires events until the queue is empty, Stop is called, or the
// event-count limit is exceeded (limit <= 0 means no limit). It returns
// the final simulated time.
func (e *Engine) Run(limit uint64) Time {
	e.stopped = false
	start := e.Executed
	for !e.stopped && e.Step() {
		if limit > 0 && e.Executed-start >= limit {
			break
		}
	}
	return e.now
}

// RunUntil fires events until cond() is true (checked after every event),
// the queue drains, or the event-count limit is exceeded. It reports
// whether cond was satisfied.
func (e *Engine) RunUntil(cond func() bool, limit uint64) bool {
	e.stopped = false
	if cond() {
		return true
	}
	start := e.Executed
	for !e.stopped && e.Step() {
		if cond() {
			return true
		}
		if limit > 0 && e.Executed-start >= limit {
			return false
		}
	}
	return cond()
}
