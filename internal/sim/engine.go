package sim

import "context"

// event is one scheduled callback. It carries either a plain closure
// (fn) or the closure-free form (call, ctx, arg) — see ScheduleCall.
type event struct {
	at  Time
	seq uint64
	fn  func()
	// Closure-free form: call(ctx, arg). Pointer-shaped ctx/arg values
	// store into the interface words without allocating, so the network
	// can schedule a delivery without materializing a closure.
	call func(ctx, arg any)
	ctx  any
	arg  any
}

// eventQueue is an unboxed 4-ary min-heap over a reusable backing
// slice, ordered by (time, sequence). Unlike container/heap it never
// boxes events through interface{} on push/pop, and the backing slice's
// capacity is retained across the run, so steady-state scheduling does
// not allocate. A 4-ary layout trades slightly more comparisons per
// sift-down for half the tree depth and better cache locality than a
// binary heap — the right trade when pops dominate and events are 64
// bytes.
type eventQueue struct {
	ev []event
}

func (q *eventQueue) len() int { return len(q.ev) }

func (q *eventQueue) less(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push inserts e, sifting up from the new leaf.
func (q *eventQueue) push(e event) {
	q.ev = append(q.ev, e)
	i := len(q.ev) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !q.less(&q.ev[i], &q.ev[parent]) {
			break
		}
		q.ev[i], q.ev[parent] = q.ev[parent], q.ev[i]
		i = parent
	}
}

// pop removes and returns the minimum event. The vacated tail slot is
// zeroed so the queue never pins callbacks or message pointers beyond
// their firing.
func (q *eventQueue) pop() event {
	top := q.ev[0]
	n := len(q.ev) - 1
	q.ev[0] = q.ev[n]
	q.ev[n] = event{}
	q.ev = q.ev[:n]
	q.siftDown(0)
	return top
}

func (q *eventQueue) siftDown(i int) {
	n := len(q.ev)
	for {
		first := 4*i + 1
		if first >= n {
			return
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if q.less(&q.ev[c], &q.ev[min]) {
				min = c
			}
		}
		if !q.less(&q.ev[min], &q.ev[i]) {
			return
		}
		q.ev[i], q.ev[min] = q.ev[min], q.ev[i]
		i = min
	}
}

// CancelCheckEvery is the amortized cancellation polling interval: Run
// and RunUntil poll the installed context (see SetContext) once per
// this many fired events, so after the context is cancelled the engine
// stops within at most CancelCheckEvery further events — the documented
// cancellation bound. A power of two keeps the poll gate a single AND.
const CancelCheckEvery = 1024

// Engine is a deterministic discrete-event scheduler.
// The zero value is ready to use.
type Engine struct {
	pq      eventQueue
	now     Time
	seq     uint64
	stopped bool
	// ctx is the cancellation source (nil when the engine cannot be
	// cancelled — the common case, and the zero-overhead one).
	ctx         context.Context
	interrupted bool
	// Executed counts events that have fired; useful as a progress and
	// live-lock guard in tests.
	Executed uint64
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine { return &Engine{} }

// SetContext installs ctx as the engine's cancellation source: Run and
// RunUntil poll it once every CancelCheckEvery events and stop early
// when it is cancelled, so a timed-out or abandoned run releases its
// core within a bounded number of events. A nil context — or one that
// can never be cancelled, like context.Background() — removes the
// source entirely; uncancelled runs execute the exact same event
// sequence either way, so installing a live context never perturbs a
// deterministic result (pinned by the golden-figures tests).
func (e *Engine) SetContext(ctx context.Context) {
	if ctx != nil && ctx.Done() == nil {
		ctx = nil
	}
	e.ctx = ctx
	e.interrupted = false
}

// Interrupted reports whether the most recent Run or RunUntil stopped
// because the installed context was cancelled.
func (e *Engine) Interrupted() bool { return e.interrupted }

// Err returns the installed context's error if the engine was
// interrupted by it, nil otherwise.
func (e *Engine) Err() error {
	if !e.interrupted {
		return nil
	}
	return e.ctx.Err()
}

// pollCancel is the amortized cancellation check shared by Run and
// RunUntil. It reports true — and latches Interrupted — when the
// installed context has been cancelled, polling only once every
// CancelCheckEvery executed events.
func (e *Engine) pollCancel() bool {
	if e.ctx == nil || e.Executed%CancelCheckEvery != 0 {
		return false
	}
	if e.ctx.Err() == nil {
		return false
	}
	e.interrupted = true
	return true
}

// Now reports the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Schedule runs fn after delay d (>= 0). Events scheduled for the same
// instant fire in the order they were scheduled.
func (e *Engine) Schedule(d Time, fn func()) {
	if d < 0 {
		d = 0
	}
	e.seq++
	e.pq.push(event{at: e.now + d, seq: e.seq, fn: fn})
}

// ScheduleAt runs fn at absolute time t (clamped to now).
func (e *Engine) ScheduleAt(t Time, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.Schedule(t-e.now, fn)
}

// ScheduleCall runs call(ctx, arg) after delay d (>= 0). It is the
// closure-free fast path: a package-level call function plus
// pointer-shaped ctx/arg schedules without any heap allocation, unlike
// Schedule, whose closure argument almost always escapes. Ordering
// relative to Schedule'd events is the shared (time, sequence) order.
func (e *Engine) ScheduleCall(d Time, call func(ctx, arg any), ctx, arg any) {
	if d < 0 {
		d = 0
	}
	e.seq++
	e.pq.push(event{at: e.now + d, seq: e.seq, call: call, ctx: ctx, arg: arg})
}

// ScheduleCallAt is ScheduleCall at absolute time t (clamped to now).
func (e *Engine) ScheduleCallAt(t Time, call func(ctx, arg any), ctx, arg any) {
	if t < e.now {
		t = e.now
	}
	e.ScheduleCall(t-e.now, call, ctx, arg)
}

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return e.pq.len() }

// Stop makes the currently executing Run return once the current event
// handler completes.
func (e *Engine) Stop() { e.stopped = true }

// Step fires the next event, if any, and reports whether one fired.
func (e *Engine) Step() bool {
	if e.pq.len() == 0 {
		return false
	}
	ev := e.pq.pop()
	e.now = ev.at
	e.Executed++
	if ev.call != nil {
		ev.call(ev.ctx, ev.arg)
	} else {
		ev.fn()
	}
	return true
}

// Run fires events until the queue is empty, Stop is called, the
// event-count limit is exceeded (limit <= 0 means no limit), or the
// installed context is cancelled (see SetContext). It returns the
// final simulated time.
func (e *Engine) Run(limit uint64) Time {
	e.stopped = false
	e.interrupted = false
	start := e.Executed
	for !e.stopped && e.Step() {
		if limit > 0 && e.Executed-start >= limit {
			break
		}
		if e.pollCancel() {
			break
		}
	}
	return e.now
}

// RunUntil fires events until cond() is true (checked after every event),
// the queue drains, the event-count limit is exceeded, or the installed
// context is cancelled (distinguish the last case with Interrupted). It
// reports whether cond was satisfied.
func (e *Engine) RunUntil(cond func() bool, limit uint64) bool {
	e.stopped = false
	e.interrupted = false
	if cond() {
		return true
	}
	start := e.Executed
	for !e.stopped && e.Step() {
		if cond() {
			return true
		}
		if limit > 0 && e.Executed-start >= limit {
			return false
		}
		if e.pollCancel() {
			return false
		}
	}
	return cond()
}
