// Package sim provides a deterministic discrete-event simulation engine.
//
// Components schedule closures at future simulated times on a single
// Engine. Events at equal times fire in scheduling order (a monotonically
// increasing sequence number breaks ties), so a run is bit-reproducible
// for a given input, which the experiment harness relies on for the
// pseudo-random perturbation methodology of Alameldeen & Wood.
package sim

import "fmt"

// Time is simulated time in picoseconds. Picosecond resolution lets the
// engine express both the 0.5 ns processor cycle of the paper's 2 GHz
// cores and the integer-nanosecond structural latencies of Table 3.
type Time int64

// Common units.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
)

// NS returns n nanoseconds as a Time.
func NS(n int64) Time { return Time(n) * Nanosecond }

// PS returns n picoseconds as a Time.
func PS(n int64) Time { return Time(n) * Picosecond }

// Nanoseconds reports t in (possibly fractional, truncated) nanoseconds.
func (t Time) Nanoseconds() int64 { return int64(t / Nanosecond) }

func (t Time) String() string {
	switch {
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	case t >= Nanosecond:
		return fmt.Sprintf("%.3fns", float64(t)/float64(Nanosecond))
	default:
		return fmt.Sprintf("%dps", int64(t))
	}
}
