package counters

import (
	"strings"
	"testing"
)

func TestRegisterAndCount(t *testing.T) {
	s := NewSet()
	miss := s.Counter(L1Miss)
	hit := s.Counter(L1Hit)
	for i := 0; i < 3; i++ {
		miss.Inc()
	}
	hit.Add(10)
	if got := s.Value(L1Miss); got != 3 {
		t.Errorf("Value(%s) = %d, want 3", L1Miss, got)
	}
	if got := s.Value(L1Hit); got != 10 {
		t.Errorf("Value(%s) = %d, want 10", L1Hit, got)
	}
	if got := s.Value(ProbeSent); got != 0 {
		t.Errorf("unregistered Value = %d, want 0", got)
	}
}

// TestSharedHandle pins the shared-registration contract: registering
// the same name twice returns the same handle, so two components
// incrementing "the same counter" really do.
func TestSharedHandle(t *testing.T) {
	s := NewSet()
	a := s.Counter(WritebackRace)
	b := s.Counter(WritebackRace)
	if a != b {
		t.Fatal("re-registration returned a distinct handle")
	}
	a.Inc()
	b.Inc()
	if got := s.Value(WritebackRace); got != 2 {
		t.Errorf("shared counter = %d, want 2", got)
	}
	if n := len(s.Names()); n != 1 {
		t.Errorf("Names() has %d entries, want 1", n)
	}
}

// TestEachSorted pins the deterministic iteration order rendering
// depends on.
func TestEachSorted(t *testing.T) {
	s := NewSet()
	s.Counter(NetMsgInterCMP).Add(2)
	s.Counter(L1Miss).Add(1)
	s.Counter(ProbeAck).Add(3)
	var names []string
	s.Each(func(name string, v uint64) { names = append(names, name) })
	want := []string{L1Miss, NetMsgInterCMP, ProbeAck}
	if len(names) != len(want) {
		t.Fatalf("Each visited %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Each visited %v, want sorted %v", names, want)
		}
	}
}

func TestSnapshotAndMerge(t *testing.T) {
	s := NewSet()
	s.Counter(L1Miss).Add(5)
	s.Counter(ProbeSent).Add(7)
	snap := s.Snapshot()
	s.Counter(L1Miss).Inc()
	if snap[L1Miss] != 5 {
		t.Errorf("snapshot aliased live counter: %d, want 5", snap[L1Miss])
	}
	acc := map[string]uint64{L1Miss: 1}
	MergeInto(acc, snap)
	if acc[L1Miss] != 6 || acc[ProbeSent] != 7 {
		t.Errorf("merged = %v", acc)
	}
}

func TestFprint(t *testing.T) {
	var sb strings.Builder
	Fprint(&sb, map[string]uint64{L1Miss: 42, L1Hit: 7})
	out := sb.String()
	hitAt := strings.Index(out, L1Hit)
	missAt := strings.Index(out, L1Miss)
	if hitAt < 0 || missAt < 0 || hitAt > missAt {
		t.Errorf("Fprint not sorted:\n%s", out)
	}
	if !strings.Contains(out, "42") {
		t.Errorf("Fprint missing value:\n%s", out)
	}
}
