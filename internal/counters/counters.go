// Package counters is the uniform event-counter registry behind the
// statistical measurement layer (ROADMAP item 5, in the spirit of
// CounterPoint's cheap hardware event counters): every protocol stack
// and the network register named counters in one Set per machine, so
// cross-protocol claims ("Hammer generates ~9x the inter-CMP traffic of
// the directory protocol") can be measured with the same probe names on
// both sides and asserted statistically instead of pinned as strings.
//
// The design is allocation-free on the hot path: registration (at
// system construction time) returns a *Counter handle, and Inc/Add on a
// handle is a single word update with no map lookup, no interface call,
// and no allocation. Counter names must be compile-time string
// constants — the simlint ctrreg analyzer enforces this — so the
// counter namespace stays greppable and runs are trivially
// deterministic. The uniform names live here as constants; a protocol
// registers the subset that is meaningful for it.
package counters

import (
	"fmt"
	"io"
	"sort"
)

// Uniform counter names. A name is "<layer>.<event>" (dots separate
// hierarchy levels); protocols register the subset they implement, and
// the claims harness compares like-named counters across protocols.
const (
	// Cache-side events (all four protocol stacks).
	L1Hit       = "l1.hit"
	L1Miss      = "l1.miss"
	L1Writeback = "l1.writeback"
	L2Writeback = "l2.writeback"

	// Broadcast probe traffic (HammerCMP): probes sent by the home,
	// answered with data (owner) or a dataless ack by everyone else.
	ProbeSent = "probe.sent"
	ProbeData = "probe.data"
	ProbeAck  = "probe.ack"

	// Directory indirection events (DirectoryCMP).
	FwdSent = "fwd.sent"
	InvSent = "inv.sent"

	// Token-coherence request machinery (TokenCMP variants).
	ReqTransient  = "req.transient"
	ReqRetry      = "req.retry"
	ReqTimeout    = "req.timeout"
	ReqPersistent = "req.persistent"

	// Policy events shared by several stacks.
	MigratoryGrant = "grant.migratory"

	// Writeback races: a buffered writeback consumed by a concurrent
	// probe/forward, answered with a cancel instead of data.
	WritebackRace = "wb.race"

	// Memory-controller array traffic.
	MemRead  = "mem.read"
	MemWrite = "mem.write"

	// Interconnect traffic by level (the network layer). A "msg" is one
	// protocol message on the level it crosses; a "hop" is one link
	// traversal, so a chip-crossing message adds inter-CMP and (for each
	// cache-side endpoint) intra-CMP hops, mirroring Figure 7's
	// accounting.
	NetMsgIntraCMP   = "net.msg.intra_cmp"
	NetMsgInterCMP   = "net.msg.inter_cmp"
	NetBytesIntraCMP = "net.bytes.intra_cmp"
	NetBytesInterCMP = "net.bytes.inter_cmp"
	NetHopIntraCMP   = "net.hop.intra_cmp"
	NetHopInterCMP   = "net.hop.inter_cmp"

	// Fault injection (the network's seeded fault layer): injected
	// losses, duplicates, and reorders, plus retransmissions by the
	// ack+retransmit shim covering token/data-carrying drops.
	NetDropped   = "net.dropped"
	NetDup       = "net.dup"
	NetReordered = "net.reordered"
	NetRetx      = "net.retx"
)

// Counter is one registered event counter. The zero value counts from
// zero; handles are stable for the life of their Set.
type Counter struct {
	v uint64
}

// Inc adds one event.
func (c *Counter) Inc() { c.v++ }

// Add folds in n events (or n bytes, for size-weighted counters).
func (c *Counter) Add(n uint64) { c.v += n }

// Value reports the accumulated count.
func (c *Counter) Value() uint64 { return c.v }

// Set is the per-machine counter registry. It is not safe for
// concurrent use: a Set belongs to one simulated machine, and machines
// are single-threaded by construction (parallelism in this repo is
// across independent runs).
type Set struct {
	byName map[string]*Counter
	names  []string // registration order
}

// NewSet returns an empty registry.
func NewSet() *Set {
	return &Set{byName: make(map[string]*Counter)}
}

// Counter registers name and returns its handle; registering an
// already-known name returns the existing handle, so independent
// components (e.g. the network and a protocol stack) may share a
// counter. name must be a compile-time string constant (enforced by
// the simlint ctrreg analyzer).
func (s *Set) Counter(name string) *Counter {
	if c, ok := s.byName[name]; ok {
		return c
	}
	c := &Counter{}
	s.byName[name] = c
	s.names = append(s.names, name)
	return c
}

// Value reports the count of name (0 if never registered).
func (s *Set) Value(name string) uint64 {
	if c, ok := s.byName[name]; ok {
		return c.v
	}
	return 0
}

// Names returns the registered names in sorted order.
func (s *Set) Names() []string {
	out := make([]string, len(s.names))
	copy(out, s.names)
	sort.Strings(out)
	return out
}

// Each calls fn for every registered counter in sorted name order
// (deterministic for rendering and golden output).
func (s *Set) Each(fn func(name string, v uint64)) {
	for _, name := range s.Names() {
		fn(name, s.byName[name].v)
	}
}

// Snapshot copies the current values into a fresh map — the form
// results carry out of a finished run so they can be merged across
// seeds.
func (s *Set) Snapshot() map[string]uint64 {
	out := make(map[string]uint64, len(s.names))
	for _, name := range s.names {
		out[name] = s.byName[name].v
	}
	return out
}

// MergeInto folds a snapshot into an accumulator map (commutative
// integer adds, so merge order never affects the result).
func MergeInto(acc map[string]uint64, snap map[string]uint64) {
	for name, v := range snap {
		acc[name] += v
	}
}

// Fprint writes a sorted, aligned table of a snapshot — the rendering
// behind the cmds' -counters flag.
func Fprint(w io.Writer, snap map[string]uint64) {
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "  %-24s %12d\n", name, snap[name])
	}
}
