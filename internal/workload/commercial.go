package workload

import (
	"math/rand"

	"tokencmp/internal/cpu"
	"tokencmp/internal/mem"
	"tokencmp/internal/sim"
)

// CommercialParams shapes a synthetic surrogate for one of the paper's
// commercial macro-benchmarks. Each processor executes transactions; a
// transaction mixes instruction fetches over a shared read-only code
// footprint, private-data accesses, read-mostly shared reads, migratory
// read-modify-writes, and lock-protected critical sections over shared
// records. The knobs control the sharing-miss profile the coherence
// protocol sees, which is what differentiates DirectoryCMP (indirection
// per sharing miss) from TokenCMP (direct broadcast).
type CommercialParams struct {
	Name string

	TxnsPerProc int

	IFetchPerTxn int
	InstrBlocks  int

	PrivatePerTxn        int
	PrivateWriteFrac     float64
	PrivateBlocksPerProc int

	SharedReadPerTxn int
	SharedBlocks     int

	// ScanPerTxn accesses walk a large per-processor region that exceeds
	// the L2, generating capacity misses and dirty writebacks (commercial
	// working sets dwarf the 8 MB L2).
	ScanPerTxn    int
	ScanBlocks    int
	ScanWriteFrac float64

	MigratoryPerTxn int // read-modify-write a shared record (unlocked)
	MigratoryBlocks int

	LockedSectionsPerTxn int
	Locks                int
	RecordsPerCS         int
	RecordBlocks         int

	ThinkPerOp sim.Time
}

// OLTP models the DB2/TPC-C workload: dominated by migratory
// read-modify-write sharing and contended locks — the profile for which
// the paper reports TokenCMP's largest gain (50%).
func OLTP() CommercialParams {
	return CommercialParams{
		Name:                 "OLTP",
		TxnsPerProc:          40,
		IFetchPerTxn:         10,
		InstrBlocks:          3072,
		PrivatePerTxn:        14,
		PrivateWriteFrac:     0.3,
		PrivateBlocksPerProc: 3072,
		SharedReadPerTxn:     3,
		SharedBlocks:         512,
		ScanPerTxn:           4,
		ScanBlocks:           2048,
		ScanWriteFrac:        0.4,
		MigratoryPerTxn:      6,
		MigratoryBlocks:      96,
		LockedSectionsPerTxn: 2,
		Locks:                24,
		RecordsPerCS:         2,
		RecordBlocks:         128,
		ThinkPerOp:           sim.NS(6),
	}
}

// Apache models static web serving: more read-only sharing, fewer
// migratory writes (paper gain: 29%).
func Apache() CommercialParams {
	return CommercialParams{
		Name:                 "Apache",
		TxnsPerProc:          40,
		IFetchPerTxn:         14,
		InstrBlocks:          4096,
		PrivatePerTxn:        22,
		PrivateWriteFrac:     0.25,
		PrivateBlocksPerProc: 3584,
		SharedReadPerTxn:     8,
		SharedBlocks:         768,
		ScanPerTxn:           5,
		ScanBlocks:           2048,
		ScanWriteFrac:        0.4,
		MigratoryPerTxn:      2,
		MigratoryBlocks:      64,
		LockedSectionsPerTxn: 1,
		Locks:                48,
		RecordsPerCS:         1,
		RecordBlocks:         96,
		ThinkPerOp:           sim.NS(6),
	}
}

// SPECjbb models the Java middleware workload: mostly warehouse-private
// data with modest sharing (paper gain: 10%).
func SPECjbb() CommercialParams {
	return CommercialParams{
		Name:                 "SPECjbb",
		TxnsPerProc:          40,
		IFetchPerTxn:         12,
		InstrBlocks:          4096,
		PrivatePerTxn:        64,
		PrivateWriteFrac:     0.4,
		PrivateBlocksPerProc: 4096,
		SharedReadPerTxn:     1,
		SharedBlocks:         256,
		ScanPerTxn:           6,
		ScanBlocks:           2048,
		ScanWriteFrac:        0.4,
		MigratoryPerTxn:      1,
		MigratoryBlocks:      48,
		LockedSectionsPerTxn: 1,
		Locks:                96,
		RecordsPerCS:         1,
		RecordBlocks:         64,
		ThinkPerOp:           sim.NS(6),
	}
}

// Commercial address-space layout.
const (
	instrBase   mem.Addr = 0x04_0000_0000
	privateBase mem.Addr = 0x08_0000_0000
	sharedBase  mem.Addr = 0x0C_0000_0000
	migBase     mem.Addr = 0x10_0000_0000
	lockBase    mem.Addr = 0x14_0000_0000
	recordBase  mem.Addr = 0x18_0000_0000
	scanBase    mem.Addr = 0x1C_0000_0000
)

func blockAddr(base mem.Addr, i int) mem.Addr { return base + mem.Addr(i)*mem.BlockSize }

// CommercialProgram is one processor's surrogate thread. It compiles each
// transaction into a queue of primitive steps; lock acquisition expands
// into a test-and-test-and-set loop at run time.
type CommercialProgram struct {
	p    CommercialParams
	proc int
	rng  *rand.Rand
	mon  *LockMonitor

	txns  int
	queue []step

	// lock-acquire sub-machine
	lockState lockingState
	lock      mem.Addr

	// migratory RMW sub-machine: remembered loaded value
	pendingStore mem.Addr
	seq          uint64
	scanPos      int
}

type stepKind int

const (
	stThink stepKind = iota
	stLoad
	stStore
	stIFetch
	stRMW     // load then store to Addr
	stAcquire // TTS acquire of Addr
	stRelease
)

type step struct {
	kind stepKind
	addr mem.Addr
	dur  sim.Time
}

// NewCommercialProgram builds processor proc's thread.
func NewCommercialProgram(p CommercialParams, proc int, seed int64, mon *LockMonitor) *CommercialProgram {
	return &CommercialProgram{
		p:    p,
		proc: proc,
		rng:  rand.New(rand.NewSource(seed*3_000_017 + int64(proc)*131 + 13)),
		mon:  mon,
	}
}

// Transactions reports completed transactions.
func (c *CommercialProgram) Transactions() int { return c.txns }

// genTxn compiles one transaction into steps.
func (c *CommercialProgram) genTxn() {
	p := c.p
	add := func(s step) { c.queue = append(c.queue, s) }
	think := func() { add(step{kind: stThink, dur: p.ThinkPerOp}) }

	for i := 0; i < p.IFetchPerTxn; i++ {
		add(step{kind: stIFetch, addr: blockAddr(instrBase, c.rng.Intn(p.InstrBlocks))})
	}
	for i := 0; i < p.PrivatePerTxn; i++ {
		a := blockAddr(privateBase, c.proc*p.PrivateBlocksPerProc+c.rng.Intn(p.PrivateBlocksPerProc))
		if c.rng.Float64() < p.PrivateWriteFrac {
			add(step{kind: stStore, addr: a})
		} else {
			add(step{kind: stLoad, addr: a})
		}
		think()
	}
	for i := 0; i < p.SharedReadPerTxn; i++ {
		add(step{kind: stLoad, addr: blockAddr(sharedBase, c.rng.Intn(p.SharedBlocks))})
		think()
	}
	for i := 0; i < p.ScanPerTxn; i++ {
		c.scanPos = (c.scanPos + 1 + c.rng.Intn(64)) % p.ScanBlocks
		a := blockAddr(scanBase, c.proc*p.ScanBlocks+c.scanPos)
		if c.rng.Float64() < p.ScanWriteFrac {
			add(step{kind: stStore, addr: a})
		} else {
			add(step{kind: stLoad, addr: a})
		}
	}
	for i := 0; i < p.MigratoryPerTxn; i++ {
		add(step{kind: stRMW, addr: blockAddr(migBase, c.rng.Intn(p.MigratoryBlocks))})
		think()
	}
	for i := 0; i < p.LockedSectionsPerTxn; i++ {
		lock := blockAddr(lockBase, c.rng.Intn(p.Locks))
		add(step{kind: stAcquire, addr: lock})
		for r := 0; r < p.RecordsPerCS; r++ {
			add(step{kind: stRMW, addr: blockAddr(recordBase, c.rng.Intn(p.RecordBlocks))})
		}
		add(step{kind: stRelease, addr: lock})
		think()
	}
}

// Next implements cpu.Program.
func (c *CommercialProgram) Next(now sim.Time, last uint64) cpu.Action {
	// Lock-acquire sub-machine in progress?
	switch c.lockState {
	case lsTest:
		c.lockState = lsSwap
		return cpu.LoadOf(c.lock)
	case lsSwap:
		if last != 0 {
			return cpu.LoadOf(c.lock)
		}
		c.lockState = lsHold
		return cpu.Swap(c.lock, 1)
	case lsHold:
		if last != 0 {
			c.lockState = lsSwap
			return cpu.LoadOf(c.lock)
		}
		if c.mon != nil {
			c.mon.Enter(c.lock, c.proc)
		}
		c.lockState = lsStart // acquired; fall through to the queue
	}
	// Pending second half of an RMW?
	if c.pendingStore != 0 {
		a := c.pendingStore
		c.pendingStore = 0
		c.seq++
		return cpu.StoreOf(a, c.seq<<16|uint64(c.proc))
	}

	for {
		if len(c.queue) == 0 {
			if c.txns >= c.p.TxnsPerProc {
				return cpu.Done()
			}
			c.txns++
			c.genTxn()
		}
		s := c.queue[0]
		c.queue = c.queue[1:]
		switch s.kind {
		case stThink:
			return cpu.Think(s.dur)
		case stLoad:
			return cpu.LoadOf(s.addr)
		case stStore:
			c.seq++
			return cpu.StoreOf(s.addr, c.seq<<16|uint64(c.proc))
		case stIFetch:
			return cpu.Fetch(s.addr)
		case stRMW:
			c.pendingStore = s.addr
			return cpu.LoadOf(s.addr)
		case stAcquire:
			c.lock = s.addr
			c.lockState = lsSwap
			return cpu.LoadOf(c.lock)
		case stRelease:
			if c.mon != nil {
				c.mon.Exit(s.addr, c.proc)
			}
			return cpu.StoreOf(s.addr, 0)
		}
	}
}

// CommercialPrograms builds one thread per processor.
func CommercialPrograms(p CommercialParams, procs int, seed int64) ([]cpu.Program, *LockMonitor) {
	mon := NewLockMonitor()
	out := make([]cpu.Program, procs)
	for i := range out {
		out[i] = NewCommercialProgram(p, i, seed, mon)
	}
	return out, mon
}
