package workload

import (
	"testing"

	"tokencmp/internal/cpu"
	"tokencmp/internal/mem"
	"tokencmp/internal/sim"
)

// fakeMemory runs a Program against an instantly-coherent memory,
// checking the program logic independent of any protocol.
type fakeMemory struct {
	values map[mem.Block]uint64
	ops    int
}

func runProgram(t *testing.T, p cpu.Program, fm *fakeMemory, limit int) bool {
	t.Helper()
	if fm.values == nil {
		fm.values = map[mem.Block]uint64{}
	}
	var last uint64
	for i := 0; i < limit; i++ {
		act := p.Next(sim.Time(i), last)
		last = 0
		b := mem.BlockOf(act.Addr)
		switch act.Kind {
		case cpu.ActThink:
		case cpu.ActLoad, cpu.ActIFetch:
			last = fm.values[b]
			fm.ops++
		case cpu.ActStore:
			fm.values[b] = act.Value
			fm.ops++
		case cpu.ActAtomic:
			last = fm.values[b]
			fm.values[b] = act.Value
			fm.ops++
		case cpu.ActDone:
			return true
		}
	}
	return false
}

func TestLockingProgramCompletes(t *testing.T) {
	cfg := DefaultLocking(4)
	cfg.Acquires = 10
	mon := NewLockMonitor()
	p := NewLockingProgram(cfg, 0, 1, mon)
	fm := &fakeMemory{}
	if !runProgram(t, p, fm, 100000) {
		t.Fatal("program did not finish")
	}
	if p.Acquired() != 10 {
		t.Errorf("acquired = %d, want 10", p.Acquired())
	}
	if mon.Acquires != 10 || len(mon.Violations) != 0 {
		t.Errorf("monitor: %d acquires, %d violations", mon.Acquires, len(mon.Violations))
	}
	// All locks must be free at the end.
	for b, v := range fm.values {
		if v != 0 {
			t.Errorf("lock %v left held (%d)", b, v)
		}
	}
}

func TestLockingAvoidsLastLock(t *testing.T) {
	cfg := DefaultLocking(8)
	p := NewLockingProgram(cfg, 0, 1, nil)
	last := mem.Addr(0)
	for i := 0; i < 50; i++ {
		p.pickLock()
		if p.lock == last && cfg.Locks > 1 {
			t.Fatal("picked the same lock twice in a row")
		}
		last = p.lock
	}
}

func TestLockMonitorDetectsViolation(t *testing.T) {
	mon := NewLockMonitor()
	mon.Enter(0x100, 0)
	mon.Enter(0x100, 1) // second holder: violation
	if len(mon.Violations) != 1 {
		t.Fatalf("violations = %d, want 1", len(mon.Violations))
	}
}

func TestBarrierProgramSoloCompletes(t *testing.T) {
	cfg := DefaultBarrier(1, 0)
	cfg.Iterations = 5
	p := NewBarrierProgram(cfg, 0, 1, nil)
	fm := &fakeMemory{}
	if !runProgram(t, p, fm, 100000) {
		t.Fatal("single-processor barrier did not finish")
	}
	if p.Rounds() != 5 {
		t.Errorf("rounds = %d, want 5", p.Rounds())
	}
}

func TestBarrierProgramsInterleaved(t *testing.T) {
	// Round-robin two barrier threads against shared fake memory: the
	// sense-reversing protocol must let both finish every round.
	cfg := DefaultBarrier(2, 0)
	cfg.Iterations = 4
	mon := NewLockMonitor()
	p0 := NewBarrierProgram(cfg, 0, 1, mon)
	p1 := NewBarrierProgram(cfg, 1, 1, mon)
	fm := &fakeMemory{values: map[mem.Block]uint64{}}
	var last0, last1 uint64
	done0, done1 := false, false
	step := func(p *BarrierProgram, last *uint64, done *bool) {
		if *done {
			return
		}
		act := p.Next(0, *last)
		*last = 0
		b := mem.BlockOf(act.Addr)
		switch act.Kind {
		case cpu.ActLoad:
			*last = fm.values[b]
		case cpu.ActStore:
			fm.values[b] = act.Value
		case cpu.ActAtomic:
			*last = fm.values[b]
			fm.values[b] = act.Value
		case cpu.ActDone:
			*done = true
		}
	}
	for i := 0; i < 100000 && !(done0 && done1); i++ {
		step(p0, &last0, &done0)
		step(p1, &last1, &done1)
	}
	if !done0 || !done1 {
		t.Fatalf("barrier threads stuck (rounds %d/%d)", p0.Rounds(), p1.Rounds())
	}
	if len(mon.Violations) != 0 {
		t.Errorf("violations: %v", mon.Violations)
	}
}

func TestBarrierJitterBounded(t *testing.T) {
	cfg := DefaultBarrier(2, sim.NS(1000))
	p := NewBarrierProgram(cfg, 0, 1, nil)
	for i := 0; i < 1000; i++ {
		w := p.work()
		if w < sim.NS(2000) || w > sim.NS(4000) {
			t.Fatalf("work %v outside 3000±1000 ns", w)
		}
	}
}

func TestCommercialProgramCompletes(t *testing.T) {
	for _, params := range []CommercialParams{OLTP(), Apache(), SPECjbb()} {
		params.TxnsPerProc = 3
		mon := NewLockMonitor()
		p := NewCommercialProgram(params, 0, 1, mon)
		fm := &fakeMemory{}
		if !runProgram(t, p, fm, 1000000) {
			t.Fatalf("%s program did not finish", params.Name)
		}
		if p.Transactions() != 3 {
			t.Errorf("%s transactions = %d, want 3", params.Name, p.Transactions())
		}
		if len(mon.Violations) != 0 {
			t.Errorf("%s violations: %v", params.Name, mon.Violations)
		}
		if fm.ops == 0 {
			t.Errorf("%s issued no memory operations", params.Name)
		}
	}
}

func TestCommercialDeterministicPerSeed(t *testing.T) {
	gen := func(seed int64) []cpu.Action {
		p := NewCommercialProgram(OLTP(), 2, seed, nil)
		var acts []cpu.Action
		var last uint64
		for i := 0; i < 200; i++ {
			a := p.Next(0, last)
			last = 0
			acts = append(acts, a)
			if a.Kind == cpu.ActDone {
				break
			}
		}
		return acts
	}
	a, b := gen(7), gen(7)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("action %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := gen(8)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestCommercialAddressRegionsDisjoint(t *testing.T) {
	p := NewCommercialProgram(OLTP(), 1, 1, nil)
	var last uint64
	private := map[mem.Block]bool{}
	for i := 0; i < 5000; i++ {
		a := p.Next(0, last)
		last = 0
		if a.Kind == cpu.ActDone {
			break
		}
		if a.Kind == cpu.ActStore || a.Kind == cpu.ActLoad {
			if a.Addr >= privateBase && a.Addr < sharedBase {
				private[mem.BlockOf(a.Addr)] = true
			}
		}
	}
	// Proc 1's private blocks must not collide with proc 0's range.
	for b := range private {
		idx := int(b.Addr()-privateBase) / mem.BlockSize
		if idx < OLTP().PrivateBlocksPerProc {
			t.Fatalf("proc 1 touched proc 0's private block %v", b)
		}
	}
}
