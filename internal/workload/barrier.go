package workload

import (
	"math/rand"

	"tokencmp/internal/cpu"
	"tokencmp/internal/mem"
	"tokencmp/internal/sim"
)

// BarrierConfig parameterizes the barrier micro-benchmark (Table 2):
// processors perform local work, then pass a sense-reversing barrier
// built from a lock-protected counter in one cache block and a sense flag
// in another, repeating for Iterations rounds.
type BarrierConfig struct {
	Iterations int
	Work       sim.Time // local work per round (3000 ns in the paper)
	// Jitter adds U(-Jitter, +Jitter) to each round's work (the paper
	// uses ±1000 ns in Table 4's right column; 0 disables).
	Jitter sim.Time
	Procs  int
	Base   mem.Addr
}

// DefaultBarrier returns the Table 2/Table 4 parameters.
func DefaultBarrier(procs int, jitter sim.Time) BarrierConfig {
	return BarrierConfig{
		Iterations: 20,
		Work:       sim.NS(3000),
		Jitter:     jitter,
		Procs:      procs,
		Base:       0x200000,
	}
}

func (c BarrierConfig) lockAddr() mem.Addr  { return c.Base }
func (c BarrierConfig) countAddr() mem.Addr { return c.Base + mem.BlockSize }
func (c BarrierConfig) flagAddr() mem.Addr  { return c.Base + 2*mem.BlockSize }

type barrierState int

const (
	bsWork barrierState = iota
	bsLockTest
	bsLockSwap
	bsLockEntered
	bsGotCount
	bsStoredCount // non-last: release next
	bsReleasedSpin
	bsSpin
	bsLastZeroed  // last proc: stored zero count, flip flag next
	bsLastFlipped // flag stored, release lock
	bsLastReleased
)

// BarrierProgram is one processor's barrier thread.
type BarrierProgram struct {
	cfg   BarrierConfig
	proc  int
	rng   *rand.Rand
	state barrierState
	round int
	sense uint64
	count uint64
	mon   *LockMonitor
}

// NewBarrierProgram builds the thread for processor proc.
func NewBarrierProgram(cfg BarrierConfig, proc int, seed int64, mon *LockMonitor) *BarrierProgram {
	return &BarrierProgram{
		cfg:   cfg,
		proc:  proc,
		rng:   rand.New(rand.NewSource(seed*2_000_003 + int64(proc) + 11)),
		sense: 1,
		mon:   mon,
	}
}

// Rounds reports completed barrier rounds.
func (p *BarrierProgram) Rounds() int { return p.round }

func (p *BarrierProgram) work() sim.Time {
	w := p.cfg.Work
	if p.cfg.Jitter > 0 {
		w += sim.Time(p.rng.Int63n(int64(2*p.cfg.Jitter)+1)) - p.cfg.Jitter
	}
	if w < 0 {
		w = 0
	}
	return w
}

// Next implements cpu.Program.
func (p *BarrierProgram) Next(now sim.Time, last uint64) cpu.Action {
	cfg := p.cfg
	switch p.state {
	case bsWork:
		p.state = bsLockTest
		return cpu.Think(p.work())
	case bsLockTest:
		p.state = bsLockSwap
		return cpu.LoadOf(cfg.lockAddr())
	case bsLockSwap:
		if last != 0 {
			return cpu.LoadOf(cfg.lockAddr())
		}
		p.state = bsLockEntered
		return cpu.Swap(cfg.lockAddr(), 1)
	case bsLockEntered:
		if last != 0 {
			p.state = bsLockSwap
			return cpu.LoadOf(cfg.lockAddr())
		}
		if p.mon != nil {
			p.mon.Enter(cfg.lockAddr(), p.proc)
		}
		p.state = bsGotCount
		return cpu.LoadOf(cfg.countAddr())
	case bsGotCount:
		p.count = last + 1
		if int(p.count) == cfg.Procs {
			p.state = bsLastZeroed
			return cpu.StoreOf(cfg.countAddr(), 0)
		}
		p.state = bsStoredCount
		return cpu.StoreOf(cfg.countAddr(), p.count)
	case bsStoredCount:
		if p.mon != nil {
			p.mon.Exit(cfg.lockAddr(), p.proc)
		}
		p.state = bsReleasedSpin
		return cpu.StoreOf(cfg.lockAddr(), 0)
	case bsReleasedSpin:
		p.state = bsSpin
		return cpu.LoadOf(cfg.flagAddr())
	case bsSpin:
		if last != p.sense {
			return cpu.LoadOf(cfg.flagAddr())
		}
		return p.passBarrier()
	case bsLastZeroed:
		p.state = bsLastFlipped
		return cpu.StoreOf(cfg.flagAddr(), p.sense)
	case bsLastFlipped:
		if p.mon != nil {
			p.mon.Exit(cfg.lockAddr(), p.proc)
		}
		p.state = bsLastReleased
		return cpu.StoreOf(cfg.lockAddr(), 0)
	case bsLastReleased:
		return p.passBarrier()
	default:
		panic("barrier: bad state")
	}
}

func (p *BarrierProgram) passBarrier() cpu.Action {
	p.round++
	p.sense = 1 - p.sense
	if p.round >= p.cfg.Iterations {
		return cpu.Done()
	}
	p.state = bsLockTest
	return cpu.Think(p.work())
}

// BarrierPrograms builds one thread per processor.
func BarrierPrograms(cfg BarrierConfig, seed int64) ([]cpu.Program, *LockMonitor) {
	mon := NewLockMonitor()
	out := make([]cpu.Program, cfg.Procs)
	for i := range out {
		out[i] = NewBarrierProgram(cfg, i, seed, mon)
	}
	return out, mon
}
