// Package workload builds the paper's benchmark programs (Table 2): the
// locking and barrier micro-benchmarks, implemented exactly as described,
// and synthetic surrogates for the Wisconsin Commercial Workload Suite
// macro-benchmarks (OLTP, Apache, SPECjbb) — see DESIGN.md §4 for the
// substitution rationale.
package workload

import (
	"fmt"
	"math/rand"

	"tokencmp/internal/cpu"
	"tokencmp/internal/mem"
	"tokencmp/internal/sim"
)

// LockMonitor asserts mutual exclusion across all processors sharing a
// lock set. The simulation engine is single-threaded, so plain counters
// suffice; callbacks execute in completion order.
type LockMonitor struct {
	holders map[mem.Addr]int
	// Violations records mutual-exclusion failures (protocol bugs).
	Violations []string
	// Acquires counts successful lock acquisitions.
	Acquires uint64
}

// NewLockMonitor returns an empty monitor.
func NewLockMonitor() *LockMonitor {
	return &LockMonitor{holders: make(map[mem.Addr]int)}
}

// Enter registers a successful acquire.
func (m *LockMonitor) Enter(lock mem.Addr, proc int) {
	m.holders[lock]++
	m.Acquires++
	if m.holders[lock] != 1 {
		m.Violations = append(m.Violations,
			fmt.Sprintf("proc %d entered lock %#x with %d holders", proc, uint64(lock), m.holders[lock]))
	}
}

// Exit registers a release.
func (m *LockMonitor) Exit(lock mem.Addr, proc int) {
	m.holders[lock]--
	if m.holders[lock] != 0 {
		m.Violations = append(m.Violations,
			fmt.Sprintf("proc %d exited lock %#x leaving %d holders", proc, uint64(lock), m.holders[lock]))
	}
}

// LockingConfig parameterizes the locking micro-benchmark: each
// processor thinks for Think, acquires a random lock (different from the
// last lock acquired) with test-and-test-and-set, holds it for Hold, and
// repeats until it has performed Acquires acquisitions.
type LockingConfig struct {
	Locks    int
	Acquires int // per processor
	Think    sim.Time
	Hold     sim.Time
	Base     mem.Addr // first lock's address; locks occupy one block each
}

// DefaultLocking returns the Table 2 parameters with the given lock
// count (contention is varied by changing the number of locks).
func DefaultLocking(locks int) LockingConfig {
	return LockingConfig{
		Locks:    locks,
		Acquires: 64,
		Think:    sim.NS(10),
		Hold:     sim.NS(10),
		Base:     0x100000,
	}
}

// LockAddr returns the address of lock i.
func (c LockingConfig) LockAddr(i int) mem.Addr {
	return c.Base + mem.Addr(i)*mem.BlockSize
}

type lockingState int

const (
	lsStart    lockingState = iota
	lsTest                  // think done: start the spin (load the lock word)
	lsSwap                  // load returned: maybe attempt test-and-set
	lsHold                  // swap returned: maybe enter the critical section
	lsRelease               // hold time elapsed: store zero
	lsReleased              // release store completed: credit and loop
)

// LockingProgram is one processor's locking micro-benchmark thread.
type LockingProgram struct {
	cfg      LockingConfig
	proc     int
	rng      *rand.Rand
	mon      *LockMonitor
	state    lockingState
	lock     mem.Addr
	lastLock int
	acquired int
}

// NewLockingProgram builds the thread for processor proc. All threads
// must share mon.
func NewLockingProgram(cfg LockingConfig, proc int, seed int64, mon *LockMonitor) *LockingProgram {
	return &LockingProgram{
		cfg:      cfg,
		proc:     proc,
		rng:      rand.New(rand.NewSource(seed*1_000_003 + int64(proc) + 7)),
		mon:      mon,
		lastLock: -1,
		state:    lsStart,
	}
}

// Acquired reports completed acquire/release cycles.
func (p *LockingProgram) Acquired() int { return p.acquired }

// pickLock chooses a random lock different from the last one acquired.
func (p *LockingProgram) pickLock() {
	n := p.cfg.Locks
	i := p.rng.Intn(n)
	if n > 1 && i == p.lastLock {
		i = (i + 1 + p.rng.Intn(n-1)) % n
	}
	p.lastLock = i
	p.lock = p.cfg.LockAddr(i)
}

// Next implements cpu.Program.
func (p *LockingProgram) Next(now sim.Time, last uint64) cpu.Action {
	switch p.state {
	case lsStart:
		p.pickLock()
		p.state = lsTest
		return cpu.Think(p.cfg.Think)
	case lsTest:
		// Test phase of test-and-test-and-set: spin on loads.
		p.state = lsSwap
		return cpu.LoadOf(p.lock)
	case lsSwap:
		if last != 0 {
			// Lock held: keep spinning.
			return cpu.LoadOf(p.lock)
		}
		p.state = lsHold
		return cpu.Swap(p.lock, 1)
	case lsHold:
		if last != 0 {
			// Lost the race: back to the test phase.
			p.state = lsSwap
			return cpu.LoadOf(p.lock)
		}
		if p.mon != nil {
			p.mon.Enter(p.lock, p.proc)
		}
		p.state = lsRelease
		return cpu.Think(p.cfg.Hold)
	case lsRelease:
		p.state = lsReleased
		return cpu.StoreOf(p.lock, 0)
	case lsReleased:
		if p.mon != nil {
			p.mon.Exit(p.lock, p.proc)
		}
		p.acquired++
		if p.acquired >= p.cfg.Acquires {
			return cpu.Done()
		}
		p.pickLock()
		p.state = lsTest
		return cpu.Think(p.cfg.Think)
	default:
		panic("locking: bad state")
	}
}

// LockingPrograms builds one thread per processor, sharing a monitor.
func LockingPrograms(cfg LockingConfig, procs int, seed int64) ([]cpu.Program, *LockMonitor) {
	mon := NewLockMonitor()
	out := make([]cpu.Program, procs)
	for i := range out {
		out[i] = NewLockingProgram(cfg, i, seed, mon)
	}
	return out, mon
}
