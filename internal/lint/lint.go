// Package lint runs the simlint analyzers over loaded packages and
// applies simlint:ignore suppression directives.
//
// The three analyzers encode the simulator's two load-bearing contracts
// as compile-time checks (see the package docs of msgown, simdet and
// schedalloc). This package is the thin shared layer between the
// cmd/simlint driver and the analysistest harness: it applies a list of
// analyzers to a list of packages, collects diagnostics in positional
// order, and drops any diagnostic suppressed by a directive comment.
//
// # Suppression directives
//
//	foo()            //simlint:ignore simdet wall-clock throughput only
//	//simlint:ignore msgown,schedalloc justification
//	bar()
//
// A directive names one or more analyzers (comma-separated; everything
// after the names is free-form justification) and suppresses their
// diagnostics on its own line, or — when the comment stands alone — on
// the line below. Suppressions are deliberate, reviewable exceptions:
// the mc checker's wall-clock states/sec reporting is the canonical
// example.
package lint

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"tokencmp/internal/lint/analysis"
	"tokencmp/internal/lint/load"
)

// A Finding is one diagnostic from one analyzer, positioned.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// Run applies analyzers to pkgs and returns the unsuppressed findings
// in (file, line, column, analyzer) order. Analyzer Run errors are
// returned as findings against the package so a driver never silently
// drops a broken analyzer.
func Run(fset *token.FileSet, pkgs []*load.Package, analyzers []*analysis.Analyzer) []Finding {
	var findings []Finding
	for _, pkg := range pkgs {
		ignores := ignoresIn(fset, pkg.Files)
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     pkg.Files,
				Pkg:       pkg.Pkg,
				TypesInfo: pkg.Info,
			}
			pass.Report = func(d analysis.Diagnostic) {
				pos := fset.Position(d.Pos)
				if ignores.suppressed(a.Name, pos) {
					return
				}
				findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
			}
			if _, err := a.Run(pass); err != nil {
				findings = append(findings, Finding{
					Analyzer: a.Name,
					Pos:      token.Position{Filename: pkg.ImportPath},
					Message:  "analyzer error: " + err.Error(),
				})
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings
}

// ignoreSet records, per file and line, which analyzers are suppressed.
type ignoreSet map[string]map[int][]string

func (s ignoreSet) suppressed(analyzer string, pos token.Position) bool {
	lines := s[pos.Filename]
	for _, name := range lines[pos.Line] {
		if name == analyzer || name == "all" {
			return true
		}
	}
	return false
}

const directive = "simlint:ignore"

// ignoresIn scans file comments for simlint:ignore directives. A
// directive comment on a line with code suppresses that line; a
// stand-alone directive comment suppresses the first code line after
// the comment group.
func ignoresIn(fset *token.FileSet, files []*ast.File) ignoreSet {
	set := make(ignoreSet)
	add := func(file string, line int, names []string) {
		m := set[file]
		if m == nil {
			m = make(map[int][]string)
			set[file] = m
		}
		m[line] = append(m[line], names...)
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, ok := parseDirective(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Slash)
				end := fset.Position(cg.End())
				// Heuristic for "stand-alone comment": the comment
				// starts at the beginning of its line (nothing but
				// whitespace before it would give a column near 1 only
				// for unindented comments, so compare against the
				// group's own extent instead): a directive whose line
				// holds no code applies to the line after the group.
				if standalone(fset, f, pos.Line) {
					add(pos.Filename, end.Line+1, names)
				} else {
					add(pos.Filename, pos.Line, names)
				}
			}
		}
	}
	return set
}

// standalone reports whether line holds only comment text — i.e. no
// non-comment token of f is positioned on it.
func standalone(fset *token.FileSet, f *ast.File, line int) bool {
	found := false
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || found {
			return false
		}
		if _, isComment := n.(*ast.Comment); isComment {
			return false
		}
		if _, isGroup := n.(*ast.CommentGroup); isGroup {
			return false
		}
		// Only leaf-ish tokens matter; an enclosing node spans many lines.
		switch n.(type) {
		case *ast.Ident, *ast.BasicLit:
			if fset.Position(n.Pos()).Line == line {
				found = true
				return false
			}
		}
		return true
	})
	return !found
}

// parseDirective extracts the analyzer names from a
// "//simlint:ignore name1,name2 justification" comment.
func parseDirective(text string) ([]string, bool) {
	i := strings.Index(text, directive)
	if i < 0 {
		return nil, false
	}
	rest := strings.TrimSpace(text[i+len(directive):])
	if rest == "" {
		return []string{"all"}, true
	}
	fields := strings.Fields(rest)
	var names []string
	for _, n := range strings.Split(fields[0], ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	if len(names) == 0 {
		return []string{"all"}, true
	}
	return names, true
}
