// Package simdet implements the simlint determinism analyzer for the
// simulator packages.
//
// The repo's results are pinned byte-for-byte (golden figure files,
// exact model-checker state counts), so simulation code must not let
// any nondeterministic order or source reach them. simdet flags the
// three ways that happens in Go:
//
//   - Ranging over a map when the body's effects can reach results:
//     scheduling or sending (event order becomes map order), float
//     accumulation such as stats.Sample.Add (rounding becomes
//     order-dependent), writes to ordered output (fmt.Fprint* and
//     Buffer/Builder writes), appends to a slice declared outside the
//     loop, and calls to dynamic function values (completion callbacks
//     schedule events). Calls are resolved transitively within the
//     package, so a map-range that calls a local helper which Sends is
//     still caught. Two idioms stay clean by design: deleting from the
//     ranged map, and the collect-then-sort pattern (an append whose
//     slice is passed to sort/slices later in the same function).
//     Integer counter updates (Traffic.Add and friends) are commutative
//     and therefore allowed.
//
//   - time.Now, called or referenced: wall-clock time in simulation
//     code makes runs irreproducible, and storing time.Now behind a
//     function value smuggles it in just as effectively as calling it.
//     (The mc checker's states/sec throughput report is the sanctioned
//     per-line exception, suppressed with a simlint:ignore directive —
//     it measures the checker, not the model. The serving layer in
//     internal/simd is the sanctioned per-package exception, listed in
//     wallClockSanctioned — deadlines and TTLs are wall-clock policy
//     there by design, and no simulation result depends on them.)
//
//   - Global math/rand (and math/rand/v2) functions: the global source
//     is process-seeded. Components draw from their own seeded
//     *rand.Rand (rand.New(rand.NewSource(seed...)) is fine, and is the
//     idiom everywhere in internal/workload).
//
// The analyzer applies to tokencmp/internal/... packages only (the
// analyzers' own testdata excepted); command wrappers and examples may
// use wall-clock time freely.
package simdet

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"tokencmp/internal/lint/analysis"
	"tokencmp/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "simdet",
	Doc:  "flag nondeterminism sources in simulator packages: effectful map iteration, time.Now, global math/rand",
	Run:  run,
}

// wallClockSanctioned lists the packages allowed to read the wall
// clock, each with the justification that makes the exception sound.
// The bar for an entry: the package must sit outside the deterministic
// core, and no simulation result may depend on what the clock says —
// only serving policy (deadlines, TTLs, backoff hints). The map-range
// and math/rand checks still apply to sanctioned packages in full.
var wallClockSanctioned = map[string]string{
	"tokencmp/internal/simd": "serving layer: deadlines, cache TTLs, Retry-After hints, breaker cooldowns, and the durable store's persisted absolute expiries are wall-clock policy by design; response bodies are a pure function of the request's cache key, and the on-disk entry frame carries its own expiry timestamp so recovery never consults file mtimes",
}

func run(pass *analysis.Pass) (any, error) {
	path := pass.Pkg.Path()
	if !strings.HasPrefix(path, "tokencmp/internal/") {
		return nil, nil
	}
	if strings.HasPrefix(path, "tokencmp/internal/lint") && !strings.Contains(path, "/testdata/") {
		return nil, nil
	}

	a := &pkgAnalysis{pass: pass, clockExempt: wallClockSanctioned[path] != ""}
	a.buildEffectSummary()
	for _, f := range pass.Files {
		// callFuns records expressions serving as the function operand
		// of a call, so a bare time.Now reference can be told apart
		// from a time.Now() call (Inspect visits the call first).
		callFuns := make(map[ast.Expr]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				callFuns[ast.Unparen(n.Fun)] = true
				a.checkClockAndRand(n)
			case *ast.SelectorExpr:
				a.checkClockRef(n, callFuns)
			case *ast.FuncDecl:
				if n.Body != nil {
					a.checkMapRanges(n)
				}
				return true
			}
			return true
		})
	}
	return nil, nil
}

type pkgAnalysis struct {
	pass *analysis.Pass
	// clockExempt is set for wallClockSanctioned packages: the
	// time.Now checks are skipped, everything else still runs.
	clockExempt bool
	// effectful holds the package's own functions that (transitively)
	// schedule, send, or update order-sensitive statistics.
	effectful map[*types.Func]bool
}

// checkClockAndRand flags time.Now and global math/rand calls anywhere
// in the package.
func (a *pkgAnalysis) checkClockAndRand(call *ast.CallExpr) {
	fn := lintutil.Callee(a.pass.TypesInfo, call)
	if fn == nil {
		return
	}
	if lintutil.IsFunc(fn, "time", "Now") {
		if !a.clockExempt {
			a.pass.Reportf(call.Pos(), "time.Now in simulation code: wall-clock time makes runs irreproducible — derive times from sim.Engine.Now")
		}
		return
	}
	if pkg := fn.Pkg(); pkg != nil && (pkg.Path() == "math/rand" || pkg.Path() == "math/rand/v2") {
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() != nil {
			return // methods on *rand.Rand are seeded by construction
		}
		if strings.HasPrefix(fn.Name(), "New") {
			return // rand.New(rand.NewSource(seed)) is the sanctioned idiom
		}
		a.pass.Reportf(call.Pos(), "global %s.%s is process-seeded and nondeterministic across runs — draw from a component-owned rand.New(rand.NewSource(seed))", pkg.Path(), fn.Name())
	}
}

// checkClockRef flags time.Now referenced as a function value rather
// than called — assigning it to a field or variable smuggles the wall
// clock into simulation code just as effectively as calling it.
func (a *pkgAnalysis) checkClockRef(sel *ast.SelectorExpr, callFuns map[ast.Expr]bool) {
	if a.clockExempt || callFuns[sel] {
		return
	}
	fn, ok := a.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || !lintutil.IsFunc(fn, "time", "Now") {
		return
	}
	a.pass.Reportf(sel.Pos(), "reference to time.Now in simulation code: storing the wall clock behind a function value makes runs irreproducible — derive times from sim.Engine.Now")
}

// seedEffect classifies calls that directly make map-iteration order
// observable in results. The returned reason is empty for harmless
// calls.
func (a *pkgAnalysis) seedEffect(call *ast.CallExpr) string {
	info := a.pass.TypesInfo
	fn := lintutil.Callee(info, call)
	if fn == nil {
		// Conversion or builtin?
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			if _, ok := info.Uses[fun].(*types.Builtin); ok {
				return "" // append handled separately; delete/len/cap are fine
			}
			if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
				return ""
			}
		default:
			if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
				return ""
			}
		}
		if _, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
			return "" // immediately-invoked literal: body is inspected anyway
		}
		return "calls a dynamic function value (completion callbacks schedule events)"
	}
	switch {
	case lintutil.MethodOn(fn, lintutil.SimPath, "Engine"):
		switch fn.Name() {
		case "Schedule", "ScheduleAt", "ScheduleCall", "ScheduleCallAt", "Stop":
			return "schedules events via Engine." + fn.Name()
		}
	case lintutil.MethodOn(fn, lintutil.NetworkPath, "Network"):
		switch fn.Name() {
		case "Send", "SendNew", "SendAfter", "Broadcast":
			return "sends messages via Network." + fn.Name()
		}
	case lintutil.IsMethod(fn, lintutil.StatsPath, "Sample", "Add"):
		return "accumulates into stats.Sample (float rounding is order-dependent)"
	case fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && (strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")):
		return "writes ordered output via fmt." + fn.Name()
	case lintutil.MethodOn(fn, "bytes", "Buffer") && strings.HasPrefix(fn.Name(), "Write"),
		lintutil.MethodOn(fn, "strings", "Builder") && strings.HasPrefix(fn.Name(), "Write"):
		return "writes ordered output"
	}
	return ""
}

// buildEffectSummary computes, by fixpoint over the package's static
// call graph, which package functions transitively reach a seed effect.
func (a *pkgAnalysis) buildEffectSummary() {
	info := a.pass.TypesInfo
	bodies := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range a.pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
				bodies[fn] = fd
			}
		}
	}
	a.effectful = make(map[*types.Func]bool)
	// Direct effects.
	for fn, fd := range bodies {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if a.effectful[fn] {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok {
				callee := lintutil.Callee(info, call)
				// Dynamic calls are only treated as effects at range
				// sites; for the summary, require a concrete seed so a
				// String() method calling an interface does not taint
				// its callers.
				if callee != nil && a.seedEffect(call) != "" {
					a.effectful[fn] = true
					return false
				}
			}
			return true
		})
	}
	// Propagate through same-package calls until stable.
	for changed := true; changed; {
		changed = false
		for fn, fd := range bodies {
			if a.effectful[fn] {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if a.effectful[fn] {
					return false
				}
				if call, ok := n.(*ast.CallExpr); ok {
					if callee := lintutil.Callee(info, call); callee != nil && a.effectful[callee] {
						a.effectful[fn] = true
						changed = true
						return false
					}
				}
				return true
			})
		}
	}
}

// checkMapRanges inspects every map-range in fd for effects that make
// iteration order observable.
func (a *pkgAnalysis) checkMapRanges(fd *ast.FuncDecl) {
	info := a.pass.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := info.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		a.checkMapRangeBody(fd, rng)
		return true
	})
}

func (a *pkgAnalysis) checkMapRangeBody(fd *ast.FuncDecl, rng *ast.RangeStmt) {
	info := a.pass.TypesInfo
	rangedObj := exprObj(info, rng.X)
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isDelete(info, n, rangedObj) {
				return true // draining the ranged map is order-independent
			}
			if reason := a.seedEffect(n); reason != "" {
				a.pass.Reportf(n.Pos(), "map iteration order reaches results: %s inside range over map — iterate a sorted key slice instead", reason)
				return true
			}
			if callee := lintutil.Callee(info, n); callee != nil && a.effectful[callee] {
				a.pass.Reportf(n.Pos(), "map iteration order reaches results: %s (transitively) schedules, sends, or updates order-sensitive statistics inside range over map — iterate a sorted key slice instead", callee.Name())
			}
		case *ast.AssignStmt:
			a.checkRangeAssign(fd, rng, n)
		}
		return true
	})
}

// checkRangeAssign flags appends to outer slices (unless sorted later)
// and float accumulation into outer variables.
func (a *pkgAnalysis) checkRangeAssign(fd *ast.FuncDecl, rng *ast.RangeStmt, as *ast.AssignStmt) {
	info := a.pass.TypesInfo
	for i, lhs := range as.Lhs {
		base := baseObj(info, lhs)
		if base == nil || declaredWithin(base, rng) {
			continue
		}
		// append to an outer slice?
		if i < len(as.Rhs) {
			if call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr); ok && isBuiltinNamed(info, call, "append") {
				if sortedAfter(info, fd, rng, base) {
					continue // collect-then-sort idiom
				}
				a.pass.Reportf(as.Pos(), "map iteration order reaches results: append to %s inside range over map without sorting it afterwards — sort the keys (or the result) for a deterministic order", base.Name())
				continue
			}
		}
		// Float accumulation in map order is rounding-order-dependent.
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			if basic, ok := base.Type().Underlying().(*types.Basic); ok && basic.Info()&types.IsFloat != 0 {
				a.pass.Reportf(as.Pos(), "map iteration order reaches results: float accumulation into %s inside range over map — iterate a sorted key slice instead", base.Name())
			}
		}
	}
}

// exprObj resolves e to a variable object if e is a plain (possibly
// selected) identifier.
func exprObj(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			return sel.Obj()
		}
		return info.Uses[e.Sel]
	}
	return nil
}

// baseObj resolves the root variable written by an assignment target.
func baseObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return info.Uses[x]
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[x]; ok {
				return sel.Obj()
			}
			return info.Uses[x.Sel]
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// declaredWithin reports whether obj's declaration lies inside n.
func declaredWithin(obj types.Object, n ast.Node) bool {
	return n.Pos() <= obj.Pos() && obj.Pos() < n.End()
}

func isBuiltinNamed(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// isDelete reports whether call is delete(rangedMap, ...).
func isDelete(info *types.Info, call *ast.CallExpr, ranged types.Object) bool {
	if !isBuiltinNamed(info, call, "delete") || len(call.Args) == 0 || ranged == nil {
		return false
	}
	return exprObj(info, call.Args[0]) == ranged
}

// sortedAfter reports whether obj is passed to a sort or slices
// function after the range statement within fd — the canonical
// collect-then-sort fix.
func sortedAfter(info *types.Info, fd *ast.FuncDecl, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		fn := lintutil.Callee(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if exprObj(info, arg) == obj {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
