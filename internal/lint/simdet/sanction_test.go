package simdet

import (
	"strings"
	"testing"
)

// TestWallClockSanctionScope pins the sanctioned wall-clock list: the
// serving layer and nothing else. Growing this list is a reviewable
// event — a new entry must be serving-side code whose results cannot
// depend on the clock, and the test forces that conversation. The
// durable result cache (PR 10) rides the same single sanction: its
// persistence layer lives inside internal/simd, and its on-disk
// frames carry their own absolute expiry timestamps, so recovery
// needs no file mtimes and no new sanctioned package.
func TestWallClockSanctionScope(t *testing.T) {
	want := map[string]bool{"tokencmp/internal/simd": true}
	for path, why := range wallClockSanctioned {
		if !want[path] {
			t.Errorf("unexpected wall-clock sanction for %s", path)
		}
		if strings.TrimSpace(why) == "" {
			t.Errorf("sanction for %s carries no justification", path)
		}
	}
	for path := range want {
		if wallClockSanctioned[path] == "" {
			t.Errorf("expected sanction for %s missing", path)
		}
	}
	// The persistence layer's clock use is part of the simd sanction's
	// contract: the justification must say how durability stays sound
	// (frame-internal expiries, not filesystem timestamps), so a later
	// edit that drops the rationale re-opens the review.
	why := wallClockSanctioned["tokencmp/internal/simd"]
	for _, must := range []string{"expir", "cache key", "mtime"} {
		if !strings.Contains(why, must) {
			t.Errorf("simd sanction justification no longer covers %q; it must explain the persistence layer's clock contract", must)
		}
	}
	// The deterministic core must never appear here: its wall-clock
	// exceptions are per-line simlint:ignore directives, reviewed one
	// call site at a time.
	for _, core := range []string{
		"tokencmp/internal/sim", "tokencmp/internal/machine",
		"tokencmp/internal/network", "tokencmp/internal/tokencmp",
		"tokencmp/internal/experiments", "tokencmp/internal/mc",
		"tokencmp/internal/workload", "tokencmp/internal/runner",
	} {
		if _, ok := wallClockSanctioned[core]; ok {
			t.Errorf("core simulation package %s must not be clock-sanctioned", core)
		}
	}
}
