package simdet

import (
	"strings"
	"testing"
)

// TestWallClockSanctionScope pins the sanctioned wall-clock list: the
// serving layer and nothing else. Growing this list is a reviewable
// event — a new entry must be serving-side code whose results cannot
// depend on the clock, and the test forces that conversation.
func TestWallClockSanctionScope(t *testing.T) {
	want := map[string]bool{"tokencmp/internal/simd": true}
	for path, why := range wallClockSanctioned {
		if !want[path] {
			t.Errorf("unexpected wall-clock sanction for %s", path)
		}
		if strings.TrimSpace(why) == "" {
			t.Errorf("sanction for %s carries no justification", path)
		}
	}
	for path := range want {
		if wallClockSanctioned[path] == "" {
			t.Errorf("expected sanction for %s missing", path)
		}
	}
	// The deterministic core must never appear here: its wall-clock
	// exceptions are per-line simlint:ignore directives, reviewed one
	// call site at a time.
	for _, core := range []string{
		"tokencmp/internal/sim", "tokencmp/internal/machine",
		"tokencmp/internal/network", "tokencmp/internal/tokencmp",
		"tokencmp/internal/experiments", "tokencmp/internal/mc",
		"tokencmp/internal/workload", "tokencmp/internal/runner",
	} {
		if _, ok := wallClockSanctioned[core]; ok {
			t.Errorf("core simulation package %s must not be clock-sanctioned", core)
		}
	}
}
