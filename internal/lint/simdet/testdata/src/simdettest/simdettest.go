// Package simdettest is the simdet analysistest corpus. Its import
// path contains /testdata/, which opts it into the analyzer's
// internal-packages scope; it compiles against the real sim, network
// and stats types but is never linked into anything.
package simdettest

import (
	"fmt"
	"math/rand"
	randv2 "math/rand/v2"
	"sort"
	"strings"
	"time"

	"tokencmp/internal/mem"
	"tokencmp/internal/network"
	"tokencmp/internal/sim"
	"tokencmp/internal/stats"
	"tokencmp/internal/topo"
)

type Ctrl struct {
	net     *network.Network
	eng     *sim.Engine
	sample  *stats.Sample
	pending map[mem.Block]int
	done    map[mem.Block]func(uint64)
}

// --- Wall clock and global randomness. ---

func (c *Ctrl) clock() int64 {
	t := time.Now() // want `time\.Now in simulation code`
	return t.UnixNano()
}

func (c *Ctrl) suppressedClock() int64 {
	t := time.Now() //simlint:ignore simdet testdata: sanctioned wall-clock exception
	return t.UnixNano()
}

// storedClock smuggles the wall clock in behind a function value: the
// reference is flagged even though time.Now is never called here.
func (c *Ctrl) storedClock() func() time.Time {
	clock := time.Now // want `reference to time\.Now in simulation code`
	return clock
}

func (c *Ctrl) jitter() int {
	return rand.Intn(4) // want `global math/rand\.Intn is process-seeded`
}

func (c *Ctrl) jitterV2() int {
	return randv2.IntN(4) // want `global math/rand/v2\.IntN is process-seeded`
}

func (c *Ctrl) seeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed)) // constructor: clean
	return rng.Intn(4)                    // seeded method: clean
}

// --- Map iteration with effects. ---

func (c *Ctrl) retryAll() {
	for b := range c.pending {
		c.net.SendNew(network.Message{Block: b}) // want `sends messages via Network\.SendNew inside range over map`
	}
}

func (c *Ctrl) scheduleAll() {
	for b, n := range c.pending {
		_ = b
		c.eng.Schedule(sim.NS(int64(n)), func() {}) // want `schedules events via Engine\.Schedule inside range over map`
	}
}

// issueOne transitively sends: ranging callers are flagged through the
// package-local effect summary.
func (c *Ctrl) issueOne(b mem.Block) {
	c.net.SendNew(network.Message{Block: b, Dst: topo.NodeID(0)})
}

func (c *Ctrl) reissue() {
	for b := range c.pending {
		c.issueOne(b) // want `issueOne \(transitively\) schedules, sends`
	}
}

func (c *Ctrl) completeAll() {
	for b, fn := range c.done {
		_ = b
		fn(0) // want `calls a dynamic function value .* inside range over map`
	}
}

func (c *Ctrl) observeAll() {
	for _, n := range c.pending {
		c.sample.Add(float64(n)) // want `accumulates into stats\.Sample`
	}
}

func (c *Ctrl) render(w *strings.Builder) {
	for b := range c.pending {
		fmt.Fprintf(w, "%v\n", b) // want `writes ordered output via fmt\.Fprintf`
	}
}

func (c *Ctrl) collectUnsorted() []mem.Block {
	var out []mem.Block
	for b := range c.pending { // the append below is the diagnostic site
		out = append(out, b) // want `append to out inside range over map without sorting`
	}
	return out
}

func (c *Ctrl) meanLatency() float64 {
	var sum float64
	for _, n := range c.pending {
		sum += float64(n) // want `float accumulation into sum`
	}
	return sum / float64(len(c.pending))
}

// --- Clean idioms. ---

// collectSorted is the canonical fix: collect, then sort.
func (c *Ctrl) collectSorted() []mem.Block {
	var out []mem.Block
	for b := range c.pending {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// drain deletes from the ranged map: order-independent.
func (c *Ctrl) drain() {
	for b := range c.pending {
		delete(c.pending, b)
	}
}

// count accumulates integers: commutative, so order never shows.
func (c *Ctrl) count() int {
	total := 0
	for _, n := range c.pending {
		total += n
	}
	return total
}

// sliceSends ranges a slice, not a map: deterministic order.
func (c *Ctrl) sliceSends(blocks []mem.Block) {
	for _, b := range blocks {
		c.net.SendNew(network.Message{Block: b})
	}
}

// localAppend appends to a loop-local slice: no escape of map order.
func (c *Ctrl) localAppend() int {
	n := 0
	for b := range c.pending {
		var tmp []mem.Block
		tmp = append(tmp, b)
		n += len(tmp)
	}
	return n
}
