package simdet_test

import (
	"testing"

	"tokencmp/internal/lint/analysistest"
	"tokencmp/internal/lint/simdet"
)

func TestSimdet(t *testing.T) {
	analysistest.Run(t, simdet.Analyzer, "./testdata/src/simdettest")
}
