// Package load turns `go list` package patterns into fully type-checked
// packages for the simlint analyzers.
//
// It is the offline, stdlib-only stand-in for golang.org/x/tools/go/packages:
// one `go list -deps -export` invocation compiles (or reuses from the
// build cache) export data for every dependency, and the target
// packages themselves are parsed from source and type-checked against
// that export data through the standard gc importer. Everything runs
// without network access; the go command is the only external tool.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// A Package is one type-checked target package.
type Package struct {
	ImportPath string
	Dir        string
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info

	// TypeErrors holds type-checker soft errors. Analyzers still run
	// over packages with errors (the violating-testdata package must
	// compile, but a driver should surface these).
	TypeErrors []error
}

// listEntry is the subset of `go list -json` output we consume.
type listEntry struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
}

// goList runs `go list` in dir with the given arguments and decodes the
// JSON stream.
func goList(dir string, args ...string) ([]listEntry, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", args, err, stderr.String())
	}
	var entries []listEntry
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding: %v", args, err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// Packages loads and type-checks the packages matched by patterns,
// resolved relative to dir (empty means the current directory). The
// returned FileSet is shared by all packages.
func Packages(dir string, patterns ...string) (*token.FileSet, []*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"."}
	}

	// One pass over the full dependency graph: the go command builds
	// (or pulls from its cache) export data for every package the
	// targets import, including in-module siblings.
	deps, err := goList(dir, append([]string{"-deps", "-export", "-json=ImportPath,Export,DepOnly"}, patterns...)...)
	if err != nil {
		return nil, nil, err
	}
	exports := make(map[string]string, len(deps))
	for _, d := range deps {
		if d.Export != "" {
			exports[d.ImportPath] = d.Export
		}
	}

	roots, err := goList(dir, append([]string{"-json=ImportPath,Dir,GoFiles,Standard"}, patterns...)...)
	if err != nil {
		return nil, nil, err
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, r := range roots {
		if r.Standard {
			continue
		}
		p, err := check(fset, imp, r)
		if err != nil {
			return nil, nil, err
		}
		pkgs = append(pkgs, p)
	}
	return fset, pkgs, nil
}

// check parses and type-checks one target package from source.
func check(fset *token.FileSet, imp types.Importer, r listEntry) (*Package, error) {
	var files []*ast.File
	for _, name := range r.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(r.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var soft []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { soft = append(soft, err) },
	}
	pkg, err := conf.Check(r.ImportPath, fset, files, info)
	if err != nil && pkg == nil {
		return nil, fmt.Errorf("type-checking %s: %v", r.ImportPath, err)
	}
	return &Package{
		ImportPath: r.ImportPath,
		Dir:        r.Dir,
		Files:      files,
		Pkg:        pkg,
		Info:       info,
		TypeErrors: soft,
	}, nil
}
