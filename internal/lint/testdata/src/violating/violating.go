// Package violating deliberately breaks every contract simlint
// enforces. CI builds simlint and asserts that running it over this
// package exits non-zero — a canary that the analyzers have not been
// silently disabled or defanged. It lives under testdata so build and
// test wildcards never see it; only the explicit CI invocation does.
package violating

import (
	"fmt"
	"time"

	"tokencmp/internal/counters"
	"tokencmp/internal/mem"
	"tokencmp/internal/network"
	"tokencmp/internal/sim"
)

type Ctrl struct {
	net     *network.Network
	eng     *sim.Engine
	last    *network.Message
	pending map[mem.Block]int
	cs      *counters.Set
}

// Recv violates msgown: it retains and then frees the network-owned
// delivery.
func (c *Ctrl) Recv(m *network.Message) {
	c.last = m
	c.net.Free(m)
}

// retryAll violates simdet: it sends in map-iteration order.
func (c *Ctrl) retryAll() {
	for b := range c.pending {
		c.net.SendNew(network.Message{Block: b})
	}
}

// clock violates simdet: wall-clock time in simulation code.
func (c *Ctrl) clock() int64 {
	return time.Now().UnixNano()
}

// register violates ctrreg: a counter name computed at runtime.
func (c *Ctrl) register(bank int) {
	c.cs.Counter(fmt.Sprintf("bank%d.miss", bank)).Inc()
}

// registerFault violates ctrreg a second way: a fault counter whose
// name concatenates a runtime suffix onto the registry constant instead
// of using counters.NetDropped itself.
func (c *Ctrl) registerFault(link string) {
	c.cs.Counter(counters.NetDropped + "." + link).Inc()
}

// startAll violates schedalloc: a per-iteration closure capturing the
// loop variable.
func (c *Ctrl) startAll(blocks []mem.Block) {
	for _, b := range blocks {
		c.eng.Schedule(sim.NS(1), func() {
			c.pending[b]++
		})
	}
}
