package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"reflect"
	"testing"
)

func TestParseDirective(t *testing.T) {
	cases := []struct {
		text  string
		names []string
		ok    bool
	}{
		{"// ordinary comment", nil, false},
		{"//simlint:ignore simdet wall-clock throughput only", []string{"simdet"}, true},
		{"//simlint:ignore msgown,schedalloc reviewed exception", []string{"msgown", "schedalloc"}, true},
		{"// simlint:ignore simdet spaced form works too", []string{"simdet"}, true},
		{"//simlint:ignore", []string{"all"}, true},
		{"//simlint:ignore ,, justification", []string{"all"}, true},
	}
	for _, c := range cases {
		names, ok := parseDirective(c.text)
		if ok != c.ok || !reflect.DeepEqual(names, c.names) {
			t.Errorf("parseDirective(%q) = %v, %v; want %v, %v", c.text, names, ok, c.names, c.ok)
		}
	}
}

const ignoreSrc = `package p

func f() int {
	a := 1 //simlint:ignore simdet same-line directive
	//simlint:ignore msgown,schedalloc stand-alone: applies to next line
	b := 2
	c := 3
	return a + b + c
}
`

func TestIgnoresIn(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", ignoreSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	set := ignoresIn(fset, []*ast.File{f})
	at := func(analyzer string, line int) bool {
		return set.suppressed(analyzer, token.Position{Filename: "p.go", Line: line})
	}
	if !at("simdet", 4) {
		t.Error("same-line directive did not suppress simdet on its line")
	}
	if at("msgown", 4) {
		t.Error("same-line directive suppressed an analyzer it did not name")
	}
	if !at("msgown", 6) || !at("schedalloc", 6) {
		t.Error("stand-alone directive did not suppress the next code line")
	}
	if at("simdet", 6) {
		t.Error("stand-alone directive suppressed an analyzer it did not name")
	}
	if at("msgown", 7) {
		t.Error("stand-alone directive leaked past its target line")
	}
}
