// Package analysistest runs a simlint analyzer over testdata packages
// and checks its diagnostics against `// want` expectations, in the
// style of golang.org/x/tools/go/analysis/analysistest (the stdlib-only
// stand-in for it; see tokencmp/internal/lint/analysis).
//
// Testdata packages live under the analyzer's testdata/src directory.
// Because `testdata` directories are invisible to go build wildcards,
// the packages are real in-module packages that may import the actual
// tokencmp/internal/{network,sim,...} types — the analyzers therefore
// run in the tests against exactly the types they match in production —
// yet never leak into ordinary builds.
//
// An expectation is a comment on the offending line:
//
//	net.Free(m) // want `frees a network-owned message`
//
// Each string literal after `want` (quoted or backquoted) is a regular
// expression that must match one diagnostic reported on that line;
// diagnostics and expectations must match up exactly in both
// directions.
package analysistest

import (
	"fmt"
	"go/scanner"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"tokencmp/internal/lint"
	"tokencmp/internal/lint/analysis"
	"tokencmp/internal/lint/load"
)

// Run loads each testdata package pattern (resolved relative to the
// test's working directory, i.e. the analyzer package directory) and
// checks a's diagnostics against the packages' want comments.
func Run(t *testing.T, a *analysis.Analyzer, patterns ...string) {
	t.Helper()
	fset, pkgs, err := load.Packages("", patterns...)
	if err != nil {
		t.Fatalf("loading %v: %v", patterns, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no packages matched %v", patterns)
	}
	findings := lint.Run(fset, pkgs, []*analysis.Analyzer{a})

	type key struct {
		file string
		line int
	}
	expected := make(map[key][]*regexp.Regexp)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					pos := fset.Position(c.Slash)
					res, err := parseWant(c.Text)
					if err != nil {
						t.Fatalf("%s:%d: %v", pos.Filename, pos.Line, err)
					}
					for _, re := range res {
						k := key{pos.Filename, pos.Line}
						expected[k] = append(expected[k], re)
					}
				}
			}
		}
	}

	for _, f := range findings {
		k := key{f.Pos.Filename, f.Pos.Line}
		res := expected[k]
		matched := -1
		for i, re := range res {
			if re.MatchString(f.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("%s:%d: unexpected diagnostic: %s", rel(f.Pos.Filename), f.Pos.Line, f.Message)
			continue
		}
		expected[k] = append(res[:matched], res[matched+1:]...)
	}
	for k, res := range expected {
		for _, re := range res {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", rel(k.file), k.line, re)
		}
	}
}

// rel trims the working directory off absolute testdata paths for
// readable failure output.
func rel(path string) string {
	if r, err := filepath.Rel(".", path); err == nil && !strings.HasPrefix(r, "..") {
		return r
	}
	return path
}

// parseWant extracts the regexps from a want comment (each expectation
// a quoted or backquoted Go string literal). It returns nil, and no
// error, for comments without a want marker.
func parseWant(text string) ([]*regexp.Regexp, error) {
	body, ok := strings.CutPrefix(text, "//")
	if !ok {
		return nil, nil // /* */ comments are not expectation carriers
	}
	body = strings.TrimSpace(body)
	rest, ok := strings.CutPrefix(body, "want ")
	if !ok {
		return nil, nil
	}
	// Tokenize the remainder as Go string literals.
	var sc scanner.Scanner
	fs := token.NewFileSet()
	file := fs.AddFile("want", -1, len(rest))
	sc.Init(file, []byte(rest), nil, 0)
	var res []*regexp.Regexp
	for {
		_, tok, lit := sc.Scan()
		if tok == token.EOF || tok == token.SEMICOLON {
			break
		}
		if tok != token.STRING {
			return nil, fmt.Errorf("want comment: expected string literal, got %v %q", tok, lit)
		}
		s, err := strconv.Unquote(lit)
		if err != nil {
			return nil, fmt.Errorf("want comment: %v", err)
		}
		re, err := regexp.Compile(s)
		if err != nil {
			return nil, fmt.Errorf("want comment: bad regexp %q: %v", s, err)
		}
		res = append(res, re)
	}
	if len(res) == 0 {
		return nil, fmt.Errorf("want comment carries no expectations")
	}
	return res, nil
}
