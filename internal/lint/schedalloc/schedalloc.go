// Package schedalloc implements the simlint analyzer guarding the
// allocation-free scheduling discipline of sim.Engine.
//
// PR 3/4 profiling showed per-event closure allocations dominating the
// simulator's hot paths (BenchmarkTable4Barrier went from 2.22M to 49k
// allocs/op by converting per-access closures to prebound callbacks and
// ScheduleCall thunks). This analyzer pins that regression class:
//
//   - A closure passed to Engine.Schedule/ScheduleAt that captures a
//     loop variable of an enclosing for/range statement allocates a
//     fresh closure every iteration.
//   - Any capturing closure passed to Schedule/ScheduleAt from inside a
//     loop allocates per iteration even when it only captures
//     loop-invariant state.
//   - A capturing closure passed as the call argument of
//     Engine.ScheduleCall/ScheduleCallAt defeats the closure-free fast
//     path that API exists to provide — the closure allocates exactly
//     like Schedule's would.
//
// The fix in all three cases is the repo-wide thunk idiom: a
// package-level func(ctx, arg any) plus pointer-shaped context passed
// through ScheduleCall (see network.sendCall or cpu.Processor.accDone).
// Capturing closures scheduled outside loops (miss paths, timeout
// paths) are deliberately not flagged: they are cold and the closure is
// the clearer idiom there.
package schedalloc

import (
	"go/ast"
	"go/types"

	"tokencmp/internal/lint/analysis"
	"tokencmp/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "schedalloc",
	Doc:  "flag per-event closure allocations in sim.Engine scheduling calls (loop-variable captures, capturing ScheduleCall thunks)",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				walk(pass, fd.Body, &ctx{})
			}
		}
	}
	return nil, nil
}

// ctx tracks the enclosing loops of the current traversal point.
type ctx struct {
	inLoop   bool
	loopVars map[*types.Var]bool
}

func (c *ctx) withLoop(vars []*types.Var) *ctx {
	nc := &ctx{inLoop: true, loopVars: make(map[*types.Var]bool, len(c.loopVars)+len(vars))}
	for v := range c.loopVars {
		nc.loopVars[v] = true
	}
	for _, v := range vars {
		nc.loopVars[v] = true
	}
	return nc
}

// walk traverses n, maintaining loop context, and checks scheduling
// calls as they appear.
func walk(pass *analysis.Pass, n ast.Node, c *ctx) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			inner := c.withLoop(defsOf(pass, n.Init))
			if n.Init != nil {
				walk(pass, n.Init, c)
			}
			if n.Cond != nil {
				walk(pass, n.Cond, c)
			}
			if n.Post != nil {
				walk(pass, n.Post, inner)
			}
			walk(pass, n.Body, inner)
			return false
		case *ast.RangeStmt:
			walk(pass, n.X, c)
			var vars []*types.Var
			for _, e := range []ast.Expr{n.Key, n.Value} {
				if id, ok := e.(*ast.Ident); ok {
					if v, ok := pass.TypesInfo.Defs[id].(*types.Var); ok {
						vars = append(vars, v)
					}
				}
			}
			walk(pass, n.Body, c.withLoop(vars))
			return false
		case *ast.CallExpr:
			checkCall(pass, n, c)
			return true
		}
		return true
	})
}

// defsOf collects the variables defined by a for-init statement.
func defsOf(pass *analysis.Pass, init ast.Stmt) []*types.Var {
	as, ok := init.(*ast.AssignStmt)
	if !ok {
		return nil
	}
	var vars []*types.Var
	for _, lhs := range as.Lhs {
		if id, ok := lhs.(*ast.Ident); ok {
			if v, ok := pass.TypesInfo.Defs[id].(*types.Var); ok {
				vars = append(vars, v)
			}
		}
	}
	return vars
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, c *ctx) {
	fn := lintutil.Callee(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	switch {
	case (lintutil.IsMethod(fn, lintutil.SimPath, "Engine", "Schedule") ||
		lintutil.IsMethod(fn, lintutil.SimPath, "Engine", "ScheduleAt")) && len(call.Args) == 2:
		lit, ok := ast.Unparen(call.Args[1]).(*ast.FuncLit)
		if !ok {
			return
		}
		free := lintutil.FreeVars(pass.TypesInfo, lit)
		for _, v := range free {
			if c.loopVars[v] {
				pass.Reportf(lit.Pos(), "closure passed to Engine.%s captures loop variable %s — a fresh closure allocates every iteration; use ScheduleCall with a package-level thunk", fn.Name(), v.Name())
				return
			}
		}
		if c.inLoop && len(free) > 0 {
			pass.Reportf(lit.Pos(), "capturing closure passed to Engine.%s inside a loop allocates per iteration — use ScheduleCall with a package-level thunk", fn.Name())
		}

	case (lintutil.IsMethod(fn, lintutil.SimPath, "Engine", "ScheduleCall") ||
		lintutil.IsMethod(fn, lintutil.SimPath, "Engine", "ScheduleCallAt")) && len(call.Args) == 4:
		lit, ok := ast.Unparen(call.Args[1]).(*ast.FuncLit)
		if !ok {
			return
		}
		if free := lintutil.FreeVars(pass.TypesInfo, lit); len(free) > 0 {
			pass.Reportf(lit.Pos(), "capturing closure passed to Engine.%s defeats the closure-free fast path — use a package-level func(ctx, arg any) and pass state through ctx/arg", fn.Name())
		}
	}
}
