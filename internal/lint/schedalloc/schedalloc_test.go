package schedalloc_test

import (
	"testing"

	"tokencmp/internal/lint/analysistest"
	"tokencmp/internal/lint/schedalloc"
)

func TestSchedalloc(t *testing.T) {
	analysistest.Run(t, schedalloc.Analyzer, "./testdata/src/schedalloctest")
}
