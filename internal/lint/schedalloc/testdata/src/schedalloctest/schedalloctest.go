// Package schedalloctest is the schedalloc analysistest corpus: the
// per-event closure-allocation patterns PR 4 profiled out of the
// simulator hot paths, plus the idioms that replaced them (which must
// stay clean). Compiles against the real sim.Engine; never linked.
package schedalloctest

import (
	"tokencmp/internal/sim"
)

type Proc struct {
	eng  *sim.Engine
	accs []int
	done func(int)
}

// --- Per-iteration closure allocations: flagged. ---

func (p *Proc) startAllRange() {
	for i, a := range p.accs {
		p.eng.Schedule(sim.NS(int64(i)), func() { // want `captures loop variable a`
			p.done(a)
		})
	}
}

func (p *Proc) startAllFor() {
	for i := 0; i < len(p.accs); i++ {
		p.eng.ScheduleAt(sim.NS(int64(i)), func() { // want `captures loop variable i`
			p.done(i)
		})
	}
}

func (p *Proc) startAllInvariant(v int) {
	for range p.accs {
		p.eng.Schedule(sim.NS(1), func() { // want `capturing closure passed to Engine\.Schedule inside a loop`
			p.done(v)
		})
	}
}

func (p *Proc) nestedLoopCapture() {
	for _, a := range p.accs {
		if a > 0 {
			p.eng.Schedule(sim.NS(2), func() { // want `captures loop variable a`
				p.done(a)
			})
		}
	}
}

// --- Capturing thunks defeat ScheduleCall: flagged anywhere. ---

func (p *Proc) captureThunk(v int) {
	p.eng.ScheduleCall(sim.NS(1), func(ctx, arg any) { // want `capturing closure passed to Engine\.ScheduleCall defeats the closure-free fast path`
		p.done(v)
	}, nil, nil)
}

func (p *Proc) captureThunkAt(v int) {
	p.eng.ScheduleCallAt(sim.NS(1), func(ctx, arg any) { // want `capturing closure passed to Engine\.ScheduleCallAt defeats the closure-free fast path`
		p.done(v)
	}, nil, nil)
}

// --- Clean idioms. ---

// procDone is the package-level thunk idiom (cpu.Processor.accDone).
func procDone(ctx, arg any) {
	p := ctx.(*Proc)
	p.done(arg.(int))
}

func (p *Proc) startAllThunk() {
	for i := range p.accs {
		p.eng.ScheduleCall(sim.NS(int64(i)), procDone, p, i)
	}
}

// coldPathClosure: a capturing closure outside any loop is the clearer
// idiom on miss/timeout paths and is deliberately not flagged.
func (p *Proc) coldPathClosure(v int) {
	p.eng.Schedule(sim.NS(1), func() { p.done(v) })
}

// nonCapturing literals are static function values: no allocation.
func (p *Proc) nonCapturing() {
	for range p.accs {
		p.eng.Schedule(sim.NS(1), func() {})
	}
	p.eng.ScheduleCall(sim.NS(1), func(ctx, arg any) {}, p, 0)
}
