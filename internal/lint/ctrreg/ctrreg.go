// Package ctrreg implements the simlint counter-registration analyzer.
//
// The uniform event-counter registry (tokencmp/internal/counters) keeps
// its namespace greppable and deterministic by requiring every
// registration name to be a compile-time string constant — the named
// constants exported by the counters package, or a local constant for a
// protocol-private counter. A name computed at runtime (fmt.Sprintf,
// concatenation with a variable, a function result) would fracture the
// namespace per run or per configuration, silently break cross-protocol
// claim comparisons that match counters by name, and make the counter
// set undiscoverable by inspection. ctrreg flags every call to
// (*counters.Set).Counter — and the convenience lookup Value — whose
// name argument the type checker cannot fold to a constant.
//
// The analyzer applies to tokencmp/internal/... packages only (the
// analyzers' own testdata excepted), like the other simlint checks.
package ctrreg

import (
	"go/ast"
	"strings"

	"tokencmp/internal/lint/analysis"
	"tokencmp/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "ctrreg",
	Doc:  "require counter registration names to be compile-time string constants",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	path := pass.Pkg.Path()
	if !strings.HasPrefix(path, "tokencmp/internal/") {
		return nil, nil
	}
	if strings.HasPrefix(path, "tokencmp/internal/lint") && !strings.Contains(path, "/testdata/") {
		return nil, nil
	}
	// The registry itself manipulates names generically (iteration,
	// printing); the constant-name contract binds its callers.
	if path == lintutil.CountersPath {
		return nil, nil
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := lintutil.Callee(pass.TypesInfo, call)
			if fn == nil || len(call.Args) == 0 {
				return true
			}
			if !lintutil.IsMethod(fn, lintutil.CountersPath, "Set", "Counter") &&
				!lintutil.IsMethod(fn, lintutil.CountersPath, "Set", "Value") {
				return true
			}
			if tv, ok := pass.TypesInfo.Types[call.Args[0]]; !ok || tv.Value == nil {
				pass.Reportf(call.Args[0].Pos(),
					"counter name passed to Set.%s is not a compile-time constant — use a named constant (see tokencmp/internal/counters) so the counter namespace stays uniform and greppable", fn.Name())
			}
			return true
		})
	}
	return nil, nil
}
