// Package ctrregtest is the ctrreg analysistest corpus. Its import
// path contains /testdata/, which opts it into the analyzer's
// internal-packages scope; it compiles against the real counters types
// but is never linked into anything.
package ctrregtest

import (
	"fmt"

	"tokencmp/internal/counters"
)

// localCounter is a protocol-private name: local constants are fine.
const localCounter = "test.local"

type Ctrl struct {
	cs *counters.Set
}

// registerConstants uses the sanctioned forms: exported name constants,
// local constants, and untyped literals.
func (c *Ctrl) registerConstants() {
	c.cs.Counter(counters.L1Miss).Inc()
	c.cs.Counter(localCounter).Inc()
	c.cs.Counter("test.literal").Add(2)
	_ = c.cs.Value(counters.L1Miss)
	_ = c.cs.Value("test.literal" + ".sub") // constant folding still applies
}

// registerDynamic computes names at runtime: every form is flagged.
func (c *Ctrl) registerDynamic(bank int, suffix string) {
	c.cs.Counter(fmt.Sprintf("bank%d.miss", bank)).Inc() // want `not a compile-time constant`
	c.cs.Counter(localCounter + suffix).Inc()            // want `not a compile-time constant`
	_ = c.cs.Value(name())                               // want `not a compile-time constant`
}

func name() string { return "test.dynamic" }
