package ctrreg_test

import (
	"testing"

	"tokencmp/internal/lint/analysistest"
	"tokencmp/internal/lint/ctrreg"
)

func TestCtrreg(t *testing.T) {
	analysistest.Run(t, ctrreg.Analyzer, "./testdata/src/ctrregtest")
}
