// Package analysis is a minimal, API-compatible subset of
// golang.org/x/tools/go/analysis, built on the standard library only.
//
// The simlint analyzers (msgown, simdet, schedalloc) are written against
// this interface exactly as they would be against the real package: an
// Analyzer bundles a name, documentation, and a Run function that
// receives a fully type-checked package through a Pass and reports
// Diagnostics. The build environment for this module is offline and the
// module is deliberately dependency-free, so the x/tools module cannot
// be pinned in go.mod; this package stands in for the ~hundred lines of
// its API that the analyzers use. If the module ever grows a vendored
// or proxied golang.org/x/tools, the analyzers port by changing one
// import line (and cmd/simlint by switching to multichecker.Main,
// gaining `go vet -vettool=` integration for free).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// simlint:ignore directives. It must be a valid Go identifier.
	Name string

	// Doc is the analyzer's documentation: a one-line summary,
	// optionally followed by paragraphs of detail.
	Doc string

	// Run applies the analyzer to a single package.
	Run func(*Pass) (any, error)
}

// A Pass provides one analyzer run with a single type-checked package
// and a sink for its diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver (or test harness)
	// installs it.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}
