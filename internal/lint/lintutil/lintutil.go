// Package lintutil holds the type-resolution helpers shared by the
// simlint analyzers: static callee resolution, named-type matching
// against the simulator packages, and closure free-variable analysis.
package lintutil

import (
	"go/ast"
	"go/types"
	"sort"
)

// Paths of the packages whose contracts the analyzers encode.
const (
	CountersPath = "tokencmp/internal/counters"
	NetworkPath  = "tokencmp/internal/network"
	SimPath      = "tokencmp/internal/sim"
	StatsPath    = "tokencmp/internal/stats"
)

// Callee resolves the statically-known function or method called by
// call, or nil for builtins, conversions, and dynamic calls through
// function values.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		// Qualified identifier: pkg.Func.
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// IsMethod reports whether fn is the method pkgPath.(recvName).methName
// (matching through pointers on the receiver).
func IsMethod(fn *types.Func, pkgPath, recvName, methName string) bool {
	if fn == nil || fn.Name() != methName || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return namedName(sig.Recv().Type()) == recvName
}

// MethodOn reports whether fn is any method on a type defined in
// pkgPath with the given receiver type name.
func MethodOn(fn *types.Func, pkgPath, recvName string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return namedName(sig.Recv().Type()) == recvName
}

// ReceiverIn reports whether fn is a method whose receiver type is
// defined in pkgPath.
func ReceiverIn(fn *types.Func, pkgPath string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

// IsFunc reports whether fn is the package-level function pkgPath.name.
func IsFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Name() != name || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// namedName returns the defined-type name behind t, unwrapping one
// pointer level, or "".
func namedName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// IsPtrToNamed reports whether t is *pkgPath.name.
func IsPtrToNamed(t types.Type, pkgPath, name string) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := p.Elem().(*types.Named)
	return ok && n.Obj().Name() == name && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == pkgPath
}

// IsMessagePtr reports whether t is *network.Message.
func IsMessagePtr(t types.Type) bool {
	return IsPtrToNamed(t, NetworkPath, "Message")
}

// FreeVars returns the variables referenced inside lit but declared
// outside it (its captures), in deterministic order. Package-level
// variables and constants are not captures.
func FreeVars(info *types.Info, lit *ast.FuncLit) []*types.Var {
	seen := make(map[*types.Var]bool)
	var free []*types.Var
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || seen[v] {
			return true
		}
		if v.Parent() == nil || v.Parent() == types.Universe {
			return true
		}
		// Package-scope variables are shared state, not captures.
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return true
		}
		// A variable declared inside the literal (params, results,
		// locals) is not free.
		if lit.Pos() <= v.Pos() && v.Pos() < lit.End() {
			return true
		}
		seen[v] = true
		free = append(free, v)
		return true
	})
	sort.Slice(free, func(i, j int) bool { return free[i].Pos() < free[j].Pos() })
	return free
}
