// Package msgown implements the simlint analyzer enforcing the
// network.Message pool-ownership contract at compile time.
//
// The contract (see tokencmp/internal/network): the network owns every
// message it delivers — after an Endpoint's Recv returns, the message
// is reclaimed and its memory reused. A handler that must hold a
// message past Recv takes a pooled copy with CopyOf and later returns
// it with Free (or hands it to Send). Conversely, Send, SendAfter and
// Free all transfer a caller-owned message back to the network, so the
// caller must not touch it afterwards.
//
// The analyzer is flow-sensitive over each function body and tracks
// three ownership classes for *network.Message values:
//
//   - borrowed: the parameter of a Recv method. Flagged: Send, SendAfter
//     or Free of it; storing it into a field, slice element, map entry
//     or composite literal; capturing it in a closure that is scheduled,
//     started as a goroutine, or stored; and passing it as the ctx/arg
//     of Engine.ScheduleCall — all of these retain the pointer past
//     Recv, which is exactly what the -tags simdebug poison mode
//     scrambles at runtime.
//   - owned: the result of Network.NewMessage or Network.CopyOf. May be
//     retained freely; flagged only when used again after Send,
//     SendAfter or Free transferred it away (including double frees and
//     send-after-free, which panic at runtime).
//   - unknown: any other *network.Message value (helper parameters,
//     fields, type assertions). Only the use-after-transfer check
//     applies; in particular Free of an unknown-origin message is
//     accepted, because the deferred-thunk idiom legitimately frees a
//     pooled copy it received through a ScheduleCall argument.
//
// Branches merge conservatively: a message transferred on any path
// that falls through is treated as transferred afterwards, while
// branches ending in return or panic do not leak state past the join,
// so the `if done { Free(m) }` and `Schedule(m); return` idioms stay
// clean. The analyzer skips the network package itself — the pool
// implementation is the one place allowed to break its own rules.
package msgown

import (
	"go/ast"
	"go/token"
	"go/types"

	"tokencmp/internal/lint/analysis"
	"tokencmp/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "msgown",
	Doc:  "enforce the network.Message pool-ownership contract (no retention past Recv, no use after Send/Free)",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	if pass.Pkg.Path() == lintutil.NetworkPath {
		return nil, nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				a := &funcAnalysis{pass: pass}
				a.analyze(fd)
			}
		}
	}
	return nil, nil
}

// origin classifies how a tracked message pointer was obtained.
type origin int

const (
	originUnknown  origin = iota // helper params, asserts, field loads
	originBorrowed               // delivered to Recv; network-owned
	originOwned                  // NewMessage/CopyOf result; caller-owned
)

// varState is the per-variable ownership state at one program point.
type varState struct {
	origin   origin
	dead     bool   // ownership transferred to the network
	deadBy   string // Send, SendAfter or Free
	deadLine int
}

// state maps tracked message variables to their current ownership.
// Branching copies it; joins merge copies.
type state map[*types.Var]varState

func (st state) clone() state {
	c := make(state, len(st))
	for k, v := range st {
		c[k] = v
	}
	return c
}

// merge folds a branch exit state into st: a variable transferred on
// any falling-through path counts as transferred at the join.
func (st state) merge(branch state) {
	for v, bs := range branch {
		s, ok := st[v]
		if !ok {
			continue // branch-local variable
		}
		if bs.dead && !s.dead {
			st[v] = bs
		}
	}
}

type funcAnalysis struct {
	pass *analysis.Pass
}

func (a *funcAnalysis) analyze(fd *ast.FuncDecl) {
	st := make(state)
	borrowed := fd.Name.Name == "Recv" && fd.Recv != nil
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				v, ok := a.pass.TypesInfo.Defs[name].(*types.Var)
				if !ok || !lintutil.IsMessagePtr(v.Type()) {
					continue
				}
				if borrowed {
					st[v] = varState{origin: originBorrowed}
				} else {
					st[v] = varState{origin: originUnknown}
				}
			}
		}
	}
	a.walkBlock(fd.Body, st)
}

// walkBlock processes stmts in order; it reports whether control falls
// off the end (false when a return/panic/branch terminated it).
func (a *funcAnalysis) walkBlock(b *ast.BlockStmt, st state) bool {
	for _, s := range b.List {
		if terminated := a.walkStmt(s, st); terminated {
			return false
		}
	}
	return true
}

// walkStmt processes one statement and reports whether it terminates
// the enclosing control flow.
func (a *funcAnalysis) walkStmt(s ast.Stmt, st state) (terminated bool) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return !a.walkBlock(s, st)

	case *ast.ExprStmt:
		a.checkExpr(s.X, st)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				if _, isBuiltin := a.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					return true
				}
			}
		}
		return false

	case *ast.AssignStmt:
		a.walkAssign(s, st)
		return false

	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, val := range vs.Values {
					a.checkExpr(val, st)
				}
				for i, name := range vs.Names {
					v, ok := a.pass.TypesInfo.Defs[name].(*types.Var)
					if !ok || !lintutil.IsMessagePtr(v.Type()) {
						continue
					}
					var init ast.Expr
					if i < len(vs.Values) {
						init = vs.Values[i]
					}
					st[v] = a.originOf(init, st)
				}
			}
		}
		return false

	case *ast.IfStmt:
		if s.Init != nil {
			a.walkStmt(s.Init, st)
		}
		a.checkExpr(s.Cond, st)
		thenSt := st.clone()
		thenFalls := !a.walkStmt(s.Body, thenSt)
		elseSt := st.clone()
		elseFalls := true
		if s.Else != nil {
			elseFalls = !a.walkStmt(s.Else, elseSt)
		}
		switch {
		case thenFalls && elseFalls:
			st.merge(thenSt)
			st.merge(elseSt)
		case thenFalls:
			a.overwrite(st, thenSt)
		case elseFalls:
			a.overwrite(st, elseSt)
		default:
			return true
		}
		return false

	case *ast.ForStmt:
		if s.Init != nil {
			a.walkStmt(s.Init, st)
		}
		if s.Cond != nil {
			a.checkExpr(s.Cond, st)
		}
		bodySt := st.clone()
		if !a.walkStmt(s.Body, bodySt) && s.Post != nil {
			a.walkStmt(s.Post, bodySt)
		}
		st.merge(bodySt)
		return false

	case *ast.RangeStmt:
		a.checkExpr(s.X, st)
		bodySt := st.clone()
		a.defineRangeVar(s.Key, bodySt)
		a.defineRangeVar(s.Value, bodySt)
		a.walkStmt(s.Body, bodySt)
		st.merge(bodySt)
		return false

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return a.walkSwitch(s, st)

	case *ast.ReturnStmt:
		for _, r := range s.Results {
			a.checkExpr(r, st)
		}
		return true

	case *ast.BranchStmt:
		// break/continue/goto: state does not flow to the next
		// statement of this block.
		return true

	case *ast.DeferStmt:
		// Deferred calls run at function exit: check for dead uses but
		// apply no transfers (a deferred Free is the last touch).
		a.checkCallArgs(s.Call, st)
		return false

	case *ast.GoStmt:
		a.walkGoCall(s.Call, st)
		return false

	case *ast.IncDecStmt:
		a.checkExpr(s.X, st)
		return false

	case *ast.SendStmt:
		a.checkExpr(s.Chan, st)
		a.checkExpr(s.Value, st)
		if v := a.trackedBorrowed(s.Value, st); v != nil {
			a.pass.Reportf(s.Value.Pos(), "network-owned message %s sent on a channel; it is reclaimed when Recv returns — keep a CopyOf instead", v.Name())
		}
		return false

	case *ast.LabeledStmt:
		return a.walkStmt(s.Stmt, st)
	}
	return false
}

// overwrite replaces the tracked entries of st with those from the only
// falling-through branch.
func (a *funcAnalysis) overwrite(st, branch state) {
	for v := range st {
		if bs, ok := branch[v]; ok {
			st[v] = bs
		}
	}
}

// walkSwitch handles switch, type-switch and select uniformly: each
// clause is a branch; falling-through clauses merge. A missing default
// means the zero-clause path also reaches the join.
func (a *funcAnalysis) walkSwitch(s ast.Stmt, st state) (terminated bool) {
	var clauses []ast.Stmt
	hasDefault := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			a.walkStmt(s.Init, st)
		}
		if s.Tag != nil {
			a.checkExpr(s.Tag, st)
		}
		clauses = s.Body.List
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			a.walkStmt(s.Init, st)
		}
		a.walkStmt(s.Assign, st)
		clauses = s.Body.List
	case *ast.SelectStmt:
		clauses = s.Body.List
	}
	anyFalls := false
	exits := make([]state, 0, len(clauses))
	for _, c := range clauses {
		clSt := st.clone()
		falls := true
		switch c := c.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			for _, e := range c.List {
				a.checkExpr(e, clSt)
			}
			falls = a.walkStmtList(c.Body, clSt)
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			} else {
				a.walkStmt(c.Comm, clSt)
			}
			falls = a.walkStmtList(c.Body, clSt)
		}
		if falls {
			anyFalls = true
			exits = append(exits, clSt)
		}
	}
	if !hasDefault {
		anyFalls = true // the no-match path
	}
	for _, e := range exits {
		st.merge(e)
	}
	return !anyFalls
}

func (a *funcAnalysis) walkStmtList(list []ast.Stmt, st state) (falls bool) {
	for _, s := range list {
		if a.walkStmt(s, st) {
			return false
		}
	}
	return true
}

func (a *funcAnalysis) defineRangeVar(e ast.Expr, st state) {
	id, ok := e.(*ast.Ident)
	if !ok {
		return
	}
	if v, ok := a.pass.TypesInfo.Defs[id].(*types.Var); ok && lintutil.IsMessagePtr(v.Type()) {
		st[v] = varState{origin: originUnknown}
	}
}

// walkAssign handles definitions, reassignments, aliasing and the
// retention-by-store checks.
func (a *funcAnalysis) walkAssign(s *ast.AssignStmt, st state) {
	for _, r := range s.Rhs {
		a.checkExpr(r, st)
	}
	paired := len(s.Lhs) == len(s.Rhs)
	for i, lhs := range s.Lhs {
		var rhs ast.Expr
		if paired {
			rhs = s.Rhs[i]
		}
		// Storing a borrowed message into anything but a fresh local
		// retains it past Recv.
		if rhs != nil {
			if v := a.trackedBorrowed(rhs, st); v != nil {
				switch ast.Unparen(lhs).(type) {
				case *ast.SelectorExpr:
					a.pass.Reportf(rhs.Pos(), "network-owned message %s stored in a field; it is reclaimed when Recv returns — keep a CopyOf instead", v.Name())
				case *ast.IndexExpr:
					a.pass.Reportf(rhs.Pos(), "network-owned message %s stored in a slice or map; it is reclaimed when Recv returns — keep a CopyOf instead", v.Name())
				case *ast.StarExpr:
					a.pass.Reportf(rhs.Pos(), "network-owned message %s stored through a pointer; it is reclaimed when Recv returns — keep a CopyOf instead", v.Name())
				}
			}
			if lit, ok := ast.Unparen(rhs).(*ast.FuncLit); ok {
				a.checkClosureCapture(lit, st, "stored in a variable")
			}
		}
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			a.checkExpr(lhs, st)
			continue
		}
		var v *types.Var
		if s.Tok == token.DEFINE {
			v, _ = a.pass.TypesInfo.Defs[id].(*types.Var)
		} else {
			v, _ = a.pass.TypesInfo.Uses[id].(*types.Var)
		}
		if v == nil || !lintutil.IsMessagePtr(v.Type()) {
			continue
		}
		// Reassignment revives (or re-classifies) the variable.
		st[v] = a.originOf(rhs, st)
	}
}

// originOf classifies the ownership a message variable acquires from
// its initializer.
func (a *funcAnalysis) originOf(rhs ast.Expr, st state) varState {
	if rhs == nil {
		return varState{origin: originUnknown}
	}
	switch rhs := ast.Unparen(rhs).(type) {
	case *ast.CallExpr:
		fn := lintutil.Callee(a.pass.TypesInfo, rhs)
		if lintutil.IsMethod(fn, lintutil.NetworkPath, "Network", "NewMessage") ||
			lintutil.IsMethod(fn, lintutil.NetworkPath, "Network", "CopyOf") {
			return varState{origin: originOwned}
		}
	case *ast.Ident:
		if v, ok := a.pass.TypesInfo.Uses[rhs].(*types.Var); ok {
			if s, ok := st[v]; ok {
				return s // alias inherits the source's state
			}
		}
	}
	return varState{origin: originUnknown}
}

// checkExpr walks an expression in evaluation context: transfer calls
// update st, dead uses and borrowed retentions are reported. Function
// literal bodies are not entered — they execute later; their captures
// are checked at the capture sites that matter.
func (a *funcAnalysis) checkExpr(e ast.Expr, st state) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			a.checkCall(n, st)
			return false
		case *ast.FuncLit:
			return false
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				val := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					val = kv.Value
				}
				if v := a.trackedBorrowed(val, st); v != nil {
					a.pass.Reportf(val.Pos(), "network-owned message %s stored in a composite literal; it is reclaimed when Recv returns — keep a CopyOf instead", v.Name())
				}
				if lit, ok := ast.Unparen(val).(*ast.FuncLit); ok {
					a.checkClosureCapture(lit, st, "stored in a composite literal")
				}
			}
			return true
		case *ast.Ident:
			a.checkUse(n, st)
		}
		return true
	})
}

// checkUse reports a read of a variable whose ownership was already
// transferred to the network.
func (a *funcAnalysis) checkUse(id *ast.Ident, st state) {
	v, ok := a.pass.TypesInfo.Uses[id].(*types.Var)
	if !ok {
		return
	}
	if s, ok := st[v]; ok && s.dead {
		a.pass.Reportf(id.Pos(), "use of message %s after %s on line %d transferred it to the network", v.Name(), s.deadBy, s.deadLine)
	}
}

// trackedBorrowed returns the borrowed variable behind e, if any.
func (a *funcAnalysis) trackedBorrowed(e ast.Expr, st state) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := a.pass.TypesInfo.Uses[id].(*types.Var)
	if !ok {
		return nil
	}
	if s, ok := st[v]; ok && s.origin == originBorrowed && !s.dead {
		return v
	}
	return nil
}

// tracked returns the tracked variable behind e, if any.
func (a *funcAnalysis) tracked(e ast.Expr, st state) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := a.pass.TypesInfo.Uses[id].(*types.Var)
	if !ok {
		return nil
	}
	if _, ok := st[v]; ok {
		return v
	}
	return nil
}

// checkCall classifies one call and applies its ownership effects.
func (a *funcAnalysis) checkCall(call *ast.CallExpr, st state) {
	info := a.pass.TypesInfo
	fn := lintutil.Callee(info, call)

	// append(s, m...) retains borrowed messages in a slice.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			for _, arg := range call.Args {
				a.checkExpr(arg, st)
			}
			for _, arg := range call.Args[1:] {
				if v := a.trackedBorrowed(arg, st); v != nil {
					a.pass.Reportf(arg.Pos(), "network-owned message %s appended to a slice; it is reclaimed when Recv returns — keep a CopyOf instead", v.Name())
				}
			}
			return
		}
	}

	transfer := func(arg ast.Expr, by string) {
		a.checkExpr(arg, st) // nested calls, dead uses
		v := a.tracked(arg, st)
		if v == nil {
			return
		}
		s := st[v]
		if s.dead {
			return // checkExpr already reported the dead use
		}
		if s.origin == originBorrowed {
			verb := "sends"
			hint := "copy it with CopyOf (or build a fresh message and SendNew)"
			if by == "Free" {
				verb = "frees"
				hint = "only messages from NewMessage/CopyOf may be freed"
			}
			a.pass.Reportf(arg.Pos(), "%s %s a network-owned message delivered to Recv; the network reclaims it after Recv returns — %s", by, verb, hint)
		}
		s.dead = true
		s.deadBy = by
		s.deadLine = a.pass.Fset.Position(call.Pos()).Line
		st[v] = s
	}

	switch {
	case lintutil.IsMethod(fn, lintutil.NetworkPath, "Network", "Send") && len(call.Args) == 1:
		transfer(call.Args[0], "Send")
		return
	case lintutil.IsMethod(fn, lintutil.NetworkPath, "Network", "SendAfter") && len(call.Args) == 2:
		a.checkExpr(call.Args[0], st)
		transfer(call.Args[1], "SendAfter")
		return
	case lintutil.IsMethod(fn, lintutil.NetworkPath, "Network", "Free") && len(call.Args) == 1:
		transfer(call.Args[0], "Free")
		return

	case lintutil.IsMethod(fn, lintutil.SimPath, "Engine", "ScheduleCall") && len(call.Args) == 4,
		lintutil.IsMethod(fn, lintutil.SimPath, "Engine", "ScheduleCallAt") && len(call.Args) == 4:
		// ScheduleCall(d, call, ctx, arg): a borrowed message as ctx or
		// arg reaches the thunk only after Recv returned and the pool
		// reclaimed it.
		for _, arg := range call.Args {
			a.checkExpr(arg, st)
		}
		for _, arg := range call.Args[2:] {
			if v := a.trackedBorrowed(arg, st); v != nil {
				a.pass.Reportf(arg.Pos(), "network-owned message %s passed to %s; the thunk runs after Recv returns and the pool reclaims it — pass a CopyOf", v.Name(), fn.Name())
			}
		}
		if len(call.Args) >= 2 {
			if lit, ok := ast.Unparen(call.Args[1]).(*ast.FuncLit); ok {
				a.checkClosureCapture(lit, st, "scheduled with "+fn.Name())
			}
		}
		return

	case lintutil.IsMethod(fn, lintutil.SimPath, "Engine", "Schedule"),
		lintutil.IsMethod(fn, lintutil.SimPath, "Engine", "ScheduleAt"):
		for _, arg := range call.Args {
			a.checkExpr(arg, st)
		}
		if len(call.Args) >= 2 {
			if lit, ok := ast.Unparen(call.Args[1]).(*ast.FuncLit); ok {
				a.checkClosureCapture(lit, st, "scheduled with "+fn.Name())
			}
		}
		return
	}

	// Ordinary call: synchronous use of any argument is fine; still
	// check for dead uses and nested effects.
	a.checkCallArgs(call, st)
}

// checkCallArgs checks a call's function expression and arguments
// without applying ownership transfers.
func (a *funcAnalysis) checkCallArgs(call *ast.CallExpr, st state) {
	a.checkExpr(call.Fun, st)
	for _, arg := range call.Args {
		if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
			// Synchronous callee (sort.Slice and friends): borrowed
			// captures are fine; only dead uses inside are not.
			a.checkDeadUsesIn(lit, st)
			continue
		}
		a.checkExpr(arg, st)
	}
}

// walkGoCall handles `go f(...)`: the goroutine outlives Recv, so both
// borrowed arguments and borrowed captures are retentions.
func (a *funcAnalysis) walkGoCall(call *ast.CallExpr, st state) {
	for _, arg := range call.Args {
		a.checkExpr(arg, st)
		if v := a.trackedBorrowed(arg, st); v != nil {
			a.pass.Reportf(arg.Pos(), "network-owned message %s passed to a goroutine; it is reclaimed when Recv returns — pass a CopyOf", v.Name())
		}
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		a.checkClosureCapture(lit, st, "started as a goroutine")
	}
}

// checkClosureCapture reports borrowed messages captured by a closure
// that escapes the Recv window (scheduled, stored, or go'd).
func (a *funcAnalysis) checkClosureCapture(lit *ast.FuncLit, st state, how string) {
	for _, v := range lintutil.FreeVars(a.pass.TypesInfo, lit) {
		if s, ok := st[v]; ok && s.origin == originBorrowed && !s.dead {
			a.pass.Reportf(lit.Pos(), "closure %s captures network-owned message %s; it runs after Recv returns and the pool reclaims the message — capture a CopyOf", how, v.Name())
		}
	}
	a.checkDeadUsesIn(lit, st)
}

// checkDeadUsesIn flags uses, inside a closure body, of messages whose
// ownership was already transferred when the closure was created.
func (a *funcAnalysis) checkDeadUsesIn(lit *ast.FuncLit, st state) {
	for _, v := range lintutil.FreeVars(a.pass.TypesInfo, lit) {
		if s, ok := st[v]; ok && s.dead {
			a.pass.Reportf(lit.Pos(), "closure captures message %s after %s on line %d transferred it to the network", v.Name(), s.deadBy, s.deadLine)
		}
	}
}
