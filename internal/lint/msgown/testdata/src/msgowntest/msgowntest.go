// Package msgowntest is the msgown analysistest corpus: every `want`
// comment marks a true positive the analyzer must report, and every
// handler without one is a legal idiom it must stay silent on. The
// package imports the real network and sim types, so the analyzer is
// exercised against exactly the signatures it matches in production.
// It compiles but is never linked into anything (testdata directories
// are invisible to build wildcards).
package msgowntest

import (
	"tokencmp/internal/mem"
	"tokencmp/internal/network"
	"tokencmp/internal/sim"
	"tokencmp/internal/topo"
)

// Retainer violates the ownership contract in every way msgown checks.
type Retainer struct {
	net   *network.Network
	eng   *sim.Engine
	last  *network.Message
	held  map[mem.Block]*network.Message
	queue []*network.Message
	ch    chan *network.Message
	fn    func()
}

func (r *Retainer) use(m *network.Message) bool { return m != nil }

func (r *Retainer) Recv(m *network.Message) {
	r.net.Free(m) // want `Free frees a network-owned message delivered to Recv`
	r.net.Send(m) // want `use of message m after Free on line \d+`
	_ = m.Tokens  // want `use of message m after Free on line \d+`
	m = r.net.CopyOf(&network.Message{})
	r.net.Send(m) // reassignment revived m: clean
}

type SendRetainer struct{ Retainer }

func (r *SendRetainer) Recv(m *network.Message) {
	r.net.Send(m) // want `Send sends a network-owned message delivered to Recv`
}

type AfterRetainer struct{ Retainer }

func (r *AfterRetainer) Recv(m *network.Message) {
	r.net.SendAfter(sim.NS(1), m) // want `SendAfter sends a network-owned message delivered to Recv`
}

type StoreRetainer struct{ Retainer }

func (r *StoreRetainer) Recv(m *network.Message) {
	r.last = m                          // want `network-owned message m stored in a field`
	r.held[m.Block] = m                 // want `network-owned message m stored in a slice or map`
	r.queue = append(r.queue, m)        // want `network-owned message m appended to a slice`
	r.ch <- m                           // want `network-owned message m sent on a channel`
	pair := [2]*network.Message{m, nil} // want `network-owned message m stored in a composite literal`
	_ = pair
}

type ClosureRetainer struct{ Retainer }

func (r *ClosureRetainer) Recv(m *network.Message) {
	r.eng.Schedule(sim.NS(1), func() { // want `closure scheduled with Schedule captures network-owned message m`
		r.use(m)
	})
	r.eng.ScheduleCall(sim.NS(1), retainThunk, r, m) // want `network-owned message m passed to ScheduleCall`
	r.fn = func() { r.use(m) }                       // want `closure stored in a variable captures network-owned message m`
	go func() { r.use(m) }()                         // want `closure started as a goroutine captures network-owned message m`
}

func retainThunk(ctx, arg any) {
	r, m := ctx.(*ClosureRetainer), arg.(*network.Message)
	r.use(m)
}

// UseAfterTransfer exercises the owned-message lifecycle violations.
type UseAfterTransfer struct{ Retainer }

func (r *UseAfterTransfer) Recv(m *network.Message) {
	cp := r.net.CopyOf(m)
	r.net.Send(cp)
	_ = cp.Tokens // want `use of message cp after Send on line \d+`

	fresh := r.net.NewMessage()
	r.net.Free(fresh)
	r.net.Free(fresh) // want `use of message fresh after Free on line \d+`

	late := r.net.CopyOf(m)
	r.net.SendAfter(sim.NS(2), late)
	r.use(late) // want `use of message late after SendAfter on line \d+`

	held := r.net.CopyOf(m)
	r.net.Send(held)
	r.eng.Schedule(sim.NS(1), func() { // want `closure captures message held after Send on line \d+`
		r.use(held)
	})
}

// ConditionalTransfer: a transfer on one falling-through branch kills
// the message at the join.
type ConditionalTransfer struct{ Retainer }

func (r *ConditionalTransfer) Recv(m *network.Message) {
	cp := r.net.CopyOf(m)
	if m.Tokens > 0 {
		r.net.Send(cp)
	}
	_ = cp.Owner // want `use of message cp after Send on line \d+`
}

// --- Legal idioms below: the analyzer must stay silent. ---

// CleanHandler is the production Recv idiom: defer a pooled copy, free
// it in the thunk.
type CleanHandler struct{ Retainer }

func cleanThunk(ctx, arg any) {
	c, m := ctx.(*CleanHandler), arg.(*network.Message)
	if c.handle(m) {
		c.net.Free(m) // unknown origin: the thunk frees the pooled copy
	}
}

func (c *CleanHandler) Recv(m *network.Message) {
	// Synchronous reads and helper calls of the delivered message are fine.
	if m.Kind == 0 {
		c.handle(m)
	}
	// Broadcast copies the template internally; passing m is legal.
	c.net.Broadcast(m, []topo.NodeID{0, 1})
	// SendNew takes a value: building it from m's fields is legal.
	c.net.SendNew(network.Message{Src: m.Dst, Dst: m.Src, Block: m.Block})
	// The canonical defer-with-copy idiom.
	c.eng.ScheduleCall(sim.NS(1), cleanThunk, c, c.net.CopyOf(m))
}

func (c *CleanHandler) handle(m *network.Message) bool {
	// Re-deferring an unknown-origin message keeps ownership with the
	// scheduled thunk: legal (the hold-until re-defer idiom).
	if m.Aux != 0 {
		c.eng.ScheduleCallAt(sim.NS(10), cleanThunk, c, m)
		return false
	}
	return true
}

// CleanTransfers: branch-terminated transfers and revivals are not
// use-after-transfer.
type CleanTransfers struct{ Retainer }

func (r *CleanTransfers) Recv(m *network.Message) {
	cp := r.net.CopyOf(m)
	if cp.Tokens == 0 {
		r.net.Free(cp)
		return
	}
	cp.Owner = true // clean: the freeing branch returned

	done := r.net.CopyOf(m)
	if done.HasData {
		r.net.Send(done)
	} else {
		r.net.Free(done)
	}
	// no use of done after the join

	again := r.net.CopyOf(m)
	r.net.Send(again)
	again = r.net.NewMessage()
	again.Tokens = 1 // clean: reassigned from the pool
	r.net.Send(again)

	held := r.net.CopyOf(m)
	defer r.net.Free(held) // deferred free runs last: later uses are fine
	held.Aux = 3
}
