package msgown_test

import (
	"testing"

	"tokencmp/internal/lint/analysistest"
	"tokencmp/internal/lint/msgown"
)

func TestMsgown(t *testing.T) {
	analysistest.Run(t, msgown.Analyzer, "./testdata/src/msgowntest")
}
