package token

import (
	"slices"

	"tokencmp/internal/mem"
	"tokencmp/internal/topo"
)

// ReqKind distinguishes persistent write requests (collect all tokens)
// from the paper's new persistent read requests (force holders to give up
// all but one token, §3.2).
type ReqKind int

// Persistent request kinds.
const (
	ReqWrite ReqKind = iota
	ReqRead
)

func (k ReqKind) String() string {
	if k == ReqRead {
		return "read"
	}
	return "write"
}

// Entry is one remembered persistent request.
type Entry struct {
	Valid  bool
	Block  mem.Block
	Kind   ReqKind
	Dest   topo.NodeID // cache to which tokens must be forwarded
	Proc   int         // issuing processor
	Marked bool        // set by the marking mechanism (§3.2)
}

// DistributedTable is the distributed-activation persistent request table
// kept at every cache and memory controller: one entry per processor,
// fixed priority by processor number (lower index wins), and a marking
// bit per entry implementing FutureBus-style waves.
type DistributedTable struct {
	entries []Entry
}

// NewDistributedTable builds a table for a system with procs processors.
func NewDistributedTable(procs int) *DistributedTable {
	return &DistributedTable{entries: make([]Entry, procs)}
}

// Insert records processor proc's persistent request. Inserting over an
// existing valid entry for the same processor replaces it (a processor
// initiates at most one persistent request at a time).
func (t *DistributedTable) Insert(proc int, b mem.Block, kind ReqKind, dest topo.NodeID) {
	t.entries[proc] = Entry{Valid: true, Block: b, Kind: kind, Dest: dest, Proc: proc}
}

// Deactivate clears processor proc's entry and reports the block it was
// requesting so the holder can re-evaluate forwarding for that block.
func (t *DistributedTable) Deactivate(proc int) (mem.Block, bool) {
	e := t.entries[proc]
	t.entries[proc] = Entry{}
	return e.Block, e.Valid
}

// Active returns the highest-priority valid entry for block b (the one
// the table activates) and the processor owning it.
func (t *DistributedTable) Active(b mem.Block) (proc int, e Entry, ok bool) {
	for i := range t.entries {
		if t.entries[i].Valid && t.entries[i].Block == b {
			return i, t.entries[i], true
		}
	}
	return 0, Entry{}, false
}

// IsActive reports whether processor proc's request is the active one for
// its block.
func (t *DistributedTable) IsActive(proc int) bool {
	e := t.entries[proc]
	if !e.Valid {
		return false
	}
	p, _, ok := t.Active(e.Block)
	return ok && p == proc
}

// Get returns processor proc's entry.
func (t *DistributedTable) Get(proc int) Entry { return t.entries[proc] }

// MarkAllFor sets the mark bit on every valid entry for block b. The
// deactivating processor calls this on its own local table; it may not
// issue a new persistent request for the block until the marked entries
// deactivate.
func (t *DistributedTable) MarkAllFor(b mem.Block) {
	for i := range t.entries {
		if t.entries[i].Valid && t.entries[i].Block == b {
			t.entries[i].Marked = true
		}
	}
}

// HasMarked reports whether any marked entry for block b remains.
func (t *DistributedTable) HasMarked(b mem.Block) bool {
	for i := range t.entries {
		if t.entries[i].Valid && t.entries[i].Marked && t.entries[i].Block == b {
			return true
		}
	}
	return false
}

// Blocks lists the distinct blocks with valid entries (used when
// re-evaluating forwarding after token arrivals).
func (t *DistributedTable) Blocks() []mem.Block {
	seen := make(map[mem.Block]bool)
	var out []mem.Block
	for i := range t.entries {
		if t.entries[i].Valid && !seen[t.entries[i].Block] {
			seen[t.entries[i].Block] = true
			out = append(out, t.entries[i].Block)
		}
	}
	return out
}

// ArbTable is the per-endpoint table of the arbiter-based scheme: it
// remembers the single activated persistent request per block, as
// broadcast by the arbiter at the block's home memory controller.
type ArbTable struct {
	active map[mem.Block]Entry
}

// NewArbTable builds an empty arbiter-scheme table.
func NewArbTable() *ArbTable { return &ArbTable{active: make(map[mem.Block]Entry)} }

// Activate records the activated request for b.
func (t *ArbTable) Activate(b mem.Block, kind ReqKind, dest topo.NodeID, proc int) {
	t.active[b] = Entry{Valid: true, Block: b, Kind: kind, Dest: dest, Proc: proc}
}

// Deactivate clears the activated request for b if it belongs to proc
// (guarding against activate/deactivate reordering on the interconnect).
func (t *ArbTable) Deactivate(b mem.Block, proc int) {
	if e, ok := t.active[b]; ok && e.Proc == proc {
		delete(t.active, b)
	}
}

// Active returns the activated request for b, if any.
func (t *ArbTable) Active(b mem.Block) (Entry, bool) {
	e, ok := t.active[b]
	return e, ok
}

// Blocks lists blocks with activated requests, in ascending block
// order so audit passes visit them deterministically.
func (t *ArbTable) Blocks() []mem.Block {
	out := make([]mem.Block, 0, len(t.active))
	for b := range t.active {
		out = append(out, b)
	}
	slices.Sort(out)
	return out
}

// Arbiter is the home-side queue of the arbiter-based scheme: fair FIFO
// per block, at most one activated request per block (§3.2).
type Arbiter struct {
	queues map[mem.Block][]arbReq
	active map[mem.Block]arbReq
}

type arbReq struct {
	Proc int
	Kind ReqKind
	Dest topo.NodeID
}

// NewArbiter builds an empty arbiter.
func NewArbiter() *Arbiter {
	return &Arbiter{
		queues: make(map[mem.Block][]arbReq),
		active: make(map[mem.Block]arbReq),
	}
}

// Request enqueues a persistent request; it reports whether the request
// became active immediately (no other active request for the block).
func (a *Arbiter) Request(b mem.Block, proc int, kind ReqKind, dest topo.NodeID) bool {
	r := arbReq{Proc: proc, Kind: kind, Dest: dest}
	if _, busy := a.active[b]; !busy {
		a.active[b] = r
		return true
	}
	a.queues[b] = append(a.queues[b], r)
	return false
}

// Done deactivates the active request for b (which must belong to proc)
// and returns the next request to activate, if any.
func (a *Arbiter) Done(b mem.Block, proc int) (next Entry, procID int, ok bool) {
	cur, busy := a.active[b]
	if !busy || cur.Proc != proc {
		return Entry{}, 0, false
	}
	delete(a.active, b)
	q := a.queues[b]
	if len(q) == 0 {
		delete(a.queues, b)
		return Entry{}, 0, false
	}
	nxt := q[0]
	if len(q) == 1 {
		delete(a.queues, b)
	} else {
		a.queues[b] = q[1:]
	}
	a.active[b] = nxt
	return Entry{Valid: true, Block: b, Kind: nxt.Kind, Dest: nxt.Dest, Proc: nxt.Proc}, nxt.Proc, true
}

// Cancel removes proc's request for b whether it is active or still
// queued; a requester that was satisfied by transient responses before
// activation uses this. If the active slot was freed and another request
// was queued, the next activation is returned.
func (a *Arbiter) Cancel(b mem.Block, proc int) (next Entry, procID int, wasActive, ok bool) {
	if cur, busy := a.active[b]; busy && cur.Proc == proc {
		n, p, o := a.Done(b, proc)
		return n, p, true, o
	}
	q := a.queues[b]
	for i := range q {
		if q[i].Proc == proc {
			a.queues[b] = append(q[:i:i], q[i+1:]...)
			if len(a.queues[b]) == 0 {
				delete(a.queues, b)
			}
			break
		}
	}
	return Entry{}, 0, false, false
}

// ActiveFor reports the active request for b, if any.
func (a *Arbiter) ActiveFor(b mem.Block) (Entry, int, bool) {
	r, ok := a.active[b]
	if !ok {
		return Entry{}, 0, false
	}
	return Entry{Valid: true, Block: b, Kind: r.Kind, Dest: r.Dest, Proc: r.Proc}, r.Proc, true
}
