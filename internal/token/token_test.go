package token

import (
	"testing"
	"testing/quick"

	"tokencmp/internal/sim"
)

func TestStatePermissions(t *testing.T) {
	const T = 8
	s := &State{}
	if s.CanRead() || s.CanWrite(T) {
		t.Error("empty state has permissions")
	}
	s.Merge(1, false, true, 7, false)
	if !s.CanRead() || s.CanWrite(T) {
		t.Error("one token + data should read but not write")
	}
	s.Merge(T-1, true, true, 7, false)
	if !s.CanWrite(T) {
		t.Error("all tokens + data should write")
	}
}

func TestTakeAllEmpties(t *testing.T) {
	s := &State{Tokens: 4, Owner: true, HasData: true, Data: 11, Dirty: true}
	tk, own, hasData, data, dirty := s.TakeAll()
	if tk != 4 || !own || !hasData || data != 11 || !dirty {
		t.Errorf("TakeAll = (%d,%v,%v,%d,%v)", tk, own, hasData, data, dirty)
	}
	if !s.Empty() || s.Owner || s.HasData {
		t.Error("state not empty after TakeAll")
	}
}

func TestTakeTokensNeverTakesOwner(t *testing.T) {
	s := &State{Tokens: 3, Owner: true, HasData: true}
	if got := s.TakeTokens(5); got != 2 {
		t.Errorf("took %d, want 2 (owner kept)", got)
	}
	if !s.Owner || s.Tokens != 1 {
		t.Errorf("state after = %+v", s)
	}
}

func TestTokenCountFor(t *testing.T) {
	cases := map[int]int{1: 2, 3: 4, 4: 8, 47: 64, 48: 64, 63: 64, 64: 128}
	for caches, want := range cases {
		if got := TokenCountFor(caches); got != want {
			t.Errorf("TokenCountFor(%d) = %d, want %d", caches, got, want)
		}
	}
}

// Property: TokenCountFor always strictly exceeds the cache count (the
// persistent-read guarantee) and is a power of two.
func TestPropertyTokenCount(t *testing.T) {
	f := func(c uint8) bool {
		n := TokenCountFor(int(c))
		return n > int(c) && n&(n-1) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Merge then TakeAll conserves the token count.
func TestPropertyMergeTakeConserves(t *testing.T) {
	f := func(a, b uint8, owner bool) bool {
		s := &State{}
		s.Merge(int(a), false, false, 0, false)
		s.Merge(int(b), owner, owner, 1, false)
		tk, _, _, _, _ := s.TakeAll()
		return tk == int(a)+int(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistributedTablePriority(t *testing.T) {
	tb := NewDistributedTable(4)
	tb.Insert(2, 5, ReqWrite, 12)
	tb.Insert(1, 5, ReqRead, 11)
	tb.Insert(3, 6, ReqWrite, 13)
	p, e, ok := tb.Active(5)
	if !ok || p != 1 || e.Kind != ReqRead {
		t.Errorf("active = proc %d (%v), want proc 1 read", p, ok)
	}
	if !tb.IsActive(1) || tb.IsActive(2) {
		t.Error("IsActive priority wrong")
	}
	// Deactivating the winner promotes the next.
	tb.Deactivate(1)
	p, _, ok = tb.Active(5)
	if !ok || p != 2 {
		t.Errorf("next active = %d, want 2", p)
	}
	// Block 6 is independent.
	if p, _, ok := tb.Active(6); !ok || p != 3 {
		t.Errorf("block 6 active = %d (%v)", p, ok)
	}
}

func TestMarkingMechanism(t *testing.T) {
	tb := NewDistributedTable(4)
	tb.Insert(0, 5, ReqWrite, 10)
	tb.Insert(2, 5, ReqWrite, 12)
	tb.Deactivate(0)
	tb.MarkAllFor(5)
	if !tb.HasMarked(5) {
		t.Fatal("entry not marked")
	}
	tb.Deactivate(2)
	if tb.HasMarked(5) {
		t.Fatal("mark survived deactivation")
	}
}

func TestArbiterFIFO(t *testing.T) {
	a := NewArbiter()
	if !a.Request(9, 0, ReqWrite, 10) {
		t.Fatal("first request should activate")
	}
	if a.Request(9, 1, ReqRead, 11) {
		t.Fatal("second request should queue")
	}
	next, proc, ok := a.Done(9, 0)
	if !ok || proc != 1 || next.Kind != ReqRead {
		t.Errorf("next = proc %d (%v)", proc, ok)
	}
	if _, _, ok := a.Done(9, 1); ok {
		t.Error("queue should be empty")
	}
}

func TestArbiterCancelQueued(t *testing.T) {
	a := NewArbiter()
	a.Request(9, 0, ReqWrite, 10)
	a.Request(9, 1, ReqWrite, 11)
	a.Request(9, 2, ReqWrite, 12)
	// Cancel the queued (not active) proc 1.
	_, _, wasActive, _ := a.Cancel(9, 1)
	if wasActive {
		t.Fatal("proc 1 was not active")
	}
	next, proc, _, ok := a.Cancel(9, 0) // finish the active one
	if !ok || proc != 2 || !next.Valid {
		t.Errorf("next after cancel = proc %d (%v)", proc, ok)
	}
}

func TestTimeoutEstimator(t *testing.T) {
	e := NewTimeoutEstimator(sim.NS(400))
	if e.Timeout() != sim.NS(800) {
		t.Errorf("initial timeout = %v, want 800ns", e.Timeout())
	}
	e.Observe(sim.NS(100))
	if e.Timeout() != sim.NS(200) {
		t.Errorf("timeout after observe = %v, want 200ns", e.Timeout())
	}
	// EWMA pulls toward new samples.
	for i := 0; i < 20; i++ {
		e.Observe(sim.NS(300))
	}
	if e.Timeout() < sim.NS(500) {
		t.Errorf("timeout = %v, want near 600ns", e.Timeout())
	}
	// Floor applies.
	f := NewTimeoutEstimator(sim.NS(400))
	f.Observe(sim.NS(1))
	if f.Timeout() != f.Floor {
		t.Errorf("floored timeout = %v, want %v", f.Timeout(), f.Floor)
	}
}
