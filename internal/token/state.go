// Package token implements the flat correctness substrate of token
// coherence as extended to M-CMP systems by the paper (Section 3).
//
// Safety: every block has exactly T tokens, one distinguished as the
// owner token. A cache may read a block while holding at least one token
// and valid data, and may write only while holding all T tokens. Tokens
// are exchanged among *caches* (L1 data, L1 instruction, L2 banks) and
// memory controllers — not among nodes — which is what makes the
// substrate flat in an M-CMP.
//
// Starvation avoidance: when transient requests fail, the substrate
// issues persistent requests. Two activation mechanisms are provided:
// the original arbiter-based scheme (one arbiter per memory controller)
// and the paper's new distributed scheme (per-processor entries in every
// cache, fixed priority, and a marking mechanism that throttles
// re-requests). Persistent read requests, which force holders to give up
// all but one token, are also implemented.
package token

import "tokencmp/internal/sim"

// State is the per-line token-coherence state held by a cache or, per
// block, by a memory controller.
type State struct {
	Tokens  int    // tokens held, including the owner token if Owner
	Owner   bool   // holds the owner token
	HasData bool   // holds valid data (always true when Owner)
	Dirty   bool   // data modified relative to memory
	Data    uint64 // modeled block value

	// HoldUntil implements the response-delay mechanism (§3.2): the
	// holder ignores token-stealing requests until this time so a short
	// critical section can complete. Zero means no hold.
	HoldUntil sim.Time
}

// CanRead reports whether a processor may read the block in this state.
func (s *State) CanRead() bool { return s.Tokens >= 1 && s.HasData }

// CanWrite reports whether a processor may write the block in this state,
// given the system-wide token count t.
func (s *State) CanWrite(t int) bool { return s.Tokens == t && s.HasData }

// Empty reports whether the state holds nothing that must be preserved.
func (s *State) Empty() bool { return s.Tokens == 0 }

// Merge folds an arriving message payload (tokens, owner, data) into s.
func (s *State) Merge(tokens int, owner bool, hasData bool, data uint64, dirty bool) {
	s.Tokens += tokens
	if owner {
		s.Owner = true
	}
	if hasData {
		s.HasData = true
		s.Data = data
		if dirty {
			s.Dirty = true
		}
	}
}

// TakeAll removes and returns everything: the full token count, owner
// status, and data. The state becomes empty.
func (s *State) TakeAll() (tokens int, owner, hasData bool, data uint64, dirty bool) {
	tokens, owner, hasData, data, dirty = s.Tokens, s.Owner, s.HasData, s.Data, s.Dirty
	*s = State{}
	return
}

// TakeTokens removes up to n non-owner tokens, never taking the owner
// token or the last token backing valid data unless the state would
// remain consistent. It returns the number actually taken.
func (s *State) TakeTokens(n int) int {
	avail := s.Tokens
	if s.Owner {
		avail-- // never give the owner token away via TakeTokens
	}
	if n > avail {
		n = avail
	}
	if n < 0 {
		n = 0
	}
	s.Tokens -= n
	if s.Tokens == 0 {
		// No tokens left: data may no longer be read.
		s.HasData = false
		s.Dirty = false
	}
	return n
}

// TokenCountFor returns the system-wide token count T for a system with
// the given number of caches: the smallest power of two strictly greater
// than the cache count, so that (1) all caches can share a block and (2)
// a persistent read request — which leaves at most one token at each
// cache — is guaranteed to obtain a token (§3.2).
func TokenCountFor(caches int) int {
	t := 1
	for t <= caches {
		t <<= 1
	}
	return t
}
