package token

import "tokencmp/internal/sim"

// TimeoutEstimator sets the transient-request timeout threshold.
//
// TokenB averaged the latency of all responses, but in an M-CMP fast
// on-chip hits dominate the average and trigger rapid retry bursts; the
// TokenCMP variants instead set their threshold using responses from
// memory only (Section 4). The estimator keeps an exponentially weighted
// moving average of observed memory-response latencies and reports a
// multiple of it as the timeout.
type TimeoutEstimator struct {
	// Initial is used before any observation.
	Initial sim.Time
	// Multiplier scales the average into a threshold (default 2).
	Multiplier int
	// Floor bounds the threshold from below.
	Floor sim.Time

	avg sim.Time
	n   int
}

// NewTimeoutEstimator returns an estimator with the given initial guess.
func NewTimeoutEstimator(initial sim.Time) *TimeoutEstimator {
	return &TimeoutEstimator{Initial: initial, Multiplier: 2, Floor: sim.NS(100)}
}

// Observe records a memory-response latency.
func (t *TimeoutEstimator) Observe(lat sim.Time) {
	if t.n == 0 {
		t.avg = lat
	} else {
		// EWMA with weight 1/4 on the new sample.
		t.avg = (3*t.avg + lat) / 4
	}
	t.n++
}

// Timeout reports the current retry threshold.
func (t *TimeoutEstimator) Timeout() sim.Time {
	base := t.Initial
	if t.n > 0 {
		base = t.avg
	}
	th := base * sim.Time(t.Multiplier)
	if th < t.Floor {
		th = t.Floor
	}
	return th
}

// Samples reports the number of observations.
func (t *TimeoutEstimator) Samples() int { return t.n }
