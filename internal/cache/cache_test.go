package cache

import (
	"testing"
	"testing/quick"

	"tokencmp/internal/mem"
)

type lineState struct{ v int }

func newTest(sizeBlocks, ways int) *Array[lineState] {
	return New[lineState](Params{SizeBytes: sizeBlocks * 64, Ways: ways, BlockSize: 64})
}

func TestLookupMissThenInstall(t *testing.T) {
	a := newTest(16, 4)
	if a.Lookup(5) != nil {
		t.Fatal("unexpected hit")
	}
	line, _, _, evicted := a.Install(5)
	if evicted {
		t.Fatal("eviction from empty cache")
	}
	line.State.v = 42
	got := a.Lookup(5)
	if got == nil || got.State.v != 42 {
		t.Fatal("lookup after install failed")
	}
}

func TestLRUEviction(t *testing.T) {
	a := newTest(4, 4) // one set of 4 ways... 4 blocks/4 ways = 1 set
	if a.Sets() != 1 {
		t.Fatalf("sets = %d, want 1", a.Sets())
	}
	for b := mem.Block(0); b < 4; b++ {
		a.Install(b)
	}
	a.Touch(0) // 0 most recent; 1 is LRU
	_, victim, _, evicted := a.Install(10)
	if !evicted || victim != 1 {
		t.Errorf("victim = %v (evicted=%v), want block 1", victim, evicted)
	}
}

func TestInstallExistingDoesNotEvict(t *testing.T) {
	a := newTest(4, 4)
	for b := mem.Block(0); b < 4; b++ {
		a.Install(b)
	}
	_, _, _, evicted := a.Install(2)
	if evicted {
		t.Error("reinstall of resident block evicted something")
	}
}

func TestInvalidate(t *testing.T) {
	a := newTest(16, 4)
	line, _, _, _ := a.Install(7)
	line.State.v = 9
	st, ok := a.Invalidate(7)
	if !ok || st.v != 9 {
		t.Fatalf("invalidate returned (%v, %v)", st, ok)
	}
	if a.Lookup(7) != nil {
		t.Fatal("block still present after invalidate")
	}
	if _, ok := a.Invalidate(7); ok {
		t.Fatal("double invalidate reported a line")
	}
}

func TestInstallAvoidingPinned(t *testing.T) {
	a := newTest(4, 4)
	for b := mem.Block(0); b < 4; b++ {
		line, _, _, _ := a.Install(b)
		line.State.v = 1 // mark pinned via predicate below
	}
	avoid := func(st *lineState) bool { return st.v == 1 }
	_, _, _, _, ok := a.InstallAvoiding(20, avoid)
	if ok {
		t.Fatal("installed despite all ways pinned")
	}
	// Unpin one line; it must be chosen.
	a.Lookup(2).State.v = 0
	_, victim, _, wasEvicted, ok := a.InstallAvoiding(20, avoid)
	if !ok || !wasEvicted || victim != 2 {
		t.Errorf("victim = %v (ok=%v), want block 2", victim, ok)
	}
}

func TestSetIndexing(t *testing.T) {
	a := newTest(64, 4) // 16 sets
	// Blocks 0 and 16 map to the same set; fill it with the conflict
	// chain and confirm blocks in other sets survive.
	for i := 0; i < 5; i++ {
		a.Install(mem.Block(i * 16))
	}
	a.Install(1) // different set
	if a.Lookup(1) == nil {
		t.Fatal("cross-set interference")
	}
}

func TestForEachAndCount(t *testing.T) {
	a := newTest(16, 4)
	for b := mem.Block(0); b < 10; b++ {
		a.Install(b)
	}
	if a.Count() != 10 {
		t.Errorf("count = %d, want 10", a.Count())
	}
	sum := 0
	a.ForEach(func(b mem.Block, s *lineState) { sum += int(b) })
	if sum != 45 {
		t.Errorf("block sum = %d, want 45", sum)
	}
}

// Property: the cache never holds more valid lines than its capacity and
// never holds duplicates.
func TestPropertyCapacityAndUniqueness(t *testing.T) {
	f := func(blocks []uint8) bool {
		a := newTest(8, 2) // 4 sets × 2 ways
		for _, b := range blocks {
			a.Install(mem.Block(b))
		}
		if a.Count() > 8 {
			return false
		}
		seen := map[mem.Block]bool{}
		dup := false
		a.ForEach(func(b mem.Block, _ *lineState) {
			if seen[b] {
				dup = true
			}
			seen[b] = true
		})
		return !dup
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: a just-installed block is always resident.
func TestPropertyInstallThenHit(t *testing.T) {
	f := func(blocks []uint16) bool {
		a := newTest(32, 4)
		for _, b := range blocks {
			a.Install(mem.Block(b))
			if a.Lookup(mem.Block(b)) == nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
