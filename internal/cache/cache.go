// Package cache provides a generic set-associative cache array with
// true-LRU replacement. Protocol controllers embed their per-line
// coherence state as the type parameter, so the same array implements
// MOESI L1s, token-counting L1s, and banked L2s.
package cache

import (
	"tokencmp/internal/mem"
)

// Line couples a block tag with protocol state.
type Line[S any] struct {
	Block mem.Block
	Valid bool
	State S

	lru uint64
}

// Array is a set-associative cache with true-LRU replacement.
type Array[S any] struct {
	sets, ways int
	lines      [][]Line[S]
	tick       uint64
}

// Params sizes an array.
type Params struct {
	SizeBytes int
	Ways      int
	BlockSize int
}

// Sets computes the number of sets implied by the parameters.
func (p Params) Sets() int {
	s := p.SizeBytes / (p.Ways * p.BlockSize)
	if s < 1 {
		s = 1
	}
	return s
}

// New builds an array with the given geometry.
func New[S any](p Params) *Array[S] {
	sets := p.Sets()
	a := &Array[S]{sets: sets, ways: p.Ways}
	a.lines = make([][]Line[S], sets)
	backing := make([]Line[S], sets*p.Ways)
	for i := range a.lines {
		a.lines[i], backing = backing[:p.Ways], backing[p.Ways:]
	}
	return a
}

// Sets reports the number of sets.
func (a *Array[S]) Sets() int { return a.sets }

// Ways reports the associativity.
func (a *Array[S]) Ways() int { return a.ways }

func (a *Array[S]) set(b mem.Block) []Line[S] {
	return a.lines[uint64(b)%uint64(a.sets)]
}

// Lookup returns the line holding b, or nil. It does not touch LRU state;
// call Touch on a hit that should refresh recency.
func (a *Array[S]) Lookup(b mem.Block) *Line[S] {
	set := a.set(b)
	for i := range set {
		if set[i].Valid && set[i].Block == b {
			return &set[i]
		}
	}
	return nil
}

// Touch marks b most recently used.
func (a *Array[S]) Touch(b mem.Block) {
	if l := a.Lookup(b); l != nil {
		a.TouchLine(l)
	}
}

// TouchLine marks an already-found line most recently used, skipping
// Touch's set rescan.
func (a *Array[S]) TouchLine(l *Line[S]) {
	a.tick++
	l.lru = a.tick
}

// Victim returns the line that would be replaced to make room for b: an
// invalid way if one exists, otherwise the LRU line of b's set. The
// returned line may hold live state the caller must write back before
// calling Install.
func (a *Array[S]) Victim(b mem.Block) *Line[S] {
	set := a.set(b)
	var victim *Line[S]
	for i := range set {
		if !set[i].Valid {
			return &set[i]
		}
		if victim == nil || set[i].lru < victim.lru {
			victim = &set[i]
		}
	}
	return victim
}

// Install claims a line for b, evicting per Victim. It returns the new
// line plus, if a live line was displaced, its block and former state so
// the caller can write it back. The new line's State is the zero value.
// The hit line, an invalid way, and the LRU victim are all found in one
// scan of the set (the old Lookup+Touch+Victim sequence scanned it three
// times).
func (a *Array[S]) Install(b mem.Block) (line *Line[S], evicted mem.Block, victimState S, wasEvicted bool) {
	var zero S
	set := a.set(b)
	var victim *Line[S]
	for i := range set {
		l := &set[i]
		if !l.Valid {
			if victim == nil || victim.Valid {
				victim = l // first invalid way wins over any LRU choice
			}
			continue
		}
		if l.Block == b {
			a.TouchLine(l)
			return l, 0, zero, false
		}
		if victim == nil || (victim.Valid && l.lru < victim.lru) {
			victim = l
		}
	}
	if victim.Valid {
		evicted, victimState, wasEvicted = victim.Block, victim.State, true
	}
	victim.Block = b
	victim.Valid = true
	victim.State = zero
	a.tick++
	victim.lru = a.tick
	return victim, evicted, victimState, wasEvicted
}

// InstallAvoiding is Install with a victim predicate: lines for which
// avoid returns true (e.g. lines pinned by an in-flight transaction) are
// never displaced. It reports ok=false, installing nothing, if every way
// of b's set is unavailable.
func (a *Array[S]) InstallAvoiding(b mem.Block, avoid func(st *S) bool) (line *Line[S], evicted mem.Block, victimState S, wasEvicted, ok bool) {
	var zero S
	set := a.set(b)
	// One scan finds the hit line, the first invalid way, and the LRU
	// victim together (the old Lookup-then-victim-scan walked the set
	// twice).
	var victim *Line[S]
	for i := range set {
		l := &set[i]
		if !l.Valid {
			if victim == nil || victim.Valid {
				victim = l // first invalid way wins over any LRU choice
			}
			continue
		}
		if l.Block == b {
			a.TouchLine(l)
			return l, 0, zero, false, true
		}
		if avoid != nil && avoid(&l.State) {
			continue
		}
		if victim == nil || (victim.Valid && l.lru < victim.lru) {
			victim = l
		}
	}
	if victim == nil {
		return nil, 0, zero, false, false
	}
	if victim.Valid {
		evicted, victimState, wasEvicted = victim.Block, victim.State, true
	}
	victim.Block = b
	victim.Valid = true
	victim.State = zero
	a.tick++
	victim.lru = a.tick
	return victim, evicted, victimState, wasEvicted, true
}

// Invalidate drops b if present, returning its former state.
func (a *Array[S]) Invalidate(b mem.Block) (S, bool) {
	var zero S
	if l := a.Lookup(b); l != nil {
		st := l.State
		l.Valid = false
		l.State = zero
		return st, true
	}
	return zero, false
}

// ForEach visits every valid line.
func (a *Array[S]) ForEach(fn func(b mem.Block, s *S)) {
	for si := range a.lines {
		for wi := range a.lines[si] {
			l := &a.lines[si][wi]
			if l.Valid {
				fn(l.Block, &l.State)
			}
		}
	}
}

// Count reports the number of valid lines.
func (a *Array[S]) Count() int {
	n := 0
	a.ForEach(func(mem.Block, *S) { n++ })
	return n
}
