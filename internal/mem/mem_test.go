package mem

import (
	"testing"
	"testing/quick"
)

func TestBlockOf(t *testing.T) {
	if BlockOf(0) != 0 || BlockOf(63) != 0 || BlockOf(64) != 1 {
		t.Error("block boundaries wrong")
	}
	if Block(5).Addr() != 320 {
		t.Errorf("block 5 addr = %d, want 320", Block(5).Addr())
	}
}

// Property: BlockOf inverts Block.Addr for any in-block offset.
func TestPropertyBlockRoundTrip(t *testing.T) {
	f := func(b uint32, off uint8) bool {
		blk := Block(b)
		return BlockOf(blk.Addr()+Addr(off)%BlockSize) == blk
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMapperSpread(t *testing.T) {
	m := Mapper{Banks: 4, CMPs: 4}
	banks := map[int]int{}
	homes := map[int]int{}
	for b := 0; b < 4096; b++ {
		banks[m.Bank(Block(b))]++
		homes[m.HomeCMP(Block(b))]++
	}
	for i := 0; i < 4; i++ {
		if banks[i] != 1024 {
			t.Errorf("bank %d got %d blocks, want 1024", i, banks[i])
		}
		if homes[i] != 1024 {
			t.Errorf("home %d got %d blocks, want 1024", i, homes[i])
		}
	}
}

func TestMapperDegenerate(t *testing.T) {
	m := Mapper{Banks: 1, CMPs: 1}
	for b := 0; b < 100; b++ {
		if m.Bank(Block(b)) != 0 || m.HomeCMP(Block(b)) != 0 {
			t.Fatal("single bank/CMP must map to zero")
		}
	}
}

// Property: mappings are always within range.
func TestPropertyMapperInRange(t *testing.T) {
	m := Mapper{Banks: 4, CMPs: 4}
	f := func(b uint64) bool {
		return m.Bank(Block(b)) < 4 && m.HomeCMP(Block(b)) < 4
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
