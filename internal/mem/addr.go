// Package mem defines physical addresses, cache-block geometry, and the
// static address-to-home mappings used throughout the simulated M-CMP
// system: which L2 bank inside a CMP serves a block and which CMP's
// memory controller is the block's home.
package mem

import "fmt"

// Addr is a physical byte address.
type Addr uint64

// BlockBits is log2 of the cache block size (64-byte blocks, Table 3).
const BlockBits = 6

// BlockSize is the coherence granularity in bytes.
const BlockSize = 1 << BlockBits

// Block identifies a cache block (an address with the offset stripped).
type Block uint64

// BlockOf returns the block containing a.
func BlockOf(a Addr) Block { return Block(a >> BlockBits) }

// Addr returns the first byte address of block b.
func (b Block) Addr() Addr { return Addr(b) << BlockBits }

func (b Block) String() string { return fmt.Sprintf("blk%#x", uint64(b)) }

// Mapper computes static home/bank assignments from block addresses.
// Low-order block-address bits interleave across L2 banks; the next bits
// interleave across CMP homes, spreading consecutive blocks as real
// systems do.
type Mapper struct {
	Banks int // L2 banks per CMP
	CMPs  int // CMP nodes in the system
}

// Bank returns the index of the L2 bank (within any CMP) that serves b.
func (m Mapper) Bank(b Block) int {
	if m.Banks <= 1 {
		return 0
	}
	return int(uint64(b) % uint64(m.Banks))
}

// HomeCMP returns the CMP whose memory controller is home for b.
func (m Mapper) HomeCMP(b Block) int {
	if m.CMPs <= 1 {
		return 0
	}
	return int((uint64(b) / uint64(max(m.Banks, 1))) % uint64(m.CMPs))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
