// Package mc is an explicit-state model checker reproducing the paper's
// Section 5 verification study. It exhaustively enumerates the reachable
// states of small protocol configurations (the paper's TLA+/TLC role),
// checking:
//
//   - safety invariants in every reachable state (token conservation,
//     the coherence invariant, and a serial view of memory);
//   - deadlock freedom (every non-quiescent state has a successor);
//   - starvation freedom as the CTL property AG(pending → EF satisfied),
//     decided by backward reachability over the explored state graph —
//     under fair scheduling this implies every persistent request is
//     eventually satisfied.
//
// Because the token models drive the performance-policy interface
// nondeterministically (any holder may spill any tokens toward any cache
// at any time), verifying them covers all possible performance policies,
// which is the paper's central verification argument.
package mc

import (
	"fmt"
	"time"

	"tokencmp/internal/runner"
)

// Model is an encoded-state transition system. Implementations must be
// safe for concurrent calls: the checker expands each BFS level's
// frontier across a worker pool.
type Model interface {
	// Name identifies the model in reports.
	Name() string
	// Initial returns the initial states (encoded).
	Initial() []string
	// Successors expands a state.
	Successors(s string) []string
	// Check validates safety invariants; a non-nil error is a violation.
	Check(s string) error
	// Quiescent reports whether a state is allowed to have no successors.
	Quiescent(s string) bool
	// Pending reports whether the state has an outstanding request that
	// must eventually be satisfied.
	Pending(s string) bool
	// Satisfying reports whether the state satisfies all requests.
	Satisfying(s string) bool
}

// Result summarizes one model-checking run.
type Result struct {
	Model       string
	States      int
	Transitions int
	Diameter    int
	Elapsed     time.Duration

	Violation  error  // first safety violation, if any
	BadState   string // the violating state
	Deadlock   string // first deadlocked state, if any
	Starvation string // first pending state that cannot reach satisfaction
}

// OK reports whether every property held.
func (r *Result) OK() bool {
	return r.Violation == nil && r.Deadlock == "" && r.Starvation == ""
}

func (r *Result) String() string {
	status := "PASS"
	detail := ""
	switch {
	case r.Violation != nil:
		status = "FAIL"
		detail = fmt.Sprintf(" violation: %v", r.Violation)
	case r.Deadlock != "":
		status = "FAIL"
		detail = " deadlock"
	case r.Starvation != "":
		status = "FAIL"
		detail = " starvation"
	}
	return fmt.Sprintf("%-28s %s states=%d transitions=%d diameter=%d elapsed=%v%s",
		r.Model, status, r.States, r.Transitions, r.Diameter, r.Elapsed, detail)
}

// Check exhaustively explores model up to limit states (0 = 5,000,000)
// with one worker per CPU. Equivalent to CheckJobs(m, limit, 0).
func Check(m Model, limit int) *Result { return CheckJobs(m, limit, 0) }

// expansion is one frontier state's parallel-computed outputs.
type expansion struct {
	succs    []string
	err      error // safety violation, if any
	deadlock bool
}

// CheckJobs is Check with an explicit worker count (jobs <= 0 selects
// runner.DefaultJobs()).
//
// The exploration is level-synchronous BFS: all states at the current
// depth are expanded concurrently (Successors and the safety Check are
// the expensive calls), then their successors are merged serially in
// frontier order. Discovery order, state indices, and every Result
// field except Elapsed are therefore identical for any jobs value.
//
// The state cap is exact: at most limit states are recorded, and edges
// to states dropped by the cap are not counted as transitions, so the
// reported (States, Transitions) pair always describes a consistent
// explored subgraph.
func CheckJobs(m Model, limit, jobs int) *Result {
	if limit <= 0 {
		limit = 5_000_000
	}
	pool := runner.New(jobs)
	start := time.Now()
	res := &Result{Model: m.Name()}

	seen := make(map[string]int) // state → index into states
	var states []string
	var depths []int
	var preds [][]int32 // predecessor adjacency for backward reachability

	// push records a newly discovered state unless the cap has been
	// reached, returning its index (-1 if dropped).
	push := func(s string, depth int) int {
		if idx, ok := seen[s]; ok {
			return idx
		}
		if len(states) >= limit {
			return -1
		}
		idx := len(states)
		seen[s] = idx
		states = append(states, s)
		depths = append(depths, depth)
		preds = append(preds, nil)
		if depth > res.Diameter {
			res.Diameter = depth
		}
		return idx
	}
	for _, s := range m.Initial() {
		push(s, 0)
	}

	// BFS appends discoveries to states in level order, so the slice
	// doubles as the queue: states[lo:hi] is the current level. The
	// cursor replaces the old frontier = frontier[1:] pop, which pinned
	// the whole backing array for the life of the run.
	for lo := 0; lo < len(states); {
		hi := len(states)
		batch := states[lo:hi]
		exps := make([]expansion, len(batch))
		pool.Run(len(batch), func(i int) error {
			s := batch[i]
			e := &exps[i]
			e.err = m.Check(s)
			e.succs = m.Successors(s)
			e.deadlock = len(e.succs) == 0 && !m.Quiescent(s)
			return nil
		})
		for i := range exps {
			e := &exps[i]
			if e.err != nil && res.Violation == nil {
				res.Violation = e.err
				res.BadState = batch[i]
			}
			if e.deadlock && res.Deadlock == "" {
				res.Deadlock = batch[i]
			}
			for _, t := range e.succs {
				ti := push(t, depths[lo+i]+1)
				if ti < 0 {
					continue // dropped by the exact state cap
				}
				res.Transitions++
				preds[ti] = append(preds[ti], int32(lo+i))
			}
		}
		lo = hi
	}
	res.States = len(states)

	// Starvation check: backward reachability from satisfying states.
	// The per-state predicates decode in parallel; the propagation
	// itself is a cheap serial pass over the explored graph.
	satisfying := make([]bool, len(states))
	pending := make([]bool, len(states))
	pool.Stripe(len(states), func(i int) {
		satisfying[i] = m.Satisfying(states[i])
		pending[i] = m.Pending(states[i])
	})
	canReach := make([]bool, len(states))
	var stack []int32
	for i := range states {
		if satisfying[i] {
			canReach[i] = true
			stack = append(stack, int32(i))
		}
	}
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range preds[i] {
			if !canReach[p] {
				canReach[p] = true
				stack = append(stack, p)
			}
		}
	}
	for i, s := range states {
		if pending[i] && !canReach[i] {
			res.Starvation = s
			break
		}
	}

	res.Elapsed = time.Since(start)
	return res
}
