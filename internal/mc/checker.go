// Package mc is an explicit-state model checker reproducing the paper's
// Section 5 verification study. It exhaustively enumerates the reachable
// states of small protocol configurations (the paper's TLA+/TLC role),
// checking:
//
//   - safety invariants in every reachable state (token conservation,
//     the coherence invariant, and a serial view of memory);
//   - deadlock freedom (every non-quiescent state has a successor);
//   - starvation freedom as the CTL property AG(pending → EF satisfied),
//     decided by backward reachability over the explored state graph —
//     under fair scheduling this implies every persistent request is
//     eventually satisfied.
//
// Because the token models drive the performance-policy interface
// nondeterministically (any holder may spill any tokens toward any cache
// at any time), verifying them covers all possible performance policies,
// which is the paper's central verification argument.
//
// States are fixed-width packed binary keys (built by the models in
// internal/mc/models), carried as strings at the interface boundary so
// the state table can intern them. The checker's throughput directly
// bounds how big a configuration can be verified, so the hot path is
// allocation-free: workers expand frontiers into reusable SuccBufs,
// keys are hashed and deduplicated as raw byte views, and only the
// first discovery of a state materializes an interned string.
//
// Models whose caches are fully interchangeable additionally declare
// their layout's symmetry (see symmetry.go); with Options.Symmetry the
// checker then explores one canonical representative per cache-
// permutation orbit, shrinking the state space by up to Caches!.
package mc

import (
	"bytes"
	"context"
	"fmt"
	"hash/maphash"
	"slices"
	"sync"
	"time"

	"tokencmp/internal/runner"
)

// Model is an encoded-state transition system. Implementations must be
// safe for concurrent calls: the checker expands each BFS level's
// frontier across a worker pool. State keys are packed binary payloads
// (fixed width per model configuration) carried as strings.
type Model interface {
	// Name identifies the model in reports.
	Name() string
	// Initial returns the initial states (encoded).
	Initial() []string
	// Successors appends the packed keys of s's successors to sb.
	Successors(s string, sb *SuccBuf)
	// Check validates safety invariants; a non-nil error is a violation.
	Check(s string) error
	// Quiescent reports whether a state is allowed to have no successors.
	Quiescent(s string) bool
	// Pending reports whether the state has an outstanding request that
	// must eventually be satisfied.
	Pending(s string) bool
	// Satisfying reports whether the state satisfies all requests.
	Satisfying(s string) bool
}

// Symmetric is implemented by models whose packed layout declares its
// cache symmetry (see Symmetry in symmetry.go). Symmetry may return
// nil when the model's rules are not permutation-invariant — such a
// model is always explored unreduced. The predicate methods (Check,
// Pending, Satisfying, Quiescent) of a Symmetric model must themselves
// be permutation-invariant, since with reduction on they are evaluated
// on orbit representatives only.
type Symmetric interface {
	Symmetry() *Symmetry
}

// Options configures a checking run.
type Options struct {
	// Limit is the exact state-count cap (0 = 5,000,000). With
	// symmetry reduction it caps canonical representatives.
	Limit int
	// Jobs is the worker count (<= 0 selects runner.DefaultJobs()).
	Jobs int
	// Symmetry canonicalizes every state under cache permutation
	// before deduplication, exploring one representative per orbit.
	// It takes effect only for models that implement Symmetric with a
	// non-nil descriptor and Caches <= MaxSymmetryCaches; Result.
	// Symmetry reports whether the reduction was actually applied.
	Symmetry bool
	// Context aborts the exploration between BFS levels: once it is
	// cancelled, the current level finishes merging and the run stops
	// with Result.Interrupted set, reporting the consistent subgraph
	// explored so far (safety violations and deadlocks already found
	// are real; the starvation pass is skipped, since unexpanded
	// frontier states would read as false starvation). Nil, or a
	// never-cancellable context, checks to completion.
	Context context.Context
}

// Result summarizes one model-checking run. With symmetry reduction
// applied (Symmetry true), States, Transitions, and Diameter describe
// the quotient graph — canonical representatives, edges between them,
// and BFS depth over orbits — while FullStates is the orbit-expanded
// state count, exactly equal to the States an unreduced run reports.
type Result struct {
	Model       string
	States      int
	Transitions int
	Diameter    int
	Elapsed     time.Duration

	Symmetry   bool // whether cache-permutation reduction was applied
	FullStates int  // orbit-expanded state count (== States unreduced)

	// Interrupted marks a run aborted by Options.Context before the
	// state space was exhausted: counts describe the explored prefix
	// and the starvation property was not decided.
	Interrupted bool

	Violation  error  // first safety violation, if any
	BadState   string // the violating state
	Deadlock   string // first deadlocked state, if any
	Starvation string // first pending state that cannot reach satisfaction
}

// OK reports whether every property held.
func (r *Result) OK() bool {
	return r.Violation == nil && r.Deadlock == "" && r.Starvation == ""
}

// StatesPerSec reports exploration throughput (explored states, i.e.
// canonical representatives when symmetry reduction is on).
func (r *Result) StatesPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.States) / r.Elapsed.Seconds()
}

// ReductionX reports the orbit-reduction factor FullStates/States
// (1 when no reduction was applied).
func (r *Result) ReductionX() float64 {
	if r.States == 0 {
		return 1
	}
	return float64(r.FullStates) / float64(r.States)
}

func (r *Result) String() string {
	status := "PASS"
	detail := ""
	switch {
	case r.Violation != nil:
		status = "FAIL"
		detail = fmt.Sprintf(" violation: %v", r.Violation)
	case r.Deadlock != "":
		status = "FAIL"
		detail = " deadlock"
	case r.Starvation != "":
		status = "FAIL"
		detail = " starvation"
	case r.Interrupted:
		status = "PARTIAL"
		detail = " interrupted (counts are a prefix; starvation undecided)"
	}
	states := fmt.Sprintf("states=%d", r.States)
	if r.Symmetry {
		states = fmt.Sprintf("states=%d full=%d (%.1fx)", r.States, r.FullStates, r.ReductionX())
	}
	return fmt.Sprintf("%-28s %s %s transitions=%d diameter=%d elapsed=%v%s",
		r.Model, status, states, r.Transitions, r.Diameter, r.Elapsed, detail)
}

// Check exhaustively explores model up to limit states (0 = 5,000,000)
// with one worker per CPU and no symmetry reduction. Equivalent to
// CheckJobs(m, limit, 0).
func Check(m Model, limit int) *Result { return CheckJobs(m, limit, 0) }

// CheckJobs is Check with an explicit worker count (jobs <= 0 selects
// runner.DefaultJobs()).
func CheckJobs(m Model, limit, jobs int) *Result {
	return CheckOpt(m, Options{Limit: limit, Jobs: jobs})
}

// expansion is one frontier state's parallel-computed outputs. The
// successor keys live in the worker-filled SuccBuf and their hashes are
// computed in the worker, so the serial merge never hashes a key; mult
// folds within-expansion duplicate successors into their first
// occurrence (mult[j] < 0 marks a duplicate, otherwise it is the
// occurrence count folded into j). All three buffers are reused across
// BFS levels: a worker's allocations stop once it has seen the widest
// expansion.
type expansion struct {
	sb       SuccBuf
	hashes   []uint64
	orbits   []int32 // orbit size per successor (symmetry runs only)
	mult     []int32
	err      error // safety violation, if any
	deadlock bool
}

// stateTable is an open-addressed hash set over the discovered-state
// slice, probed with externally computed hashes. It hashes each
// discovered state exactly once (in a worker, off the serial path),
// probes with raw byte views (the string(b) == s comparison below does
// not allocate), and growth rehashes from the stored hash words without
// touching the keys.
type stateTable struct {
	hashes []uint64
	idx    []int32 // state index + 1; 0 marks an empty slot
	used   int
}

func newStateTable() *stateTable {
	const initial = 1 << 10
	return &stateTable{hashes: make([]uint64, initial), idx: make([]int32, initial)}
}

// lookup returns the index stored for (h, b), or -1, plus the slot
// where b belongs.
func (t *stateTable) lookup(h uint64, b []byte, states []string) (int32, int) {
	mask := uint64(len(t.idx) - 1)
	for slot := h & mask; ; slot = (slot + 1) & mask {
		stored := t.idx[slot]
		if stored == 0 {
			return -1, int(slot)
		}
		if t.hashes[slot] == h && states[stored-1] == string(b) {
			return stored - 1, int(slot)
		}
	}
}

// insert records index at the slot lookup reported, growing at 3/4
// load.
func (t *stateTable) insert(slot int, h uint64, index int32) {
	t.hashes[slot] = h
	t.idx[slot] = index + 1
	t.used++
	if t.used*4 >= len(t.idx)*3 {
		t.grow()
	}
}

func (t *stateTable) grow() {
	oldHashes, oldIdx := t.hashes, t.idx
	t.hashes = make([]uint64, 2*len(oldIdx))
	t.idx = make([]int32, 2*len(oldIdx))
	mask := uint64(len(t.idx) - 1)
	for i, stored := range oldIdx {
		if stored == 0 {
			continue
		}
		h := oldHashes[i]
		slot := h & mask
		for t.idx[slot] != 0 {
			slot = (slot + 1) & mask
		}
		t.hashes[slot] = h
		t.idx[slot] = stored
	}
}

// CheckOpt explores m under opt.
//
// The exploration is level-synchronous BFS: all states at the current
// depth are expanded concurrently (Successors and the safety Check are
// the expensive calls), then their successors are merged serially in
// frontier order. Discovery order, state indices, and every Result
// field except Elapsed are therefore identical for any jobs value.
//
// With opt.Symmetry and a model that declares its cache symmetry,
// every emitted successor key is canonicalized in place (in the
// worker, before hashing) to the lexicographically minimal key over
// all cache permutations, so the BFS explores the quotient graph: one
// representative per orbit. The orbit sizes are summed into
// FullStates, which exactly reproduces the unreduced state count.
// Canonicalization is sound here because a Symmetric model's
// transition relation and predicates commute with permutation: the
// successors of a representative cover its whole orbit's successors up
// to renaming, safety violations and deadlocks are permutation-
// invariant, and backward reachability over the quotient graph decides
// AG(pending → EF satisfied) exactly as over the full graph.
//
// The state cap is exact: at most limit states are recorded, and edges
// to states dropped by the cap are not counted as transitions, so the
// reported (States, Transitions) pair always describes a consistent
// explored subgraph.
func CheckOpt(m Model, opt Options) *Result {
	limit := opt.Limit
	if limit <= 0 {
		limit = 5_000_000
	}
	pool := runner.New(opt.Jobs)
	start := time.Now() //simlint:ignore simdet wall-clock states/sec throughput: measures the checker, not the model
	res := &Result{Model: m.Name()}
	ctx := opt.Context
	if ctx != nil && ctx.Done() == nil {
		ctx = nil // never cancellable: skip the per-level poll
	}

	var sym *Symmetry
	if opt.Symmetry {
		if sm, ok := m.(Symmetric); ok {
			sym = sm.Symmetry()
		}
	}
	init := m.Initial()
	var canonPool *sync.Pool
	if sym != nil && len(init) > 0 {
		width := len(init[0])
		if c := sym.NewCanonicalizer(width); c != nil {
			res.Symmetry = true
			canonPool = &sync.Pool{New: func() any { return sym.NewCanonicalizer(width) }}
			canonPool.Put(c)
		} else {
			sym = nil
		}
	} else {
		sym = nil
	}

	seed := maphash.MakeSeed()
	table := newStateTable()
	var states []string
	var depths []int32
	// Unique predecessor edges, recorded flat during the BFS and
	// compacted into a CSR adjacency afterwards for the backward
	// starvation pass: two int32 words per edge instead of a boxed
	// []int32 per state.
	var edgeFrom, edgeTo []int32

	// push records a newly discovered state (with its precomputed hash)
	// unless the cap has been reached, returning its index (-1 if
	// dropped) and whether it was new. The key bytes are interned
	// (copied into an owned string) only on first discovery.
	push := func(b []byte, h uint64, depth int32) (int, bool) {
		if idx, slot := table.lookup(h, b, states); idx >= 0 {
			return int(idx), false
		} else if len(states) >= limit {
			return -1, false
		} else {
			table.insert(slot, h, int32(len(states)))
		}
		idx := len(states)
		states = append(states, string(b))
		depths = append(depths, depth)
		if int(depth) > res.Diameter {
			res.Diameter = int(depth)
		}
		return idx, true
	}
	for _, s := range init {
		b := []byte(s)
		orbit := 1
		if sym != nil {
			c := canonPool.Get().(*Canonicalizer)
			orbit = c.Canonicalize(b)
			canonPool.Put(c)
		}
		if _, isNew := push(b, maphash.Bytes(seed, b), 0); isNew {
			res.FullStates += orbit
		}
	}

	// BFS appends discoveries to states in level order, so the slice
	// doubles as the queue: states[lo:hi] is the current level, walked
	// with a cursor instead of a frontier[1:] pop that would pin the
	// whole backing array for the life of the run.
	var exps []expansion // reused across levels
	for lo := 0; lo < len(states); {
		hi := len(states)
		batch := states[lo:hi]
		if cap(exps) < len(batch) {
			next := make([]expansion, len(batch))
			copy(next, exps[:cap(exps)]) // keep every parked worker buffer, truncated tail included
			exps = next
		} else {
			exps = exps[:len(batch)]
		}
		pool.Run(len(batch), func(i int) error {
			s := batch[i]
			e := &exps[i]
			e.sb.Reset()
			m.Successors(s, &e.sb)
			n := e.sb.Len()
			e.hashes = slices.Grow(e.hashes[:0], n)[:n]
			e.mult = slices.Grow(e.mult[:0], n)[:n]
			clear(e.mult) // the fold below needs a zeroed multiplicity map
			e.err = m.Check(s)
			e.deadlock = n == 0 && !m.Quiescent(s)
			if sym != nil {
				// Canonicalize before hashing and deduplication, so two
				// successors in the same orbit fold like any other
				// duplicate and the state table only ever sees
				// representatives. Key views are rewritten in place.
				e.orbits = slices.Grow(e.orbits[:0], n)[:n]
				c := canonPool.Get().(*Canonicalizer)
				for j := 0; j < n; j++ {
					e.orbits[j] = int32(c.Canonicalize(e.sb.Key(j)))
				}
				canonPool.Put(c)
			}
			for j := 0; j < n; j++ {
				e.hashes[j] = maphash.Bytes(seed, e.sb.Key(j))
			}
			// Fold duplicate successors into their first occurrence so the
			// serial merge probes the state table once per unique successor
			// (the occurrence count keeps Transitions exactly as if each
			// duplicate were merged separately).
			for j := 0; j < n; j++ {
				if e.mult[j] < 0 {
					continue
				}
				e.mult[j] = 1
				kj := e.sb.Key(j)
				for k := j + 1; k < n; k++ {
					if e.hashes[k] == e.hashes[j] && e.mult[k] == 0 && bytes.Equal(e.sb.Key(k), kj) {
						e.mult[j]++
						e.mult[k] = -1
					}
				}
			}
			return nil
		})
		// Pre-size the discovery slices for this level's worst case, so
		// the merge loop never reallocates mid-level.
		total := 0
		for i := range exps {
			total += exps[i].sb.Len()
		}
		if room := limit - len(states); total > room {
			total = room
		}
		states = slices.Grow(states, total)
		depths = slices.Grow(depths, total)
		for i := range exps {
			e := &exps[i]
			if e.err != nil && res.Violation == nil {
				res.Violation = e.err
				res.BadState = batch[i]
			}
			if e.deadlock && res.Deadlock == "" {
				res.Deadlock = batch[i]
			}
			depth := depths[lo+i] + 1
			for j := 0; j < e.sb.Len(); j++ {
				k := e.mult[j]
				if k < 0 {
					continue // duplicate folded into an earlier occurrence
				}
				ti, isNew := push(e.sb.Key(j), e.hashes[j], depth)
				if ti < 0 {
					continue // dropped by the exact state cap
				}
				if isNew && sym != nil {
					res.FullStates += int(e.orbits[j])
				}
				res.Transitions += int(k)
				edgeFrom = append(edgeFrom, int32(lo+i))
				edgeTo = append(edgeTo, int32(ti))
			}
		}
		lo = hi
		// Cancellation is checked between levels: the merged prefix is
		// always a consistent subgraph, and a level's expansion is the
		// unit of work bounded enough for -timeout abort latency.
		if ctx != nil && ctx.Err() != nil {
			res.Interrupted = true
			break
		}
	}
	res.States = len(states)
	if sym == nil {
		res.FullStates = res.States
	}
	if res.Interrupted {
		// The starvation property cannot be decided on a truncated
		// graph (unexpanded frontier states have no outgoing edges and
		// would read as starving); report the prefix counts only.
		res.Elapsed = time.Since(start)
		return res
	}

	// Starvation check: backward reachability from satisfying states
	// over a CSR predecessor adjacency (offsets + one flat edge array)
	// built from the edge list. The per-state predicates decode in
	// parallel; the propagation itself is a cheap serial pass.
	offs := make([]int32, len(states)+1)
	for _, t := range edgeTo {
		offs[t+1]++
	}
	for i := 1; i <= len(states); i++ {
		offs[i] += offs[i-1]
	}
	preds := make([]int32, len(edgeTo))
	cursor := make([]int32, len(states))
	copy(cursor, offs[:len(states)])
	for e, t := range edgeTo {
		preds[cursor[t]] = edgeFrom[e]
		cursor[t]++
	}
	edgeFrom, edgeTo = nil, nil

	satisfying := make([]bool, len(states))
	pending := make([]bool, len(states))
	pool.Stripe(len(states), func(i int) {
		satisfying[i] = m.Satisfying(states[i])
		pending[i] = m.Pending(states[i])
	})
	canReach := make([]bool, len(states))
	stack := cursor[:0] // reuse the scatter cursor as the DFS stack
	for i := range states {
		if satisfying[i] {
			canReach[i] = true
			stack = append(stack, int32(i))
		}
	}
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range preds[offs[i]:offs[i+1]] {
			if !canReach[p] {
				canReach[p] = true
				stack = append(stack, p)
			}
		}
	}
	for i, s := range states {
		if pending[i] && !canReach[i] {
			res.Starvation = s
			break
		}
	}

	res.Elapsed = time.Since(start)
	return res
}
