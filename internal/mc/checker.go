// Package mc is an explicit-state model checker reproducing the paper's
// Section 5 verification study. It exhaustively enumerates the reachable
// states of small protocol configurations (the paper's TLA+/TLC role),
// checking:
//
//   - safety invariants in every reachable state (token conservation,
//     the coherence invariant, and a serial view of memory);
//   - deadlock freedom (every non-quiescent state has a successor);
//   - starvation freedom as the CTL property AG(pending → EF satisfied),
//     decided by backward reachability over the explored state graph —
//     under fair scheduling this implies every persistent request is
//     eventually satisfied.
//
// Because the token models drive the performance-policy interface
// nondeterministically (any holder may spill any tokens toward any cache
// at any time), verifying them covers all possible performance policies,
// which is the paper's central verification argument.
package mc

import (
	"fmt"
	"time"
)

// Model is an encoded-state transition system.
type Model interface {
	// Name identifies the model in reports.
	Name() string
	// Initial returns the initial states (encoded).
	Initial() []string
	// Successors expands a state.
	Successors(s string) []string
	// Check validates safety invariants; a non-nil error is a violation.
	Check(s string) error
	// Quiescent reports whether a state is allowed to have no successors.
	Quiescent(s string) bool
	// Pending reports whether the state has an outstanding request that
	// must eventually be satisfied.
	Pending(s string) bool
	// Satisfying reports whether the state satisfies all requests.
	Satisfying(s string) bool
}

// Result summarizes one model-checking run.
type Result struct {
	Model       string
	States      int
	Transitions int
	Diameter    int
	Elapsed     time.Duration

	Violation  error  // first safety violation, if any
	BadState   string // the violating state
	Deadlock   string // first deadlocked state, if any
	Starvation string // first pending state that cannot reach satisfaction
}

// OK reports whether every property held.
func (r *Result) OK() bool {
	return r.Violation == nil && r.Deadlock == "" && r.Starvation == ""
}

func (r *Result) String() string {
	status := "PASS"
	detail := ""
	switch {
	case r.Violation != nil:
		status = "FAIL"
		detail = fmt.Sprintf(" violation: %v", r.Violation)
	case r.Deadlock != "":
		status = "FAIL"
		detail = " deadlock"
	case r.Starvation != "":
		status = "FAIL"
		detail = " starvation"
	}
	return fmt.Sprintf("%-28s %s states=%d transitions=%d diameter=%d elapsed=%v%s",
		r.Model, status, r.States, r.Transitions, r.Diameter, r.Elapsed, detail)
}

// Check exhaustively explores model up to limit states (0 = 5,000,000).
func Check(m Model, limit int) *Result {
	if limit <= 0 {
		limit = 5_000_000
	}
	start := time.Now()
	res := &Result{Model: m.Name()}

	type nodeInfo struct {
		idx   int
		depth int
	}
	seen := make(map[string]nodeInfo)
	var states []string
	var frontier []string
	var preds [][]int32 // predecessor adjacency for backward reachability

	push := func(s string, depth int) int {
		if ni, ok := seen[s]; ok {
			return ni.idx
		}
		idx := len(states)
		seen[s] = nodeInfo{idx: idx, depth: depth}
		states = append(states, s)
		preds = append(preds, nil)
		frontier = append(frontier, s)
		if depth > res.Diameter {
			res.Diameter = depth
		}
		return idx
	}
	for _, s := range m.Initial() {
		push(s, 0)
	}

	for len(frontier) > 0 && len(states) <= limit {
		s := frontier[0]
		frontier = frontier[1:]
		ni := seen[s]

		if err := m.Check(s); err != nil && res.Violation == nil {
			res.Violation = err
			res.BadState = s
		}
		succs := m.Successors(s)
		if len(succs) == 0 && !m.Quiescent(s) && res.Deadlock == "" {
			res.Deadlock = s
		}
		for _, t := range succs {
			res.Transitions++
			ti := push(t, ni.depth+1)
			preds[ti] = append(preds[ti], int32(ni.idx))
		}
	}
	res.States = len(states)

	// Starvation check: backward reachability from satisfying states.
	canReach := make([]bool, len(states))
	var stack []int32
	for i, s := range states {
		if m.Satisfying(s) {
			canReach[i] = true
			stack = append(stack, int32(i))
		}
	}
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range preds[i] {
			if !canReach[p] {
				canReach[p] = true
				stack = append(stack, p)
			}
		}
	}
	for i, s := range states {
		if m.Pending(s) && !canReach[i] {
			res.Starvation = s
			break
		}
	}

	res.Elapsed = time.Since(start)
	return res
}
