package mc

import "bytes"

// This file implements Ip & Dill scalarset-style symmetry reduction
// over the packed binary state keys. The caches of a model
// configuration are fully interchangeable (the paper's Section 5
// configurations have no per-cache asymmetry), so states differing
// only by a permutation of cache IDs are equivalent: exploring one
// canonical representative per orbit shrinks the reachable state space
// by up to Caches! and puts larger cache counts and message bounds
// within the checker's reach.
//
// A model opts in by describing where cache indices live inside its
// packed key (a Symmetry descriptor) instead of hand-writing a
// canonicalizer: per-cache record groups move wholesale under a
// permutation, reference bytes (message destinations, directory owner,
// arbiter queue entries) are renumbered, sharer bitmasks permute
// bitwise, and byte-sorted message-slot regions are re-sorted after
// renumbering. The canonical representative is the lexicographically
// minimal key over all permutations.
//
// Soundness requires the model's transition relation itself to be
// permutation-invariant: for every rule and permutation π,
// π(succ(s)) == succ(π(s)). A model whose rules order caches — the
// distributed-activation token model arbitrates persistent requests by
// lowest cache index — must return a nil descriptor and is explored
// unreduced.

// MaxSymmetryCaches bounds the cache counts the canonicalizer accepts.
// Orbit sizes are counted in units of Caches!, and canonicalizing a
// fully symmetric state degenerates to trying all Caches!
// permutations, so the reduction is enabled only for small
// configurations (which is where exhaustive checking lives anyway).
const MaxSymmetryCaches = 8

// RefEnc says how a byte encodes a cache reference.
type RefEnc uint8

const (
	// RefPlain bytes hold a cache index directly. Values >= Caches
	// (the memory holder, 0xFF slot padding) are fixed points.
	RefPlain RefEnc = iota
	// RefPlus1 bytes hold index+1, with 0 meaning "none" (-1 when
	// decoded). Values above Caches are fixed points.
	RefPlus1
)

// Ref locates one cache-reference byte: at a fixed key offset, or —
// inside a SlotRegion — at an offset within each record.
type Ref struct {
	Off int
	Enc RefEnc
}

// Group is a run of Caches fixed-width per-cache records starting at
// Off: record i belongs to cache i and moves to position π(i) under a
// permutation π.
type Group struct {
	Off, Stride int
}

// SlotRegion is a byte-sorted message-slot area: the count byte at
// CountOff gives the number of live W-byte records at Off, each
// possibly containing cache-reference bytes. Renumbering the
// references perturbs the records' sort order, so the live records are
// re-sorted after remapping (padding slots compare high and stay put).
type SlotRegion struct {
	CountOff int
	Off      int
	W        int
	Refs     []Ref
}

// Symmetry describes where cache indices live inside a model's packed
// key. Groups must be listed in ascending key order, and Groups[0]
// must be the first symmetric content in the key — both hold for
// layouts that lead with the per-cache records, as all the models'
// layouts do. Everything not covered by a Group, Ref, Mask, or
// SlotRegion ref byte must be permutation-invariant.
type Symmetry struct {
	Caches int
	Groups []Group
	Refs   []Ref        // fixed-position references (directory trailer, arbiter queue)
	Masks  []int        // offsets of little-endian uint32 bitmasks with bit q ↔ cache q
	Slots  []SlotRegion // byte-sorted message-slot regions
}

// factorial of n for n <= MaxSymmetryCaches.
func factorial(n int) int {
	f := 1
	for i := 2; i <= n; i++ {
		f *= i
	}
	return f
}

// Canonicalizer rewrites packed keys to their orbit-minimal
// representative. It holds per-instance scratch, so each checker
// worker needs its own (the checker pools them).
type Canonicalizer struct {
	sym  *Symmetry
	fact int // Caches!

	order      []uint8 // order[j] = cache placed at position j
	pos        []uint8 // pos[i] = position of cache i (inverse of order)
	ends       []int   // tie-cluster end positions within order
	cand, best []byte
	src        []byte // key being canonicalized (general path)
	hits       int    // candidates that produced best (= stabilizer size)
}

// NewCanonicalizer builds a canonicalizer for keys of the given width.
// It returns nil when the descriptor is nil or the configuration is
// outside the symmetry-reduction range.
func (s *Symmetry) NewCanonicalizer(width int) *Canonicalizer {
	if s == nil || s.Caches < 2 || s.Caches > MaxSymmetryCaches {
		return nil
	}
	return &Canonicalizer{
		sym:   s,
		fact:  factorial(s.Caches),
		order: make([]uint8, s.Caches),
		pos:   make([]uint8, s.Caches),
		ends:  make([]int, 0, s.Caches),
		cand:  make([]byte, width),
		best:  make([]byte, width),
	}
}

// Canonicalize rewrites key in place to the lexicographically minimal
// key over all cache permutations and returns the orbit size — the
// number of distinct keys the orbit contains (Caches! divided by the
// state's stabilizer), so summing it over discovered representatives
// reproduces the unreduced state count exactly.
func (c *Canonicalizer) Canonicalize(key []byte) int {
	s := c.sym
	n := s.Caches
	ord := c.order[:n]
	for i := range ord {
		ord[i] = uint8(i)
	}

	if !c.liveRefs(key) {
		// Fast path: no cache reference outside the record groups is
		// live, so the regions between the groups are
		// permutation-invariant and the minimal key simply sorts the
		// per-cache composite records (Groups[0] record first, ties
		// broken by the later groups, which follow in key order).
		for i := 1; i < n; i++ {
			for j := i; j > 0 && c.cmpRecords(key, ord[j-1], ord[j], len(s.Groups)) > 0; j-- {
				ord[j-1], ord[j] = ord[j], ord[j-1]
			}
		}
		stab, run := 1, 1
		for j := 1; j <= n; j++ {
			if j < n && c.cmpRecords(key, ord[j-1], ord[j], len(s.Groups)) == 0 {
				run++
			} else {
				stab *= factorial(run)
				run = 1
			}
		}
		if !isIdentity(ord) {
			c.apply(key, c.cand, c.invert(ord))
			copy(key, c.cand)
		}
		return c.fact / stab
	}

	// General path: the minimal key must arrange Groups[0] in
	// ascending record order (it is the first permutation-sensitive
	// content in the key), so only orders within ties of that record
	// are candidates; every candidate is applied in full — references
	// renumbered, slots re-sorted — and compared. The number of
	// candidates that achieve the minimum is the stabilizer size.
	for i := 1; i < n; i++ {
		for j := i; j > 0 && c.cmpRecords(key, ord[j-1], ord[j], 1) > 0; j-- {
			ord[j-1], ord[j] = ord[j], ord[j-1]
		}
	}
	c.ends = c.ends[:0]
	for j := 1; j <= n; j++ {
		if j == n || c.cmpRecords(key, ord[j-1], ord[j], 1) != 0 {
			c.ends = append(c.ends, j)
		}
	}
	if len(c.ends) == n && isIdentity(ord) {
		// Sole candidate and it is the identity: the key is already
		// canonical (its Groups[0] records are strictly ascending, so
		// the stabilizer is trivial and the orbit is full).
		return c.fact
	}
	c.src = key
	c.hits = 0
	c.enumerate(0)
	c.src = nil
	copy(key, c.best)
	return c.fact / c.hits
}

// cmpRecords compares caches a and b by their records in the first
// ngroups groups, in key order.
func (c *Canonicalizer) cmpRecords(key []byte, a, b uint8, ngroups int) int {
	for _, g := range c.sym.Groups[:ngroups] {
		ra := key[g.Off+int(a)*g.Stride : g.Off+(int(a)+1)*g.Stride]
		rb := key[g.Off+int(b)*g.Stride : g.Off+(int(b)+1)*g.Stride]
		if d := bytes.Compare(ra, rb); d != 0 {
			return d
		}
	}
	return 0
}

// isIdentity reports whether ord is 0..n-1 in order.
func isIdentity(ord []uint8) bool {
	for j, cache := range ord {
		if int(cache) != j {
			return false
		}
	}
	return true
}

// invert fills pos from ord.
func (c *Canonicalizer) invert(ord []uint8) []uint8 {
	pos := c.pos[:len(ord)]
	for j, cache := range ord {
		pos[cache] = uint8(j)
	}
	return pos
}

// enumerate walks every arrangement of the tie clusters (the
// permutations within c.ends-bounded runs of c.order), trying each.
func (c *Canonicalizer) enumerate(cluster int) {
	if cluster == len(c.ends) {
		c.try()
		return
	}
	lo := 0
	if cluster > 0 {
		lo = c.ends[cluster-1]
	}
	c.permuteRange(lo, c.ends[cluster], cluster)
}

// permuteRange generates all orders of c.order[lo:hi] (one tie
// cluster), descending into the next cluster for each.
func (c *Canonicalizer) permuteRange(lo, hi, cluster int) {
	if lo >= hi {
		c.enumerate(cluster + 1)
		return
	}
	for i := lo; i < hi; i++ {
		c.order[lo], c.order[i] = c.order[i], c.order[lo]
		c.permuteRange(lo+1, hi, cluster)
		c.order[lo], c.order[i] = c.order[i], c.order[lo]
	}
}

// try applies the current candidate order and folds it into best.
func (c *Canonicalizer) try() {
	c.apply(c.src, c.cand, c.invert(c.order[:c.sym.Caches]))
	if c.hits == 0 {
		copy(c.best, c.cand)
		c.hits = 1
		return
	}
	switch bytes.Compare(c.cand, c.best) {
	case -1:
		copy(c.best, c.cand)
		c.hits = 1
	case 0:
		c.hits++
	}
}

// remapRef renumbers one reference byte under pos.
func remapRef(b byte, enc RefEnc, pos []uint8, n int) byte {
	switch enc {
	case RefPlain:
		if int(b) < n {
			return pos[b]
		}
	case RefPlus1:
		if b >= 1 && int(b) <= n {
			return pos[b-1] + 1
		}
	}
	return b
}

// refLive reports whether a reference byte actually names a cache (a
// non-fixed point of the permutation action).
func refLive(b byte, enc RefEnc, n int) bool {
	switch enc {
	case RefPlain:
		return int(b) < n
	case RefPlus1:
		return b >= 1 && int(b) <= n
	}
	return false
}

// liveRefs reports whether any reference byte or mask bit in key names
// a cache.
func (c *Canonicalizer) liveRefs(key []byte) bool {
	s := c.sym
	n := s.Caches
	for _, r := range s.Refs {
		if refLive(key[r.Off], r.Enc, n) {
			return true
		}
	}
	for _, off := range s.Masks {
		v := uint32(key[off]) | uint32(key[off+1])<<8 | uint32(key[off+2])<<16 | uint32(key[off+3])<<24
		if v&(1<<uint(n)-1) != 0 {
			return true
		}
	}
	for _, sl := range s.Slots {
		cnt := int(key[sl.CountOff])
		for k := 0; k < cnt; k++ {
			base := sl.Off + k*sl.W
			for _, r := range sl.Refs {
				if refLive(key[base+r.Off], r.Enc, n) {
					return true
				}
			}
		}
	}
	return false
}

// apply writes π(src) into dst: group records move to their new
// positions, reference bytes and mask bits are renumbered, and slot
// regions are re-sorted so the result is a valid canonical encoding.
func (c *Canonicalizer) apply(src, dst []byte, pos []uint8) {
	s := c.sym
	n := s.Caches
	copy(dst, src)
	for _, g := range s.Groups {
		for i := 0; i < n; i++ {
			copy(dst[g.Off+int(pos[i])*g.Stride:g.Off+(int(pos[i])+1)*g.Stride],
				src[g.Off+i*g.Stride:])
		}
	}
	for _, r := range s.Refs {
		dst[r.Off] = remapRef(src[r.Off], r.Enc, pos, n)
	}
	for _, off := range s.Masks {
		v := uint32(src[off]) | uint32(src[off+1])<<8 | uint32(src[off+2])<<16 | uint32(src[off+3])<<24
		low := v & (1<<uint(n) - 1)
		var w uint32
		for i := 0; low != 0; i++ {
			if low&(1<<uint(i)) != 0 {
				w |= 1 << uint(pos[i])
				low &^= 1 << uint(i)
			}
		}
		v = v&^(1<<uint(n)-1) | w
		dst[off] = byte(v)
		dst[off+1] = byte(v >> 8)
		dst[off+2] = byte(v >> 16)
		dst[off+3] = byte(v >> 24)
	}
	for _, sl := range s.Slots {
		cnt := int(src[sl.CountOff])
		for k := 0; k < cnt; k++ {
			base := sl.Off + k*sl.W
			for _, r := range sl.Refs {
				dst[base+r.Off] = remapRef(dst[base+r.Off], r.Enc, pos, n)
			}
		}
		SortSlots(dst[sl.Off:], cnt, sl.W)
	}
}

// SortSlots canonicalizes the n leading w-byte records of b (w <= 8)
// into ascending lexicographic byte order, so states differing only by
// message permutation collapse to one key. Models call it while
// packing; the canonicalizer calls it again after renumbering slot
// reference bytes. Insertion sort is exact and allocation-free at the
// single-digit message counts the models bound.
func SortSlots(b []byte, n, w int) {
	var tmp [8]byte
	rec := tmp[:w]
	for i := 1; i < n; i++ {
		copy(rec, b[i*w:])
		j := i
		for j > 0 && bytes.Compare(b[(j-1)*w:j*w], rec) > 0 {
			copy(b[j*w:(j+1)*w], b[(j-1)*w:j*w])
			j--
		}
		copy(b[j*w:(j+1)*w], rec)
	}
}
