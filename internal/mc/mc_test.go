package mc_test

import (
	"testing"

	"tokencmp/internal/mc"
	"tokencmp/internal/mc/models"
)

func TestTokenSafetyOnly(t *testing.T) {
	res := mc.Check(models.NewTokenModel(models.DefaultTokenConfig(models.SafetyOnly)), 0)
	t.Log(res)
	if !res.OK() {
		t.Fatalf("safety-only model failed: %v", res)
	}
}

func TestTokenDistributed(t *testing.T) {
	cfg := models.DefaultTokenConfig(models.DistributedAct)
	if testing.Short() {
		cfg.T = 3
	}
	res := mc.Check(models.NewTokenModel(cfg), 0)
	t.Log(res)
	if !res.OK() {
		t.Fatalf("distributed model failed: %v", res)
	}
}

func TestTokenArbiter(t *testing.T) {
	cfg := models.DefaultTokenConfig(models.ArbiterAct)
	if testing.Short() {
		cfg.T = 3
	}
	res := mc.Check(models.NewTokenModel(cfg), 0)
	t.Log(res)
	if !res.OK() {
		t.Fatalf("arbiter model failed: %v", res)
	}
}

func TestDirectoryFlat(t *testing.T) {
	res := mc.Check(models.DefaultDirModel(), 0)
	t.Log(res)
	if !res.OK() {
		t.Fatalf("flat directory model failed: %v", res)
	}
}
