package mc

// SuccBuf collects the packed successor keys of one state in a single
// flat byte buffer. Models emit each successor with Emit, which copies
// the packed key into the buffer — no string allocation per successor.
// The checker hashes and deduplicates the raw byte views and interns a
// key (one string copy) only when it is first discovered; everything
// emitted for an already-known state costs no allocation at all.
//
// A SuccBuf is owned by one checker worker and reused across BFS
// levels, so its buffers stop growing once they have seen the largest
// expansion.
type SuccBuf struct {
	buf  []byte
	ends []int32 // end offset of key i in buf
}

// Reset empties the buffer, keeping its capacity.
func (sb *SuccBuf) Reset() {
	sb.buf = sb.buf[:0]
	sb.ends = sb.ends[:0]
}

// Emit appends one packed successor key. The bytes are copied; the
// caller may reuse key immediately.
func (sb *SuccBuf) Emit(key []byte) {
	sb.buf = append(sb.buf, key...)
	sb.ends = append(sb.ends, int32(len(sb.buf)))
}

// Len reports the number of emitted keys.
func (sb *SuccBuf) Len() int { return len(sb.ends) }

// Key returns a view of the i-th emitted key, valid until the next
// Reset. The view is mutable and aliases the buffer: the checker's
// symmetry reduction relies on this to canonicalize emitted keys in
// place (every key keeps its emitted width) before hashing them.
func (sb *SuccBuf) Key(i int) []byte {
	start := int32(0)
	if i > 0 {
		start = sb.ends[i-1]
	}
	return sb.buf[start:sb.ends[i]]
}
