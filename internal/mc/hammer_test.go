package mc_test

import (
	"testing"

	"tokencmp/internal/mc"
	"tokencmp/internal/mc/models"
)

// TestHammerFlat explores the HammerCMP broadcast-race model: every
// interleaving of one broadcast's probes, acks, data, and stale
// speculative memory response with silent stores, upgrades, departing
// writebacks, and the next queued broadcast. It must reach no state
// with two owners, a readable stale copy, or a lost latest value, and
// must stay deadlock- and starvation-free.
func TestHammerFlat(t *testing.T) {
	m := models.DefaultHammerModel()
	if testing.Short() {
		m = models.NewHammerModel(2, 5)
	}
	res := mc.Check(m, 0)
	t.Log(res)
	if !res.OK() {
		t.Fatalf("hammer broadcast model failed: %v", res)
	}
}
