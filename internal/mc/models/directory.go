package models

import (
	"fmt"
	"sort"
	"strings"
)

// DirModel is the simplified, non-hierarchical directory protocol the
// paper checks against the token substrate: a blocking MSI directory
// with explicit forward, invalidation, acknowledgment, data, unblock,
// and three-phase writeback messages. All intra-CMP detail is omitted,
// exactly as in the paper (a full hierarchical model is intractable).
// Its methods are safe for concurrent use, as required by the parallel
// checker in internal/mc.
type DirModel struct {
	caches  int
	maxMsgs int
	decode  *stateCache[*dstate]
}

// dcache is one cache's view: MSI state plus the data-independence bit.
type dcache struct {
	St      int // 0=I 1=S 2=M
	Current bool
	Out     int // outstanding request: 0 none, 1 GetS, 2 GetM
	Acks    int // invalidation acks still owed to this requester
	WaitWB  bool
}

// dmsg is one in-flight protocol message.
type dmsg struct {
	Kind int // message kinds below
	To   int // destination cache (or -1 for the directory)
	P    int // subject processor (requester / evictor)
	Cur  bool
	Acks int
	Excl bool // data grants M
}

// Directory-model message kinds.
const (
	dGetS = iota
	dGetM
	dFwdS // directory → owner: degrade and send data
	dFwdM // directory → owner: invalidate and send data
	dInv
	dAck
	dData
	dUnblock
	dPut
	dWbGrant
	dWbData
)

// dstate is a full model state.
type dstate struct {
	C       []dcache
	Msgs    []dmsg
	Owner   int // owning cache or -1 (memory)
	Sharers uint32
	MemCur  bool
	Busy    int // processor whose transaction holds the directory, or -1
	BusyOwn int // owner when the current transaction started (-1 memory)
	BusyWB  bool
}

// NewDirModel builds the flat directory model.
func NewDirModel(caches, maxMsgs int) *DirModel {
	return &DirModel{caches: caches, maxMsgs: maxMsgs, decode: newStateCache[*dstate]()}
}

// DefaultDirModel mirrors the token models' scale.
func DefaultDirModel() *DirModel { return NewDirModel(3, 3) }

// Name implements mc.Model.
func (m *DirModel) Name() string { return "DirectoryCMP-flat" }

func (m *DirModel) encode(s *dstate) string {
	msgs := append([]dmsg{}, s.Msgs...)
	sort.Slice(msgs, func(i, j int) bool { return fmt.Sprint(msgs[i]) < fmt.Sprint(msgs[j]) })
	var b strings.Builder
	fmt.Fprintf(&b, "C%v M%v O%d S%b mc%v B%d o%d W%v", s.C, msgs, s.Owner, s.Sharers, s.MemCur, s.Busy, s.BusyOwn, s.BusyWB)
	key := b.String()
	if _, ok := m.decode.get(key); !ok {
		m.decode.putIfAbsent(key, &dstate{
			C: append([]dcache{}, s.C...), Msgs: msgs, Owner: s.Owner,
			Sharers: s.Sharers, MemCur: s.MemCur, Busy: s.Busy, BusyOwn: s.BusyOwn, BusyWB: s.BusyWB,
		})
	}
	return key
}

func (m *DirModel) clone(s *dstate) *dstate {
	return &dstate{
		C: append([]dcache{}, s.C...), Msgs: append([]dmsg{}, s.Msgs...),
		Owner: s.Owner, Sharers: s.Sharers, MemCur: s.MemCur, Busy: s.Busy,
		BusyOwn: s.BusyOwn, BusyWB: s.BusyWB,
	}
}

// Initial implements mc.Model.
func (m *DirModel) Initial() []string {
	s := &dstate{C: make([]dcache, m.caches), Owner: -1, MemCur: true, Busy: -1, BusyOwn: -1}
	return []string{m.encode(s)}
}

// payloadCount counts bounded messages: requests and puts model the
// directory's input queue, which holds at most one entry per processor
// and therefore needs no separate bound.
func payloadCount(s *dstate) int {
	n := 0
	for _, m := range s.Msgs {
		if m.Kind != dGetS && m.Kind != dGetM && m.Kind != dPut {
			n++
		}
	}
	return n
}

func (m *DirModel) send(s *dstate, msg dmsg) bool {
	if msg.Kind != dGetS && msg.Kind != dGetM && msg.Kind != dPut && payloadCount(s) >= m.maxMsgs {
		return false
	}
	s.Msgs = append(s.Msgs, msg)
	return true
}

// Successors implements mc.Model.
func (m *DirModel) Successors(key string) []string {
	s, _ := m.decode.get(key)
	var out []string
	emit := func(n *dstate) { out = append(out, m.encode(n)) }

	// 1. Processors issue requests and stores, and M caches may evict.
	for p := 0; p < m.caches; p++ {
		c := s.C[p]
		if c.Out == 0 && !c.WaitWB {
			if c.St == 0 { // I: may want to read or write
				for _, kind := range []int{dGetS, dGetM} {
					n := m.clone(s)
					if kind == dGetS {
						n.C[p].Out = 1
					} else {
						n.C[p].Out = 2
					}
					if m.send(n, dmsg{Kind: kind, To: -1, P: p}) {
						emit(n)
					}
				}
			}
			if c.St == 1 { // S: may upgrade
				n := m.clone(s)
				n.C[p].Out = 2
				if m.send(n, dmsg{Kind: dGetM, To: -1, P: p}) {
					emit(n)
				}
			}
			if c.St == 2 { // M: store or write back
				n := m.clone(s)
				m.store(n, p)
				emit(n)
				n2 := m.clone(s)
				n2.C[p].WaitWB = true
				if m.send(n2, dmsg{Kind: dPut, To: -1, P: p}) {
					emit(n2)
				}
			}
		}
	}

	// 2. Message deliveries.
	for k := range s.Msgs {
		msg := s.Msgs[k]
		n := m.clone(s)
		n.Msgs = append(n.Msgs[:k], n.Msgs[k+1:]...)
		switch msg.Kind {
		case dGetS, dGetM:
			if s.Busy != -1 || s.BusyWB {
				continue // blocking directory: the request stays queued
			}
			m.dirAccept(n, msg, emit)
			continue
		case dPut:
			if s.Busy != -1 || s.BusyWB {
				continue
			}
			n.Busy = msg.P
			n.BusyWB = true
			if m.send(n, dmsg{Kind: dWbGrant, To: msg.P, P: msg.P}) {
				emit(n)
			}
			continue
		case dFwdS:
			c := n.C[msg.To]
			if c.St == 2 {
				n.C[msg.To].St = 1
				if !m.send(n, dmsg{Kind: dData, To: msg.P, P: msg.P, Cur: c.Current, Acks: 0}) {
					continue
				}
				n.MemCur = c.Current // data also written through to memory
			} else if c.St == 1 {
				// Already degraded by a raced transaction; serve from the
				// surviving copy.
				if !m.send(n, dmsg{Kind: dData, To: msg.P, P: msg.P, Cur: c.Current}) {
					continue
				}
				n.MemCur = c.Current
			} else {
				continue
			}
		case dFwdM:
			c := n.C[msg.To]
			cur := c.Current
			n.C[msg.To] = dcache{WaitWB: c.WaitWB}
			if !m.send(n, dmsg{Kind: dData, To: msg.P, P: msg.P, Cur: cur, Acks: msg.Acks, Excl: true}) {
				continue
			}
		case dInv:
			c := n.C[msg.To]
			n.C[msg.To] = dcache{Out: c.Out, Acks: c.Acks, WaitWB: c.WaitWB}
			if !m.send(n, dmsg{Kind: dAck, To: msg.P, P: msg.P}) {
				continue
			}
		case dAck:
			n.C[msg.To].Acks--
			m.maybeComplete(n, msg.To)
		case dData:
			c := &n.C[msg.To]
			c.Current = msg.Cur
			if msg.Excl {
				c.St = 2
				c.Acks += msg.Acks
				c.hasDataPending()
			} else {
				c.St = 1
			}
			m.maybeComplete(n, msg.To)
		case dUnblock:
			// Directory transaction closes; the requester reported its
			// resulting state via Excl.
			if msg.Excl {
				n.Owner = msg.P
				n.Sharers = 0
			} else {
				n.Sharers |= 1 << uint(msg.P)
				if n.BusyOwn >= 0 {
					// A forward degraded the old owner to a sharer and
					// wrote the data through to memory.
					n.Sharers |= 1 << uint(n.BusyOwn)
					n.Owner = -1
				}
			}
			n.Busy = -1
			n.BusyOwn = -1
		case dWbGrant:
			c := n.C[msg.To]
			if c.St == 2 {
				if !m.send(n, dmsg{Kind: dWbData, To: -1, P: msg.P, Cur: c.Current}) {
					continue
				}
				n.C[msg.To] = dcache{}
			} else {
				// Copy consumed by a racing forward: cancel.
				if !m.send(n, dmsg{Kind: dWbData, To: -1, P: msg.P, Cur: false, Excl: true /*cancel*/}) {
					continue
				}
				n.C[msg.To].WaitWB = false
			}
		case dWbData:
			if !msg.Excl {
				// Data written back: the evictor gives up its copy.
				n.MemCur = msg.Cur
				if n.Owner == msg.P {
					n.Owner = -1
				}
				n.Sharers &^= 1 << uint(msg.P)
				n.C[msg.P].WaitWB = false
			}
			// A cancelled writeback leaves the directory untouched: the
			// copy either survives as a sharer (degraded by a racing
			// forward) or was consumed by a transaction that already
			// updated the directory at its unblock.
			n.Busy = -1
			n.BusyWB = false
		}
		emit(n)
	}
	return out
}

// hasDataPending is a no-op marker kept for readability of the dData
// handler (the acks counter alone decides completion).
func (c *dcache) hasDataPending() {}

// store performs processor p's write: its copy becomes the single
// current one; every other copy and the memory image go stale. A racing
// readable copy then trips the serial-view check.
func (m *DirModel) store(n *dstate, p int) {
	for q := range n.C {
		n.C[q].Current = q == p
	}
	n.MemCur = false
}

// dirAccept starts a directory transaction for a GetS/GetM.
func (m *DirModel) dirAccept(n *dstate, msg dmsg, emit func(*dstate)) {
	p := msg.P
	n.Busy = p
	n.BusyOwn = n.Owner
	if msg.Kind == dGetS {
		if n.Owner == -1 {
			if !m.send(n, dmsg{Kind: dData, To: p, P: p, Cur: n.MemCur}) {
				return
			}
		} else {
			if !m.send(n, dmsg{Kind: dFwdS, To: n.Owner, P: p}) {
				return
			}
		}
		emit(n)
		return
	}
	// GetM: invalidate sharers (acks to the requester) and supply data.
	acks := 0
	shr := n.Sharers &^ (1 << uint(p))
	var invs []dmsg
	for q := 0; q < m.caches; q++ {
		if shr&(1<<uint(q)) != 0 {
			acks++
			invs = append(invs, dmsg{Kind: dInv, To: q, P: p})
		}
	}
	if payloadCount(n)+len(invs)+1 > m.maxMsgs {
		return // bounded-network throttling; the request stays queued
	}
	n.Msgs = append(n.Msgs, invs...)
	n.C[p].Acks += acks
	switch {
	case n.Owner == -1:
		if !m.send(n, dmsg{Kind: dData, To: p, P: p, Cur: n.MemCur, Excl: true}) {
			return
		}
	case n.Owner == p:
		if !m.send(n, dmsg{Kind: dData, To: p, P: p, Cur: n.C[p].Current, Excl: true}) {
			return
		}
	default:
		if !m.send(n, dmsg{Kind: dFwdM, To: n.Owner, P: p}) {
			return
		}
	}
	emit(n)
}

// maybeComplete finishes a requester's transaction when data and all
// acks have arrived.
func (m *DirModel) maybeComplete(n *dstate, p int) {
	c := &n.C[p]
	if c.Out == 0 || c.Acks > 0 {
		return
	}
	switch {
	case c.Out == 1 && c.St == 1:
		c.Out = 0
		m.send(n, dmsg{Kind: dUnblock, To: -1, P: p, Excl: false})
	case c.Out == 2 && c.St == 2:
		c.Out = 0
		m.store(n, p) // the store happens on completion
		m.send(n, dmsg{Kind: dUnblock, To: -1, P: p, Excl: true})
	}
}

// Check implements mc.Model.
func (m *DirModel) Check(key string) error {
	s, _ := m.decode.get(key)
	writers := 0
	for i, c := range s.C {
		if c.St == 2 {
			writers++
			if !c.Current {
				return fmt.Errorf("cache %d modifiable with stale data", i)
			}
		}
		if c.St == 1 && !c.Current {
			return fmt.Errorf("cache %d readable with stale data (serial view violated)", i)
		}
	}
	if writers > 1 {
		return fmt.Errorf("coherence invariant violated: %d writers", writers)
	}
	return nil
}

// Quiescent implements mc.Model.
func (m *DirModel) Quiescent(key string) bool {
	s, _ := m.decode.get(key)
	return len(s.Msgs) == 0 && !m.Pending(key) && s.Busy == -1
}

// Pending implements mc.Model.
func (m *DirModel) Pending(key string) bool {
	s, _ := m.decode.get(key)
	for _, c := range s.C {
		if c.Out != 0 || c.WaitWB {
			return true
		}
	}
	return false
}

// Satisfying implements mc.Model.
func (m *DirModel) Satisfying(key string) bool { return !m.Pending(key) }
