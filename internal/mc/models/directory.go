package models

import (
	"fmt"
	"math/bits"
	"sync"

	"tokencmp/internal/mc"
)

// DirModel is the simplified, non-hierarchical directory protocol the
// paper checks against the token substrate: a blocking MSI directory
// with explicit forward, invalidation, acknowledgment, data, unblock,
// and three-phase writeback messages. All intra-CMP detail is omitted,
// exactly as in the paper (a full hierarchical model is intractable).
// Its methods are safe for concurrent use, as required by the parallel
// checker in internal/mc: all mutable state lives in pooled per-call
// scratch.
type DirModel struct {
	caches  int
	maxMsgs int

	// Packed layout (fixed width, offsets precomputed per config):
	//
	//	[0, offN)        caches × 2 bytes [st|out<<2|current<<4|waitWB<<5][acks int8]
	//	[offN]           in-flight message count
	//	[offM, offD)     slots × 5-byte records [kind][to+1][p][cur|excl<<1][acks int8],
	//	                 byte-sorted, unused slots 0xFF; slots = maxMsgs payload
	//	                 messages + one request and one writeback per processor
	//	[offD, width)    directory: [owner+1][sharers ×4 LE][memCur|busyWB<<1][busy+1][busyOwn+1]
	offN, offM, offD, width int
	slots                   int

	// sym describes the layout's cache symmetry for the checker's
	// canonicalization.
	sym *mc.Symmetry

	pool sync.Pool // *dscratch
}

const dmsgW = 5 // packed dmsg record width

// dcache is one cache's view: MSI state plus the data-independence bit.
type dcache struct {
	St      int // 0=I 1=S 2=M
	Current bool
	Out     int // outstanding request: 0 none, 1 GetS, 2 GetM
	Acks    int // invalidation acks still owed to this requester
	WaitWB  bool
}

// dmsg is one in-flight protocol message.
type dmsg struct {
	Kind int // message kinds below
	To   int // destination cache (or -1 for the directory)
	P    int // subject processor (requester / evictor)
	Cur  bool
	Acks int
	Excl bool // data grants M
}

// Directory-model message kinds.
const (
	dGetS = iota
	dGetM
	dFwdS // directory → owner: degrade and send data
	dFwdM // directory → owner: invalidate and send data
	dInv
	dAck
	dData
	dUnblock
	dPut
	dWbGrant
	dWbData
)

// dstate is a full model state.
type dstate struct {
	C       []dcache
	Msgs    []dmsg
	Owner   int // owning cache or -1 (memory)
	Sharers uint32
	MemCur  bool
	Busy    int // processor whose transaction holds the directory, or -1
	BusyOwn int // owner when the current transaction started (-1 memory)
	BusyWB  bool
}

// dscratch is one worker's reusable decode/encode workspace.
type dscratch struct {
	cur, next dstate
	key       []byte
}

// NewDirModel builds the flat directory model.
func NewDirModel(caches, maxMsgs int) *DirModel {
	if caches < 1 || caches > 30 || maxMsgs < 1 || maxMsgs > 60 {
		panic(fmt.Sprintf("models: directory config out of packed-encoding range: caches=%d maxMsgs=%d", caches, maxMsgs))
	}
	m := &DirModel{caches: caches, maxMsgs: maxMsgs}
	// Payload messages are bounded by maxMsgs; each processor can
	// additionally have at most one request (GetS/GetM) and one Put
	// queued, since Out and WaitWB gate re-issue.
	m.slots = maxMsgs + 2*caches
	m.offN = 2 * caches
	m.offM = m.offN + 1
	m.offD = m.offM + dmsgW*m.slots
	m.width = m.offD + 8
	// Cache symmetry: the cache records are one per-cache group; message
	// records carry a +1-encoded destination (0 names the directory) and
	// a plain requester index; the directory trailer holds +1-encoded
	// owner/busy/busyOwn references and the sharers bitmask.
	m.sym = &mc.Symmetry{
		Caches: caches,
		Groups: []mc.Group{{Off: 0, Stride: 2}},
		Refs: []mc.Ref{
			{Off: m.offD + 0, Enc: mc.RefPlus1}, // owner
			{Off: m.offD + 6, Enc: mc.RefPlus1}, // busy
			{Off: m.offD + 7, Enc: mc.RefPlus1}, // busyOwn
		},
		Masks: []int{m.offD + 1}, // sharers
		Slots: []mc.SlotRegion{{
			CountOff: m.offN, Off: m.offM, W: dmsgW,
			Refs: []mc.Ref{{Off: 1, Enc: mc.RefPlus1}, {Off: 2, Enc: mc.RefPlain}},
		}},
	}
	m.pool.New = func() any {
		return &dscratch{
			cur:  m.newState(),
			next: m.newState(),
			key:  make([]byte, m.width),
		}
	}
	return m
}

func (m *DirModel) newState() dstate {
	return dstate{
		C:    make([]dcache, m.caches),
		Msgs: make([]dmsg, 0, m.slots+1),
	}
}

// DefaultDirModel mirrors the token models' scale.
func DefaultDirModel() *DirModel { return NewDirModel(3, 3) }

// Name implements mc.Model.
func (m *DirModel) Name() string { return "DirectoryCMP-flat" }

// Symmetry implements mc.Symmetric: the directory's rules treat caches
// interchangeably (requests are served from an unordered message
// multiset; invalidations fan out to a sharer set).
func (m *DirModel) Symmetry() *mc.Symmetry { return m.sym }

// encode packs s into key (len m.width), canonicalizing message order
// by direct byte comparison of the packed records.
func (m *DirModel) encode(s *dstate, key []byte) {
	for i, c := range s.C {
		key[2*i] = byte(c.St) | byte(c.Out)<<2 | flag(c.Current, 4) | flag(c.WaitWB, 5)
		key[2*i+1] = byte(int8(c.Acks))
	}
	key[m.offN] = byte(len(s.Msgs))
	for k, msg := range s.Msgs {
		off := m.offM + dmsgW*k
		key[off] = byte(msg.Kind)
		key[off+1] = byte(msg.To + 1)
		key[off+2] = byte(msg.P)
		key[off+3] = flag(msg.Cur, 0) | flag(msg.Excl, 1)
		key[off+4] = byte(int8(msg.Acks))
	}
	mc.SortSlots(key[m.offM:m.offD], len(s.Msgs), dmsgW)
	padSlots(key[m.offM:m.offD], len(s.Msgs), m.slots, dmsgW)
	d := key[m.offD:]
	d[0] = byte(s.Owner + 1)
	d[1] = byte(s.Sharers)
	d[2] = byte(s.Sharers >> 8)
	d[3] = byte(s.Sharers >> 16)
	d[4] = byte(s.Sharers >> 24)
	d[5] = flag(s.MemCur, 0) | flag(s.BusyWB, 1)
	d[6] = byte(s.Busy + 1)
	d[7] = byte(s.BusyOwn + 1)
}

// decode unpacks key into s (whose slices are pre-sized scratch).
func (m *DirModel) decode(key string, s *dstate) {
	s.C = s.C[:m.caches]
	for i := range s.C {
		b0 := key[2*i]
		s.C[i] = dcache{
			St:      int(b0 & 3),
			Out:     int(b0 >> 2 & 3),
			Current: b0&16 != 0,
			WaitWB:  b0&32 != 0,
			Acks:    int(int8(key[2*i+1])),
		}
	}
	s.Msgs = s.Msgs[:0]
	for k := 0; k < int(key[m.offN]); k++ {
		off := m.offM + dmsgW*k
		s.Msgs = append(s.Msgs, dmsg{
			Kind: int(key[off]),
			To:   int(key[off+1]) - 1,
			P:    int(key[off+2]),
			Cur:  key[off+3]&1 != 0,
			Excl: key[off+3]&2 != 0,
			Acks: int(int8(key[off+4])),
		})
	}
	d := key[m.offD:]
	s.Owner = int(d[0]) - 1
	s.Sharers = uint32(d[1]) | uint32(d[2])<<8 | uint32(d[3])<<16 | uint32(d[4])<<24
	s.MemCur = d[5]&1 != 0
	s.BusyWB = d[5]&2 != 0
	s.Busy = int(d[6]) - 1
	s.BusyOwn = int(d[7]) - 1
}

// stage copies the decoded state into the scratch successor, which the
// caller mutates and emits before the next stage call.
func (m *DirModel) stage(sc *dscratch) *dstate {
	s, n := &sc.cur, &sc.next
	n.C = n.C[:len(s.C)]
	copy(n.C, s.C)
	n.Msgs = append(n.Msgs[:0], s.Msgs...)
	n.Owner, n.Sharers, n.MemCur = s.Owner, s.Sharers, s.MemCur
	n.Busy, n.BusyOwn, n.BusyWB = s.Busy, s.BusyOwn, s.BusyWB
	return n
}

// emit packs the staged successor and hands it to the checker.
func (m *DirModel) emit(sb *mc.SuccBuf, sc *dscratch, n *dstate) {
	m.encode(n, sc.key)
	sb.Emit(sc.key)
}

// Initial implements mc.Model.
func (m *DirModel) Initial() []string {
	s := &dstate{C: make([]dcache, m.caches), Owner: -1, MemCur: true, Busy: -1, BusyOwn: -1}
	key := make([]byte, m.width)
	m.encode(s, key)
	return []string{string(key)}
}

// payloadCount counts bounded messages: requests and puts model the
// directory's input queue, which holds at most one entry per processor
// and therefore needs no separate bound.
func payloadCount(s *dstate) int {
	n := 0
	for _, m := range s.Msgs {
		if m.Kind != dGetS && m.Kind != dGetM && m.Kind != dPut {
			n++
		}
	}
	return n
}

func (m *DirModel) send(s *dstate, msg dmsg) bool {
	if msg.Kind != dGetS && msg.Kind != dGetM && msg.Kind != dPut && payloadCount(s) >= m.maxMsgs {
		return false
	}
	s.Msgs = append(s.Msgs, msg)
	return true
}

// Successors implements mc.Model.
func (m *DirModel) Successors(key string, sb *mc.SuccBuf) {
	sc := m.pool.Get().(*dscratch)
	defer m.pool.Put(sc)
	s := &sc.cur
	m.decode(key, s)

	// 1. Processors issue requests and stores, and M caches may evict.
	for p := 0; p < m.caches; p++ {
		c := s.C[p]
		if c.Out == 0 && !c.WaitWB {
			if c.St == 0 { // I: may want to read or write
				for _, kind := range []int{dGetS, dGetM} {
					n := m.stage(sc)
					if kind == dGetS {
						n.C[p].Out = 1
					} else {
						n.C[p].Out = 2
					}
					if m.send(n, dmsg{Kind: kind, To: -1, P: p}) {
						m.emit(sb, sc, n)
					}
				}
			}
			if c.St == 1 { // S: may upgrade
				n := m.stage(sc)
				n.C[p].Out = 2
				if m.send(n, dmsg{Kind: dGetM, To: -1, P: p}) {
					m.emit(sb, sc, n)
				}
			}
			if c.St == 2 { // M: store or write back
				n := m.stage(sc)
				m.store(n, p)
				m.emit(sb, sc, n)
				n2 := m.stage(sc)
				n2.C[p].WaitWB = true
				if m.send(n2, dmsg{Kind: dPut, To: -1, P: p}) {
					m.emit(sb, sc, n2)
				}
			}
		}
	}

	// 2. Message deliveries.
	for k := range s.Msgs {
		msg := s.Msgs[k]
		n := m.stage(sc)
		n.Msgs = append(n.Msgs[:k], n.Msgs[k+1:]...)
		switch msg.Kind {
		case dGetS, dGetM:
			if s.Busy != -1 || s.BusyWB {
				continue // blocking directory: the request stays queued
			}
			m.dirAccept(n, msg, sb, sc)
			continue
		case dPut:
			if s.Busy != -1 || s.BusyWB {
				continue
			}
			n.Busy = msg.P
			n.BusyWB = true
			if m.send(n, dmsg{Kind: dWbGrant, To: msg.P, P: msg.P}) {
				m.emit(sb, sc, n)
			}
			continue
		case dFwdS:
			c := n.C[msg.To]
			if c.St == 2 {
				n.C[msg.To].St = 1
				if !m.send(n, dmsg{Kind: dData, To: msg.P, P: msg.P, Cur: c.Current, Acks: 0}) {
					continue
				}
				n.MemCur = c.Current // data also written through to memory
			} else if c.St == 1 {
				// Already degraded by a raced transaction; serve from the
				// surviving copy.
				if !m.send(n, dmsg{Kind: dData, To: msg.P, P: msg.P, Cur: c.Current}) {
					continue
				}
				n.MemCur = c.Current
			} else {
				continue
			}
		case dFwdM:
			c := n.C[msg.To]
			cur := c.Current
			n.C[msg.To] = dcache{WaitWB: c.WaitWB}
			if !m.send(n, dmsg{Kind: dData, To: msg.P, P: msg.P, Cur: cur, Acks: msg.Acks, Excl: true}) {
				continue
			}
		case dInv:
			c := n.C[msg.To]
			n.C[msg.To] = dcache{Out: c.Out, Acks: c.Acks, WaitWB: c.WaitWB}
			if !m.send(n, dmsg{Kind: dAck, To: msg.P, P: msg.P}) {
				continue
			}
		case dAck:
			n.C[msg.To].Acks--
			m.maybeComplete(n, msg.To)
		case dData:
			c := &n.C[msg.To]
			c.Current = msg.Cur
			if msg.Excl {
				c.St = 2
				c.Acks += msg.Acks
			} else {
				c.St = 1
			}
			m.maybeComplete(n, msg.To)
		case dUnblock:
			// Directory transaction closes; the requester reported its
			// resulting state via Excl.
			if msg.Excl {
				n.Owner = msg.P
				n.Sharers = 0
			} else {
				n.Sharers |= 1 << uint(msg.P)
				if n.BusyOwn >= 0 {
					// A forward degraded the old owner to a sharer and
					// wrote the data through to memory.
					n.Sharers |= 1 << uint(n.BusyOwn)
					n.Owner = -1
				}
			}
			n.Busy = -1
			n.BusyOwn = -1
		case dWbGrant:
			c := n.C[msg.To]
			if c.St == 2 {
				if !m.send(n, dmsg{Kind: dWbData, To: -1, P: msg.P, Cur: c.Current}) {
					continue
				}
				n.C[msg.To] = dcache{}
			} else {
				// Copy consumed by a racing forward: cancel.
				if !m.send(n, dmsg{Kind: dWbData, To: -1, P: msg.P, Cur: false, Excl: true /*cancel*/}) {
					continue
				}
				n.C[msg.To].WaitWB = false
			}
		case dWbData:
			if !msg.Excl {
				// Data written back: the evictor gives up its copy.
				n.MemCur = msg.Cur
				if n.Owner == msg.P {
					n.Owner = -1
				}
				n.Sharers &^= 1 << uint(msg.P)
				n.C[msg.P].WaitWB = false
			}
			// A cancelled writeback leaves the directory untouched: the
			// copy either survives as a sharer (degraded by a racing
			// forward) or was consumed by a transaction that already
			// updated the directory at its unblock.
			n.Busy = -1
			n.BusyWB = false
		}
		m.emit(sb, sc, n)
	}
}

// store performs processor p's write: its copy becomes the single
// current one; every other copy and the memory image go stale. A racing
// readable copy then trips the serial-view check.
func (m *DirModel) store(n *dstate, p int) {
	for q := range n.C {
		n.C[q].Current = q == p
	}
	n.MemCur = false
}

// dirAccept starts a directory transaction for a GetS/GetM.
func (m *DirModel) dirAccept(n *dstate, msg dmsg, sb *mc.SuccBuf, sc *dscratch) {
	p := msg.P
	n.Busy = p
	n.BusyOwn = n.Owner
	if msg.Kind == dGetS {
		if n.Owner == -1 {
			if !m.send(n, dmsg{Kind: dData, To: p, P: p, Cur: n.MemCur}) {
				return
			}
		} else {
			if !m.send(n, dmsg{Kind: dFwdS, To: n.Owner, P: p}) {
				return
			}
		}
		m.emit(sb, sc, n)
		return
	}
	// GetM: invalidate sharers (acks to the requester) and supply data.
	shr := n.Sharers &^ (1 << uint(p))
	acks := bits.OnesCount32(shr)
	if payloadCount(n)+acks+1 > m.maxMsgs {
		return // bounded-network throttling; the request stays queued
	}
	for q := 0; q < m.caches; q++ {
		if shr&(1<<uint(q)) != 0 {
			n.Msgs = append(n.Msgs, dmsg{Kind: dInv, To: q, P: p})
		}
	}
	n.C[p].Acks += acks
	switch {
	case n.Owner == -1:
		if !m.send(n, dmsg{Kind: dData, To: p, P: p, Cur: n.MemCur, Excl: true}) {
			return
		}
	case n.Owner == p:
		if !m.send(n, dmsg{Kind: dData, To: p, P: p, Cur: n.C[p].Current, Excl: true}) {
			return
		}
	default:
		if !m.send(n, dmsg{Kind: dFwdM, To: n.Owner, P: p}) {
			return
		}
	}
	m.emit(sb, sc, n)
}

// maybeComplete finishes a requester's transaction when data and all
// acks have arrived.
func (m *DirModel) maybeComplete(n *dstate, p int) {
	c := &n.C[p]
	if c.Out == 0 || c.Acks > 0 {
		return
	}
	switch {
	case c.Out == 1 && c.St == 1:
		c.Out = 0
		m.send(n, dmsg{Kind: dUnblock, To: -1, P: p, Excl: false})
	case c.Out == 2 && c.St == 2:
		c.Out = 0
		m.store(n, p) // the store happens on completion
		m.send(n, dmsg{Kind: dUnblock, To: -1, P: p, Excl: true})
	}
}

// Check implements mc.Model. It reads the packed cache records
// directly — no decode.
func (m *DirModel) Check(key string) error {
	writers := 0
	for i := 0; i < m.caches; i++ {
		b0 := key[2*i]
		st, current := int(b0&3), b0&16 != 0
		if st == 2 {
			writers++
			if !current {
				return fmt.Errorf("cache %d modifiable with stale data", i)
			}
		}
		if st == 1 && !current {
			return fmt.Errorf("cache %d readable with stale data (serial view violated)", i)
		}
	}
	if writers > 1 {
		return fmt.Errorf("coherence invariant violated: %d writers", writers)
	}
	return nil
}

// Quiescent implements mc.Model.
func (m *DirModel) Quiescent(key string) bool {
	return key[m.offN] == 0 && !m.Pending(key) && key[m.offD+6] == 0 // busy == -1
}

// Pending implements mc.Model.
func (m *DirModel) Pending(key string) bool {
	for i := 0; i < m.caches; i++ {
		if key[2*i]&(3<<2|1<<5) != 0 { // out != 0 or waitWB
			return true
		}
	}
	return false
}

// Satisfying implements mc.Model.
func (m *DirModel) Satisfying(key string) bool { return !m.Pending(key) }
