package models

import (
	"fmt"
	"sync"

	"tokencmp/internal/mc"
)

// HammerModel is the flat model of the HammerCMP broadcast protocol
// (internal/hammercmp): a MOESI protocol with no directory and no
// tokens, where the home serializes transactions per block, broadcasts
// probes to every cache except the requester, and speculatively reads
// memory; the requester completes once every cache and the memory have
// answered, preferring cache data over the possibly-stale memory data.
//
// The model's job is the broadcast race window: the messages of one
// broadcast — probes, acks, data, and the stale speculative memory
// response — interleaving with silent stores, upgrades that lose their
// line to a probe, writebacks whose only data copy sits in a departure
// buffer, and the next queued broadcast. The checker verifies that the
// home's per-block serialization closes the window: no interleaving
// reaches two simultaneous owners, a readable stale copy, or a state
// where the latest value survives nowhere. As in the other models, L2
// victim-cache detail is flattened away (writebacks go straight to the
// home), exactly as the paper flattens intra-CMP detail.
//
// Its methods are safe for concurrent use, as required by the parallel
// checker in internal/mc: all mutable state lives in pooled per-call
// scratch.
type HammerModel struct {
	caches  int
	maxMsgs int

	// Packed layout (fixed width, offsets precomputed per config):
	//
	//	[0, offN)        caches × 3 bytes [st|out<<3|wb<<5][7 collection flag bits][resp]
	//	[offN]           in-flight message count
	//	[offM, offT)     slots × 4-byte records [kind][to+1][p][cur|migr<<1|shared<<2],
	//	                 byte-sorted, unused slots 0xFF; slots = maxMsgs payload
	//	                 messages + one request and one Put per processor + one Done
	//	[offT, width)    [memCur][busy+1][busyWB+1]
	offN, offM, offT, width int
	slots                   int

	// sym describes the layout's cache symmetry for the checker's
	// canonicalization.
	sym *mc.Symmetry

	pool sync.Pool // *hscratch
}

const hmsgW = 4 // packed hmsg record width

// Writeback-buffer states.
const (
	wbNone     = iota
	wbCurrent  // valid, holds the latest value
	wbStale    // valid, holds a superseded value (cannot happen; checked)
	wbConsumed // a probe took the copy; the grant will be cancelled
)

// hcache is one cache's view: MOESI state, the data-independence bit,
// the outstanding-request collection counters, and the writeback
// buffer.
type hcache struct {
	St  int // 0=I 1=S 2=E 3=M 4=O
	Cur bool
	Out int // outstanding request: 0 none, 1 GetS, 2 GetM
	WB  int // writeback buffer state

	// Broadcast collection (live while Out != 0 and the home has
	// admitted the request).
	Resp    int // cache responses still expected
	MemWait bool
	GotData bool
	GotCur  bool
	GotMigr bool
	Shared  bool
	MemCur  bool
}

// hmsg is one in-flight protocol message.
type hmsg struct {
	Kind   int
	To     int // destination cache (or -1 for the home)
	P      int // requester / evictor
	Cur    bool
	Migr   bool
	Shared bool
}

// Hammer-model message kinds.
const (
	hmGetS = iota
	hmGetM
	hmProbeS
	hmProbeM
	hmAck
	hmData
	hmMemData
	hmDone
	hmPut
	hmWbGrant
	hmWbData
	hmWbCancel
)

// hstate is a full model state.
type hstate struct {
	C      []hcache
	Msgs   []hmsg
	MemCur bool
	Busy   int // requester whose broadcast holds the block, or -1
	BusyWB int // evictor whose writeback holds the block, or -1
}

// hscratch is one worker's reusable decode/encode workspace.
type hscratch struct {
	cur, next hstate
	key       []byte
}

// NewHammerModel builds the flat broadcast model.
func NewHammerModel(caches, maxMsgs int) *HammerModel {
	m := &HammerModel{caches: caches, maxMsgs: maxMsgs}
	// Payload messages (probes, acks, data, memory and writeback data)
	// are bounded by maxMsgs; the home's input queue additionally holds
	// at most one request and one Put per processor (Out and the WB
	// buffer gate re-issue) plus the single in-flight Done.
	m.slots = maxMsgs + 2*caches + 1
	// The message count is one byte, so the reachable message bound —
	// not just caches itself — must stay under 255, or encode would
	// wrap and silently merge distinct states.
	if caches < 1 || maxMsgs < 1 || maxMsgs > 60 || m.slots > 255 {
		panic(fmt.Sprintf("models: hammer config out of packed-encoding range: caches=%d maxMsgs=%d", caches, maxMsgs))
	}
	m.offN = 3 * caches
	m.offM = m.offN + 1
	m.offT = m.offM + hmsgW*m.slots
	m.width = m.offT + 3
	// Cache symmetry: the cache records are one per-cache group; message
	// records carry a +1-encoded destination (0 names the home) and a
	// plain requester index; the trailer holds +1-encoded busy/busyWB
	// references.
	m.sym = &mc.Symmetry{
		Caches: caches,
		Groups: []mc.Group{{Off: 0, Stride: 3}},
		Refs: []mc.Ref{
			{Off: m.offT + 1, Enc: mc.RefPlus1}, // busy
			{Off: m.offT + 2, Enc: mc.RefPlus1}, // busyWB
		},
		Slots: []mc.SlotRegion{{
			CountOff: m.offN, Off: m.offM, W: hmsgW,
			Refs: []mc.Ref{{Off: 1, Enc: mc.RefPlus1}, {Off: 2, Enc: mc.RefPlain}},
		}},
	}
	m.pool.New = func() any {
		return &hscratch{
			cur:  m.newState(),
			next: m.newState(),
			key:  make([]byte, m.width),
		}
	}
	return m
}

func (m *HammerModel) newState() hstate {
	return hstate{
		C:    make([]hcache, m.caches),
		Msgs: make([]hmsg, 0, m.slots+1),
	}
}

// DefaultHammerModel mirrors the other models' scale: three caches and
// enough message slots for one full broadcast plus a writeback window.
func DefaultHammerModel() *HammerModel { return NewHammerModel(3, 5) }

// Name implements mc.Model.
func (m *HammerModel) Name() string { return "HammerCMP-flat" }

// Symmetry implements mc.Symmetric: the home broadcasts to all caches
// and collects an unordered response set, so the rules never order the
// caches.
func (m *HammerModel) Symmetry() *mc.Symmetry { return m.sym }

// encode packs s into key (len m.width), canonicalizing message order
// by direct byte comparison of the packed records.
func (m *HammerModel) encode(s *hstate, key []byte) {
	for i, c := range s.C {
		key[3*i] = byte(c.St) | byte(c.Out)<<3 | byte(c.WB)<<5
		key[3*i+1] = flag(c.Cur, 0) | flag(c.MemWait, 1) | flag(c.GotData, 2) |
			flag(c.GotCur, 3) | flag(c.GotMigr, 4) | flag(c.Shared, 5) | flag(c.MemCur, 6)
		key[3*i+2] = byte(c.Resp)
	}
	key[m.offN] = byte(len(s.Msgs))
	for k, msg := range s.Msgs {
		off := m.offM + hmsgW*k
		key[off] = byte(msg.Kind)
		key[off+1] = byte(msg.To + 1)
		key[off+2] = byte(msg.P)
		key[off+3] = flag(msg.Cur, 0) | flag(msg.Migr, 1) | flag(msg.Shared, 2)
	}
	mc.SortSlots(key[m.offM:m.offT], len(s.Msgs), hmsgW)
	padSlots(key[m.offM:m.offT], len(s.Msgs), m.slots, hmsgW)
	t := key[m.offT:]
	t[0] = flag(s.MemCur, 0)
	t[1] = byte(s.Busy + 1)
	t[2] = byte(s.BusyWB + 1)
}

// decode unpacks key into s (whose slices are pre-sized scratch).
func (m *HammerModel) decode(key string, s *hstate) {
	s.C = s.C[:m.caches]
	for i := range s.C {
		b0, fl := key[3*i], key[3*i+1]
		s.C[i] = hcache{
			St:      int(b0 & 7),
			Out:     int(b0 >> 3 & 3),
			WB:      int(b0 >> 5 & 3),
			Cur:     fl&1 != 0,
			MemWait: fl&2 != 0,
			GotData: fl&4 != 0,
			GotCur:  fl&8 != 0,
			GotMigr: fl&16 != 0,
			Shared:  fl&32 != 0,
			MemCur:  fl&64 != 0,
			Resp:    int(key[3*i+2]),
		}
	}
	s.Msgs = s.Msgs[:0]
	for k := 0; k < int(key[m.offN]); k++ {
		off := m.offM + hmsgW*k
		s.Msgs = append(s.Msgs, hmsg{
			Kind:   int(key[off]),
			To:     int(key[off+1]) - 1,
			P:      int(key[off+2]),
			Cur:    key[off+3]&1 != 0,
			Migr:   key[off+3]&2 != 0,
			Shared: key[off+3]&4 != 0,
		})
	}
	t := key[m.offT:]
	s.MemCur = t[0]&1 != 0
	s.Busy = int(t[1]) - 1
	s.BusyWB = int(t[2]) - 1
}

// stage copies the decoded state into the scratch successor, which the
// caller mutates and emits before the next stage call.
func (m *HammerModel) stage(sc *hscratch) *hstate {
	s, n := &sc.cur, &sc.next
	n.C = n.C[:len(s.C)]
	copy(n.C, s.C)
	n.Msgs = append(n.Msgs[:0], s.Msgs...)
	n.MemCur, n.Busy, n.BusyWB = s.MemCur, s.Busy, s.BusyWB
	return n
}

// emit packs the staged successor and hands it to the checker.
func (m *HammerModel) emit(sb *mc.SuccBuf, sc *hscratch, n *hstate) {
	m.encode(n, sc.key)
	sb.Emit(sc.key)
}

// Initial implements mc.Model.
func (m *HammerModel) Initial() []string {
	s := &hstate{C: make([]hcache, m.caches), MemCur: true, Busy: -1, BusyWB: -1}
	key := make([]byte, m.width)
	m.encode(s, key)
	return []string{string(key)}
}

// hammerPayloadCount counts bounded messages. Requests, puts, and
// dones model the home's input queue (at most a few entries per
// processor) and must never block, or the protocol would deadlock.
func hammerPayloadCount(s *hstate) int {
	n := 0
	for _, msg := range s.Msgs {
		switch msg.Kind {
		case hmGetS, hmGetM, hmPut, hmDone:
		default:
			n++
		}
	}
	return n
}

// store performs processor p's write: its copy becomes the single
// current one; every other copy, buffered writeback, and the memory
// image go stale.
func (m *HammerModel) store(n *hstate, p int) {
	for q := range n.C {
		n.C[q].Cur = q == p
		if q != p && n.C[q].WB == wbCurrent {
			n.C[q].WB = wbStale
		}
	}
	n.MemCur = false
}

// Successors implements mc.Model.
func (m *HammerModel) Successors(key string, sb *mc.SuccBuf) {
	sc := m.pool.Get().(*hscratch)
	defer m.pool.Put(sc)
	s := &sc.cur
	m.decode(key, s)

	// 1. Processor actions: issue requests, store silently, evict.
	for p := 0; p < m.caches; p++ {
		c := s.C[p]
		if c.Out == 0 {
			if c.St == 0 { // I: read or write request (even with a WB pending)
				for _, kind := range []int{hmGetS, hmGetM} {
					n := m.stage(sc)
					if kind == hmGetS {
						n.C[p].Out = 1
					} else {
						n.C[p].Out = 2
					}
					n.Msgs = append(n.Msgs, hmsg{Kind: kind, To: -1, P: p})
					m.emit(sb, sc, n)
				}
			}
			if c.St == 1 || c.St == 4 { // S or O: upgrade
				n := m.stage(sc)
				n.C[p].Out = 2
				n.Msgs = append(n.Msgs, hmsg{Kind: hmGetM, To: -1, P: p})
				m.emit(sb, sc, n)
			}
		}
		if c.St == 2 || c.St == 3 { // E or M: silent store
			n := m.stage(sc)
			n.C[p].St = 3
			m.store(n, p)
			m.emit(sb, sc, n)
		}
		if (c.St == 3 || c.St == 4) && c.WB == wbNone { // M or O: evict
			n := m.stage(sc)
			if c.Cur {
				n.C[p].WB = wbCurrent
			} else {
				n.C[p].WB = wbStale
			}
			n.C[p].St = 0
			n.C[p].Cur = false
			n.Msgs = append(n.Msgs, hmsg{Kind: hmPut, To: -1, P: p})
			m.emit(sb, sc, n)
		}
		if c.St == 1 || c.St == 2 { // S or E: silent clean drop
			n := m.stage(sc)
			n.C[p].St = 0
			n.C[p].Cur = false
			m.emit(sb, sc, n)
		}
	}

	// 2. Message deliveries.
	for k := range s.Msgs {
		msg := s.Msgs[k]
		n := m.stage(sc)
		n.Msgs = append(n.Msgs[:k], n.Msgs[k+1:]...)
		switch msg.Kind {
		case hmGetS, hmGetM:
			if s.Busy != -1 || s.BusyWB != -1 {
				continue // home serializes: the request stays queued
			}
			// A broadcast emits caches-1 probes plus the memory response.
			if hammerPayloadCount(n)+m.caches > m.maxMsgs {
				continue // bounded-network throttling
			}
			p := msg.P
			n.Busy = p
			probe := hmProbeS
			if msg.Kind == hmGetM {
				probe = hmProbeM
			}
			for q := 0; q < m.caches; q++ {
				if q != p {
					n.Msgs = append(n.Msgs, hmsg{Kind: probe, To: q, P: p})
				}
			}
			n.Msgs = append(n.Msgs, hmsg{Kind: hmMemData, To: p, P: p, Cur: n.MemCur})
			rc := &n.C[p]
			rc.Resp = m.caches - 1
			rc.MemWait = true
			rc.GotData, rc.GotCur, rc.GotMigr, rc.Shared, rc.MemCur = false, false, false, false, false
		case hmProbeS:
			q := msg.To
			c := &n.C[q]
			switch {
			case c.St == 3: // M: migratory handoff
				n.Msgs = append(n.Msgs, hmsg{Kind: hmData, To: msg.P, P: msg.P, Cur: c.Cur, Migr: true, Shared: true})
				c.St = 0
				c.Cur = false
			case c.St == 4: // O: supply data, stay owner
				n.Msgs = append(n.Msgs, hmsg{Kind: hmData, To: msg.P, P: msg.P, Cur: c.Cur, Shared: true})
			case c.St == 2: // E: supply data, degrade
				n.Msgs = append(n.Msgs, hmsg{Kind: hmData, To: msg.P, P: msg.P, Cur: c.Cur, Shared: true})
				c.St = 1
			case c.St == 1: // S
				n.Msgs = append(n.Msgs, hmsg{Kind: hmAck, To: msg.P, P: msg.P, Shared: true})
			case c.WB == wbCurrent || c.WB == wbStale: // data in the departure buffer
				n.Msgs = append(n.Msgs, hmsg{Kind: hmData, To: msg.P, P: msg.P, Cur: c.WB == wbCurrent, Shared: true})
			default:
				n.Msgs = append(n.Msgs, hmsg{Kind: hmAck, To: msg.P, P: msg.P})
			}
		case hmProbeM:
			q := msg.To
			c := &n.C[q]
			switch {
			case c.St >= 2: // E, M, O: surrender the data
				n.Msgs = append(n.Msgs, hmsg{Kind: hmData, To: msg.P, P: msg.P, Cur: c.Cur, Shared: true})
				c.St = 0
				c.Cur = false
			case c.St == 1: // S: surrender the copy
				n.Msgs = append(n.Msgs, hmsg{Kind: hmAck, To: msg.P, P: msg.P, Shared: true})
				c.St = 0
				c.Cur = false
			case c.WB == wbCurrent || c.WB == wbStale:
				n.Msgs = append(n.Msgs, hmsg{Kind: hmData, To: msg.P, P: msg.P, Cur: c.WB == wbCurrent, Shared: true})
				c.WB = wbConsumed
			default:
				n.Msgs = append(n.Msgs, hmsg{Kind: hmAck, To: msg.P, P: msg.P})
			}
		case hmAck:
			c := &n.C[msg.To]
			c.Resp--
			if msg.Shared {
				c.Shared = true
			}
			m.maybeComplete(n, msg.To)
		case hmData:
			c := &n.C[msg.To]
			c.Resp--
			c.GotData = true
			c.GotCur = msg.Cur
			if msg.Migr {
				c.GotMigr = true
			}
			c.Shared = true
			m.maybeComplete(n, msg.To)
		case hmMemData:
			c := &n.C[msg.To]
			c.MemWait = false
			c.MemCur = msg.Cur
			m.maybeComplete(n, msg.To)
		case hmDone:
			n.Busy = -1
		case hmPut:
			if s.Busy != -1 || s.BusyWB != -1 {
				continue // home serializes writebacks too
			}
			if hammerPayloadCount(n)+1 > m.maxMsgs {
				continue
			}
			n.BusyWB = msg.P
			n.Msgs = append(n.Msgs, hmsg{Kind: hmWbGrant, To: msg.P, P: msg.P})
		case hmWbGrant:
			c := &n.C[msg.To]
			switch c.WB {
			case wbCurrent, wbStale:
				n.Msgs = append(n.Msgs, hmsg{Kind: hmWbData, To: -1, P: msg.P, Cur: c.WB == wbCurrent})
			case wbConsumed:
				n.Msgs = append(n.Msgs, hmsg{Kind: hmWbCancel, To: -1, P: msg.P})
			default:
				continue // grant without a buffered writeback: unreachable
			}
			c.WB = wbNone
		case hmWbData:
			n.MemCur = msg.Cur
			n.BusyWB = -1
		case hmWbCancel:
			n.BusyWB = -1
		}
		m.emit(sb, sc, n)
	}
}

// maybeComplete finishes p's transaction once every cache and the
// memory have answered, reproducing the implementation's data
// preference: probe data, then the surviving own copy, then the own
// departure buffer, then the speculative memory response.
func (m *HammerModel) maybeComplete(n *hstate, p int) {
	c := &n.C[p]
	if c.Out == 0 || c.Resp > 0 || c.MemWait {
		return
	}
	var cur, fromWB bool
	switch {
	case c.GotData:
		cur = c.GotCur
	case c.St != 0: // upgrade whose copy survived the broadcast
		cur = c.Cur
	case c.WB == wbCurrent || c.WB == wbStale: // we still own the block
		cur = c.WB == wbCurrent
		c.WB = wbConsumed
		fromWB = true
	default:
		cur = c.MemCur
	}
	if c.Out == 1 { // GetS
		switch {
		case c.GotMigr:
			c.St = 3
		case fromWB:
			// Still the owner, but not exclusive: a ProbeS may have
			// handed shared copies out of the departure buffer.
			c.St = 4
		case c.GotData || c.Shared:
			c.St = 1
		default:
			c.St = 2 // exclusive-clean
		}
	} else { // GetM; the store is a separate, subsequent transition
		c.St = 3
	}
	c.Cur = cur
	c.Out = 0
	c.Resp = 0
	c.GotData, c.GotCur, c.GotMigr, c.Shared, c.MemCur = false, false, false, false, false
	n.Msgs = append(n.Msgs, hmsg{Kind: hmDone, To: -1, P: p})
}

// Check implements mc.Model. It decodes into pooled scratch: the value-
// preservation invariant needs the full cache and message view.
func (m *HammerModel) Check(key string) error {
	sc := m.pool.Get().(*hscratch)
	defer m.pool.Put(sc)
	s := &sc.cur
	m.decode(key, s)
	owners := 0
	for i, c := range s.C {
		if c.St >= 2 {
			owners++
		}
		if c.St != 0 && !c.Cur {
			return fmt.Errorf("cache %d readable in %d with stale data (serial view violated)", i, c.St)
		}
	}
	if owners > 1 {
		return fmt.Errorf("coherence invariant violated: %d owners", owners)
	}
	for i, c := range s.C {
		if c.St != 2 && c.St != 3 {
			continue
		}
		// E/M exclusivity: no other copy may exist, cached or buffered.
		for j, o := range s.C {
			if j == i {
				continue
			}
			if o.St != 0 || o.WB == wbCurrent || o.WB == wbStale {
				return fmt.Errorf("cache %d exclusive in %d but cache %d holds st=%d wb=%d",
					i, c.St, j, o.St, o.WB)
			}
		}
	}
	// Value preservation: the latest value must survive somewhere — in a
	// cache, a writeback buffer, memory, or an in-flight message.
	if !s.MemCur {
		alive := false
		for _, c := range s.C {
			if (c.St != 0 && c.Cur) || c.WB == wbCurrent {
				alive = true
			}
			// A requester mid-collection may hold the only current copy
			// in its response buffer (e.g. a migratory handoff received
			// while the memory response is still in flight).
			if c.Out != 0 && c.GotData && c.GotCur {
				alive = true
			}
		}
		for _, msg := range s.Msgs {
			if msg.Cur && (msg.Kind == hmData || msg.Kind == hmMemData || msg.Kind == hmWbData) {
				alive = true
			}
		}
		if !alive {
			return fmt.Errorf("latest value lost: memory stale and no current copy survives")
		}
	}
	return nil
}

// Quiescent implements mc.Model.
func (m *HammerModel) Quiescent(key string) bool {
	t := key[m.offT:]
	return key[m.offN] == 0 && !m.Pending(key) && t[1] == 0 && t[2] == 0 // busy == busyWB == -1
}

// Pending implements mc.Model.
func (m *HammerModel) Pending(key string) bool {
	for i := 0; i < m.caches; i++ {
		if key[3*i]&(3<<3|3<<5) != 0 { // out != 0 or wb != wbNone
			return true
		}
	}
	return false
}

// Satisfying implements mc.Model.
func (m *HammerModel) Satisfying(key string) bool { return !m.Pending(key) }
