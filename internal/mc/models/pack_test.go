package models

import (
	"bytes"
	"reflect"
	"testing"

	"tokencmp/internal/mc"
)

// explore walks up to limit reachable states of m (serial BFS over the
// packed keys) for use as property-test corpora.
func explore(t *testing.T, m mc.Model, limit int) []string {
	t.Helper()
	seen := map[string]bool{}
	queue := m.Initial()
	var sb mc.SuccBuf
	var out []string
	for len(queue) > 0 && len(out) < limit {
		s := queue[0]
		queue = queue[1:]
		if seen[s] {
			continue
		}
		seen[s] = true
		out = append(out, s)
		sb.Reset()
		m.Successors(s, &sb)
		for i := 0; i < sb.Len(); i++ {
			queue = append(queue, string(sb.Key(i)))
		}
	}
	if len(out) < 50 {
		t.Fatalf("explored only %d states; corpus too small to be meaningful", len(out))
	}
	return out
}

// TestTokenRoundTrip asserts encode(decode(key)) == key over a reachable
// corpus of every activation variant: the packed layout is injective
// and decode loses no field.
func TestTokenRoundTrip(t *testing.T) {
	for _, act := range []Activation{SafetyOnly, ArbiterAct, DistributedAct} {
		m := NewTokenModel(DefaultTokenConfig(act))
		st := m.newState()
		key := make([]byte, m.width)
		for _, s := range explore(t, m, 3000) {
			m.decode(s, &st)
			m.encode(&st, key)
			if string(key) != s {
				t.Fatalf("%s: decode→encode changed the key\n in: %x\nout: %x", m.Name(), s, key)
			}
		}
	}
}

// TestDirRoundTrip is the directory-model round-trip property.
func TestDirRoundTrip(t *testing.T) {
	m := DefaultDirModel()
	st := m.newState()
	key := make([]byte, m.width)
	for _, s := range explore(t, m, 3000) {
		m.decode(s, &st)
		m.encode(&st, key)
		if string(key) != s {
			t.Fatalf("decode→encode changed the key\n in: %x\nout: %x", s, key)
		}
	}
}

// TestHammerRoundTrip is the hammer-model round-trip property.
func TestHammerRoundTrip(t *testing.T) {
	m := DefaultHammerModel()
	st := m.newState()
	key := make([]byte, m.width)
	for _, s := range explore(t, m, 3000) {
		m.decode(s, &st)
		m.encode(&st, key)
		if string(key) != s {
			t.Fatalf("decode→encode changed the key\n in: %x\nout: %x", s, key)
		}
	}
}

// permutations of small index sets, for canonicalization tests.
func permutations(n int) [][]int {
	if n == 1 {
		return [][]int{{0}}
	}
	var out [][]int
	for _, sub := range permutations(n - 1) {
		for i := 0; i <= len(sub); i++ {
			p := make([]int, 0, n)
			p = append(p, sub[:i]...)
			p = append(p, n-1)
			p = append(p, sub[i:]...)
			out = append(out, p)
		}
	}
	return out
}

// TestTokenCanonicalOrder asserts the packed-byte message
// canonicalization is permutation-invariant: every ordering of a
// state's in-flight messages encodes to the same key, so states
// differing only by message permutation still collapse — the property
// the seed's fmt.Sprint sort.Slice provided, now via direct byte
// comparison.
func TestTokenCanonicalOrder(t *testing.T) {
	m := NewTokenModel(DefaultTokenConfig(DistributedAct))
	st := m.newState()
	key := make([]byte, m.width)
	checked := 0
	for _, s := range explore(t, m, 3000) {
		m.decode(s, &st)
		if len(st.Msgs) < 2 {
			continue
		}
		msgs := append([]tmsg{}, st.Msgs...)
		for _, p := range permutations(len(msgs)) {
			for i, j := range p {
				st.Msgs[i] = msgs[j]
			}
			m.encode(&st, key)
			if string(key) != s {
				t.Fatalf("message permutation %v changed the key\n in: %x\nout: %x", p, s, key)
			}
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no multi-message states in the corpus")
	}
}

// TestDirCanonicalOrder is the directory-model permutation-invariance
// property.
func TestDirCanonicalOrder(t *testing.T) {
	m := DefaultDirModel()
	st := m.newState()
	key := make([]byte, m.width)
	checked := 0
	for _, s := range explore(t, m, 3000) {
		m.decode(s, &st)
		if len(st.Msgs) < 2 || len(st.Msgs) > 5 {
			continue
		}
		msgs := append([]dmsg{}, st.Msgs...)
		for _, p := range permutations(len(msgs)) {
			for i, j := range p {
				st.Msgs[i] = msgs[j]
			}
			m.encode(&st, key)
			if string(key) != s {
				t.Fatalf("message permutation %v changed the key\n in: %x\nout: %x", p, s, key)
			}
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no multi-message states in the corpus")
	}
}

// TestHammerCanonicalOrder is the hammer-model permutation-invariance
// property.
func TestHammerCanonicalOrder(t *testing.T) {
	m := NewHammerModel(2, 5)
	st := m.newState()
	key := make([]byte, m.width)
	checked := 0
	for _, s := range explore(t, m, 3000) {
		m.decode(s, &st)
		if len(st.Msgs) < 2 || len(st.Msgs) > 5 {
			continue
		}
		msgs := append([]hmsg{}, st.Msgs...)
		for _, p := range permutations(len(msgs)) {
			for i, j := range p {
				st.Msgs[i] = msgs[j]
			}
			m.encode(&st, key)
			if string(key) != s {
				t.Fatalf("message permutation %v changed the key\n in: %x\nout: %x", p, s, key)
			}
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no multi-message states in the corpus")
	}
}

// TestSortSlots pins the slot sorter itself: ascending lexicographic
// byte order, duplicates preserved, bytes outside the record area
// untouched.
func TestSortSlots(t *testing.T) {
	b := []byte{9, 9, 3, 1, 3, 0, 9, 9, 0, 7, 0xAA}
	// 5 two-byte records, one trailing guard byte.
	mc.SortSlots(b, 5, 2)
	want := []byte{0, 7, 3, 0, 3, 1, 9, 9, 9, 9, 0xAA}
	if !bytes.Equal(b, want) {
		t.Fatalf("sortSlots = %v, want %v", b, want)
	}
}

// TestDecodeMatchesStructs spot-checks a hand-built token state against
// decode, so the bit assignments in the layout comments stay honest.
func TestDecodeMatchesStructs(t *testing.T) {
	m := NewTokenModel(DefaultTokenConfig(ArbiterAct))
	s := &tstate{
		Holders: []holder{{Tokens: 1, HasData: true, Current: true}, {}, {Tokens: 1}, {Tokens: 2, Owner: true, HasData: true, Current: true}},
		Msgs:    []tmsg{{Tokens: 1, Dst: 2}},
		Reqs:    []preq{{Valid: true, Write: true}, {}, {Valid: true}},
		ArbQ:    []int{0, 2},
	}
	key := make([]byte, m.width)
	m.encode(s, key)
	got := m.newState()
	m.decode(string(key), &got)
	if !reflect.DeepEqual(got.Holders, s.Holders) || !reflect.DeepEqual(got.Msgs, s.Msgs) ||
		!reflect.DeepEqual(got.Reqs, s.Reqs) || !reflect.DeepEqual(got.ArbQ, s.ArbQ) {
		t.Fatalf("decode mismatch:\n got %+v\nwant %+v", got, *s)
	}
}
