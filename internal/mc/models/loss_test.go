package models

import (
	"strings"
	"testing"

	"tokencmp/internal/mc"
)

// Loss-mode verification: the paper's Section 5 models gain an
// interconnect-loss transition (any non-owner in-flight message may
// vanish, its tokens moving to a Lost pool the memory controller later
// recreates), and the conservation invariant weakens to "conservation
// modulo recreation": live tokens + Lost == T. These tests pin that
// the weakened models still verify, that loss genuinely enlarges the
// reachable space, and that the extra Lost byte round-trips without
// disturbing the loss-free layout.

func lossCfg(act Activation) TokenConfig {
	cfg := DefaultTokenConfig(act)
	cfg.Loss = true
	return cfg
}

// TestTokenLossVerifiesAllActivations is the headline: with message
// loss enabled, all three activation variants still pass every safety
// and liveness property — token recreation repairs any loss, so the
// protocol needs no reliable interconnect.
func TestTokenLossVerifiesAllActivations(t *testing.T) {
	for _, act := range []Activation{SafetyOnly, ArbiterAct, DistributedAct} {
		cfg := lossCfg(act)
		if act != SafetyOnly && testing.Short() {
			cfg.T = 3
		}
		res := mc.CheckOpt(NewTokenModel(cfg), mc.Options{Symmetry: true})
		t.Log(res)
		if !res.OK() {
			t.Fatalf("%v+loss failed: %v", act, res)
		}
	}
}

// TestTokenLossEnlargesStateSpace asserts the loss transitions are not
// dead: the loss model reaches strictly more states than the reliable
// model at the same configuration, and the corpus contains states with
// tokens actually in the Lost pool.
func TestTokenLossEnlargesStateSpace(t *testing.T) {
	base := mc.Check(NewTokenModel(DefaultTokenConfig(SafetyOnly)), 0)
	loss := mc.Check(NewTokenModel(lossCfg(SafetyOnly)), 0)
	if !base.OK() || !loss.OK() {
		t.Fatalf("models failed: base %v, loss %v", base, loss)
	}
	if loss.States <= base.States {
		t.Fatalf("loss model reached %d states, reliable model %d — loss transitions never fired",
			loss.States, base.States)
	}

	m := NewTokenModel(lossCfg(SafetyOnly))
	st := m.newState()
	lost := 0
	for _, s := range explore(t, m, 3000) {
		m.decode(s, &st)
		if st.Lost > 0 {
			lost++
		}
	}
	if lost == 0 {
		t.Fatal("no reachable state holds lost tokens")
	}
}

// TestTokenLossRoundTrip extends the injectivity property to the Lost
// byte: decode→encode is the identity over a loss-model corpus of every
// activation variant.
func TestTokenLossRoundTrip(t *testing.T) {
	for _, act := range []Activation{SafetyOnly, ArbiterAct, DistributedAct} {
		m := NewTokenModel(lossCfg(act))
		st := m.newState()
		key := make([]byte, m.width)
		for _, s := range explore(t, m, 3000) {
			m.decode(s, &st)
			m.encode(&st, key)
			if string(key) != s {
				t.Fatalf("%s: decode→encode changed the key\n in: %x\nout: %x", m.Name(), s, key)
			}
		}
	}
}

// TestTokenLossLayoutIsOptIn pins the zero-cost contract: disabling
// loss leaves the packed layout, the model name, and the initial states
// byte-identical to the pre-loss encoding (the state-count pins and
// golden outputs must not move), while enabling it appends exactly one
// trailing byte and a "+loss" name suffix.
func TestTokenLossLayoutIsOptIn(t *testing.T) {
	for _, act := range []Activation{SafetyOnly, ArbiterAct, DistributedAct} {
		base := NewTokenModel(DefaultTokenConfig(act))
		loss := NewTokenModel(lossCfg(act))
		if base.offL != -1 {
			t.Fatalf("%s: loss-free layout reserves a Lost byte", base.Name())
		}
		if loss.width != base.width+1 || loss.offL != base.width {
			t.Fatalf("%s: loss layout width %d offL %d, want trailing byte after width %d",
				loss.Name(), loss.width, loss.offL, base.width)
		}
		if !strings.HasSuffix(loss.Name(), "+loss") || strings.HasSuffix(base.Name(), "+loss") {
			t.Fatalf("names not distinguished: %q vs %q", base.Name(), loss.Name())
		}
		bi, li := base.Initial(), loss.Initial()
		if len(bi) != len(li) {
			t.Fatalf("%s: %d initial states, loss model %d", base.Name(), len(bi), len(li))
		}
		for i := range bi {
			if li[i][:base.width] != bi[i] || li[i][base.width] != 0 {
				t.Fatalf("%s: initial state %d differs beyond a zero Lost byte", base.Name(), i)
			}
		}
	}
}

// TestTokenLossConservationModuloRecreation property-checks the
// weakened invariant directly over a reachable corpus: summing tokens
// over holders and in-flight messages plus the Lost pool always yields
// exactly T.
func TestTokenLossConservationModuloRecreation(t *testing.T) {
	m := NewTokenModel(lossCfg(SafetyOnly))
	st := m.newState()
	for _, s := range explore(t, m, 3000) {
		m.decode(s, &st)
		total := st.Lost
		for _, h := range st.Holders {
			total += h.Tokens
		}
		for _, msg := range st.Msgs {
			total += msg.Tokens
		}
		if total != m.cfg.T {
			t.Fatalf("state %x: tokens+Lost = %d, want %d", s, total, m.cfg.T)
		}
	}
}

// TestTokenLossSymmetryEquivalence cross-checks the reduction on the
// loss-extended arbiter model: the orbit-expanded state count of the
// reduced run must equal the unreduced reachable count (the Lost pool
// is a cache-permutation fixed point, so the descriptor stays sound).
func TestTokenLossSymmetryEquivalence(t *testing.T) {
	cfg := lossCfg(ArbiterAct)
	cfg.T = 2
	full := mc.CheckOpt(NewTokenModel(cfg), mc.Options{})
	red := mc.CheckOpt(NewTokenModel(cfg), mc.Options{Symmetry: true})
	if !full.OK() || !red.OK() {
		t.Fatalf("models failed: full %v, reduced %v", full, red)
	}
	if !red.Symmetry {
		t.Fatal("symmetry reduction was not applied")
	}
	if red.FullStates != full.States {
		t.Fatalf("reduced FullStates %d != unreduced States %d", red.FullStates, full.States)
	}
	if red.States >= full.States {
		t.Fatalf("reduction saved nothing: %d representatives vs %d states", red.States, full.States)
	}
}
