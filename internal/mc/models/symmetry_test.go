package models

import (
	"bytes"
	"testing"

	"tokencmp/internal/mc"
)

// This file property-tests the symmetry descriptors against
// struct-level cache renaming: for every model, a reachable corpus is
// permuted by renaming cache IDs in the decoded state (the ground
// truth the descriptors must reproduce byte-wise), and canonicalization
// must send every orbit member to the same representative with the
// same orbit size. The descriptors and the canonicalizer are
// independent implementations of the same group action, so agreement
// here pins both.

// permuteTokenState renames cache i to p[i] (the memory holder is a
// fixed point).
func permuteTokenState(m *TokenModel, s *tstate, p []int) *tstate {
	c := m.cfg.Caches
	out := m.newState()
	out.Holders = out.Holders[:c+1]
	for i := 0; i < c; i++ {
		out.Holders[p[i]] = s.Holders[i]
	}
	out.Holders[c] = s.Holders[c]
	for _, msg := range s.Msgs {
		if msg.Dst < c {
			msg.Dst = p[msg.Dst]
		}
		out.Msgs = append(out.Msgs, msg)
	}
	out.Reqs = out.Reqs[:c]
	for i := 0; i < c; i++ {
		out.Reqs[p[i]] = s.Reqs[i]
	}
	for _, q := range s.ArbQ {
		out.ArbQ = append(out.ArbQ, p[q])
	}
	return &out
}

// permuteDirState renames cache i to p[i] (-1 references and the
// directory are fixed points).
func permuteDirState(m *DirModel, s *dstate, p []int) *dstate {
	ref := func(v int) int {
		if v >= 0 {
			return p[v]
		}
		return v
	}
	out := m.newState()
	out.C = out.C[:m.caches]
	for i := 0; i < m.caches; i++ {
		out.C[p[i]] = s.C[i]
	}
	for _, msg := range s.Msgs {
		msg.To = ref(msg.To)
		msg.P = p[msg.P]
		out.Msgs = append(out.Msgs, msg)
	}
	out.Owner = ref(s.Owner)
	for q := 0; q < m.caches; q++ {
		if s.Sharers&(1<<uint(q)) != 0 {
			out.Sharers |= 1 << uint(p[q])
		}
	}
	out.MemCur = s.MemCur
	out.Busy = ref(s.Busy)
	out.BusyOwn = ref(s.BusyOwn)
	out.BusyWB = s.BusyWB
	return &out
}

// permuteHammerState renames cache i to p[i] (-1 references and the
// home are fixed points).
func permuteHammerState(m *HammerModel, s *hstate, p []int) *hstate {
	ref := func(v int) int {
		if v >= 0 {
			return p[v]
		}
		return v
	}
	out := m.newState()
	out.C = out.C[:m.caches]
	for i := 0; i < m.caches; i++ {
		out.C[p[i]] = s.C[i]
	}
	for _, msg := range s.Msgs {
		msg.To = ref(msg.To)
		msg.P = p[msg.P]
		out.Msgs = append(out.Msgs, msg)
	}
	out.MemCur = s.MemCur
	out.Busy = ref(s.Busy)
	out.BusyWB = ref(s.BusyWB)
	return &out
}

// checkCanonProperties asserts, over a corpus of packed keys and every
// permutation of the cache IDs, that canonicalization is idempotent
// and permutation-invariant with permutation-invariant orbit sizes.
// permuted must return the packed encoding of the p-renamed state.
func checkCanonProperties(t *testing.T, sym *mc.Symmetry, corpus []string,
	permuted func(s string, p []int) []byte) {
	t.Helper()
	width := len(corpus[0])
	canon := sym.NewCanonicalizer(width)
	if canon == nil {
		t.Fatal("NewCanonicalizer returned nil for an in-range config")
	}
	base := make([]byte, width)
	for _, s := range corpus {
		copy(base, s)
		orbit := canon.Canonicalize(base)
		if orbit < 1 {
			t.Fatalf("orbit size %d < 1 for %x", orbit, s)
		}
		again := append([]byte(nil), base...)
		if o2 := canon.Canonicalize(again); !bytes.Equal(again, base) || o2 != orbit {
			t.Fatalf("canonicalization not idempotent:\n key: %x\n 1st: %x (orbit %d)\n 2nd: %x (orbit %d)",
				s, base, orbit, again, o2)
		}
		seen := 0
		for _, p := range permutations(sym.Caches) {
			pk := permuted(s, p)
			if o := canon.Canonicalize(pk); !bytes.Equal(pk, base) || o != orbit {
				t.Fatalf("canonicalization not permutation-invariant under %v:\n     key: %x\n    want: %x (orbit %d)\n     got: %x (orbit %d)",
					p, s, base, orbit, pk, o)
			}
			seen++
		}
		if seen != factorialT(sym.Caches) {
			t.Fatalf("checked %d permutations, want %d", seen, factorialT(sym.Caches))
		}
	}
}

func factorialT(n int) int {
	f := 1
	for i := 2; i <= n; i++ {
		f *= i
	}
	return f
}

// sample thins a corpus so the full-permutation product stays fast.
func sample(corpus []string, stride int) []string {
	var out []string
	for i := 0; i < len(corpus); i += stride {
		out = append(out, corpus[i])
	}
	return out
}

// TestTokenCanonPermutationInvariant covers the arbiter and
// safety-only token models: canon(pack(π(s))) == canon(pack(s)) for
// every reachable s in the corpus and every cache permutation π.
func TestTokenCanonPermutationInvariant(t *testing.T) {
	for _, act := range []Activation{SafetyOnly, ArbiterAct} {
		m := NewTokenModel(DefaultTokenConfig(act))
		corpus := sample(explore(t, m, 3000), 7)
		st := m.newState()
		checkCanonProperties(t, m.Symmetry(), corpus, func(s string, p []int) []byte {
			m.decode(s, &st)
			key := make([]byte, m.width)
			m.encode(permuteTokenState(m, &st, p), key)
			return key
		})
	}
}

// TestDirCanonPermutationInvariant is the directory-model property.
func TestDirCanonPermutationInvariant(t *testing.T) {
	m := DefaultDirModel()
	corpus := sample(explore(t, m, 3000), 7)
	st := m.newState()
	checkCanonProperties(t, m.Symmetry(), corpus, func(s string, p []int) []byte {
		m.decode(s, &st)
		key := make([]byte, m.width)
		m.encode(permuteDirState(m, &st, p), key)
		return key
	})
}

// TestHammerCanonPermutationInvariant is the hammer-model property, at
// three caches so non-trivial stabilizers arise.
func TestHammerCanonPermutationInvariant(t *testing.T) {
	m := DefaultHammerModel()
	corpus := sample(explore(t, m, 2000), 7)
	st := m.newState()
	checkCanonProperties(t, m.Symmetry(), corpus, func(s string, p []int) []byte {
		m.decode(s, &st)
		key := make([]byte, m.width)
		m.encode(permuteHammerState(m, &st, p), key)
		return key
	})
}

// TestDistributedModelOptsOut pins the soundness exclusion: the
// distributed-activation model arbitrates persistent requests by
// lowest cache index, so its transition relation is not closed under
// permutation and it must not declare a symmetry.
func TestDistributedModelOptsOut(t *testing.T) {
	m := NewTokenModel(DefaultTokenConfig(DistributedAct))
	if m.Symmetry() != nil {
		t.Fatal("distributed model declared a symmetry; its fixed-priority activation is not permutation-invariant")
	}
	for _, act := range []Activation{SafetyOnly, ArbiterAct} {
		if NewTokenModel(DefaultTokenConfig(act)).Symmetry() == nil {
			t.Fatalf("activation %v should declare a symmetry", act)
		}
	}
}

// TestOrbitSizesSumToFullSpace asserts, on a small full reachable set,
// that the orbit sizes reported by the canonicalizer partition the
// space: summing the orbit size over distinct representatives of every
// reachable state must count every reachable state exactly once.
func TestOrbitSizesSumToFullSpace(t *testing.T) {
	cfg := DefaultTokenConfig(SafetyOnly)
	cfg.T = 2
	m := NewTokenModel(cfg)
	corpus := explore(t, m, 1<<20) // the full reachable set at this scale
	canon := m.Symmetry().NewCanonicalizer(m.width)
	reps := map[string]bool{}
	key := make([]byte, m.width)
	for _, s := range corpus {
		copy(key, s)
		canon.Canonicalize(key)
		reps[string(key)] = true
	}
	total := 0
	for rep := range reps {
		copy(key, rep)
		total += canon.Canonicalize(key)
	}
	if total != len(corpus) {
		t.Fatalf("orbit sizes sum to %d, want the full reachable count %d (reps=%d)",
			total, len(corpus), len(reps))
	}
}
