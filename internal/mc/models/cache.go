package models

import (
	"hash/maphash"
	"sync"
)

// stateCache memoizes decoded states by their encoded key. The model
// checker expands BFS frontiers in parallel, so Successors/Check/etc.
// run concurrently on one model instance; the cache is sharded to keep
// lock contention off the hot encode/decode path.
const cacheShards = 64

type cacheShard[T any] struct {
	mu sync.RWMutex
	m  map[string]T
}

type stateCache[T any] struct {
	seed   maphash.Seed
	shards [cacheShards]cacheShard[T]
}

func newStateCache[T any]() *stateCache[T] {
	c := &stateCache[T]{seed: maphash.MakeSeed()}
	for i := range c.shards {
		c.shards[i].m = make(map[string]T)
	}
	return c
}

func (c *stateCache[T]) shard(key string) *cacheShard[T] {
	return &c.shards[maphash.String(c.seed, key)%cacheShards]
}

func (c *stateCache[T]) get(key string) (T, bool) {
	sh := c.shard(key)
	sh.mu.RLock()
	v, ok := sh.m[key]
	sh.mu.RUnlock()
	return v, ok
}

// putIfAbsent stores v under key unless a value is already cached, and
// returns whichever value ended up cached. Racing encoders of the same
// state build equal decoded values, so first-writer-wins is safe.
func (c *stateCache[T]) putIfAbsent(key string, v T) T {
	sh := c.shard(key)
	sh.mu.Lock()
	if old, ok := sh.m[key]; ok {
		sh.mu.Unlock()
		return old
	}
	sh.m[key] = v
	sh.mu.Unlock()
	return v
}
