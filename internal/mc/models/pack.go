package models

// This file holds the shared machinery of the packed binary state
// encodings. Every model packs a full state into a fixed-width byte
// key: scalar fields become single bytes (small signed fields are
// offset or stored as int8), booleans become flag bits, and the
// variable-length in-flight message multiset becomes a count byte plus
// a fixed number of fixed-width record slots, canonically ordered
// (mc.SortSlots) and padded with 0xFF. Keys decode in place into
// per-worker scratch states drawn from a sync.Pool, so the checker's
// hot path neither parses strings nor consults a decode cache.
//
// Each model also publishes an mc.Symmetry descriptor for its layout
// (nil when its rules are not permutation-invariant), from which the
// checker derives the canonicalize-under-cache-permutation reduction —
// no per-model canonicalizer code.

// slotPad fills unused message slots so that states differing only in
// dead slot bytes cannot arise.
const slotPad = 0xFF

// padSlots fills records n..total of b with the slot padding byte.
func padSlots(b []byte, n, total, w int) {
	for i := n * w; i < total*w; i++ {
		b[i] = slotPad
	}
}

// flag returns bit n set iff v.
func flag(v bool, n uint) byte {
	if v {
		return 1 << n
	}
	return 0
}
