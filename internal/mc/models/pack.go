package models

import "bytes"

// This file holds the shared machinery of the packed binary state
// encodings. Every model packs a full state into a fixed-width byte
// key: scalar fields become single bytes (small signed fields are
// offset or stored as int8), booleans become flag bits, and the
// variable-length in-flight message multiset becomes a count byte plus
// a fixed number of fixed-width record slots, canonically ordered and
// padded with 0xFF. Keys decode in place into per-worker scratch
// states drawn from a sync.Pool, so the checker's hot path neither
// parses strings nor consults a decode cache.

// slotPad fills unused message slots so that states differing only in
// dead slot bytes cannot arise.
const slotPad = 0xFF

// sortSlots canonicalizes the n leading w-byte records of b into
// ascending lexicographic byte order, so states differing only by
// message permutation collapse to one key. This replaces the seed's
// sort.Slice canonicalization whose comparator called fmt.Sprint on
// both operands per comparison; insertion sort is exact and
// allocation-free at the single-digit message counts the models bound.
func sortSlots(b []byte, n, w int) {
	var tmp [8]byte
	rec := tmp[:w]
	for i := 1; i < n; i++ {
		copy(rec, b[i*w:])
		j := i
		for j > 0 && bytes.Compare(b[(j-1)*w:j*w], rec) > 0 {
			copy(b[j*w:(j+1)*w], b[(j-1)*w:j*w])
			j--
		}
		copy(b[j*w:(j+1)*w], rec)
	}
}

// padSlots fills records n..total of b with the slot padding byte.
func padSlots(b []byte, n, total, w int) {
	for i := n * w; i < total*w; i++ {
		b[i] = slotPad
	}
}

// flag returns bit n set iff v.
func flag(v bool, n uint) byte {
	if v {
		return 1 << n
	}
	return 0
}
