// Package models contains the downscaled protocol models checked by
// internal/mc, mirroring the paper's Section 5 TLA+ models: three
// versions of the token-coherence correctness substrate (arbiter
// activation, distributed activation, and safety-only) and a simplified
// flat directory protocol.
//
// The token models drive the performance-policy interface
// nondeterministically — any holder may spill any of its tokens toward
// any cache at any time — so the verification covers every possible
// performance policy, hierarchical ones included. Data values use the
// data-independence abstraction (Wolper): each copy carries a single
// "current" bit; a store makes the writer's copy current, and the serial
// view of memory holds iff every readable copy is current.
package models

import (
	"fmt"
	"sort"
	"strings"
)

// Activation selects the starvation-avoidance mechanism modeled.
type Activation int

// Activation mechanisms (SafetyOnly omits persistent requests entirely,
// like the paper's TokenCMP-safety model).
const (
	ArbiterAct Activation = iota
	DistributedAct
	SafetyOnly
)

// TokenConfig sizes the token-substrate model.
type TokenConfig struct {
	Caches   int // caches with processors (memory is an extra holder)
	T        int // tokens per block
	MaxMsgs  int // in-flight message bound
	Activate Activation
}

// DefaultTokenConfig is a small but non-trivial configuration: three
// caches plus memory, four tokens, two in-flight messages.
func DefaultTokenConfig(a Activation) TokenConfig {
	return TokenConfig{Caches: 3, T: 4, MaxMsgs: 2, Activate: a}
}

// holder is one token-holding site (a cache or the memory).
type holder struct {
	Tokens  int
	Owner   bool
	HasData bool
	Current bool
}

// tmsg is one in-flight substrate message.
type tmsg struct {
	Tokens  int
	Owner   bool
	HasData bool
	Current bool
	Dst     int
}

// preq is one persistent-request table entry (distributed) or queue
// element (arbiter).
type preq struct {
	Valid  bool
	Write  bool
	Marked bool // distributed marking mechanism
}

// tstate is a full model state. Holders[Caches] is the memory.
type tstate struct {
	Holders []holder
	Msgs    []tmsg
	Reqs    []preq // per processor
	ArbQ    []int  // arbiter FIFO (processor indices); ArbQ[0] is active
}

// TokenModel is the substrate transition system. Its methods are safe
// for concurrent use, as required by the parallel checker in
// internal/mc.
type TokenModel struct {
	cfg    TokenConfig
	decode *stateCache[*tstate]
}

// NewTokenModel builds a model for cfg.
func NewTokenModel(cfg TokenConfig) *TokenModel {
	return &TokenModel{cfg: cfg, decode: newStateCache[*tstate]()}
}

// Name implements mc.Model.
func (m *TokenModel) Name() string {
	switch m.cfg.Activate {
	case ArbiterAct:
		return "TokenCMP-arb"
	case DistributedAct:
		return "TokenCMP-dst"
	default:
		return "TokenCMP-safety"
	}
}

func (m *TokenModel) mem() int { return m.cfg.Caches }

func (m *TokenModel) encode(s *tstate) string {
	// Canonicalize message order so states differing only by message
	// permutation collapse.
	msgs := append([]tmsg{}, s.Msgs...)
	sort.Slice(msgs, func(i, j int) bool {
		return fmt.Sprint(msgs[i]) < fmt.Sprint(msgs[j])
	})
	var b strings.Builder
	fmt.Fprintf(&b, "H%v M%v R%v Q%v", s.Holders, msgs, s.Reqs, s.ArbQ)
	key := b.String()
	if _, ok := m.decode.get(key); !ok {
		cp := &tstate{
			Holders: append([]holder{}, s.Holders...),
			Msgs:    msgs,
			Reqs:    append([]preq{}, s.Reqs...),
			ArbQ:    append([]int{}, s.ArbQ...),
		}
		m.decode.putIfAbsent(key, cp)
	}
	return key
}

func (m *TokenModel) clone(s *tstate) *tstate {
	return &tstate{
		Holders: append([]holder{}, s.Holders...),
		Msgs:    append([]tmsg{}, s.Msgs...),
		Reqs:    append([]preq{}, s.Reqs...),
		ArbQ:    append([]int{}, s.ArbQ...),
	}
}

// Initial implements mc.Model: all tokens at memory with current data.
func (m *TokenModel) Initial() []string {
	s := &tstate{
		Holders: make([]holder, m.cfg.Caches+1),
		Reqs:    make([]preq, m.cfg.Caches),
	}
	s.Holders[m.mem()] = holder{Tokens: m.cfg.T, Owner: true, HasData: true, Current: true}
	return []string{m.encode(s)}
}

// canRead reports read permission at holder i.
func canRead(h holder) bool { return h.Tokens >= 1 && h.HasData }

// canWrite reports write permission at holder i given T.
func canWrite(h holder, t int) bool { return h.Tokens == t && h.HasData }

// activeReq returns the processor whose persistent request is activated.
func (m *TokenModel) activeReq(s *tstate) (int, bool) {
	switch m.cfg.Activate {
	case DistributedAct:
		for p := range s.Reqs {
			if s.Reqs[p].Valid {
				return p, true // fixed priority: lowest index
			}
		}
	case ArbiterAct:
		if len(s.ArbQ) > 0 {
			return s.ArbQ[0], true
		}
	}
	return 0, false
}

// Successors implements mc.Model.
func (m *TokenModel) Successors(key string) []string {
	s, _ := m.decode.get(key)
	var out []string
	emit := func(n *tstate) { out = append(out, m.encode(n)) }
	T := m.cfg.T

	// 1. Performance policy: any holder may send one token or all of its
	// tokens to any other site. Owner-token messages must carry data.
	for i := range s.Holders {
		h := s.Holders[i]
		if h.Tokens == 0 || len(s.Msgs) >= m.cfg.MaxMsgs {
			continue
		}
		for j := range s.Holders {
			if j == i {
				continue
			}
			// Send everything.
			n := m.clone(s)
			n.Holders[i] = holder{}
			n.Msgs = append(n.Msgs, tmsg{Tokens: h.Tokens, Owner: h.Owner, HasData: h.HasData, Current: h.Current, Dst: j})
			emit(n)
			// Send a single non-owner token without data.
			if h.Tokens >= 2 || (h.Tokens == 1 && !h.Owner) {
				n := m.clone(s)
				nh := h
				nh.Tokens--
				if nh.Tokens == 0 {
					nh.HasData = false
					nh.Current = false
				}
				n.Holders[i] = nh
				n.Msgs = append(n.Msgs, tmsg{Tokens: 1, Dst: j})
				emit(n)
			}
		}
	}

	// 2. Message delivery merges payload into the destination.
	for k := range s.Msgs {
		n := m.clone(s)
		msg := n.Msgs[k]
		n.Msgs = append(n.Msgs[:k], n.Msgs[k+1:]...)
		h := n.Holders[msg.Dst]
		h.Tokens += msg.Tokens
		if msg.Owner {
			h.Owner = true
		}
		if msg.HasData {
			h.HasData = true
			h.Current = msg.Current
		}
		n.Holders[msg.Dst] = h
		emit(n)
	}

	// 3. Processor stores: a cache with all T tokens may write, making
	// its copy the (only) current one.
	for p := 0; p < m.cfg.Caches; p++ {
		if canWrite(s.Holders[p], T) {
			n := m.clone(s)
			n.Holders[p].Current = true
			emit(n)
		}
	}

	if m.cfg.Activate == SafetyOnly {
		return out
	}

	// 4. Persistent request issue (one per processor; the distributed
	// marking mechanism gates re-issue until marked entries drain).
	for p := 0; p < m.cfg.Caches; p++ {
		if s.Reqs[p].Valid {
			continue
		}
		if m.cfg.Activate == DistributedAct {
			blockedByMark := false
			for q := range s.Reqs {
				if s.Reqs[q].Valid && s.Reqs[q].Marked {
					blockedByMark = true
				}
			}
			if blockedByMark {
				continue
			}
		}
		for _, write := range []bool{false, true} {
			n := m.clone(s)
			n.Reqs[p] = preq{Valid: true, Write: write}
			if m.cfg.Activate == ArbiterAct {
				n.ArbQ = append(n.ArbQ, p)
			}
			emit(n)
		}
	}

	// 5. Forwarding obligation: while processor a's request is activated,
	// any other holder forwards its tokens — everything for a write;
	// all-but-one (owner with data travels) for a read.
	if a, ok := m.activeReq(s); ok {
		req := s.Reqs[a]
		for i := range s.Holders {
			if i == a || s.Holders[i].Tokens == 0 || len(s.Msgs) >= m.cfg.MaxMsgs {
				continue
			}
			h := s.Holders[i]
			n := m.clone(s)
			isMem := i == m.mem()
			switch {
			case req.Write || isMem:
				n.Holders[i] = holder{}
				n.Msgs = append(n.Msgs, tmsg{Tokens: h.Tokens, Owner: h.Owner, HasData: h.HasData, Current: h.Current, Dst: a})
			case h.Owner:
				give := h.Tokens - 1
				if give < 1 {
					give = h.Tokens
				}
				nh := h
				nh.Tokens -= give
				nh.Owner = false
				if nh.Tokens == 0 {
					nh.HasData = false
					nh.Current = false
				}
				n.Holders[i] = nh
				n.Msgs = append(n.Msgs, tmsg{Tokens: give, Owner: true, HasData: true, Current: h.Current, Dst: a})
			case h.Tokens >= 2:
				nh := h
				nh.Tokens = 1
				n.Holders[i] = nh
				n.Msgs = append(n.Msgs, tmsg{Tokens: h.Tokens - 1, Dst: a})
			default:
				continue
			}
			emit(n)
		}
	}

	// 6. Persistent request completion: the initiator deactivates once it
	// has sufficient tokens. Under distributed activation it marks the
	// remaining entries (the wave mechanism).
	for p := 0; p < m.cfg.Caches; p++ {
		if !s.Reqs[p].Valid {
			continue
		}
		h := s.Holders[p]
		satisfied := (s.Reqs[p].Write && canWrite(h, T)) || (!s.Reqs[p].Write && canRead(h))
		if !satisfied {
			continue
		}
		n := m.clone(s)
		if n.Reqs[p].Write {
			n.Holders[p].Current = true // the store happens
		}
		n.Reqs[p] = preq{}
		if m.cfg.Activate == DistributedAct {
			for q := range n.Reqs {
				if n.Reqs[q].Valid {
					n.Reqs[q].Marked = true
				}
			}
		} else {
			// Arbiter: remove from the queue (active or not).
			for qi, qp := range n.ArbQ {
				if qp == p {
					n.ArbQ = append(n.ArbQ[:qi:qi], n.ArbQ[qi+1:]...)
					break
				}
			}
		}
		emit(n)
	}

	return out
}

// Check implements mc.Model: token conservation, one owner, the
// coherence invariant, and the serial view of memory.
func (m *TokenModel) Check(key string) error {
	s, _ := m.decode.get(key)
	tokens, owners, writers := 0, 0, 0
	for i, h := range s.Holders {
		tokens += h.Tokens
		if h.Owner {
			owners++
			if !h.HasData {
				return fmt.Errorf("holder %d has the owner token without data", i)
			}
		}
		if h.Tokens == m.cfg.T {
			writers++
		}
		if canRead(h) && !h.Current {
			return fmt.Errorf("holder %d readable with stale data (serial view violated)", i)
		}
	}
	for _, msg := range s.Msgs {
		tokens += msg.Tokens
		if msg.Owner {
			owners++
			if !msg.HasData {
				return fmt.Errorf("in-flight owner token without data")
			}
		}
	}
	if tokens != m.cfg.T {
		return fmt.Errorf("token conservation violated: %d != %d", tokens, m.cfg.T)
	}
	if owners != 1 {
		return fmt.Errorf("owner-token invariant violated: %d owners", owners)
	}
	if writers > 1 {
		return fmt.Errorf("coherence invariant violated: %d writers", writers)
	}
	return nil
}

// Quiescent implements mc.Model: any state may idle (the policy is never
// obligated to act), so deadlock means literally no successors, which the
// delivery transitions prevent; treat all states as quiescent-capable
// only when no messages and no requests are outstanding.
func (m *TokenModel) Quiescent(key string) bool {
	s, _ := m.decode.get(key)
	return len(s.Msgs) == 0 && !m.Pending(key)
}

// Pending implements mc.Model.
func (m *TokenModel) Pending(key string) bool {
	s, _ := m.decode.get(key)
	for _, r := range s.Reqs {
		if r.Valid {
			return true
		}
	}
	return false
}

// Satisfying implements mc.Model.
func (m *TokenModel) Satisfying(key string) bool { return !m.Pending(key) }
