// Package models contains the downscaled protocol models checked by
// internal/mc, mirroring the paper's Section 5 TLA+ models: three
// versions of the token-coherence correctness substrate (arbiter
// activation, distributed activation, and safety-only), a simplified
// flat directory protocol, and the HammerCMP broadcast race window.
//
// The token models drive the performance-policy interface
// nondeterministically — any holder may spill any of its tokens toward
// any cache at any time — so the verification covers every possible
// performance policy, hierarchical ones included. Data values use the
// data-independence abstraction (Wolper): each copy carries a single
// "current" bit; a store makes the writer's copy current, and the serial
// view of memory holds iff every readable copy is current.
//
// States are fixed-width packed binary keys (see pack.go); each model
// documents its layout next to its encode method.
package models

import (
	"fmt"
	"sync"

	"tokencmp/internal/mc"
)

// Activation selects the starvation-avoidance mechanism modeled.
type Activation int

// Activation mechanisms (SafetyOnly omits persistent requests entirely,
// like the paper's TokenCMP-safety model).
const (
	ArbiterAct Activation = iota
	DistributedAct
	SafetyOnly
)

// TokenConfig sizes the token-substrate model.
type TokenConfig struct {
	Caches   int // caches with processors (memory is an extra holder)
	T        int // tokens per block
	MaxMsgs  int // in-flight message bound
	Activate Activation

	// Loss enables interconnect message loss: any in-flight non-owner
	// message may be destroyed, and a token-recreation process returns
	// the destroyed tokens to memory. The safety invariant weakens from
	// exact conservation to conservation modulo recreation (held +
	// in-flight + lost == T); owner uniqueness, the coherence invariant,
	// and the serial view are unchanged. Transient-request loss needs no
	// extra transitions — the model has no request messages (the policy
	// nondeterminism already covers "the request never arrived") — so
	// Loss adds exactly what that cannot express: tokens vanishing from
	// the wire. See the README's fault-injection section for how this
	// differs from the simulator's ack+retransmit shim.
	Loss bool
}

// DefaultTokenConfig is a small but non-trivial configuration: three
// caches plus memory, four tokens, two in-flight messages.
func DefaultTokenConfig(a Activation) TokenConfig {
	return TokenConfig{Caches: 3, T: 4, MaxMsgs: 2, Activate: a}
}

// holder is one token-holding site (a cache or the memory).
type holder struct {
	Tokens  int
	Owner   bool
	HasData bool
	Current bool
}

// tmsg is one in-flight substrate message.
type tmsg struct {
	Tokens  int
	Owner   bool
	HasData bool
	Current bool
	Dst     int
}

// preq is one persistent-request table entry (distributed) or queue
// element (arbiter).
type preq struct {
	Valid  bool
	Write  bool
	Marked bool // distributed marking mechanism
}

// tstate is a full model state. Holders[Caches] is the memory. Lost
// counts tokens destroyed by the lossy interconnect and not yet
// recreated (always 0 unless TokenConfig.Loss).
type tstate struct {
	Holders []holder
	Msgs    []tmsg
	Reqs    []preq // per processor
	ArbQ    []int  // arbiter FIFO (processor indices); ArbQ[0] is active
	Lost    int
}

// tscratch is one worker's reusable decode/encode workspace.
type tscratch struct {
	cur, next tstate
	key       []byte
}

// TokenModel is the substrate transition system. Its methods are safe
// for concurrent use, as required by the parallel checker in
// internal/mc: all mutable state lives in pooled per-call scratch.
type TokenModel struct {
	cfg TokenConfig

	// Packed layout (fixed width, offsets precomputed per config):
	//
	//	[0, offN)        holders: Caches+1 × 2 bytes [tokens][owner|hasData<<1|current<<2]
	//	[offN]           in-flight message count
	//	[offM, offR)     MaxMsgs × 3-byte slots [tokens][owner|hasData<<1|current<<2][dst],
	//	                 byte-sorted, unused slots 0xFF
	//	[offR, offQ)     Caches × 1 byte [valid|write<<1|marked<<2]
	//	[offQ, ...)      arbiter FIFO: processor indices, 0xFF padding
	//	[offL]           lost-token count — present only when cfg.Loss,
	//	                 so loss-free layouts (and their pinned state
	//	                 counts) are byte-identical to pre-loss builds
	offN, offM, offR, offQ, offL, width int

	// sym describes the layout's cache symmetry for the checker's
	// canonicalization (nil for the distributed model; see NewTokenModel).
	sym *mc.Symmetry

	pool sync.Pool // *tscratch
}

const tmsgW = 3 // packed tmsg record width

// NewTokenModel builds a model for cfg.
func NewTokenModel(cfg TokenConfig) *TokenModel {
	if cfg.Caches < 1 || cfg.Caches > 254 || cfg.T < 1 || cfg.T > 254 || cfg.MaxMsgs < 1 || cfg.MaxMsgs > 254 {
		panic(fmt.Sprintf("models: token config out of packed-encoding range: %+v", cfg))
	}
	m := &TokenModel{cfg: cfg}
	m.offN = 2 * (cfg.Caches + 1)
	m.offM = m.offN + 1
	m.offR = m.offM + tmsgW*cfg.MaxMsgs
	m.offQ = m.offR + cfg.Caches
	m.width = m.offQ + cfg.Caches
	m.offL = -1
	if cfg.Loss {
		m.offL = m.width
		m.width++
	}
	if cfg.Activate != DistributedAct {
		// Cache symmetry: the holder and request records are per-cache
		// groups (the memory holder at index Caches stays fixed), message
		// destinations are plain cache indices (Dst == Caches names the
		// memory and is a fixed point), and the arbiter FIFO holds plain
		// cache indices in arrival order (0xFF padding is a fixed point).
		//
		// The distributed model gets no descriptor: activeReq activates
		// the LOWEST-indexed valid persistent request, so its transition
		// relation orders the caches and is not closed under permutation
		// — exactly the rule shape Ip & Dill's scalarset discipline
		// excludes. It is checked unreduced.
		arbRefs := make([]mc.Ref, cfg.Caches)
		for q := range arbRefs {
			arbRefs[q] = mc.Ref{Off: m.offQ + q, Enc: mc.RefPlain}
		}
		m.sym = &mc.Symmetry{
			Caches: cfg.Caches,
			Groups: []mc.Group{{Off: 0, Stride: 2}, {Off: m.offR, Stride: 1}},
			Refs:   arbRefs,
			Slots: []mc.SlotRegion{{
				CountOff: m.offN, Off: m.offM, W: tmsgW,
				Refs: []mc.Ref{{Off: 2, Enc: mc.RefPlain}},
			}},
		}
	}
	m.pool.New = func() any {
		return &tscratch{
			cur:  m.newState(),
			next: m.newState(),
			key:  make([]byte, m.width),
		}
	}
	return m
}

func (m *TokenModel) newState() tstate {
	return tstate{
		Holders: make([]holder, m.cfg.Caches+1),
		Msgs:    make([]tmsg, 0, m.cfg.MaxMsgs+1),
		Reqs:    make([]preq, m.cfg.Caches),
		ArbQ:    make([]int, 0, m.cfg.Caches),
	}
}

// Name implements mc.Model.
func (m *TokenModel) Name() string {
	name := "TokenCMP-safety"
	switch m.cfg.Activate {
	case ArbiterAct:
		name = "TokenCMP-arb"
	case DistributedAct:
		name = "TokenCMP-dst"
	}
	if m.cfg.Loss {
		name += "+loss"
	}
	return name
}

func (m *TokenModel) mem() int { return m.cfg.Caches }

// Symmetry implements mc.Symmetric. The arbiter and safety-only models
// are fully symmetric in their caches; the distributed model is not
// (fixed-priority activation) and returns nil, opting out of reduction.
func (m *TokenModel) Symmetry() *mc.Symmetry { return m.sym }

// encode packs s into key (len m.width), canonicalizing message order
// by direct byte comparison of the packed records.
func (m *TokenModel) encode(s *tstate, key []byte) {
	for i, h := range s.Holders {
		key[2*i] = byte(h.Tokens)
		key[2*i+1] = flag(h.Owner, 0) | flag(h.HasData, 1) | flag(h.Current, 2)
	}
	key[m.offN] = byte(len(s.Msgs))
	for k, msg := range s.Msgs {
		off := m.offM + tmsgW*k
		key[off] = byte(msg.Tokens)
		key[off+1] = flag(msg.Owner, 0) | flag(msg.HasData, 1) | flag(msg.Current, 2)
		key[off+2] = byte(msg.Dst)
	}
	mc.SortSlots(key[m.offM:m.offR], len(s.Msgs), tmsgW)
	padSlots(key[m.offM:m.offR], len(s.Msgs), m.cfg.MaxMsgs, tmsgW)
	for p, r := range s.Reqs {
		key[m.offR+p] = flag(r.Valid, 0) | flag(r.Write, 1) | flag(r.Marked, 2)
	}
	for q := 0; q < m.cfg.Caches; q++ {
		if q < len(s.ArbQ) {
			key[m.offQ+q] = byte(s.ArbQ[q])
		} else {
			key[m.offQ+q] = slotPad
		}
	}
	if m.cfg.Loss {
		key[m.offL] = byte(s.Lost)
	}
}

// decode unpacks key into s (whose slices are pre-sized scratch).
func (m *TokenModel) decode(key string, s *tstate) {
	s.Holders = s.Holders[:m.cfg.Caches+1]
	for i := range s.Holders {
		fl := key[2*i+1]
		s.Holders[i] = holder{Tokens: int(key[2*i]), Owner: fl&1 != 0, HasData: fl&2 != 0, Current: fl&4 != 0}
	}
	s.Msgs = s.Msgs[:0]
	for k := 0; k < int(key[m.offN]); k++ {
		off := m.offM + tmsgW*k
		fl := key[off+1]
		s.Msgs = append(s.Msgs, tmsg{Tokens: int(key[off]), Owner: fl&1 != 0, HasData: fl&2 != 0, Current: fl&4 != 0, Dst: int(key[off+2])})
	}
	s.Reqs = s.Reqs[:m.cfg.Caches]
	for p := range s.Reqs {
		fl := key[m.offR+p]
		s.Reqs[p] = preq{Valid: fl&1 != 0, Write: fl&2 != 0, Marked: fl&4 != 0}
	}
	s.ArbQ = s.ArbQ[:0]
	for q := 0; q < m.cfg.Caches; q++ {
		v := key[m.offQ+q]
		if v == slotPad {
			break
		}
		s.ArbQ = append(s.ArbQ, int(v))
	}
	s.Lost = 0
	if m.cfg.Loss {
		s.Lost = int(key[m.offL])
	}
}

// stage copies the decoded state into the scratch successor, which the
// caller mutates and emits before the next stage call.
func (m *TokenModel) stage(sc *tscratch) *tstate {
	s, n := &sc.cur, &sc.next
	n.Holders = n.Holders[:len(s.Holders)]
	copy(n.Holders, s.Holders)
	n.Msgs = append(n.Msgs[:0], s.Msgs...)
	n.Reqs = n.Reqs[:len(s.Reqs)]
	copy(n.Reqs, s.Reqs)
	n.ArbQ = append(n.ArbQ[:0], s.ArbQ...)
	n.Lost = s.Lost
	return n
}

// emit packs the staged successor and hands it to the checker.
func (m *TokenModel) emit(sb *mc.SuccBuf, sc *tscratch, n *tstate) {
	m.encode(n, sc.key)
	sb.Emit(sc.key)
}

// Initial implements mc.Model: all tokens at memory with current data.
func (m *TokenModel) Initial() []string {
	s := &tstate{
		Holders: make([]holder, m.cfg.Caches+1),
		Reqs:    make([]preq, m.cfg.Caches),
	}
	s.Holders[m.mem()] = holder{Tokens: m.cfg.T, Owner: true, HasData: true, Current: true}
	key := make([]byte, m.width)
	m.encode(s, key)
	return []string{string(key)}
}

// canRead reports read permission at holder i.
func canRead(h holder) bool { return h.Tokens >= 1 && h.HasData }

// canWrite reports write permission at holder i given T.
func canWrite(h holder, t int) bool { return h.Tokens == t && h.HasData }

// activeReq returns the processor whose persistent request is activated.
func (m *TokenModel) activeReq(s *tstate) (int, bool) {
	switch m.cfg.Activate {
	case DistributedAct:
		for p := range s.Reqs {
			if s.Reqs[p].Valid {
				return p, true // fixed priority: lowest index
			}
		}
	case ArbiterAct:
		if len(s.ArbQ) > 0 {
			return s.ArbQ[0], true
		}
	}
	return 0, false
}

// Successors implements mc.Model.
func (m *TokenModel) Successors(key string, sb *mc.SuccBuf) {
	sc := m.pool.Get().(*tscratch)
	defer m.pool.Put(sc)
	s := &sc.cur
	m.decode(key, s)
	T := m.cfg.T

	// 1. Performance policy: any holder may send one token or all of its
	// tokens to any other site. Owner-token messages must carry data.
	for i := range s.Holders {
		h := s.Holders[i]
		if h.Tokens == 0 || len(s.Msgs) >= m.cfg.MaxMsgs {
			continue
		}
		for j := range s.Holders {
			if j == i {
				continue
			}
			// Send everything.
			n := m.stage(sc)
			n.Holders[i] = holder{}
			n.Msgs = append(n.Msgs, tmsg{Tokens: h.Tokens, Owner: h.Owner, HasData: h.HasData, Current: h.Current, Dst: j})
			m.emit(sb, sc, n)
			// Send a single non-owner token without data.
			if h.Tokens >= 2 || (h.Tokens == 1 && !h.Owner) {
				n := m.stage(sc)
				nh := h
				nh.Tokens--
				if nh.Tokens == 0 {
					nh.HasData = false
					nh.Current = false
				}
				n.Holders[i] = nh
				n.Msgs = append(n.Msgs, tmsg{Tokens: 1, Dst: j})
				m.emit(sb, sc, n)
			}
		}
	}

	// 2. Message delivery merges payload into the destination.
	for k := range s.Msgs {
		n := m.stage(sc)
		msg := n.Msgs[k]
		n.Msgs = append(n.Msgs[:k], n.Msgs[k+1:]...)
		h := n.Holders[msg.Dst]
		h.Tokens += msg.Tokens
		if msg.Owner {
			h.Owner = true
		}
		if msg.HasData {
			h.HasData = true
			h.Current = msg.Current
		}
		n.Holders[msg.Dst] = h
		m.emit(sb, sc, n)
	}

	// 2b. Interconnect loss (Loss mode): any non-owner in-flight message
	// may be destroyed, moving its tokens to the lost count. Owner
	// messages never vanish — in the simulator they ride the
	// ack+retransmit shim, and recreating a destroyed owner token would
	// need an authoritative data copy the protocol cannot name. Losing a
	// non-owner data copy is harmless: it only removes a potential
	// sharer.
	if m.cfg.Loss {
		for k := range s.Msgs {
			if s.Msgs[k].Owner {
				continue
			}
			n := m.stage(sc)
			n.Lost += n.Msgs[k].Tokens
			n.Msgs = append(n.Msgs[:k], n.Msgs[k+1:]...)
			m.emit(sb, sc, n)
		}
		// 2c. Token recreation: the backstop process re-mints every lost
		// token at the memory (the paper's token-recreation mechanism,
		// collapsed to one atomic step). Always enabled while tokens are
		// missing, which is what keeps the lossy model deadlock- and
		// starvation-free: a persistent request stalled on destroyed
		// tokens is eventually satisfiable through memory's forwarding
		// obligation once recreation refills it.
		if s.Lost > 0 {
			n := m.stage(sc)
			n.Holders[m.mem()].Tokens += n.Lost
			n.Lost = 0
			m.emit(sb, sc, n)
		}
	}

	// 3. Processor stores: a cache with all T tokens may write, making
	// its copy the (only) current one.
	for p := 0; p < m.cfg.Caches; p++ {
		if canWrite(s.Holders[p], T) {
			n := m.stage(sc)
			n.Holders[p].Current = true
			m.emit(sb, sc, n)
		}
	}

	if m.cfg.Activate == SafetyOnly {
		return
	}

	// 4. Persistent request issue (one per processor; the distributed
	// marking mechanism gates re-issue until marked entries drain).
	for p := 0; p < m.cfg.Caches; p++ {
		if s.Reqs[p].Valid {
			continue
		}
		if m.cfg.Activate == DistributedAct {
			blockedByMark := false
			for q := range s.Reqs {
				if s.Reqs[q].Valid && s.Reqs[q].Marked {
					blockedByMark = true
				}
			}
			if blockedByMark {
				continue
			}
		}
		for _, write := range []bool{false, true} {
			n := m.stage(sc)
			n.Reqs[p] = preq{Valid: true, Write: write}
			if m.cfg.Activate == ArbiterAct {
				n.ArbQ = append(n.ArbQ, p)
			}
			m.emit(sb, sc, n)
		}
	}

	// 5. Forwarding obligation: while processor a's request is activated,
	// any other holder forwards its tokens — everything for a write;
	// all-but-one (owner with data travels) for a read.
	if a, ok := m.activeReq(s); ok {
		req := s.Reqs[a]
		for i := range s.Holders {
			if i == a || s.Holders[i].Tokens == 0 || len(s.Msgs) >= m.cfg.MaxMsgs {
				continue
			}
			h := s.Holders[i]
			n := m.stage(sc)
			isMem := i == m.mem()
			switch {
			case req.Write || isMem:
				n.Holders[i] = holder{}
				n.Msgs = append(n.Msgs, tmsg{Tokens: h.Tokens, Owner: h.Owner, HasData: h.HasData, Current: h.Current, Dst: a})
			case h.Owner:
				give := h.Tokens - 1
				if give < 1 {
					give = h.Tokens
				}
				nh := h
				nh.Tokens -= give
				nh.Owner = false
				if nh.Tokens == 0 {
					nh.HasData = false
					nh.Current = false
				}
				n.Holders[i] = nh
				n.Msgs = append(n.Msgs, tmsg{Tokens: give, Owner: true, HasData: true, Current: h.Current, Dst: a})
			case h.Tokens >= 2:
				nh := h
				nh.Tokens = 1
				n.Holders[i] = nh
				n.Msgs = append(n.Msgs, tmsg{Tokens: h.Tokens - 1, Dst: a})
			default:
				continue
			}
			m.emit(sb, sc, n)
		}
	}

	// 6. Persistent request completion: the initiator deactivates once it
	// has sufficient tokens. Under distributed activation it marks the
	// remaining entries (the wave mechanism).
	for p := 0; p < m.cfg.Caches; p++ {
		if !s.Reqs[p].Valid {
			continue
		}
		h := s.Holders[p]
		satisfied := (s.Reqs[p].Write && canWrite(h, T)) || (!s.Reqs[p].Write && canRead(h))
		if !satisfied {
			continue
		}
		n := m.stage(sc)
		if n.Reqs[p].Write {
			n.Holders[p].Current = true // the store happens
		}
		n.Reqs[p] = preq{}
		if m.cfg.Activate == DistributedAct {
			for q := range n.Reqs {
				if n.Reqs[q].Valid {
					n.Reqs[q].Marked = true
				}
			}
		} else {
			// Arbiter: remove from the queue (active or not).
			for qi, qp := range n.ArbQ {
				if qp == p {
					n.ArbQ = append(n.ArbQ[:qi], n.ArbQ[qi+1:]...)
					break
				}
			}
		}
		m.emit(sb, sc, n)
	}
}

// Check implements mc.Model: token conservation, one owner, the
// coherence invariant, and the serial view of memory. It reads the
// packed key directly — no decode.
func (m *TokenModel) Check(key string) error {
	tokens, owners, writers := 0, 0, 0
	for i := 0; i <= m.cfg.Caches; i++ {
		tk, fl := int(key[2*i]), key[2*i+1]
		hasData := fl&2 != 0
		tokens += tk
		if fl&1 != 0 { // owner
			owners++
			if !hasData {
				return fmt.Errorf("holder %d has the owner token without data", i)
			}
		}
		if tk == m.cfg.T {
			writers++
		}
		if tk >= 1 && hasData && fl&4 == 0 { // readable but not current
			return fmt.Errorf("holder %d readable with stale data (serial view violated)", i)
		}
	}
	for k := 0; k < int(key[m.offN]); k++ {
		off := m.offM + tmsgW*k
		tokens += int(key[off])
		if key[off+1]&1 != 0 { // owner token in flight
			owners++
			if key[off+1]&2 == 0 {
				return fmt.Errorf("in-flight owner token without data")
			}
		}
	}
	if m.cfg.Loss {
		// Conservation modulo recreation: destroyed tokens are accounted
		// until the recreation process re-mints them at memory.
		tokens += int(key[m.offL])
	}
	if tokens != m.cfg.T {
		return fmt.Errorf("token conservation violated: %d != %d", tokens, m.cfg.T)
	}
	if owners != 1 {
		return fmt.Errorf("owner-token invariant violated: %d owners", owners)
	}
	if writers > 1 {
		return fmt.Errorf("coherence invariant violated: %d writers", writers)
	}
	return nil
}

// Quiescent implements mc.Model: any state may idle (the policy is never
// obligated to act), so deadlock means literally no successors, which the
// delivery transitions prevent; treat all states as quiescent-capable
// only when no messages and no requests are outstanding.
func (m *TokenModel) Quiescent(key string) bool {
	return key[m.offN] == 0 && !m.Pending(key)
}

// Pending implements mc.Model.
func (m *TokenModel) Pending(key string) bool {
	for p := 0; p < m.cfg.Caches; p++ {
		if key[m.offR+p]&1 != 0 {
			return true
		}
	}
	return false
}

// Satisfying implements mc.Model.
func (m *TokenModel) Satisfying(key string) bool { return !m.Pending(key) }
