package mc_test

import (
	"context"
	"testing"

	"tokencmp/internal/mc"
	"tokencmp/internal/mc/models"
)

// TestCheckOptInterrupted asserts a cancelled context aborts the
// exploration with Interrupted set and a partial (strictly smaller)
// state count, and that the starvation field stays undecided.
func TestCheckOptInterrupted(t *testing.T) {
	m := models.NewTokenModel(models.DefaultTokenConfig(models.ArbiterAct))
	full := mc.CheckOpt(m, mc.Options{})
	if !full.OK() || full.Interrupted {
		t.Fatalf("baseline run not clean: %v", full)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := mc.CheckOpt(m, mc.Options{Context: ctx})
	if !res.Interrupted {
		t.Fatalf("pre-cancelled run not marked interrupted: %v", res)
	}
	if res.States >= full.States {
		t.Errorf("interrupted run explored %d states, full run %d — expected a strict prefix", res.States, full.States)
	}
	if res.Starvation != "" {
		t.Errorf("interrupted run decided starvation: %q", res.Starvation)
	}
}

// TestCheckOptLiveContextIdenticalCounts asserts an installed but
// uncancelled context changes nothing: States/Transitions/Diameter all
// match a context-free run, at jobs=1 and jobs=8, with and without
// symmetry reduction.
func TestCheckOptLiveContextIdenticalCounts(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for _, jobs := range []int{1, 8} {
		for _, symmetry := range []bool{false, true} {
			m := models.NewTokenModel(models.DefaultTokenConfig(models.SafetyOnly))
			plain := mc.CheckOpt(m, mc.Options{Jobs: jobs, Symmetry: symmetry})
			live := mc.CheckOpt(m, mc.Options{Jobs: jobs, Symmetry: symmetry, Context: ctx})
			if live.Interrupted {
				t.Fatalf("jobs=%d symmetry=%v: live context reported interruption", jobs, symmetry)
			}
			if plain.States != live.States || plain.Transitions != live.Transitions ||
				plain.Diameter != live.Diameter || plain.FullStates != live.FullStates {
				t.Errorf("jobs=%d symmetry=%v: counts diverged with a live context: %v vs %v",
					jobs, symmetry, plain, live)
			}
		}
	}
}
