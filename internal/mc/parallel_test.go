package mc_test

import (
	"fmt"
	"testing"

	"tokencmp/internal/mc"
	"tokencmp/internal/mc/models"
)

// fieldsOf flattens every Result field except Elapsed, which is the only
// field allowed to vary with the worker count.
func fieldsOf(r *mc.Result) string {
	return fmt.Sprintf("model=%s states=%d transitions=%d diameter=%d violation=%v bad=%q deadlock=%q starvation=%q",
		r.Model, r.States, r.Transitions, r.Diameter, r.Violation, r.BadState, r.Deadlock, r.Starvation)
}

func smallTokenModel() mc.Model {
	cfg := models.DefaultTokenConfig(models.SafetyOnly)
	cfg.T = 2
	return models.NewTokenModel(cfg)
}

// TestCheckJobsDeterministic asserts the parallel checker's Result is
// byte-identical to the serial path for every jobs width, on both model
// families and both with and without a state cap.
func TestCheckJobsDeterministic(t *testing.T) {
	cases := []struct {
		name  string
		build func() mc.Model
		limit int
	}{
		{"token-safety", smallTokenModel, 0},
		{"token-safety-capped", smallTokenModel, 500},
		{"directory", func() mc.Model { return models.NewDirModel(2, 2) }, 0},
		{"token-dst", func() mc.Model {
			cfg := models.DefaultTokenConfig(models.DistributedAct)
			cfg.T = 2
			return models.NewTokenModel(cfg)
		}, 0},
	}
	for _, tc := range cases {
		serial := fieldsOf(mc.CheckJobs(tc.build(), tc.limit, 1))
		for _, jobs := range []int{2, 8} {
			got := fieldsOf(mc.CheckJobs(tc.build(), tc.limit, jobs))
			if got != serial {
				t.Errorf("%s: jobs=%d diverged\nserial:   %s\nparallel: %s", tc.name, jobs, serial, got)
			}
		}
	}
}

// TestCheckLimitExact asserts the state cap is honored exactly: the old
// checker explored limit+1 states and then let the final expansion
// overshoot arbitrarily.
func TestCheckLimitExact(t *testing.T) {
	full := mc.Check(smallTokenModel(), 0)
	if full.States < 60 {
		t.Fatalf("model too small for the test: %d states", full.States)
	}
	for _, jobs := range []int{1, 4} {
		for _, limit := range []int{1, 17, 50} {
			res := mc.CheckJobs(smallTokenModel(), limit, jobs)
			if res.States != limit {
				t.Errorf("jobs=%d limit=%d: explored %d states, want exactly %d", jobs, limit, res.States, limit)
			}
		}
		// A cap beyond the reachable set must not truncate anything.
		res := mc.CheckJobs(smallTokenModel(), full.States+1000, jobs)
		if res.States != full.States || res.Transitions != full.Transitions {
			t.Errorf("jobs=%d: capped run (%d states, %d transitions) != full run (%d, %d)",
				jobs, res.States, res.Transitions, full.States, full.Transitions)
		}
	}
}
