package mc_test

import (
	"testing"

	"tokencmp/internal/mc"
	"tokencmp/internal/mc/models"
)

// TestPackedEquivalence pins the packed-binary encoding to the seed
// string pipeline: the reachable-state counts below were captured from
// the pre-refactor checker (fmt-built string states, decode cache) and
// must be reproduced exactly by the packed models, serially and in
// parallel. States, Transitions, and Diameter are properties of the
// reachable graph, so any encoding bug that merges or splits state
// equivalence classes moves at least one of them.
func TestPackedEquivalence(t *testing.T) {
	cases := []struct {
		name                          string
		build                         func() mc.Model
		states, transitions, diameter int
	}{
		{"TokenCMP-safety-T4", func() mc.Model {
			return models.NewTokenModel(models.DefaultTokenConfig(models.SafetyOnly))
		}, 1020, 6423, 10},
		{"TokenCMP-arb-T3", func() mc.Model {
			cfg := models.DefaultTokenConfig(models.ArbiterAct)
			cfg.T = 3
			return models.NewTokenModel(cfg)
		}, 77736, 630655, 17},
		{"TokenCMP-dst-T3", func() mc.Model {
			cfg := models.DefaultTokenConfig(models.DistributedAct)
			cfg.T = 3
			return models.NewTokenModel(cfg)
		}, 44280, 365063, 17},
		{"DirectoryCMP-flat", func() mc.Model {
			return models.DefaultDirModel()
		}, 4985, 13539, 28},
		{"HammerCMP-flat-2c", func() mc.Model {
			return models.NewHammerModel(2, 5)
		}, 4947, 13508, 36},
	}
	for _, tc := range cases {
		for _, jobs := range []int{1, 8} {
			r := mc.CheckJobs(tc.build(), 0, jobs)
			if !r.OK() {
				t.Errorf("%s jobs=%d: %v", tc.name, jobs, r)
				continue
			}
			if r.States != tc.states || r.Transitions != tc.transitions || r.Diameter != tc.diameter {
				t.Errorf("%s jobs=%d: got states=%d transitions=%d diameter=%d, seed had %d/%d/%d",
					tc.name, jobs, r.States, r.Transitions, r.Diameter,
					tc.states, tc.transitions, tc.diameter)
			}
		}
	}
}

// TestPackedEquivalenceFullScale covers the paper-scale T=4 token
// models and the 3-cache hammer model (the big Section 5 runs), pinned
// to the same pre-refactor counts.
func TestPackedEquivalenceFullScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale equivalence skipped in -short mode")
	}
	cases := []struct {
		name                          string
		build                         func() mc.Model
		states, transitions, diameter int
	}{
		{"TokenCMP-arb-T4", func() mc.Model {
			return models.NewTokenModel(models.DefaultTokenConfig(models.ArbiterAct))
		}, 372880, 3036014, 21},
		{"TokenCMP-dst-T4", func() mc.Model {
			return models.NewTokenModel(models.DefaultTokenConfig(models.DistributedAct))
		}, 212400, 1753337, 22},
		{"HammerCMP-flat-3c", func() mc.Model {
			return models.DefaultHammerModel()
		}, 233339, 913287, 63},
	}
	for _, tc := range cases {
		r := mc.Check(tc.build(), 0)
		if !r.OK() {
			t.Errorf("%s: %v", tc.name, r)
			continue
		}
		if r.States != tc.states || r.Transitions != tc.transitions || r.Diameter != tc.diameter {
			t.Errorf("%s: got states=%d transitions=%d diameter=%d, seed had %d/%d/%d",
				tc.name, r.States, r.Transitions, r.Diameter,
				tc.states, tc.transitions, tc.diameter)
		}
	}
}

// reducedCase pins one symmetry-reduced run: quotient-graph counts
// (canonical representatives, edges, BFS depth over orbits) plus the
// orbit-expanded FullStates, which must reproduce the unreduced state
// count exactly. symmetric is false for the distributed-activation
// model, whose fixed-priority arbitration opts out of reduction — its
// reduced run must be byte-identical to the unreduced one.
type reducedCase struct {
	name                          string
	build                         func() mc.Model
	symmetric                     bool
	states, transitions, diameter int
	fullStates                    int
}

func checkReduced(t *testing.T, tc reducedCase, jobs int) {
	t.Helper()
	r := mc.CheckOpt(tc.build(), mc.Options{Jobs: jobs, Symmetry: true})
	if !r.OK() {
		t.Errorf("%s jobs=%d: %v", tc.name, jobs, r)
		return
	}
	if r.Symmetry != tc.symmetric {
		t.Errorf("%s jobs=%d: symmetry applied=%v, want %v", tc.name, jobs, r.Symmetry, tc.symmetric)
	}
	if r.States != tc.states || r.Transitions != tc.transitions || r.Diameter != tc.diameter || r.FullStates != tc.fullStates {
		t.Errorf("%s jobs=%d: got states=%d transitions=%d diameter=%d full=%d, want %d/%d/%d/%d",
			tc.name, jobs, r.States, r.Transitions, r.Diameter, r.FullStates,
			tc.states, tc.transitions, tc.diameter, tc.fullStates)
	}
}

// TestPackedEquivalenceReduced pins the symmetry-reduced counterparts
// of the TestPackedEquivalence configurations. Every fullStates value
// below equals the corresponding unreduced states pin above: the orbit
// sizes summed over representatives account for the whole reachable
// set, so the reduction dropped no orbit and merged no distinct ones.
func TestPackedEquivalenceReduced(t *testing.T) {
	cases := []reducedCase{
		{"TokenCMP-safety-T4", func() mc.Model {
			return models.NewTokenModel(models.DefaultTokenConfig(models.SafetyOnly))
		}, true, 243, 1518, 10, 1020},
		{"TokenCMP-arb-T3", func() mc.Model {
			cfg := models.DefaultTokenConfig(models.ArbiterAct)
			cfg.T = 3
			return models.NewTokenModel(cfg)
		}, true, 13185, 107530, 17, 77736},
		{"TokenCMP-dst-T3", func() mc.Model {
			cfg := models.DefaultTokenConfig(models.DistributedAct)
			cfg.T = 3
			return models.NewTokenModel(cfg)
		}, false, 44280, 365063, 17, 44280},
		{"DirectoryCMP-flat", func() mc.Model {
			return models.DefaultDirModel()
		}, true, 922, 2531, 28, 4985},
		{"HammerCMP-flat-2c", func() mc.Model {
			return models.NewHammerModel(2, 5)
		}, true, 2476, 6762, 36, 4947},
	}
	for _, tc := range cases {
		for _, jobs := range []int{1, 8} {
			checkReduced(t, tc, jobs)
		}
	}
}

// TestPackedEquivalenceReducedFullScale pins the reduced paper-scale
// and scaled-up runs, including the headline the reduction buys: the
// 4-cache/T=4 arbiter model, whose 6.9M reachable states overflow a
// 6M-state cap unreduced, verified completely via 296k
// representatives.
func TestPackedEquivalenceReducedFullScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale reduced equivalence skipped in -short mode")
	}
	cases := []reducedCase{
		{"TokenCMP-arb-T4", func() mc.Model {
			return models.NewTokenModel(models.DefaultTokenConfig(models.ArbiterAct))
		}, true, 62845, 513678, 21, 372880},
		{"TokenCMP-dst-T4", func() mc.Model {
			return models.NewTokenModel(models.DefaultTokenConfig(models.DistributedAct))
		}, false, 212400, 1753337, 22, 212400},
		{"HammerCMP-flat-3c", func() mc.Model {
			return models.DefaultHammerModel()
		}, true, 40549, 158519, 63, 233339},
		{"DirectoryCMP-4c-4m", func() mc.Model {
			return models.NewDirModel(4, 4)
		}, true, 3438, 11952, 34, 62063},
		{"TokenCMP-arb-4c-T4", func() mc.Model {
			cfg := models.DefaultTokenConfig(models.ArbiterAct)
			cfg.Caches = 4
			return models.NewTokenModel(cfg)
		}, true, 295713, 3110239, 22, 6947175},
	}
	for _, tc := range cases {
		checkReduced(t, tc, 0)
	}
}

// TestSymmetryCrossCheck re-derives the reduced/unreduced agreement
// from scratch (no pinned numbers): on every model family at small
// scale, the reduced checker must reach the same verdict class as the
// unreduced one, and its orbit-expanded state count must equal the
// unreduced reachable-state count exactly.
func TestSymmetryCrossCheck(t *testing.T) {
	cases := []struct {
		name  string
		build func() mc.Model
	}{
		{"token-safety-T2", func() mc.Model {
			cfg := models.DefaultTokenConfig(models.SafetyOnly)
			cfg.T = 2
			return models.NewTokenModel(cfg)
		}},
		{"token-arb-T2", func() mc.Model {
			cfg := models.DefaultTokenConfig(models.ArbiterAct)
			cfg.T = 2
			return models.NewTokenModel(cfg)
		}},
		{"token-dst-T2", func() mc.Model {
			cfg := models.DefaultTokenConfig(models.DistributedAct)
			cfg.T = 2
			return models.NewTokenModel(cfg)
		}},
		{"directory", func() mc.Model { return models.DefaultDirModel() }},
		{"hammer-2c", func() mc.Model { return models.NewHammerModel(2, 5) }},
	}
	for _, tc := range cases {
		full := mc.CheckOpt(tc.build(), mc.Options{})
		red := mc.CheckOpt(tc.build(), mc.Options{Symmetry: true})
		if got, want := verdict(red), verdict(full); got != want {
			t.Errorf("%s: reduced verdict %q != unreduced %q", tc.name, got, want)
		}
		if red.FullStates != full.States {
			t.Errorf("%s: orbit-expanded count %d != unreduced states %d", tc.name, red.FullStates, full.States)
		}
		if red.States > full.States {
			t.Errorf("%s: reduced explored more states (%d) than unreduced (%d)", tc.name, red.States, full.States)
		}
		if full.FullStates != full.States {
			t.Errorf("%s: unreduced run reported FullStates=%d != States=%d", tc.name, full.FullStates, full.States)
		}
	}
}

// verdict classifies a result for cross-checking: reduced and
// unreduced runs must fail (or pass) the same way, though the specific
// witness state may be a different orbit member.
func verdict(r *mc.Result) string {
	switch {
	case r.Violation != nil:
		return "violation"
	case r.Deadlock != "":
		return "deadlock"
	case r.Starvation != "":
		return "starvation"
	}
	return "pass"
}

// TestScaledConfigs pins larger-than-default configurations enabled by
// the packed encoding (the cmd/modelcheck -caches/-tokens/-msgs
// scaling flags): counts captured when the configurations were first
// verified clean. The 4-cache directory needs a 4-message payload
// bound — with the default 3, a GetM against three sharers can never
// fit its invalidations plus data, and the model (correctly) reports
// the resulting throttling deadlock.
func TestScaledConfigs(t *testing.T) {
	if testing.Short() {
		t.Skip("scaled configurations skipped in -short mode")
	}
	cases := []struct {
		name                          string
		build                         func() mc.Model
		states, transitions, diameter int
	}{
		{"DirectoryCMP-4c-4m", func() mc.Model {
			return models.NewDirModel(4, 4)
		}, 62063, 212684, 34},
		{"TokenCMP-dst-4c-T3", func() mc.Model {
			cfg := models.DefaultTokenConfig(models.DistributedAct)
			cfg.Caches = 4
			cfg.T = 3
			return models.NewTokenModel(cfg)
		}, 273325, 2898255, 18},
	}
	for _, tc := range cases {
		r := mc.Check(tc.build(), 0)
		if !r.OK() {
			t.Errorf("%s: %v", tc.name, r)
			continue
		}
		if r.States != tc.states || r.Transitions != tc.transitions || r.Diameter != tc.diameter {
			t.Errorf("%s: got states=%d transitions=%d diameter=%d, want %d/%d/%d",
				tc.name, r.States, r.Transitions, r.Diameter,
				tc.states, tc.transitions, tc.diameter)
		}
	}
}
