package mc_test

import (
	"testing"

	"tokencmp/internal/mc"
	"tokencmp/internal/mc/models"
)

// TestPackedEquivalence pins the packed-binary encoding to the seed
// string pipeline: the reachable-state counts below were captured from
// the pre-refactor checker (fmt-built string states, decode cache) and
// must be reproduced exactly by the packed models, serially and in
// parallel. States, Transitions, and Diameter are properties of the
// reachable graph, so any encoding bug that merges or splits state
// equivalence classes moves at least one of them.
func TestPackedEquivalence(t *testing.T) {
	cases := []struct {
		name                          string
		build                         func() mc.Model
		states, transitions, diameter int
	}{
		{"TokenCMP-safety-T4", func() mc.Model {
			return models.NewTokenModel(models.DefaultTokenConfig(models.SafetyOnly))
		}, 1020, 6423, 10},
		{"TokenCMP-arb-T3", func() mc.Model {
			cfg := models.DefaultTokenConfig(models.ArbiterAct)
			cfg.T = 3
			return models.NewTokenModel(cfg)
		}, 77736, 630655, 17},
		{"TokenCMP-dst-T3", func() mc.Model {
			cfg := models.DefaultTokenConfig(models.DistributedAct)
			cfg.T = 3
			return models.NewTokenModel(cfg)
		}, 44280, 365063, 17},
		{"DirectoryCMP-flat", func() mc.Model {
			return models.DefaultDirModel()
		}, 4985, 13539, 28},
		{"HammerCMP-flat-2c", func() mc.Model {
			return models.NewHammerModel(2, 5)
		}, 4947, 13508, 36},
	}
	for _, tc := range cases {
		for _, jobs := range []int{1, 8} {
			r := mc.CheckJobs(tc.build(), 0, jobs)
			if !r.OK() {
				t.Errorf("%s jobs=%d: %v", tc.name, jobs, r)
				continue
			}
			if r.States != tc.states || r.Transitions != tc.transitions || r.Diameter != tc.diameter {
				t.Errorf("%s jobs=%d: got states=%d transitions=%d diameter=%d, seed had %d/%d/%d",
					tc.name, jobs, r.States, r.Transitions, r.Diameter,
					tc.states, tc.transitions, tc.diameter)
			}
		}
	}
}

// TestPackedEquivalenceFullScale covers the paper-scale T=4 token
// models and the 3-cache hammer model (the big Section 5 runs), pinned
// to the same pre-refactor counts.
func TestPackedEquivalenceFullScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale equivalence skipped in -short mode")
	}
	cases := []struct {
		name                          string
		build                         func() mc.Model
		states, transitions, diameter int
	}{
		{"TokenCMP-arb-T4", func() mc.Model {
			return models.NewTokenModel(models.DefaultTokenConfig(models.ArbiterAct))
		}, 372880, 3036014, 21},
		{"TokenCMP-dst-T4", func() mc.Model {
			return models.NewTokenModel(models.DefaultTokenConfig(models.DistributedAct))
		}, 212400, 1753337, 22},
		{"HammerCMP-flat-3c", func() mc.Model {
			return models.DefaultHammerModel()
		}, 233339, 913287, 63},
	}
	for _, tc := range cases {
		r := mc.Check(tc.build(), 0)
		if !r.OK() {
			t.Errorf("%s: %v", tc.name, r)
			continue
		}
		if r.States != tc.states || r.Transitions != tc.transitions || r.Diameter != tc.diameter {
			t.Errorf("%s: got states=%d transitions=%d diameter=%d, seed had %d/%d/%d",
				tc.name, r.States, r.Transitions, r.Diameter,
				tc.states, tc.transitions, tc.diameter)
		}
	}
}

// TestScaledConfigs pins larger-than-default configurations enabled by
// the packed encoding (the cmd/modelcheck -caches/-tokens/-msgs
// scaling flags): counts captured when the configurations were first
// verified clean. The 4-cache directory needs a 4-message payload
// bound — with the default 3, a GetM against three sharers can never
// fit its invalidations plus data, and the model (correctly) reports
// the resulting throttling deadlock.
func TestScaledConfigs(t *testing.T) {
	if testing.Short() {
		t.Skip("scaled configurations skipped in -short mode")
	}
	cases := []struct {
		name                          string
		build                         func() mc.Model
		states, transitions, diameter int
	}{
		{"DirectoryCMP-4c-4m", func() mc.Model {
			return models.NewDirModel(4, 4)
		}, 62063, 212684, 34},
		{"TokenCMP-dst-4c-T3", func() mc.Model {
			cfg := models.DefaultTokenConfig(models.DistributedAct)
			cfg.Caches = 4
			cfg.T = 3
			return models.NewTokenModel(cfg)
		}, 273325, 2898255, 18},
	}
	for _, tc := range cases {
		r := mc.Check(tc.build(), 0)
		if !r.OK() {
			t.Errorf("%s: %v", tc.name, r)
			continue
		}
		if r.States != tc.states || r.Transitions != tc.transitions || r.Diameter != tc.diameter {
			t.Errorf("%s: got states=%d transitions=%d diameter=%d, want %d/%d/%d",
				tc.name, r.States, r.Transitions, r.Diameter,
				tc.states, tc.transitions, tc.diameter)
		}
	}
}
