// Package machine assembles complete simulated M-CMP systems — any of
// the TokenCMP variants, DirectoryCMP (with DRAM or zero-cycle
// directory), HammerCMP (broadcast snooping), or PerfectL2 — drives
// them with workload programs, and
// monitors correctness while they run: a sequential-consistency checker
// on every completed memory operation plus, for token protocols, the
// substrate's token-conservation audit.
package machine

import (
	"context"
	"fmt"

	"tokencmp/internal/counters"
	"tokencmp/internal/cpu"
	"tokencmp/internal/directory"
	"tokencmp/internal/hammercmp"
	"tokencmp/internal/mem"
	"tokencmp/internal/network"
	"tokencmp/internal/perfectl2"
	"tokencmp/internal/sim"
	"tokencmp/internal/stats"
	"tokencmp/internal/tokencmp"
	"tokencmp/internal/topo"
)

// Protocol is the least common denominator of the three system types.
type Protocol interface {
	Ports(globalProc int) (data, inst cpu.MemPort)
	Name() string
	Misses() uint64
}

// tokenAuditor is implemented by token-coherence systems.
type tokenAuditor interface {
	TokenAudit() error
	PersistentRequests() uint64
}

// counterSource is implemented by every system that carries the uniform
// event-counter registry (all four protocol stacks do).
type counterSource interface {
	Counters() *counters.Set
}

// Config selects and parameterizes a machine.
type Config struct {
	Protocol string // a tokencmp variant name, "DirectoryCMP", "DirectoryCMP-zero", "HammerCMP", or "PerfectL2"
	Geom     topo.Geometry
	Seed     int64

	// CheckConsistency wraps every port with the serial-view monitor.
	CheckConsistency bool
	// AuditTokens runs the conservation audit at the end of Run (token
	// protocols only).
	AuditTokens bool

	// Faults configures the network's seeded fault injector (zero value:
	// reliable network, byte-identical to pre-fault builds). What the
	// injector may actually do is still class-gated by the protocol: only
	// stacks with recovery machinery opt traffic in (see
	// network.FaultClass), so drop/dup/reorder are honest no-ops on
	// DirectoryCMP and HammerCMP while jitter applies everywhere.
	Faults network.FaultConfig

	// Optional structural overrides (zero means Table 3 default).
	L1Size, L2BankSize int
}

// Protocols lists every protocol name this package can build, in the
// paper's reporting order.
func Protocols() []string {
	names := []string{"DirectoryCMP", "DirectoryCMP-zero", "HammerCMP"}
	for _, v := range tokencmp.Variants() {
		names = append(names, v.Name)
	}
	return append(names, "PerfectL2")
}

// Machine is a built system plus its processors and monitors.
type Machine struct {
	Eng   *sim.Engine
	Cfg   Config
	Proto Protocol
	Procs []*cpu.Processor

	net *network.Network // nil for PerfectL2

	// Consistency-monitor state.
	expected   map[mem.Block]uint64
	Violations []string
}

// New builds a machine for cfg.
func New(cfg Config) (*Machine, error) {
	eng := sim.NewEngine()
	m := &Machine{Eng: eng, Cfg: cfg, expected: make(map[mem.Block]uint64)}

	netCfg := network.Default()
	netCfg.Faults = cfg.Faults

	switch cfg.Protocol {
	case "DirectoryCMP", "DirectoryCMP-zero":
		dcfg := directory.DefaultConfig(cfg.Geom)
		if cfg.Protocol == "DirectoryCMP-zero" {
			dcfg = directory.ZeroDirConfig(cfg.Geom)
		}
		if cfg.L1Size > 0 {
			dcfg.L1Size = cfg.L1Size
		}
		if cfg.L2BankSize > 0 {
			dcfg.L2BankSize = cfg.L2BankSize
		}
		sys := directory.NewSystem(eng, dcfg, netCfg)
		m.Proto = sys
		m.net = sys.Net
	case "HammerCMP":
		hcfg := hammercmp.DefaultConfig(cfg.Geom)
		if cfg.L1Size > 0 {
			hcfg.L1Size = cfg.L1Size
		}
		if cfg.L2BankSize > 0 {
			hcfg.L2BankSize = cfg.L2BankSize
		}
		sys := hammercmp.NewSystem(eng, hcfg, netCfg)
		m.Proto = sys
		m.net = sys.Net
	case "PerfectL2":
		sys := perfectl2.NewSystem(eng, perfectl2.DefaultConfig(cfg.Geom))
		m.Proto = sys
	default:
		v, err := tokencmp.VariantByName(cfg.Protocol)
		if err != nil {
			return nil, err
		}
		tcfg := tokencmp.DefaultConfig(cfg.Geom, v)
		tcfg.Seed = cfg.Seed
		if cfg.L1Size > 0 {
			tcfg.L1Size = cfg.L1Size
		}
		if cfg.L2BankSize > 0 {
			tcfg.L2BankSize = cfg.L2BankSize
		}
		sys := tokencmp.NewSystem(eng, tcfg, netCfg)
		m.Proto = sys
		m.net = sys.Net
	}
	return m, nil
}

// Traffic returns interconnect traffic counters (empty for PerfectL2).
func (m *Machine) Traffic() stats.Traffic {
	if m.net == nil {
		return stats.Traffic{}
	}
	return m.net.Traffic
}

// Counters returns the machine-wide uniform event-counter snapshot
// (nil if the protocol carries no registry).
func (m *Machine) Counters() map[string]uint64 {
	if cs, ok := m.Proto.(counterSource); ok {
		return cs.Counters().Snapshot()
	}
	return nil
}

// PersistentRequests reports substrate persistent requests (0 for
// non-token protocols).
func (m *Machine) PersistentRequests() uint64 {
	if a, ok := m.Proto.(tokenAuditor); ok {
		return a.PersistentRequests()
	}
	return 0
}

// port wraps a cpu.MemPort with the serial-view monitor: every load must
// return the value of the most recent completed store to its block, and
// every atomic must observe the value it displaces.
type port struct {
	m     *Machine
	inner cpu.MemPort
	proc  int
}

func (p *port) Access(kind cpu.AccessKind, addr mem.Addr, store uint64, done func(uint64)) {
	b := mem.BlockOf(addr)
	p.inner.Access(kind, addr, store, func(v uint64) {
		switch kind {
		case cpu.Load, cpu.IFetch:
			if want := p.m.expected[b]; v != want {
				p.m.violate("proc %d load %v = %d, want %d", p.proc, b, v, want)
			}
		case cpu.Store:
			p.m.expected[b] = store
		case cpu.Atomic:
			if want := p.m.expected[b]; v != want {
				p.m.violate("proc %d swap %v observed %d, want %d", p.proc, b, v, want)
			}
			p.m.expected[b] = store
		}
		done(v)
	})
}

func (m *Machine) violate(format string, args ...interface{}) {
	if len(m.Violations) < 32 {
		m.Violations = append(m.Violations, fmt.Sprintf(format, args...))
	}
}

// Result summarizes a run.
type Result struct {
	Runtime    sim.Time
	Traffic    stats.Traffic
	Misses     uint64
	Persistent uint64
	Events     uint64
	// Counters is the uniform event-counter snapshot at the end of the
	// run (nil for protocols without a registry).
	Counters map[string]uint64
}

// Run executes one program per processor to completion and returns the
// runtime (the finish time of the last processor). limit bounds engine
// events (0 = 4 billion).
func (m *Machine) Run(progs []cpu.Program, limit uint64) (Result, error) {
	return m.RunCtx(context.Background(), progs, limit)
}

// RunCtx is Run with end-to-end cancellation: the context is installed
// on the simulation engine, which polls it once every
// sim.CancelCheckEvery events, so a timed-out or abandoned run stops
// burning its core within that bound. A cancelled run returns a partial
// Result (events fired, simulated time reached, counters so far) and an
// error wrapping ctx.Err(), so callers can match it with errors.Is.
// With an uncancelled context the event sequence — and therefore every
// figure — is byte-identical to Run.
func (m *Machine) RunCtx(ctx context.Context, progs []cpu.Program, limit uint64) (Result, error) {
	g := m.Cfg.Geom
	if len(progs) != g.TotalProcs() {
		return Result{}, fmt.Errorf("machine: %d programs for %d processors", len(progs), g.TotalProcs())
	}
	if limit == 0 {
		limit = 4_000_000_000
	}
	m.Procs = make([]*cpu.Processor, len(progs))
	for i, prog := range progs {
		data, inst := m.Proto.Ports(i)
		if m.Cfg.CheckConsistency {
			data = &port{m: m, inner: data, proc: i}
			inst = &port{m: m, inner: inst, proc: i}
		}
		m.Procs[i] = &cpu.Processor{ID: i, Eng: m.Eng, Data: data, Inst: inst, Prog: prog}
		m.Procs[i].Start()
	}
	allDone := func() bool {
		for _, p := range m.Procs {
			if !p.Finished() {
				return false
			}
		}
		return true
	}
	m.Eng.SetContext(ctx)
	ok := m.Eng.RunUntil(allDone, limit)
	res := Result{Runtime: m.Eng.Now(), Traffic: m.Traffic(), Misses: m.Proto.Misses(),
		Persistent: m.PersistentRequests(), Events: m.Eng.Executed, Counters: m.Counters()}
	if cerr := m.Eng.Err(); cerr != nil {
		return res, fmt.Errorf("machine: %s interrupted after %d events at %v: %w",
			m.Proto.Name(), m.Eng.Executed, m.Eng.Now(), cerr)
	}
	if !ok {
		return res, fmt.Errorf("machine: %s did not finish (events=%d, pending=%d, now=%v)",
			m.Proto.Name(), m.Eng.Executed, m.Eng.Pending(), m.Eng.Now())
	}
	if len(m.Violations) > 0 {
		return res, fmt.Errorf("machine: %s consistency violations: %v", m.Proto.Name(), m.Violations[0])
	}
	if m.Cfg.AuditTokens {
		if a, okA := m.Proto.(tokenAuditor); okA {
			if err := a.TokenAudit(); err != nil {
				return res, fmt.Errorf("machine: %s: %w", m.Proto.Name(), err)
			}
		}
	}
	return res, nil
}
