package machine

import (
	"testing"

	"tokencmp/internal/sim"
	"tokencmp/internal/topo"
	"tokencmp/internal/workload"
)

// smallGeom is a 2-CMP × 2-proc machine for fast integration tests.
func smallGeom() topo.Geometry { return topo.NewGeometry(2, 2, 1) }

func smallCfg(proto string) Config {
	return Config{
		Protocol:         proto,
		Geom:             smallGeom(),
		Seed:             1,
		CheckConsistency: true,
		AuditTokens:      true,
		L1Size:           8 << 10,
		L2BankSize:       64 << 10,
	}
}

func TestLockingAllProtocols(t *testing.T) {
	for _, proto := range Protocols() {
		proto := proto
		t.Run(proto, func(t *testing.T) {
			m, err := New(smallCfg(proto))
			if err != nil {
				t.Fatal(err)
			}
			lc := workload.DefaultLocking(4)
			lc.Acquires = 12
			progs, mon := workload.LockingPrograms(lc, m.Cfg.Geom.TotalProcs(), 1)
			res, err := m.Run(progs, 30_000_000)
			if err != nil {
				t.Fatal(err)
			}
			if len(mon.Violations) > 0 {
				t.Fatalf("mutual exclusion violated: %v", mon.Violations[0])
			}
			if got, want := mon.Acquires, uint64(4*12); got != want {
				t.Errorf("acquires = %d, want %d", got, want)
			}
			if res.Runtime <= 0 {
				t.Error("runtime not positive")
			}
		})
	}
}

func TestBarrierAllProtocols(t *testing.T) {
	for _, proto := range Protocols() {
		proto := proto
		t.Run(proto, func(t *testing.T) {
			m, err := New(smallCfg(proto))
			if err != nil {
				t.Fatal(err)
			}
			bc := workload.DefaultBarrier(m.Cfg.Geom.TotalProcs(), sim.NS(500))
			bc.Iterations = 5
			progs, mon := workload.BarrierPrograms(bc, 1)
			if _, err := m.Run(progs, 30_000_000); err != nil {
				t.Fatal(err)
			}
			if len(mon.Violations) > 0 {
				t.Fatalf("mutual exclusion violated: %v", mon.Violations[0])
			}
		})
	}
}

func TestCommercialAllProtocols(t *testing.T) {
	params := workload.OLTP()
	params.TxnsPerProc = 4
	for _, proto := range Protocols() {
		proto := proto
		t.Run(proto, func(t *testing.T) {
			m, err := New(smallCfg(proto))
			if err != nil {
				t.Fatal(err)
			}
			progs, mon := workload.CommercialPrograms(params, m.Cfg.Geom.TotalProcs(), 1)
			if _, err := m.Run(progs, 60_000_000); err != nil {
				t.Fatal(err)
			}
			if len(mon.Violations) > 0 {
				t.Fatalf("mutual exclusion violated: %v", mon.Violations[0])
			}
		})
	}
}

func TestDeterminism(t *testing.T) {
	runOnce := func() sim.Time {
		m, err := New(smallCfg("TokenCMP-dst1"))
		if err != nil {
			t.Fatal(err)
		}
		lc := workload.DefaultLocking(8)
		lc.Acquires = 10
		progs, _ := workload.LockingPrograms(lc, m.Cfg.Geom.TotalProcs(), 42)
		res, err := m.Run(progs, 30_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return res.Runtime
	}
	a, b := runOnce(), runOnce()
	if a != b {
		t.Errorf("non-deterministic runtimes: %v vs %v", a, b)
	}
}

func TestSeedPerturbsRuns(t *testing.T) {
	runSeed := func(seed int64) sim.Time {
		m, err := New(smallCfg("DirectoryCMP"))
		if err != nil {
			t.Fatal(err)
		}
		lc := workload.DefaultLocking(4)
		lc.Acquires = 10
		progs, _ := workload.LockingPrograms(lc, m.Cfg.Geom.TotalProcs(), seed)
		res, err := m.Run(progs, 30_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return res.Runtime
	}
	if runSeed(1) == runSeed(2) {
		t.Log("warning: different seeds produced identical runtimes (possible but unlikely)")
	}
}
