package machine

import (
	"context"
	"errors"
	"strings"
	"testing"

	"tokencmp/internal/counters"
	"tokencmp/internal/network"
	"tokencmp/internal/sim"
	"tokencmp/internal/topo"
	"tokencmp/internal/workload"
)

// smallGeom is a 2-CMP × 2-proc machine for fast integration tests.
func smallGeom() topo.Geometry { return topo.NewGeometry(2, 2, 1) }

func smallCfg(proto string) Config {
	return Config{
		Protocol:         proto,
		Geom:             smallGeom(),
		Seed:             1,
		CheckConsistency: true,
		AuditTokens:      true,
		L1Size:           8 << 10,
		L2BankSize:       64 << 10,
	}
}

func TestLockingAllProtocols(t *testing.T) {
	for _, proto := range Protocols() {
		proto := proto
		t.Run(proto, func(t *testing.T) {
			m, err := New(smallCfg(proto))
			if err != nil {
				t.Fatal(err)
			}
			lc := workload.DefaultLocking(4)
			lc.Acquires = 12
			progs, mon := workload.LockingPrograms(lc, m.Cfg.Geom.TotalProcs(), 1)
			res, err := m.Run(progs, 30_000_000)
			if err != nil {
				t.Fatal(err)
			}
			if len(mon.Violations) > 0 {
				t.Fatalf("mutual exclusion violated: %v", mon.Violations[0])
			}
			if got, want := mon.Acquires, uint64(4*12); got != want {
				t.Errorf("acquires = %d, want %d", got, want)
			}
			if res.Runtime <= 0 {
				t.Error("runtime not positive")
			}
		})
	}
}

func TestBarrierAllProtocols(t *testing.T) {
	for _, proto := range Protocols() {
		proto := proto
		t.Run(proto, func(t *testing.T) {
			m, err := New(smallCfg(proto))
			if err != nil {
				t.Fatal(err)
			}
			bc := workload.DefaultBarrier(m.Cfg.Geom.TotalProcs(), sim.NS(500))
			bc.Iterations = 5
			progs, mon := workload.BarrierPrograms(bc, 1)
			if _, err := m.Run(progs, 30_000_000); err != nil {
				t.Fatal(err)
			}
			if len(mon.Violations) > 0 {
				t.Fatalf("mutual exclusion violated: %v", mon.Violations[0])
			}
		})
	}
}

func TestCommercialAllProtocols(t *testing.T) {
	params := workload.OLTP()
	params.TxnsPerProc = 4
	for _, proto := range Protocols() {
		proto := proto
		t.Run(proto, func(t *testing.T) {
			m, err := New(smallCfg(proto))
			if err != nil {
				t.Fatal(err)
			}
			progs, mon := workload.CommercialPrograms(params, m.Cfg.Geom.TotalProcs(), 1)
			if _, err := m.Run(progs, 60_000_000); err != nil {
				t.Fatal(err)
			}
			if len(mon.Violations) > 0 {
				t.Fatalf("mutual exclusion violated: %v", mon.Violations[0])
			}
		})
	}
}

// TestFaultSoakAllProtocols is the seeded fault matrix CI soaks under
// -race: every protocol family must complete the locking benchmark with
// the coherence monitors and token audit on while the interconnect
// drops, duplicates, reorders, and delays messages. Drop/dup/reorder
// are class-gated — the token protocols classify their transient
// requests as droppable, so net.dropped must actually fire there,
// while the directory and hammer systems (no Classify hook) treat
// every message as protected and the same knobs are honest no-ops.
func TestFaultSoakAllProtocols(t *testing.T) {
	protos := []string{"DirectoryCMP", "HammerCMP", "TokenCMP-arb0", "TokenCMP-dst1"}
	faultCases := []struct {
		name               string
		drop, dup, reorder float64
		jitter             sim.Time
	}{
		{name: "drop20", drop: 0.20},
		{name: "dup10+reorder10", dup: 0.10, reorder: 0.10},
		{name: "jitter30ns", jitter: sim.NS(30)},
		{name: "storm", drop: 0.20, dup: 0.10, reorder: 0.10, jitter: sim.NS(30)},
	}
	for _, proto := range protos {
		for _, fc := range faultCases {
			proto, fc := proto, fc
			t.Run(proto+"/"+fc.name, func(t *testing.T) {
				for seed := int64(1); seed <= 2; seed++ {
					cfg := smallCfg(proto)
					cfg.Seed = seed
					cfg.Faults = network.UniformFaults(seed, fc.drop, fc.dup, fc.reorder, fc.jitter)
					m, err := New(cfg)
					if err != nil {
						t.Fatal(err)
					}
					lc := workload.DefaultLocking(4)
					lc.Acquires = 8
					progs, mon := workload.LockingPrograms(lc, m.Cfg.Geom.TotalProcs(), seed)
					res, err := m.Run(progs, 60_000_000)
					if err != nil {
						t.Fatalf("seed %d: %v", seed, err)
					}
					if len(mon.Violations) > 0 {
						t.Fatalf("seed %d: mutual exclusion violated: %v", seed, mon.Violations[0])
					}
					if got, want := mon.Acquires, uint64(4*8); got != want {
						t.Errorf("seed %d: acquires = %d, want %d", seed, got, want)
					}
					dropped := res.Counters[counters.NetDropped]
					token := strings.HasPrefix(proto, "TokenCMP")
					if token && fc.drop > 0 && dropped == 0 {
						t.Errorf("seed %d: drop=%.2f but no messages dropped", seed, fc.drop)
					}
					if !token && dropped != 0 {
						t.Errorf("seed %d: %d drops on a protocol with no droppable class", seed, dropped)
					}
				}
			})
		}
	}
}

func TestDeterminism(t *testing.T) {
	runOnce := func() sim.Time {
		m, err := New(smallCfg("TokenCMP-dst1"))
		if err != nil {
			t.Fatal(err)
		}
		lc := workload.DefaultLocking(8)
		lc.Acquires = 10
		progs, _ := workload.LockingPrograms(lc, m.Cfg.Geom.TotalProcs(), 42)
		res, err := m.Run(progs, 30_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return res.Runtime
	}
	a, b := runOnce(), runOnce()
	if a != b {
		t.Errorf("non-deterministic runtimes: %v vs %v", a, b)
	}
}

func TestSeedPerturbsRuns(t *testing.T) {
	runSeed := func(seed int64) sim.Time {
		m, err := New(smallCfg("DirectoryCMP"))
		if err != nil {
			t.Fatal(err)
		}
		lc := workload.DefaultLocking(4)
		lc.Acquires = 10
		progs, _ := workload.LockingPrograms(lc, m.Cfg.Geom.TotalProcs(), seed)
		res, err := m.Run(progs, 30_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return res.Runtime
	}
	if runSeed(1) == runSeed(2) {
		t.Log("warning: different seeds produced identical runtimes (possible but unlikely)")
	}
}

// TestRunCtxCancellationBound asserts a cancelled machine run stops
// within the engine's documented event bound, returns an error matching
// errors.Is(err, context.Canceled), and reports partial progress.
func TestRunCtxCancellationBound(t *testing.T) {
	m, err := New(smallCfg("TokenCMP-dst1"))
	if err != nil {
		t.Fatal(err)
	}
	lc := workload.DefaultLocking(4)
	lc.Acquires = 1 << 20 // far more work than the cancellation allows
	progs, _ := workload.LockingPrograms(lc, smallGeom().TotalProcs(), 1)
	ctx, cancel := context.WithCancel(context.Background())
	const cancelAfter = 5000
	// Cancel from inside the simulation once it is clearly in flight.
	m.Eng.Schedule(0, func() {
		var tick func()
		tick = func() {
			if m.Eng.Executed >= cancelAfter {
				cancel()
				return
			}
			m.Eng.Schedule(sim.NS(10), tick)
		}
		tick()
	})
	res, err := m.RunCtx(ctx, progs, 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Events == 0 {
		t.Error("partial result carries no progress")
	}
	if res.Events > cancelAfter+2*sim.CancelCheckEvery {
		t.Errorf("run fired %d events, want <= cancel point %d + bound %d",
			res.Events, cancelAfter, sim.CancelCheckEvery)
	}
}

// TestRunCtxBackgroundIdentical asserts RunCtx with a live (but never
// cancelled) context produces the exact result Run does.
func TestRunCtxBackgroundIdentical(t *testing.T) {
	runOnce := func(ctx context.Context) Result {
		m, err := New(smallCfg("DirectoryCMP"))
		if err != nil {
			t.Fatal(err)
		}
		lc := workload.DefaultLocking(4)
		lc.Acquires = 8
		progs, _ := workload.LockingPrograms(lc, smallGeom().TotalProcs(), 1)
		var res Result
		if ctx == nil {
			res, err = m.Run(progs, 0)
		} else {
			res, err = m.RunCtx(ctx, progs, 0)
		}
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := runOnce(nil)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	live := runOnce(ctx)
	if plain.Runtime != live.Runtime || plain.Events != live.Events || plain.Misses != live.Misses {
		t.Errorf("live-context run diverged: %+v vs %+v", plain, live)
	}
}
