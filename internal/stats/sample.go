package stats

import (
	"fmt"
	"math"
)

// Sample accumulates scalar observations (e.g. runtimes from perturbed
// runs) and reports mean and 95% confidence half-interval.
type Sample struct {
	xs []float64
}

// Add appends an observation.
func (s *Sample) Add(x float64) { s.xs = append(s.xs, x) }

// N reports the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Mean reports the arithmetic mean (0 for an empty sample).
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// StdDev reports the sample standard deviation (0 for fewer than two
// observations).
func (s *Sample) StdDev() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	var ss float64
	for _, x := range s.xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// CI95 reports the 95% confidence half-interval of the mean, using the
// normal approximation with small-sample t multipliers for n <= 30.
func (s *Sample) CI95() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	return tMultiplier(n-1) * s.StdDev() / math.Sqrt(float64(n))
}

// tMultiplier approximates the two-sided 95% Student-t critical value for
// the given degrees of freedom.
func tMultiplier(df int) float64 {
	table := map[int]float64{
		1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
		6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
		15: 2.131, 20: 2.086, 25: 2.060, 30: 2.042,
	}
	if v, ok := table[df]; ok {
		return v
	}
	switch {
	case df < 15:
		return table[10]
	case df < 20:
		return table[15]
	case df < 25:
		return table[20]
	case df < 30:
		return table[25]
	default:
		return 1.96
	}
}

// String formats the sample as "mean ± ci".
func (s *Sample) String() string {
	return fmt.Sprintf("%.4g ± %.2g", s.Mean(), s.CI95())
}

// Overlaps reports whether the 95% confidence intervals of s and other
// overlap; per the paper, differences are significant when they do not.
func (s *Sample) Overlaps(other *Sample) bool {
	loA, hiA := s.Mean()-s.CI95(), s.Mean()+s.CI95()
	loB, hiB := other.Mean()-other.CI95(), other.Mean()+other.CI95()
	return loA <= hiB && loB <= hiA
}
