package stats

import (
	"fmt"
	"math"
)

// Sample accumulates scalar observations (e.g. runtimes from perturbed
// runs) and reports mean and 95% confidence half-interval. It streams:
// Welford's algorithm keeps the running mean and the sum of squared
// deviations, so a sample costs three float64 words regardless of how
// many observations it has seen — nothing retains the observations.
// (The running sum is kept alongside so Mean stays bit-identical to
// the retained-slice implementation it replaced.)
type Sample struct {
	n    int
	sum  float64
	mean float64 // Welford running mean
	m2   float64 // sum of squared deviations from the running mean
}

// Add folds in an observation.
func (s *Sample) Add(x float64) {
	s.n++
	s.sum += x
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N reports the number of observations.
func (s *Sample) N() int { return s.n }

// Mean reports the arithmetic mean (0 for an empty sample).
func (s *Sample) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// StdDev reports the sample standard deviation (0 for fewer than two
// observations).
func (s *Sample) StdDev() float64 {
	if s.n < 2 {
		return 0
	}
	return math.Sqrt(s.m2 / float64(s.n-1))
}

// CI95 reports the 95% confidence half-interval of the mean, using the
// normal approximation with small-sample t multipliers for n <= 30.
func (s *Sample) CI95() float64 {
	if s.n < 2 {
		return 0
	}
	return tMultiplier(s.n-1) * s.StdDev() / math.Sqrt(float64(s.n))
}

// Interval95 reports the 95% confidence interval [lo, hi] around the
// mean — the form claim assertions bound.
func (s *Sample) Interval95() (lo, hi float64) {
	ci := s.CI95()
	return s.Mean() - ci, s.Mean() + ci
}

// tMultiplier approximates the two-sided 95% Student-t critical value for
// the given degrees of freedom.
func tMultiplier(df int) float64 {
	table := map[int]float64{
		1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
		6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
		15: 2.131, 20: 2.086, 25: 2.060, 30: 2.042,
	}
	if v, ok := table[df]; ok {
		return v
	}
	switch {
	case df < 15:
		return table[10]
	case df < 20:
		return table[15]
	case df < 25:
		return table[20]
	case df < 30:
		return table[25]
	default:
		return 1.96
	}
}

// String formats the sample as "mean ± ci".
func (s *Sample) String() string {
	return fmt.Sprintf("%.4g ± %.2g", s.Mean(), s.CI95())
}

// Overlaps reports whether the 95% confidence intervals of s and other
// overlap; per the paper, differences are significant when they do not.
func (s *Sample) Overlaps(other *Sample) bool {
	loA, hiA := s.Mean()-s.CI95(), s.Mean()+s.CI95()
	loB, hiB := other.Mean()-other.CI95(), other.Mean()+other.CI95()
	return loA <= hiB && loB <= hiA
}
