// Package stats accumulates the measurements the paper reports: runtimes
// with pseudo-random perturbation and 95% confidence intervals
// (Alameldeen & Wood methodology, Section 6) and interconnect traffic
// broken down by message class and by network level (Figure 7).
package stats

import "fmt"

// TrafficClass is the Figure 7 message-type breakdown.
type TrafficClass int

// Traffic classes, in the paper's legend order.
const (
	ResponseData TrafficClass = iota
	WritebackData
	WritebackControl
	Request
	InvFwdAckTokens
	Unblock
	Persistent
	NumTrafficClasses
)

var trafficClassNames = [NumTrafficClasses]string{
	"ResponseData",
	"WritebackData",
	"WritebackControl",
	"Request",
	"Inv/Fwd/Acks/Tokens",
	"Unblock",
	"Persistent",
}

func (c TrafficClass) String() string {
	if c < 0 || c >= NumTrafficClasses {
		return fmt.Sprintf("TrafficClass(%d)", int(c))
	}
	return trafficClassNames[c]
}

// Level distinguishes the two interconnect levels of the M-CMP system.
type Level int

// Network levels.
const (
	IntraCMP Level = iota // on-chip
	InterCMP              // between chips
	NumLevels
)

func (l Level) String() string {
	if l == IntraCMP {
		return "intra-CMP"
	}
	return "inter-CMP"
}

// Traffic counts bytes and messages per (level, class).
type Traffic struct {
	Bytes    [NumLevels][NumTrafficClasses]uint64
	Messages [NumLevels][NumTrafficClasses]uint64
}

// Add records one message of size bytes.
func (t *Traffic) Add(level Level, class TrafficClass, size int) {
	t.Bytes[level][class] += uint64(size)
	t.Messages[level][class]++
}

// TotalBytes sums bytes at a level across all classes.
func (t *Traffic) TotalBytes(level Level) uint64 {
	var sum uint64
	for c := TrafficClass(0); c < NumTrafficClasses; c++ {
		sum += t.Bytes[level][c]
	}
	return sum
}

// TotalMessages sums message counts at a level.
func (t *Traffic) TotalMessages(level Level) uint64 {
	var sum uint64
	for c := TrafficClass(0); c < NumTrafficClasses; c++ {
		sum += t.Messages[level][c]
	}
	return sum
}

// Merge adds other's counts into t.
func (t *Traffic) Merge(other *Traffic) {
	for l := Level(0); l < NumLevels; l++ {
		for c := TrafficClass(0); c < NumTrafficClasses; c++ {
			t.Bytes[l][c] += other.Bytes[l][c]
			t.Messages[l][c] += other.Messages[l][c]
		}
	}
}
