package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSampleMeanCI(t *testing.T) {
	var s Sample
	for _, x := range []float64{10, 12, 14} {
		s.Add(x)
	}
	if s.Mean() != 12 {
		t.Errorf("mean = %v, want 12", s.Mean())
	}
	if s.StdDev() != 2 {
		t.Errorf("stddev = %v, want 2", s.StdDev())
	}
	// CI95 with n=3, df=2: 4.303 * 2 / sqrt(3).
	want := 4.303 * 2 / math.Sqrt(3)
	if math.Abs(s.CI95()-want) > 1e-9 {
		t.Errorf("ci = %v, want %v", s.CI95(), want)
	}
}

func TestSampleDegenerate(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.CI95() != 0 || s.StdDev() != 0 {
		t.Error("empty sample not zero")
	}
	s.Add(5)
	if s.Mean() != 5 || s.CI95() != 0 {
		t.Error("single-observation sample wrong")
	}
}

func TestOverlaps(t *testing.T) {
	var a, b Sample
	for _, x := range []float64{10, 11, 12} {
		a.Add(x)
	}
	for _, x := range []float64{100, 101, 102} {
		b.Add(x)
	}
	if a.Overlaps(&b) {
		t.Error("distant samples should not overlap")
	}
	var c Sample
	for _, x := range []float64{9, 12, 15} {
		c.Add(x)
	}
	if !a.Overlaps(&c) {
		t.Error("close samples should overlap")
	}
}

// Property: the mean lies within [min, max] of the observations.
func TestPropertyMeanBounded(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) == 0 {
			return true
		}
		var s Sample
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
			// Scale into a range whose sum cannot overflow.
			x = math.Mod(x, 1e12)
			s.Add(x)
			lo, hi = math.Min(lo, x), math.Max(hi, x)
		}
		m := s.Mean()
		eps := 1e-6 * (math.Abs(lo) + math.Abs(hi) + 1)
		return m >= lo-eps && m <= hi+eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTrafficAccumulates(t *testing.T) {
	var tr Traffic
	tr.Add(IntraCMP, Request, 8)
	tr.Add(IntraCMP, Request, 8)
	tr.Add(InterCMP, ResponseData, 72)
	if tr.TotalBytes(IntraCMP) != 16 || tr.TotalMessages(IntraCMP) != 2 {
		t.Error("intra accumulation wrong")
	}
	if tr.TotalBytes(InterCMP) != 72 {
		t.Error("inter accumulation wrong")
	}
	var other Traffic
	other.Add(InterCMP, ResponseData, 72)
	tr.Merge(&other)
	if tr.TotalBytes(InterCMP) != 144 {
		t.Error("merge wrong")
	}
}

func TestTrafficClassNames(t *testing.T) {
	for c := TrafficClass(0); c < NumTrafficClasses; c++ {
		if c.String() == "" {
			t.Errorf("class %d has no name", c)
		}
	}
	if IntraCMP.String() != "intra-CMP" || InterCMP.String() != "inter-CMP" {
		t.Error("level names wrong")
	}
}

// Property: the streaming Welford accumulator agrees with a two-pass
// reference computation over the retained observations.
func TestPropertyWelfordMatchesTwoPass(t *testing.T) {
	f := func(xs []float64) bool {
		var s Sample
		kept := make([]float64, 0, len(xs))
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			x = math.Mod(x, 1e9)
			s.Add(x)
			kept = append(kept, x)
		}
		if len(kept) < 2 {
			return s.StdDev() == 0
		}
		var sum float64
		for _, x := range kept {
			sum += x
		}
		mean := sum / float64(len(kept))
		var ss float64
		for _, x := range kept {
			d := x - mean
			ss += d * d
		}
		ref := math.Sqrt(ss / float64(len(kept)-1))
		scale := ref + math.Abs(mean) + 1
		return math.Abs(s.Mean()-mean) <= 1e-9*scale && math.Abs(s.StdDev()-ref) <= 1e-6*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
