// Package topo names the coherence endpoints of an M-CMP system and
// provides the geometry arithmetic every protocol needs: which caches sit
// in which CMP, which L2 bank serves a block, and where a block's home
// memory controller lives.
//
// Endpoints are the units that hold tokens and protocol state: L1 data
// caches, L1 instruction caches, L2 banks, and memory controllers.
// Processors are not endpoints; they talk to their L1s directly.
package topo

import (
	"fmt"

	"tokencmp/internal/mem"
)

// NodeID identifies one coherence endpoint in the system.
type NodeID int

// None is the invalid NodeID.
const None NodeID = -1

// Kind classifies an endpoint.
type Kind int

// Endpoint kinds.
const (
	L1D Kind = iota
	L1I
	L2
	Mem
)

func (k Kind) String() string {
	switch k {
	case L1D:
		return "L1D"
	case L1I:
		return "L1I"
	case L2:
		return "L2"
	case Mem:
		return "Mem"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Geometry describes the shape of the machine (Table 3 defaults: 4 CMPs,
// 4 processors per CMP, 4 L2 banks per CMP).
type Geometry struct {
	CMPs        int
	ProcsPerCMP int
	L2Banks     int // per CMP
	Mapper      mem.Mapper
}

// NewGeometry builds a Geometry and its address mapper.
func NewGeometry(cmps, procs, banks int) Geometry {
	return Geometry{
		CMPs:        cmps,
		ProcsPerCMP: procs,
		L2Banks:     banks,
		Mapper:      mem.Mapper{Banks: banks, CMPs: cmps},
	}
}

// Per-CMP node layout: [L1D x procs][L1I x procs][L2 x banks][Mem].
func (g Geometry) nodesPerCMP() int { return 2*g.ProcsPerCMP + g.L2Banks + 1 }

// NumNodes reports the total number of endpoints.
func (g Geometry) NumNodes() int { return g.CMPs * g.nodesPerCMP() }

// TotalProcs reports the number of processors in the system.
func (g Geometry) TotalProcs() int { return g.CMPs * g.ProcsPerCMP }

// L1DNode returns the L1 data cache of processor p on CMP c.
func (g Geometry) L1DNode(c, p int) NodeID {
	return NodeID(c*g.nodesPerCMP() + p)
}

// L1INode returns the L1 instruction cache of processor p on CMP c.
func (g Geometry) L1INode(c, p int) NodeID {
	return NodeID(c*g.nodesPerCMP() + g.ProcsPerCMP + p)
}

// L2Node returns L2 bank b on CMP c.
func (g Geometry) L2Node(c, b int) NodeID {
	return NodeID(c*g.nodesPerCMP() + 2*g.ProcsPerCMP + b)
}

// MemNode returns the memory controller of CMP c.
func (g Geometry) MemNode(c int) NodeID {
	return NodeID(c*g.nodesPerCMP() + 2*g.ProcsPerCMP + g.L2Banks)
}

// CMPOf reports which CMP an endpoint belongs to.
func (g Geometry) CMPOf(id NodeID) int { return int(id) / g.nodesPerCMP() }

// KindOf classifies an endpoint.
func (g Geometry) KindOf(id NodeID) Kind {
	off := int(id) % g.nodesPerCMP()
	switch {
	case off < g.ProcsPerCMP:
		return L1D
	case off < 2*g.ProcsPerCMP:
		return L1I
	case off < 2*g.ProcsPerCMP+g.L2Banks:
		return L2
	default:
		return Mem
	}
}

// IndexOf reports an endpoint's index within its kind on its CMP (the
// processor number for L1s, the bank number for L2s, 0 for memory).
func (g Geometry) IndexOf(id NodeID) int {
	off := int(id) % g.nodesPerCMP()
	switch {
	case off < g.ProcsPerCMP:
		return off
	case off < 2*g.ProcsPerCMP:
		return off - g.ProcsPerCMP
	case off < 2*g.ProcsPerCMP+g.L2Banks:
		return off - 2*g.ProcsPerCMP
	default:
		return 0
	}
}

// IsCache reports whether id is a cache (anything but a memory
// controller).
func (g Geometry) IsCache(id NodeID) bool { return g.KindOf(id) != Mem }

// SameCMP reports whether two endpoints share a chip.
func (g Geometry) SameCMP(a, b NodeID) bool { return g.CMPOf(a) == g.CMPOf(b) }

// L2BankFor returns the L2 bank on CMP c that serves block b.
func (g Geometry) L2BankFor(c int, b mem.Block) NodeID {
	return g.L2Node(c, g.Mapper.Bank(b))
}

// HomeMem returns the home memory controller for block b.
func (g Geometry) HomeMem(b mem.Block) NodeID {
	return g.MemNode(g.Mapper.HomeCMP(b))
}

// AllNodes lists every endpoint.
func (g Geometry) AllNodes() []NodeID {
	out := make([]NodeID, g.NumNodes())
	for i := range out {
		out[i] = NodeID(i)
	}
	return out
}

// AllCaches lists every cache endpoint in the system.
func (g Geometry) AllCaches() []NodeID {
	var out []NodeID
	for _, id := range g.AllNodes() {
		if g.IsCache(id) {
			out = append(out, id)
		}
	}
	return out
}

// CachesInCMP lists the caches on CMP c.
func (g Geometry) CachesInCMP(c int) []NodeID {
	var out []NodeID
	for p := 0; p < g.ProcsPerCMP; p++ {
		out = append(out, g.L1DNode(c, p), g.L1INode(c, p))
	}
	for b := 0; b < g.L2Banks; b++ {
		out = append(out, g.L2Node(c, b))
	}
	return out
}

// L1sInCMP lists the L1 caches (data and instruction) on CMP c.
func (g Geometry) L1sInCMP(c int) []NodeID {
	var out []NodeID
	for p := 0; p < g.ProcsPerCMP; p++ {
		out = append(out, g.L1DNode(c, p), g.L1INode(c, p))
	}
	return out
}

// Mems lists every memory controller.
func (g Geometry) Mems() []NodeID {
	out := make([]NodeID, g.CMPs)
	for c := 0; c < g.CMPs; c++ {
		out[c] = g.MemNode(c)
	}
	return out
}

// CachesPerCMP reports C, the number of caches on one CMP node; the
// TokenCMP read-response optimization returns C tokens when possible.
func (g Geometry) CachesPerCMP() int { return 2*g.ProcsPerCMP + g.L2Banks }

// ProcPriority returns the fixed persistent-request priority of processor
// p on CMP c: lower is higher priority, and least-significant bits vary
// within a CMP so that contended handoffs favor on-chip neighbors (§3.2).
func (g Geometry) ProcPriority(c, p int) int { return c*g.ProcsPerCMP + p }

// GlobalProc returns the global processor index of processor p on CMP c.
func (g Geometry) GlobalProc(c, p int) int { return c*g.ProcsPerCMP + p }

// ProcOf inverts GlobalProc.
func (g Geometry) ProcOf(global int) (cmp, proc int) {
	return global / g.ProcsPerCMP, global % g.ProcsPerCMP
}
