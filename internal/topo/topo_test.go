package topo

import (
	"testing"
	"testing/quick"

	"tokencmp/internal/mem"
)

func TestGeometryRoundTrip(t *testing.T) {
	g := NewGeometry(4, 4, 4)
	if g.NumNodes() != 4*(2*4+4+1) {
		t.Errorf("NumNodes = %d", g.NumNodes())
	}
	for c := 0; c < 4; c++ {
		for p := 0; p < 4; p++ {
			for _, pair := range []struct {
				id   NodeID
				kind Kind
			}{
				{g.L1DNode(c, p), L1D},
				{g.L1INode(c, p), L1I},
			} {
				if g.KindOf(pair.id) != pair.kind {
					t.Errorf("KindOf(%v) = %v, want %v", pair.id, g.KindOf(pair.id), pair.kind)
				}
				if g.CMPOf(pair.id) != c || g.IndexOf(pair.id) != p {
					t.Errorf("CMP/Index of %v = %d/%d, want %d/%d",
						pair.id, g.CMPOf(pair.id), g.IndexOf(pair.id), c, p)
				}
			}
		}
		if g.KindOf(g.MemNode(c)) != Mem || g.CMPOf(g.MemNode(c)) != c {
			t.Errorf("mem node %d misclassified", c)
		}
		for b := 0; b < 4; b++ {
			id := g.L2Node(c, b)
			if g.KindOf(id) != L2 || g.IndexOf(id) != b {
				t.Errorf("L2 node (%d,%d) misclassified", c, b)
			}
		}
	}
}

func TestNodeSetSizes(t *testing.T) {
	g := NewGeometry(4, 4, 4)
	if got := len(g.AllCaches()); got != 48 {
		t.Errorf("caches = %d, want 48", got)
	}
	if got := len(g.Mems()); got != 4 {
		t.Errorf("mems = %d, want 4", got)
	}
	if got := len(g.L1sInCMP(0)); got != 8 {
		t.Errorf("L1s per CMP = %d, want 8", got)
	}
	if got := g.CachesPerCMP(); got != 12 {
		t.Errorf("caches per CMP = %d, want 12", got)
	}
}

func TestProcMapping(t *testing.T) {
	g := NewGeometry(4, 4, 4)
	for gp := 0; gp < g.TotalProcs(); gp++ {
		c, p := g.ProcOf(gp)
		if g.GlobalProc(c, p) != gp {
			t.Errorf("proc mapping not a bijection at %d", gp)
		}
	}
}

func TestPriorityLocality(t *testing.T) {
	g := NewGeometry(4, 4, 4)
	// Priorities within a CMP must be consecutive, so contended handoffs
	// favor on-chip neighbors (§3.2).
	for c := 0; c < 4; c++ {
		for p := 0; p < 3; p++ {
			if g.ProcPriority(c, p+1)-g.ProcPriority(c, p) != 1 {
				t.Fatal("priorities not consecutive within a CMP")
			}
		}
	}
}

func TestHomeAndBankMapping(t *testing.T) {
	g := NewGeometry(4, 4, 4)
	counts := map[NodeID]int{}
	for b := 0; b < 1024; b++ {
		counts[g.HomeMem(mem.Block(b))]++
	}
	for _, m := range g.Mems() {
		if counts[m] != 256 {
			t.Errorf("home %v serves %d of 1024 blocks, want 256", m, counts[m])
		}
	}
}

// Property: every NodeID classifies into exactly one kind and round-trips
// through its constructor.
func TestPropertyKindPartition(t *testing.T) {
	g := NewGeometry(4, 4, 4)
	f := func(raw uint8) bool {
		id := NodeID(int(raw) % g.NumNodes())
		c := g.CMPOf(id)
		switch g.KindOf(id) {
		case L1D:
			return g.L1DNode(c, g.IndexOf(id)) == id
		case L1I:
			return g.L1INode(c, g.IndexOf(id)) == id
		case L2:
			return g.L2Node(c, g.IndexOf(id)) == id
		default:
			return g.MemNode(c) == id
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
