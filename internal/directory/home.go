package directory

import (
	"fmt"

	"tokencmp/internal/mem"
	"tokencmp/internal/network"
	"tokencmp/internal/sim"
	"tokencmp/internal/stats"
	"tokencmp/internal/topo"
)

// homeLine is one inter-CMP directory entry plus the memory image.
type homeLine struct {
	owner   int    // owning CMP, or -1 when memory owns the block
	sharers uint64 // CMP bitmask (excluding the owner)
	value   uint64 // backing memory value
}

// homeTxn is one blocking transaction at the home directory.
type homeTxn struct {
	kind     int
	oldOwner int
}

// HomeStats counts home-directory events.
type HomeStats struct {
	GetS, GetM uint64
	Fwds       uint64
	Invs       uint64
	Puts       uint64
	MemReads   uint64
	MemWrites  uint64
}

// HomeCtrl is a memory controller running the inter-CMP directory: it
// tracks which CMPs cache each of its home blocks (but not which caches
// within a CMP — that is the L2 banks' job), defers conflicting requests
// with per-block busy states, and closes transactions on unblock
// messages.
type HomeCtrl struct {
	id  topo.NodeID
	sys *System
	cmp int

	dir   map[mem.Block]*homeLine
	busy  map[mem.Block]*homeTxn
	queue map[mem.Block][]network.Message // deferred requests, copied per the ownership contract

	Stats HomeStats
}

func newHome(sys *System, id topo.NodeID, cmp int) *HomeCtrl {
	return &HomeCtrl{
		id:    id,
		sys:   sys,
		cmp:   cmp,
		dir:   make(map[mem.Block]*homeLine),
		busy:  make(map[mem.Block]*homeTxn),
		queue: make(map[mem.Block][]network.Message),
	}
}

// dataDelay is the DRAM data-fetch time not hidden under the directory
// lookup.
func (c *HomeCtrl) dataDelay() sim.Time {
	d := c.sys.Cfg.DRAMLatency - c.sys.Cfg.DirLatency
	if d < 0 {
		d = 0
	}
	return d
}

func (c *HomeCtrl) lineFor(b mem.Block) *homeLine {
	l := c.dir[b]
	if l == nil {
		l = &homeLine{owner: -1}
		c.dir[b] = l
	}
	return l
}

// DirValue exposes the memory image for audits.
func (c *HomeCtrl) DirValue(b mem.Block) (uint64, bool) {
	l, ok := c.dir[b]
	if !ok {
		return 0, false
	}
	return l.value, true
}

// homeHandle is the closure-free deferred-handling thunk: the home
// holds a pooled copy of the message across its directory-access delay
// and frees it afterwards (deferred requests are copied into the queue
// by value, so the pooled copy never outlives the handler).
func homeHandle(ctx, arg any) {
	c, m := ctx.(*HomeCtrl), arg.(*network.Message)
	c.handle(m)
	c.sys.Net.Free(m)
}

// Recv implements network.Endpoint. Every directory access pays the
// controller latency plus the directory lookup (80 ns for the DRAM
// directory, 0 for DirectoryCMP-zero).
func (c *HomeCtrl) Recv(m *network.Message) {
	d := c.sys.Cfg.MemLatency + c.sys.Cfg.DirLatency
	c.sys.Eng.ScheduleCall(d, homeHandle, c, c.sys.Net.CopyOf(m))
}

func (c *HomeCtrl) handle(m *network.Message) {
	switch m.Kind {
	case kGetS, kGetM, kPut:
		c.admit(m)
	case kUnblock:
		c.handleUnblock(m)
	case kWbData, kWbCancel:
		c.handleWbData(m)
	default:
		panic(fmt.Sprintf("directory: home %v cannot handle %s", c.id, kindName(m.Kind)))
	}
}

func (c *HomeCtrl) admit(m *network.Message) {
	b := m.Block
	if c.busy[b] != nil {
		c.queue[b] = append(c.queue[b], *m)
		return
	}
	switch m.Kind {
	case kGetS:
		c.startGetS(m)
	case kGetM:
		c.startGetM(m)
	case kPut:
		c.startPut(m)
	}
}

// cmpOf maps a requesting L2 node to its CMP index.
func (c *HomeCtrl) cmpOf(id topo.NodeID) int { return c.sys.Geom.CMPOf(id) }

func (c *HomeCtrl) startGetS(m *network.Message) {
	c.Stats.GetS++
	b := m.Block
	hl := c.lineFor(b)
	c.busy[b] = &homeTxn{kind: kGetS, oldOwner: hl.owner}

	if hl.owner == -1 {
		// Memory owns the block: read DRAM and grant (E when unshared).
		// The data fetch overlaps the directory lookup already paid in
		// Recv, so only the excess DRAM time is serialized.
		gst := grantS
		if hl.sharers == 0 {
			gst = grantE
		}
		c.Stats.MemReads++
		c.sys.ctr.memRead.Inc()
		req := m.Requestor
		c.sys.Eng.Schedule(c.dataDelay(), func() {
			c.sys.Net.SendNew(network.Message{
				Src:       c.id,
				Dst:       req,
				Block:     b,
				Kind:      kData,
				Class:     stats.ResponseData,
				HasData:   true,
				Data:      hl.value,
				Aux:       packAux(gst, 0, false),
				Requestor: req,
			})
		})
		return
	}
	// A CMP owns the block: forward (possibly to the requester's own
	// chip, whose L2 serves it from its writeback buffer in PUT races).
	c.Stats.Fwds++
	c.sys.ctr.fwdSent.Inc()
	owner := c.sys.Geom.L2BankFor(hl.owner, b)
	c.sys.Net.SendNew(network.Message{
		Src:       c.id,
		Dst:       owner,
		Block:     b,
		Kind:      kFwdGetS,
		Class:     stats.InvFwdAckTokens,
		Requestor: m.Requestor,
	})
}

func (c *HomeCtrl) startGetM(m *network.Message) {
	c.Stats.GetM++
	b := m.Block
	hl := c.lineFor(b)
	reqCMP := c.cmpOf(m.Requestor)
	c.busy[b] = &homeTxn{kind: kGetM, oldOwner: hl.owner}

	// Invalidate every sharer chip except the requester.
	acks := 0
	mask := hl.sharers &^ (1 << uint(reqCMP))
	if hl.owner >= 0 && hl.owner != reqCMP {
		mask &^= 1 << uint(hl.owner)
	}
	for cmp := 0; mask != 0; cmp++ {
		if mask&(1<<uint(cmp)) == 0 {
			continue
		}
		mask &^= 1 << uint(cmp)
		acks++
		c.Stats.Invs++
		c.sys.ctr.invSent.Inc()
		c.sys.Net.SendNew(network.Message{
			Src:       c.id,
			Dst:       c.sys.Geom.L2BankFor(cmp, b),
			Block:     b,
			Kind:      kInv,
			Class:     stats.InvFwdAckTokens,
			Requestor: m.Requestor,
		})
	}

	switch {
	case hl.owner == -1:
		// Memory data (possibly redundant if the requester was a sharer,
		// but always current); the fetch overlaps the directory lookup.
		c.Stats.MemReads++
		c.sys.ctr.memRead.Inc()
		req := m.Requestor
		c.sys.Eng.Schedule(c.dataDelay(), func() {
			c.sys.Net.SendNew(network.Message{
				Src:       c.id,
				Dst:       req,
				Block:     b,
				Kind:      kData,
				Class:     stats.ResponseData,
				HasData:   true,
				Data:      hl.value,
				Aux:       packAux(grantM, acks, false),
				Requestor: req,
			})
		})
	case hl.owner == reqCMP:
		// Ownership upgrade: the requester chip already holds the data.
		c.sys.Net.SendNew(network.Message{
			Src:       c.id,
			Dst:       m.Requestor,
			Block:     b,
			Kind:      kGrant,
			Class:     stats.InvFwdAckTokens,
			Aux:       packAux(grantM, acks, false),
			Requestor: m.Requestor,
		})
	default:
		// Forward to the owner chip, which sends data to the requester.
		c.Stats.Fwds++
		c.sys.ctr.fwdSent.Inc()
		c.sys.Net.SendNew(network.Message{
			Src:       c.id,
			Dst:       c.sys.Geom.L2BankFor(hl.owner, b),
			Block:     b,
			Kind:      kFwdGetM,
			Class:     stats.InvFwdAckTokens,
			Aux:       packAux(grantM, acks, false),
			Requestor: m.Requestor,
		})
	}
}

func (c *HomeCtrl) startPut(m *network.Message) {
	c.Stats.Puts++
	b := m.Block
	c.busy[b] = &homeTxn{kind: kPut}
	c.sys.Net.SendNew(network.Message{
		Src:   c.id,
		Dst:   m.Src,
		Block: b,
		Kind:  kWbGrant,
		Class: stats.WritebackControl,
	})
}

// handleUnblock closes a GetS/GetM transaction, applying the requester's
// reported result state to the directory.
func (c *HomeCtrl) handleUnblock(m *network.Message) {
	b := m.Block
	txn := c.busy[b]
	if txn == nil {
		panic(fmt.Sprintf("directory: home %v unblock without transaction for %v", c.id, b))
	}
	hl := c.lineFor(b)
	reqCMP := c.cmpOf(m.Src)
	result, _, _ := unpackAux(m.Aux)
	switch result {
	case grantS:
		hl.sharers |= 1 << uint(reqCMP)
	default: // E or M: the requester chip is now the exclusive owner.
		hl.owner = reqCMP
		hl.sharers = 0
	}
	delete(c.busy, b)
	c.drain(b)
}

// handleWbData completes a chip's three-phase writeback.
func (c *HomeCtrl) handleWbData(m *network.Message) {
	b := m.Block
	txn := c.busy[b]
	if txn == nil || txn.kind != kPut {
		panic(fmt.Sprintf("directory: home %v %s without PUT for %v", c.id, kindName(m.Kind), b))
	}
	delete(c.busy, b)
	hl := c.lineFor(b)
	evictor := c.cmpOf(m.Src)
	if m.Kind == kWbData {
		c.Stats.MemWrites++
		c.sys.ctr.memWrite.Inc()
		hl.value = m.Data
		if hl.owner == evictor {
			hl.owner = -1
		}
		hl.sharers &^= 1 << uint(evictor)
	} else {
		// Cancelled PUT: the copy was consumed by a racing transaction
		// whose unblock already updated the directory, so the evictor can
		// no longer be the registered owner.
		if hl.owner == evictor {
			panic(fmt.Sprintf("directory: home %v WbCancel from registered owner for %v", c.id, b))
		}
		hl.sharers &^= 1 << uint(evictor)
	}
	c.drain(b)
}

func (c *HomeCtrl) drain(b mem.Block) {
	if c.busy[b] != nil {
		return
	}
	q := c.queue[b]
	if len(q) == 0 {
		delete(c.queue, b)
		return
	}
	m := c.sys.Net.NewMessage()
	*m = q[0]
	if len(q) == 1 {
		delete(c.queue, b)
	} else {
		c.queue[b] = q[1:]
	}
	// The deferred request's directory latency was paid at arrival;
	// re-admit on the next event (through a pooled copy the admit thunk
	// frees, mirroring the arrival path).
	c.sys.Eng.ScheduleCall(0, homeAdmit, c, m)
}

// homeAdmit re-admits a drained request; admit copies it if it must
// queue again, so the pooled message is always freed here.
func homeAdmit(ctx, arg any) {
	c, m := ctx.(*HomeCtrl), arg.(*network.Message)
	c.admit(m)
	c.sys.Net.Free(m)
}
