package directory

import (
	"tokencmp/internal/sim"
	"tokencmp/internal/topo"
)

// Config holds DirectoryCMP's structural and timing parameters.
type Config struct {
	Geom topo.Geometry

	L1Latency   sim.Time
	L2Latency   sim.Time
	MemLatency  sim.Time // memory controller decision latency
	DRAMLatency sim.Time // DRAM array access for data
	// DirLatency is the inter-CMP directory access time: DRAMLatency for
	// the realistic DRAM directory, 0 for DirectoryCMP-zero.
	DirLatency sim.Time

	// ResponseDelay is the bounded permission hold after a store (the
	// paper applies the delay mechanism to all protocols).
	ResponseDelay sim.Time

	L1Size, L1Ways     int
	L2BankSize, L2Ways int

	// ZeroDir names the DirectoryCMP-zero variant in stats output.
	ZeroDir bool
}

// DefaultConfig returns the Table 3 parameters with a DRAM directory.
func DefaultConfig(g topo.Geometry) Config {
	return Config{
		Geom:          g,
		L1Latency:     sim.NS(2),
		L2Latency:     sim.NS(7),
		MemLatency:    sim.NS(6),
		DRAMLatency:   sim.NS(80),
		DirLatency:    sim.NS(80),
		ResponseDelay: sim.NS(30),
		L1Size:        128 << 10,
		L1Ways:        4,
		L2BankSize:    (8 << 20) / 4,
		L2Ways:        4,
	}
}

// ZeroDirConfig returns the unrealistic zero-cycle-directory variant.
func ZeroDirConfig(g topo.Geometry) Config {
	cfg := DefaultConfig(g)
	cfg.DirLatency = 0
	cfg.ZeroDir = true
	return cfg
}

// Name reports the protocol name for reports.
func (c Config) Name() string {
	if c.ZeroDir {
		return "DirectoryCMP-zero"
	}
	return "DirectoryCMP"
}
