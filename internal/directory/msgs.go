// Package directory implements DirectoryCMP (Section 2): the baseline
// hierarchical MOESI coherence protocol with an intra-CMP directory at
// each L2 bank tracking L1 copies and an inter-CMP directory at each
// memory controller tracking which CMPs cache a block.
//
// Both directory levels use per-block busy states to defer conflicting
// requests, unblock messages from requesters to close transactions, and
// three-phase writebacks (PUT → grant → data), as the paper describes.
// The migratory-sharing optimization is implemented at both levels: a
// cache (or chip) holding a modified block invalidates its copy when
// responding, granting the requester read/write access even for a read
// request.
package directory

import "fmt"

// Message kinds.
const (
	// kGetS / kGetM request read / write permission (L1→L2 bank intra,
	// L2 bank→home inter).
	kGetS = iota
	kGetM
	// kFwdGetS / kFwdGetM are directory forwards to the current owner
	// (L2→owner L1 intra, home→owner CMP's L2 inter). For kFwdGetM, Aux
	// carries the invalidation-ack count the requester must collect.
	kFwdGetS
	kFwdGetM
	// kFwdResp answers an intra-CMP forward: owner L1 → its L2 bank (the
	// paper's artifact — data routes through the intra-CMP directory).
	kFwdResp
	// kInv invalidates a sharer (L2→L1 intra; home→sharer CMP's L2
	// inter). Requestor names the ack collector.
	kInv
	// kInvAck acknowledges an invalidation to the collector.
	kInvAck
	// kData is a grant carrying data; Aux packs granted state, ack count,
	// and the migratory flag.
	kData
	// kGrant is a dataless grant (upgrade paths); Aux as kData.
	kGrant
	// kUnblock closes a directory transaction; Aux packs the resulting
	// state so the directory can be updated.
	kUnblock
	// kPut / kWbGrant / kWbData / kWbCancel implement three-phase
	// writebacks at both levels.
	kPut
	kWbGrant
	kWbData
	kWbCancel
)

func kindName(k int) string {
	names := []string{"GetS", "GetM", "FwdGetS", "FwdGetM", "FwdResp", "Inv",
		"InvAck", "Data", "Grant", "Unblock", "Put", "WbGrant", "WbData", "WbCancel"}
	if k >= 0 && k < len(names) {
		return names[k]
	}
	return fmt.Sprintf("kind(%d)", k)
}

// grantState values carried in Aux.
type grantState int

const (
	grantS grantState = iota
	grantE
	grantM
)

// packAux encodes grant state, pending-ack count, and the migratory flag
// into a message Aux field.
func packAux(st grantState, acks int, migratory bool) int {
	v := int(st) | acks<<2
	if migratory {
		v |= 1 << 30
	}
	return v
}

func unpackAux(v int) (st grantState, acks int, migratory bool) {
	return grantState(v & 3), (v >> 2) & 0xFFFFFF, v&(1<<30) != 0
}
