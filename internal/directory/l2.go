package directory

import (
	"fmt"

	"tokencmp/internal/cache"
	"tokencmp/internal/mem"
	"tokencmp/internal/network"
	"tokencmp/internal/stats"
	"tokencmp/internal/topo"
)

// Service tags (carried in Message.Proc) distinguish the collector of
// invalidation acks and forward responses when a local transaction, a
// home-initiated external service, and an eviction recall could overlap
// on the same block.
const (
	tagTxn   = iota // local L1 transaction at this bank
	tagExt          // home-initiated forward/invalidate service
	tagEvict        // L2 eviction recall
	tagInter        // chip-to-chip invalidation ack (to the requesting L2)
)

// chipState is the CMP's collective permission for a block, tracked in
// the L2 line alongside the intra-CMP directory (local owner + sharers).
type chipState int

const (
	csI chipState = iota
	csS
	csE
	csM
	csO
)

func (s chipState) String() string { return [...]string{"I", "S", "E", "M", "O"}[s] }

// l2Line is an L2 bank line with the intra-CMP directory entry.
type l2Line struct {
	cs      chipState
	hasData bool
	data    uint64
	dirty   bool
	ownerL1 topo.NodeID // local L1 holding E/M, or topo.None (L2 holds the data)
	sharers uint64      // local L1 sharer bits (excluding ownerL1)
	pinned  bool        // part of an in-flight transaction; not evictable
}

// l2Txn is one local transaction (GetS/GetM from a local L1).
type l2Txn struct {
	requestor topo.NodeID // the requesting L1 (from the GetS/GetM)
	kind      int

	fwdPending   bool
	interPending bool
	localAcks    int

	// Inter-CMP grant payload, held until all chip acks arrive.
	interGot      bool
	interState    grantState
	interMigr     bool
	interHasData  bool
	interData     uint64
	interDirty    bool
	interAcksNeed int
	interAcksGot  int

	// Local grant decision inputs.
	migr bool
}

// extSrv is a home-initiated service (forward or invalidate) or an
// eviction recall, which runs concurrently with inter-pending local
// transactions but serializes with purely-local ones.
type extSrv struct {
	kind    int // kFwdGetS, kFwdGetM, kInv, or -1 for eviction recall
	replyTo topo.NodeID
	acks    int // local invalidation acks outstanding
	fwdWait bool
	acksFor int // inter ack count to forward in our data reply (FwdGetM)

	// Collected data (for recalls and forwards).
	hasData bool
	data    uint64
	dirty   bool
	migr    bool
	// prevOwner is the local L1 that owned the line before a FwdGetS
	// degraded it to S; it must join the sharer set.
	prevOwner topo.NodeID

	// Eviction recall bookkeeping.
	evState l2Line

	// Home forwards arriving while this service (an eviction) runs,
	// copied per the ownership contract.
	pendingHome []network.Message
}

// L2Stats counts per-bank events.
type L2Stats struct {
	LocalGetS, LocalGetM uint64
	InterGetS, InterGetM uint64
	FwdsIn               uint64
	InvsIn               uint64
	Recalls              uint64
	Writebacks           uint64
	MigratoryGrants      uint64
}

// L2Ctrl is a DirectoryCMP L2 bank: a shared cache slice plus the
// intra-CMP directory for its blocks, and the chip's agent in the
// inter-CMP protocol.
type L2Ctrl struct {
	id        topo.NodeID
	sys       *System
	cmp, bank int

	cache *cache.Array[l2Line]
	busy  map[mem.Block]*l2Txn
	ext   map[mem.Block]*extSrv
	queue map[mem.Block][]network.Message // deferred messages, copied per the ownership contract
	wb    map[mem.Block]*wbEntry          // our three-phase PUTs to home

	Stats L2Stats
}

func newL2(sys *System, id topo.NodeID, cmp, bank int) *L2Ctrl {
	cfg := sys.Cfg
	return &L2Ctrl{
		id:    id,
		sys:   sys,
		cmp:   cmp,
		bank:  bank,
		cache: cache.New[l2Line](cache.Params{SizeBytes: cfg.L2BankSize, Ways: cfg.L2Ways, BlockSize: mem.BlockSize}),
		busy:  make(map[mem.Block]*l2Txn),
		ext:   make(map[mem.Block]*extSrv),
		queue: make(map[mem.Block][]network.Message),
		wb:    make(map[mem.Block]*wbEntry),
	}
}

func (c *L2Ctrl) lookup(b mem.Block) *l2Line {
	if l := c.cache.Lookup(b); l != nil {
		return &l.State
	}
	return nil
}

func (c *L2Ctrl) home(b mem.Block) topo.NodeID { return c.sys.Geom.HomeMem(b) }

// l1Bit maps a local L1 endpoint to its sharer-mask bit.
func (c *L2Ctrl) l1Bit(id topo.NodeID) uint64 {
	g := c.sys.Geom
	idx := g.IndexOf(id)
	if g.KindOf(id) == topo.L1I {
		idx += g.ProcsPerCMP
	}
	return 1 << uint(idx)
}

func (c *L2Ctrl) l1FromBit(bit int) topo.NodeID {
	g := c.sys.Geom
	if bit < g.ProcsPerCMP {
		return g.L1DNode(c.cmp, bit)
	}
	return g.L1INode(c.cmp, bit-g.ProcsPerCMP)
}

// dirL2Handle is the closure-free deferred-handling thunk: the bank
// holds a pooled copy of the message across its tag-access delay and
// frees it afterwards (deferred messages are copied into the queues by
// value, so the pooled copy never outlives the handler).
func dirL2Handle(ctx, arg any) {
	c, m := ctx.(*L2Ctrl), arg.(*network.Message)
	c.handle(m)
	c.sys.Net.Free(m)
}

// Recv implements network.Endpoint.
func (c *L2Ctrl) Recv(m *network.Message) {
	c.sys.Eng.ScheduleCall(c.sys.Cfg.L2Latency, dirL2Handle, c, c.sys.Net.CopyOf(m))
}

func (c *L2Ctrl) handle(m *network.Message) {
	switch m.Kind {
	case kGetS, kGetM:
		c.admitLocal(m)
	case kFwdResp:
		c.handleFwdResp(m)
	case kInvAck:
		c.handleInvAck(m)
	case kData, kGrant:
		c.handleInterGrant(m)
	case kFwdGetS, kFwdGetM:
		c.admitHomeFwd(m)
	case kInv:
		c.admitHomeInv(m)
	case kUnblock:
		c.handleUnblock(m)
	case kPut:
		c.handlePut(m)
	case kWbGrant:
		c.handleWbGrant(m)
	case kWbData, kWbCancel:
		c.handleWbData(m)
	default:
		panic(fmt.Sprintf("directory: L2 %v cannot handle %s", c.id, kindName(m.Kind)))
	}
}

// admitLocal starts a local transaction or defers it behind the block's
// current activity.
func (c *L2Ctrl) admitLocal(m *network.Message) {
	b := m.Block
	if c.busy[b] != nil || c.ext[b] != nil {
		c.queue[b] = append(c.queue[b], *m)
		return
	}
	c.startLocal(m)
}

func (c *L2Ctrl) startLocal(m *network.Message) {
	b := m.Block
	txn := &l2Txn{requestor: m.Requestor, kind: m.Kind}
	c.busy[b] = txn
	line := c.lookup(b)
	if line != nil {
		line.pinned = true
	}

	if m.Kind == kGetS {
		c.Stats.LocalGetS++
		switch {
		case line != nil && line.cs != csI && line.ownerL1 != topo.None && line.ownerL1 != m.Requestor:
			txn.fwdPending = true
			c.sendToL1(line.ownerL1, b, kFwdGetS, tagTxn, 0)
		case line != nil && line.cs != csI && line.hasData:
			c.grantLocal(b, txn)
		case line != nil && line.cs != csI && line.ownerL1 == m.Requestor:
			// The requester is the registered owner yet missed: its copy
			// was consumed (writeback raced). Re-supply via home.
			c.goInter(b, txn)
		default:
			c.goInter(b, txn)
		}
		return
	}

	c.Stats.LocalGetM++
	switch {
	case line != nil && (line.cs == csM || line.cs == csE):
		if line.ownerL1 != topo.None && line.ownerL1 != m.Requestor {
			txn.fwdPending = true
			c.sendToL1(line.ownerL1, b, kFwdGetM, tagTxn, 0)
			return
		}
		c.invalidateLocalSharers(b, txn, m.Requestor)
		if txn.localAcks == 0 {
			c.grantLocal(b, txn)
		}
	default:
		c.goInter(b, txn)
	}
}

func (c *L2Ctrl) sendToL1(dst topo.NodeID, b mem.Block, kind, tag, aux int) {
	c.sys.Net.SendNew(network.Message{
		Src:       c.id,
		Dst:       dst,
		Block:     b,
		Kind:      kind,
		Class:     stats.InvFwdAckTokens,
		Requestor: c.id,
		Proc:      tag,
		Aux:       aux,
	})
}

// invalidateLocalSharers sends txn-tagged invalidations to every local
// sharer except the requester.
func (c *L2Ctrl) invalidateLocalSharers(b mem.Block, txn *l2Txn, except topo.NodeID) {
	line := c.lookup(b)
	if line == nil {
		return
	}
	mask := line.sharers
	if except != topo.None {
		mask &^= c.l1Bit(except)
	}
	for bit := 0; mask != 0; bit++ {
		if mask&(1<<uint(bit)) == 0 {
			continue
		}
		mask &^= 1 << uint(bit)
		txn.localAcks++
		c.sendToL1(c.l1FromBit(bit), b, kInv, tagTxn, 0)
	}
	if except != topo.None {
		line.sharers &= c.l1Bit(except)
	} else {
		line.sharers = 0
	}
}

// grantLocal completes a local transaction by granting the requester.
func (c *L2Ctrl) grantLocal(b mem.Block, txn *l2Txn) {
	line := c.lookup(b)
	if line == nil {
		panic(fmt.Sprintf("directory: L2 %v grantLocal without line for %v", c.id, b))
	}
	req := txn.requestor
	reqBit := c.l1Bit(req)

	var gst grantState
	withData := true
	switch {
	case txn.kind == kGetM:
		gst = grantM
		withData = line.sharers&reqBit == 0
		line.sharers &^= reqBit
		line.ownerL1 = req
		line.cs = csM
	case txn.migr:
		// Migratory read: pass exclusive ownership.
		gst = grantM
		c.Stats.MigratoryGrants++
		c.sys.ctr.migratory.Inc()
		line.ownerL1 = req
		line.cs = csM
	case (line.cs == csM || line.cs == csE) && line.ownerL1 == topo.None && line.sharers == 0:
		gst = grantE
		line.ownerL1 = req
	default:
		gst = grantS
		line.sharers |= reqBit
	}

	msg := network.Message{
		Src:       c.id,
		Dst:       req,
		Block:     b,
		Kind:      kGrant,
		Class:     stats.InvFwdAckTokens,
		Aux:       packAux(gst, 0, false),
		Requestor: req,
	}
	if withData {
		msg.Kind = kData
		msg.Class = stats.ResponseData
		msg.HasData = true
		msg.Data = line.data
		msg.Dirty = line.dirty
	}
	if gst == grantE || gst == grantM {
		// An exclusive holder may modify silently; the L2 copy is no
		// longer authoritative.
		line.hasData = false
	}
	c.sys.Net.SendNew(msg)
	// Remain busy until the L1's unblock.
}

// goInter escalates to the inter-CMP directory at the block's home.
func (c *L2Ctrl) goInter(b mem.Block, txn *l2Txn) {
	if !c.reserve(b) {
		// Set conflict with unfinishable eviction right now; retry.
		c.sys.Eng.Schedule(c.sys.Cfg.L2Latency, func() {
			if c.busy[b] == txn {
				c.goInter(b, txn)
			}
		})
		return
	}
	txn.interPending = true
	if txn.kind == kGetS {
		c.Stats.InterGetS++
	} else {
		c.Stats.InterGetM++
	}
	c.sys.Net.SendNew(network.Message{
		Src:       c.id,
		Dst:       c.home(b),
		Block:     b,
		Kind:      txn.kind,
		Class:     stats.Request,
		Requestor: c.id,
	})
}

// reserve pins a line for b, evicting a victim (with recall) if needed.
// It reports false if no way is currently evictable.
func (c *L2Ctrl) reserve(b mem.Block) bool {
	if l := c.cache.Lookup(b); l != nil {
		l.State.pinned = true
		return true
	}
	line, victim, vstate, wasEvicted, ok := c.cache.InstallAvoiding(b, func(st *l2Line) bool { return st.pinned })
	if !ok {
		return false
	}
	line.State.pinned = true
	line.State.ownerL1 = topo.None
	if wasEvicted {
		c.recall(victim, vstate)
	}
	return true
}

// recall evicts a victim line: invalidate local L1 copies (collecting
// data from a local owner), then write owned data back to the home via a
// three-phase PUT.
func (c *L2Ctrl) recall(v mem.Block, st l2Line) {
	c.Stats.Recalls++
	srv := &extSrv{kind: -1, evState: st, hasData: st.hasData, data: st.data, dirty: st.dirty}
	c.ext[v] = srv
	if st.ownerL1 != topo.None {
		srv.fwdWait = true
		c.sendToL1(st.ownerL1, v, kFwdGetM, tagEvict, 0)
	}
	mask := st.sharers
	for bit := 0; mask != 0; bit++ {
		if mask&(1<<uint(bit)) == 0 {
			continue
		}
		mask &^= 1 << uint(bit)
		srv.acks++
		c.sendToL1(c.l1FromBit(bit), v, kInv, tagEvict, 0)
	}
	c.finishRecallIfDone(v, srv)
}

func (c *L2Ctrl) finishRecallIfDone(v mem.Block, srv *extSrv) {
	if srv.fwdWait || srv.acks > 0 {
		return
	}
	st := srv.evState
	owned := st.cs == csM || st.cs == csE || st.cs == csO
	if owned {
		c.Stats.Writebacks++
		c.sys.ctr.l2Writeback.Inc()
		c.wb[v] = &wbEntry{data: srv.data, dirty: srv.dirty, valid: true}
		c.sys.Net.SendNew(network.Message{
			Src:   c.id,
			Dst:   c.home(v),
			Block: v,
			Kind:  kPut,
			Class: stats.WritebackControl,
		})
	}
	delete(c.ext, v)
	// Home forwards that arrived mid-recall are served now (from the
	// writeback buffer) — re-admit them.
	for i := range srv.pendingHome {
		hm := srv.pendingHome[i]
		c.handle(&hm)
	}
	c.drain(v)
}

// handleFwdResp routes a local L1's forward response to its collector.
func (c *L2Ctrl) handleFwdResp(m *network.Message) {
	b := m.Block
	_, _, migr := unpackAux(m.Aux)
	switch m.Proc {
	case tagTxn:
		txn := c.busy[b]
		if txn == nil || !txn.fwdPending {
			panic(fmt.Sprintf("directory: L2 %v stray FwdResp for %v", c.id, b))
		}
		txn.fwdPending = false
		line := c.lookup(b)
		line.data = m.Data
		line.dirty = m.Dirty
		line.hasData = true
		txn.migr = migr
		prevOwner := line.ownerL1
		line.ownerL1 = topo.None
		if txn.kind == kGetS && !migr && prevOwner != topo.None {
			line.sharers |= c.l1Bit(prevOwner) // owner degraded to S
		}
		if txn.kind == kGetM {
			// Remaining local sharers must go before the grant.
			c.invalidateLocalSharers(b, txn, txn.requestor)
			if txn.localAcks > 0 {
				return
			}
		}
		c.grantLocal(b, txn)
	case tagExt:
		srv := c.ext[b]
		if srv == nil {
			panic(fmt.Sprintf("directory: L2 %v FwdResp with no ext service for %v", c.id, b))
		}
		srv.fwdWait = false
		srv.hasData = true
		srv.data = m.Data
		srv.dirty = m.Dirty
		srv.migr = migr
		c.finishExtIfDone(b, srv)
	case tagEvict:
		srv := c.ext[b]
		if srv == nil {
			panic(fmt.Sprintf("directory: L2 %v recall FwdResp with no service for %v", c.id, b))
		}
		srv.fwdWait = false
		srv.hasData = true
		srv.data = m.Data
		srv.dirty = m.Dirty
		c.finishRecallIfDone(b, srv)
	default:
		panic("directory: bad FwdResp tag")
	}
}

// handleInvAck routes an invalidation ack to its collector.
func (c *L2Ctrl) handleInvAck(m *network.Message) {
	b := m.Block
	switch m.Proc {
	case tagTxn:
		txn := c.busy[b]
		if txn == nil {
			panic(fmt.Sprintf("directory: L2 %v stray local InvAck for %v", c.id, b))
		}
		txn.localAcks--
		if txn.localAcks == 0 && !txn.fwdPending {
			c.grantLocal(b, txn)
		}
	case tagExt:
		srv := c.ext[b]
		if srv == nil {
			panic(fmt.Sprintf("directory: L2 %v stray ext InvAck for %v", c.id, b))
		}
		srv.acks--
		c.finishExtIfDone(b, srv)
	case tagEvict:
		srv := c.ext[b]
		if srv == nil {
			panic(fmt.Sprintf("directory: L2 %v stray recall InvAck for %v", c.id, b))
		}
		srv.acks--
		c.finishRecallIfDone(b, srv)
	case tagInter:
		txn := c.busy[b]
		if txn == nil || !txn.interPending {
			panic(fmt.Sprintf("directory: L2 %v stray inter InvAck for %v", c.id, b))
		}
		txn.interAcksGot++
		c.finishInterIfDone(b, txn)
	default:
		panic("directory: bad InvAck tag")
	}
}

// handleInterGrant receives the home's (or owner chip's) grant for our
// inter-CMP request.
func (c *L2Ctrl) handleInterGrant(m *network.Message) {
	b := m.Block
	txn := c.busy[b]
	if txn == nil || !txn.interPending {
		panic(fmt.Sprintf("directory: L2 %v stray inter grant for %v", c.id, b))
	}
	gst, acks, migr := unpackAux(m.Aux)
	txn.interGot = true
	txn.interState = gst
	txn.interMigr = migr
	txn.interHasData = m.HasData
	txn.interData = m.Data
	txn.interDirty = m.Dirty
	txn.interAcksNeed = acks
	c.finishInterIfDone(b, txn)
}

func (c *L2Ctrl) finishInterIfDone(b mem.Block, txn *l2Txn) {
	if !txn.interGot || txn.interAcksGot < txn.interAcksNeed {
		return
	}
	txn.interPending = false

	// Fold the grant into the line and tell the home we are done.
	line := c.lookup(b)
	if line == nil {
		panic(fmt.Sprintf("directory: L2 %v inter grant without reserved line for %v", c.id, b))
	}
	var result grantState
	switch {
	case txn.kind == kGetM:
		line.cs = csM
		result = grantM
	case txn.interMigr:
		line.cs = csM
		result = grantM
		txn.migr = true
	case txn.interState == grantE:
		line.cs = csE
		result = grantE
	default:
		line.cs = csS
		result = grantS
	}
	if txn.interHasData {
		line.hasData = true
		line.data = txn.interData
		line.dirty = txn.interDirty
	}
	c.sys.Net.SendNew(network.Message{
		Src:   c.id,
		Dst:   c.home(b),
		Block: b,
		Kind:  kUnblock,
		Class: stats.Unblock,
		Aux:   packAux(result, 0, txn.interMigr),
	})

	if txn.kind == kGetM {
		c.invalidateLocalSharers(b, txn, txn.requestor)
		if txn.localAcks > 0 {
			return
		}
	}
	c.grantLocal(b, txn)
}

// handleUnblock closes a local transaction.
func (c *L2Ctrl) handleUnblock(m *network.Message) {
	b := m.Block
	if c.busy[b] == nil {
		panic(fmt.Sprintf("directory: L2 %v unblock without transaction for %v", c.id, b))
	}
	delete(c.busy, b)
	if line := c.lookup(b); line != nil {
		line.pinned = c.ext[b] != nil
	}
	c.drain(b)
}

// drain admits the next deferred message for b, if the block is idle.
func (c *L2Ctrl) drain(b mem.Block) {
	for c.busy[b] == nil && c.ext[b] == nil {
		q := c.queue[b]
		if len(q) == 0 {
			delete(c.queue, b)
			return
		}
		m := q[0]
		if len(q) == 1 {
			delete(c.queue, b)
		} else {
			c.queue[b] = q[1:]
		}
		c.handle(&m)
	}
}

// admitHomeFwd handles a forward from the home directory (we are the
// owner chip). It runs immediately unless a purely-local transaction or
// an eviction recall holds the block.
func (c *L2Ctrl) admitHomeFwd(m *network.Message) {
	b := m.Block
	if srv := c.ext[b]; srv != nil {
		if srv.kind == -1 {
			srv.pendingHome = append(srv.pendingHome, *m)
			return
		}
		panic(fmt.Sprintf("directory: L2 %v overlapping home services for %v", c.id, b))
	}
	if txn := c.busy[b]; txn != nil && !txn.interPending {
		c.queue[b] = append(c.queue[b], *m)
		return
	}
	c.startHomeFwd(m)
}

func (c *L2Ctrl) startHomeFwd(m *network.Message) {
	b := m.Block
	c.Stats.FwdsIn++
	line := c.lookup(b)

	// Data may live in our writeback buffer (PUT racing with the fwd).
	if line == nil || !(line.cs == csM || line.cs == csE || line.cs == csO) || (!line.hasData && line.ownerL1 == topo.None) {
		if w := c.wb[b]; w != nil && w.valid {
			c.serveFwdFromWb(m, w)
			return
		}
		panic(fmt.Sprintf("directory: L2 %v owner-forward %s for %v without data", c.id, kindName(m.Kind), b))
	}

	_, acks, _ := unpackAux(m.Aux)
	srv := &extSrv{kind: m.Kind, replyTo: m.Requestor, acksFor: acks}
	c.ext[b] = srv
	line.pinned = true

	if m.Kind == kFwdGetM {
		if line.ownerL1 != topo.None {
			srv.fwdWait = true
			c.sendToL1(line.ownerL1, b, kFwdGetM, tagExt, 0)
		} else {
			srv.hasData = true
			srv.data = line.data
			srv.dirty = line.dirty
		}
		mask := line.sharers
		for bit := 0; mask != 0; bit++ {
			if mask&(1<<uint(bit)) == 0 {
				continue
			}
			mask &^= 1 << uint(bit)
			srv.acks++
			c.sendToL1(c.l1FromBit(bit), b, kInv, tagExt, 0)
		}
		line.sharers = 0
		c.finishExtIfDone(b, srv)
		return
	}

	// FwdGetS.
	if line.ownerL1 != topo.None {
		srv.fwdWait = true
		srv.prevOwner = line.ownerL1
		c.sendToL1(line.ownerL1, b, kFwdGetS, tagExt, 0)
		return
	}
	srv.prevOwner = topo.None
	// L2 itself holds the data. Chip-level migratory: modified and no
	// local readers.
	if line.cs == csM && line.dirty && line.sharers == 0 {
		srv.hasData = true
		srv.data = line.data
		srv.dirty = line.dirty
		srv.migr = true
		c.finishExtIfDone(b, srv)
		return
	}
	srv.hasData = true
	srv.data = line.data
	srv.dirty = line.dirty
	c.finishExtIfDone(b, srv)
}

// finishExtIfDone completes a home-initiated service once local
// collection is done: reply to the remote requester and update chip
// state.
func (c *L2Ctrl) finishExtIfDone(b mem.Block, srv *extSrv) {
	if srv.fwdWait || srv.acks > 0 {
		return
	}
	line := c.lookup(b)
	switch srv.kind {
	case kFwdGetM:
		c.sys.Net.SendNew(network.Message{
			Src:       c.id,
			Dst:       srv.replyTo,
			Block:     b,
			Kind:      kData,
			Class:     stats.ResponseData,
			HasData:   true,
			Data:      srv.data,
			Dirty:     srv.dirty,
			Aux:       packAux(grantM, srv.acksFor, false),
			Requestor: srv.replyTo,
		})
		c.dropLine(b, line)
	case kFwdGetS:
		if srv.migr {
			// Migratory chip-to-chip transfer: requester gets M; we
			// invalidate entirely.
			c.Stats.MigratoryGrants++
			c.sys.ctr.migratory.Inc()
			c.sys.Net.SendNew(network.Message{
				Src:       c.id,
				Dst:       srv.replyTo,
				Block:     b,
				Kind:      kData,
				Class:     stats.ResponseData,
				HasData:   true,
				Data:      srv.data,
				Dirty:     srv.dirty,
				Aux:       packAux(grantM, 0, true),
				Requestor: srv.replyTo,
			})
			c.dropLine(b, line)
		} else {
			// We keep the data and stay owner (chip state O).
			if line == nil {
				panic(fmt.Sprintf("directory: L2 %v lost line during FwdGetS service for %v", c.id, b))
			}
			line.hasData = true
			line.data = srv.data
			line.dirty = srv.dirty
			if srv.prevOwner != topo.None {
				// The owning L1 degraded itself to S; it is a sharer now
				// and must be invalidated by future writers.
				line.sharers |= c.l1Bit(srv.prevOwner)
				line.ownerL1 = topo.None
			}
			line.cs = csO
			c.sys.Net.SendNew(network.Message{
				Src:       c.id,
				Dst:       srv.replyTo,
				Block:     b,
				Kind:      kData,
				Class:     stats.ResponseData,
				HasData:   true,
				Data:      srv.data,
				Dirty:     srv.dirty,
				Aux:       packAux(grantS, 0, false),
				Requestor: srv.replyTo,
			})
		}
	case kInv:
		c.sys.Net.SendNew(network.Message{
			Src:   c.id,
			Dst:   srv.replyTo,
			Block: b,
			Kind:  kInvAck,
			Class: stats.InvFwdAckTokens,
			Proc:  tagInter,
		})
		c.dropLine(b, line)
	}
	delete(c.ext, b)
	if line := c.lookup(b); line != nil {
		line.pinned = c.busy[b] != nil
	}
	c.drain(b)
}

// dropLine invalidates our copy of b (chip lost all permission).
func (c *L2Ctrl) dropLine(b mem.Block, line *l2Line) {
	if line == nil {
		return
	}
	if c.busy[b] != nil {
		// A local transaction is inter-pending on this very block; keep
		// the reserved (now invalid) line for its grant.
		line.cs = csI
		line.hasData = false
		line.ownerL1 = topo.None
		line.sharers = 0
		return
	}
	c.cache.Invalidate(b)
}

// serveFwdFromWb answers a home forward from the writeback buffer (the
// PUT will be cancelled when its grant arrives).
func (c *L2Ctrl) serveFwdFromWb(m *network.Message, w *wbEntry) {
	b := m.Block
	_, acks, _ := unpackAux(m.Aux)
	gst := grantS
	if m.Kind == kFwdGetM {
		gst = grantM
		w.valid = false
	}
	c.sys.Net.SendNew(network.Message{
		Src:       c.id,
		Dst:       m.Requestor,
		Block:     b,
		Kind:      kData,
		Class:     stats.ResponseData,
		HasData:   true,
		Data:      w.data,
		Dirty:     w.dirty,
		Aux:       packAux(gst, acks, false),
		Requestor: m.Requestor,
	})
}

// admitHomeInv invalidates the whole chip's copy on behalf of a remote
// writer, acking to the requesting chip.
func (c *L2Ctrl) admitHomeInv(m *network.Message) {
	b := m.Block
	if srv := c.ext[b]; srv != nil {
		if srv.kind == -1 {
			srv.pendingHome = append(srv.pendingHome, *m)
			return
		}
		panic(fmt.Sprintf("directory: L2 %v overlapping home inv for %v", c.id, b))
	}
	if txn := c.busy[b]; txn != nil && !txn.interPending {
		c.queue[b] = append(c.queue[b], *m)
		return
	}
	c.Stats.InvsIn++
	line := c.lookup(b)
	if line == nil {
		// Stale sharer entry (we dropped an S line silently, or the copy
		// left in a writeback): ack immediately.
		if w := c.wb[b]; w != nil {
			w.valid = false
		}
		c.sys.Net.SendNew(network.Message{
			Src:   c.id,
			Dst:   m.Requestor,
			Block: b,
			Kind:  kInvAck,
			Class: stats.InvFwdAckTokens,
			Proc:  tagInter,
		})
		return
	}
	srv := &extSrv{kind: kInv, replyTo: m.Requestor}
	c.ext[b] = srv
	line.pinned = true
	if line.ownerL1 != topo.None {
		srv.acks++
		c.sendToL1(line.ownerL1, b, kInv, tagExt, 0)
		line.ownerL1 = topo.None
	}
	mask := line.sharers
	for bit := 0; mask != 0; bit++ {
		if mask&(1<<uint(bit)) == 0 {
			continue
		}
		mask &^= 1 << uint(bit)
		srv.acks++
		c.sendToL1(c.l1FromBit(bit), b, kInv, tagExt, 0)
	}
	line.sharers = 0
	c.finishExtIfDone(b, srv)
}

// handlePut runs the L2 side of an L1's three-phase writeback.
func (c *L2Ctrl) handlePut(m *network.Message) {
	b := m.Block
	if c.busy[b] != nil || c.ext[b] != nil {
		c.queue[b] = append(c.queue[b], *m)
		return
	}
	// Grant immediately; the transaction completes on WbData/WbCancel.
	// Mark busy so conflicting requests defer.
	c.busy[b] = &l2Txn{requestor: m.Requestor, kind: kPut}
	if line := c.lookup(b); line != nil {
		line.pinned = true
	}
	c.sys.Net.SendNew(network.Message{
		Src:   c.id,
		Dst:   m.Src,
		Block: b,
		Kind:  kWbGrant,
		Class: stats.WritebackControl,
	})
}

// handleWbGrant: the home granted OUR put; answer with data or cancel.
func (c *L2Ctrl) handleWbGrant(m *network.Message) {
	b := m.Block
	w := c.wb[b]
	if w == nil {
		panic(fmt.Sprintf("directory: L2 %v WbGrant without PUT for %v", c.id, b))
	}
	delete(c.wb, b)
	if !w.valid {
		c.sys.ctr.wbRace.Inc()
		c.sys.Net.SendNew(network.Message{
			Src:   c.id,
			Dst:   m.Src,
			Block: b,
			Kind:  kWbCancel,
			Class: stats.WritebackControl,
		})
		return
	}
	c.sys.Net.SendNew(network.Message{
		Src:     c.id,
		Dst:     m.Src,
		Block:   b,
		Kind:    kWbData,
		Class:   stats.WritebackData,
		HasData: true,
		Data:    w.data,
		Dirty:   w.dirty,
	})
}

// handleWbData completes a local L1's three-phase writeback at this bank.
func (c *L2Ctrl) handleWbData(m *network.Message) {
	b := m.Block
	txn := c.busy[b]
	if txn == nil || txn.kind != kPut {
		panic(fmt.Sprintf("directory: L2 %v %s without PUT transaction for %v", c.id, kindName(m.Kind), b))
	}
	delete(c.busy, b)
	evictorBit := c.l1Bit(m.Src)
	if m.Kind == kWbData {
		// Accept the data; the evictor was the local owner (E/M).
		if !c.reserve(b) {
			// Extremely unlikely; absorb by writing through to home.
			c.sys.Net.SendNew(network.Message{
				Src: c.id, Dst: c.home(b), Block: b, Kind: kPut,
				Class: stats.WritebackControl,
			})
			c.wb[b] = &wbEntry{data: m.Data, dirty: m.Dirty, valid: true}
		} else {
			line := c.lookup(b)
			line.hasData = true
			line.data = m.Data
			line.dirty = line.dirty || m.Dirty
			if line.ownerL1 == m.Src {
				line.ownerL1 = topo.None
			}
			line.sharers &^= evictorBit
			line.pinned = c.ext[b] != nil
		}
	} else if line := c.lookup(b); line != nil {
		// Cancelled: the copy was consumed by an earlier transaction.
		if line.ownerL1 == m.Src {
			line.ownerL1 = topo.None
		}
		line.sharers &^= evictorBit
		line.pinned = c.ext[b] != nil
	}
	c.drain(b)
}
