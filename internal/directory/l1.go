package directory

import (
	"fmt"

	"tokencmp/internal/cache"
	"tokencmp/internal/cpu"
	"tokencmp/internal/mem"
	"tokencmp/internal/network"
	"tokencmp/internal/sim"
	"tokencmp/internal/stats"
	"tokencmp/internal/topo"
)

// l1State is the MOESI-ish stable state of an L1 line. Intra-CMP
// ownership lives either at one L1 (E or M) or at the L2 bank, so L1
// lines need only I (invalid, implicit), S, E, and M.
type l1State int

const (
	l1S l1State = iota
	l1E
	l1M
)

// l1Line is an L1 cache line.
type l1Line struct {
	st        l1State
	data      uint64
	dirty     bool
	pinned    bool     // line reserved by the outstanding transaction
	holdUntil sim.Time // response-delay mechanism
}

// l1Txn is the single outstanding miss transaction.
type l1Txn struct {
	kind  cpu.AccessKind
	store uint64
	done  func(uint64)
}

// wbEntry buffers a three-phase writeback awaiting its grant.
type wbEntry struct {
	data  uint64
	dirty bool
	valid bool // cleared if a forward/invalidate consumed the line
}

// L1Stats counts per-L1 events.
type L1Stats struct {
	Hits, Misses  uint64
	Writebacks    uint64
	Invalidations uint64
	FwdsServed    uint64
	Migratory     uint64
}

// L1Ctrl is a DirectoryCMP L1 cache controller.
type L1Ctrl struct {
	id        topo.NodeID
	sys       *System
	isInstr   bool
	cmp, proc int

	cache *cache.Array[l1Line]
	txns  map[mem.Block]*l1Txn
	wb    map[mem.Block]*wbEntry

	pend cpu.PendingAccess // access parked across the tag-access delay

	Stats L1Stats
}

// l1AttemptCall is the closure-free ScheduleCall target for the
// tag-access delay.
func l1AttemptCall(ctx, _ any) {
	c := ctx.(*L1Ctrl)
	c.attempt(c.pend.Take())
}

func newL1(sys *System, id topo.NodeID, cmp, proc int, instr bool) *L1Ctrl {
	cfg := sys.Cfg
	return &L1Ctrl{
		id:      id,
		sys:     sys,
		isInstr: instr,
		cmp:     cmp,
		proc:    proc,
		cache:   cache.New[l1Line](cache.Params{SizeBytes: cfg.L1Size, Ways: cfg.L1Ways, BlockSize: mem.BlockSize}),
		txns:    make(map[mem.Block]*l1Txn),
		wb:      make(map[mem.Block]*wbEntry),
	}
}

func (c *L1Ctrl) bank(b mem.Block) topo.NodeID {
	return c.sys.Geom.L2BankFor(c.cmp, b)
}

// Access implements cpu.MemPort.
func (c *L1Ctrl) Access(kind cpu.AccessKind, addr mem.Addr, store uint64, done func(uint64)) {
	if c.isInstr && kind != cpu.IFetch {
		panic("directory: data access routed to L1I")
	}
	b := mem.BlockOf(addr)
	if _, busy := c.txns[b]; busy {
		panic(fmt.Sprintf("directory: L1 %v already busy on %v", c.id, b))
	}
	c.pend.Park("directory: L1", kind, b, store, done)
	c.sys.Eng.ScheduleCall(c.sys.Cfg.L1Latency, l1AttemptCall, c, nil)
}

func (c *L1Ctrl) attempt(kind cpu.AccessKind, b mem.Block, store uint64, done func(uint64)) {
	if l := c.cache.Lookup(b); l != nil {
		s := &l.State
		switch kind {
		case cpu.Load, cpu.IFetch:
			c.Stats.Hits++
			c.sys.ctr.l1Hit.Inc()
			c.cache.TouchLine(l)
			done(s.data)
			return
		default: // Store, Atomic
			if s.st == l1M || s.st == l1E {
				c.Stats.Hits++
				c.sys.ctr.l1Hit.Inc()
				c.cache.TouchLine(l)
				s.st = l1M // silent E→M upgrade
				old := s.data
				s.data = store
				s.dirty = true
				s.holdUntil = c.sys.Eng.Now() + c.sys.Cfg.ResponseDelay
				if kind == cpu.Atomic {
					done(old)
				} else {
					done(0)
				}
				return
			}
		}
	}
	// Miss (or S-upgrade). Reserve the line now so the victim's writeback
	// overlaps the request.
	c.Stats.Misses++
	c.sys.ctr.l1Miss.Inc()
	line, ok := c.reserve(b)
	if !ok {
		// All ways pinned (cannot happen with one outstanding txn, but be
		// safe): retry shortly.
		c.sys.Eng.Schedule(c.sys.Cfg.L1Latency, func() { c.attempt(kind, b, store, done) })
		return
	}
	line.pinned = true
	c.txns[b] = &l1Txn{kind: kind, store: store, done: done}
	req := kGetS
	if kind == cpu.Store || kind == cpu.Atomic {
		req = kGetM
	}
	c.sys.Net.SendNew(network.Message{
		Src:       c.id,
		Dst:       c.bank(b),
		Block:     b,
		Kind:      req,
		Class:     stats.Request,
		Requestor: c.id,
	})
}

// reserve installs a placeholder line for b, writing back any displaced
// owner line. It preserves existing state if b is already resident (an
// S-line upgrading to M keeps its data).
func (c *L1Ctrl) reserve(b mem.Block) (*l1Line, bool) {
	if l := c.cache.Lookup(b); l != nil {
		return &l.State, true
	}
	line, victim, vstate, wasEvicted, ok := c.cache.InstallAvoiding(b, func(st *l1Line) bool { return st.pinned })
	if !ok {
		return nil, false
	}
	if wasEvicted {
		c.evict(victim, vstate)
	}
	return &line.State, true
}

// evict handles a displaced line: E and M lines start a three-phase
// writeback; S lines are dropped silently (the directory's sharer bit
// goes stale, which is benign).
func (c *L1Ctrl) evict(b mem.Block, st l1Line) {
	if st.st == l1S {
		return
	}
	c.Stats.Writebacks++
	c.sys.ctr.l1Writeback.Inc()
	c.wb[b] = &wbEntry{data: st.data, dirty: st.dirty, valid: true}
	c.sys.Net.SendNew(network.Message{
		Src:   c.id,
		Dst:   c.bank(b),
		Block: b,
		Kind:  kPut,
		Class: stats.WritebackControl,
	})
}

// dirL1Handle is the closure-free deferred-handling thunk: the L1
// holds a pooled copy of the message across its tag-access delay (and
// any response-delay hold) and frees it when handling completes.
func dirL1Handle(ctx, arg any) {
	c, m := ctx.(*L1Ctrl), arg.(*network.Message)
	if c.handle(m) {
		c.sys.Net.Free(m)
	}
}

// Recv implements network.Endpoint.
func (c *L1Ctrl) Recv(m *network.Message) {
	c.sys.Eng.ScheduleCall(c.sys.Cfg.L1Latency, dirL1Handle, c, c.sys.Net.CopyOf(m))
}

// handle reports whether it is done with m — false means a
// response-delay hold re-deferred the message, keeping ownership.
func (c *L1Ctrl) handle(m *network.Message) bool {
	switch m.Kind {
	case kData, kGrant:
		c.handleGrant(m)
	case kFwdGetS:
		return c.handleFwdGetS(m)
	case kFwdGetM:
		return c.handleFwdGetM(m)
	case kInv:
		return c.handleInv(m)
	case kWbGrant:
		c.handleWbGrant(m)
	default:
		panic(fmt.Sprintf("directory: L1 %v cannot handle %s", c.id, kindName(m.Kind)))
	}
	return true
}

func (c *L1Ctrl) handleGrant(m *network.Message) {
	b := m.Block
	txn := c.txns[b]
	if txn == nil {
		panic(fmt.Sprintf("directory: L1 %v got grant for %v with no transaction", c.id, b))
	}
	delete(c.txns, b)
	l := c.cache.Lookup(b)
	if l == nil {
		panic(fmt.Sprintf("directory: L1 %v grant for unreserved line %v", c.id, b))
	}
	s := &l.State
	s.pinned = false
	gst, _, _ := unpackAux(m.Aux)
	if m.HasData {
		s.data = m.Data
		s.dirty = m.Dirty
	}
	switch gst {
	case grantS:
		s.st = l1S
	case grantE:
		s.st = l1E
	case grantM:
		s.st = l1M
	}
	c.cache.TouchLine(l)

	var val uint64
	switch txn.kind {
	case cpu.Load, cpu.IFetch:
		val = s.data
	case cpu.Store:
		s.data = txn.store
		s.dirty = true
		s.holdUntil = c.sys.Eng.Now() + c.sys.Cfg.ResponseDelay
	case cpu.Atomic:
		val = s.data
		s.data = txn.store
		s.dirty = true
		s.holdUntil = c.sys.Eng.Now() + c.sys.Cfg.ResponseDelay
	}
	// Close the intra-CMP directory transaction.
	c.sys.Net.SendNew(network.Message{
		Src:   c.id,
		Dst:   c.bank(b),
		Block: b,
		Kind:  kUnblock,
		Class: stats.Unblock,
	})
	txn.done(val)
}

// stateOf finds the line in the cache or the writeback buffer.
func (c *L1Ctrl) stateOf(b mem.Block) (data uint64, dirty bool, inWb bool, l *l1Line) {
	if l := c.cache.Lookup(b); l != nil {
		return l.State.data, l.State.dirty, false, &l.State
	}
	if w := c.wb[b]; w != nil && w.valid {
		return w.data, w.dirty, true, nil
	}
	return 0, false, false, nil
}

// handleFwdGetS serves a read forward from the intra-CMP directory. The
// response routes through the L2 bank (the paper's hierarchical
// artifact). A modified line triggers the migratory optimization:
// invalidate and pass ownership.
func (c *L1Ctrl) handleFwdGetS(m *network.Message) bool {
	b := m.Block
	data, dirty, inWb, l := c.stateOf(b)
	if l != nil && l.holdUntil > c.sys.Eng.Now() {
		c.sys.Eng.ScheduleCallAt(l.holdUntil, dirL1Handle, c, m)
		return false
	}
	c.Stats.FwdsServed++
	migratory := false
	switch {
	case l != nil && l.st == l1M && l.dirty:
		// Migratory sharing: invalidate our copy, pass read/write access.
		migratory = true
		c.Stats.Migratory++
		c.sys.ctr.migratory.Inc()
		c.cache.Invalidate(b)
	case l != nil:
		l.st = l1S // degrade; L2 becomes the on-chip owner of the data
	case inWb:
		// Data lives in the writeback buffer; serve from there (the PUT
		// will be cancelled when its grant arrives if the line is gone —
		// here the copy survives as far as we know, keep it valid).
	default:
		panic(fmt.Sprintf("directory: L1 %v FwdGetS for absent %v", c.id, b))
	}
	c.sys.Net.SendNew(network.Message{
		Src:     c.id,
		Dst:     m.Src, // the L2 bank
		Block:   b,
		Kind:    kFwdResp,
		Class:   stats.ResponseData,
		HasData: true,
		Data:    data,
		Dirty:   dirty,
		Aux:     packAux(grantS, 0, migratory),
		Proc:    m.Proc,
	})
	return true
}

// handleFwdGetM serves a write forward: send data to the L2 bank and
// invalidate.
func (c *L1Ctrl) handleFwdGetM(m *network.Message) bool {
	b := m.Block
	data, dirty, inWb, l := c.stateOf(b)
	if l != nil && l.holdUntil > c.sys.Eng.Now() {
		c.sys.Eng.ScheduleCallAt(l.holdUntil, dirL1Handle, c, m)
		return false
	}
	c.Stats.FwdsServed++
	switch {
	case l != nil:
		c.cache.Invalidate(b)
	case inWb:
		c.wb[b].valid = false // consumed; PUT will be cancelled
	default:
		panic(fmt.Sprintf("directory: L1 %v FwdGetM for absent %v", c.id, b))
	}
	c.sys.Net.SendNew(network.Message{
		Src:     c.id,
		Dst:     m.Src,
		Block:   b,
		Kind:    kFwdResp,
		Class:   stats.ResponseData,
		HasData: true,
		Data:    data,
		Dirty:   dirty,
		Aux:     packAux(grantM, 0, false),
		Proc:    m.Proc,
	})
	return true
}

// handleInv invalidates a (possibly stale) sharer entry and acks to the
// collector named in Requestor.
func (c *L1Ctrl) handleInv(m *network.Message) bool {
	b := m.Block
	if l := c.cache.Lookup(b); l != nil && !l.State.pinned {
		if l.State.holdUntil > c.sys.Eng.Now() {
			c.sys.Eng.ScheduleCallAt(l.State.holdUntil, dirL1Handle, c, m)
			return false
		}
		c.cache.Invalidate(b)
	} else if w := c.wb[b]; w != nil {
		w.valid = false
	}
	c.Stats.Invalidations++
	c.sys.Net.SendNew(network.Message{
		Src:   c.id,
		Dst:   m.Requestor,
		Block: b,
		Kind:  kInvAck,
		Class: stats.InvFwdAckTokens,
		Proc:  m.Proc,
	})
	return true
}

// handleWbGrant completes (or cancels) a three-phase writeback.
func (c *L1Ctrl) handleWbGrant(m *network.Message) {
	b := m.Block
	w := c.wb[b]
	if w == nil {
		panic(fmt.Sprintf("directory: L1 %v WbGrant without PUT for %v", c.id, b))
	}
	delete(c.wb, b)
	if !w.valid {
		c.sys.ctr.wbRace.Inc()
		c.sys.Net.SendNew(network.Message{
			Src:   c.id,
			Dst:   m.Src,
			Block: b,
			Kind:  kWbCancel,
			Class: stats.WritebackControl,
		})
		return
	}
	c.sys.Net.SendNew(network.Message{
		Src:     c.id,
		Dst:     m.Src,
		Block:   b,
		Kind:    kWbData,
		Class:   stats.WritebackData,
		HasData: true,
		Data:    w.data,
		Dirty:   w.dirty,
	})
}
