package directory

import (
	"fmt"
	"testing"

	"tokencmp/internal/cpu"
	"tokencmp/internal/mem"
	"tokencmp/internal/network"
	"tokencmp/internal/sim"
)

// TestFlagSpinInvalidation reproduces the barrier flag pattern: three
// processors spin-loading a flag while a fourth flips it with pauses.
// Every spinner must observe each new value eventually.
func TestFlagSpinInvalidation(t *testing.T) {
	eng, sys := testSystem(t, true) // zero-dir exposes the timing race
	const flag = mem.Addr(0x80080)
	b := mem.BlockOf(flag)
	const rounds = 6

	seen := map[int]uint64{1: 0, 2: 0, 3: 0}
	var spin func(proc int)
	spin = func(proc int) {
		d, _ := sys.Ports(proc)
		d.Access(cpu.Load, flag, 0, func(v uint64) {
			if v > seen[proc] {
				seen[proc] = v
			}
			if v >= rounds {
				return
			}
			spin(proc)
		})
	}
	for p := 1; p <= 3; p++ {
		spin(p)
	}

	var trace []string
	sys.Net.OnSend = func(m *network.Message) {
		if m.Block == b && len(trace) < 400 {
			trace = append(trace, fmt.Sprintf("%v %v->%v %s aux=%d data=%d hasData=%v proc=%d",
				eng.Now(), m.Src, m.Dst, kindName(m.Kind), m.Aux, m.Data, m.HasData, m.Proc))
		}
	}
	defer func() {
		if t.Failed() {
			for _, l := range trace {
				t.Log(l)
			}
		}
	}()

	writer, _ := sys.Ports(0)
	var flip func(v uint64)
	flip = func(v uint64) {
		if v > rounds {
			return
		}
		eng.Schedule(sim.NS(3000), func() {
			writer.Access(cpu.Store, flag, v, func(uint64) { flip(v + 1) })
		})
	}
	flip(1)

	done := func() bool {
		for _, v := range seen {
			if v < rounds {
				return false
			}
		}
		return true
	}
	if !eng.RunUntil(done, 5_000_000) {
		t.Fatalf("spinners stuck: seen=%v now=%v\nstate:\n%s", seen, eng.Now(), sys.dumpBlock(b))
	}
}
