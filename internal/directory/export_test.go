package directory

import (
	"fmt"

	"tokencmp/internal/mem"
)

// dumpBlock prints all protocol state for b, for test debugging.
func (s *System) dumpBlock(b mem.Block) string {
	out := ""
	for c := range s.Homes {
		h := s.Homes[c]
		if hl, ok := h.dir[b]; ok {
			out += fmt.Sprintf("home%d: owner=%d sharers=%b val=%d busy=%v queue=%d\n",
				c, hl.owner, hl.sharers, hl.value, h.busy[b] != nil, len(h.queue[b]))
		}
	}
	for c := range s.L2s {
		for bk := range s.L2s[c] {
			l2 := s.L2s[c][bk]
			if l := l2.lookup(b); l != nil {
				out += fmt.Sprintf("L2[%d][%d]: cs=%v hasData=%v data=%d dirty=%v owner=%v sharers=%b pinned=%v busy=%v ext=%v queue=%d\n",
					c, bk, l.cs, l.hasData, l.data, l.dirty, l.ownerL1, l.sharers, l.pinned,
					l2.busy[b] != nil, l2.ext[b] != nil, len(l2.queue[b]))
			}
			if w := l2.wb[b]; w != nil {
				out += fmt.Sprintf("L2[%d][%d]: wb valid=%v data=%d\n", c, bk, w.valid, w.data)
			}
		}
	}
	for c := range s.L1Ds {
		for p := range s.L1Ds[c] {
			for _, l1 := range []*L1Ctrl{s.L1Ds[c][p], s.L1Is[c][p]} {
				if l := l1.cache.Lookup(b); l != nil {
					out += fmt.Sprintf("L1[%v]: st=%d data=%d dirty=%v pinned=%v\n",
						l1.id, l.State.st, l.State.data, l.State.dirty, l.State.pinned)
				}
				if w := l1.wb[b]; w != nil {
					out += fmt.Sprintf("L1[%v]: wb valid=%v data=%d\n", l1.id, w.valid, w.data)
				}
			}
		}
	}
	return out
}
