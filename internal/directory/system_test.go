package directory

import (
	"testing"

	"tokencmp/internal/cpu"
	"tokencmp/internal/mem"
	"tokencmp/internal/network"
	"tokencmp/internal/sim"
	"tokencmp/internal/topo"
)

func testSystem(t *testing.T, zero bool) (*sim.Engine, *System) {
	t.Helper()
	eng := sim.NewEngine()
	g := topo.NewGeometry(2, 2, 1)
	cfg := DefaultConfig(g)
	if zero {
		cfg = ZeroDirConfig(g)
	}
	cfg.L1Size = 4 << 10
	cfg.L2BankSize = 32 << 10
	return eng, NewSystem(eng, cfg, network.Default())
}

func run(t *testing.T, eng *sim.Engine, cond func() bool, what string) {
	t.Helper()
	if !eng.RunUntil(cond, 2_000_000) {
		t.Fatalf("%s: did not complete (events=%d, pending=%d, now=%v)",
			what, eng.Executed, eng.Pending(), eng.Now())
	}
}

func TestDirSingleLoad(t *testing.T) {
	eng, sys := testSystem(t, false)
	d, _ := sys.Ports(0)
	var done bool
	var val uint64
	d.Access(cpu.Load, 0x1000, 0, func(v uint64) { done = true; val = v })
	run(t, eng, func() bool { return done }, "load")
	if val != 0 {
		t.Errorf("load = %d, want 0", val)
	}
}

func TestDirStoreThenRemoteLoad(t *testing.T) {
	eng, sys := testSystem(t, false)
	p0, _ := sys.Ports(0)
	p3, _ := sys.Ports(3)
	var done bool
	p0.Access(cpu.Store, 0x2000, 7, func(uint64) { done = true })
	run(t, eng, func() bool { return done }, "store")

	done = false
	var val uint64
	p3.Access(cpu.Load, 0x2000, 0, func(v uint64) { done = true; val = v })
	run(t, eng, func() bool { return done }, "remote load")
	if val != 7 {
		t.Errorf("remote load = %d, want 7 (migratory transfer)", val)
	}
}

func TestDirLocalSharingThenUpgrade(t *testing.T) {
	eng, sys := testSystem(t, false)
	p0, _ := sys.Ports(0)
	p1, _ := sys.Ports(1) // same CMP
	var n int
	p0.Access(cpu.Load, 0x3000, 0, func(uint64) { n++ })
	run(t, eng, func() bool { return n == 1 }, "p0 load")
	p1.Access(cpu.Load, 0x3000, 0, func(uint64) { n++ })
	run(t, eng, func() bool { return n == 2 }, "p1 load")
	// Now p1 upgrades to M: p0 must be invalidated.
	p1.Access(cpu.Store, 0x3000, 9, func(uint64) { n++ })
	run(t, eng, func() bool { return n == 3 }, "p1 store")
	var val uint64
	p0.Access(cpu.Load, 0x3000, 0, func(v uint64) { n++; val = v })
	run(t, eng, func() bool { return n == 4 }, "p0 reload")
	if val != 9 {
		t.Errorf("p0 reload = %d, want 9", val)
	}
}

func TestDirAtomicSerializes(t *testing.T) {
	for _, zero := range []bool{false, true} {
		eng, sys := testSystem(t, zero)
		const addr = 0x4000
		results := make([]uint64, 4)
		cnt := 0
		for i := 0; i < 4; i++ {
			i := i
			d, _ := sys.Ports(i)
			d.Access(cpu.Atomic, addr, uint64(i+1), func(old uint64) {
				results[i] = old
				cnt++
			})
		}
		run(t, eng, func() bool { return cnt == 4 }, "atomics")
		seen := map[uint64]bool{}
		for _, r := range results {
			if seen[r] {
				t.Fatalf("duplicate swap result %d: %v", r, results)
			}
			seen[r] = true
		}
		if !seen[0] {
			t.Errorf("no swap saw initial value: %v", results)
		}
	}
}

func TestDirContendedStores(t *testing.T) {
	eng, sys := testSystem(t, false)
	const addr = 0x5000
	total := 0
	var issue func(proc, n int)
	issue = func(proc, n int) {
		if n == 0 {
			return
		}
		d, _ := sys.Ports(proc)
		d.Access(cpu.Store, addr, uint64(proc*100+n), func(uint64) {
			total++
			issue(proc, n-1)
		})
	}
	for p := 0; p < 4; p++ {
		issue(p, 5)
	}
	run(t, eng, func() bool { return total == 20 }, "contended stores")
}

func TestDirEvictionWriteback(t *testing.T) {
	eng, sys := testSystem(t, false)
	d, _ := sys.Ports(0)
	// 4KB 4-way L1 with 64B blocks: 16 sets. Write 3 blocks mapping to
	// the same set beyond associativity to force writebacks, then read
	// the first back.
	setStride := mem.Addr(16 * 64)
	base := mem.Addr(0x8000)
	n := 0
	var write func(i int)
	write = func(i int) {
		if i == 6 {
			return
		}
		d.Access(cpu.Store, base+mem.Addr(i)*setStride, uint64(100+i), func(uint64) {
			n++
			write(i + 1)
		})
	}
	write(0)
	run(t, eng, func() bool { return n == 6 }, "writes")
	var val uint64
	done := false
	d.Access(cpu.Load, base, 0, func(v uint64) { done = true; val = v })
	run(t, eng, func() bool { return done }, "readback")
	if val != 100 {
		t.Errorf("readback = %d, want 100", val)
	}
}
