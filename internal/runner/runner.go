// Package runner provides a bounded worker pool for fanning independent
// work items — simulation runs, model-checker frontier expansions — out
// across goroutines. Callers address results by item index (each item
// writes its own pre-allocated slot), so merged output is independent of
// scheduling order and byte-identical to a serial loop.
package runner

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultJobs is the pool width used when none is requested: one worker
// per available CPU.
func DefaultJobs() int { return runtime.GOMAXPROCS(0) }

// Pool is a bounded worker pool. The zero value is not usable; build
// one with New.
type Pool struct {
	jobs int
}

// New returns a pool running at most jobs items concurrently.
// jobs <= 0 selects DefaultJobs().
func New(jobs int) *Pool {
	if jobs <= 0 {
		jobs = DefaultJobs()
	}
	return &Pool{jobs: jobs}
}

// Jobs reports the pool width.
func (p *Pool) Jobs() int { return p.jobs }

// Run invokes fn(i) for every i in [0, n), at most Jobs() at a time.
// Indices are dispatched in ascending order from a shared counter, so
// load imbalance between items self-corrects. If any fn fails, Run stops
// dispatching new items, waits for in-flight ones, and returns the error
// with the lowest index — the same error a serial loop would report,
// because every index below a dispatched one has also been dispatched.
func (p *Pool) Run(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if p.jobs == 1 || n == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	workers := p.jobs
	if workers > n {
		workers = n
	}
	var (
		next     atomic.Int64
		failed   atomic.Bool
		mu       sync.Mutex
		errIdx   = -1
		firstErr error
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				// Check for failure before claiming an index, never
				// after: a claimed index must always run, or the
				// lowest-index-error guarantee breaks (a lower index
				// could be claimed, then skipped when a higher one
				// fails first).
				if failed.Load() {
					return
				}
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					mu.Lock()
					if errIdx == -1 || i < errIdx {
						errIdx, firstErr = i, err
					}
					mu.Unlock()
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// RunCtx is Run with cooperative cancellation: once ctx is cancelled,
// no further index starts its work — already-running items finish on
// their own (hand them the same ctx if they should stop early too, the
// way machine.RunCtx's engine does). Indices skipped by cancellation
// report ctx.Err(), so the lowest-index-error rule makes a cancelled
// call return ctx.Err() unless a real fn failure happened at a lower
// index first. A nil or never-cancellable ctx is exactly Run.
func (p *Pool) RunCtx(ctx context.Context, n int, fn func(i int) error) error {
	if ctx == nil || ctx.Done() == nil {
		return p.Run(n, fn)
	}
	return p.Run(n, func(i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		return fn(i)
	})
}

// Stripe invokes fn(i) for every i in [0, n) by handing each worker a
// strided subset (worker w gets w, w+W, w+2W, ...). Cheaper than Run for
// very large n with very cheap fn — one dispatch per worker instead of
// one per item — at the cost of static load balance. fn must not fail.
func (p *Pool) Stripe(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers := p.jobs
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				fn(i)
			}
		}(w)
	}
	wg.Wait()
}

// Map runs fn for every index in [0, n) through the pool and returns
// the results in index order, or the lowest-index error.
func Map[T any](p *Pool, n int, fn func(i int) (T, error)) ([]T, error) {
	return MapCtx(nil, p, n, fn)
}

// MapCtx is Map with cooperative cancellation (see RunCtx): a cancelled
// ctx stops dispatch and the call returns ctx.Err() unless a real fn
// failure happened at a lower index first.
func MapCtx[T any](ctx context.Context, p *Pool, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := p.RunCtx(ctx, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
