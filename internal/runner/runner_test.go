package runner

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestRunCoversEveryIndex(t *testing.T) {
	for _, jobs := range []int{1, 2, 8} {
		n := 100
		slots := make([]int, n)
		err := New(jobs).Run(n, func(i int) error {
			slots[i] = i + 1
			return nil
		})
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		for i, v := range slots {
			if v != i+1 {
				t.Fatalf("jobs=%d: slot %d = %d, want %d", jobs, i, v, i+1)
			}
		}
	}
}

func TestRunBoundsConcurrency(t *testing.T) {
	const jobs = 3
	var cur, max atomic.Int64
	err := New(jobs).Run(64, func(i int) error {
		c := cur.Add(1)
		for {
			m := max.Load()
			if c <= m || max.CompareAndSwap(m, c) {
				break
			}
		}
		cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if m := max.Load(); m > jobs {
		t.Fatalf("observed %d concurrent items, pool width %d", m, jobs)
	}
}

func TestRunReturnsLowestIndexError(t *testing.T) {
	for _, jobs := range []int{1, 4, 16} {
		err := New(jobs).Run(50, func(i int) error {
			if i == 7 || i == 31 {
				return fmt.Errorf("item %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "item 7 failed" {
			t.Fatalf("jobs=%d: got %v, want the index-7 error", jobs, err)
		}
	}
}

func TestRunEmptyAndDefaults(t *testing.T) {
	if err := New(0).Run(0, func(int) error { return errors.New("never") }); err != nil {
		t.Fatalf("n=0 ran fn: %v", err)
	}
	if j := New(0).Jobs(); j < 1 {
		t.Fatalf("default jobs = %d, want >= 1", j)
	}
	if j := New(-3).Jobs(); j != DefaultJobs() {
		t.Fatalf("jobs(-3) = %d, want DefaultJobs()=%d", j, DefaultJobs())
	}
}

func TestStripeCoversEveryIndex(t *testing.T) {
	for _, jobs := range []int{1, 2, 7} {
		n := 53
		slots := make([]int32, n)
		New(jobs).Stripe(n, func(i int) { atomic.AddInt32(&slots[i], 1) })
		for i, v := range slots {
			if v != 1 {
				t.Fatalf("jobs=%d: index %d visited %d times", jobs, i, v)
			}
		}
	}
}

func TestMapOrdersResults(t *testing.T) {
	out, err := Map(New(4), 20, func(i int) (string, error) {
		return fmt.Sprintf("r%d", i), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != fmt.Sprintf("r%d", i) {
			t.Fatalf("out[%d] = %q", i, v)
		}
	}
	if _, err := Map(New(4), 5, func(i int) (int, error) {
		if i == 2 {
			return 0, errors.New("boom")
		}
		return i, nil
	}); err == nil {
		t.Fatal("Map swallowed the error")
	}
}

// TestRunCtxStopsDispatchOnCancel cancels the context from inside an
// item and asserts no index starts afterwards, with ctx.Err() reported.
func TestRunCtxStopsDispatchOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const n = 1000
	var started atomic.Int64
	err := New(4).RunCtx(ctx, n, func(i int) error {
		started.Add(1)
		if i == 10 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := started.Load(); got >= n {
		t.Errorf("all %d items ran despite cancellation", got)
	}
}

// TestRunCtxPrefersLowerIndexError asserts a real failure at a lower
// index wins over the cancellation error at higher ones.
func TestRunCtxPrefersLowerIndexError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	boom := errors.New("boom")
	err := New(1).RunCtx(ctx, 100, func(i int) error {
		if i == 3 {
			cancel()
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

// TestRunCtxNilAndBackgroundMatchRun asserts the zero-cost paths: a nil
// or never-cancellable context runs every index exactly like Run.
func TestRunCtxNilAndBackgroundMatchRun(t *testing.T) {
	for _, ctx := range []context.Context{nil, context.Background()} {
		var ran atomic.Int64
		if err := New(4).RunCtx(ctx, 50, func(i int) error { ran.Add(1); return nil }); err != nil {
			t.Fatalf("ctx=%v: err = %v", ctx, err)
		}
		if ran.Load() != 50 {
			t.Errorf("ctx=%v: ran %d items, want 50", ctx, ran.Load())
		}
	}
}

// TestMapCtxCancelled asserts MapCtx surfaces ctx.Err() once cancelled.
func TestMapCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := MapCtx(ctx, New(2), 8, func(i int) (int, error) { return i, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
