//go:build !simdebug

package network

// PoisonEnabled reports whether recycled messages are scrambled
// (-tags simdebug builds only).
const PoisonEnabled = false

// poison is a no-op in release builds; the compiler erases the call.
func poison(*Message) {}
