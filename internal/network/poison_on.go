//go:build simdebug

package network

import (
	"tokencmp/internal/mem"
	"tokencmp/internal/sim"
	"tokencmp/internal/stats"
	"tokencmp/internal/topo"
)

// PoisonEnabled reports whether recycled messages are scrambled
// (-tags simdebug builds only).
const PoisonEnabled = true

// poison scrambles every field of a reclaimed message with values no
// legitimate message carries, so a handler that retained the pointer
// past Recv (breaking the ownership contract) reads garbage — block
// numbers, token counts, and node IDs that corrupt its figures or trip
// its own panics — instead of silently seeing whatever the next send
// happened to write.
func poison(m *Message) {
	*m = Message{
		Src:       topo.NodeID(-0x7eadbeef),
		Dst:       topo.NodeID(-0x7eadbeef),
		Block:     mem.Block(0xdeadbeefdeadbeef),
		Kind:      -0x7eadbeef,
		Class:     stats.TrafficClass(0x7f),
		Size:      -1,
		Tokens:    -0x7eadbeef,
		Owner:     true,
		HasData:   true,
		Dirty:     true,
		Data:      0xdeadbeefdeadbeef,
		Requestor: topo.NodeID(-0x7eadbeef),
		Proc:      -0x7eadbeef,
		Aux:       -0x7eadbeef,
		SentAt:    sim.Time(-1),
	}
}
