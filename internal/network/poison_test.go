//go:build simdebug

package network

import (
	"testing"

	"tokencmp/internal/sim"
	"tokencmp/internal/topo"
)

// retainer deliberately breaks the ownership contract by holding the
// delivered pointer.
type retainer struct{ last *Message }

func (r *retainer) Recv(m *Message) { r.last = m }

// TestPoisonScramblesRetainedMessage proves the simdebug contract
// enforcement: a handler that retains a delivered message past Recv
// observes poison values, not the fields it was delivered with. This is
// what makes the poison-tagged CI run of the protocol suites a real
// retention check — any stack that kept a pointer would compute figures
// from garbage and fail its tests.
func TestPoisonScramblesRetainedMessage(t *testing.T) {
	if !PoisonEnabled {
		t.Fatal("simdebug build without poison")
	}
	eng := sim.NewEngine()
	g := topo.NewGeometry(2, 2, 1)
	n := New(eng, g, Default())
	r := &retainer{}
	for _, id := range g.AllNodes() {
		n.Attach(id, r)
	}
	n.SendNew(Message{Src: g.L1DNode(0, 0), Dst: g.L1DNode(0, 1), Block: 7, Data: 99, Tokens: 2})
	eng.Run(0)
	if r.last == nil {
		t.Fatal("no delivery")
	}
	if r.last.Block == 7 || r.last.Data == 99 || r.last.Tokens == 2 {
		t.Errorf("retained message not scrambled: %v", r.last)
	}
}
