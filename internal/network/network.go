// Package network models the two fully-connected, unordered interconnects
// of the M-CMP system: an on-chip network inside each CMP and a global
// network between CMPs (Figure 1, Table 3). Links have both latency and
// bandwidth; messages serialize on their directed source→destination
// link, so bursts queue. Delivery order between different links is
// unordered (it depends only on timing), as the paper requires of token
// coherence's substrate.
//
// # Message ownership
//
// Messages are pooled. The network owns every message it delivers: after
// an Endpoint's Recv returns, the message is reclaimed and its memory
// reused for a future send. Handlers that need a message beyond Recv
// must either copy the fields they keep or take an explicit pooled copy
// with CopyOf (returned later with Free). Building with -tags simdebug
// scrambles every reclaimed message, so a handler that breaks the
// contract corrupts its own figures instead of failing silently.
package network

import (
	"fmt"
	"math/rand"

	"tokencmp/internal/counters"
	"tokencmp/internal/mem"
	"tokencmp/internal/sim"
	"tokencmp/internal/stats"
	"tokencmp/internal/topo"
)

// Control and data message sizes in bytes (Section 8: "Data messages are
// 72 bytes and control messages 8 bytes").
const (
	ControlSize = 8
	DataSize    = 72
)

// Message is one protocol message. Kind is a protocol-private opcode;
// the token-coherence payload fields (Tokens, Owner, HasData, Data) are
// inline because the substrate's conservation monitor must see them on
// every message regardless of protocol.
type Message struct {
	Src, Dst topo.NodeID
	Block    mem.Block
	Kind     int
	Class    stats.TrafficClass
	Size     int

	// Token-coherence payload.
	Tokens  int    // tokens carried (0 for directory protocols)
	Owner   bool   // carries the owner token
	HasData bool   // carries a data payload
	Dirty   bool   // data is modified relative to memory
	Data    uint64 // modeled block value, for serial-view checking

	// Small protocol scratch fields.
	Requestor topo.NodeID // original requesting cache, for forwards
	Proc      int         // global processor index (persistent requests)
	Aux       int         // protocol-specific
	SentAt    sim.Time    // stamped by the network on send

	// pooled marks a message currently sitting in the freelist; Send and
	// Free check it to catch use-after-free and double-free early.
	pooled bool
}

func (m *Message) String() string {
	return fmt.Sprintf("msg{%v->%v %v kind=%d tok=%d own=%v data=%v}",
		m.Src, m.Dst, m.Block, m.Kind, m.Tokens, m.Owner, m.HasData)
}

// Endpoint receives delivered messages. The delivered message belongs
// to the network: it is reclaimed as soon as Recv returns (see the
// package ownership contract).
type Endpoint interface {
	Recv(m *Message)
}

// LinkParams describe one directed link.
type LinkParams struct {
	Latency    sim.Time
	BytesPerNS int // bandwidth; 0 means infinite
	Level      stats.Level
}

// Config holds the two link classes (Table 3 defaults via Default) and
// the fault-injection plans (zero value: a perfectly reliable network).
type Config struct {
	OnChip  LinkParams
	OffChip LinkParams
	Faults  FaultConfig
}

// Default returns the Table 3 interconnect parameters: on-chip 2 ns
// one-way at 64 GB/s; between chips 20 ns at 16 GB/s.
func Default() Config {
	return Config{
		OnChip:  LinkParams{Latency: sim.NS(2), BytesPerNS: 64, Level: stats.IntraCMP},
		OffChip: LinkParams{Latency: sim.NS(20), BytesPerNS: 16, Level: stats.InterCMP},
	}
}

// Network delivers messages between endpoints.
type Network struct {
	Eng  *sim.Engine
	Geom topo.Geometry
	Cfg  Config

	// Dense routing state, indexed by NodeID and src*numNodes+dst. The
	// old map lookups were the hottest line of Send/deliver profiles.
	numNodes  int
	endpoints []Endpoint
	nextFree  []sim.Time

	// free is the message pool. Messages are recycled after delivery,
	// so the steady-state send path allocates nothing.
	free []*Message

	// Traffic accumulates the Figure 7 byte counts.
	Traffic stats.Traffic

	// Uniform event-counter handles, pre-resolved by WireCounters so the
	// send path pays one nil check and plain word adds (no map lookups).
	ctrMsgIntra, ctrMsgInter     *counters.Counter
	ctrBytesIntra, ctrBytesInter *counters.Counter
	ctrHopIntra, ctrHopInter     *counters.Counter
	ctrDropped, ctrDup           *counters.Counter
	ctrReordered, ctrRetx        *counters.Counter

	// Fault-injection state (see faults.go). Classify maps a message to
	// its fault class; protocols with recovery machinery install it at
	// system construction. frng is the single seeded fault PRNG — nil
	// unless Cfg.Faults enables a knob, so fault-free runs never draw.
	// lastArrive clamps per-link delivery order under jitter: only the
	// explicit reorder knob may violate same-link FIFO.
	Classify   func(m *Message) FaultClass
	frng       *rand.Rand
	faultsOn   bool
	lastArrive []sim.Time

	// InFlight counts undelivered messages; the coherence monitor uses it
	// and tests use it to detect quiescence.
	InFlight int

	// Monitor, if set, observes every message at delivery time (before
	// the endpoint) — the token-conservation checker hooks here.
	Monitor func(m *Message)

	// OnSend, if set, observes every message as it is sent.
	OnSend func(m *Message)

	// In-flight token accounting for the conservation monitor, dense
	// by block: these counters are touched on every monitored message,
	// so the old per-message map assigns and deletes are replaced by
	// two array indexes into a paged table (see inFlightCount). Entries
	// stay zero after their tokens drain; TokenAudit-style consumers
	// skip them via EachInFlight.
	inFlight [](*[inFlightPageSize]blockCount)
}

// blockCount tallies one block's undelivered tokens and owner tokens.
type blockCount struct{ tokens, owners int32 }

// The in-flight table is a page directory over fixed-size dense pages
// allocated on first touch: workload addresses cluster into a handful
// of contiguous regions (locks at 0x100000; the commercial regions at
// 0x04_0000_0000 steps), so each region lands in one or two 64K-block
// pages and a single flat slice indexed by block — region bases reach
// block ~2^31 — would be hopeless.
const (
	inFlightPageBits = 16
	inFlightPageSize = 1 << inFlightPageBits
)

// New builds a network over geometry g.
func New(eng *sim.Engine, g topo.Geometry, cfg Config) *Network {
	n := g.NumNodes()
	nw := &Network{
		Eng:        eng,
		Geom:       g,
		Cfg:        cfg,
		numNodes:   n,
		endpoints:  make([]Endpoint, n),
		nextFree:   make([]sim.Time, n*n),
		lastArrive: make([]sim.Time, n*n),
	}
	if cfg.Faults.Enabled() {
		nw.faultsOn = true
		nw.frng = rand.New(rand.NewSource(cfg.Faults.Seed))
	}
	return nw
}

// inFlightCount returns the counter cell for block b, growing the page
// directory and allocating b's page on first touch.
func (n *Network) inFlightCount(b mem.Block) *blockCount {
	page := uint64(b) >> inFlightPageBits
	if page >= uint64(len(n.inFlight)) {
		grown := make([](*[inFlightPageSize]blockCount), page+1)
		copy(grown, n.inFlight)
		n.inFlight = grown
	}
	p := n.inFlight[page]
	if p == nil {
		p = new([inFlightPageSize]blockCount)
		n.inFlight[page] = p
	}
	return &p[uint64(b)&(inFlightPageSize-1)]
}

// TokensInFlight reports the undelivered tokens for block b.
func (n *Network) TokensInFlight(b mem.Block) int {
	if page := uint64(b) >> inFlightPageBits; page < uint64(len(n.inFlight)) && n.inFlight[page] != nil {
		return int(n.inFlight[page][uint64(b)&(inFlightPageSize-1)].tokens)
	}
	return 0
}

// OwnersInFlight reports the undelivered owner tokens for block b.
func (n *Network) OwnersInFlight(b mem.Block) int {
	if page := uint64(b) >> inFlightPageBits; page < uint64(len(n.inFlight)) && n.inFlight[page] != nil {
		return int(n.inFlight[page][uint64(b)&(inFlightPageSize-1)].owners)
	}
	return 0
}

// EachInFlight calls fn for every block with in-flight tokens or owner
// tokens (the conservation auditor's view of the wires). It scans the
// touched pages, so it is for auditors, not hot paths.
func (n *Network) EachInFlight(fn func(b mem.Block, tokens, owners int)) {
	for page, p := range n.inFlight {
		if p == nil {
			continue
		}
		for i := range p {
			if c := p[i]; c.tokens != 0 || c.owners != 0 {
				fn(mem.Block(uint64(page)<<inFlightPageBits|uint64(i)), int(c.tokens), int(c.owners))
			}
		}
	}
}

// WireCounters registers the network's uniform event counters in cs
// (the machine-wide registry) and keeps the handles for the send path.
func (n *Network) WireCounters(cs *counters.Set) {
	n.ctrMsgIntra = cs.Counter(counters.NetMsgIntraCMP)
	n.ctrMsgInter = cs.Counter(counters.NetMsgInterCMP)
	n.ctrBytesIntra = cs.Counter(counters.NetBytesIntraCMP)
	n.ctrBytesInter = cs.Counter(counters.NetBytesInterCMP)
	n.ctrHopIntra = cs.Counter(counters.NetHopIntraCMP)
	n.ctrHopInter = cs.Counter(counters.NetHopInterCMP)
	n.ctrDropped = cs.Counter(counters.NetDropped)
	n.ctrDup = cs.Counter(counters.NetDup)
	n.ctrReordered = cs.Counter(counters.NetReordered)
	n.ctrRetx = cs.Counter(counters.NetRetx)
}

// Attach registers the endpoint for id.
func (n *Network) Attach(id topo.NodeID, e Endpoint) { n.endpoints[id] = e }

// NewMessage returns a zeroed message from the pool. The caller fills
// it and hands it to Send (or SendAfter), transferring ownership back
// to the network.
func (n *Network) NewMessage() *Message {
	if k := len(n.free); k > 0 {
		m := n.free[k-1]
		n.free[k-1] = nil
		n.free = n.free[:k-1]
		*m = Message{}
		return m
	}
	return &Message{}
}

// CopyOf returns a pooled copy of m owned by the caller — the escape
// hatch for handlers that must hold a delivered message past Recv
// (e.g. to model an array-access delay before processing). Return it
// with Free, or hand it to Send.
func (n *Network) CopyOf(m *Message) *Message {
	cp := n.NewMessage()
	*cp = *m
	cp.pooled = false
	return cp
}

// Free returns a caller-owned message to the pool.
func (n *Network) Free(m *Message) {
	if m.pooled {
		panic(fmt.Sprintf("network: double free of %v", m))
	}
	poison(m)
	m.pooled = true
	n.free = append(n.free, m)
}

// SendNew copies tmpl into a pooled message and sends it. This is the
// idiomatic protocol send: the literal stays on the caller's stack and
// the wire copy comes from the pool, so steady-state sends allocate
// nothing.
func (n *Network) SendNew(tmpl Message) {
	m := n.NewMessage()
	*m = tmpl
	n.Send(m)
}

// sendCall is the closure-free ScheduleCall target for SendAfter.
func sendCall(ctx, arg any) { ctx.(*Network).Send(arg.(*Message)) }

// SendAfter sends m (pool-owned, from NewMessage or CopyOf) after delay
// d, modeling controller work between decision and injection. It
// allocates nothing.
func (n *Network) SendAfter(d sim.Time, m *Message) {
	n.Eng.ScheduleCall(d, sendCall, n, m)
}

// link picks the parameters for src→dst. Memory controllers sit off-chip
// behind the CMP's memory interface (Table 3: "latency to mem controller
// 20ns (off-chip)"), so any link touching a memory controller uses
// off-chip parameters even within a CMP.
func (n *Network) link(src, dst topo.NodeID) LinkParams {
	if n.Geom.KindOf(src) == topo.Mem || n.Geom.KindOf(dst) == topo.Mem {
		return n.Cfg.OffChip
	}
	if n.Geom.SameCMP(src, dst) {
		return n.Cfg.OnChip
	}
	return n.Cfg.OffChip
}

// deliverCall is the closure-free ScheduleCall target for Send.
func deliverCall(ctx, arg any) { ctx.(*Network).deliver(arg.(*Message)) }

// Send queues m for delivery and takes ownership of it: after the
// receiving endpoint's Recv returns, m is reclaimed into the pool.
// Messages on the same directed link serialize through its bandwidth;
// messages on different links are independent and may be reordered
// relative to each other.
func (n *Network) Send(m *Message) { n.send(m, 0, false) }

// send is the full injection path. extra delays the message's departure
// beyond the link's serialization point (the retransmit shim's timeout);
// isDup marks an injected duplicate so a duplicate never re-duplicates.
// When fault injection is enabled the PRNG is consumed in a fixed order
// per message — jitter, reorder, duplicate, drop — so a run is a pure
// function of (fault seed, plans, workload).
func (n *Network) send(m *Message, extra sim.Time, isDup bool) {
	if m.pooled {
		panic(fmt.Sprintf("network: send of freed message %v", m))
	}
	if m.Size == 0 {
		if m.HasData {
			m.Size = DataSize
		} else {
			m.Size = ControlSize
		}
	}
	m.SentAt = n.Eng.Now()
	if n.OnSend != nil {
		n.OnSend(m)
	}
	lp := n.link(m.Src, m.Dst)
	// Traffic accounting mirrors the physical path (Figure 7): a message
	// between caches on one chip uses that chip's interconnect once; a
	// message that leaves a chip uses the source chip's interconnect, the
	// global interconnect, and — if the destination is a cache — the
	// destination chip's interconnect. Memory controllers hang off the
	// global side, so their hops add no on-chip traffic.
	if lp.Level == stats.IntraCMP {
		n.Traffic.Add(stats.IntraCMP, m.Class, m.Size)
		if n.ctrMsgIntra != nil {
			n.ctrMsgIntra.Inc()
			n.ctrBytesIntra.Add(uint64(m.Size))
			n.ctrHopIntra.Inc()
		}
	} else {
		n.Traffic.Add(stats.InterCMP, m.Class, m.Size)
		if n.ctrMsgInter != nil {
			n.ctrMsgInter.Inc()
			n.ctrBytesInter.Add(uint64(m.Size))
			n.ctrHopInter.Inc()
		}
		if n.Geom.KindOf(m.Src) != topo.Mem {
			n.Traffic.Add(stats.IntraCMP, m.Class, m.Size)
			if n.ctrHopIntra != nil {
				n.ctrHopIntra.Inc()
				n.ctrBytesIntra.Add(uint64(m.Size))
			}
		}
		if n.Geom.KindOf(m.Dst) != topo.Mem {
			n.Traffic.Add(stats.IntraCMP, m.Class, m.Size)
			if n.ctrHopIntra != nil {
				n.ctrHopIntra.Inc()
				n.ctrBytesIntra.Add(uint64(m.Size))
			}
		}
	}
	n.InFlight++
	if m.Tokens > 0 || m.Owner {
		c := n.inFlightCount(m.Block)
		c.tokens += int32(m.Tokens)
		if m.Owner {
			c.owners++
		}
	}

	// Fault draws, in fixed order (see send's contract). Protected
	// messages only ever see jitter; droppable messages may additionally
	// be reordered, duplicated, and dropped; retx messages may be
	// dropped (the shim re-sends them from drop).
	hold := extra
	reordered := false
	dropped := false
	if n.faultsOn {
		plan := n.plan(lp)
		cls := n.classOf(m)
		if plan.Jitter > 0 {
			hold += sim.Time(n.frng.Int63n(int64(plan.Jitter) + 1))
		}
		if cls == FaultDroppable {
			if plan.Reorder > 0 && n.frng.Float64() < plan.Reorder {
				reordered = true
				w := plan.ReorderWindow
				if w == 0 {
					w = 4 * lp.Latency
				}
				hold += sim.Time(n.frng.Int63n(int64(w) + 1))
				if n.ctrReordered != nil {
					n.ctrReordered.Inc()
				}
			}
			// Duplicates are restricted to token-free control messages:
			// duplicating a token or data carrier would mint tokens and
			// break conservation, which no receiver-side dedup exists to
			// absorb. Droppable classes are token-free by policy anyway;
			// the guard makes the invariant local.
			if !isDup && plan.Dup > 0 && m.Tokens == 0 && !m.Owner && !m.HasData &&
				n.frng.Float64() < plan.Dup {
				cp := n.CopyOf(m)
				if n.ctrDup != nil {
					n.ctrDup.Inc()
				}
				n.send(cp, extra, true)
			}
		}
		if cls != FaultProtected && plan.Drop > 0 && n.frng.Float64() < plan.Drop {
			dropped = true
		}
	}

	ser := sim.Time(0)
	if lp.BytesPerNS > 0 {
		ser = sim.Time(int64(m.Size) * int64(sim.Nanosecond) / int64(lp.BytesPerNS))
	}
	key := int(m.Src)*n.numNodes + int(m.Dst)
	depart := n.Eng.Now()
	if free := n.nextFree[key]; free > depart {
		depart = free
	}
	depart += ser
	n.nextFree[key] = depart

	arrive := depart + lp.Latency + hold
	if !reordered {
		// Per-link FIFO clamp: jitter (and retransmit delay) may not
		// reorder messages within one directed link — protocols without
		// recovery machinery rely on that order. Without faults this is
		// a no-op (arrivals are already monotone per link); only the
		// explicit reorder knob above bypasses it.
		if last := n.lastArrive[key]; arrive < last {
			arrive = last
		}
		n.lastArrive[key] = arrive
	}
	if dropped {
		n.Eng.ScheduleCallAt(arrive, dropCall, n, m)
		return
	}
	n.Eng.ScheduleCallAt(arrive, deliverCall, n, m)
}

func (n *Network) deliver(m *Message) {
	n.InFlight--
	if m.Tokens > 0 || m.Owner {
		c := n.inFlightCount(m.Block)
		c.tokens -= int32(m.Tokens)
		if m.Owner {
			c.owners--
		}
	}
	if n.Monitor != nil {
		n.Monitor(m)
	}
	ep := n.endpoints[m.Dst]
	if ep == nil {
		panic(fmt.Sprintf("network: no endpoint attached for %v (message %v)", m.Dst, m))
	}
	ep.Recv(m)
	// The ownership contract: the endpoint is done with m once Recv
	// returns; reclaim it for the next send.
	n.Free(m)
}

// Broadcast sends a pooled copy of template to each destination in
// dsts, skipping the source itself. The template stays caller-owned.
func (n *Network) Broadcast(template *Message, dsts []topo.NodeID) {
	for _, d := range dsts {
		if d == template.Src {
			continue
		}
		cp := n.NewMessage()
		*cp = *template
		cp.pooled = false
		cp.Dst = d
		n.Send(cp)
	}
}
