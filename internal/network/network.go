// Package network models the two fully-connected, unordered interconnects
// of the M-CMP system: an on-chip network inside each CMP and a global
// network between CMPs (Figure 1, Table 3). Links have both latency and
// bandwidth; messages serialize on their directed source→destination
// link, so bursts queue. Delivery order between different links is
// unordered (it depends only on timing), as the paper requires of token
// coherence's substrate.
package network

import (
	"fmt"

	"tokencmp/internal/mem"
	"tokencmp/internal/sim"
	"tokencmp/internal/stats"
	"tokencmp/internal/topo"
)

// Control and data message sizes in bytes (Section 8: "Data messages are
// 72 bytes and control messages 8 bytes").
const (
	ControlSize = 8
	DataSize    = 72
)

// Message is one protocol message. Kind is a protocol-private opcode;
// the token-coherence payload fields (Tokens, Owner, HasData, Data) are
// inline because the substrate's conservation monitor must see them on
// every message regardless of protocol.
type Message struct {
	Src, Dst topo.NodeID
	Block    mem.Block
	Kind     int
	Class    stats.TrafficClass
	Size     int

	// Token-coherence payload.
	Tokens  int    // tokens carried (0 for directory protocols)
	Owner   bool   // carries the owner token
	HasData bool   // carries a data payload
	Dirty   bool   // data is modified relative to memory
	Data    uint64 // modeled block value, for serial-view checking

	// Small protocol scratch fields.
	Requestor topo.NodeID // original requesting cache, for forwards
	Proc      int         // global processor index (persistent requests)
	Aux       int         // protocol-specific
	SentAt    sim.Time    // stamped by the network on send
}

func (m *Message) String() string {
	return fmt.Sprintf("msg{%v->%v %v kind=%d tok=%d own=%v data=%v}",
		m.Src, m.Dst, m.Block, m.Kind, m.Tokens, m.Owner, m.HasData)
}

// Endpoint receives delivered messages.
type Endpoint interface {
	Recv(m *Message)
}

// LinkParams describe one directed link.
type LinkParams struct {
	Latency    sim.Time
	BytesPerNS int // bandwidth; 0 means infinite
	Level      stats.Level
}

// Config holds the two link classes (Table 3 defaults via Default).
type Config struct {
	OnChip  LinkParams
	OffChip LinkParams
}

// Default returns the Table 3 interconnect parameters: on-chip 2 ns
// one-way at 64 GB/s; between chips 20 ns at 16 GB/s.
func Default() Config {
	return Config{
		OnChip:  LinkParams{Latency: sim.NS(2), BytesPerNS: 64, Level: stats.IntraCMP},
		OffChip: LinkParams{Latency: sim.NS(20), BytesPerNS: 16, Level: stats.InterCMP},
	}
}

type linkKey struct{ src, dst topo.NodeID }

// Network delivers messages between endpoints.
type Network struct {
	Eng  *sim.Engine
	Geom topo.Geometry
	Cfg  Config

	endpoints map[topo.NodeID]Endpoint
	nextFree  map[linkKey]sim.Time

	// Traffic accumulates the Figure 7 byte counts.
	Traffic stats.Traffic

	// InFlight counts undelivered messages; the coherence monitor uses it
	// and tests use it to detect quiescence.
	InFlight int

	// Monitor, if set, observes every message at delivery time (before
	// the endpoint) — the token-conservation checker hooks here.
	Monitor func(m *Message)

	// OnSend, if set, observes every message as it is sent.
	OnSend func(m *Message)

	// In-flight token accounting for the conservation monitor.
	TokensInFlight map[mem.Block]int
	OwnersInFlight map[mem.Block]int
}

// New builds a network over geometry g.
func New(eng *sim.Engine, g topo.Geometry, cfg Config) *Network {
	return &Network{
		Eng:            eng,
		Geom:           g,
		Cfg:            cfg,
		endpoints:      make(map[topo.NodeID]Endpoint),
		nextFree:       make(map[linkKey]sim.Time),
		TokensInFlight: make(map[mem.Block]int),
		OwnersInFlight: make(map[mem.Block]int),
	}
}

// Attach registers the endpoint for id.
func (n *Network) Attach(id topo.NodeID, e Endpoint) { n.endpoints[id] = e }

// link picks the parameters for src→dst. Memory controllers sit off-chip
// behind the CMP's memory interface (Table 3: "latency to mem controller
// 20ns (off-chip)"), so any link touching a memory controller uses
// off-chip parameters even within a CMP.
func (n *Network) link(src, dst topo.NodeID) LinkParams {
	if n.Geom.KindOf(src) == topo.Mem || n.Geom.KindOf(dst) == topo.Mem {
		return n.Cfg.OffChip
	}
	if n.Geom.SameCMP(src, dst) {
		return n.Cfg.OnChip
	}
	return n.Cfg.OffChip
}

// Send queues m for delivery. Messages on the same directed link
// serialize through its bandwidth; messages on different links are
// independent and may be reordered relative to each other.
func (n *Network) Send(m *Message) {
	if m.Size == 0 {
		if m.HasData {
			m.Size = DataSize
		} else {
			m.Size = ControlSize
		}
	}
	m.SentAt = n.Eng.Now()
	if n.OnSend != nil {
		n.OnSend(m)
	}
	lp := n.link(m.Src, m.Dst)
	// Traffic accounting mirrors the physical path (Figure 7): a message
	// between caches on one chip uses that chip's interconnect once; a
	// message that leaves a chip uses the source chip's interconnect, the
	// global interconnect, and — if the destination is a cache — the
	// destination chip's interconnect. Memory controllers hang off the
	// global side, so their hops add no on-chip traffic.
	if lp.Level == stats.IntraCMP {
		n.Traffic.Add(stats.IntraCMP, m.Class, m.Size)
	} else {
		n.Traffic.Add(stats.InterCMP, m.Class, m.Size)
		if n.Geom.KindOf(m.Src) != topo.Mem {
			n.Traffic.Add(stats.IntraCMP, m.Class, m.Size)
		}
		if n.Geom.KindOf(m.Dst) != topo.Mem {
			n.Traffic.Add(stats.IntraCMP, m.Class, m.Size)
		}
	}
	n.InFlight++
	if m.Tokens > 0 {
		n.TokensInFlight[m.Block] += m.Tokens
	}
	if m.Owner {
		n.OwnersInFlight[m.Block]++
	}

	ser := sim.Time(0)
	if lp.BytesPerNS > 0 {
		ser = sim.Time(int64(m.Size) * int64(sim.Nanosecond) / int64(lp.BytesPerNS))
	}
	key := linkKey{m.Src, m.Dst}
	depart := n.Eng.Now()
	if free, ok := n.nextFree[key]; ok && free > depart {
		depart = free
	}
	depart += ser
	n.nextFree[key] = depart
	deliverAt := depart + lp.Latency

	n.Eng.ScheduleAt(deliverAt, func() { n.deliver(m) })
}

func (n *Network) deliver(m *Message) {
	n.InFlight--
	if m.Tokens > 0 {
		n.TokensInFlight[m.Block] -= m.Tokens
		if n.TokensInFlight[m.Block] == 0 {
			delete(n.TokensInFlight, m.Block)
		}
	}
	if m.Owner {
		n.OwnersInFlight[m.Block]--
		if n.OwnersInFlight[m.Block] == 0 {
			delete(n.OwnersInFlight, m.Block)
		}
	}
	if n.Monitor != nil {
		n.Monitor(m)
	}
	ep, ok := n.endpoints[m.Dst]
	if !ok {
		panic(fmt.Sprintf("network: no endpoint attached for %v (message %v)", m.Dst, m))
	}
	ep.Recv(m)
}

// Broadcast sends a copy of template to each destination in dsts,
// skipping the source itself.
func (n *Network) Broadcast(template *Message, dsts []topo.NodeID) {
	for _, d := range dsts {
		if d == template.Src {
			continue
		}
		cp := *template
		cp.Dst = d
		n.Send(&cp)
	}
}
