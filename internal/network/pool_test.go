package network

import (
	"testing"

	"tokencmp/internal/sim"
	"tokencmp/internal/topo"
)

// countSink counts deliveries without retaining the message.
type countSink struct{ n int }

func (s *countSink) Recv(*Message) { s.n++ }

func poolNet() (*sim.Engine, *Network, topo.Geometry) {
	eng := sim.NewEngine()
	g := topo.NewGeometry(2, 2, 1)
	n := New(eng, g, Default())
	for _, id := range g.AllNodes() {
		n.Attach(id, &countSink{})
	}
	return eng, n, g
}

// TestPoolRecyclesMessages asserts a delivered message returns to the
// freelist and is handed out again by the next send.
func TestPoolRecyclesMessages(t *testing.T) {
	eng, n, g := poolNet()
	n.SendNew(Message{Src: g.L1DNode(0, 0), Dst: g.L1DNode(0, 1)})
	eng.Run(0)
	if len(n.free) != 1 {
		t.Fatalf("freelist has %d messages after delivery, want 1", len(n.free))
	}
	recycled := n.free[0]
	if m := n.NewMessage(); m != recycled {
		t.Error("NewMessage did not reuse the recycled message")
	} else if *m != (Message{}) {
		t.Errorf("recycled message not zeroed: %v", m)
	}
}

// TestCopyOfFreeRoundTrip asserts the handler escape hatch: a pooled
// copy is independent of the original and returns to the pool on Free.
func TestCopyOfFreeRoundTrip(t *testing.T) {
	_, n, g := poolNet()
	orig := &Message{Src: g.L1DNode(0, 0), Dst: g.L1DNode(0, 1), Data: 42, Tokens: 3}
	cp := n.CopyOf(orig)
	if cp == orig || cp.Data != 42 || cp.Tokens != 3 {
		t.Fatalf("CopyOf = %v (same pointer: %v)", cp, cp == orig)
	}
	n.Free(cp)
	if len(n.free) != 1 {
		t.Fatalf("freelist has %d messages after Free, want 1", len(n.free))
	}
}

// TestDoubleFreePanics asserts the pool catches double frees.
func TestDoubleFreePanics(t *testing.T) {
	_, n, _ := poolNet()
	m := n.CopyOf(&Message{})
	n.Free(m)
	defer func() {
		if recover() == nil {
			t.Error("double Free did not panic")
		}
	}()
	n.Free(m)
}

// TestSendOfFreedPanics asserts a freed message cannot be sent.
func TestSendOfFreedPanics(t *testing.T) {
	_, n, g := poolNet()
	m := n.CopyOf(&Message{Src: g.L1DNode(0, 0), Dst: g.L1DNode(0, 1)})
	n.Free(m)
	defer func() {
		if recover() == nil {
			t.Error("Send of freed message did not panic")
		}
	}()
	n.Send(m)
}

// TestSteadyStateSendDoesNotAllocate pins the pooled send→deliver path
// (control message, no token accounting) at zero allocations.
func TestSteadyStateSendDoesNotAllocate(t *testing.T) {
	eng, n, g := poolNet()
	src, dst := g.L1DNode(0, 0), g.L1DNode(0, 1)
	// Warm the pool and the event queue.
	for i := 0; i < 8; i++ {
		n.SendNew(Message{Src: src, Dst: dst})
	}
	eng.Run(0)
	avg := testing.AllocsPerRun(1000, func() {
		n.SendNew(Message{Src: src, Dst: dst})
		eng.Run(0)
	})
	if avg != 0 {
		t.Errorf("send→deliver allocates %.2f per message, want 0", avg)
	}
}

// TestBroadcastDrawsFromPool asserts broadcast copies are recycled and
// reused rather than freshly allocated each wave.
func TestBroadcastDrawsFromPool(t *testing.T) {
	eng, n, g := poolNet()
	tmpl := &Message{Src: g.L1DNode(0, 0), Block: 1}
	dsts := g.AllNodes()
	n.Broadcast(tmpl, dsts)
	eng.Run(0)
	want := g.NumNodes() - 1
	if len(n.free) != want {
		t.Fatalf("freelist has %d messages after broadcast, want %d", len(n.free), want)
	}
	avg := testing.AllocsPerRun(100, func() {
		n.Broadcast(tmpl, dsts)
		eng.Run(0)
	})
	if avg != 0 {
		t.Errorf("broadcast wave allocates %.2f, want 0", avg)
	}
}
