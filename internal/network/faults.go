// Fault injection: deterministic, seeded link faults — message loss,
// duplication, reordering, and latency jitter — configured per link
// class through Config.Faults. The injector exists to test the paper's
// robustness claim: token coherence's timeout + persistent-request
// machinery is supposed to make forward progress without a well-behaved
// interconnect, so the interconnect must be able to misbehave.
//
// # Determinism
//
// All fault decisions come from one PRNG seeded by FaultConfig.Seed and
// drawn in a fixed order on each send (jitter, reorder, duplicate,
// drop). The same (seed, plan, workload) triple replays to the identical
// event sequence; no global rand, no wall clock (the simdet analyzer
// checks this package too). With every knob at zero the injector is
// completely inert: no PRNG is created, no draw is made, and the
// schedule is byte-identical to a fault-free build.
//
// # Message classes
//
// Faults are class-aware via Network.Classify. Protocols that have
// recovery machinery mark messages droppable; everything else is
// protected. With Classify unset (directory, hammer), every message is
// protected and the drop/dup/reorder knobs are honest no-ops — those
// protocols have no timeout/retry path, so "drop their messages" is not
// a scenario they claim to survive. Jitter applies to all classes: it
// varies latency without losing messages, and a per-link FIFO clamp
// keeps same-link delivery order intact for protected traffic (only the
// explicit reorder knob may violate it).
//
// Token- or data-carrying messages must not simply vanish (that would
// leak tokens forever, which even the paper's protocol cannot recover
// from without the token-recreation backstop). The FaultRetx class
// models a lightweight ack+retransmit shim: a dropped message is
// re-injected after RetxTimeout, paying bandwidth and latency again.
// The re-send happens inside the drop event, so the conservation
// monitor's in-flight tallies never see a window where tokens are
// neither held nor on the wire — TokenAudit balances at every instant.
package network

import (
	"tokencmp/internal/sim"
	"tokencmp/internal/stats"
)

// FaultClass partitions messages by how the injector may treat them.
// The protocol assigns classes through Network.Classify.
type FaultClass uint8

const (
	// FaultProtected messages are never dropped, duplicated, or
	// reordered (jitter still applies, FIFO-clamped per link). This is
	// the default for every message when Classify is unset, and for
	// persistent-request table maintenance even in token protocols:
	// losing or reordering activate/deactivate would corrupt the
	// distributed tables with no recovery path.
	FaultProtected FaultClass = iota

	// FaultDroppable messages may be dropped, duplicated, and
	// reordered freely: the protocol's own timeout machinery recovers
	// (transient requests and their forwards in token coherence).
	FaultDroppable

	// FaultRetx messages carry tokens or data, so a drop is covered by
	// the ack+retransmit shim: the message is re-injected after
	// RetxTimeout instead of vanishing. They are never duplicated or
	// reordered (the shim's sequence numbers would suppress both).
	FaultRetx
)

// FaultPlan holds the fault knobs for one link class. The zero value
// injects nothing.
type FaultPlan struct {
	Drop    float64 // per-message loss probability in [0,1)
	Dup     float64 // per-message duplication probability in [0,1)
	Reorder float64 // probability a droppable message is held back

	// ReorderWindow bounds the extra hold applied to a reordered
	// message; 0 means 4x the link latency.
	ReorderWindow sim.Time

	// Jitter adds a uniform [0, Jitter] delay to every message on the
	// link (all classes; per-link FIFO order is preserved unless the
	// reorder knob fires).
	Jitter sim.Time
}

func (p FaultPlan) enabled() bool {
	return p.Drop > 0 || p.Dup > 0 || p.Reorder > 0 || p.Jitter > 0
}

// FaultConfig seeds and scopes the injector. The zero value disables
// fault injection entirely (no PRNG, byte-identical schedules).
type FaultConfig struct {
	// Seed drives the single fault PRNG. Runs are replayable from
	// (Seed, plans): the same configuration produces the identical
	// fault pattern and therefore the identical simulation.
	Seed int64

	// OnChip and OffChip are the per-link-class plans, matching the
	// two link classes of Config.
	OnChip, OffChip FaultPlan

	// RetxTimeout is the ack+retransmit shim's resend delay for
	// dropped FaultRetx messages; 0 means 4x the link latency.
	RetxTimeout sim.Time
}

// Enabled reports whether any fault knob is set.
func (f FaultConfig) Enabled() bool {
	return f.OnChip.enabled() || f.OffChip.enabled()
}

// UniformFaults builds a FaultConfig that applies the same plan to both
// link classes — the shape behind the cmds' -drop/-dup/-reorder/-jitter
// flags.
func UniformFaults(seed int64, drop, dup, reorder float64, jitter sim.Time) FaultConfig {
	p := FaultPlan{Drop: drop, Dup: dup, Reorder: reorder, Jitter: jitter}
	return FaultConfig{Seed: seed, OnChip: p, OffChip: p}
}

// plan returns the fault plan for the link class lp belongs to.
func (n *Network) plan(lp LinkParams) *FaultPlan {
	if lp.Level == stats.IntraCMP {
		return &n.Cfg.Faults.OnChip
	}
	return &n.Cfg.Faults.OffChip
}

// classOf applies the protocol's classifier, defaulting to protected.
func (n *Network) classOf(m *Message) FaultClass {
	if n.Classify == nil {
		return FaultProtected
	}
	return n.Classify(m)
}

// dropCall is the closure-free ScheduleCall target for an injected loss.
func dropCall(ctx, arg any) { ctx.(*Network).drop(arg.(*Message)) }

// drop consumes a message at its would-be arrival time. The message has
// been in flight until now, so the conservation monitor's accounting is
// unwound exactly as deliver would: InFlight and the per-block
// token/owner tallies both decrement — a dropped monitored message must
// not haunt the audit. FaultRetx messages then re-enter the network in
// this same event (the retransmit shim), re-incrementing the tallies
// before any other event can observe a gap.
func (n *Network) drop(m *Message) {
	n.InFlight--
	if m.Tokens > 0 || m.Owner {
		c := n.inFlightCount(m.Block)
		c.tokens -= int32(m.Tokens)
		if m.Owner {
			c.owners--
		}
	}
	if n.ctrDropped != nil {
		n.ctrDropped.Inc()
	}
	if n.classOf(m) == FaultRetx {
		if n.ctrRetx != nil {
			n.ctrRetx.Inc()
		}
		d := n.Cfg.Faults.RetxTimeout
		if d == 0 {
			d = 4 * n.link(m.Src, m.Dst).Latency
		}
		// Retransmit: the same message re-enters the send path after
		// the shim's timeout, paying serialization and latency again
		// and re-rolling the fault dice (a retransmit can itself be
		// dropped; with Drop < 1 delivery is eventually certain, and
		// Drop = 1.0 on a retx class is a documented livelock, not a
		// supported configuration).
		n.send(m, d, false)
		return
	}
	n.Free(m)
}
