package network

import (
	"testing"

	"tokencmp/internal/mem"
	"tokencmp/internal/sim"
	"tokencmp/internal/stats"
	"tokencmp/internal/topo"
)

type sink struct {
	got []Message // copied: delivered messages are reclaimed after Recv
	at  []sim.Time
	eng *sim.Engine
}

func (s *sink) Recv(m *Message) {
	s.got = append(s.got, *m)
	s.at = append(s.at, s.eng.Now())
}

func testNet(t *testing.T) (*sim.Engine, *Network, topo.Geometry, map[topo.NodeID]*sink) {
	t.Helper()
	eng := sim.NewEngine()
	g := topo.NewGeometry(2, 2, 1)
	n := New(eng, g, Default())
	sinks := map[topo.NodeID]*sink{}
	for _, id := range g.AllNodes() {
		s := &sink{eng: eng}
		sinks[id] = s
		n.Attach(id, s)
	}
	return eng, n, g, sinks
}

func TestOnChipLatency(t *testing.T) {
	eng, n, g, sinks := testNet(t)
	src, dst := g.L1DNode(0, 0), g.L1DNode(0, 1)
	n.Send(&Message{Src: src, Dst: dst, Size: 8})
	eng.Run(0)
	// 8 bytes at 64 B/ns = 0.125ns serialization + 2ns latency.
	want := sim.PS(125) + sim.NS(2)
	if sinks[dst].at[0] != want {
		t.Errorf("delivery at %v, want %v", sinks[dst].at[0], want)
	}
}

func TestOffChipLatency(t *testing.T) {
	eng, n, g, sinks := testNet(t)
	src, dst := g.L1DNode(0, 0), g.L1DNode(1, 0)
	n.Send(&Message{Src: src, Dst: dst, Size: 8})
	eng.Run(0)
	// 8 bytes at 16 B/ns = 0.5ns + 20ns latency.
	want := sim.PS(500) + sim.NS(20)
	if sinks[dst].at[0] != want {
		t.Errorf("delivery at %v, want %v", sinks[dst].at[0], want)
	}
}

func TestMemoryLinksAreOffChip(t *testing.T) {
	eng, n, g, sinks := testNet(t)
	src, dst := g.L1DNode(0, 0), g.MemNode(0) // same CMP, but memory is off-chip
	n.Send(&Message{Src: src, Dst: dst, Size: 8})
	eng.Run(0)
	if sinks[dst].at[0] < sim.NS(20) {
		t.Errorf("memory delivery at %v, want >= 20ns", sinks[dst].at[0])
	}
}

func TestBandwidthSerialization(t *testing.T) {
	eng, n, g, sinks := testNet(t)
	src, dst := g.L1DNode(0, 0), g.L1DNode(0, 1)
	// Two 64-byte messages on one link: the second serializes behind the
	// first (1ns each at 64 B/ns).
	n.Send(&Message{Src: src, Dst: dst, Size: 64})
	n.Send(&Message{Src: src, Dst: dst, Size: 64})
	eng.Run(0)
	d := sinks[dst].at[1] - sinks[dst].at[0]
	if d != sim.NS(1) {
		t.Errorf("serialization gap = %v, want 1ns", d)
	}
}

func TestPerLinkFIFO(t *testing.T) {
	eng, n, g, sinks := testNet(t)
	src, dst := g.L1DNode(0, 0), g.L2Node(0, 0)
	for i := 0; i < 5; i++ {
		n.Send(&Message{Src: src, Dst: dst, Aux: i})
	}
	eng.Run(0)
	for i, m := range sinks[dst].got {
		if m.Aux != i {
			t.Fatalf("link reordered messages: %d at position %d", m.Aux, i)
		}
	}
}

func TestDefaultSizes(t *testing.T) {
	eng, n, g, sinks := testNet(t)
	src, dst := g.L1DNode(0, 0), g.L1DNode(0, 1)
	n.Send(&Message{Src: src, Dst: dst})                // control
	n.Send(&Message{Src: src, Dst: dst, HasData: true}) // data
	eng.Run(0)
	if sinks[dst].got[0].Size != ControlSize || sinks[dst].got[1].Size != DataSize {
		t.Errorf("sizes = %d, %d; want %d, %d",
			sinks[dst].got[0].Size, sinks[dst].got[1].Size, ControlSize, DataSize)
	}
}

func TestTrafficAccounting(t *testing.T) {
	eng, n, g, _ := testNet(t)
	// On-chip cache-to-cache: intra only.
	n.Send(&Message{Src: g.L1DNode(0, 0), Dst: g.L1DNode(0, 1), Size: 8, Class: stats.Request})
	// Cross-chip cache-to-cache: inter once + intra on both chips.
	n.Send(&Message{Src: g.L1DNode(0, 0), Dst: g.L1DNode(1, 0), Size: 8, Class: stats.Request})
	// Cache-to-memory: inter + source-chip intra only.
	n.Send(&Message{Src: g.L1DNode(0, 0), Dst: g.MemNode(0), Size: 8, Class: stats.Request})
	eng.Run(0)
	if got := n.Traffic.Bytes[stats.IntraCMP][stats.Request]; got != 8+16+8 {
		t.Errorf("intra bytes = %d, want 32", got)
	}
	if got := n.Traffic.Bytes[stats.InterCMP][stats.Request]; got != 16 {
		t.Errorf("inter bytes = %d, want 16", got)
	}
}

func TestBroadcastSkipsSource(t *testing.T) {
	eng, n, g, sinks := testNet(t)
	src := g.L1DNode(0, 0)
	tmpl := &Message{Src: src, Block: 1}
	n.Broadcast(tmpl, g.AllNodes())
	eng.Run(0)
	if len(sinks[src].got) != 0 {
		t.Error("broadcast delivered to source")
	}
	total := 0
	for _, s := range sinks {
		total += len(s.got)
	}
	if total != g.NumNodes()-1 {
		t.Errorf("deliveries = %d, want %d", total, g.NumNodes()-1)
	}
}

func TestTokenInFlightAccounting(t *testing.T) {
	eng, n, g, _ := testNet(t)
	n.Send(&Message{Src: g.L1DNode(0, 0), Dst: g.L1DNode(0, 1), Block: 9, Tokens: 5, Owner: true, HasData: true})
	if n.TokensInFlight(9) != 5 || n.OwnersInFlight(9) != 1 {
		t.Fatalf("in-flight = %d/%d, want 5/1", n.TokensInFlight(9), n.OwnersInFlight(9))
	}
	blocks := 0
	n.EachInFlight(func(b mem.Block, tokens, owners int) {
		blocks++
		if b != 9 || tokens != 5 || owners != 1 {
			t.Errorf("EachInFlight reported b=%v tokens=%d owners=%d, want 9/5/1", b, tokens, owners)
		}
	})
	if blocks != 1 {
		t.Errorf("EachInFlight visited %d blocks, want 1", blocks)
	}
	eng.Run(0)
	if n.TokensInFlight(9) != 0 || n.OwnersInFlight(9) != 0 {
		t.Error("in-flight counters not cleared after delivery")
	}
	n.EachInFlight(func(b mem.Block, tokens, owners int) {
		t.Errorf("EachInFlight visited %v (%d/%d) after all deliveries", b, tokens, owners)
	})
	// Commercial-workload regions sit at block ~2^31: the paged table
	// must carry far-apart blocks without materializing the gap.
	far := mem.BlockOf(0x1C_0000_0000)
	n.Send(&Message{Src: g.L1DNode(0, 0), Dst: g.L1DNode(0, 1), Block: far, Tokens: 2, HasData: true})
	if n.TokensInFlight(far) != 2 || n.TokensInFlight(far-1) != 0 {
		t.Fatalf("far-block in-flight = %d (neighbor %d), want 2 (0)", n.TokensInFlight(far), n.TokensInFlight(far-1))
	}
	blocks = 0
	n.EachInFlight(func(b mem.Block, tokens, owners int) {
		blocks++
		if b != far || tokens != 2 || owners != 0 {
			t.Errorf("EachInFlight reported b=%v tokens=%d owners=%d, want %v/2/0", b, tokens, owners, far)
		}
	})
	if blocks != 1 {
		t.Errorf("EachInFlight visited %d blocks, want 1", blocks)
	}
	eng.Run(0)
	if n.TokensInFlight(far) != 0 {
		t.Error("far-block counter not cleared after delivery")
	}
}
