package network

import (
	"testing"

	"tokencmp/internal/counters"
	"tokencmp/internal/sim"
	"tokencmp/internal/topo"
)

// faultNet builds a 2-CMP network with the given fault config, a
// classifier mapping every message to cls, and wired counters.
func faultNet(t *testing.T, fc FaultConfig, cls FaultClass) (*sim.Engine, *Network, topo.Geometry, map[topo.NodeID]*sink, *counters.Set) {
	t.Helper()
	eng := sim.NewEngine()
	g := topo.NewGeometry(2, 2, 1)
	cfg := Default()
	cfg.Faults = fc
	n := New(eng, g, cfg)
	n.Classify = func(*Message) FaultClass { return cls }
	cs := counters.NewSet()
	n.WireCounters(cs)
	sinks := map[topo.NodeID]*sink{}
	for _, id := range g.AllNodes() {
		s := &sink{eng: eng}
		sinks[id] = s
		n.Attach(id, s)
	}
	return eng, n, g, sinks, cs
}

// TestZeroFaultConfigIsInert pins the byte-identity contract: a fault
// config with a seed but every knob at zero must not change a single
// delivery time relative to a network built without one.
func TestZeroFaultConfigIsInert(t *testing.T) {
	engA, nA, g, sinksA := testNet(t)
	engB, nB, _, sinksB, _ := faultNet(t, FaultConfig{Seed: 99}, FaultDroppable)
	for i := 0; i < 6; i++ {
		mA := Message{Src: g.L1DNode(0, 0), Dst: g.L1DNode(1, 0), Aux: i, Size: 64}
		mB := mA
		nA.SendNew(mA)
		nB.SendNew(mB)
	}
	engA.Run(0)
	engB.Run(0)
	dst := g.L1DNode(1, 0)
	a, b := sinksA[dst], sinksB[dst]
	if len(a.at) != len(b.at) {
		t.Fatalf("deliveries: %d with zero faults vs %d without", len(b.at), len(a.at))
	}
	for i := range a.at {
		if a.at[i] != b.at[i] || a.got[i].Aux != b.got[i].Aux {
			t.Errorf("delivery %d: %v/%d with zero faults vs %v/%d without",
				i, b.at[i], b.got[i].Aux, a.at[i], a.got[i].Aux)
		}
	}
}

// TestDroppableDropAccounting: a dropped monitored message must unwind
// the in-flight count and the per-block token tallies exactly as a
// delivery would — the conservation auditor may never see tokens stuck
// on a wire that already lost them.
func TestDroppableDropAccounting(t *testing.T) {
	eng, n, g, sinks, cs := faultNet(t, UniformFaults(1, 1.0, 0, 0, 0), FaultDroppable)
	n.Send(&Message{Src: g.L1DNode(0, 0), Dst: g.L1DNode(0, 1), Block: 7, Tokens: 3, Owner: true, HasData: true})
	if n.TokensInFlight(7) != 3 || n.OwnersInFlight(7) != 1 {
		t.Fatalf("pre-drop in-flight = %d/%d, want 3/1", n.TokensInFlight(7), n.OwnersInFlight(7))
	}
	eng.Run(0)
	if got := len(sinks[g.L1DNode(0, 1)].got); got != 0 {
		t.Errorf("delivered %d messages with drop=1.0, want 0", got)
	}
	if n.InFlight != 0 || n.TokensInFlight(7) != 0 || n.OwnersInFlight(7) != 0 {
		t.Errorf("post-drop accounting: InFlight=%d tokens=%d owners=%d, want all 0",
			n.InFlight, n.TokensInFlight(7), n.OwnersInFlight(7))
	}
	if cs.Value(counters.NetDropped) != 1 {
		t.Errorf("net.dropped = %d, want 1", cs.Value(counters.NetDropped))
	}
}

// TestRetxDropHasNoAuditGap is the satellite regression for the
// exempt/retransmit path: drop a token-carrying message classed
// FaultRetx and assert that at every inter-event instant the tokens are
// either delivered or accounted in flight — the shim re-sends inside
// the drop event, so the audit must balance after every single event.
func TestRetxDropHasNoAuditGap(t *testing.T) {
	fc := UniformFaults(1, 0.9, 0, 0, 0)
	fc.RetxTimeout = sim.NS(10)
	eng, n, g, sinks, cs := faultNet(t, fc, FaultRetx)
	dst := g.L1DNode(0, 1)
	n.Send(&Message{Src: g.L1DNode(0, 0), Dst: dst, Block: 7, Tokens: 5, Owner: true, HasData: true})
	for eng.Step() {
		held := 0
		for _, m := range sinks[dst].got {
			held += m.Tokens
		}
		if total := held + n.TokensInFlight(7); total != 5 {
			t.Fatalf("at %v: delivered %d + in-flight %d tokens != 5 (audit gap)",
				eng.Now(), held, n.TokensInFlight(7))
		}
	}
	if got := len(sinks[dst].got); got != 1 {
		t.Fatalf("delivered %d times, want exactly 1", got)
	}
	if cs.Value(counters.NetDropped) == 0 || cs.Value(counters.NetRetx) == 0 {
		t.Fatalf("dropped=%d retx=%d, want both > 0 (seed 1 at drop=0.9 must drop at least once)",
			cs.Value(counters.NetDropped), cs.Value(counters.NetRetx))
	}
	if cs.Value(counters.NetDropped) != cs.Value(counters.NetRetx) {
		t.Errorf("dropped=%d != retx=%d: every retx-class drop must retransmit",
			cs.Value(counters.NetDropped), cs.Value(counters.NetRetx))
	}
	if n.InFlight != 0 || n.TokensInFlight(7) != 0 || n.OwnersInFlight(7) != 0 {
		t.Errorf("post-run accounting: InFlight=%d tokens=%d owners=%d, want all 0",
			n.InFlight, n.TokensInFlight(7), n.OwnersInFlight(7))
	}
}

// TestDuplicationDeliversTwice: dup=1.0 on a token-free droppable
// message yields exactly two deliveries (a duplicate never
// re-duplicates) and one net.dup event.
func TestDuplicationDeliversTwice(t *testing.T) {
	eng, n, g, sinks, cs := faultNet(t, UniformFaults(1, 0, 1.0, 0, 0), FaultDroppable)
	dst := g.L1DNode(0, 1)
	n.Send(&Message{Src: g.L1DNode(0, 0), Dst: dst, Aux: 42})
	eng.Run(0)
	if got := len(sinks[dst].got); got != 2 {
		t.Fatalf("delivered %d times with dup=1.0, want 2", got)
	}
	for i, m := range sinks[dst].got {
		if m.Aux != 42 {
			t.Errorf("delivery %d: Aux=%d, want 42", i, m.Aux)
		}
	}
	if cs.Value(counters.NetDup) != 1 {
		t.Errorf("net.dup = %d, want 1", cs.Value(counters.NetDup))
	}
}

// TestDuplicationNeverCopiesTokens: token- or data-carrying messages
// are exempt from duplication even in a droppable class — a duplicated
// token would break conservation with no receiver-side dedup to absorb
// it.
func TestDuplicationNeverCopiesTokens(t *testing.T) {
	eng, n, g, sinks, _ := faultNet(t, UniformFaults(1, 0, 1.0, 0, 0), FaultDroppable)
	dst := g.L1DNode(0, 1)
	n.Send(&Message{Src: g.L1DNode(0, 0), Dst: dst, Block: 3, Tokens: 1})
	eng.Run(0)
	if got := len(sinks[dst].got); got != 1 {
		t.Fatalf("token-carrying message delivered %d times, want 1", got)
	}
}

// TestReorderViolatesPerLinkFIFO: the reorder knob must be able to do
// what jitter alone cannot — deliver same-link messages out of send
// order.
func TestReorderViolatesPerLinkFIFO(t *testing.T) {
	fc := UniformFaults(3, 0, 0, 1.0, 0)
	fc.OnChip.ReorderWindow = sim.NS(50)
	fc.OffChip.ReorderWindow = sim.NS(50)
	eng, n, g, sinks, cs := faultNet(t, fc, FaultDroppable)
	dst := g.L2Node(0, 0)
	for i := 0; i < 8; i++ {
		n.Send(&Message{Src: g.L1DNode(0, 0), Dst: dst, Aux: i})
	}
	eng.Run(0)
	if got := len(sinks[dst].got); got != 8 {
		t.Fatalf("delivered %d messages, want 8 (reorder must not lose)", got)
	}
	inOrder := true
	for i, m := range sinks[dst].got {
		if m.Aux != i {
			inOrder = false
		}
	}
	if inOrder {
		t.Error("reorder=1.0 over a 50ns window delivered all 8 messages in send order (seed 3)")
	}
	if cs.Value(counters.NetReordered) != 8 {
		t.Errorf("net.reordered = %d, want 8", cs.Value(counters.NetReordered))
	}
}

// TestJitterPreservesPerLinkFIFO: jitter varies latency but is clamped
// to per-link FIFO, so protocols without recovery machinery (protected
// class) still see ordered links.
func TestJitterPreservesPerLinkFIFO(t *testing.T) {
	eng, n, g, sinks, cs := faultNet(t, UniformFaults(1, 0, 0, 0, sim.NS(100)), FaultProtected)
	dst := g.L2Node(0, 0)
	for i := 0; i < 10; i++ {
		n.Send(&Message{Src: g.L1DNode(0, 0), Dst: dst, Aux: i})
	}
	eng.Run(0)
	if got := len(sinks[dst].got); got != 10 {
		t.Fatalf("delivered %d messages, want 10", got)
	}
	for i, m := range sinks[dst].got {
		if m.Aux != i {
			t.Fatalf("jitter reordered a link: %d delivered at position %d", m.Aux, i)
		}
	}
	if cs.Value(counters.NetReordered) != 0 || cs.Value(counters.NetDropped) != 0 {
		t.Errorf("jitter-only run counted reordered=%d dropped=%d, want 0/0",
			cs.Value(counters.NetReordered), cs.Value(counters.NetDropped))
	}
}

// TestProtectedClassIsExempt: with no classifier opt-in (Classify nil →
// everything protected), drop and dup knobs are honest no-ops.
func TestProtectedClassIsExempt(t *testing.T) {
	eng, n, g, sinks, cs := faultNet(t, UniformFaults(1, 1.0, 1.0, 1.0, 0), FaultProtected)
	n.Classify = nil
	dst := g.L1DNode(0, 1)
	for i := 0; i < 5; i++ {
		n.Send(&Message{Src: g.L1DNode(0, 0), Dst: dst, Aux: i})
	}
	eng.Run(0)
	if got := len(sinks[dst].got); got != 5 {
		t.Fatalf("delivered %d of 5 protected messages under drop=1.0", got)
	}
	if cs.Value(counters.NetDropped) != 0 || cs.Value(counters.NetDup) != 0 || cs.Value(counters.NetReordered) != 0 {
		t.Errorf("protected traffic counted faults: dropped=%d dup=%d reordered=%d",
			cs.Value(counters.NetDropped), cs.Value(counters.NetDup), cs.Value(counters.NetReordered))
	}
}

// TestFaultDeterminism: identical (seed, plan) replays an identical
// delivery sequence; a different seed diverges.
func TestFaultDeterminism(t *testing.T) {
	runOnce := func(seed int64) ([]sim.Time, []int) {
		fc := UniformFaults(seed, 0.3, 0.2, 0.2, sim.NS(25))
		eng, n, g, sinks, _ := faultNet(t, fc, FaultDroppable)
		for i := 0; i < 20; i++ {
			n.Send(&Message{Src: g.L1DNode(0, 0), Dst: g.L1DNode(1, 0), Aux: i})
		}
		eng.Run(0)
		s := sinks[g.L1DNode(1, 0)]
		order := make([]int, len(s.got))
		for i, m := range s.got {
			order[i] = m.Aux
		}
		return s.at, order
	}
	atA, orderA := runOnce(5)
	atB, orderB := runOnce(5)
	if len(atA) != len(atB) {
		t.Fatalf("same seed delivered %d vs %d messages", len(atA), len(atB))
	}
	for i := range atA {
		if atA[i] != atB[i] || orderA[i] != orderB[i] {
			t.Fatalf("same seed diverged at delivery %d: %v/%d vs %v/%d",
				i, atA[i], orderA[i], atB[i], orderB[i])
		}
	}
	atC, orderC := runOnce(6)
	same := len(atA) == len(atC)
	if same {
		for i := range atA {
			if atA[i] != atC[i] || orderA[i] != orderC[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("seeds 5 and 6 produced identical runs (fault PRNG ignoring the seed?)")
	}
}
