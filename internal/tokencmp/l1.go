package tokencmp

import (
	"fmt"
	"math/rand"
	"slices"

	"tokencmp/internal/cache"
	"tokencmp/internal/cpu"
	"tokencmp/internal/mem"
	"tokencmp/internal/network"
	"tokencmp/internal/sim"
	"tokencmp/internal/stats"
	"tokencmp/internal/token"
	"tokencmp/internal/topo"
)

// debugTimeout, when set (tests only), observes every transient-request
// timeout for diagnosis.
var debugTimeout func(c *L1Ctrl, b mem.Block, txn *l1Txn)

// L1Stats counts per-L1 protocol events.
type L1Stats struct {
	Hits, Misses     uint64
	TransientsSent   uint64
	Retries          uint64
	Timeouts         uint64
	PersistentReqs   uint64
	MigratoryGrants  uint64
	WritebacksIssued uint64
}

// l1Txn is an outstanding miss transaction. Each L1 serves one processor
// port, so at most one transaction is in flight per L1.
type l1Txn struct {
	kind             cpu.AccessKind
	reqKind          token.ReqKind
	store            uint64
	done             func(uint64)
	issuedAt         sim.Time
	transientsSent   int
	persistent       bool // escalation decided
	persistentIssued bool // substrate request actually broadcast
	waitingMark      bool // gated by the marking mechanism
	seq              int  // invalidates stale timeout events
}

// L1Ctrl is a TokenCMP L1 cache controller (data or instruction). It is
// both a cpu.MemPort for its processor and a substrate endpoint.
type L1Ctrl struct {
	base
	isInstr    bool
	cmp, proc  int
	globalProc int

	cache *cache.Array[token.State]
	txns  map[mem.Block]*l1Txn
	banks []*L2Ctrl // local L2 banks, for token-presence notes
	est   *token.TimeoutEstimator
	pred  *predictor
	rng   *rand.Rand

	pend cpu.PendingAccess // access parked across the tag-access delay

	Stats L1Stats
}

// l1AttemptCall is the closure-free ScheduleCall target for the
// tag-access delay.
func l1AttemptCall(ctx, _ any) {
	c := ctx.(*L1Ctrl)
	c.attempt(c.pend.Take())
}

func newL1(sys *System, id topo.NodeID, cmp, proc int, instr bool) *L1Ctrl {
	cfg := sys.Cfg
	c := &L1Ctrl{
		isInstr:    instr,
		cmp:        cmp,
		proc:       proc,
		globalProc: sys.Geom.GlobalProc(cmp, proc),
		cache:      cache.New[token.State](cache.Params{SizeBytes: cfg.L1Size, Ways: cfg.L1Ways, BlockSize: mem.BlockSize}),
		txns:       make(map[mem.Block]*l1Txn),
		est:        token.NewTimeoutEstimator(cfg.InitialTimeout),
		rng:        rand.New(rand.NewSource(cfg.Seed*1000003 + int64(id))),
	}
	c.initTables(sys, id)
	c.accessLatency = cfg.L1Latency
	c.lookup = func(b mem.Block) *token.State {
		if l := c.cache.Lookup(b); l != nil {
			return &l.State
		}
		return nil
	}
	c.onEmpty = func(b mem.Block) { c.cache.Invalidate(b) }
	c.noteLoss = c.notifyLoss
	if cfg.Variant.Predictor && !instr {
		c.pred = newPredictor(cfg.Seed*7919 + int64(id))
	}
	return c
}

// bankFor returns this CMP's L2 bank controller serving b.
func (c *L1Ctrl) bankFor(b mem.Block) *L2Ctrl {
	return c.banks[c.sys.Geom.Mapper.Bank(b)]
}

// notifyLoss keeps the L2 bank's on-chip token presence current when
// tokens leave this L1 (the bank observes all on-chip interconnect
// traffic; modeled as a zero-cost note).
func (c *L1Ctrl) notifyLoss(b mem.Block, tokens int, owner bool, dst topo.NodeID, emptied bool) {
	g := c.sys.Geom
	if g.IsCache(dst) && g.CMPOf(dst) == c.cmp && g.KindOf(dst) != topo.L2 {
		// L1 to sibling L1: tokens stay on chip.
		c.bankFor(b).noteL1Transfer(b, c.id, dst, emptied)
		return
	}
	c.bankFor(b).noteL1Loss(b, tokens, owner, c.id, emptied)
}

// Access implements cpu.MemPort.
func (c *L1Ctrl) Access(kind cpu.AccessKind, addr mem.Addr, store uint64, done func(uint64)) {
	if c.isInstr && kind != cpu.IFetch {
		panic("tokencmp: data access routed to L1I")
	}
	b := mem.BlockOf(addr)
	if _, busy := c.txns[b]; busy {
		panic(fmt.Sprintf("tokencmp: L1 %v already has outstanding transaction for %v", c.id, b))
	}
	// Tag access latency, then hit check / miss handling.
	c.pend.Park("tokencmp: L1", kind, b, store, done)
	c.sys.Eng.ScheduleCall(c.sys.Cfg.L1Latency, l1AttemptCall, c, nil)
}

func sufficient(s *token.State, kind cpu.AccessKind, t int) bool {
	if s == nil {
		return false
	}
	switch kind {
	case cpu.Load, cpu.IFetch:
		return s.CanRead()
	default:
		return s.CanWrite(t)
	}
}

func (c *L1Ctrl) attempt(kind cpu.AccessKind, b mem.Block, store uint64, done func(uint64)) {
	s := c.lookup(b)
	if sufficient(s, kind, c.sys.Cfg.T) {
		c.Stats.Hits++
		c.sys.ctr.l1Hit.Inc()
		c.cache.Touch(b)
		done(c.apply(kind, s, store))
		return
	}
	c.Stats.Misses++
	c.sys.ctr.l1Miss.Inc()
	txn := &l1Txn{kind: kind, store: store, done: done, issuedAt: c.sys.Eng.Now()}
	if kind == cpu.Load || kind == cpu.IFetch {
		txn.reqKind = token.ReqRead
	} else {
		txn.reqKind = token.ReqWrite
	}
	c.txns[b] = txn

	v := c.sys.Cfg.Variant
	switch {
	case v.MaxTransients == 0:
		c.issuePersistent(b, txn)
	case c.pred != nil && c.pred.Contended(b):
		c.issuePersistent(b, txn)
	default:
		c.sendTransient(b, txn)
	}
}

// apply performs the memory operation on a line with sufficient
// permission and returns the load/swap result. Stores and atomics start
// the response-delay hold (§3.2).
func (c *L1Ctrl) apply(kind cpu.AccessKind, s *token.State, store uint64) uint64 {
	switch kind {
	case cpu.Load, cpu.IFetch:
		return s.Data
	case cpu.Store:
		s.Data = store
		s.Dirty = true
		c.hold(s)
		return 0
	default: // Atomic swap
		old := s.Data
		s.Data = store
		s.Dirty = true
		if old != store {
			// A swap that wrote the value already present is a failed
			// test-and-set: it begins no critical section, so holding the
			// block would only slow the handoff to the next contender.
			c.hold(s)
		}
		return old
	}
}

// hold starts the response-delay window (§3.2) so a short critical
// section completes before the block can be stolen. The delay is
// bounded: consecutive stores do not extend an active hold, otherwise a
// store-heavy processor could starve remote requesters — the paper's
// "bounded delay does not affect starvation-avoidance guarantees".
func (c *L1Ctrl) hold(s *token.State) {
	now := c.sys.Eng.Now()
	if s.HoldUntil < now {
		s.HoldUntil = now + c.sys.Cfg.ResponseDelay
	}
}

func (c *L1Ctrl) sendTransient(b mem.Block, txn *l1Txn) {
	txn.transientsSent++
	c.Stats.TransientsSent++
	c.sys.ctr.reqTransient.Inc()
	if txn.transientsSent > 1 {
		c.Stats.Retries++
		c.sys.ctr.reqRetry.Inc()
	}
	tmpl := &network.Message{
		Src:       c.id,
		Block:     b,
		Kind:      kTransient,
		Class:     stats.Request,
		Aux:       int(txn.reqKind),
		Requestor: c.id,
		Proc:      c.globalProc,
	}
	g := c.sys.Geom
	dsts := append([]topo.NodeID{}, g.L1sInCMP(c.cmp)...)
	dsts = append(dsts, g.L2BankFor(c.cmp, b))
	c.sys.Net.Broadcast(tmpl, dsts)

	txn.seq++
	seq := txn.seq
	c.sys.Eng.Schedule(c.est.Timeout(), func() { c.onTimeout(b, seq) })
}

func (c *L1Ctrl) onTimeout(b mem.Block, seq int) {
	txn := c.txns[b]
	if txn == nil || txn.seq != seq || txn.persistent {
		return
	}
	c.Stats.Timeouts++
	c.sys.ctr.reqTimeout.Inc()
	if debugTimeout != nil {
		debugTimeout(c, b, txn)
	}
	if c.pred != nil {
		c.pred.NoteTimeout(b)
	}
	if txn.transientsSent < c.sys.Cfg.Variant.MaxTransients {
		// Retry with pseudo-random backoff to avoid lock-step retries.
		backoff := sim.Time(c.rng.Int63n(int64(c.est.Timeout()/4) + 1))
		txn.seq++
		seq := txn.seq
		c.sys.Eng.Schedule(backoff, func() {
			if t := c.txns[b]; t != nil && t.seq == seq && !t.persistent {
				c.sendTransient(b, t)
			}
		})
		return
	}
	c.issuePersistent(b, txn)
}

func (c *L1Ctrl) issuePersistent(b mem.Block, txn *l1Txn) {
	txn.persistent = true
	if c.sys.Cfg.Variant.Activation == Distributed {
		if c.dtable.HasMarked(b) {
			// Marking mechanism: wait until the marked wave drains.
			txn.waitingMark = true
			return
		}
		txn.waitingMark = false
		txn.persistentIssued = true
		c.Stats.PersistentReqs++
		c.sys.ctr.reqPersistent.Inc()
		c.dtable.Insert(c.globalProc, b, txn.reqKind, c.id)
		tmpl := &network.Message{
			Src:       c.id,
			Block:     b,
			Kind:      kPersistent,
			Class:     stats.Persistent,
			Aux:       int(txn.reqKind),
			Proc:      c.globalProc,
			Requestor: c.id,
		}
		c.sys.Net.Broadcast(tmpl, c.sys.allEndpoints)
		c.tryComplete(b)
		return
	}
	// Arbiter-based activation: ask the block's home memory controller.
	txn.persistentIssued = true
	c.Stats.PersistentReqs++
	c.sys.ctr.reqPersistent.Inc()
	c.sys.Net.SendNew(network.Message{
		Src:       c.id,
		Dst:       c.sys.Geom.HomeMem(b),
		Block:     b,
		Kind:      kArbRequest,
		Class:     stats.Persistent,
		Aux:       int(txn.reqKind),
		Proc:      c.globalProc,
		Requestor: c.id,
	})
}

// tryComplete finishes the outstanding transaction for b if permissions
// now suffice.
func (c *L1Ctrl) tryComplete(b mem.Block) {
	txn := c.txns[b]
	if txn == nil {
		return
	}
	s := c.lookup(b)
	if !sufficient(s, txn.kind, c.sys.Cfg.T) {
		return
	}
	delete(c.txns, b)
	txn.seq++ // kill pending timeouts
	c.cache.Touch(b)
	val := c.apply(txn.kind, s, txn.store)
	if txn.persistentIssued {
		c.deactivatePersistent(b)
	}
	txn.done(val)
}

func (c *L1Ctrl) deactivatePersistent(b mem.Block) {
	if c.sys.Cfg.Variant.Activation == Distributed {
		c.dtable.Deactivate(c.globalProc)
		c.dtable.MarkAllFor(b)
		tmpl := &network.Message{
			Src:   c.id,
			Block: b,
			Kind:  kPersistentDone,
			Class: stats.Persistent,
			Proc:  c.globalProc,
		}
		c.sys.Net.Broadcast(tmpl, c.sys.allEndpoints)
		// Direct handoff: if another persistent request is now active for
		// this block, our tokens flow to it (after the response delay).
		c.reeval(b)
		return
	}
	c.sys.Net.SendNew(network.Message{
		Src:   c.id,
		Dst:   c.sys.Geom.HomeMem(b),
		Block: b,
		Kind:  kArbDone,
		Class: stats.Persistent,
		Proc:  c.globalProc,
	})
}

// recheckMarked re-attempts persistent issue for transactions gated by
// the marking mechanism (called when deactivations arrive). Candidates
// are issued in block order: issuing sends arbiter requests, so map
// iteration order must not reach the wire (simlint: simdet).
func (c *L1Ctrl) recheckMarked() {
	var blocks []mem.Block
	for b, txn := range c.txns {
		if txn.waitingMark && !c.dtable.HasMarked(b) {
			blocks = append(blocks, b)
		}
	}
	slices.Sort(blocks)
	for _, b := range blocks {
		// Re-check under the sorted order: an earlier issue may have
		// changed the marking state.
		if txn := c.txns[b]; txn != nil && txn.waitingMark && !c.dtable.HasMarked(b) {
			c.issuePersistent(b, txn)
		}
	}
}

// l1LocalReq and l1ExtReq are the closure-free deferred-request thunks:
// the L1 holds a pooled copy of the request across its tag-access delay
// (and any response-delay hold) and frees it when handling completes.
func l1LocalReq(ctx, arg any) {
	c, m := ctx.(*L1Ctrl), arg.(*network.Message)
	if c.handleRequest(m, false) {
		c.sys.Net.Free(m)
	}
}

func l1ExtReq(ctx, arg any) {
	c, m := ctx.(*L1Ctrl), arg.(*network.Message)
	if c.handleRequest(m, true) {
		c.sys.Net.Free(m)
	}
}

// Recv implements network.Endpoint.
func (c *L1Ctrl) Recv(m *network.Message) {
	switch m.Kind {
	case kTransient:
		c.sys.Eng.ScheduleCall(c.sys.Cfg.L1Latency, l1LocalReq, c, c.sys.Net.CopyOf(m))
	case kFwdExternal:
		c.sys.Eng.ScheduleCall(c.sys.Cfg.L1Latency, l1ExtReq, c, c.sys.Net.CopyOf(m))
	case kResponse:
		c.handleResponse(m)
	case kPersistentDone:
		if blk, ok := c.dtable.Deactivate(m.Proc); ok {
			c.reeval(blk)
		}
		c.recheckMarked()
		c.tryComplete(m.Block)
	default:
		if c.handlePersistentMsg(m) {
			c.tryComplete(m.Block)
			return
		}
		panic(fmt.Sprintf("tokencmp: L1 %v cannot handle %s", c.id, kindName(m.Kind)))
	}
}

// handleResponse merges arriving tokens/data, then lets the substrate
// forward them if a persistent request is active, then tries to complete
// our own transaction.
func (c *L1Ctrl) handleResponse(m *network.Message) {
	b := m.Block
	line, victim, vstate, evicted := c.cache.Install(b)
	if evicted {
		c.writebackVictim(victim, vstate)
	}
	line.State.Merge(m.Tokens, m.Owner, m.HasData, m.Data, m.Dirty)

	// On-chip presence: gains from outside the chip are noted; gains from
	// local endpoints were accounted at their send.
	g := c.sys.Geom
	if g.CMPOf(m.Src) != c.cmp || g.KindOf(m.Src) == topo.Mem {
		c.bankFor(b).noteL1Gain(b, m.Tokens, m.Owner, c.id)
	}

	// The timeout threshold tracks memory response latency only (§4) —
	// and only data-carrying responses: token-only responses skip the
	// DRAM access and would drag the threshold below the real miss
	// latency, triggering spurious retries.
	if txn := c.txns[b]; txn != nil && g.KindOf(m.Src) == topo.Mem && m.HasData {
		c.est.Observe(c.sys.Eng.Now() - txn.issuedAt)
	}

	c.reeval(b)
	c.tryComplete(b)
}

func (c *L1Ctrl) writebackVictim(victim mem.Block, st token.State) {
	if st.Tokens == 0 {
		return
	}
	c.Stats.WritebacksIssued++
	c.sys.ctr.l1Writeback.Inc()
	dst := c.sys.Geom.L2BankFor(c.cmp, victim)
	cls := stats.WritebackControl
	hasData := st.Owner
	if hasData {
		cls = stats.WritebackData
	}
	c.bankFor(victim).noteL1Loss(victim, st.Tokens, st.Owner, c.id, true)
	c.sys.Net.SendNew(network.Message{
		Src:     c.id,
		Dst:     dst,
		Block:   victim,
		Kind:    kWriteback,
		Class:   cls,
		Tokens:  st.Tokens,
		Owner:   st.Owner,
		HasData: hasData,
		Data:    st.Data,
		Dirty:   st.Dirty,
	})
}

// handleRequest applies the Section 4 response rules for transient
// requests: local rules for sibling-L1 requests, external rules for
// requests forwarded from other CMPs. The controller owns m (a pooled
// copy); handleRequest reports whether it is done with it — false means
// the hold re-deferral kept ownership.
func (c *L1Ctrl) handleRequest(m *network.Message, external bool) bool {
	b := m.Block
	if c.transientBlocked(b, m.Requestor) {
		return true
	}
	s := c.lookup(b)
	if s == nil || s.Tokens == 0 {
		return true
	}
	now := c.sys.Eng.Now()
	if s.HoldUntil > now {
		// Response-delay mechanism: re-handle once the hold expires,
		// keeping ownership of m across the deferral.
		fn := l1LocalReq
		if external {
			fn = l1ExtReq
		}
		c.sys.Eng.ScheduleCallAt(s.HoldUntil, fn, c, m)
		return false
	}
	rk := token.ReqKind(m.Aux)
	T := c.sys.Cfg.T

	var resp network.Message
	emptied := false
	switch {
	case rk == token.ReqWrite:
		tk, own, hasData, data, dirty := s.TakeAll()
		resp = network.Message{Tokens: tk, Owner: own, HasData: own && hasData, Data: data, Dirty: dirty}
		emptied = true
	case s.Owner && s.Tokens == T && s.Dirty && !c.sys.Cfg.DisableMigratory:
		// Migratory sharing: hand everything to the reader.
		c.Stats.MigratoryGrants++
		c.sys.ctr.migratory.Inc()
		tk, own, _, data, dirty := s.TakeAll()
		resp = network.Message{Tokens: tk, Owner: own, HasData: true, Data: data, Dirty: dirty}
		emptied = true
	case s.Owner && s.Tokens >= 2:
		n := 1
		if external {
			// Inter-CMP read responses carry up to C tokens so future
			// intra-CMP requests hit locally (§4).
			n = minInt(c.sys.Geom.CachesPerCMP(), s.Tokens-1)
		}
		s.Tokens -= n
		resp = network.Message{Tokens: n, HasData: true, Data: s.Data}
	case s.Owner:
		// Owner-only: transfer ownership with data rather than starve the
		// reader.
		tk, own, _, data, dirty := s.TakeAll()
		resp = network.Message{Tokens: tk, Owner: own, HasData: true, Data: data, Dirty: dirty}
		emptied = true
	case !external && s.Tokens >= 2 && s.HasData:
		// Local read served by a non-owner sharer with spare tokens.
		s.Tokens--
		resp = network.Message{Tokens: 1, HasData: true, Data: s.Data}
	default:
		return true // externally, non-owners stay silent on reads
	}

	resp.Src = c.id
	resp.Dst = m.Requestor
	resp.Block = b
	resp.Kind = kResponse
	if resp.HasData {
		resp.Class = stats.ResponseData
	} else {
		resp.Class = stats.InvFwdAckTokens
	}
	c.notifyLoss(b, resp.Tokens, resp.Owner, resp.Dst, emptied)
	c.sys.Net.SendNew(resp)
	if emptied {
		c.cache.Invalidate(b)
	}
	return true
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
