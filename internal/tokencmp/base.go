package tokencmp

import (
	"tokencmp/internal/mem"
	"tokencmp/internal/network"
	"tokencmp/internal/sim"
	"tokencmp/internal/stats"
	"tokencmp/internal/token"
	"tokencmp/internal/topo"
)

// base is the substrate-node behavior shared by L1, L2, and memory
// controllers: the persistent-request tables and the token-forwarding
// rules they obligate (§3.2). Every endpoint remembers activated
// persistent requests and forwards tokens — those present now and those
// received later — to the initiator.
type base struct {
	id  topo.NodeID
	sys *System

	dtable *token.DistributedTable
	atable *token.ArbTable

	// lookup returns the endpoint's token state for b, or nil.
	lookup func(b mem.Block) *token.State
	// onEmpty tells the endpoint its state for b drained to zero tokens
	// (caches invalidate the line). May be nil.
	onEmpty func(b mem.Block)
	// noteLoss reports tokens leaving this endpoint toward dst (used by
	// L1s to keep the L2 bank's on-chip token presence current). May be
	// nil.
	noteLoss func(b mem.Block, tokens int, owner bool, dst topo.NodeID, emptied bool)
	// accessLatency delays persistent forwards by the endpoint's array
	// access time.
	accessLatency sim.Time
	// dataDelay is extra latency when a forward carries data (DRAM).
	dataDelay sim.Time
	// isMem marks memory controllers, which give up everything on
	// persistent reads (they are not caches and hold no read permission).
	isMem bool
}

func (c *base) initTables(sys *System, id topo.NodeID) {
	c.sys = sys
	c.id = id
	c.dtable = token.NewDistributedTable(sys.Geom.TotalProcs())
	c.atable = token.NewArbTable()
}

// activeEntry returns the persistent request this endpoint must currently
// honor for b under the configured activation mechanism.
func (c *base) activeEntry(b mem.Block) (token.Entry, bool) {
	if c.sys.Cfg.Variant.Activation == Distributed {
		_, e, ok := c.dtable.Active(b)
		return e, ok
	}
	return c.atable.Active(b)
}

// reeval checks whether tokens held for b must be forwarded to an active
// persistent request and, if so, sends them. It is called after every
// table update and every token arrival, which implements "forward tokens
// present and received in the future". The response-delay hold defers,
// never cancels, the forward.
func (c *base) reeval(b mem.Block) {
	e, ok := c.activeEntry(b)
	if !ok || e.Dest == c.id {
		return
	}
	s := c.lookup(b)
	if s == nil || s.Tokens == 0 {
		return
	}
	now := c.sys.Eng.Now()
	if s.HoldUntil > now {
		c.sys.Eng.ScheduleAt(s.HoldUntil, func() { c.reeval(b) })
		return
	}

	var tmpl network.Message
	switch {
	case e.Kind == token.ReqWrite || c.isMem:
		// Persistent writes collect everything; memory also cedes all on
		// persistent reads (it needs no read permission and holds the
		// data the reader must receive).
		tk, own, hasData, data, dirty := s.TakeAll()
		tmpl = network.Message{Tokens: tk, Owner: own, HasData: own && hasData, Data: data, Dirty: dirty}
	case s.Owner:
		// Persistent read: the owner keeps one plain token (retaining a
		// readable copy when it has data) and sends the owner token with
		// data, guaranteeing the reader receives valid data.
		give := s.Tokens - 1
		if give < 1 {
			give = s.Tokens // owner-only: must surrender the owner token
		}
		tmpl = network.Message{Tokens: give, Owner: true, HasData: true, Data: s.Data, Dirty: s.Dirty}
		s.Tokens -= give
		s.Owner = false
		s.Dirty = false
		if s.Tokens == 0 {
			s.HasData = false
		}
	default:
		// Non-owner holder: give up all but one token; data travels from
		// the owner.
		if s.Tokens < 2 {
			return
		}
		give := s.Tokens - 1
		s.Tokens = 1
		tmpl = network.Message{Tokens: give}
	}
	if tmpl.Tokens == 0 && !tmpl.Owner {
		return
	}
	emptied := s.Tokens == 0
	tmpl.Src = c.id
	tmpl.Dst = e.Dest
	tmpl.Block = b
	tmpl.Kind = kResponse
	if tmpl.HasData {
		tmpl.Class = stats.ResponseData
	} else {
		tmpl.Class = stats.InvFwdAckTokens
	}
	if c.noteLoss != nil {
		c.noteLoss(b, tmpl.Tokens, tmpl.Owner, tmpl.Dst, emptied)
	}
	delay := c.accessLatency
	if tmpl.HasData {
		delay += c.dataDelay
	}
	m := c.sys.Net.NewMessage()
	*m = tmpl
	c.sys.Net.SendAfter(delay, m)
	if emptied && c.onEmpty != nil {
		c.onEmpty(b)
	}
}

// transientBlocked reports whether transient requests for b must be
// ignored. An activated persistent *write* request owns every token for
// the block (present and future), so responding to a transient would
// only bounce tokens away from the starving initiator. An activated
// persistent *read* leaves one token at each holder, which transient
// writers may still collect — blocking those would stall lock releases
// behind spinner waves. The initiator's own transients are always
// served.
func (c *base) transientBlocked(b mem.Block, requestor topo.NodeID) bool {
	e, ok := c.activeEntry(b)
	return ok && e.Dest != requestor && e.Kind == token.ReqWrite
}

// handlePersistentMsg processes the substrate's table-maintenance
// messages shared by all endpoints. It reports whether the message kind
// was consumed.
func (c *base) handlePersistentMsg(m *network.Message) bool {
	switch m.Kind {
	case kPersistent:
		c.dtable.Insert(m.Proc, m.Block, token.ReqKind(m.Aux), m.Requestor)
		c.reeval(m.Block)
	case kPersistentDone:
		if blk, ok := c.dtable.Deactivate(m.Proc); ok {
			c.reeval(blk)
		}
	case kArbActivate:
		c.atable.Activate(m.Block, token.ReqKind(m.Aux), m.Requestor, m.Proc)
		c.reeval(m.Block)
	case kArbDeactivate:
		c.atable.Deactivate(m.Block, m.Proc)
		c.reeval(m.Block)
	default:
		return false
	}
	return true
}
