package tokencmp

import (
	"testing"

	"tokencmp/internal/cpu"
	"tokencmp/internal/mem"
	"tokencmp/internal/network"
	"tokencmp/internal/sim"
	"tokencmp/internal/token"
	"tokencmp/internal/topo"
)

// fullSystem builds the paper's target geometry.
func fullSystem(t *testing.T, v Variant, mutate func(*Config)) (*sim.Engine, *System) {
	t.Helper()
	eng := sim.NewEngine()
	g := topo.NewGeometry(4, 4, 4)
	cfg := DefaultConfig(g, v)
	if mutate != nil {
		mutate(&cfg)
	}
	return eng, NewSystem(eng, cfg, network.Default())
}

// doOp runs a single access to completion and returns the value.
func doOp(t *testing.T, eng *sim.Engine, port cpu.MemPort, kind cpu.AccessKind, a mem.Addr, v uint64) uint64 {
	t.Helper()
	done := false
	var out uint64
	port.Access(kind, a, v, func(val uint64) { done = true; out = val })
	if !eng.RunUntil(func() bool { return done }, 3_000_000) {
		t.Fatalf("%v %#x did not complete", kind, uint64(a))
	}
	return out
}

// TestMigratorySharingGrantsAllTokens: after a dirty writer, a reader's
// single load must leave it able to write silently (all tokens moved).
func TestMigratorySharingGrantsAllTokens(t *testing.T) {
	eng, sys := fullSystem(t, Dst1, nil)
	const addr = 0xA000
	p0, _ := sys.Ports(0)
	p5, _ := sys.Ports(5) // a different CMP
	doOp(t, eng, p0, cpu.Store, addr, 9)
	if doOp(t, eng, p5, cpu.Load, addr, 0) != 9 {
		t.Fatal("reader did not observe the writer's value")
	}
	// The reader's L1 must now hold all T tokens (migratory transfer).
	c, p := sys.Geom.ProcOf(5)
	s := sys.L1Ds[c][p].lookup(mem.BlockOf(addr))
	if s == nil || s.Tokens != sys.Cfg.T || !s.Owner {
		t.Fatalf("reader state = %+v, want all %d tokens (migratory)", s, sys.Cfg.T)
	}
	// Its store must therefore hit without any further miss.
	misses := sys.L1Ds[c][p].Stats.Misses
	doOp(t, eng, p5, cpu.Store, addr, 10)
	if sys.L1Ds[c][p].Stats.Misses != misses {
		t.Error("store after migratory grant missed")
	}
}

// TestMigratoryDisableIsPolicyOnly: with the optimization off the reader
// gets a plain shared copy, and correctness (values, conservation) is
// unaffected — the paper's §5 modifiability argument.
func TestMigratoryDisableIsPolicyOnly(t *testing.T) {
	eng, sys := fullSystem(t, Dst1, func(c *Config) { c.DisableMigratory = true })
	const addr = 0xA000
	p0, _ := sys.Ports(0)
	p5, _ := sys.Ports(5)
	doOp(t, eng, p0, cpu.Store, addr, 9)
	if doOp(t, eng, p5, cpu.Load, addr, 0) != 9 {
		t.Fatal("reader did not observe the writer's value")
	}
	c, p := sys.Geom.ProcOf(5)
	s := sys.L1Ds[c][p].lookup(mem.BlockOf(addr))
	if s == nil || s.Tokens == sys.Cfg.T {
		t.Fatalf("reader got all tokens despite DisableMigratory (state %+v)", s)
	}
	if err := sys.TokenAudit(); err != nil {
		t.Fatal(err)
	}
}

// TestCTokenExternalReadResponse: an external read served by the home
// memory hands over C tokens' worth (or everything, the E analog, when
// memory holds all), so the next request in that CMP hits locally.
func TestCTokenExternalReadResponse(t *testing.T) {
	eng, sys := fullSystem(t, Dst1, nil)
	const addr = 0xB000
	p0, _ := sys.Ports(0)
	// Cold read: memory holds all T → E-analog (everything moves).
	doOp(t, eng, p0, cpu.Load, addr, 0)
	c, p := sys.Geom.ProcOf(0)
	s := sys.L1Ds[c][p].lookup(mem.BlockOf(addr))
	if s == nil || s.Tokens != sys.Cfg.T {
		t.Fatalf("cold read got %+v, want all tokens (E analog)", s)
	}
}

// TestPersistentReadLeavesReaderCopies: a persistent read must not steal
// read permission — holders keep one token each (§3.2).
func TestPersistentReadLeavesReaderCopies(t *testing.T) {
	eng, sys := fullSystem(t, Dst0, nil) // persistent-only variant
	const addr = 0xC000
	b := mem.BlockOf(addr)
	p0, _ := sys.Ports(0)
	p5, _ := sys.Ports(5)
	doOp(t, eng, p0, cpu.Store, addr, 3) // p0's L1 holds all T, dirty
	if got := doOp(t, eng, p5, cpu.Load, addr, 0); got != 3 {
		t.Fatalf("persistent read returned %d, want 3", got)
	}
	// p0 must retain a readable copy: at least one token plus data.
	c, p := sys.Geom.ProcOf(0)
	s := sys.L1Ds[c][p].lookup(b)
	if s == nil || !s.CanRead() {
		t.Fatalf("previous holder lost read permission: %+v", s)
	}
	if err := sys.TokenAudit(); err != nil {
		t.Fatal(err)
	}
}

// TestMarkingPreventsImmediateReissue: after a processor's persistent
// request completes, its own re-request for the same block defers until
// the marked wave drains, so every waiter gets served (§3.2).
func TestMarkingPreventsImmediateReissue(t *testing.T) {
	eng, sys := fullSystem(t, Dst0, nil)
	const addr = 0xD000
	order := []int{}
	n := 0
	// P0 (highest priority) repeatedly writes; P15 (lowest) writes once.
	// Without marking, P0 could starve P15 indefinitely; with it, P15's
	// single request completes between P0's rounds.
	p15, _ := sys.Ports(15)
	p15.Access(cpu.Store, addr, 100, func(uint64) { order = append(order, 15); n++ })
	p0, _ := sys.Ports(0)
	var again func(round int)
	again = func(round int) {
		p0.Access(cpu.Store, addr, uint64(round), func(uint64) {
			order = append(order, 0)
			n++
			if round < 6 {
				// Space the rounds beyond the bounded response-delay hold
				// so each one is a fresh persistent request.
				eng.Schedule(2*sys.Cfg.ResponseDelay, func() { again(round + 1) })
			}
		})
	}
	again(1)
	if !eng.RunUntil(func() bool { return n == 7 }, 5_000_000) {
		t.Fatalf("starved: completions=%d order=%v", n, order)
	}
	// P15 must complete before P0's last round (no starvation).
	lastIs15 := order[len(order)-1] == 15
	if lastIs15 {
		t.Errorf("P15 completed last (%v): marking failed to prevent starvation", order)
	}
}

// TestFilterNeverFiltersPersistent: the dst1-filt variant may filter
// transient forwards but persistent requests always reach every cache.
func TestFilterNeverFiltersPersistent(t *testing.T) {
	eng, sys := fullSystem(t, Dst1Filt, nil)
	const addr = 0xE000
	p0, _ := sys.Ports(0)
	p5, _ := sys.Ports(5)
	doOp(t, eng, p0, cpu.Store, addr, 1)
	// Remote write must eventually collect every token even though the
	// remote L2's sharer mask knows nothing useful.
	doOp(t, eng, p5, cpu.Store, addr, 2)
	if got := doOp(t, eng, p0, cpu.Load, addr, 0); got != 2 {
		t.Fatalf("read %d, want 2", got)
	}
	if err := sys.TokenAudit(); err != nil {
		t.Fatal(err)
	}
}

// TestWritebackCarriesOwnerData: evicting a dirty owner line moves data
// and tokens to the L2 without any grant round trip (§5's writeback
// simplicity claim) and conserves tokens.
func TestWritebackCarriesOwnerData(t *testing.T) {
	eng, sys := fullSystem(t, Dst1, func(c *Config) { c.L1Size = 4 << 10 })
	p0, _ := sys.Ports(0)
	// Two blocks mapping to one set beyond L1 associativity force an
	// eviction: 4KB/4-way/64B = 16 sets.
	setStride := mem.Addr(16 * 64)
	base := mem.Addr(0xF0000)
	for i := 0; i < 6; i++ {
		doOp(t, eng, p0, cpu.Store, base+mem.Addr(i)*setStride, uint64(200+i))
	}
	// Everything must still be readable and conserved.
	for i := 0; i < 6; i++ {
		if got := doOp(t, eng, p0, cpu.Load, base+mem.Addr(i)*setStride, 0); got != uint64(200+i) {
			t.Fatalf("block %d read %d, want %d", i, got, 200+i)
		}
	}
	if err := sys.TokenAudit(); err != nil {
		t.Fatal(err)
	}
}

// TestTimeoutEscalatesToPersistent: with an artificially tiny timeout,
// dst1 misses must still complete via the substrate (robustness: the
// performance policy can be arbitrarily wrong without harming safety or
// liveness).
func TestTimeoutEscalatesToPersistent(t *testing.T) {
	eng, sys := fullSystem(t, Dst1, func(c *Config) { c.InitialTimeout = sim.PS(1) })
	// Shrink the estimator floor so timeouts genuinely fire early.
	for ci := range sys.L1Ds {
		for pi := range sys.L1Ds[ci] {
			sys.L1Ds[ci][pi].est.Floor = sim.PS(1)
			sys.L1Is[ci][pi].est.Floor = sim.PS(1)
		}
	}
	p0, _ := sys.Ports(0)
	p5, _ := sys.Ports(5)
	doOp(t, eng, p0, cpu.Store, 0x11000, 5)
	if got := doOp(t, eng, p5, cpu.Load, 0x11000, 0); got != 5 {
		t.Fatalf("read %d, want 5", got)
	}
	var persists uint64
	for ci := range sys.L1Ds {
		for pi := range sys.L1Ds[ci] {
			persists += sys.L1Ds[ci][pi].Stats.PersistentReqs
		}
	}
	if persists == 0 {
		t.Error("tiny timeout never escalated to a persistent request")
	}
	if err := sys.TokenAudit(); err != nil {
		t.Fatal(err)
	}
}

// TestTimeoutEscalationLossSweep extends the escalation test across a
// transient-drop sweep: under 0%, 1%, 5%, and 20% loss every access
// must still complete and audit clean, and the persistent-request
// fraction must grow with the loss rate while staying bounded — the
// degradation curve the paper's robustness claim predicts (graceful
// escalation, not collapse).
func TestTimeoutEscalationLossSweep(t *testing.T) {
	drops := []float64{0, 0.01, 0.05, 0.20}
	persists := make([]uint64, len(drops))
	fractions := make([]float64, len(drops))
	for di, d := range drops {
		eng := sim.NewEngine()
		g := topo.NewGeometry(4, 4, 4)
		netCfg := network.Default()
		netCfg.Faults = network.UniformFaults(1, d, 0, 0, 0)
		sys := NewSystem(eng, DefaultConfig(g, Dst1), netCfg)

		// Sequential migratory ping-pong: each processor in turn stores
		// and re-loads a small shared block set, migrating tokens across
		// CMPs on every handoff. With no concurrent contention, timeouts
		// at drop=0 are rare, so escalation growth isolates the loss
		// effect (a lost transient is the only reason to time out).
		const rounds, blocks = 6, 4
		for r := 0; r < rounds; r++ {
			for p := 0; p < g.TotalProcs(); p++ {
				port, _ := sys.Ports(p)
				addr := mem.Addr(0x2000 + (p%blocks)*64)
				want := uint64(r*1000 + p)
				doOp(t, eng, port, cpu.Store, addr, want)
				if got := doOp(t, eng, port, cpu.Load, addr, 0); got != want {
					t.Fatalf("drop=%.2f: proc %d read %d, want %d", d, p, got, want)
				}
			}
		}
		if err := sys.TokenAudit(); err != nil {
			t.Fatalf("drop=%.2f: %v", d, err)
		}
		persists[di] = sys.PersistentRequests()
		if m := sys.Misses(); m > 0 {
			fractions[di] = float64(persists[di]) / float64(m)
		}
		t.Logf("drop=%.2f: %d persistent requests (%.1f%% of %d misses)",
			d, persists[di], 100*fractions[di], sys.Misses())
	}
	for i := 1; i < len(drops); i++ {
		if persists[i] < persists[i-1] {
			t.Errorf("persistent requests fell from %d to %d as drop rose %.2f → %.2f",
				persists[i-1], persists[i], drops[i-1], drops[i])
		}
	}
	if persists[len(drops)-1] <= persists[0] {
		t.Errorf("20%% drop produced no more persistent requests (%d) than 0%% (%d)",
			persists[len(drops)-1], persists[0])
	}
	// Bounded: even at 20% transient loss the substrate resolves most
	// misses without collapsing into an all-persistent regime.
	if f := fractions[len(drops)-1]; f > 0.9 {
		t.Errorf("persistent fraction %.2f at 20%% drop exceeds the 0.9 bound", f)
	}
}

// TestTokenCountMatchesGeometry: T must exceed the cache count so
// persistent reads always succeed (§3.2).
func TestTokenCountMatchesGeometry(t *testing.T) {
	_, sys := fullSystem(t, Dst1, nil)
	caches := len(sys.Geom.AllCaches())
	if sys.Cfg.T <= caches {
		t.Fatalf("T = %d with %d caches; persistent reads not guaranteed", sys.Cfg.T, caches)
	}
	if sys.Cfg.T != token.TokenCountFor(caches) {
		t.Errorf("T = %d, want %d", sys.Cfg.T, token.TokenCountFor(caches))
	}
}
