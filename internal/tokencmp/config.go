package tokencmp

import (
	"tokencmp/internal/sim"
	"tokencmp/internal/token"
	"tokencmp/internal/topo"
)

// Config holds the structural and timing parameters of a TokenCMP system
// (Table 3 defaults via DefaultConfig).
type Config struct {
	Geom    topo.Geometry
	Variant Variant

	// Latencies.
	L1Latency   sim.Time // L1 tag/data access
	L2Latency   sim.Time // L2 bank access
	MemLatency  sim.Time // memory controller decision latency
	DRAMLatency sim.Time // DRAM array access for data

	// ResponseDelay is the bounded hold applied after a cache acquires
	// permission, long enough to finish a short critical section (§3.2).
	ResponseDelay sim.Time

	// InitialTimeout seeds the per-L1 timeout estimator before any
	// memory response has been observed.
	InitialTimeout sim.Time

	// CacheParams. Sizes are per structure (per L1, per L2 bank).
	L1Size, L1Ways     int
	L2BankSize, L2Ways int

	// Tokens per block; zero means token.TokenCountFor(#caches).
	T int

	// Seed perturbs pseudo-random choices (retry backoff, predictor
	// reset), implementing the Alameldeen-Wood perturbation methodology.
	Seed int64

	// DisableMigratory turns off the migratory-sharing optimization.
	// Exactly as the paper argues (§5), this is a pure performance-policy
	// change — the number of tokens returned to a read request — and
	// cannot affect correctness.
	DisableMigratory bool
}

// DefaultConfig returns the Table 3 target-system parameters for the
// given geometry and variant.
func DefaultConfig(g topo.Geometry, v Variant) Config {
	cfg := Config{
		Geom:           g,
		Variant:        v,
		L1Latency:      sim.NS(2),
		L2Latency:      sim.NS(7),
		MemLatency:     sim.NS(6),
		DRAMLatency:    sim.NS(80),
		ResponseDelay:  sim.NS(30),
		InitialTimeout: sim.NS(400),
		L1Size:         128 << 10,
		L1Ways:         4,
		L2BankSize:     (8 << 20) / 4,
		L2Ways:         4,
		Seed:           1,
	}
	cfg.T = token.TokenCountFor(len(g.AllCaches()))
	return cfg
}
