package tokencmp

import (
	"fmt"

	"tokencmp/internal/cache"
	"tokencmp/internal/mem"
	"tokencmp/internal/network"
	"tokencmp/internal/stats"
	"tokencmp/internal/token"
	"tokencmp/internal/topo"
)

// L2Stats counts per-bank protocol events.
type L2Stats struct {
	LocalRequests      uint64
	ExternalRequests   uint64
	ExternalBroadcasts uint64
	FwdToL1s           uint64
	FilteredFwds       uint64
	Writebacks         uint64
}

// presence tracks the L2 bank's view of tokens held by its CMP's L1
// caches (including L1-to-L1 transfers in flight on the on-chip
// interconnect, which the bank observes). This is what lets the policy
// stay on chip when the block is local — the "hierarchical for
// performance" half of the design.
type presence struct {
	tokens int
	owner  bool
}

// L2Ctrl is a TokenCMP shared-L2 bank controller.
type L2Ctrl struct {
	base
	cmp, bank int

	cache   *cache.Array[token.State]
	onChip  map[mem.Block]*presence
	sharers map[mem.Block]uint64 // approximate L1-sharer bits (filter variant)

	Stats L2Stats
}

func newL2(sys *System, id topo.NodeID, cmp, bank int) *L2Ctrl {
	cfg := sys.Cfg
	c := &L2Ctrl{
		cmp:     cmp,
		bank:    bank,
		cache:   cache.New[token.State](cache.Params{SizeBytes: cfg.L2BankSize, Ways: cfg.L2Ways, BlockSize: mem.BlockSize}),
		onChip:  make(map[mem.Block]*presence),
		sharers: make(map[mem.Block]uint64),
	}
	c.initTables(sys, id)
	c.accessLatency = cfg.L2Latency
	c.lookup = func(b mem.Block) *token.State {
		if l := c.cache.Lookup(b); l != nil {
			return &l.State
		}
		return nil
	}
	c.onEmpty = func(b mem.Block) { c.cache.Invalidate(b) }
	return c
}

func (c *L2Ctrl) presenceOf(b mem.Block) *presence {
	p := c.onChip[b]
	if p == nil {
		p = &presence{}
		c.onChip[b] = p
	}
	return p
}

// l1Bit returns the sharer-mask bit for a local L1 endpoint.
func (c *L2Ctrl) l1Bit(id topo.NodeID) uint64 {
	g := c.sys.Geom
	idx := g.IndexOf(id)
	if g.KindOf(id) == topo.L1I {
		idx += g.ProcsPerCMP
	}
	return 1 << uint(idx)
}

// noteL1Gain records tokens arriving at a local L1 from off-chip or from
// this bank.
func (c *L2Ctrl) noteL1Gain(b mem.Block, tokens int, owner bool, l1 topo.NodeID) {
	p := c.presenceOf(b)
	p.tokens += tokens
	if owner {
		p.owner = true
	}
	if tokens > 0 {
		c.sharers[b] |= c.l1Bit(l1)
	}
}

// noteL1Loss records tokens leaving a local L1 toward this bank, another
// bank, or off-chip.
func (c *L2Ctrl) noteL1Loss(b mem.Block, tokens int, owner bool, l1 topo.NodeID, emptied bool) {
	p := c.presenceOf(b)
	p.tokens -= tokens
	if p.tokens < 0 {
		p.tokens = 0
	}
	if owner {
		p.owner = false
	}
	if emptied {
		c.sharers[b] &^= c.l1Bit(l1)
	}
	if p.tokens == 0 && !p.owner {
		delete(c.onChip, b)
	}
}

// noteL1Transfer records an L1-to-L1 transfer: on-chip totals are
// unchanged but the sharer mask moves.
func (c *L2Ctrl) noteL1Transfer(b mem.Block, from, to topo.NodeID, fromEmptied bool) {
	if fromEmptied {
		c.sharers[b] &^= c.l1Bit(from)
	}
	c.sharers[b] |= c.l1Bit(to)
}

// Closure-free deferred-handling thunks: the bank holds a pooled copy
// of the message across its tag-access delay and frees it afterwards.
func l2Local(ctx, arg any) {
	c, m := ctx.(*L2Ctrl), arg.(*network.Message)
	c.handleLocal(m)
	c.sys.Net.Free(m)
}

func l2External(ctx, arg any) {
	c, m := ctx.(*L2Ctrl), arg.(*network.Message)
	c.handleExternal(m)
	c.sys.Net.Free(m)
}

func l2Writeback(ctx, arg any) {
	c, m := ctx.(*L2Ctrl), arg.(*network.Message)
	c.handleWriteback(m)
	c.sys.Net.Free(m)
}

// Recv implements network.Endpoint.
func (c *L2Ctrl) Recv(m *network.Message) {
	switch m.Kind {
	case kTransient:
		if c.sys.Geom.CMPOf(m.Src) == c.cmp {
			c.sys.Eng.ScheduleCall(c.sys.Cfg.L2Latency, l2Local, c, c.sys.Net.CopyOf(m))
		} else {
			c.sys.Eng.ScheduleCall(c.sys.Cfg.L2Latency, l2External, c, c.sys.Net.CopyOf(m))
		}
	case kWriteback, kResponse:
		// Stray kResponse tokens routed to the bank (e.g. returned by
		// memory) merge like a writeback.
		c.sys.Eng.ScheduleCall(c.sys.Cfg.L2Latency, l2Writeback, c, c.sys.Net.CopyOf(m))
	default:
		if c.handlePersistentMsg(m) {
			return
		}
		panic(fmt.Sprintf("tokencmp: L2 %v cannot handle %s", c.id, kindName(m.Kind)))
	}
}

// respond sends tokens/data from the bank's own state to a requester,
// applying the Section 4 response rules. external selects the inter-CMP
// rules (respond to reads only as owner; include up to C tokens). It
// reports whether a response was sent and whether it carried data.
func (c *L2Ctrl) respond(m *network.Message, external bool) (responded, withData bool) {
	b := m.Block
	if c.transientBlocked(b, m.Requestor) {
		return false, false
	}
	s := c.lookup(b)
	if s == nil || s.Tokens == 0 {
		return false, false
	}
	rk := token.ReqKind(m.Aux)
	T := c.sys.Cfg.T

	var resp network.Message
	emptied := false
	switch {
	case rk == token.ReqWrite:
		tk, own, hasData, data, dirty := s.TakeAll()
		resp = network.Message{Tokens: tk, Owner: own, HasData: own && hasData, Data: data, Dirty: dirty}
		emptied = true
	case s.Owner && s.Tokens == T && s.Dirty && !c.sys.Cfg.DisableMigratory:
		tk, own, _, data, dirty := s.TakeAll()
		resp = network.Message{Tokens: tk, Owner: own, HasData: true, Data: data, Dirty: dirty}
		emptied = true
	case s.Owner && s.Tokens >= 2:
		n := 1
		if external {
			n = minInt(c.sys.Geom.CachesPerCMP(), s.Tokens-1)
		}
		s.Tokens -= n
		resp = network.Message{Tokens: n, HasData: true, Data: s.Data}
	case s.Owner:
		tk, own, _, data, dirty := s.TakeAll()
		resp = network.Message{Tokens: tk, Owner: own, HasData: true, Data: data, Dirty: dirty}
		emptied = true
	case !external && s.Tokens >= 2 && s.HasData:
		s.Tokens--
		resp = network.Message{Tokens: 1, HasData: true, Data: s.Data}
	default:
		return false, false
	}

	resp.Src = c.id
	resp.Dst = m.Requestor
	resp.Block = b
	resp.Kind = kResponse
	if resp.HasData {
		resp.Class = stats.ResponseData
	} else {
		resp.Class = stats.InvFwdAckTokens
	}
	// Tokens sent to a local L1 stay on chip.
	g := c.sys.Geom
	if g.IsCache(resp.Dst) && g.CMPOf(resp.Dst) == c.cmp {
		c.noteL1Gain(b, resp.Tokens, resp.Owner, resp.Dst)
	}
	c.sys.Net.SendNew(resp)
	if emptied {
		c.cache.Invalidate(b)
	}
	return true, resp.HasData
}

// handleLocal serves a transient request from a local L1 and decides
// whether the request must also be broadcast off-chip (the L2-miss path
// of the hierarchical policy).
func (c *L2Ctrl) handleLocal(m *network.Message) {
	c.Stats.LocalRequests++
	b := m.Block
	rk := token.ReqKind(m.Aux)

	_, respondedWithData := c.respond(m, false)

	// External decision based on the bank's own remaining tokens plus its
	// view of tokens held by local L1s.
	var own int
	if s := c.lookup(b); s != nil {
		own = s.Tokens
	}
	p := c.onChip[b]
	onTokens, onOwner := 0, false
	if p != nil {
		onTokens, onOwner = p.tokens, p.owner
	}

	goExternal := false
	if rk == token.ReqWrite {
		goExternal = own+onTokens < c.sys.Cfg.T
	} else {
		goExternal = !respondedWithData && !onOwner
	}
	if !goExternal {
		return
	}
	c.Stats.ExternalBroadcasts++
	g := c.sys.Geom
	var dsts []topo.NodeID
	for cmp := 0; cmp < g.CMPs; cmp++ {
		if cmp == c.cmp {
			continue
		}
		dsts = append(dsts, g.L2BankFor(cmp, b))
	}
	dsts = append(dsts, g.HomeMem(b))
	tmpl := &network.Message{
		Src:       c.id,
		Block:     b,
		Kind:      kTransient,
		Class:     stats.Request,
		Aux:       m.Aux,
		Requestor: m.Requestor,
		Proc:      m.Proc,
	}
	c.sys.Net.Broadcast(tmpl, dsts)
}

// handleExternal serves a transient request arriving from another CMP:
// respond from the bank's own tokens per the external rules, then forward
// to local L1s (all of them, or — with the filter — only the approximate
// sharer set; persistent requests are never filtered).
func (c *L2Ctrl) handleExternal(m *network.Message) {
	c.Stats.ExternalRequests++
	b := m.Block
	rk := token.ReqKind(m.Aux)

	respondedAsOwner := false
	if s := c.lookup(b); rk == token.ReqRead && s != nil && s.Tokens > 0 && s.Owner {
		respondedAsOwner, _ = c.respond(m, true)
	} else if rk == token.ReqWrite {
		c.respond(m, true)
	}

	// Reads satisfied by this bank as owner need no L1 involvement.
	if respondedAsOwner {
		return
	}

	// No point disturbing the L1s when none of them holds a token (the
	// bank observes all on-chip token movement); correctness never
	// depends on this because persistent requests are never filtered.
	p := c.onChip[b]
	if p == nil || p.tokens == 0 {
		return
	}
	if token.ReqKind(m.Aux) == token.ReqRead && !p.owner {
		return // external reads are answered only by the owner
	}
	g := c.sys.Geom
	l1s := g.L1sInCMP(c.cmp)
	fwd := network.Message{
		Src:       c.id,
		Block:     b,
		Kind:      kFwdExternal,
		Class:     stats.Request,
		Aux:       m.Aux,
		Requestor: m.Requestor,
		Proc:      m.Proc,
	}
	if c.sys.Cfg.Variant.Filter {
		mask := c.sharers[b]
		for _, l1 := range l1s {
			if mask&c.l1Bit(l1) != 0 {
				fwd.Dst = l1
				c.sys.Net.SendNew(fwd)
				c.Stats.FwdToL1s++
				c.sys.ctr.fwdSent.Inc()
			} else {
				c.Stats.FilteredFwds++
			}
		}
		return
	}
	for _, l1 := range l1s {
		fwd.Dst = l1
		c.sys.Net.SendNew(fwd)
		c.Stats.FwdToL1s++
		c.sys.ctr.fwdSent.Inc()
	}
}

// handleWriteback merges tokens arriving from local L1 writebacks (or
// stray responses), evicting to the home memory if the set is full.
func (c *L2Ctrl) handleWriteback(m *network.Message) {
	c.Stats.Writebacks++
	c.sys.ctr.l2Writeback.Inc()
	b := m.Block
	line, victim, vstate, evicted := c.cache.Install(b)
	if evicted {
		c.writebackVictim(victim, vstate)
	}
	line.State.Merge(m.Tokens, m.Owner, m.HasData, m.Data, m.Dirty)
	c.reeval(b)
}

func (c *L2Ctrl) writebackVictim(victim mem.Block, st token.State) {
	if st.Tokens == 0 {
		return
	}
	cls := stats.WritebackControl
	hasData := st.Owner
	if hasData {
		cls = stats.WritebackData
	}
	c.sys.Net.SendNew(network.Message{
		Src:     c.id,
		Dst:     c.sys.Geom.HomeMem(victim),
		Block:   victim,
		Kind:    kWriteback,
		Class:   cls,
		Tokens:  st.Tokens,
		Owner:   st.Owner,
		HasData: hasData,
		Data:    st.Data,
		Dirty:   st.Dirty,
	})
}
