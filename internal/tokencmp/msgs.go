package tokencmp

import "tokencmp/internal/network"

// Message kinds. Transient requests, responses, and writebacks implement
// the performance policy; the persistent-request kinds belong to the
// correctness substrate.
const (
	// kTransient is a transient read or write request. Aux carries the
	// token.ReqKind; Requestor is the requesting cache; Proc the global
	// processor index. Sent intra-CMP by L1s and inter-CMP by L2 banks.
	kTransient = iota
	// kFwdExternal is an external transient request forwarded by an L2
	// bank to its local L1 caches.
	kFwdExternal
	// kResponse carries tokens (and possibly the owner token and data)
	// directly to the requesting cache.
	kResponse
	// kWriteback carries evicted tokens (and data if the owner token is
	// included) from an L1 to its L2 bank or from an L2 bank to the home
	// memory controller.
	kWriteback
	// kPersistent inserts a distributed-activation persistent request at
	// every endpoint. Aux is the token.ReqKind; Proc the issuing
	// processor; Requestor the destination cache.
	kPersistent
	// kPersistentDone deactivates processor Proc's distributed persistent
	// request at every endpoint.
	kPersistentDone
	// kArbRequest asks the home memory controller's arbiter to queue a
	// persistent request.
	kArbRequest
	// kArbDone tells the arbiter the active request for Block completed.
	kArbDone
	// kArbActivate is broadcast by the arbiter to activate one persistent
	// request at every endpoint.
	kArbActivate
	// kArbDeactivate is broadcast by the arbiter when the active request
	// for Block is done.
	kArbDeactivate
)

// classifyFault maps message kinds to fault-injection classes — the
// protocol's statement of which losses it claims to survive (installed
// on the network by NewSystem).
//
// Transient requests and their intra-CMP forwards are freely droppable,
// duplicable, and reorderable: token counting makes re-received requests
// look exactly like the retries the protocol already issues, and a lost
// request is re-sent by the requestor's timeout (escalating to a
// persistent request if retries keep failing) — this is the paper's
// robustness claim, so the injector gets to attack it.
//
// Responses and writebacks carry tokens and possibly data; losing one
// would destroy tokens forever, which the protocol cannot recover
// without token recreation (Section 2 of the token-coherence papers, not
// modeled here). They ride the ack+retransmit shim instead: a drop costs
// latency and bandwidth, never tokens.
//
// The persistent-request machinery (distributed table inserts/erases and
// the arbiter's queue/activate/deactivate traffic) is protected: those
// messages maintain replicated table state, and the protocol's
// correctness argument assumes table updates are reliable and per-link
// ordered. Attacking them tests a claim the paper never makes.
func classifyFault(m *network.Message) network.FaultClass {
	switch m.Kind {
	case kTransient, kFwdExternal:
		return network.FaultDroppable
	case kResponse, kWriteback:
		return network.FaultRetx
	default:
		return network.FaultProtected
	}
}

func kindName(k int) string {
	switch k {
	case kTransient:
		return "Transient"
	case kFwdExternal:
		return "FwdExternal"
	case kResponse:
		return "Response"
	case kWriteback:
		return "Writeback"
	case kPersistent:
		return "Persistent"
	case kPersistentDone:
		return "PersistentDone"
	case kArbRequest:
		return "ArbRequest"
	case kArbDone:
		return "ArbDone"
	case kArbActivate:
		return "ArbActivate"
	case kArbDeactivate:
		return "ArbDeactivate"
	}
	return "?"
}
