// Package tokencmp implements the TokenCMP protocol family (Section 4):
// performance policies layered over the flat token-coherence correctness
// substrate of internal/token. The policies are hierarchical — an L1 miss
// broadcasts only within its CMP; the L2 bank broadcasts to other CMPs
// and the home memory only on an L2 miss — while correctness remains flat
// token counting among all caches and memory controllers.
package tokencmp

import "fmt"

// Activation selects the persistent-request activation mechanism (§3.2).
type Activation int

// Activation mechanisms.
const (
	Arbiter Activation = iota
	Distributed
)

func (a Activation) String() string {
	if a == Arbiter {
		return "arbiter"
	}
	return "distributed"
}

// Variant is one row of Table 1.
type Variant struct {
	Name string
	// MaxTransients is the number of transient requests (initial plus
	// retries) issued before the substrate escalates to a persistent
	// request. Zero means persistent-only (no performance policy).
	MaxTransients int
	Activation    Activation
	// Predictor enables the contended-block predictor that skips the
	// transient request entirely (TokenCMP-dst1-pred).
	Predictor bool
	// Filter enables the approximate L1-sharer directory used to filter
	// incoming external transient requests (TokenCMP-dst1-filt).
	Filter bool
}

func (v Variant) String() string { return v.Name }

// The Table 1 variants.
var (
	Arb0     = Variant{Name: "TokenCMP-arb0", MaxTransients: 0, Activation: Arbiter}
	Dst0     = Variant{Name: "TokenCMP-dst0", MaxTransients: 0, Activation: Distributed}
	Dst4     = Variant{Name: "TokenCMP-dst4", MaxTransients: 4, Activation: Distributed}
	Dst1     = Variant{Name: "TokenCMP-dst1", MaxTransients: 1, Activation: Distributed}
	Dst1Pred = Variant{Name: "TokenCMP-dst1-pred", MaxTransients: 1, Activation: Distributed, Predictor: true}
	Dst1Filt = Variant{Name: "TokenCMP-dst1-filt", MaxTransients: 1, Activation: Distributed, Filter: true}
)

// Variants returns all Table 1 rows in paper order.
func Variants() []Variant {
	return []Variant{Arb0, Dst0, Dst4, Dst1, Dst1Pred, Dst1Filt}
}

// VariantByName finds a variant by its paper name.
func VariantByName(name string) (Variant, error) {
	for _, v := range Variants() {
		if v.Name == name {
			return v, nil
		}
	}
	return Variant{}, fmt.Errorf("tokencmp: unknown variant %q", name)
}
