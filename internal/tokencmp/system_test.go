package tokencmp

import (
	"testing"

	"tokencmp/internal/cpu"
	"tokencmp/internal/mem"
	"tokencmp/internal/network"
	"tokencmp/internal/sim"
	"tokencmp/internal/topo"
)

func testSystem(t *testing.T, v Variant) (*sim.Engine, *System) {
	t.Helper()
	eng := sim.NewEngine()
	g := topo.NewGeometry(2, 2, 1)
	cfg := DefaultConfig(g, v)
	cfg.L1Size = 4 << 10
	cfg.L2BankSize = 32 << 10
	return eng, NewSystem(eng, cfg, network.Default())
}

// run drives the engine until cond or failure.
func run(t *testing.T, eng *sim.Engine, cond func() bool, what string) {
	t.Helper()
	if !eng.RunUntil(cond, 2_000_000) {
		t.Fatalf("%s: did not complete (events=%d, pending=%d, now=%v)",
			what, eng.Executed, eng.Pending(), eng.Now())
	}
}

func access(port cpu.MemPort, kind cpu.AccessKind, a mem.Addr, v uint64, done *bool, out *uint64) {
	port.Access(kind, a, v, func(val uint64) {
		*done = true
		if out != nil {
			*out = val
		}
	})
}

func TestSingleLoadFromMemory(t *testing.T) {
	for _, v := range Variants() {
		v := v
		t.Run(v.Name, func(t *testing.T) {
			eng, sys := testSystem(t, v)
			data, _ := sys.Ports(0)
			var done bool
			var val uint64
			access(data, cpu.Load, 0x1000, 0, &done, &val)
			run(t, eng, func() bool { return done }, "load")
			if val != 0 {
				t.Errorf("initial load = %d, want 0", val)
			}
			if err := sys.TokenAudit(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestStoreThenRemoteLoad(t *testing.T) {
	for _, v := range Variants() {
		v := v
		t.Run(v.Name, func(t *testing.T) {
			eng, sys := testSystem(t, v)
			p0, _ := sys.Ports(0)
			p3, _ := sys.Ports(3) // other CMP
			var done bool
			access(p0, cpu.Store, 0x2000, 42, &done, nil)
			run(t, eng, func() bool { return done }, "store")

			done = false
			var val uint64
			access(p3, cpu.Load, 0x2000, 0, &done, &val)
			run(t, eng, func() bool { return done }, "remote load")
			if val != 42 {
				t.Errorf("remote load = %d, want 42", val)
			}
			if err := sys.TokenAudit(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestAtomicSwapSerializes(t *testing.T) {
	for _, v := range Variants() {
		v := v
		t.Run(v.Name, func(t *testing.T) {
			eng, sys := testSystem(t, v)
			const addr = 0x3000
			results := make([]uint64, 4)
			doneCount := 0
			for i := 0; i < 4; i++ {
				i := i
				d, _ := sys.Ports(i)
				d.Access(cpu.Atomic, addr, uint64(i+1), func(old uint64) {
					results[i] = old
					doneCount++
				})
			}
			run(t, eng, func() bool { return doneCount == 4 }, "atomics")

			// The four swaps must linearize: the set of observed old
			// values must be {0} ∪ three of the written values, all
			// distinct.
			seen := map[uint64]bool{}
			for _, r := range results {
				if seen[r] {
					t.Fatalf("duplicate swap result %d: %v (atomicity violated)", r, results)
				}
				seen[r] = true
			}
			if !seen[0] {
				t.Errorf("no swap observed the initial value: %v", results)
			}
			if err := sys.TokenAudit(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestContendedStores(t *testing.T) {
	for _, v := range Variants() {
		v := v
		t.Run(v.Name, func(t *testing.T) {
			eng, sys := testSystem(t, v)
			const addr = 0x4000
			total := 0
			var issue func(proc, n int)
			issue = func(proc, n int) {
				if n == 0 {
					return
				}
				d, _ := sys.Ports(proc)
				d.Access(cpu.Store, addr, uint64(proc*100+n), func(uint64) {
					total++
					issue(proc, n-1)
				})
			}
			for p := 0; p < 4; p++ {
				issue(p, 5)
			}
			run(t, eng, func() bool { return total == 20 }, "contended stores")
			if err := sys.TokenAudit(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
