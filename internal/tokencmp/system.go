package tokencmp

import (
	"fmt"

	"tokencmp/internal/counters"
	"tokencmp/internal/cpu"
	"tokencmp/internal/mem"
	"tokencmp/internal/network"
	"tokencmp/internal/sim"
	"tokencmp/internal/token"
	"tokencmp/internal/topo"
)

// System is a complete TokenCMP machine: caches, memory controllers, and
// the two-level interconnect, for one Table 1 variant.
type System struct {
	Eng  *sim.Engine
	Net  *network.Network
	Cfg  Config
	Geom topo.Geometry

	Ctrs *counters.Set
	ctr  *ctrs

	L1Ds [][]*L1Ctrl // [cmp][proc]
	L1Is [][]*L1Ctrl
	L2s  [][]*L2Ctrl // [cmp][bank]
	Mems []*MemCtrl

	allEndpoints []topo.NodeID
}

// NewSystem wires a TokenCMP machine on the given engine and network
// configuration.
func NewSystem(eng *sim.Engine, cfg Config, netCfg network.Config) *System {
	g := cfg.Geom
	if cfg.T == 0 {
		cfg.T = token.TokenCountFor(len(g.AllCaches()))
	}
	s := &System{
		Eng:  eng,
		Cfg:  cfg,
		Geom: g,
		Net:  network.New(eng, g, netCfg),
	}
	s.allEndpoints = g.AllNodes()
	s.Ctrs = counters.NewSet()
	s.ctr = newCtrs(s.Ctrs)
	s.Net.WireCounters(s.Ctrs)
	// Token coherence claims survival of an ill-behaved interconnect, so
	// it opts its transient traffic into fault injection (see
	// classifyFault for the per-kind policy).
	s.Net.Classify = classifyFault

	s.L1Ds = make([][]*L1Ctrl, g.CMPs)
	s.L1Is = make([][]*L1Ctrl, g.CMPs)
	s.L2s = make([][]*L2Ctrl, g.CMPs)
	s.Mems = make([]*MemCtrl, g.CMPs)
	for c := 0; c < g.CMPs; c++ {
		s.L1Ds[c] = make([]*L1Ctrl, g.ProcsPerCMP)
		s.L1Is[c] = make([]*L1Ctrl, g.ProcsPerCMP)
		s.L2s[c] = make([]*L2Ctrl, g.L2Banks)
		for b := 0; b < g.L2Banks; b++ {
			l2 := newL2(s, g.L2Node(c, b), c, b)
			s.L2s[c][b] = l2
			s.Net.Attach(l2.id, l2)
		}
		for p := 0; p < g.ProcsPerCMP; p++ {
			d := newL1(s, g.L1DNode(c, p), c, p, false)
			i := newL1(s, g.L1INode(c, p), c, p, true)
			d.banks = s.L2s[c]
			i.banks = s.L2s[c]
			s.L1Ds[c][p] = d
			s.L1Is[c][p] = i
			s.Net.Attach(d.id, d)
			s.Net.Attach(i.id, i)
		}
		m := newMem(s, g.MemNode(c), c)
		s.Mems[c] = m
		s.Net.Attach(m.id, m)
	}
	return s
}

// Ports returns the data and instruction memory ports of a global
// processor index.
func (s *System) Ports(globalProc int) (data, inst cpu.MemPort) {
	c, p := s.Geom.ProcOf(globalProc)
	return s.L1Ds[c][p], s.L1Is[c][p]
}

// Name reports the variant name.
func (s *System) Name() string { return s.Cfg.Variant.Name }

// Counters exposes the machine-wide uniform event-counter registry.
func (s *System) Counters() *counters.Set { return s.Ctrs }

// caches iterates over all cache controllers' base views.
func (s *System) eachCacheState(fn func(id topo.NodeID, b mem.Block, st *token.State)) {
	for c := range s.L1Ds {
		for p := range s.L1Ds[c] {
			id := s.L1Ds[c][p].id
			s.L1Ds[c][p].cache.ForEach(func(b mem.Block, st *token.State) { fn(id, b, st) })
			iid := s.L1Is[c][p].id
			s.L1Is[c][p].cache.ForEach(func(b mem.Block, st *token.State) { fn(iid, b, st) })
		}
		for bk := range s.L2s[c] {
			id := s.L2s[c][bk].id
			s.L2s[c][bk].cache.ForEach(func(b mem.Block, st *token.State) { fn(id, b, st) })
		}
	}
}

// TokenAudit verifies the substrate's safety invariant for every
// materialized block: exactly T tokens and exactly one owner token exist
// across all caches, memory, and in-flight messages, and at most one
// cache holds all T tokens.
func (s *System) TokenAudit() error {
	type tally struct {
		tokens, owners int
		writers        int
	}
	tallies := make(map[mem.Block]*tally)
	get := func(b mem.Block) *tally {
		t := tallies[b]
		if t == nil {
			t = &tally{}
			tallies[b] = t
		}
		return t
	}

	s.eachCacheState(func(_ topo.NodeID, b mem.Block, st *token.State) {
		t := get(b)
		t.tokens += st.Tokens
		if st.Owner {
			t.owners++
		}
		if st.Tokens == s.Cfg.T {
			t.writers++
		}
	})
	for _, m := range s.Mems {
		for _, b := range m.Touched() {
			st, _ := m.StateOf(b)
			t := get(b)
			t.tokens += st.Tokens
			if st.Owner {
				t.owners++
			}
		}
	}
	s.Net.EachInFlight(func(b mem.Block, tokens, owners int) {
		t := get(b)
		t.tokens += tokens
		t.owners += owners
	})

	for b, t := range tallies {
		if t.tokens != s.Cfg.T {
			return fmt.Errorf("token conservation violated for %v: have %d tokens, want %d", b, t.tokens, s.Cfg.T)
		}
		if t.owners != 1 {
			return fmt.Errorf("owner-token invariant violated for %v: %d owners", b, t.owners)
		}
		if t.writers > 1 {
			return fmt.Errorf("coherence invariant violated for %v: %d concurrent writers", b, t.writers)
		}
	}
	return nil
}

// PersistentRequests totals persistent requests issued by all L1s.
func (s *System) PersistentRequests() uint64 {
	var n uint64
	for c := range s.L1Ds {
		for p := range s.L1Ds[c] {
			n += s.L1Ds[c][p].Stats.PersistentReqs + s.L1Is[c][p].Stats.PersistentReqs
		}
	}
	return n
}

// Misses totals L1 misses.
func (s *System) Misses() uint64 {
	var n uint64
	for c := range s.L1Ds {
		for p := range s.L1Ds[c] {
			n += s.L1Ds[c][p].Stats.Misses + s.L1Is[c][p].Stats.Misses
		}
	}
	return n
}
