package tokencmp

import (
	"fmt"
	"slices"

	"tokencmp/internal/mem"
	"tokencmp/internal/network"
	"tokencmp/internal/sim"
	"tokencmp/internal/stats"
	"tokencmp/internal/token"
	"tokencmp/internal/topo"
)

// MemStats counts per-memory-controller events.
type MemStats struct {
	Requests   uint64
	DataResps  uint64
	Writebacks uint64
	ArbQueued  uint64
}

// MemCtrl is a TokenCMP memory controller. Memory is just another token
// holder in the flat substrate: per block it stores a token count (all T
// initially, with the owner token and the backing data) and, in the
// arbiter-based variants, it hosts the persistent-request arbiter for its
// home blocks.
type MemCtrl struct {
	base
	cmp   int
	store map[mem.Block]*token.State
	arb   *token.Arbiter

	Stats MemStats
}

func newMem(sys *System, id topo.NodeID, cmp int) *MemCtrl {
	c := &MemCtrl{
		cmp:   cmp,
		store: make(map[mem.Block]*token.State),
		arb:   token.NewArbiter(),
	}
	c.initTables(sys, id)
	c.accessLatency = sys.Cfg.MemLatency
	c.dataDelay = sys.Cfg.DRAMLatency
	c.isMem = true
	c.lookup = func(b mem.Block) *token.State { return c.stateFor(b) }
	return c
}

// isHome reports whether this controller is block b's home.
func (c *MemCtrl) isHome(b mem.Block) bool {
	return c.sys.Geom.HomeMem(b) == c.id
}

// stateFor lazily materializes a home block: all T tokens at memory,
// owner, clean data with the initial value zero. Blocks homed elsewhere
// have no state here (tokens exist in exactly one memory), so stateFor
// returns nil for them unless tokens were explicitly delivered.
func (c *MemCtrl) stateFor(b mem.Block) *token.State {
	s := c.store[b]
	if s == nil && c.isHome(b) {
		s = &token.State{Tokens: c.sys.Cfg.T, Owner: true, HasData: true}
		c.store[b] = s
	}
	return s
}

// Touched lists blocks that have materialized state, in ascending
// block order so audit passes visit them deterministically.
func (c *MemCtrl) Touched() []mem.Block {
	out := make([]mem.Block, 0, len(c.store))
	for b := range c.store {
		out = append(out, b)
	}
	slices.Sort(out)
	return out
}

// StateOf returns the memory-side state for b without materializing.
func (c *MemCtrl) StateOf(b mem.Block) (*token.State, bool) {
	s, ok := c.store[b]
	return s, ok
}

// Closure-free deferred-handling thunks: the controller holds a pooled
// copy of the message across its array-access delay and frees it after.
func memRequest(ctx, arg any) {
	c, m := ctx.(*MemCtrl), arg.(*network.Message)
	c.handleRequest(m)
	c.sys.Net.Free(m)
}

func memWriteback(ctx, arg any) {
	c, m := ctx.(*MemCtrl), arg.(*network.Message)
	c.handleWriteback(m)
	c.sys.Net.Free(m)
}

func memArbRequest(ctx, arg any) {
	c, m := ctx.(*MemCtrl), arg.(*network.Message)
	c.handleArbRequest(m)
	c.sys.Net.Free(m)
}

func memArbDone(ctx, arg any) {
	c, m := ctx.(*MemCtrl), arg.(*network.Message)
	c.handleArbDone(m)
	c.sys.Net.Free(m)
}

// Recv implements network.Endpoint.
func (c *MemCtrl) Recv(m *network.Message) {
	switch m.Kind {
	case kTransient:
		c.sys.Eng.ScheduleCall(c.sys.Cfg.MemLatency, memRequest, c, c.sys.Net.CopyOf(m))
	case kWriteback, kResponse:
		c.sys.Eng.ScheduleCall(c.sys.Cfg.MemLatency, memWriteback, c, c.sys.Net.CopyOf(m))
	case kArbRequest:
		c.sys.Eng.ScheduleCall(c.sys.Cfg.MemLatency, memArbRequest, c, c.sys.Net.CopyOf(m))
	case kArbDone:
		c.sys.Eng.ScheduleCall(c.sys.Cfg.MemLatency, memArbDone, c, c.sys.Net.CopyOf(m))
	default:
		if c.handlePersistentMsg(m) {
			return
		}
		panic(fmt.Sprintf("tokencmp: mem %v cannot handle %s", c.id, kindName(m.Kind)))
	}
}

func (c *MemCtrl) handleRequest(m *network.Message) {
	c.Stats.Requests++
	b := m.Block
	if c.transientBlocked(b, m.Requestor) {
		return
	}
	s := c.stateFor(b)
	if s == nil || s.Tokens == 0 {
		return
	}
	rk := token.ReqKind(m.Aux)

	var tmpl network.Message
	switch {
	case rk == token.ReqWrite:
		tk, own, hasData, data, dirty := s.TakeAll()
		tmpl = network.Message{Tokens: tk, Owner: own, HasData: own && hasData, Data: data, Dirty: dirty}
	case s.Owner:
		// Read: when memory holds every token, hand them all over — the
		// exclusive-clean (E state) analog, letting the reader upgrade to
		// a write silently (§4's "respond to a read request with all T
		// tokens"). Otherwise send data plus up to C tokens so future
		// requests in the reader's CMP hit locally.
		if s.Tokens == c.sys.Cfg.T || s.Tokens < 2 {
			tk, own, _, data, dirty := s.TakeAll()
			tmpl = network.Message{Tokens: tk, Owner: own, HasData: true, Data: data, Dirty: dirty}
		} else {
			n := minInt(c.sys.Geom.CachesPerCMP(), s.Tokens-1)
			s.Tokens -= n
			tmpl = network.Message{Tokens: n, HasData: true, Data: s.Data}
		}
	default:
		return // token-only memory stays silent on reads; the owner cache responds
	}

	tmpl.Src = c.id
	tmpl.Dst = m.Requestor
	tmpl.Block = b
	tmpl.Kind = kResponse
	delay := sim.Time(0)
	if tmpl.HasData {
		tmpl.Class = stats.ResponseData
		delay = c.sys.Cfg.DRAMLatency
		c.Stats.DataResps++
		c.sys.ctr.memRead.Inc()
	} else {
		tmpl.Class = stats.InvFwdAckTokens
	}
	resp := c.sys.Net.NewMessage()
	*resp = tmpl
	c.sys.Net.SendAfter(delay, resp)
}

func (c *MemCtrl) handleWriteback(m *network.Message) {
	c.Stats.Writebacks++
	c.sys.ctr.memWrite.Inc()
	s := c.store[m.Block]
	if s == nil {
		// Tokens delivered to a non-home controller (should not happen,
		// but the substrate must never lose tokens).
		s = &token.State{}
		c.store[m.Block] = s
	}
	s.Merge(m.Tokens, m.Owner, m.HasData, m.Data, m.Dirty)
	if s.Owner {
		s.Dirty = false // memory is the backing store
	}
	c.reeval(m.Block)
}

// handleArbRequest implements the arbiter side of the original
// persistent-request scheme: fair FIFO per block, one activation at a
// time, activation and deactivation broadcast to every endpoint.
func (c *MemCtrl) handleArbRequest(m *network.Message) {
	rk := token.ReqKind(m.Aux)
	if c.arb.Request(m.Block, m.Proc, rk, m.Requestor) {
		c.broadcastActivate(m.Block, rk, m.Requestor, m.Proc)
	} else {
		c.Stats.ArbQueued++
	}
}

func (c *MemCtrl) handleArbDone(m *network.Message) {
	// Deactivate everywhere, then activate the next queued request.
	_, _, wasActive, hasNext := c.arb.Cancel(m.Block, m.Proc)
	if wasActive {
		tmpl := &network.Message{
			Src:   c.id,
			Block: m.Block,
			Kind:  kArbDeactivate,
			Class: stats.Persistent,
			Proc:  m.Proc,
		}
		c.sys.Net.Broadcast(tmpl, c.sys.allEndpoints)
		c.atable.Deactivate(m.Block, m.Proc)
	}
	if hasNext {
		if e, proc, ok := c.arb.ActiveFor(m.Block); ok {
			c.broadcastActivate(m.Block, e.Kind, e.Dest, proc)
		}
	}
}

func (c *MemCtrl) broadcastActivate(b mem.Block, rk token.ReqKind, dest topo.NodeID, proc int) {
	tmpl := &network.Message{
		Src:       c.id,
		Block:     b,
		Kind:      kArbActivate,
		Class:     stats.Persistent,
		Aux:       int(rk),
		Requestor: dest,
		Proc:      proc,
	}
	c.sys.Net.Broadcast(tmpl, c.sys.allEndpoints)
	// Activate locally too (Broadcast skips the source).
	c.atable.Activate(b, rk, dest, proc)
	c.reeval(b)
}
