package tokencmp

import (
	"math/rand"

	"tokencmp/internal/mem"
)

// predictor is TokenCMP-dst1-pred's contended-block detector: a four-way
// set-associative, 256-entry table of 2-bit saturating counters. A
// counter is allocated and incremented when a transient request times
// out; a saturated counter predicts contention and the L1 issues a
// persistent request immediately, skipping the transient. Counters reset
// pseudo-randomly to adapt to phase changes (Section 4).
type predictor struct {
	sets    int
	ways    int
	tags    [][]mem.Block
	valid   [][]bool
	counter [][]uint8
	lru     [][]uint64
	tick    uint64
	rng     *rand.Rand
}

func newPredictor(seed int64) *predictor {
	const entries, ways = 256, 4
	sets := entries / ways
	p := &predictor{sets: sets, ways: ways, rng: rand.New(rand.NewSource(seed))}
	p.tags = make([][]mem.Block, sets)
	p.valid = make([][]bool, sets)
	p.counter = make([][]uint8, sets)
	p.lru = make([][]uint64, sets)
	for i := 0; i < sets; i++ {
		p.tags[i] = make([]mem.Block, ways)
		p.valid[i] = make([]bool, ways)
		p.counter[i] = make([]uint8, ways)
		p.lru[i] = make([]uint64, ways)
	}
	return p
}

func (p *predictor) setOf(b mem.Block) int { return int(uint64(b) % uint64(p.sets)) }

func (p *predictor) find(b mem.Block) (set, way int, ok bool) {
	set = p.setOf(b)
	for w := 0; w < p.ways; w++ {
		if p.valid[set][w] && p.tags[set][w] == b {
			return set, w, true
		}
	}
	return set, 0, false
}

// NoteTimeout allocates/increments the counter for b after a transient
// request timed out.
func (p *predictor) NoteTimeout(b mem.Block) {
	set, way, ok := p.find(b)
	if !ok {
		// Allocate the LRU (or first invalid) way.
		way = 0
		for w := 0; w < p.ways; w++ {
			if !p.valid[set][w] {
				way = w
				break
			}
			if p.lru[set][w] < p.lru[set][way] {
				way = w
			}
		}
		p.valid[set][way] = true
		p.tags[set][way] = b
		p.counter[set][way] = 0
	}
	if p.counter[set][way] < 3 {
		p.counter[set][way]++
	}
	p.tick++
	p.lru[set][way] = p.tick
}

// Contended predicts whether a request for b should go persistent
// immediately. Each query pseudo-randomly resets the counter with small
// probability to allow adaptation.
func (p *predictor) Contended(b mem.Block) bool {
	set, way, ok := p.find(b)
	if !ok {
		return false
	}
	p.tick++
	p.lru[set][way] = p.tick
	if p.rng.Intn(64) == 0 {
		p.counter[set][way] = 0
		return false
	}
	return p.counter[set][way] >= 2
}
