// Package prof wires the standard -cpuprofile/-memprofile flags into
// the cmd tools, so simulator hot paths can be inspected with
// `go tool pprof` against a real figure-regeneration run.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (if non-empty) and returns a
// stop function that finishes the CPU profile and writes a heap
// profile to memPath (if non-empty). Call the stop function once, just
// before exit.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "prof:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize up-to-date allocation stats
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "prof:", err)
			}
		}
	}, nil
}
