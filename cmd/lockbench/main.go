// lockbench regenerates Figures 2 and 3: the locking micro-benchmark
// runtime sweep from 2 locks (high contention) to 512 locks (low
// contention), normalized to DirectoryCMP at 512 locks.
//
// Usage:
//
//	lockbench -mode persistent   # Figure 2 (persistent-requests-only)
//	lockbench -mode transient    # Figure 3 (transient + persistent)
//	lockbench -mode both
package main

import (
	"flag"
	"fmt"
	"os"

	"tokencmp/internal/experiments"
)

func main() {
	var (
		mode     = flag.String("mode", "both", "persistent (Fig 2), transient (Fig 3), or both")
		acquires = flag.Int("acquires", 32, "acquires per processor")
		seeds    = flag.Int("seeds", 3, "perturbed runs per point")
		jobs     = flag.Int("jobs", 0, "concurrent simulation runs (0 = one per CPU)")
		ctrs     = flag.Bool("counters", false, "print per-protocol event-counter totals")
	)
	faultFlags := experiments.RegisterFaultFlags(flag.CommandLine)
	flag.Parse()

	opt := experiments.DefaultOptions()
	opt.Acquires = *acquires
	opt.Seeds = *seeds
	opt.Jobs = *jobs
	opt.Faults = faultFlags()
	lockCounts := []int{2, 4, 8, 16, 32, 64, 128, 256, 512}

	if *mode == "persistent" || *mode == "both" {
		sweep, err := experiments.RunLockSweep(
			[]string{"TokenCMP-arb0", "DirectoryCMP", "DirectoryCMP-zero", "HammerCMP", "TokenCMP-dst0"},
			lockCounts, opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		sweep.Render(os.Stdout, "Figure 2: Locking micro-benchmark, persistent requests only")
		if *ctrs {
			sweep.RenderCounters(os.Stdout)
		}
		fmt.Println()
	}
	if *mode == "transient" || *mode == "both" {
		sweep, err := experiments.RunLockSweep(
			[]string{"DirectoryCMP", "DirectoryCMP-zero", "HammerCMP", "TokenCMP-dst4", "TokenCMP-dst1", "TokenCMP-dst1-pred"},
			lockCounts, opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		sweep.Render(os.Stdout, "Figure 3: Locking micro-benchmark, transient + persistent requests")
		if *ctrs {
			sweep.RenderCounters(os.Stdout)
		}
	}
}
