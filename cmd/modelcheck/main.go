// modelcheck regenerates the paper's Section 5 verification study: it
// exhaustively model-checks the three token-substrate variants, the
// simplified flat DirectoryCMP, and the HammerCMP broadcast race
// window, reporting reachable states, transitions, and model source
// size (the analog of the paper's TLA+ line counts). -protocol selects
// a subset (all, token, directory, or hammer).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tokencmp/internal/mc"
	"tokencmp/internal/mc/models"
)

func modelLoC(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0
	}
	n := 0
	for _, line := range strings.Split(string(data), "\n") {
		t := strings.TrimSpace(line)
		if t != "" && !strings.HasPrefix(t, "//") {
			n++
		}
	}
	return n
}

func main() {
	var (
		tokens   = flag.Int("tokens", 4, "tokens per block in the token models")
		limit    = flag.Int("limit", 0, "exact state-count cap (0 = the 5,000,000 default)")
		jobs     = flag.Int("jobs", 0, "concurrent frontier-expansion workers (0 = one per CPU)")
		protocol = flag.String("protocol", "all", "which models to check: all, token, directory, or hammer")
	)
	flag.Parse()

	switch *protocol {
	case "all", "token", "directory", "hammer":
	default:
		fmt.Fprintf(os.Stderr, "modelcheck: unknown -protocol %q (want all, token, directory, or hammer)\n", *protocol)
		os.Exit(2)
	}
	want := func(p string) bool { return *protocol == "all" || *protocol == p }

	heading := map[string]string{
		"all":       "the correctness substrate vs a flat directory\nand the HammerCMP broadcast race window",
		"token":     "the token correctness substrate",
		"directory": "the flat DirectoryCMP protocol",
		"hammer":    "the HammerCMP broadcast race window",
	}
	fmt.Printf("Section 5: model checking %s\n", heading[*protocol])
	fmt.Println("(safety: token conservation / coherence invariant / serial view;")
	fmt.Println(" liveness: deadlock freedom and AG(pending → EF satisfied))")
	fmt.Println()

	run := func(m mc.Model) {
		res := mc.CheckJobs(m, *limit, *jobs)
		fmt.Println(res)
	}
	if want("token") {
		for _, act := range []models.Activation{models.SafetyOnly, models.ArbiterAct, models.DistributedAct} {
			cfg := models.DefaultTokenConfig(act)
			cfg.T = *tokens
			run(models.NewTokenModel(cfg))
		}
	}
	if want("directory") {
		run(models.DefaultDirModel())
	}
	if want("hammer") {
		run(models.DefaultHammerModel())
	}

	fmt.Println()
	fmt.Println("Model source size (non-comment lines; the paper reports 383/396 lines")
	fmt.Println("of TLA+ for TokenCMP-arb/dst vs 1025 for the simplified DirectoryCMP):")
	if want("token") {
		fmt.Printf("  token substrate models:   %d\n", modelLoC("internal/mc/models/token.go"))
	}
	if want("directory") {
		fmt.Printf("  flat directory model:     %d\n", modelLoC("internal/mc/models/directory.go"))
	}
	if want("hammer") {
		fmt.Printf("  flat hammer (broadcast):  %d\n", modelLoC("internal/mc/models/hammer.go"))
	}
}
