// modelcheck regenerates the paper's Section 5 verification study: it
// exhaustively model-checks the three token-substrate variants, the
// simplified flat DirectoryCMP, and the HammerCMP broadcast race
// window, reporting reachable states, transitions, and model source
// size (the analog of the paper's TLA+ line counts). -protocol selects
// a subset (all, token, directory, or hammer); -caches, -tokens, and
// -msgs scale the verified configuration beyond the paper's default,
// and -cpuprofile/-memprofile capture checker profiles.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"tokencmp/internal/mc"
	"tokencmp/internal/mc/models"
	"tokencmp/internal/prof"
)

func modelLoC(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0
	}
	n := 0
	for _, line := range strings.Split(string(data), "\n") {
		t := strings.TrimSpace(line)
		if t != "" && !strings.HasPrefix(t, "//") {
			n++
		}
	}
	return n
}

func main() {
	var (
		caches   = flag.Int("caches", 3, "caches in every model (the paper's Section 5 scale is 3)")
		tokens   = flag.Int("tokens", 4, "tokens per block in the token models")
		msgs     = flag.Int("msgs", 0, "in-flight message bound (0 = per-model default: 2 token, 3 directory, 5 hammer)")
		limit    = flag.Int("limit", 0, "exact state-count cap (0 = the 5,000,000 default)")
		jobs     = flag.Int("jobs", 0, "concurrent frontier-expansion workers (0 = one per CPU)")
		symmetry = flag.Bool("symmetry", true, "canonicalize states under cache permutation (Ip&Dill scalarset-style reduction, up to caches! fewer states)")
		loss     = flag.Bool("loss", false, "token models: enable interconnect message loss with token recreation (verifies conservation modulo recreation)")
		protocol = flag.String("protocol", "all", "which models to check: all, token, directory, or hammer")
		timeout  = flag.Duration("timeout", 0, "wall-clock budget shared by all checks (0 = none); on expiry each check reports the states explored so far as PARTIAL and the exit status is non-zero")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	switch *protocol {
	case "all", "token", "directory", "hammer":
	default:
		fmt.Fprintf(os.Stderr, "modelcheck: unknown -protocol %q (want all, token, directory, or hammer)\n", *protocol)
		os.Exit(2)
	}
	// The packed encodings store caches, tokens, and message slots in
	// single bytes (sharers in 30 bits); reject configurations the
	// layouts cannot carry before a model constructor panics.
	if *caches < 2 || *caches > 30 {
		fmt.Fprintln(os.Stderr, "modelcheck: -caches must be in [2, 30]")
		os.Exit(2)
	}
	if *tokens < 1 || *tokens > 254 {
		fmt.Fprintln(os.Stderr, "modelcheck: -tokens must be in [1, 254]")
		os.Exit(2)
	}
	if *msgs < 0 || *msgs > 60 {
		fmt.Fprintln(os.Stderr, "modelcheck: -msgs must be in [0, 60]")
		os.Exit(2)
	}
	bound := func(def int) int {
		if *msgs == 0 {
			return def
		}
		return *msgs
	}
	want := func(p string) bool { return *protocol == "all" || *protocol == p }

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer stopProf()

	heading := map[string]string{
		"all":       "the correctness substrate vs a flat directory\nand the HammerCMP broadcast race window",
		"token":     "the token correctness substrate",
		"directory": "the flat DirectoryCMP protocol",
		"hammer":    "the HammerCMP broadcast race window",
	}
	fmt.Printf("Section 5: model checking %s\n", heading[*protocol])
	fmt.Println("(safety: token conservation / coherence invariant / serial view;")
	fmt.Println(" liveness: deadlock freedom and AG(pending → EF satisfied))")
	fmt.Printf("configuration: caches=%d tokens=%d msgs=", *caches, *tokens)
	if *msgs == 0 {
		fmt.Print("default")
	} else {
		fmt.Print(*msgs)
	}
	if *symmetry {
		fmt.Print(" symmetry=on")
	} else {
		fmt.Print(" symmetry=off")
	}
	if *loss {
		fmt.Println(" loss=on")
	} else {
		fmt.Println()
	}
	fmt.Println()

	ctx := context.Background()
	if *timeout > 0 {
		var cancelBudget context.CancelFunc
		ctx, cancelBudget = context.WithTimeout(ctx, *timeout)
		defer cancelBudget()
	}

	failed := false
	interrupted := false
	run := func(m mc.Model) {
		res := mc.CheckOpt(m, mc.Options{Limit: *limit, Jobs: *jobs, Symmetry: *symmetry, Context: ctx})
		if res.Interrupted {
			interrupted = true
		}
		note := ""
		if *symmetry && !res.Symmetry {
			// Requested but not applied: either the model declared no
			// symmetry (the distributed-activation model's fixed-priority
			// arbitration is not permutation-invariant) or the cache count
			// is beyond the reduction range.
			if sm, ok := m.(mc.Symmetric); ok && sm.Symmetry() != nil {
				note = fmt.Sprintf(", unreduced: caches > %d", mc.MaxSymmetryCaches)
			} else {
				note = ", unreduced: model not symmetric"
			}
		}
		fmt.Printf("%s (%.0f states/sec%s)\n", res, res.StatesPerSec(), note)
		if !res.OK() {
			failed = true
		}
	}
	if want("token") {
		for _, act := range []models.Activation{models.SafetyOnly, models.ArbiterAct, models.DistributedAct} {
			cfg := models.DefaultTokenConfig(act)
			cfg.Caches = *caches
			cfg.T = *tokens
			cfg.MaxMsgs = bound(cfg.MaxMsgs)
			cfg.Loss = *loss
			run(models.NewTokenModel(cfg))
		}
	}
	if want("directory") {
		run(models.NewDirModel(*caches, bound(3)))
	}
	if want("hammer") {
		run(models.NewHammerModel(*caches, bound(5)))
	}

	fmt.Println()
	fmt.Println("Model source size (non-comment lines; the paper reports 383/396 lines")
	fmt.Println("of TLA+ for TokenCMP-arb/dst vs 1025 for the simplified DirectoryCMP):")
	if want("token") {
		fmt.Printf("  token substrate models:   %d\n", modelLoC("internal/mc/models/token.go"))
	}
	if want("directory") {
		fmt.Printf("  flat directory model:     %d\n", modelLoC("internal/mc/models/directory.go"))
	}
	if want("hammer") {
		fmt.Printf("  flat hammer (broadcast):  %d\n", modelLoC("internal/mc/models/hammer.go"))
	}
	if interrupted {
		fmt.Fprintf(os.Stderr, "modelcheck: wall-clock budget %v exhausted; PARTIAL results above cover the explored prefix only\n", *timeout)
	}
	if failed || interrupted {
		stopProf()
		os.Exit(1)
	}
}
