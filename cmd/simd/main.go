// simd is the simulation-as-a-service daemon: an HTTP/JSON front end
// over the deterministic M-CMP simulator. Identical experiments are
// collapsed onto one run and served from an LRU+TTL result cache that
// can mirror itself to disk (-cache-dir) and survive kill -9, overload
// sheds with 429 + Retry-After scaled by queue pressure in per-cost-
// class admission pools, inputs that repeatedly crash the engine are
// negatively cached and answered 422, every request carries a
// wall-clock deadline that aborts the engine within a bounded number
// of events, and SIGINT/SIGTERM drains in-flight runs and pending
// cache flushes before exit.
//
// Usage:
//
//	simd -addr :8080 -cache-dir /var/lib/simd
//	curl -s localhost:8080/run -d '{"protocol":"TokenCMP-dst1","workload":"locking"}'
//	curl -s localhost:8080/metrics
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tokencmp/internal/simd"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "listen address")
		workers  = flag.Int("workers", 4, "total admission slots, split across cost classes (see -light/-heavy/-reserve)")
		queue    = flag.Int("queue", 16, "total waiting requests beyond the slots before shedding with 429")
		light    = flag.Int("light", 0, "dedicated light-class slots (0: derive from -workers)")
		heavy    = flag.Int("heavy", 0, "dedicated heavy-class slots (0: derive from -workers)")
		reserve  = flag.Int("reserve", 0, "shared overflow slots either class may borrow (0: derive from -workers)")
		heavyOps = flag.Int64("heavy-ops", simd.DefaultHeavyOpsThreshold, "estimated ops at or above which a request competes in the heavy class")
		entries  = flag.Int("cache-entries", 256, "result cache capacity (bodies)")
		ttl      = flag.Duration("cache-ttl", 10*time.Minute, "result cache entry lifetime")
		dir      = flag.String("cache-dir", "", "durable cache directory; results survive restarts (empty: memory-only)")
		brkN     = flag.Int("breaker-panics", 3, "engine panics for one key before it is negatively cached (-1: disable)")
		brkCool  = flag.Duration("breaker-cooldown", time.Minute, "how long a poisoned key is answered 422 before a probe retry")
		reqTo    = flag.Duration("request-timeout", 30*time.Second, "default per-request deadline")
		maxTo    = flag.Duration("max-timeout", 5*time.Minute, "ceiling clamped onto requested deadlines")
		drain    = flag.Duration("drain", 10*time.Second, "graceful-shutdown budget for in-flight runs and cache flushes")
		chaos    = flag.Bool("chaos", false, "accept the __panic/__hang test workloads (smoke tests only)")
	)
	flag.Parse()

	d, err := simd.New(simd.Config{
		MaxConcurrent:     *workers,
		QueueDepth:        *queue,
		LightSlots:        *light,
		HeavySlots:        *heavy,
		ReserveSlots:      *reserve,
		HeavyOpsThreshold: *heavyOps,
		CacheEntries:      *entries,
		CacheTTL:          *ttl,
		CacheDir:          *dir,
		BreakerPanics:     *brkN,
		BreakerCooldown:   *brkCool,
		DefaultTimeout:    *reqTo,
		MaxTimeout:        *maxTo,
		DrainTimeout:      *drain,
		Chaos:             *chaos,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "simd:", err)
		os.Exit(1)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	persist := "memory-only"
	if *dir != "" {
		persist = fmt.Sprintf("dir=%s restored=%d torn=%d expired=%d",
			*dir, d.Metrics().Restored.Load(), d.Metrics().RestoreTorn.Load(), d.Metrics().RestoreExpired.Load())
	}
	fmt.Printf("simd: listening on %s (workers=%d queue=%d cache=%d ttl=%v %s)\n",
		ln.Addr(), *workers, *queue, *entries, *ttl, persist)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := d.Serve(ctx, ln); err != nil {
		fmt.Fprintf(os.Stderr, "simd: shutdown: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("simd: drained cleanly")
}
