// simd is the simulation-as-a-service daemon: an HTTP/JSON front end
// over the deterministic M-CMP simulator. Identical experiments are
// collapsed onto one run and served from an LRU+TTL result cache,
// overload sheds with 429 + Retry-After, every request carries a
// wall-clock deadline that aborts the engine within a bounded number
// of events, and SIGINT/SIGTERM drains in-flight runs before exit.
//
// Usage:
//
//	simd -addr :8080
//	curl -s localhost:8080/run -d '{"protocol":"TokenCMP-dst1","workload":"locking"}'
//	curl -s localhost:8080/metrics
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tokencmp/internal/simd"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:8080", "listen address")
		workers = flag.Int("workers", 4, "admission slots (simultaneously served cache misses)")
		queue   = flag.Int("queue", 16, "waiting requests beyond the slots before shedding with 429")
		entries = flag.Int("cache-entries", 256, "result cache capacity (bodies)")
		ttl     = flag.Duration("cache-ttl", 10*time.Minute, "result cache entry lifetime")
		reqTo   = flag.Duration("request-timeout", 30*time.Second, "default per-request deadline")
		maxTo   = flag.Duration("max-timeout", 5*time.Minute, "ceiling clamped onto requested deadlines")
		drain   = flag.Duration("drain", 10*time.Second, "graceful-shutdown budget for in-flight runs")
		chaos   = flag.Bool("chaos", false, "accept the __panic/__hang test workloads (smoke tests only)")
	)
	flag.Parse()

	d := simd.New(simd.Config{
		MaxConcurrent:  *workers,
		QueueDepth:     *queue,
		CacheEntries:   *entries,
		CacheTTL:       *ttl,
		DefaultTimeout: *reqTo,
		MaxTimeout:     *maxTo,
		DrainTimeout:   *drain,
		Chaos:          *chaos,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("simd: listening on %s (workers=%d queue=%d cache=%d ttl=%v)\n",
		ln.Addr(), *workers, *queue, *entries, *ttl)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := d.Serve(ctx, ln); err != nil {
		fmt.Fprintf(os.Stderr, "simd: shutdown: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("simd: drained cleanly")
}
