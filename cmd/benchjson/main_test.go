package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: tokencmp
cpu: AMD EPYC
BenchmarkFig2LockingPersistent-8   	       1	 123456789 ns/op	         1.234 arb0@2locks	         0.900 dst0@512locks
BenchmarkProtocolHandoff/DirectoryCMP-8  	       2	   1000000 ns/op	  491520 B/op	    2048 allocs/op
BenchmarkSec5ModelCheck-8   	       1	  50000000 ns/op	   218452 states/sec	 1048576 B/op	   12345 allocs/op
PASS
ok  	tokencmp	12.345s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Context["goos"]; got != "linux" {
		t.Errorf("goos = %q", got)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Name != "Fig2LockingPersistent" {
		t.Errorf("name = %q", b.Name)
	}
	if b.Iterations != 1 {
		t.Errorf("iterations = %d", b.Iterations)
	}
	if got := b.Metrics["ns/op"]; got != 123456789 {
		t.Errorf("ns/op = %v", got)
	}
	if got := b.Metrics["arb0@2locks"]; got != 1.234 {
		t.Errorf("arb0@2locks = %v", got)
	}
	sub := rep.Benchmarks[1]
	if sub.Name != "ProtocolHandoff/DirectoryCMP" {
		t.Errorf("sub-benchmark name = %q", sub.Name)
	}
	if sub.Iterations != 2 {
		t.Errorf("sub-benchmark iterations = %d", sub.Iterations)
	}
	if sub.NsPerOp != 1000000 || sub.BytesPerOp != 491520 || sub.AllocsPerOp != 2048 {
		t.Errorf("standard series = %v ns/op, %v B/op, %v allocs/op; want 1000000, 491520, 2048",
			sub.NsPerOp, sub.BytesPerOp, sub.AllocsPerOp)
	}
	if b.AllocsPerOp != 0 {
		t.Errorf("allocs/op without -benchmem = %v, want 0", b.AllocsPerOp)
	}
	// Checker throughput rides along in the generic metrics map, so
	// BENCH_ci.json tracks states/sec from the benchmark that reports it.
	sec5 := rep.Benchmarks[2]
	if got := sec5.Metrics["states/sec"]; got != 218452 {
		t.Errorf("states/sec = %v, want 218452", got)
	}
	if sec5.BytesPerOp != 1048576 || sec5.AllocsPerOp != 12345 {
		t.Errorf("sec5 standard series = %v B/op, %v allocs/op", sec5.BytesPerOp, sec5.AllocsPerOp)
	}
}

func TestSummarizeRuns(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	summarize(&sb, rep)
	out := sb.String()
	for _, want := range []string{"Fig2LockingPersistent", "TOTAL", "arb0@2locks"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}
