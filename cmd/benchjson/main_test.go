package main

import (
	"math"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: tokencmp
cpu: AMD EPYC
BenchmarkFig2LockingPersistent-8   	       1	 123456789 ns/op	         1.234 arb0@2locks	         0.900 dst0@512locks
BenchmarkProtocolHandoff/DirectoryCMP-8  	       2	   1000000 ns/op	  491520 B/op	    2048 allocs/op
BenchmarkSec5ModelCheck-8   	       1	  50000000 ns/op	   218452 states/sec	 1048576 B/op	   12345 allocs/op
PASS
ok  	tokencmp	12.345s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Context["goos"]; got != "linux" {
		t.Errorf("goos = %q", got)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Name != "Fig2LockingPersistent" {
		t.Errorf("name = %q", b.Name)
	}
	if b.Iterations != 1 {
		t.Errorf("iterations = %d", b.Iterations)
	}
	if got := b.Metrics["ns/op"]; got != 123456789 {
		t.Errorf("ns/op = %v", got)
	}
	if got := b.Metrics["arb0@2locks"]; got != 1.234 {
		t.Errorf("arb0@2locks = %v", got)
	}
	sub := rep.Benchmarks[1]
	if sub.Name != "ProtocolHandoff/DirectoryCMP" {
		t.Errorf("sub-benchmark name = %q", sub.Name)
	}
	if sub.Iterations != 2 {
		t.Errorf("sub-benchmark iterations = %d", sub.Iterations)
	}
	if sub.NsPerOp != 1000000 || sub.BytesPerOp != 491520 || sub.AllocsPerOp != 2048 {
		t.Errorf("standard series = %v ns/op, %v B/op, %v allocs/op; want 1000000, 491520, 2048",
			sub.NsPerOp, sub.BytesPerOp, sub.AllocsPerOp)
	}
	if b.AllocsPerOp != 0 {
		t.Errorf("allocs/op without -benchmem = %v, want 0", b.AllocsPerOp)
	}
	// Checker throughput rides along in the generic metrics map, so
	// BENCH_ci.json tracks states/sec from the benchmark that reports it.
	sec5 := rep.Benchmarks[2]
	if got := sec5.Metrics["states/sec"]; got != 218452 {
		t.Errorf("states/sec = %v, want 218452", got)
	}
	if sec5.BytesPerOp != 1048576 || sec5.AllocsPerOp != 12345 {
		t.Errorf("sec5 standard series = %v B/op, %v allocs/op", sec5.BytesPerOp, sec5.AllocsPerOp)
	}
}

// mkReport builds a one-benchmark report for compare tests.
func mkReport(name string, metrics map[string]float64) *Report {
	b := Benchmark{Name: name, Iterations: 1, Metrics: metrics}
	return &Report{Benchmarks: []Benchmark{b}}
}

func TestCompareFlagsRegressions(t *testing.T) {
	oldRep := &Report{Benchmarks: []Benchmark{
		{Name: "Sec5ModelCheck", Metrics: map[string]float64{"ns/op": 100, "states/sec": 1000, "safety-states": 243}},
		{Name: "Table4Barrier", Metrics: map[string]float64{"ns/op": 200}},
		{Name: "Dropped", Metrics: map[string]float64{"ns/op": 5}},
	}}
	newRep := &Report{Benchmarks: []Benchmark{
		{Name: "Sec5ModelCheck", Metrics: map[string]float64{"ns/op": 105, "states/sec": 500, "safety-states": 243}},
		{Name: "Table4Barrier", Metrics: map[string]float64{"ns/op": 250}},
		{Name: "Added", Metrics: map[string]float64{"ns/op": 7}},
	}}
	deltas, added, dropped := compareReports(oldRep, newRep, 10)
	got := map[string]bool{}
	for _, d := range deltas {
		got[d.bench+" "+d.metric] = d.regression
	}
	// ns/op +5% is within tolerance; states/sec -50% and ns/op +25% are not.
	for key, want := range map[string]bool{
		"Sec5ModelCheck ns/op":         false,
		"Sec5ModelCheck states/sec":    true,
		"Sec5ModelCheck safety-states": false, // informational metric never gates
		"Table4Barrier ns/op":          true,
	} {
		if reg, ok := got[key]; !ok || reg != want {
			t.Errorf("%s: regression=%v (present=%v), want %v", key, reg, ok, want)
		}
	}
	// A benchmark that vanished from the new artifact must be reported
	// as dropped (the caller fails the gate on it — deleting a gated
	// benchmark must not bypass the gate); new benchmarks are
	// informational.
	if len(added) != 1 || added[0] != "Added" {
		t.Errorf("added = %v, want [Added]", added)
	}
	if len(dropped) != 1 || dropped[0] != "Dropped" {
		t.Errorf("dropped = %v, want [Dropped]", dropped)
	}
}

// TestCompareFlagsDroppedGatedMetric pins the metric-level gate: a
// shared benchmark that stops reporting a gated series (ns/op,
// states/sec) must show up as dropped, or deleting the ReportMetric
// call would silently bypass the throughput gate.
func TestCompareFlagsDroppedGatedMetric(t *testing.T) {
	oldRep := mkReport("Sec5ModelCheck", map[string]float64{"ns/op": 100, "states/sec": 1000, "safety-states": 243})
	newRep := mkReport("Sec5ModelCheck", map[string]float64{"ns/op": 100})
	deltas, _, dropped := compareReports(oldRep, newRep, 10)
	if len(dropped) != 1 || dropped[0] != "Sec5ModelCheck states/sec" {
		t.Errorf("dropped = %v, want [Sec5ModelCheck states/sec] (informational safety-states must not gate)", dropped)
	}
	if len(deltas) != 1 || deltas[0].metric != "ns/op" {
		t.Errorf("deltas = %+v, want just the shared ns/op", deltas)
	}
}

func TestCompareImprovementPasses(t *testing.T) {
	oldRep := mkReport("Sec5ModelCheck", map[string]float64{"ns/op": 100, "states/sec": 1000})
	newRep := mkReport("Sec5ModelCheck", map[string]float64{"ns/op": 50, "states/sec": 3000})
	deltas, _, _ := compareReports(oldRep, newRep, 10)
	for _, d := range deltas {
		if d.regression {
			t.Errorf("%s %s flagged as regression on improvement (%+.1f%%)", d.bench, d.metric, d.pct)
		}
	}
	if len(deltas) != 2 {
		t.Errorf("compared %d metrics, want 2", len(deltas))
	}
}

// TestCompareZeroTolerance pins -tolerance 0 semantics: any ns/op
// growth or states/sec drop at all regresses, but byte-identical
// values still pass — the threshold comparison is strict, so a 0%
// change is never "beyond 0%".
func TestCompareZeroTolerance(t *testing.T) {
	oldRep := mkReport("Sec5ModelCheck", map[string]float64{"ns/op": 100, "states/sec": 1000})
	newRep := mkReport("Sec5ModelCheck", map[string]float64{"ns/op": 100.001, "states/sec": 999.999})
	deltas, _, _ := compareReports(oldRep, newRep, 0)
	for _, d := range deltas {
		if !d.regression {
			t.Errorf("%s %s: %+g%% not flagged at tolerance 0", d.bench, d.metric, d.pct)
		}
	}

	same := mkReport("Sec5ModelCheck", map[string]float64{"ns/op": 100, "states/sec": 1000})
	deltas, _, _ = compareReports(oldRep, same, 0)
	for _, d := range deltas {
		if d.regression {
			t.Errorf("%s %s: identical values flagged at tolerance 0", d.bench, d.metric)
		}
	}
}

// TestCompareExactlyAtTolerance pins the boundary: a change of exactly
// the tolerance passes (the gate reads "beyond N percent"), one hair
// past it fails. Values are chosen so the percentage math is exact in
// binary floating point (16/128 and 125/1000 are both powers of two
// over their bases).
func TestCompareExactlyAtTolerance(t *testing.T) {
	oldRep := mkReport("Sec5ModelCheck", map[string]float64{"ns/op": 128, "states/sec": 1000})
	at := mkReport("Sec5ModelCheck", map[string]float64{"ns/op": 144, "states/sec": 875})
	deltas, _, _ := compareReports(oldRep, at, 12.5)
	for _, d := range deltas {
		if d.regression {
			t.Errorf("%s %s: %+g%% flagged at tolerance 12.5, want exactly-at-threshold to pass", d.bench, d.metric, d.pct)
		}
	}

	past := mkReport("Sec5ModelCheck", map[string]float64{"ns/op": 145, "states/sec": 874})
	deltas, _, _ = compareReports(oldRep, past, 12.5)
	for _, d := range deltas {
		if !d.regression {
			t.Errorf("%s %s: %+g%% not flagged just past tolerance 12.5", d.bench, d.metric, d.pct)
		}
	}
}

// TestCompareNaNGatedMetric pins the NaN hole: every comparison
// against NaN is false, so a NaN gated value would pass the threshold
// check — it must instead gate like a missing metric. Informational
// metrics stay informational even when NaN.
func TestCompareNaNGatedMetric(t *testing.T) {
	oldRep := mkReport("Sec5ModelCheck", map[string]float64{"ns/op": 100, "states/sec": 1000, "safety-states": 243})
	newRep := mkReport("Sec5ModelCheck", map[string]float64{"ns/op": 100, "states/sec": math.NaN(), "safety-states": math.NaN()})
	deltas, _, dropped := compareReports(oldRep, newRep, 10)
	if len(dropped) != 1 || dropped[0] != "Sec5ModelCheck states/sec" {
		t.Errorf("dropped = %v, want [Sec5ModelCheck states/sec]", dropped)
	}
	for _, d := range deltas {
		if d.regression {
			t.Errorf("%s %s: NaN flagged as regression, want gated via dropped instead", d.bench, d.metric)
		}
	}
}

func TestSummarizeRuns(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	summarize(&sb, rep)
	out := sb.String()
	for _, want := range []string{"Fig2LockingPersistent", "TOTAL", "arb0@2locks"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}
