// benchjson converts `go test -bench` output into a JSON benchmark
// artifact (for CI upload and perf-trajectory tracking) and prints a
// human-readable runtime summary table. Its compare mode diffs two
// such artifacts and gates CI on perf regressions.
//
// Usage:
//
//	go test -bench . -benchtime 1x -run '^$' . | tee bench.txt
//	benchjson -in bench.txt -out BENCH_ci.json
//	benchjson -out BENCH_merged.json merge RUN1.json RUN2.json ...
//	benchjson compare BENCH_ci.json BENCH_new.json   # exit 1 on regression
//
// Compare prints per-metric deltas for every benchmark the two
// artifacts share and exits non-zero when wall clock (ns/op) worsens or
// checker throughput (states/sec) drops — the two series that gate the
// perf trajectory; the other metrics are informational. Against a plain
// single-run baseline the gate is a flat -tolerance percent; against a
// `merge`d multi-run baseline it is distribution-aware, failing only
// values beyond -sigma standard deviations of the baseline mean (with
// -sigma-floor percent of the mean as the minimum sigma, so a
// degenerate distribution cannot fail on jitter).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line. The three standard
// series (wall clock, bytes, allocations per op) are first-class fields
// so the perf trajectory can be charted without knowing each
// benchmark's custom metric names; Metrics additionally holds every
// (value, unit) pair verbatim, the standard three included.
type Benchmark struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics"`
}

// Report is the BENCH_ci.json artifact shape.
type Report struct {
	Context    map[string]string `json:"context"`
	Benchmarks []Benchmark       `json:"benchmarks"`
}

// parse reads `go test -bench` output. Benchmark lines look like
//
//	BenchmarkName-8   1   123456 ns/op   1.5 some/metric
//
// i.e. name, iteration count, then (value, unit) pairs; context lines
// (goos, goarch, pkg, cpu) are captured verbatim.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{Context: map[string]string{}}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		for _, key := range []string{"goos", "goarch", "pkg", "cpu"} {
			if v, ok := strings.CutPrefix(line, key+": "); ok {
				rep.Context[key] = v
			}
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // "Benchmark..." headers without results
		}
		b := Benchmark{
			Name:       strings.TrimSuffix(strings.TrimPrefix(fields[0], "Benchmark"), cpuSuffix(fields[0])),
			Iterations: iters,
			Metrics:    map[string]float64{},
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad value %q in %q", fields[i], line)
			}
			b.Metrics[fields[i+1]] = v
			switch fields[i+1] {
			case "ns/op":
				b.NsPerOp = v
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

// cpuSuffix returns the trailing "-N" GOMAXPROCS suffix of a benchmark
// name, or "" if absent.
func cpuSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return ""
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return ""
	}
	return name[i:]
}

// summarize prints the runtime table: one row per benchmark with its
// wall time, allocation profile, and the count of extra reported
// metrics.
func summarize(w io.Writer, rep *Report) {
	fmt.Fprintf(w, "%-40s %14s %14s %12s %8s\n", "benchmark", "time/op (ms)", "B/op", "allocs/op", "metrics")
	total := 0.0
	for _, b := range rep.Benchmarks {
		ms := b.NsPerOp / 1e6
		total += ms
		custom := 0
		for k := range b.Metrics {
			if k != "ns/op" && k != "B/op" && k != "allocs/op" {
				custom++
			}
		}
		fmt.Fprintf(w, "%-40s %14.1f %14.0f %12.0f %8d\n",
			b.Name, ms, b.BytesPerOp, b.AllocsPerOp, custom)
	}
	fmt.Fprintf(w, "%-40s %14.1f\n", "TOTAL", total)

	fmt.Fprintln(w, "\nheadline metrics:")
	for _, b := range rep.Benchmarks {
		keys := make([]string, 0, len(b.Metrics))
		for k := range b.Metrics {
			if k != "ns/op" && k != "B/op" && k != "allocs/op" {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(w, "  %-38s %-24s %10.3f\n", b.Name, k, b.Metrics[k])
		}
	}
}

// loadReport reads a BENCH_ci.json artifact.
func loadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep := &Report{}
	if err := json.Unmarshal(data, rep); err != nil {
		return nil, fmt.Errorf("benchjson: %s: %v", path, err)
	}
	return rep, nil
}

// delta is one compared metric.
type delta struct {
	bench, metric string
	old, new      float64
	pct           float64 // percentage change, new vs old
	regression    bool
}

// gatedMetrics are the series whose regressions (and disappearance)
// fail the compare gate; everything else is informational.
var gatedMetrics = []string{"ns/op", "states/sec"}

// compareReports diffs two artifacts benchmark-by-benchmark. A metric
// is a regression when it is ns/op and grew, or states/sec and shrank,
// by more than tolerance percent. Benchmarks present in the baseline
// but absent from the new artifact — and gated metrics a shared
// benchmark stopped reporting — are listed in dropped and must fail
// the gate too, otherwise deleting (or renaming) a gated benchmark or
// its ReportMetric call would silently bypass it. Benchmarks new to
// the artifact are informational.
func compareReports(oldRep, newRep *Report, tolerance float64) (deltas []delta, added, dropped []string) {
	byName := map[string]*Benchmark{}
	for i := range oldRep.Benchmarks {
		byName[oldRep.Benchmarks[i].Name] = &oldRep.Benchmarks[i]
	}
	for i := range newRep.Benchmarks {
		nb := &newRep.Benchmarks[i]
		ob := byName[nb.Name]
		if ob == nil {
			added = append(added, nb.Name)
			continue
		}
		delete(byName, nb.Name)
		for _, k := range gatedMetrics {
			_, inOld := ob.Metrics[k]
			nv, inNew := nb.Metrics[k]
			// A NaN gated value is as gone as a missing one — every
			// comparison against NaN is false, so without this it would
			// sail through the regression check below.
			if inOld && (!inNew || math.IsNaN(nv)) {
				dropped = append(dropped, nb.Name+" "+k)
			}
		}
		keys := make([]string, 0, len(nb.Metrics))
		for k := range nb.Metrics {
			if _, shared := ob.Metrics[k]; shared {
				keys = append(keys, k)
			}
		}
		// Wall clock first, then the rest alphabetically.
		sort.Slice(keys, func(i, j int) bool {
			if (keys[i] == "ns/op") != (keys[j] == "ns/op") {
				return keys[i] == "ns/op"
			}
			return keys[i] < keys[j]
		})
		for _, k := range keys {
			d := delta{bench: nb.Name, metric: k, old: ob.Metrics[k], new: nb.Metrics[k]}
			if d.old != 0 {
				d.pct = (d.new - d.old) / d.old * 100
			}
			switch k {
			case "ns/op":
				d.regression = d.pct > tolerance
			case "states/sec":
				d.regression = d.pct < -tolerance
			}
			deltas = append(deltas, d)
		}
	}
	for name := range byName {
		dropped = append(dropped, name)
	}
	sort.Strings(added)
	sort.Strings(dropped)
	return deltas, added, dropped
}

func compareMain(oldPath, newPath string, tolerance, kSigma, sigmaFloor float64) {
	newRep, err := loadReport(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var (
		deltas         []delta
		added, dropped []string
		gate           string
	)
	if base, merr := loadAny(oldPath); merr == nil && base.Runs > 1 {
		// Multi-run baseline: distribution-aware k-sigma gate.
		deltas, added, dropped = compareDist(base, newRep, kSigma, sigmaFloor)
		gate = fmt.Sprintf("%.1f sigma of the %d-run baseline", kSigma, base.Runs)
	} else {
		oldRep, lerr := loadReport(oldPath)
		if lerr != nil {
			fmt.Fprintln(os.Stderr, lerr)
			os.Exit(1)
		}
		deltas, added, dropped = compareReports(oldRep, newRep, tolerance)
		gate = fmt.Sprintf("%.0f%%", tolerance)
	}
	fmt.Printf("%-40s %-24s %14s %14s %9s\n", "benchmark", "metric", "old", "new", "delta")
	regressions := 0
	for _, d := range deltas {
		mark := ""
		if d.regression {
			mark = "  << REGRESSION"
			regressions++
		}
		fmt.Printf("%-40s %-24s %14.3f %14.3f %+8.1f%%%s\n", d.bench, d.metric, d.old, d.new, d.pct, mark)
	}
	for _, name := range added {
		fmt.Printf("%-40s new, not compared\n", name)
	}
	for _, name := range dropped {
		fmt.Printf("%-40s MISSING from the new artifact\n", name)
	}
	if regressions > 0 || len(dropped) > 0 {
		fmt.Printf("\n%d regression(s) beyond %s (ns/op up or states/sec down), %d benchmark(s) missing\n",
			regressions, gate, len(dropped))
		os.Exit(1)
	}
	fmt.Printf("\nno regressions beyond %s (%d metrics compared)\n", gate, len(deltas))
}

// mergeMain folds the artifact files into one distribution report.
func mergeMain(outPath string, paths []string) {
	reps := make([]*MergedReport, 0, len(paths))
	for _, path := range paths {
		rep, err := loadAny(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		reps = append(reps, rep)
	}
	merged, err := mergeReports(reps)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	data, err := json.MarshalIndent(merged, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d benchmarks, %d runs)\n", outPath, len(merged.Benchmarks), merged.Runs)
}

func main() {
	var (
		in         = flag.String("in", "-", "bench output file (- = stdin)")
		out        = flag.String("out", "BENCH_ci.json", "JSON artifact path")
		tolerance  = flag.Float64("tolerance", 10, "compare mode: regression threshold in percent (plain baseline)")
		kSigma     = flag.Float64("sigma", 3, "compare mode: regression threshold in standard deviations (merged baseline)")
		sigmaFloor = flag.Float64("sigma-floor", 5, "compare mode: minimum sigma as percent of the baseline mean (merged baseline)")
	)
	flag.Parse()
	switch flag.Arg(0) {
	case "compare":
		if flag.NArg() != 3 {
			fmt.Fprintln(os.Stderr, "usage: benchjson [-tolerance pct] [-sigma k] [-sigma-floor pct] compare OLD.json NEW.json")
			os.Exit(2)
		}
		compareMain(flag.Arg(1), flag.Arg(2), *tolerance, *kSigma, *sigmaFloor)
		return
	case "merge":
		if flag.NArg() < 2 {
			fmt.Fprintln(os.Stderr, "usage: benchjson [-out MERGED.json] merge RUN.json...")
			os.Exit(2)
		}
		mergeMain(*out, flag.Args()[1:])
		return
	}

	var src io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		src = f
	}
	rep, err := parse(src)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found")
		os.Exit(1)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	summarize(os.Stdout, rep)
	fmt.Printf("\nwrote %s (%d benchmarks)\n", *out, len(rep.Benchmarks))
}
