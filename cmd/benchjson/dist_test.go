package main

import (
	"math"
	"testing"
)

func distReport(runs int, benches ...MergedBenchmark) *MergedReport {
	return &MergedReport{Schema: distSchema, Runs: runs, Benchmarks: benches}
}

func singleRun(name string, metrics map[string]float64) *Report {
	return &Report{Benchmarks: []Benchmark{{Name: name, Metrics: metrics}}}
}

func TestMergeEmptyInput(t *testing.T) {
	if _, err := mergeReports(nil); err == nil {
		t.Fatal("merge of zero artifacts should error, got nil")
	}
}

// TestMergePoolsMoments checks the pooled mean/stddev against a direct
// computation over the underlying samples.
func TestMergePoolsMoments(t *testing.T) {
	samples := []float64{100, 110, 130}
	reps := make([]*MergedReport, len(samples))
	for i, v := range samples {
		reps[i] = toMerged(singleRun("Lock", map[string]float64{"ns/op": v}))
	}
	merged, err := mergeReports(reps)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Runs != 3 {
		t.Errorf("Runs = %d, want 3", merged.Runs)
	}
	d := merged.Benchmarks[0].Metrics["ns/op"]
	// mean 113.333..., sample stddev sqrt(((-13.33)^2+(-3.33)^2+16.67^2)/2)
	wantMean := (100.0 + 110 + 130) / 3
	var m2 float64
	for _, v := range samples {
		m2 += (v - wantMean) * (v - wantMean)
	}
	wantStd := math.Sqrt(m2 / 2)
	if d.N != 3 || math.Abs(d.Mean-wantMean) > 1e-9 || math.Abs(d.Std-wantStd) > 1e-9 {
		t.Errorf("pooled dist = %+v, want n=3 mean=%g std=%g", d, wantMean, wantStd)
	}
	if d.Min != 100 || d.Max != 130 {
		t.Errorf("pooled min/max = %g/%g, want 100/130", d.Min, d.Max)
	}
}

// TestMergeDeterministicOrder pins that merged benchmarks come out
// sorted by name regardless of input order.
func TestMergeDeterministicOrder(t *testing.T) {
	a := toMerged(&Report{Benchmarks: []Benchmark{
		{Name: "Zeta", Metrics: map[string]float64{"ns/op": 1}},
		{Name: "Alpha", Metrics: map[string]float64{"ns/op": 2}},
	}})
	merged, err := mergeReports([]*MergedReport{a})
	if err != nil {
		t.Fatal(err)
	}
	if merged.Benchmarks[0].Name != "Alpha" || merged.Benchmarks[1].Name != "Zeta" {
		t.Errorf("benchmarks not sorted: %q, %q", merged.Benchmarks[0].Name, merged.Benchmarks[1].Name)
	}
}

// TestCompareDistSingleRunDegenerateStddev: a one-run baseline has
// std 0, so the sigma floor must carry the gate — tiny jitter passes,
// a real step fails.
func TestCompareDistSingleRunDegenerateStddev(t *testing.T) {
	base := toMerged(singleRun("Lock", map[string]float64{"ns/op": 1000}))
	// Floor = 5% of 1000 = 50; gate at 3 sigma = +150.
	jitter := singleRun("Lock", map[string]float64{"ns/op": 1040})
	deltas, _, dropped := compareDist(base, jitter, 3, 5)
	if len(dropped) != 0 || len(deltas) != 1 || deltas[0].regression {
		t.Errorf("4%% jitter over degenerate baseline flagged: %+v dropped=%v", deltas, dropped)
	}
	step := singleRun("Lock", map[string]float64{"ns/op": 1200})
	deltas, _, _ = compareDist(base, step, 3, 5)
	if !deltas[0].regression {
		t.Errorf("20%% step over degenerate baseline not flagged: %+v", deltas[0])
	}
}

// TestCompareDistExactlyAtKSigma: a value landing exactly on the
// k-sigma boundary passes; one epsilon past it fails. Both gated
// directions are covered (ns/op up, states/sec down).
func TestCompareDistExactlyAtKSigma(t *testing.T) {
	base := distReport(5, MergedBenchmark{Name: "Lock", Metrics: map[string]Dist{
		"ns/op":      {N: 5, Mean: 1000, Std: 100, Min: 900, Max: 1100},
		"states/sec": {N: 5, Mean: 5000, Std: 200, Min: 4800, Max: 5200},
	}})
	// 2 sigma, floor small enough (1% of mean < std) not to interfere.
	at := singleRun("Lock", map[string]float64{"ns/op": 1200, "states/sec": 4600})
	deltas, _, _ := compareDist(base, at, 2, 1)
	for _, d := range deltas {
		if d.regression {
			t.Errorf("%s exactly at 2 sigma flagged as regression: %+v", d.metric, d)
		}
	}
	past := singleRun("Lock", map[string]float64{"ns/op": 1200.001, "states/sec": 4599.999})
	deltas, _, _ = compareDist(base, past, 2, 1)
	for _, d := range deltas {
		if !d.regression {
			t.Errorf("%s just past 2 sigma not flagged: %+v", d.metric, d)
		}
	}
}

// TestCompareDistDroppedMetric: a gated metric present in the baseline
// but missing (or NaN) in the new run must fail the gate, exactly like
// the plain compare path.
func TestCompareDistDroppedMetric(t *testing.T) {
	base := distReport(3, MergedBenchmark{Name: "Check", Metrics: map[string]Dist{
		"ns/op":      {N: 3, Mean: 1000, Std: 10, Min: 990, Max: 1010},
		"states/sec": {N: 3, Mean: 5000, Std: 50, Min: 4950, Max: 5050},
	}})
	missing := singleRun("Check", map[string]float64{"ns/op": 1000})
	_, _, dropped := compareDist(base, missing, 3, 5)
	if len(dropped) != 1 || dropped[0] != "Check states/sec" {
		t.Errorf("dropped = %v, want [Check states/sec]", dropped)
	}
	nan := singleRun("Check", map[string]float64{"ns/op": 1000, "states/sec": math.NaN()})
	_, _, dropped = compareDist(base, nan, 3, 5)
	if len(dropped) != 1 || dropped[0] != "Check states/sec" {
		t.Errorf("NaN dropped = %v, want [Check states/sec]", dropped)
	}
}

// TestCompareDistDroppedBenchmark: a baseline benchmark absent from
// the new artifact is dropped; a new benchmark is informational.
func TestCompareDistDroppedBenchmark(t *testing.T) {
	base := distReport(3,
		MergedBenchmark{Name: "Old", Metrics: map[string]Dist{"ns/op": {N: 3, Mean: 1, Min: 1, Max: 1}}},
		MergedBenchmark{Name: "Shared", Metrics: map[string]Dist{"ns/op": {N: 3, Mean: 1, Min: 1, Max: 1}}})
	newRep := &Report{Benchmarks: []Benchmark{
		{Name: "Shared", Metrics: map[string]float64{"ns/op": 1}},
		{Name: "Brand", Metrics: map[string]float64{"ns/op": 9}},
	}}
	_, added, dropped := compareDist(base, newRep, 3, 5)
	if len(dropped) != 1 || dropped[0] != "Old" {
		t.Errorf("dropped = %v, want [Old]", dropped)
	}
	if len(added) != 1 || added[0] != "Brand" {
		t.Errorf("added = %v, want [Brand]", added)
	}
}

// TestCombineIdentities pins combine's edge cases: an empty side is the
// identity, and combining equal-mean zero-std parts stays degenerate.
func TestCombineIdentities(t *testing.T) {
	d := Dist{N: 2, Mean: 10, Std: 1, Min: 9, Max: 11}
	if got := combine(Dist{}, d); got != d {
		t.Errorf("combine(zero, d) = %+v, want %+v", got, d)
	}
	if got := combine(d, Dist{}); got != d {
		t.Errorf("combine(d, zero) = %+v, want %+v", got, d)
	}
	a := Dist{N: 1, Mean: 5, Std: 0, Min: 5, Max: 5}
	got := combine(a, a)
	if got.N != 2 || got.Mean != 5 || got.Std != 0 || got.Min != 5 || got.Max != 5 {
		t.Errorf("combine of identical degenerate dists = %+v", got)
	}
}
