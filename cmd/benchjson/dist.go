package main

// Multi-run aggregation: `benchjson merge` folds N bench artifacts into
// one distribution report (mean/stddev/min/max per metric), and compare
// judges a new run against that distribution at k sigma instead of the
// flat percent tolerance — a step-function regression stands out from
// run-to-run noise the way a 25% blanket threshold never can (BayesPerf:
// single-sample performance measurements mislead).

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
)

// distSchema marks a merged multi-run artifact; plain artifacts have no
// schema field.
const distSchema = "benchjson/dist-v1"

// Dist is the distribution of one metric across runs.
type Dist struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// combine pools two distributions of the same metric: counts add, means
// weight by count, and the pooled sum of squared deviations is the two
// parts' plus the between-group term.
func combine(a, b Dist) Dist {
	if a.N == 0 {
		return b
	}
	if b.N == 0 {
		return a
	}
	n := a.N + b.N
	mean := (float64(a.N)*a.Mean + float64(b.N)*b.Mean) / float64(n)
	m2 := a.Std*a.Std*float64(a.N-1) + b.Std*b.Std*float64(b.N-1) +
		float64(a.N)*float64(b.N)/float64(n)*(a.Mean-b.Mean)*(a.Mean-b.Mean)
	std := 0.0
	if n > 1 {
		std = math.Sqrt(m2 / float64(n-1))
	}
	return Dist{N: n, Mean: mean, Std: std, Min: math.Min(a.Min, b.Min), Max: math.Max(a.Max, b.Max)}
}

// MergedBenchmark is one benchmark's per-metric distributions.
type MergedBenchmark struct {
	Name    string          `json:"name"`
	Metrics map[string]Dist `json:"metrics"`
}

// MergedReport is the merged multi-run artifact shape.
type MergedReport struct {
	Schema     string            `json:"schema"`
	Runs       int               `json:"runs"`
	Context    map[string]string `json:"context"`
	Benchmarks []MergedBenchmark `json:"benchmarks"`
}

// toMerged lifts a single-run artifact into a degenerate distribution
// (n=1, std=0, min=max=mean).
func toMerged(rep *Report) *MergedReport {
	out := &MergedReport{Schema: distSchema, Runs: 1, Context: rep.Context}
	for _, b := range rep.Benchmarks {
		mb := MergedBenchmark{Name: b.Name, Metrics: map[string]Dist{}}
		for k, v := range b.Metrics {
			mb.Metrics[k] = Dist{N: 1, Mean: v, Std: 0, Min: v, Max: v}
		}
		out.Benchmarks = append(out.Benchmarks, mb)
	}
	return out
}

// mergeReports folds artifacts (single-run or already-merged) into one
// distribution report. Benchmarks and metrics merge by union — a metric
// missing from some runs simply has a smaller n — and the output lists
// benchmarks sorted by name so merging is deterministic for any input
// order.
func mergeReports(reps []*MergedReport) (*MergedReport, error) {
	if len(reps) == 0 {
		return nil, fmt.Errorf("benchjson: merge needs at least one artifact")
	}
	byName := map[string]map[string]Dist{}
	out := &MergedReport{Schema: distSchema, Context: map[string]string{}}
	for _, rep := range reps {
		out.Runs += rep.Runs
		for k, v := range rep.Context {
			out.Context[k] = v
		}
		for _, b := range rep.Benchmarks {
			acc := byName[b.Name]
			if acc == nil {
				acc = map[string]Dist{}
				byName[b.Name] = acc
			}
			for k, d := range b.Metrics {
				acc[k] = combine(acc[k], d)
			}
		}
	}
	names := make([]string, 0, len(byName))
	for name := range byName {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		out.Benchmarks = append(out.Benchmarks, MergedBenchmark{Name: name, Metrics: byName[name]})
	}
	return out, nil
}

// loadAny reads an artifact of either shape, lifting single-run
// artifacts into degenerate distributions.
func loadAny(path string) (*MergedReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var probe struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("benchjson: %s: %v", path, err)
	}
	if probe.Schema == distSchema {
		rep := &MergedReport{}
		if err := json.Unmarshal(data, rep); err != nil {
			return nil, fmt.Errorf("benchjson: %s: %v", path, err)
		}
		return rep, nil
	}
	if probe.Schema != "" {
		return nil, fmt.Errorf("benchjson: %s: unknown schema %q", path, probe.Schema)
	}
	rep := &Report{}
	if err := json.Unmarshal(data, rep); err != nil {
		return nil, fmt.Errorf("benchjson: %s: %v", path, err)
	}
	return toMerged(rep), nil
}

// compareDist judges a new single-run artifact against a merged
// baseline distribution. A gated metric regresses when it lands beyond
// kSigma standard deviations on its bad side (above for ns/op, below
// for states/sec); a value exactly at the k-sigma boundary passes. The
// per-metric sigma is floored at floorPct percent of the baseline mean,
// so a degenerate distribution (one run, or runs that happened to
// agree exactly) cannot turn measurement jitter into a gate failure.
// Dropped-benchmark and dropped-metric handling matches compareReports:
// disappearing from the artifact must fail the gate.
func compareDist(base *MergedReport, newRep *Report, kSigma, floorPct float64) (deltas []delta, added, dropped []string) {
	byName := map[string]*MergedBenchmark{}
	for i := range base.Benchmarks {
		byName[base.Benchmarks[i].Name] = &base.Benchmarks[i]
	}
	for i := range newRep.Benchmarks {
		nb := &newRep.Benchmarks[i]
		ob := byName[nb.Name]
		if ob == nil {
			added = append(added, nb.Name)
			continue
		}
		delete(byName, nb.Name)
		for _, k := range gatedMetrics {
			_, inOld := ob.Metrics[k]
			nv, inNew := nb.Metrics[k]
			if inOld && (!inNew || math.IsNaN(nv)) {
				dropped = append(dropped, nb.Name+" "+k)
			}
		}
		keys := make([]string, 0, len(nb.Metrics))
		for k := range nb.Metrics {
			if _, shared := ob.Metrics[k]; shared {
				keys = append(keys, k)
			}
		}
		sort.Slice(keys, func(i, j int) bool {
			if (keys[i] == "ns/op") != (keys[j] == "ns/op") {
				return keys[i] == "ns/op"
			}
			return keys[i] < keys[j]
		})
		for _, k := range keys {
			od := ob.Metrics[k]
			d := delta{bench: nb.Name, metric: k, old: od.Mean, new: nb.Metrics[k]}
			if d.old != 0 {
				d.pct = (d.new - d.old) / d.old * 100
			}
			sigma := math.Max(od.Std, floorPct/100*math.Abs(od.Mean))
			switch k {
			case "ns/op":
				d.regression = d.new > od.Mean+kSigma*sigma
			case "states/sec":
				d.regression = d.new < od.Mean-kSigma*sigma
			}
			deltas = append(deltas, d)
		}
	}
	for name := range byName {
		dropped = append(dropped, name)
	}
	sort.Strings(added)
	sort.Strings(dropped)
	return deltas, added, dropped
}
