// barrierbench regenerates Table 4: barrier micro-benchmark runtimes
// under fixed (3000 ns) and jittered (3000 ± U(1000) ns) work, for every
// protocol, normalized to DirectoryCMP.
package main

import (
	"flag"
	"fmt"
	"os"

	"tokencmp/internal/experiments"
)

func main() {
	var (
		barriers = flag.Int("barriers", 20, "barrier rounds")
		seeds    = flag.Int("seeds", 3, "perturbed runs per configuration")
		jobs     = flag.Int("jobs", 0, "concurrent simulation runs (0 = one per CPU)")
		ctrs     = flag.Bool("counters", false, "print per-protocol event-counter totals")
	)
	faultFlags := experiments.RegisterFaultFlags(flag.CommandLine)
	flag.Parse()

	opt := experiments.DefaultOptions()
	opt.Barriers = *barriers
	opt.Seeds = *seeds
	opt.Jobs = *jobs
	opt.Faults = faultFlags()

	protos := []string{
		"TokenCMP-arb0", "TokenCMP-dst0",
		"DirectoryCMP", "DirectoryCMP-zero", "HammerCMP",
		"TokenCMP-dst4", "TokenCMP-dst1", "TokenCMP-dst1-pred", "TokenCMP-dst1-filt",
	}
	table, err := experiments.RunBarrierTable(protos, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	table.Render(os.Stdout)
	if *ctrs {
		table.RenderCounters(os.Stdout)
	}
}
