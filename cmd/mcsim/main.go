// mcsim runs one workload on one protocol of the simulated M-CMP system
// and prints runtime, traffic, and protocol statistics. With -seeds > 1
// it fans the perturbed runs out across a worker pool (-jobs) and
// reports the mean runtime with its 95% confidence interval.
//
// Usage:
//
//	mcsim -proto TokenCMP-dst1 -workload locking -locks 32 -acquires 64
//	mcsim -proto DirectoryCMP -workload OLTP
//	mcsim -proto DirectoryCMP -workload OLTP -seeds 8 -jobs 4
//	mcsim -list
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"tokencmp/internal/counters"
	"tokencmp/internal/cpu"
	"tokencmp/internal/experiments"
	"tokencmp/internal/machine"
	"tokencmp/internal/prof"
	"tokencmp/internal/runner"
	"tokencmp/internal/sim"
	"tokencmp/internal/stats"
	"tokencmp/internal/tokencmp"
	"tokencmp/internal/topo"
	"tokencmp/internal/workload"
)

// oneRun is the result of a single-seed simulation.
type oneRun struct {
	res   machine.Result
	mon   *workload.LockMonitor
	proto string
}

func main() {
	var (
		proto    = flag.String("proto", "TokenCMP-dst1", "protocol (see -list)")
		wl       = flag.String("workload", "locking", "locking, barrier, OLTP, Apache, or SPECjbb")
		locks    = flag.Int("locks", 32, "locking: number of locks")
		acquires = flag.Int("acquires", 64, "locking: acquires per processor")
		barriers = flag.Int("barriers", 20, "barrier: rounds")
		wjitter  = flag.Int64("workjitter", 0, "barrier: work jitter in ns")
		txns     = flag.Int("txns", 40, "commercial: transactions per processor")
		cmps     = flag.Int("cmps", 4, "CMP count")
		procs    = flag.Int("procs", 4, "processors per CMP")
		banks    = flag.Int("banks", 4, "L2 banks per CMP")
		seed     = flag.Int64("seed", 1, "perturbation seed (first of -seeds)")
		seeds    = flag.Int("seeds", 1, "perturbed runs (mean ± CI when > 1)")
		jobs     = flag.Int("jobs", 0, "concurrent runs (0 = one per CPU)")
		check    = flag.Bool("check", false, "enable coherence monitors")
		ctrs     = flag.Bool("counters", false, "print the event-counter table")
		list     = flag.Bool("list", false, "list protocols and exit")
		timeout  = flag.Duration("timeout", 0, "wall-clock budget for the whole command (0 = none); on expiry in-flight runs abort within a bounded number of events, a partial-progress report is printed, and the exit status is non-zero")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	faultFlags := experiments.RegisterFaultFlags(flag.CommandLine)
	flag.Parse()

	if *list {
		fmt.Println("Protocols:")
		for _, p := range machine.Protocols() {
			fmt.Printf("  %s\n", p)
		}
		fmt.Println("\nTable 1 variants:")
		for _, v := range tokencmp.Variants() {
			fmt.Printf("  %-22s transients=%d activation=%v predictor=%v filter=%v\n",
				v.Name, v.MaxTransients, v.Activation, v.Predictor, v.Filter)
		}
		return
	}

	if *seeds < 1 {
		fmt.Fprintln(os.Stderr, "mcsim: -seeds must be >= 1")
		os.Exit(2)
	}

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer stopProf()

	ctx := context.Background()
	if *timeout > 0 {
		var cancelBudget context.CancelFunc
		ctx, cancelBudget = context.WithTimeout(ctx, *timeout)
		defer cancelBudget()
	}

	g := topo.NewGeometry(*cmps, *procs, *banks)
	baseFaults := faultFlags()
	runOne := func(s int64) (oneRun, error) {
		faults := baseFaults
		if faults.Enabled() {
			// Perturb the fault seed alongside the workload seed so each
			// run of a -seeds sweep sees an independent fault pattern.
			faults.Seed += s - *seed
		}
		m, err := machine.New(machine.Config{
			Protocol:         *proto,
			Geom:             g,
			Seed:             s,
			CheckConsistency: *check,
			AuditTokens:      *check,
			Faults:           faults,
		})
		if err != nil {
			return oneRun{}, err
		}
		var progs []cpu.Program
		var mon *workload.LockMonitor
		switch *wl {
		case "locking":
			lc := workload.DefaultLocking(*locks)
			lc.Acquires = *acquires
			progs, mon = workload.LockingPrograms(lc, g.TotalProcs(), s)
		case "barrier":
			bc := workload.DefaultBarrier(g.TotalProcs(), sim.NS(*wjitter))
			bc.Iterations = *barriers
			progs, mon = workload.BarrierPrograms(bc, s)
		default:
			params, perr := experiments.CommercialParamsFor(*wl)
			if perr != nil {
				return oneRun{}, perr
			}
			params.TxnsPerProc = *txns
			progs, mon = workload.CommercialPrograms(params, g.TotalProcs(), s)
		}
		res, err := m.RunCtx(ctx, progs, 0)
		if err != nil {
			return oneRun{}, err
		}
		return oneRun{res: res, mon: mon, proto: m.Proto.Name()}, nil
	}

	// Each seed writes its own slot and completion flag, so when the
	// wall-clock budget expires the completed prefix of runs is still
	// reportable as partial progress.
	slots := make([]oneRun, *seeds)
	done := make([]bool, *seeds)
	err = runner.New(*jobs).RunCtx(ctx, *seeds, func(i int) error {
		r, rerr := runOne(*seed + int64(i))
		if rerr != nil {
			return rerr
		}
		slots[i], done[i] = r, true
		return nil
	})
	runs := slots[:0]
	for i, ok := range done {
		if ok {
			runs = append(runs, slots[i])
		}
	}
	partial := false
	if err != nil {
		if (errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)) && len(runs) > 0 {
			// Budget expired: report what completed, then exit non-zero.
			partial = true
			fmt.Fprintf(os.Stderr, "mcsim: wall-clock budget %v exhausted: %d/%d seed runs completed; reporting partial results\n",
				*timeout, len(runs), *seeds)
		} else {
			fmt.Fprintln(os.Stderr, err)
			stopProf() // flush a usable CPU profile even on failure
			os.Exit(1)
		}
	}

	fmt.Printf("protocol:   %s\n", runs[0].proto)
	fmt.Printf("workload:   %s\n", *wl)
	if len(runs) == 1 {
		res, mon := runs[0].res, runs[0].mon
		fmt.Printf("runtime:    %v\n", res.Runtime)
		fmt.Printf("events:     %d\n", res.Events)
		fmt.Printf("L1 misses:  %d\n", res.Misses)
		if res.Misses > 0 {
			fmt.Printf("persistent: %d (%.3f%% of misses)\n", res.Persistent,
				100*float64(res.Persistent)/float64(res.Misses))
		}
		fmt.Printf("acquires:   %d (mutual-exclusion violations: %d)\n", mon.Acquires, len(mon.Violations))
		for _, lvl := range []stats.Level{stats.IntraCMP, stats.InterCMP} {
			fmt.Printf("%s traffic: %d bytes in %d messages\n",
				lvl, res.Traffic.TotalBytes(lvl), res.Traffic.TotalMessages(lvl))
		}
		if *ctrs {
			fmt.Println("event counters:")
			counters.Fprint(os.Stdout, res.Counters)
		}
		if partial {
			stopProf()
			os.Exit(1)
		}
		return
	}

	// Multi-seed summary: runtime mean ± 95% CI, totals over all runs.
	var runtime stats.Sample
	var traffic stats.Traffic
	var misses, persistent, events, totalAcq uint64
	violations := 0
	allCtrs := map[string]uint64{}
	for _, r := range runs {
		runtime.Add(float64(r.res.Runtime) / float64(sim.Nanosecond))
		traffic.Merge(&r.res.Traffic)
		counters.MergeInto(allCtrs, r.res.Counters)
		misses += r.res.Misses
		persistent += r.res.Persistent
		events += r.res.Events
		totalAcq += r.mon.Acquires
		violations += len(r.mon.Violations)
	}
	if partial {
		fmt.Printf("runs:       %d of %d requested (PARTIAL: -timeout %v expired)\n", len(runs), *seeds, *timeout)
	} else {
		fmt.Printf("runs:       %d (seeds %d..%d)\n", *seeds, *seed, *seed+int64(*seeds)-1)
	}
	fmt.Printf("runtime:    %s ns\n", runtime.String())
	fmt.Printf("events:     %d\n", events)
	fmt.Printf("L1 misses:  %d\n", misses)
	if misses > 0 {
		fmt.Printf("persistent: %d (%.3f%% of misses)\n", persistent,
			100*float64(persistent)/float64(misses))
	}
	fmt.Printf("acquires:   %d (mutual-exclusion violations: %d)\n", totalAcq, violations)
	for _, lvl := range []stats.Level{stats.IntraCMP, stats.InterCMP} {
		fmt.Printf("%s traffic: %d bytes in %d messages\n",
			lvl, traffic.TotalBytes(lvl), traffic.TotalMessages(lvl))
	}
	if *ctrs {
		fmt.Println("event counters (summed over all runs):")
		counters.Fprint(os.Stdout, allCtrs)
	}
	if partial {
		stopProf()
		os.Exit(1)
	}
}
