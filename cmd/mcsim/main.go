// mcsim runs one workload on one protocol of the simulated M-CMP system
// and prints runtime, traffic, and protocol statistics.
//
// Usage:
//
//	mcsim -proto TokenCMP-dst1 -workload locking -locks 32 -acquires 64
//	mcsim -proto DirectoryCMP -workload OLTP
//	mcsim -list
package main

import (
	"flag"
	"fmt"
	"os"

	"tokencmp/internal/cpu"
	"tokencmp/internal/experiments"
	"tokencmp/internal/machine"
	"tokencmp/internal/sim"
	"tokencmp/internal/stats"
	"tokencmp/internal/tokencmp"
	"tokencmp/internal/topo"
	"tokencmp/internal/workload"
)

func main() {
	var (
		proto    = flag.String("proto", "TokenCMP-dst1", "protocol (see -list)")
		wl       = flag.String("workload", "locking", "locking, barrier, OLTP, Apache, or SPECjbb")
		locks    = flag.Int("locks", 32, "locking: number of locks")
		acquires = flag.Int("acquires", 64, "locking: acquires per processor")
		barriers = flag.Int("barriers", 20, "barrier: rounds")
		jitter   = flag.Int64("jitter", 0, "barrier: work jitter in ns")
		txns     = flag.Int("txns", 40, "commercial: transactions per processor")
		cmps     = flag.Int("cmps", 4, "CMP count")
		procs    = flag.Int("procs", 4, "processors per CMP")
		banks    = flag.Int("banks", 4, "L2 banks per CMP")
		seed     = flag.Int64("seed", 1, "perturbation seed")
		check    = flag.Bool("check", false, "enable coherence monitors")
		list     = flag.Bool("list", false, "list protocols and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("Protocols:")
		for _, p := range machine.Protocols() {
			fmt.Printf("  %s\n", p)
		}
		fmt.Println("\nTable 1 variants:")
		for _, v := range tokencmp.Variants() {
			fmt.Printf("  %-22s transients=%d activation=%v predictor=%v filter=%v\n",
				v.Name, v.MaxTransients, v.Activation, v.Predictor, v.Filter)
		}
		return
	}

	g := topo.NewGeometry(*cmps, *procs, *banks)
	m, err := machine.New(machine.Config{
		Protocol:         *proto,
		Geom:             g,
		Seed:             *seed,
		CheckConsistency: *check,
		AuditTokens:      *check,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var progs []cpu.Program
	var mon *workload.LockMonitor
	switch *wl {
	case "locking":
		lc := workload.DefaultLocking(*locks)
		lc.Acquires = *acquires
		progs, mon = workload.LockingPrograms(lc, g.TotalProcs(), *seed)
	case "barrier":
		bc := workload.DefaultBarrier(g.TotalProcs(), sim.NS(*jitter))
		bc.Iterations = *barriers
		progs, mon = workload.BarrierPrograms(bc, *seed)
	default:
		params, perr := experiments.CommercialParamsFor(*wl)
		if perr != nil {
			fmt.Fprintln(os.Stderr, perr)
			os.Exit(1)
		}
		params.TxnsPerProc = *txns
		progs, mon = workload.CommercialPrograms(params, g.TotalProcs(), *seed)
	}

	res, err := m.Run(progs, 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("protocol:   %s\n", m.Proto.Name())
	fmt.Printf("workload:   %s\n", *wl)
	fmt.Printf("runtime:    %v\n", res.Runtime)
	fmt.Printf("events:     %d\n", res.Events)
	fmt.Printf("L1 misses:  %d\n", res.Misses)
	if res.Misses > 0 {
		fmt.Printf("persistent: %d (%.3f%% of misses)\n", res.Persistent,
			100*float64(res.Persistent)/float64(res.Misses))
	}
	fmt.Printf("acquires:   %d (mutual-exclusion violations: %d)\n", mon.Acquires, len(mon.Violations))
	for _, lvl := range []stats.Level{stats.IntraCMP, stats.InterCMP} {
		fmt.Printf("%s traffic: %d bytes in %d messages\n",
			lvl, res.Traffic.TotalBytes(lvl), res.Traffic.TotalMessages(lvl))
	}
}
