// Command simlint is the project's static-analysis driver: it runs the
// three analyzers that encode the simulator's load-bearing contracts —
// msgown (the network.Message pool-ownership contract), simdet
// (byte-identical determinism), schedalloc (allocation-free
// scheduling) and ctrreg (constant event-counter names) — over
// `go list` package patterns and exits non-zero if any finding
// survives the simlint:ignore directives.
//
// Usage:
//
//	go build -o bin/simlint ./cmd/simlint
//	bin/simlint ./...                 # whole tree (CI invocation)
//	bin/simlint -run msgown ./internal/hammercmp
//	bin/simlint -json ./... | jq .
//
// The analyzers are written against tokencmp/internal/lint/analysis, a
// stdlib-only stand-in for golang.org/x/tools/go/analysis (this module
// is deliberately dependency-free and builds offline). With x/tools
// available they would register with multichecker.Main unchanged and
// run under `go vet -vettool=$(which simlint)`; this driver is the
// CI-equivalent invocation: same loading semantics (export data via the
// go command's build cache), same exit-status contract as vet.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"tokencmp/internal/lint"
	"tokencmp/internal/lint/analysis"
	"tokencmp/internal/lint/ctrreg"
	"tokencmp/internal/lint/load"
	"tokencmp/internal/lint/msgown"
	"tokencmp/internal/lint/schedalloc"
	"tokencmp/internal/lint/simdet"
)

var all = []*analysis.Analyzer{msgown.Analyzer, simdet.Analyzer, schedalloc.Analyzer, ctrreg.Analyzer}

func main() {
	var (
		runNames = flag.String("run", "", "comma-separated analyzers to run (default: all)")
		asJSON   = flag.Bool("json", false, "emit findings as JSON")
		docs     = flag.Bool("doc", false, "print analyzer documentation and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: simlint [-run name,...] [-json] packages...\n\nanalyzers:\n")
		for _, a := range all {
			fmt.Fprintf(os.Stderr, "  %-11s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *docs {
		for _, a := range all {
			fmt.Printf("# %s\n\n%s\n\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := all
	if *runNames != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*runNames, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "simlint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"."}
	}
	fset, pkgs, err := load.Packages("", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		os.Exit(2)
	}

	findings := lint.Run(fset, pkgs, analyzers)
	if *asJSON {
		type finding struct {
			Analyzer string `json:"analyzer"`
			File     string `json:"file"`
			Line     int    `json:"line"`
			Column   int    `json:"column"`
			Message  string `json:"message"`
		}
		out := make([]finding, 0, len(findings))
		for _, f := range findings {
			out = append(out, finding{f.Analyzer, f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Message})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Printf("%s: %s: %s\n", f.Pos, f.Analyzer, f.Message)
		}
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}
