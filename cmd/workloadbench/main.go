// workloadbench regenerates Figure 6 (commercial workload runtime) and
// Figures 7a/7b (inter- and intra-CMP traffic by message class) for the
// OLTP, Apache, and SPECjbb surrogates.
//
// Usage:
//
//	workloadbench -what runtime   # Figure 6
//	workloadbench -what inter     # Figure 7a
//	workloadbench -what intra     # Figure 7b
//	workloadbench -what all
package main

import (
	"flag"
	"fmt"
	"os"

	"tokencmp/internal/experiments"
	"tokencmp/internal/prof"
	"tokencmp/internal/stats"
)

func main() {
	var (
		what  = flag.String("what", "all", "runtime (Fig 6), inter (Fig 7a), intra (Fig 7b), or all")
		txns  = flag.Int("txns", 30, "transactions per processor")
		seeds = flag.Int("seeds", 3, "perturbed runs per configuration")
		jobs  = flag.Int("jobs", 0, "concurrent simulation runs (0 = one per CPU)")
		ctrs  = flag.Bool("counters", false, "print per-protocol event-counter totals")

		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	faultFlags := experiments.RegisterFaultFlags(flag.CommandLine)
	flag.Parse()

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer stopProf()

	opt := experiments.DefaultOptions()
	opt.TxnsPerProc = *txns
	opt.Seeds = *seeds
	opt.Jobs = *jobs
	opt.Faults = faultFlags()

	protos := []string{
		"DirectoryCMP", "DirectoryCMP-zero", "HammerCMP",
		"TokenCMP-dst4", "TokenCMP-dst1", "TokenCMP-dst1-pred", "TokenCMP-dst1-filt",
		"PerfectL2",
	}
	res, err := experiments.RunCommercial([]string{"OLTP", "Apache", "SPECjbb"}, protos, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		stopProf() // flush a usable CPU profile even on failure
		os.Exit(1)
	}
	if *what == "runtime" || *what == "all" {
		res.RenderRuntime(os.Stdout)
		fmt.Println()
		fmt.Println("Persistent requests as a share of L1 misses (paper: < 0.3%):")
		for _, wl := range res.Workloads {
			fmt.Printf("  %-8s TokenCMP-dst1: %.3f%%\n", wl, 100*res.PersistentFraction(wl, "TokenCMP-dst1"))
		}
		fmt.Println()
	}
	if *what == "inter" || *what == "all" {
		res.RenderTraffic(os.Stdout, stats.InterCMP)
		fmt.Println()
	}
	if *what == "intra" || *what == "all" {
		res.RenderTraffic(os.Stdout, stats.IntraCMP)
	}
	if *ctrs {
		res.RenderCounters(os.Stdout)
	}
}
