module tokencmp

go 1.24
