module tokencmp

go 1.24

// Deliberately dependency-free. cmd/simlint's analyzers target a
// stdlib-only mirror of golang.org/x/tools/go/analysis that lives in
// internal/lint/analysis; if the module ever takes the real x/tools
// dependency, pin it here with a committed go.sum and delete the
// mirror (the analyzer sources port with an import swap). See the
// "Static analysis" section of README.md.
