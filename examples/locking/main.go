// Locking: run the paper's test-and-test-and-set locking micro-benchmark
// (Table 2) on DirectoryCMP and on TokenCMP-dst1, verifying mutual
// exclusion as it runs and comparing runtimes — a miniature Figure 3.
package main

import (
	"fmt"

	"tokencmp/internal/machine"
	"tokencmp/internal/topo"
	"tokencmp/internal/workload"
)

func main() {
	for _, contention := range []int{4, 256} {
		fmt.Printf("--- %d locks, 16 processors ---\n", contention)
		for _, proto := range []string{"DirectoryCMP", "TokenCMP-dst1"} {
			m, err := machine.New(machine.Config{
				Protocol:         proto,
				Geom:             topo.NewGeometry(4, 4, 4),
				Seed:             7,
				CheckConsistency: true,
			})
			if err != nil {
				panic(err)
			}
			cfg := workload.DefaultLocking(contention)
			cfg.Acquires = 32
			progs, mon := workload.LockingPrograms(cfg, m.Cfg.Geom.TotalProcs(), 7)
			res, err := m.Run(progs, 0)
			if err != nil {
				panic(err)
			}
			fmt.Printf("%-16s runtime %-10v acquires %4d  mutual-exclusion violations %d\n",
				proto, res.Runtime, mon.Acquires, len(mon.Violations))
		}
	}
}
