// Modelcheck: exhaustively verify the token-coherence correctness
// substrate on a small configuration — the Section 5 "flat correctness"
// argument in action. Because the model drives the performance-policy
// interface nondeterministically, the result covers every performance
// policy, including the hierarchical TokenCMP ones.
package main

import (
	"fmt"

	"tokencmp/internal/mc"
	"tokencmp/internal/mc/models"
)

func main() {
	cfg := models.TokenConfig{Caches: 3, T: 3, MaxMsgs: 2, Activate: models.DistributedAct}
	fmt.Printf("checking the token substrate: %d caches + memory, T=%d, ≤%d in-flight messages\n",
		cfg.Caches, cfg.T, cfg.MaxMsgs)
	res := mc.Check(models.NewTokenModel(cfg), 0)
	fmt.Println(res)
	if res.OK() {
		fmt.Println("safety (conservation, single writer, serial view), deadlock freedom,")
		fmt.Println("and starvation freedom hold in every reachable state.")
	}
}
