// Commercial: run the OLTP surrogate (the paper's best case for
// TokenCMP: migratory read-modify-write sharing dominates) on the
// hierarchical directory baseline and on TokenCMP-dst1, printing the
// speedup the paper reports in Figure 6.
package main

import (
	"fmt"

	"tokencmp/internal/machine"
	"tokencmp/internal/sim"
	"tokencmp/internal/topo"
	"tokencmp/internal/workload"
)

func main() {
	runtimes := map[string]sim.Time{}
	for _, proto := range []string{"DirectoryCMP", "TokenCMP-dst1", "PerfectL2"} {
		m, err := machine.New(machine.Config{
			Protocol: proto,
			Geom:     topo.NewGeometry(4, 4, 4),
			Seed:     3,
		})
		if err != nil {
			panic(err)
		}
		params := workload.OLTP()
		params.TxnsPerProc = 25
		progs, _ := workload.CommercialPrograms(params, m.Cfg.Geom.TotalProcs(), 3)
		res, err := m.Run(progs, 0)
		if err != nil {
			panic(err)
		}
		runtimes[proto] = res.Runtime
		fmt.Printf("%-14s runtime %v  (L1 misses %d, persistent %d)\n",
			proto, res.Runtime, res.Misses, res.Persistent)
	}
	speedup := float64(runtimes["DirectoryCMP"])/float64(runtimes["TokenCMP-dst1"]) - 1
	fmt.Printf("\nTokenCMP-dst1 speedup over DirectoryCMP on OLTP: %.1f%% (paper: ~50%%)\n", speedup*100)
}
