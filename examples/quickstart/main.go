// Quickstart: build a 4-CMP TokenCMP system, run two processors through
// a produce/consume handoff, and print what the protocol did.
package main

import (
	"fmt"

	"tokencmp/internal/cpu"
	"tokencmp/internal/machine"
	"tokencmp/internal/sim"
	"tokencmp/internal/topo"
)

// handoff is a minimal hand-written Program: the producer stores a value,
// then the consumer (on another CMP) loads it.
type handoff struct {
	producer bool
	step     int
	got      uint64
}

func (h *handoff) Next(now sim.Time, last uint64) cpu.Action {
	h.step++
	const addr = 0x1000
	if h.producer {
		switch h.step {
		case 1:
			return cpu.StoreOf(addr, 42)
		default:
			return cpu.Done()
		}
	}
	switch h.step {
	case 1:
		return cpu.Think(sim.NS(500)) // let the producer go first
	case 2:
		return cpu.LoadOf(addr)
	default:
		h.got = last
		return cpu.Done()
	}
}

func main() {
	// The paper's target system: four 4-way CMPs, four L2 banks each.
	m, err := machine.New(machine.Config{
		Protocol:         "TokenCMP-dst1",
		Geom:             topo.NewGeometry(4, 4, 4),
		CheckConsistency: true,
		AuditTokens:      true,
	})
	if err != nil {
		panic(err)
	}

	progs := make([]cpu.Program, m.Cfg.Geom.TotalProcs())
	consumer := &handoff{}
	progs[0] = &handoff{producer: true} // processor 0, CMP 0
	progs[12] = consumer                // processor 12, CMP 3
	for i := range progs {
		if progs[i] == nil {
			progs[i] = &handoff{step: 99} // idle: finishes immediately
		}
	}

	res, err := m.Run(progs, 0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("consumer on CMP 3 loaded %d (stored by CMP 0)\n", consumer.got)
	fmt.Printf("simulated time: %v, events: %d, L1 misses: %d\n",
		res.Runtime, res.Events, res.Misses)
	fmt.Printf("inter-CMP bytes: %d, intra-CMP bytes: %d\n",
		res.Traffic.TotalBytes(1), res.Traffic.TotalBytes(0))
	fmt.Println("token conservation audit: passed (AuditTokens)")
}
