// Package bench holds one testing.B benchmark per paper table and
// figure. Each bench runs a scaled-down version of the corresponding
// experiment (cmd/ tools regenerate the full-size rows); b.ReportMetric
// attaches the headline numbers so `go test -bench=.` prints the same
// series shape the paper reports.
package bench

import (
	"context"
	"testing"
	"time"

	"tokencmp/internal/cpu"
	"tokencmp/internal/experiments"
	"tokencmp/internal/machine"
	"tokencmp/internal/mc"
	"tokencmp/internal/mc/models"
	"tokencmp/internal/network"
	"tokencmp/internal/runner"
	"tokencmp/internal/sim"
	"tokencmp/internal/simd"
	"tokencmp/internal/stats"
	"tokencmp/internal/tokencmp"
	"tokencmp/internal/topo"
	"tokencmp/internal/workload"
)

func simNewEngine() *sim.Engine { return sim.NewEngine() }

func benchOpts() experiments.Options {
	opt := experiments.DefaultOptions()
	opt.Seeds = 1
	opt.Acquires = 12
	opt.Barriers = 5
	opt.TxnsPerProc = 8
	// Fan independent (protocol, config, seed) runs across all cores;
	// the merged figures are byte-identical to a serial run.
	opt.Jobs = runner.DefaultJobs()
	return opt
}

// BenchmarkFig2LockingPersistent regenerates Figure 2: the locking sweep
// with persistent-requests-only policies.
func BenchmarkFig2LockingPersistent(b *testing.B) {
	b.ReportAllocs()
	opt := benchOpts()
	for i := 0; i < b.N; i++ {
		sweep, err := experiments.RunLockSweep(
			[]string{"TokenCMP-arb0", "DirectoryCMP", "DirectoryCMP-zero", "HammerCMP", "TokenCMP-dst0"},
			[]int{2, 32, 512}, opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			base := sweep.Baseline()
			b.ReportMetric(sweep.Cells["TokenCMP-arb0"][0].Runtime.Mean()/base, "arb0@2locks")
			b.ReportMetric(sweep.Cells["TokenCMP-dst0"][0].Runtime.Mean()/base, "dst0@2locks")
			b.ReportMetric(sweep.Cells["TokenCMP-dst0"][2].Runtime.Mean()/base, "dst0@512locks")
			b.ReportMetric(sweep.Cells["HammerCMP"][2].Runtime.Mean()/base, "hammer@512locks")
		}
	}
}

// BenchmarkFig3LockingTransient regenerates Figure 3: the sweep with
// transient + persistent policies.
func BenchmarkFig3LockingTransient(b *testing.B) {
	b.ReportAllocs()
	opt := benchOpts()
	for i := 0; i < b.N; i++ {
		sweep, err := experiments.RunLockSweep(
			[]string{"DirectoryCMP", "TokenCMP-dst4", "TokenCMP-dst1", "TokenCMP-dst1-pred"},
			[]int{2, 32, 512}, opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			base := sweep.Baseline()
			b.ReportMetric(sweep.Cells["TokenCMP-dst1"][2].Runtime.Mean()/base, "dst1@512locks")
			b.ReportMetric(sweep.Cells["TokenCMP-dst4"][0].Runtime.Mean()/base, "dst4@2locks")
			b.ReportMetric(sweep.Cells["TokenCMP-dst1-pred"][0].Runtime.Mean()/base, "dst1pred@2locks")
		}
	}
}

// BenchmarkTable4Barrier regenerates Table 4: the barrier micro-benchmark
// under fixed and jittered work.
func BenchmarkTable4Barrier(b *testing.B) {
	b.ReportAllocs()
	opt := benchOpts()
	protos := []string{"TokenCMP-arb0", "TokenCMP-dst0", "DirectoryCMP", "TokenCMP-dst1"}
	for i := 0; i < b.N; i++ {
		table, err := experiments.RunBarrierTable(protos, opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			base := table.Fixed["DirectoryCMP"].Runtime.Mean()
			b.ReportMetric(table.Fixed["TokenCMP-arb0"].Runtime.Mean()/base, "arb0-fixed")
			b.ReportMetric(table.Fixed["TokenCMP-dst1"].Runtime.Mean()/base, "dst1-fixed")
		}
	}
}

// BenchmarkFig6Runtime regenerates Figure 6: commercial-workload runtime
// normalized to DirectoryCMP (the paper's 10–50% speedups).
func BenchmarkFig6Runtime(b *testing.B) {
	b.ReportAllocs()
	opt := benchOpts()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunCommercial(
			[]string{"OLTP", "SPECjbb"},
			[]string{"DirectoryCMP", "HammerCMP", "TokenCMP-dst1", "PerfectL2"}, opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, wl := range res.Workloads {
				base := res.Cells[wl]["DirectoryCMP"].Runtime.Mean()
				tok := res.Cells[wl]["TokenCMP-dst1"].Runtime.Mean()
				ham := res.Cells[wl]["HammerCMP"].Runtime.Mean()
				b.ReportMetric((base/tok-1)*100, wl+"-speedup-%")
				b.ReportMetric((base/ham-1)*100, wl+"-hammer-speedup-%")
			}
		}
	}
}

// BenchmarkFig7aInterTraffic regenerates Figure 7a: inter-CMP bytes
// normalized to DirectoryCMP.
func BenchmarkFig7aInterTraffic(b *testing.B) {
	benchTraffic(b, stats.InterCMP, "inter")
}

// BenchmarkFig7bIntraTraffic regenerates Figure 7b: intra-CMP bytes
// normalized to DirectoryCMP.
func BenchmarkFig7bIntraTraffic(b *testing.B) {
	benchTraffic(b, stats.IntraCMP, "intra")
}

func benchTraffic(b *testing.B, level stats.Level, tag string) {
	b.ReportAllocs()
	opt := benchOpts()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunCommercial(
			[]string{"OLTP"},
			[]string{"DirectoryCMP", "HammerCMP", "TokenCMP-dst1", "TokenCMP-dst1-filt"}, opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			base := float64(res.Cells["OLTP"]["DirectoryCMP"].Traffic.TotalBytes(level))
			tok := float64(res.Cells["OLTP"]["TokenCMP-dst1"].Traffic.TotalBytes(level))
			filt := float64(res.Cells["OLTP"]["TokenCMP-dst1-filt"].Traffic.TotalBytes(level))
			ham := float64(res.Cells["OLTP"]["HammerCMP"].Traffic.TotalBytes(level))
			b.ReportMetric(tok/base, tag+"-dst1-vs-dir")
			b.ReportMetric(filt/base, tag+"-filt-vs-dir")
			b.ReportMetric(ham/base, tag+"-hammer-vs-dir")
		}
	}
}

// BenchmarkSec5ModelCheck regenerates the Section 5 verification effort
// comparison (reachable-state counts) and reports checker throughput:
// states/sec directly bounds how big a configuration Section 5 can
// verify, so BENCH_ci.json tracks it alongside the allocation series.
// The checks run with symmetry reduction, as cmd/modelcheck does by
// default: the *-states metrics count canonical representatives, the
// *-full metrics their orbit expansions (the unreduced reachable
// counts), and reduction-x the overall orbit-reduction factor. The
// hammer model runs at its true 3-cache default — 233k unreduced
// states, which only the reduction makes bench-cheap.
func BenchmarkSec5ModelCheck(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		opt := mc.Options{Jobs: runner.DefaultJobs(), Symmetry: true}
		cfg := models.DefaultTokenConfig(models.SafetyOnly)
		safety := mc.CheckOpt(models.NewTokenModel(cfg), opt)
		dir := mc.CheckOpt(models.DefaultDirModel(), opt)
		hammer := mc.CheckOpt(models.DefaultHammerModel(), opt)
		if !safety.OK() || !dir.OK() || !hammer.OK() {
			b.Fatal("model checking failed")
		}
		if i == 0 {
			states := safety.States + dir.States + hammer.States
			full := safety.FullStates + dir.FullStates + hammer.FullStates
			elapsed := safety.Elapsed + dir.Elapsed + hammer.Elapsed
			b.ReportMetric(float64(states)/elapsed.Seconds(), "states/sec")
			b.ReportMetric(float64(full)/float64(states), "reduction-x")
			b.ReportMetric(float64(safety.States), "safety-states")
			b.ReportMetric(float64(safety.FullStates), "safety-full")
			b.ReportMetric(float64(dir.States), "dir-states")
			b.ReportMetric(float64(dir.FullStates), "dir-full")
			b.ReportMetric(float64(hammer.States), "hammer-states")
			b.ReportMetric(float64(hammer.FullStates), "hammer-full")
		}
	}
}

// BenchmarkSimdCacheParallel measures the daemon's serving path under
// contention: every core hammers the singleflight result cache on a
// warm key, the steady state of a daemon answering repeated identical
// experiments. One op is one served request. The hit path is a single
// mutex acquisition plus an LRU touch, so this series pins both the
// cache's scalability and its zero-allocation fast path.
func BenchmarkSimdCacheParallel(b *testing.B) {
	b.ReportAllocs()
	c := simd.NewCache(64, time.Hour, context.Background(), nil)
	ctx := context.Background()
	warm := func(context.Context) ([]byte, error) { return []byte(`{"benchmark":"warm"}`), nil }
	if _, err := c.Do(ctx, "warm", warm); err != nil {
		b.Fatal(err)
	}
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			got, err := c.Do(ctx, "warm", warm)
			if err != nil || len(got) == 0 {
				b.Error("cache miss on warm key")
				return
			}
		}
	})
}

// BenchmarkProtocolHandoff measures the raw simulator: one contended
// block bouncing among 16 processors (an ablation of protocol overhead
// rather than a paper figure).
func BenchmarkProtocolHandoff(b *testing.B) {
	for _, proto := range []string{"DirectoryCMP", "HammerCMP", "TokenCMP-dst1"} {
		proto := proto
		b.Run(proto, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m, err := machine.New(machine.Config{Protocol: proto, Geom: topo.NewGeometry(4, 4, 4), Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				lc := workload.DefaultLocking(2)
				lc.Acquires = 8
				progs, _ := workload.LockingPrograms(lc, 16, 1)
				if _, err := m.Run(progs, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationMigratory quantifies the migratory-sharing
// optimization the paper highlights as a one-knob policy change (§5):
// OLTP runtime with and without it.
func BenchmarkAblationMigratory(b *testing.B) {
	b.ReportAllocs()
	run := func(disable bool) float64 {
		eng := simNewEngine()
		g := topo.NewGeometry(4, 4, 4)
		cfg := tokencmp.DefaultConfig(g, tokencmp.Dst1)
		cfg.DisableMigratory = disable
		cfg.L1Size = 16 << 10
		cfg.L2BankSize = 64 << 10
		sys := tokencmp.NewSystem(eng, cfg, network.Default())
		params := workload.OLTP()
		params.TxnsPerProc = 8
		progs, _ := workload.CommercialPrograms(params, g.TotalProcs(), 1)
		procs := make([]*cpu.Processor, len(progs))
		for i := range progs {
			d, in := sys.Ports(i)
			procs[i] = &cpu.Processor{ID: i, Eng: eng, Data: d, Inst: in, Prog: progs[i]}
			procs[i].Start()
		}
		eng.RunUntil(func() bool {
			for _, p := range procs {
				if !p.Finished() {
					return false
				}
			}
			return true
		}, 0)
		return float64(eng.Now())
	}
	for i := 0; i < b.N; i++ {
		with := run(false)
		without := run(true)
		if i == 0 {
			b.ReportMetric(without/with, "no-migratory-slowdown-x")
		}
	}
}
