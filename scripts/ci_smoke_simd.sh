#!/usr/bin/env bash
# CI smoke test for the simd daemon: build it, serve a real workload,
# prove that duplicate concurrent requests collapse onto one underlying
# simulation with byte-identical response bodies, that a replay is a
# cache hit, and that SIGTERM drains cleanly (exit 0).
set -euo pipefail

ADDR=127.0.0.1:18123
WORKDIR=$(mktemp -d)
trap 'kill -9 "$SIMD_PID" 2>/dev/null || true; rm -rf "$WORKDIR"' EXIT

go build -o "$WORKDIR/simd" ./cmd/simd
"$WORKDIR/simd" -addr "$ADDR" >"$WORKDIR/simd.log" 2>&1 &
SIMD_PID=$!

# Wait for readiness (the daemon binds before printing its banner).
for _ in $(seq 1 50); do
  curl -fsS "$ADDR/readyz" >/dev/null 2>&1 && break
  sleep 0.1
done
curl -fsS "$ADDR/healthz" >/dev/null

BODY='{"protocol":"TokenCMP-dst1","workload":"locking","locks":4,"acquires":16,"cmps":2,"procs":2,"banks":1}'

# Fire 8 identical requests concurrently (wait on the curl PIDs only;
# a bare `wait` would also wait on the daemon).
CURL_PIDS=()
for i in $(seq 1 8); do
  curl -fsS -X POST "$ADDR/run" -d "$BODY" -o "$WORKDIR/resp-$i.json" &
  CURL_PIDS+=("$!")
done
for pid in "${CURL_PIDS[@]}"; do
  wait "$pid"
done

# Every client saw byte-identical bodies.
for i in $(seq 2 8); do
  cmp "$WORKDIR/resp-1.json" "$WORKDIR/resp-$i.json"
done

# Exactly one underlying simulation ran (singleflight collapse).
runs=$(curl -fsS "$ADDR/metrics" | awk '/^simd_runs_total/ {print $2}')
if [ "$runs" != "1" ]; then
  echo "expected 1 underlying run for 8 duplicate requests, got $runs" >&2
  exit 1
fi

# A later replay is a cache hit with the same bytes.
hit=$(curl -fsS -D - -X POST "$ADDR/run" -d "$BODY" -o "$WORKDIR/resp-replay.json" |
  tr -d '\r' | awk -F': ' '/^X-Simd-Cache/ {print $2}')
cmp "$WORKDIR/resp-1.json" "$WORKDIR/resp-replay.json"
if [ "$hit" != "hit" ]; then
  echo "replay was not served from the cache (X-Simd-Cache=$hit)" >&2
  exit 1
fi

# SIGTERM drains cleanly: exit status 0 and the drain banner.
kill -TERM "$SIMD_PID"
wait "$SIMD_PID"
grep -q "drained cleanly" "$WORKDIR/simd.log"
echo "simd smoke OK"
