#!/usr/bin/env bash
# CI crash-restart smoke test for the simd durable cache: populate the
# on-disk store, SIGKILL the daemon mid-traffic (no drain, no
# warning), reboot on the same -cache-dir, and prove that
#
#   * every fully-written entry is served as a warm cache hit with
#     byte-identical bodies and zero re-runs,
#   * /metrics reports the restore counts (restored entries, torn
#     files discarded — including a deliberately injected torn frame
#     and a stale .tmp),
#   * the reboot never fails over the debris a kill -9 leaves behind.
set -euo pipefail

ADDR=127.0.0.1:18124
WORKDIR=$(mktemp -d)
CACHEDIR="$WORKDIR/cache"
trap 'kill -9 "$SIMD_PID" 2>/dev/null || true; rm -rf "$WORKDIR"' EXIT

go build -o "$WORKDIR/simd" ./cmd/simd

metric() { # metric NAME -> value from /metrics
  curl -fsS "$ADDR/metrics" | awk -v m="$1" '$1 == m {print $2}'
}

wait_ready() {
  for _ in $(seq 1 50); do
    curl -fsS "$ADDR/readyz" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "simd never became ready" >&2
  return 1
}

body_for_seed() {
  echo "{\"protocol\":\"TokenCMP-dst1\",\"workload\":\"locking\",\"locks\":4,\"acquires\":16,\"cmps\":2,\"procs\":2,\"banks\":1,\"seed\":$1}"
}

# ---- Boot 1: populate the durable cache. -------------------------------
"$WORKDIR/simd" -addr "$ADDR" -cache-dir "$CACHEDIR" >"$WORKDIR/simd1.log" 2>&1 &
SIMD_PID=$!
wait_ready

N=4
for i in $(seq 1 $N); do
  curl -fsS -X POST "$ADDR/run" -d "$(body_for_seed "$i")" -o "$WORKDIR/cold-$i.json"
done

# Persistence is write-behind: wait for all N durable flushes before
# pulling the plug, so the crash tests recovery, not the flush race.
for _ in $(seq 1 50); do
  [ "$(metric simd_persist_written_total)" = "$N" ] && break
  sleep 0.1
done
if [ "$(metric simd_persist_written_total)" != "$N" ]; then
  echo "expected $N durable writes before the crash, got $(metric simd_persist_written_total)" >&2
  exit 1
fi

# Keep traffic in flight (new seeds, so new runs + new flushes racing
# the kill) and SIGKILL mid-stream: no drain, no atexit, nothing.
for i in $(seq 101 104); do
  curl -fsS -X POST "$ADDR/run" -d "$(body_for_seed "$i")" -o /dev/null &
done
sleep 0.05
kill -9 "$SIMD_PID"
wait "$SIMD_PID" 2>/dev/null || true

# ---- Inject the debris a torn flush would leave. -----------------------
# A truncated entry frame (torn write) and a stale .tmp; the restore
# pass must delete and count both, not refuse to boot.
first_entry=$(ls "$CACHEDIR"/*.sce | head -1)
head -c 20 "$first_entry" >"$CACHEDIR/00torn.sce"
printf 'unfinished flush' >"$CACHEDIR/00stale.sce.tmp"

# ---- Boot 2: same cache dir, assert warm recovery. ---------------------
"$WORKDIR/simd" -addr "$ADDR" -cache-dir "$CACHEDIR" >"$WORKDIR/simd2.log" 2>&1 &
SIMD_PID=$!
wait_ready

restored=$(metric simd_persist_restored_total)
torn=$(metric simd_persist_torn_discarded_total)
if [ "$restored" -lt "$N" ]; then
  echo "expected >= $N restored entries after reboot, got $restored" >&2
  exit 1
fi
if [ "$torn" -lt 2 ]; then
  echo "expected >= 2 torn files discarded (injected frame + stale tmp), got $torn" >&2
  exit 1
fi

for i in $(seq 1 $N); do
  hit=$(curl -fsS -D - -X POST "$ADDR/run" -d "$(body_for_seed "$i")" -o "$WORKDIR/warm-$i.json" |
    tr -d '\r' | awk -F': ' '/^X-Simd-Cache/ {print $2}')
  cmp "$WORKDIR/cold-$i.json" "$WORKDIR/warm-$i.json"
  if [ "$hit" != "hit" ]; then
    echo "seed $i not served from the restored cache (X-Simd-Cache=$hit)" >&2
    exit 1
  fi
done

# Warm hits must not have re-run the simulator.
runs=$(metric simd_runs_total)
if [ "$runs" != "0" ]; then
  echo "expected 0 re-runs for restored entries, got $runs" >&2
  exit 1
fi

# No .tmp residue survives restore; the reboot banner reported the pass.
if ls "$CACHEDIR"/*.tmp >/dev/null 2>&1; then
  echo "stale .tmp files survived the restore pass" >&2
  exit 1
fi
grep -q "restored=" "$WORKDIR/simd2.log"

# Clean SIGTERM exit still works after a crash-recovery boot.
kill -TERM "$SIMD_PID"
wait "$SIMD_PID"
grep -q "drained cleanly" "$WORKDIR/simd2.log"
echo "simd crash-restart smoke OK"
